
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/verify/io_trace.cpp" "src/verify/CMakeFiles/st_verify.dir/io_trace.cpp.o" "gcc" "src/verify/CMakeFiles/st_verify.dir/io_trace.cpp.o.d"
  "/root/repo/src/verify/timing_checker.cpp" "src/verify/CMakeFiles/st_verify.dir/timing_checker.cpp.o" "gcc" "src/verify/CMakeFiles/st_verify.dir/timing_checker.cpp.o.d"
  "/root/repo/src/verify/trace_probe.cpp" "src/verify/CMakeFiles/st_verify.dir/trace_probe.cpp.o" "gcc" "src/verify/CMakeFiles/st_verify.dir/trace_probe.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/st_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/synchro/CMakeFiles/st_synchro.dir/DependInfo.cmake"
  "/root/repo/build/src/sb/CMakeFiles/st_sb.dir/DependInfo.cmake"
  "/root/repo/build/src/clock/CMakeFiles/st_clock.dir/DependInfo.cmake"
  "/root/repo/build/src/async/CMakeFiles/st_async.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
