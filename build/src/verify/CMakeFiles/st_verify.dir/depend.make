# Empty dependencies file for st_verify.
# This may be replaced when dependencies are built.
