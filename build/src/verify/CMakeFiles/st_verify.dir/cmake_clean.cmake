file(REMOVE_RECURSE
  "CMakeFiles/st_verify.dir/io_trace.cpp.o"
  "CMakeFiles/st_verify.dir/io_trace.cpp.o.d"
  "CMakeFiles/st_verify.dir/timing_checker.cpp.o"
  "CMakeFiles/st_verify.dir/timing_checker.cpp.o.d"
  "CMakeFiles/st_verify.dir/trace_probe.cpp.o"
  "CMakeFiles/st_verify.dir/trace_probe.cpp.o.d"
  "libst_verify.a"
  "libst_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/st_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
