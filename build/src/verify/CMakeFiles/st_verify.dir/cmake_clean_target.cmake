file(REMOVE_RECURSE
  "libst_verify.a"
)
