# Empty compiler generated dependencies file for st_workload.
# This may be replaced when dependencies are built.
