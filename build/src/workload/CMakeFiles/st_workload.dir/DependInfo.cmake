
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/host_port.cpp" "src/workload/CMakeFiles/st_workload.dir/host_port.cpp.o" "gcc" "src/workload/CMakeFiles/st_workload.dir/host_port.cpp.o.d"
  "/root/repo/src/workload/router.cpp" "src/workload/CMakeFiles/st_workload.dir/router.cpp.o" "gcc" "src/workload/CMakeFiles/st_workload.dir/router.cpp.o.d"
  "/root/repo/src/workload/streaming.cpp" "src/workload/CMakeFiles/st_workload.dir/streaming.cpp.o" "gcc" "src/workload/CMakeFiles/st_workload.dir/streaming.cpp.o.d"
  "/root/repo/src/workload/traffic.cpp" "src/workload/CMakeFiles/st_workload.dir/traffic.cpp.o" "gcc" "src/workload/CMakeFiles/st_workload.dir/traffic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sb/CMakeFiles/st_sb.dir/DependInfo.cmake"
  "/root/repo/build/src/synchro/CMakeFiles/st_synchro.dir/DependInfo.cmake"
  "/root/repo/build/src/clock/CMakeFiles/st_clock.dir/DependInfo.cmake"
  "/root/repo/build/src/async/CMakeFiles/st_async.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/st_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
