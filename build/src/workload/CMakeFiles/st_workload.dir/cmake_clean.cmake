file(REMOVE_RECURSE
  "CMakeFiles/st_workload.dir/host_port.cpp.o"
  "CMakeFiles/st_workload.dir/host_port.cpp.o.d"
  "CMakeFiles/st_workload.dir/router.cpp.o"
  "CMakeFiles/st_workload.dir/router.cpp.o.d"
  "CMakeFiles/st_workload.dir/streaming.cpp.o"
  "CMakeFiles/st_workload.dir/streaming.cpp.o.d"
  "CMakeFiles/st_workload.dir/traffic.cpp.o"
  "CMakeFiles/st_workload.dir/traffic.cpp.o.d"
  "libst_workload.a"
  "libst_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/st_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
