file(REMOVE_RECURSE
  "libst_workload.a"
)
