file(REMOVE_RECURSE
  "libst_analytic.a"
)
