# Empty compiler generated dependencies file for st_analytic.
# This may be replaced when dependencies are built.
