file(REMOVE_RECURSE
  "CMakeFiles/st_analytic.dir/models.cpp.o"
  "CMakeFiles/st_analytic.dir/models.cpp.o.d"
  "libst_analytic.a"
  "libst_analytic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/st_analytic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
