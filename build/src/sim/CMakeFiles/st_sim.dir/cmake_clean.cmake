file(REMOVE_RECURSE
  "CMakeFiles/st_sim.dir/scheduler.cpp.o"
  "CMakeFiles/st_sim.dir/scheduler.cpp.o.d"
  "CMakeFiles/st_sim.dir/time.cpp.o"
  "CMakeFiles/st_sim.dir/time.cpp.o.d"
  "CMakeFiles/st_sim.dir/vcd.cpp.o"
  "CMakeFiles/st_sim.dir/vcd.cpp.o.d"
  "CMakeFiles/st_sim.dir/waveform.cpp.o"
  "CMakeFiles/st_sim.dir/waveform.cpp.o.d"
  "libst_sim.a"
  "libst_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/st_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
