
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/scheduler.cpp" "src/sim/CMakeFiles/st_sim.dir/scheduler.cpp.o" "gcc" "src/sim/CMakeFiles/st_sim.dir/scheduler.cpp.o.d"
  "/root/repo/src/sim/time.cpp" "src/sim/CMakeFiles/st_sim.dir/time.cpp.o" "gcc" "src/sim/CMakeFiles/st_sim.dir/time.cpp.o.d"
  "/root/repo/src/sim/vcd.cpp" "src/sim/CMakeFiles/st_sim.dir/vcd.cpp.o" "gcc" "src/sim/CMakeFiles/st_sim.dir/vcd.cpp.o.d"
  "/root/repo/src/sim/waveform.cpp" "src/sim/CMakeFiles/st_sim.dir/waveform.cpp.o" "gcc" "src/sim/CMakeFiles/st_sim.dir/waveform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
