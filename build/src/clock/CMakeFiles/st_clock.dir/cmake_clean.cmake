file(REMOVE_RECURSE
  "CMakeFiles/st_clock.dir/stoppable_clock.cpp.o"
  "CMakeFiles/st_clock.dir/stoppable_clock.cpp.o.d"
  "CMakeFiles/st_clock.dir/tester_clock.cpp.o"
  "CMakeFiles/st_clock.dir/tester_clock.cpp.o.d"
  "libst_clock.a"
  "libst_clock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/st_clock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
