# Empty compiler generated dependencies file for st_clock.
# This may be replaced when dependencies are built.
