
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/clock/stoppable_clock.cpp" "src/clock/CMakeFiles/st_clock.dir/stoppable_clock.cpp.o" "gcc" "src/clock/CMakeFiles/st_clock.dir/stoppable_clock.cpp.o.d"
  "/root/repo/src/clock/tester_clock.cpp" "src/clock/CMakeFiles/st_clock.dir/tester_clock.cpp.o" "gcc" "src/clock/CMakeFiles/st_clock.dir/tester_clock.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/st_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
