file(REMOVE_RECURSE
  "libst_clock.a"
)
