file(REMOVE_RECURSE
  "CMakeFiles/st_async.dir/arbiter.cpp.o"
  "CMakeFiles/st_async.dir/arbiter.cpp.o.d"
  "CMakeFiles/st_async.dir/four_phase.cpp.o"
  "CMakeFiles/st_async.dir/four_phase.cpp.o.d"
  "CMakeFiles/st_async.dir/make_link.cpp.o"
  "CMakeFiles/st_async.dir/make_link.cpp.o.d"
  "CMakeFiles/st_async.dir/self_timed_fifo.cpp.o"
  "CMakeFiles/st_async.dir/self_timed_fifo.cpp.o.d"
  "CMakeFiles/st_async.dir/two_phase.cpp.o"
  "CMakeFiles/st_async.dir/two_phase.cpp.o.d"
  "libst_async.a"
  "libst_async.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/st_async.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
