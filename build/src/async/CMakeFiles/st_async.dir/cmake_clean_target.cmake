file(REMOVE_RECURSE
  "libst_async.a"
)
