
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/async/arbiter.cpp" "src/async/CMakeFiles/st_async.dir/arbiter.cpp.o" "gcc" "src/async/CMakeFiles/st_async.dir/arbiter.cpp.o.d"
  "/root/repo/src/async/four_phase.cpp" "src/async/CMakeFiles/st_async.dir/four_phase.cpp.o" "gcc" "src/async/CMakeFiles/st_async.dir/four_phase.cpp.o.d"
  "/root/repo/src/async/make_link.cpp" "src/async/CMakeFiles/st_async.dir/make_link.cpp.o" "gcc" "src/async/CMakeFiles/st_async.dir/make_link.cpp.o.d"
  "/root/repo/src/async/self_timed_fifo.cpp" "src/async/CMakeFiles/st_async.dir/self_timed_fifo.cpp.o" "gcc" "src/async/CMakeFiles/st_async.dir/self_timed_fifo.cpp.o.d"
  "/root/repo/src/async/two_phase.cpp" "src/async/CMakeFiles/st_async.dir/two_phase.cpp.o" "gcc" "src/async/CMakeFiles/st_async.dir/two_phase.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/st_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
