# Empty dependencies file for st_async.
# This may be replaced when dependencies are built.
