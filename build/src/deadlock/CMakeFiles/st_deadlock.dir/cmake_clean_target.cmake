file(REMOVE_RECURSE
  "libst_deadlock.a"
)
