file(REMOVE_RECURSE
  "CMakeFiles/st_deadlock.dir/rules.cpp.o"
  "CMakeFiles/st_deadlock.dir/rules.cpp.o.d"
  "CMakeFiles/st_deadlock.dir/waitfor.cpp.o"
  "CMakeFiles/st_deadlock.dir/waitfor.cpp.o.d"
  "libst_deadlock.a"
  "libst_deadlock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/st_deadlock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
