# Empty dependencies file for st_deadlock.
# This may be replaced when dependencies are built.
