# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("sim")
subdirs("clock")
subdirs("async")
subdirs("sb")
subdirs("synchro")
subdirs("verify")
subdirs("workload")
subdirs("analytic")
subdirs("system")
subdirs("baselines")
subdirs("area")
subdirs("deadlock")
subdirs("tap")
subdirs("formal")
