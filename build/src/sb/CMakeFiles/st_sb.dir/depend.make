# Empty dependencies file for st_sb.
# This may be replaced when dependencies are built.
