
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sb/kernels/sinks.cpp" "src/sb/CMakeFiles/st_sb.dir/kernels/sinks.cpp.o" "gcc" "src/sb/CMakeFiles/st_sb.dir/kernels/sinks.cpp.o.d"
  "/root/repo/src/sb/kernels/sources.cpp" "src/sb/CMakeFiles/st_sb.dir/kernels/sources.cpp.o" "gcc" "src/sb/CMakeFiles/st_sb.dir/kernels/sources.cpp.o.d"
  "/root/repo/src/sb/kernels/transforms.cpp" "src/sb/CMakeFiles/st_sb.dir/kernels/transforms.cpp.o" "gcc" "src/sb/CMakeFiles/st_sb.dir/kernels/transforms.cpp.o.d"
  "/root/repo/src/sb/sync_block.cpp" "src/sb/CMakeFiles/st_sb.dir/sync_block.cpp.o" "gcc" "src/sb/CMakeFiles/st_sb.dir/sync_block.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/st_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/clock/CMakeFiles/st_clock.dir/DependInfo.cmake"
  "/root/repo/build/src/async/CMakeFiles/st_async.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
