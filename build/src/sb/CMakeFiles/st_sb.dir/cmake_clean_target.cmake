file(REMOVE_RECURSE
  "libst_sb.a"
)
