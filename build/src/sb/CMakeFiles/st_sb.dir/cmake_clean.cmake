file(REMOVE_RECURSE
  "CMakeFiles/st_sb.dir/kernels/sinks.cpp.o"
  "CMakeFiles/st_sb.dir/kernels/sinks.cpp.o.d"
  "CMakeFiles/st_sb.dir/kernels/sources.cpp.o"
  "CMakeFiles/st_sb.dir/kernels/sources.cpp.o.d"
  "CMakeFiles/st_sb.dir/kernels/transforms.cpp.o"
  "CMakeFiles/st_sb.dir/kernels/transforms.cpp.o.d"
  "CMakeFiles/st_sb.dir/sync_block.cpp.o"
  "CMakeFiles/st_sb.dir/sync_block.cpp.o.d"
  "libst_sb.a"
  "libst_sb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/st_sb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
