file(REMOVE_RECURSE
  "CMakeFiles/st_area.dir/area_model.cpp.o"
  "CMakeFiles/st_area.dir/area_model.cpp.o.d"
  "CMakeFiles/st_area.dir/gate_library.cpp.o"
  "CMakeFiles/st_area.dir/gate_library.cpp.o.d"
  "libst_area.a"
  "libst_area.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/st_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
