# Empty dependencies file for st_area.
# This may be replaced when dependencies are built.
