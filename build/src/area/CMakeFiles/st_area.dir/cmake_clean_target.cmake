file(REMOVE_RECURSE
  "libst_area.a"
)
