# Empty compiler generated dependencies file for st_synchro.
# This may be replaced when dependencies are built.
