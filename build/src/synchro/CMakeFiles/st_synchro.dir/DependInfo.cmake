
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synchro/interfaces.cpp" "src/synchro/CMakeFiles/st_synchro.dir/interfaces.cpp.o" "gcc" "src/synchro/CMakeFiles/st_synchro.dir/interfaces.cpp.o.d"
  "/root/repo/src/synchro/token_node.cpp" "src/synchro/CMakeFiles/st_synchro.dir/token_node.cpp.o" "gcc" "src/synchro/CMakeFiles/st_synchro.dir/token_node.cpp.o.d"
  "/root/repo/src/synchro/token_ring.cpp" "src/synchro/CMakeFiles/st_synchro.dir/token_ring.cpp.o" "gcc" "src/synchro/CMakeFiles/st_synchro.dir/token_ring.cpp.o.d"
  "/root/repo/src/synchro/wide_channel.cpp" "src/synchro/CMakeFiles/st_synchro.dir/wide_channel.cpp.o" "gcc" "src/synchro/CMakeFiles/st_synchro.dir/wide_channel.cpp.o.d"
  "/root/repo/src/synchro/wrapper.cpp" "src/synchro/CMakeFiles/st_synchro.dir/wrapper.cpp.o" "gcc" "src/synchro/CMakeFiles/st_synchro.dir/wrapper.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/st_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/clock/CMakeFiles/st_clock.dir/DependInfo.cmake"
  "/root/repo/build/src/async/CMakeFiles/st_async.dir/DependInfo.cmake"
  "/root/repo/build/src/sb/CMakeFiles/st_sb.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
