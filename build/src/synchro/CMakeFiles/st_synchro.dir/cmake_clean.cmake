file(REMOVE_RECURSE
  "CMakeFiles/st_synchro.dir/interfaces.cpp.o"
  "CMakeFiles/st_synchro.dir/interfaces.cpp.o.d"
  "CMakeFiles/st_synchro.dir/token_node.cpp.o"
  "CMakeFiles/st_synchro.dir/token_node.cpp.o.d"
  "CMakeFiles/st_synchro.dir/token_ring.cpp.o"
  "CMakeFiles/st_synchro.dir/token_ring.cpp.o.d"
  "CMakeFiles/st_synchro.dir/wide_channel.cpp.o"
  "CMakeFiles/st_synchro.dir/wide_channel.cpp.o.d"
  "CMakeFiles/st_synchro.dir/wrapper.cpp.o"
  "CMakeFiles/st_synchro.dir/wrapper.cpp.o.d"
  "libst_synchro.a"
  "libst_synchro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/st_synchro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
