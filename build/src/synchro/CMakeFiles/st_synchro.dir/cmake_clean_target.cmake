file(REMOVE_RECURSE
  "libst_synchro.a"
)
