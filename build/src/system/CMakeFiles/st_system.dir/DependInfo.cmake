
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/system/delay_config.cpp" "src/system/CMakeFiles/st_system.dir/delay_config.cpp.o" "gcc" "src/system/CMakeFiles/st_system.dir/delay_config.cpp.o.d"
  "/root/repo/src/system/invariant_monitor.cpp" "src/system/CMakeFiles/st_system.dir/invariant_monitor.cpp.o" "gcc" "src/system/CMakeFiles/st_system.dir/invariant_monitor.cpp.o.d"
  "/root/repo/src/system/param_rom.cpp" "src/system/CMakeFiles/st_system.dir/param_rom.cpp.o" "gcc" "src/system/CMakeFiles/st_system.dir/param_rom.cpp.o.d"
  "/root/repo/src/system/soc.cpp" "src/system/CMakeFiles/st_system.dir/soc.cpp.o" "gcc" "src/system/CMakeFiles/st_system.dir/soc.cpp.o.d"
  "/root/repo/src/system/stats.cpp" "src/system/CMakeFiles/st_system.dir/stats.cpp.o" "gcc" "src/system/CMakeFiles/st_system.dir/stats.cpp.o.d"
  "/root/repo/src/system/testbenches.cpp" "src/system/CMakeFiles/st_system.dir/testbenches.cpp.o" "gcc" "src/system/CMakeFiles/st_system.dir/testbenches.cpp.o.d"
  "/root/repo/src/system/vcd_probe.cpp" "src/system/CMakeFiles/st_system.dir/vcd_probe.cpp.o" "gcc" "src/system/CMakeFiles/st_system.dir/vcd_probe.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/st_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/clock/CMakeFiles/st_clock.dir/DependInfo.cmake"
  "/root/repo/build/src/async/CMakeFiles/st_async.dir/DependInfo.cmake"
  "/root/repo/build/src/sb/CMakeFiles/st_sb.dir/DependInfo.cmake"
  "/root/repo/build/src/synchro/CMakeFiles/st_synchro.dir/DependInfo.cmake"
  "/root/repo/build/src/verify/CMakeFiles/st_verify.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/st_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/analytic/CMakeFiles/st_analytic.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
