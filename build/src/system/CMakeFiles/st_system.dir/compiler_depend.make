# Empty compiler generated dependencies file for st_system.
# This may be replaced when dependencies are built.
