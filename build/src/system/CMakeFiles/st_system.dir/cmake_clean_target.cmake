file(REMOVE_RECURSE
  "libst_system.a"
)
