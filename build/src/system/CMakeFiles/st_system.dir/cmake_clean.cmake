file(REMOVE_RECURSE
  "CMakeFiles/st_system.dir/delay_config.cpp.o"
  "CMakeFiles/st_system.dir/delay_config.cpp.o.d"
  "CMakeFiles/st_system.dir/invariant_monitor.cpp.o"
  "CMakeFiles/st_system.dir/invariant_monitor.cpp.o.d"
  "CMakeFiles/st_system.dir/param_rom.cpp.o"
  "CMakeFiles/st_system.dir/param_rom.cpp.o.d"
  "CMakeFiles/st_system.dir/soc.cpp.o"
  "CMakeFiles/st_system.dir/soc.cpp.o.d"
  "CMakeFiles/st_system.dir/stats.cpp.o"
  "CMakeFiles/st_system.dir/stats.cpp.o.d"
  "CMakeFiles/st_system.dir/testbenches.cpp.o"
  "CMakeFiles/st_system.dir/testbenches.cpp.o.d"
  "CMakeFiles/st_system.dir/vcd_probe.cpp.o"
  "CMakeFiles/st_system.dir/vcd_probe.cpp.o.d"
  "libst_system.a"
  "libst_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/st_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
