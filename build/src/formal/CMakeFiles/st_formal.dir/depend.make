# Empty dependencies file for st_formal.
# This may be replaced when dependencies are built.
