file(REMOVE_RECURSE
  "CMakeFiles/st_formal.dir/ring_model.cpp.o"
  "CMakeFiles/st_formal.dir/ring_model.cpp.o.d"
  "libst_formal.a"
  "libst_formal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/st_formal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
