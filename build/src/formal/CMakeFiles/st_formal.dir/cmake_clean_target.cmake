file(REMOVE_RECURSE
  "libst_formal.a"
)
