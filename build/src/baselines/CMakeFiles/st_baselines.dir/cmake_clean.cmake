file(REMOVE_RECURSE
  "CMakeFiles/st_baselines.dir/baseline_soc.cpp.o"
  "CMakeFiles/st_baselines.dir/baseline_soc.cpp.o.d"
  "CMakeFiles/st_baselines.dir/pausible.cpp.o"
  "CMakeFiles/st_baselines.dir/pausible.cpp.o.d"
  "CMakeFiles/st_baselines.dir/stari.cpp.o"
  "CMakeFiles/st_baselines.dir/stari.cpp.o.d"
  "CMakeFiles/st_baselines.dir/two_flop.cpp.o"
  "CMakeFiles/st_baselines.dir/two_flop.cpp.o.d"
  "libst_baselines.a"
  "libst_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/st_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
