# Empty dependencies file for st_tap.
# This may be replaced when dependencies are built.
