file(REMOVE_RECURSE
  "libst_tap.a"
)
