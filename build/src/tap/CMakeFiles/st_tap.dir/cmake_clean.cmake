file(REMOVE_RECURSE
  "CMakeFiles/st_tap.dir/bist.cpp.o"
  "CMakeFiles/st_tap.dir/bist.cpp.o.d"
  "CMakeFiles/st_tap.dir/boundary_scan.cpp.o"
  "CMakeFiles/st_tap.dir/boundary_scan.cpp.o.d"
  "CMakeFiles/st_tap.dir/data_registers.cpp.o"
  "CMakeFiles/st_tap.dir/data_registers.cpp.o.d"
  "CMakeFiles/st_tap.dir/p1500.cpp.o"
  "CMakeFiles/st_tap.dir/p1500.cpp.o.d"
  "CMakeFiles/st_tap.dir/scan_chain.cpp.o"
  "CMakeFiles/st_tap.dir/scan_chain.cpp.o.d"
  "CMakeFiles/st_tap.dir/tap_controller.cpp.o"
  "CMakeFiles/st_tap.dir/tap_controller.cpp.o.d"
  "CMakeFiles/st_tap.dir/test_sb.cpp.o"
  "CMakeFiles/st_tap.dir/test_sb.cpp.o.d"
  "CMakeFiles/st_tap.dir/tester.cpp.o"
  "CMakeFiles/st_tap.dir/tester.cpp.o.d"
  "libst_tap.a"
  "libst_tap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/st_tap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
