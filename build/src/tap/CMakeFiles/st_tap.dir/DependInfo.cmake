
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tap/bist.cpp" "src/tap/CMakeFiles/st_tap.dir/bist.cpp.o" "gcc" "src/tap/CMakeFiles/st_tap.dir/bist.cpp.o.d"
  "/root/repo/src/tap/boundary_scan.cpp" "src/tap/CMakeFiles/st_tap.dir/boundary_scan.cpp.o" "gcc" "src/tap/CMakeFiles/st_tap.dir/boundary_scan.cpp.o.d"
  "/root/repo/src/tap/data_registers.cpp" "src/tap/CMakeFiles/st_tap.dir/data_registers.cpp.o" "gcc" "src/tap/CMakeFiles/st_tap.dir/data_registers.cpp.o.d"
  "/root/repo/src/tap/p1500.cpp" "src/tap/CMakeFiles/st_tap.dir/p1500.cpp.o" "gcc" "src/tap/CMakeFiles/st_tap.dir/p1500.cpp.o.d"
  "/root/repo/src/tap/scan_chain.cpp" "src/tap/CMakeFiles/st_tap.dir/scan_chain.cpp.o" "gcc" "src/tap/CMakeFiles/st_tap.dir/scan_chain.cpp.o.d"
  "/root/repo/src/tap/tap_controller.cpp" "src/tap/CMakeFiles/st_tap.dir/tap_controller.cpp.o" "gcc" "src/tap/CMakeFiles/st_tap.dir/tap_controller.cpp.o.d"
  "/root/repo/src/tap/test_sb.cpp" "src/tap/CMakeFiles/st_tap.dir/test_sb.cpp.o" "gcc" "src/tap/CMakeFiles/st_tap.dir/test_sb.cpp.o.d"
  "/root/repo/src/tap/tester.cpp" "src/tap/CMakeFiles/st_tap.dir/tester.cpp.o" "gcc" "src/tap/CMakeFiles/st_tap.dir/tester.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/system/CMakeFiles/st_system.dir/DependInfo.cmake"
  "/root/repo/build/src/synchro/CMakeFiles/st_synchro.dir/DependInfo.cmake"
  "/root/repo/build/src/clock/CMakeFiles/st_clock.dir/DependInfo.cmake"
  "/root/repo/build/src/verify/CMakeFiles/st_verify.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/st_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sb/CMakeFiles/st_sb.dir/DependInfo.cmake"
  "/root/repo/build/src/async/CMakeFiles/st_async.dir/DependInfo.cmake"
  "/root/repo/build/src/analytic/CMakeFiles/st_analytic.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/st_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
