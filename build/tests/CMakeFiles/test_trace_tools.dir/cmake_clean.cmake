file(REMOVE_RECURSE
  "CMakeFiles/test_trace_tools.dir/test_trace_tools.cpp.o"
  "CMakeFiles/test_trace_tools.dir/test_trace_tools.cpp.o.d"
  "test_trace_tools"
  "test_trace_tools.pdb"
  "test_trace_tools[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace_tools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
