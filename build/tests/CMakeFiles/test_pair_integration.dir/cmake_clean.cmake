file(REMOVE_RECURSE
  "CMakeFiles/test_pair_integration.dir/test_pair_integration.cpp.o"
  "CMakeFiles/test_pair_integration.dir/test_pair_integration.cpp.o.d"
  "test_pair_integration"
  "test_pair_integration.pdb"
  "test_pair_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pair_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
