file(REMOVE_RECURSE
  "CMakeFiles/test_wide_channel.dir/test_wide_channel.cpp.o"
  "CMakeFiles/test_wide_channel.dir/test_wide_channel.cpp.o.d"
  "test_wide_channel"
  "test_wide_channel.pdb"
  "test_wide_channel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wide_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
