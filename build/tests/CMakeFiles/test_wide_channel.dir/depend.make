# Empty dependencies file for test_wide_channel.
# This may be replaced when dependencies are built.
