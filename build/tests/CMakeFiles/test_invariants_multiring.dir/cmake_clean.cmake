file(REMOVE_RECURSE
  "CMakeFiles/test_invariants_multiring.dir/test_invariants_multiring.cpp.o"
  "CMakeFiles/test_invariants_multiring.dir/test_invariants_multiring.cpp.o.d"
  "test_invariants_multiring"
  "test_invariants_multiring.pdb"
  "test_invariants_multiring[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_invariants_multiring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
