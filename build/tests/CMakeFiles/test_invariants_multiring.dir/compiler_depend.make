# Empty compiler generated dependencies file for test_invariants_multiring.
# This may be replaced when dependencies are built.
