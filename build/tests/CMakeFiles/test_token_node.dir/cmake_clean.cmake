file(REMOVE_RECURSE
  "CMakeFiles/test_token_node.dir/test_token_node.cpp.o"
  "CMakeFiles/test_token_node.dir/test_token_node.cpp.o.d"
  "test_token_node"
  "test_token_node.pdb"
  "test_token_node[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_token_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
