# Empty dependencies file for test_token_node.
# This may be replaced when dependencies are built.
