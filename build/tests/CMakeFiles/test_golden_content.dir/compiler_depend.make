# Empty compiler generated dependencies file for test_golden_content.
# This may be replaced when dependencies are built.
