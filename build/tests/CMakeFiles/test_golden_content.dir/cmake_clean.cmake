file(REMOVE_RECURSE
  "CMakeFiles/test_golden_content.dir/test_golden_content.cpp.o"
  "CMakeFiles/test_golden_content.dir/test_golden_content.cpp.o.d"
  "test_golden_content"
  "test_golden_content.pdb"
  "test_golden_content[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_golden_content.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
