file(REMOVE_RECURSE
  "CMakeFiles/test_tester_data.dir/test_tester_data.cpp.o"
  "CMakeFiles/test_tester_data.dir/test_tester_data.cpp.o.d"
  "test_tester_data"
  "test_tester_data.pdb"
  "test_tester_data[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tester_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
