# Empty compiler generated dependencies file for test_tester_data.
# This may be replaced when dependencies are built.
