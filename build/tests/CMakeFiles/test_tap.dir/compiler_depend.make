# Empty compiler generated dependencies file for test_tap.
# This may be replaced when dependencies are built.
