file(REMOVE_RECURSE
  "CMakeFiles/test_tap.dir/test_tap.cpp.o"
  "CMakeFiles/test_tap.dir/test_tap.cpp.o.d"
  "test_tap"
  "test_tap.pdb"
  "test_tap[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
