# Empty dependencies file for test_boundary_router.
# This may be replaced when dependencies are built.
