file(REMOVE_RECURSE
  "CMakeFiles/test_boundary_router.dir/test_boundary_router.cpp.o"
  "CMakeFiles/test_boundary_router.dir/test_boundary_router.cpp.o.d"
  "test_boundary_router"
  "test_boundary_router.pdb"
  "test_boundary_router[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_boundary_router.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
