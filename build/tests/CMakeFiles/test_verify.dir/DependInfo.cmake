
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_verify.cpp" "tests/CMakeFiles/test_verify.dir/test_verify.cpp.o" "gcc" "tests/CMakeFiles/test_verify.dir/test_verify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/system/CMakeFiles/st_system.dir/DependInfo.cmake"
  "/root/repo/build/src/deadlock/CMakeFiles/st_deadlock.dir/DependInfo.cmake"
  "/root/repo/build/src/verify/CMakeFiles/st_verify.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/st_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/synchro/CMakeFiles/st_synchro.dir/DependInfo.cmake"
  "/root/repo/build/src/sb/CMakeFiles/st_sb.dir/DependInfo.cmake"
  "/root/repo/build/src/clock/CMakeFiles/st_clock.dir/DependInfo.cmake"
  "/root/repo/build/src/async/CMakeFiles/st_async.dir/DependInfo.cmake"
  "/root/repo/build/src/analytic/CMakeFiles/st_analytic.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/st_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
