# Empty compiler generated dependencies file for test_triangle_integration.
# This may be replaced when dependencies are built.
