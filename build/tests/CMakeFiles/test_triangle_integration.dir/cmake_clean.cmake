file(REMOVE_RECURSE
  "CMakeFiles/test_triangle_integration.dir/test_triangle_integration.cpp.o"
  "CMakeFiles/test_triangle_integration.dir/test_triangle_integration.cpp.o.d"
  "test_triangle_integration"
  "test_triangle_integration.pdb"
  "test_triangle_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_triangle_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
