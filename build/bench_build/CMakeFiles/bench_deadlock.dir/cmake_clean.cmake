file(REMOVE_RECURSE
  "../bench/bench_deadlock"
  "../bench/bench_deadlock.pdb"
  "CMakeFiles/bench_deadlock.dir/bench_deadlock.cpp.o"
  "CMakeFiles/bench_deadlock.dir/bench_deadlock.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_deadlock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
