# Empty compiler generated dependencies file for bench_deadlock.
# This may be replaced when dependencies are built.
