# Empty compiler generated dependencies file for bench_formal.
# This may be replaced when dependencies are built.
