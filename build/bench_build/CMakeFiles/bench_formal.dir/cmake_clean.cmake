file(REMOVE_RECURSE
  "../bench/bench_formal"
  "../bench/bench_formal.pdb"
  "CMakeFiles/bench_formal.dir/bench_formal.cpp.o"
  "CMakeFiles/bench_formal.dir/bench_formal.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_formal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
