file(REMOVE_RECURSE
  "../bench/bench_determinism"
  "../bench/bench_determinism.pdb"
  "CMakeFiles/bench_determinism.dir/bench_determinism.cpp.o"
  "CMakeFiles/bench_determinism.dir/bench_determinism.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_determinism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
