file(REMOVE_RECURSE
  "../bench/bench_debug_features"
  "../bench/bench_debug_features.pdb"
  "CMakeFiles/bench_debug_features.dir/bench_debug_features.cpp.o"
  "CMakeFiles/bench_debug_features.dir/bench_debug_features.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_debug_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
