file(REMOVE_RECURSE
  "../bench/bench_architecture"
  "../bench/bench_architecture.pdb"
  "CMakeFiles/bench_architecture.dir/bench_architecture.cpp.o"
  "CMakeFiles/bench_architecture.dir/bench_architecture.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_architecture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
