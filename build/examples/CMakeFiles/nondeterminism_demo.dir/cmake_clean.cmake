file(REMOVE_RECURSE
  "CMakeFiles/nondeterminism_demo.dir/nondeterminism_demo.cpp.o"
  "CMakeFiles/nondeterminism_demo.dir/nondeterminism_demo.cpp.o.d"
  "nondeterminism_demo"
  "nondeterminism_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nondeterminism_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
