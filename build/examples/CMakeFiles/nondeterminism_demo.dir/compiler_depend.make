# Empty compiler generated dependencies file for nondeterminism_demo.
# This may be replaced when dependencies are built.
