file(REMOVE_RECURSE
  "CMakeFiles/wide_stream.dir/wide_stream.cpp.o"
  "CMakeFiles/wide_stream.dir/wide_stream.cpp.o.d"
  "wide_stream"
  "wide_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wide_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
