# Empty dependencies file for wide_stream.
# This may be replaced when dependencies are built.
