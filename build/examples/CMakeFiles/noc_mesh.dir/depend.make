# Empty dependencies file for noc_mesh.
# This may be replaced when dependencies are built.
