// st_topo: procedural NoC-scale topology generator driver.
//
// Generates a seeded mesh / torus / star / hierarchical-ring SocSpec
// (64-1024 SBs, src/topo), optionally emits it as a `.stspec` v1 file for
// the st_lint / st_fuzz / st_debug toolchain, lints it, proves the sva
// verification obligations, and sweeps routed-traffic determinism under
// perturbed delay configurations — re-running the sweep at every --jobs
// value and requiring bit-identical aggregates.
//
//   $ ./tools/st_topo --shape mesh --sbs 256 --seed 42 --lint --verify
//   $ ./tools/st_topo --shape torus --sbs 64 --emit torus64.stspec
//   $ ./tools/st_topo --shape mesh --sbs 64 --seed 7 --sweep 3 --jobs 1,2,4
//
// Exit status: 0 clean, 1 any lint error / unproven obligation / trace
// mismatch / jobs-variance, 2 usage or I/O error.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "gang/delay_sweep.hpp"
#include "lint/lint.hpp"
#include "sim/random.hpp"
#include "sva/spec_text.hpp"
#include "sva/verify.hpp"
#include "system/delay_config.hpp"
#include "system/soc.hpp"
#include "topo/topo.hpp"
#include "verify/determinism.hpp"

namespace {

using namespace st;

struct Options {
    topo::Options gen;
    std::string emit_path;
    bool lint = false;
    bool verify = false;
    std::size_t sweep_seeds = 0;  ///< 0 = no sweep
    runner::Shard shard;          ///< 1-of-N slice of the sweep indices
    std::vector<std::size_t> jobs = {1, 2, 4};
    std::vector<std::size_t> gangs = {1};  ///< lockstep widths for --sweep
    std::uint64_t cycles = 90;  ///< golden-trace horizon (local cycles)
    bool quiet = false;
};

void usage() {
    std::printf(
        "usage: st_topo [options]\n"
        "  --shape NAME    mesh|torus|star|hring (default mesh)\n"
        "  --sbs N         SB count, >= 2 (default 64)\n"
        "  --seed S        generator seed, non-zero (default 1)\n"
        "  --emit PATH     write the generated .stspec ('-' for stdout)\n"
        "  --lint          run every static lint pass (clean required)\n"
        "  --verify        prove the sva verification obligations\n"
        "  --sweep K       determinism sweep over K perturbed delay\n"
        "                  configs; repeated at every --jobs value and the\n"
        "                  aggregates must be bit-identical\n"
        "  --jobs LIST     comma-separated worker counts for --sweep\n"
        "                  (default 1,2,4)\n"
        "  --gang LIST     comma-separated lockstep lane widths for --sweep\n"
        "                  (default 1 = scalar engine); the sweep repeats at\n"
        "                  every (jobs, gang) pair and the aggregates must\n"
        "                  be bit-identical across the whole grid\n"
        "  --shard I/N     run only the 1-of-N deterministic slice I of the\n"
        "                  sweep; shard results merge to the full sweep\n"
        "                  (verify::merge_sweep_shards)\n"
        "  --cycles N      golden-trace horizon in local cycles (default "
        "90)\n"
        "  --quiet         print only the final verdict lines\n");
}

std::uint64_t parse_num(const char* flag, const char* s) {
    char* end = nullptr;
    const std::uint64_t v = std::strtoull(s, &end, 0);
    if (end == s || *end != '\0') {
        std::fprintf(stderr, "st_topo: %s expects a number, got '%s'\n", flag,
                     s);
        std::exit(2);
    }
    return v;
}

/// Paper-style joint perturbation: every FIFO/ring delay dimension drawn
/// from {50, 75, 150, 200} percent of nominal, clocks clamped to the
/// audited >= 75 percent envelope.
sys::DelayConfig perturb(const sys::SocSpec& spec, std::uint64_t seed) {
    auto cfg = sys::DelayConfig::nominal(spec);
    sim::Rng rng(seed);
    const unsigned percents[4] = {50, 75, 150, 200};
    for (std::size_t d = 0; d < cfg.dimensions(); ++d) {
        const bool is_clock = d >= cfg.dimensions() - cfg.clock_pct.size();
        const unsigned pct = percents[rng.next_below(4)];
        cfg.set(d, is_clock ? std::max(75u, pct) : pct);
    }
    return cfg;
}

}  // namespace

int main(int argc, char** argv) {
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char* {
            if (i + 1 >= argc) {
                usage();
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--shape") {
            const char* name = next();
            const auto s = topo::parse_shape(name);
            if (!s) {
                std::fprintf(stderr, "st_topo: unknown shape '%s'\n", name);
                return 2;
            }
            opt.gen.shape = *s;
        } else if (arg == "--sbs") {
            opt.gen.sbs = parse_num("--sbs", next());
        } else if (arg == "--seed") {
            opt.gen.seed = parse_num("--seed", next());
        } else if (arg == "--emit") {
            opt.emit_path = next();
        } else if (arg == "--lint") {
            opt.lint = true;
        } else if (arg == "--verify") {
            opt.verify = true;
        } else if (arg == "--sweep") {
            opt.sweep_seeds = parse_num("--sweep", next());
        } else if (arg == "--shard") {
            const char* text = next();
            const auto shard = runner::parse_shard(text);
            if (!shard) {
                std::fprintf(stderr,
                             "st_topo: --shard expects I/N with I < N, got "
                             "'%s'\n",
                             text);
                return 2;
            }
            opt.shard = *shard;
        } else if (arg == "--cycles") {
            opt.cycles = parse_num("--cycles", next());
        } else if (arg == "--jobs" || arg == "--gang") {
            auto& out = arg == "--jobs" ? opt.jobs : opt.gangs;
            out.clear();
            std::string list = next();
            std::size_t pos = 0;
            while (pos <= list.size()) {
                const auto comma = list.find(',', pos);
                const auto part = list.substr(
                    pos, comma == std::string::npos ? comma : comma - pos);
                out.push_back(parse_num(arg.c_str(), part.c_str()));
                if (comma == std::string::npos) break;
                pos = comma + 1;
            }
            if (out.empty()) {
                usage();
                return 2;
            }
        } else if (arg == "--quiet") {
            opt.quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            usage();
            return 2;
        }
    }

    sva::SpecDoc doc;
    try {
        doc = topo::generate(opt.gen);
    } catch (const std::invalid_argument& e) {
        std::fprintf(stderr, "st_topo: %s\n", e.what());
        return 2;
    }
    const std::string tag = std::string(topo::shape_name(opt.gen.shape)) +
                            std::to_string(opt.gen.sbs);
    if (!opt.quiet) {
        std::printf("%s: %zu sb(s), %zu ring(s), %zu bus(es), "
                    "%zu channel(s), seed 0x%llx\n",
                    tag.c_str(), doc.sbs.size(), doc.rings.size(),
                    doc.multi_rings.size(), doc.channels.size(),
                    static_cast<unsigned long long>(opt.gen.seed));
    }

    if (!opt.emit_path.empty()) {
        const std::string text = sva::to_text(doc);
        if (opt.emit_path == "-") {
            std::fputs(text.c_str(), stdout);
        } else {
            std::ofstream os(opt.emit_path, std::ios::binary);
            os << text;
            if (!os) {
                std::fprintf(stderr, "st_topo: cannot write %s\n",
                             opt.emit_path.c_str());
                return 2;
            }
            if (!opt.quiet) {
                std::printf("%s: wrote %s (%zu bytes)\n", tag.c_str(),
                            opt.emit_path.c_str(), text.size());
            }
        }
    }

    bool failed = false;
    const sys::SocSpec spec = sva::to_spec(doc);

    if (opt.lint) {
        const auto report = lint::lint(spec);
        if (!opt.quiet || !report.ok()) {
            for (const auto& d : report.diagnostics()) {
                std::printf("%s: %s\n", tag.c_str(), d.to_string().c_str());
            }
        }
        std::printf("%s: lint: %zu error(s), %zu warning(s), %zu note(s)\n",
                    tag.c_str(), report.errors(), report.warnings(),
                    report.notes());
        failed |= !report.ok();
    }

    if (opt.verify) {
        const auto vr = sva::verify(spec);
        std::printf("%s: verify: %s\n", tag.c_str(), vr.summary().c_str());
        failed |= !vr.clean();
    }

    if (opt.sweep_seeds > 0) {
        const std::uint64_t horizon = opt.cycles + 40;
        const auto run = [&](const sys::DelayConfig& cfg) {
            sys::Soc soc(sys::apply(spec, cfg));
            soc.run_cycles(horizon, sim::ms(2000));
            return soc.traces();
        };
        std::vector<sys::DelayConfig> sweep;
        for (std::uint64_t s = 1; s <= opt.sweep_seeds; ++s) {
            sweep.push_back(perturb(spec, opt.gen.seed + s));
        }
        // One harness per jobs value would re-capture the golden run; a
        // single harness captures it once and the aggregates must still be
        // bit-identical at every worker count (the runner reduces in
        // perturbation order).
        verify::DeterminismHarness<sys::DelayConfig> harness(
            run, sys::DelayConfig::nominal(spec), opt.cycles);
        // Capture the golden run up front: the gang lanes' streaming
        // checkers hold a reference to the harness's GoldenIndex.
        harness.capture_nominal();
        bool first = true;
        verify::SweepResult reference;
        bool grid_variance = false;
        for (const std::size_t gang : opt.gangs) {
            if (gang > 1) {
                harness.set_gang(
                    [&spec, &harness, horizon, gang] {
                        return gang::make_delay_block_runner(
                            spec, harness.golden_index(), horizon,
                            sim::ms(2000), gang);
                    },
                    gang);
            } else {
                harness.set_gang({}, 1);
            }
            for (const std::size_t jobs : opt.jobs) {
                const auto r = harness.sweep(sweep, jobs, opt.shard);
                std::printf(
                    "%s: sweep(jobs=%zu%s%s): %llu run(s), %llu match, "
                    "%llu mismatch\n",
                    tag.c_str(), jobs,
                    gang > 1 ? (", gang " + std::to_string(gang)).c_str()
                             : "",
                    opt.shard.is_full()
                        ? ""
                        : (", shard " + std::to_string(opt.shard.index) +
                           "/" + std::to_string(opt.shard.count))
                              .c_str(),
                    static_cast<unsigned long long>(r.runs),
                    static_cast<unsigned long long>(r.matches),
                    static_cast<unsigned long long>(r.mismatches));
                for (const auto& e : r.examples) {
                    std::printf("%s:   mismatch: run %llu: %s\n",
                                tag.c_str(),
                                static_cast<unsigned long long>(e.index),
                                e.locus.c_str());
                }
                failed |= !r.all_match();
                if (first) {
                    reference = r;
                    first = false;
                } else if (!(r == reference)) {
                    grid_variance = true;
                }
            }
        }
        if (grid_variance) {
            std::printf("%s: sweep: AGGREGATES VARY ACROSS THE "
                        "--jobs/--gang GRID\n",
                        tag.c_str());
            failed = true;
        } else if (opt.gangs.size() > 1) {
            std::printf("%s: sweep: bit-identical aggregates at every "
                        "(--jobs, --gang) pair\n",
                        tag.c_str());
        } else if (opt.jobs.size() > 1) {
            std::printf("%s: sweep: bit-identical aggregates at every "
                        "--jobs value\n",
                        tag.c_str());
        }
    }

    return failed ? 1 : 0;
}
