// st_lint: static analyzer for synchro-tokens SocSpecs.
//
// Runs every lint pass (topology, schedule feasibility, FIFO provisioning,
// counter widths, clock hazards, absorbed deadlock fixpoint) over the shipped
// testbench specs or over a deliberately broken fixture, and prints a
// GCC-style diagnostics listing. Exit status is non-zero when any
// error-severity diagnostic was produced — CTest runs this over every shipped
// spec (expected clean) and over every fixture (expected to fail).
//
//   $ ./tools/st_lint                      # lint all shipped testbenches
//   $ ./tools/st_lint --spec triangle
//   $ ./tools/st_lint --fixture undersized-fifo
//   $ ./tools/st_lint --spec all --race-audit 200

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "lint/fixtures.hpp"
#include "lint/lint.hpp"
#include "lint/race_audit.hpp"
#include "system/testbenches.hpp"

namespace {

using namespace st;

struct Options {
    std::string spec = "all";
    std::string fixture;
    std::uint64_t race_cycles = 0;
    bool deadlock_pass = true;
    bool quiet = false;
};

sys::SocSpec make_shipped(const std::string& name) {
    try {
        return sys::make_named_spec(name);
    } catch (const std::invalid_argument&) {
        std::fprintf(stderr, "st_lint: unknown spec '%s'\n", name.c_str());
        std::exit(2);
    }
}

void usage() {
    std::printf(
        "usage: st_lint [options]\n"
        "  --spec NAME       shipped testbench to lint: all");
    for (const auto& s : sys::named_specs()) std::printf("|%s", s.c_str());
    std::printf(
        " (default all)\n"
        "  --fixture NAME    lint a deliberately broken fixture instead\n"
        "  --race-audit N    additionally simulate N local cycles with the\n"
        "                    scheduler same-slot race audit enabled\n"
        "  --no-deadlock     skip the absorbed deadlock fixpoint pass\n"
        "  --list            list passes and fixtures, then exit\n"
        "  --quiet           print only per-spec summary lines\n");
}

void list_catalogs() {
    std::printf("passes:\n");
    for (const auto& p : lint::pass_catalog()) {
        std::printf("  %-22s %s\n", p.id, p.summary);
    }
    std::printf("fixtures (each must fail with its rule):\n");
    for (const auto& f : lint::fixture_catalog()) {
        std::printf("  %-22s [%s] %s\n", f.name, f.expected_rule, f.summary);
    }
}

/// Print one report GCC-style, using the spec name as the "file" component.
void print_report(const std::string& spec_name, const lint::LintReport& report,
                  bool quiet) {
    if (!quiet) {
        for (const auto& d : report.diagnostics()) {
            std::printf("%s: %s: %s: %s [%s]\n", spec_name.c_str(),
                        d.locus.c_str(), lint::severity_name(d.severity),
                        d.message.c_str(), d.rule.c_str());
            if (!d.fix_hint.empty()) {
                std::printf("%s: %s: note: fix: %s\n", spec_name.c_str(),
                            d.locus.c_str(), d.fix_hint.c_str());
            }
        }
    }
    std::printf("%s: %zu error(s), %zu warning(s), %zu note(s)\n",
                spec_name.c_str(), report.errors(), report.warnings(),
                report.notes());
}

/// Lint (and optionally race-audit) one spec; returns its error count.
std::size_t lint_one(const std::string& name, const sys::SocSpec& spec,
                     const Options& opt) {
    lint::LintOptions lopt;
    lopt.deadlock_pass = opt.deadlock_pass;
    lint::LintReport report = lint::lint(spec, lopt);
    // Only audit dynamically when the spec is statically sound: elaborating
    // a structurally broken spec would throw long before any race could.
    if (opt.race_cycles > 0 && report.ok()) {
        lint::LintReport audit =
            lint::run_race_audit(spec, opt.race_cycles, sim::ms(500));
        if (!opt.quiet) {
            std::printf("%s: race audit over %llu cycles: %zu race(s)\n",
                        name.c_str(),
                        static_cast<unsigned long long>(opt.race_cycles),
                        audit.errors());
        }
        report.merge(audit);
    }
    print_report(name, report, opt.quiet);
    return report.errors();
}

}  // namespace

int main(int argc, char** argv) {
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char* {
            if (i + 1 >= argc) {
                usage();
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--spec") {
            opt.spec = next();
        } else if (arg == "--fixture") {
            opt.fixture = next();
        } else if (arg == "--race-audit") {
            const char* value = next();
            char* end = nullptr;
            opt.race_cycles = std::strtoull(value, &end, 10);
            if (end == value || *end != '\0' || opt.race_cycles == 0) {
                std::fprintf(stderr,
                             "st_lint: --race-audit expects a positive cycle "
                             "count, got '%s'\n",
                             value);
                return 2;
            }
        } else if (arg == "--no-deadlock") {
            opt.deadlock_pass = false;
        } else if (arg == "--quiet") {
            opt.quiet = true;
        } else if (arg == "--list") {
            list_catalogs();
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            usage();
            return 2;
        }
    }

    if (!opt.fixture.empty() && opt.spec != "all") {
        std::fprintf(stderr,
                     "st_lint: --spec and --fixture are mutually exclusive\n");
        return 2;
    }

    std::size_t errors = 0;
    if (!opt.fixture.empty()) {
        try {
            errors = lint_one(opt.fixture, lint::make_fixture(opt.fixture),
                              opt);
        } catch (const std::invalid_argument& e) {
            std::fprintf(stderr, "st_lint: %s\n", e.what());
            return 2;
        }
    } else if (opt.spec == "all") {
        for (const auto& name : sys::named_specs()) {
            errors += lint_one(name, make_shipped(name), opt);
        }
    } else {
        errors = lint_one(opt.spec, make_shipped(opt.spec), opt);
    }
    return errors == 0 ? 0 : 1;
}
