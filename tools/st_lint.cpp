// st_lint: static analyzer for synchro-tokens SocSpecs.
//
// Runs every lint pass (topology, schedule feasibility, FIFO provisioning,
// counter widths, clock hazards, absorbed deadlock fixpoint) over the shipped
// testbench specs or over a deliberately broken fixture, and prints a
// GCC-style diagnostics listing. Exit status is non-zero when any
// error-severity diagnostic was produced — CTest runs this over every shipped
// spec (expected clean) and over every fixture (expected to fail).
//
// --verify adds the sva static-verification tier: the token-flow graph
// passes prove deadlock-freedom / occupancy / clock-envelope / ordering
// obligations, and every non-proven finding carries a concretized witness
// that is replayed through the st_fuzz classifier (CONFIRMED or RETRACTED).
//
//   $ ./tools/st_lint                      # lint all shipped testbenches
//   $ ./tools/st_lint --spec triangle --verify
//   $ ./tools/st_lint --fixture undersized-fifo --verify --format=json
//   $ ./tools/st_lint --spec-file tests/data/ring_of_rings_256.stspec --verify
//   $ ./tools/st_lint --spec all --race-audit 200 --jobs 4

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "lint/fixtures.hpp"
#include "lint/lint.hpp"
#include "lint/race_audit.hpp"
#include "runner/runner.hpp"
#include "sva/fixtures.hpp"
#include "sva/spec_text.hpp"
#include "sva/verify.hpp"
#include "system/testbenches.hpp"

namespace {

using namespace st;

struct Options {
    std::string spec = "all";
    std::string fixture;
    std::string spec_file;
    std::uint64_t race_cycles = 0;
    std::size_t jobs = 0;  ///< 0 = auto (hardware threads, ST_JOBS override)
    bool deadlock_pass = true;
    bool verify = false;
    bool json = false;
    bool quiet = false;
};

/// printf-append into a string buffer. Specs are linted in parallel under
/// --spec all, so each one's listing is built off to the side and printed by
/// the reducer in catalog order — interleaving-free at any --jobs value.
void appendf(std::string& out, const char* fmt, ...) {
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    const int n = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    if (n > 0) {
        const auto old = out.size();
        out.resize(old + static_cast<std::size_t>(n) + 1);
        std::vsnprintf(out.data() + old, static_cast<std::size_t>(n) + 1, fmt,
                       ap2);
        out.pop_back();  // drop vsnprintf's terminating NUL
    }
    va_end(ap2);
}

/// The canonical diagnostic order: lint rules in pass-catalog order (with
/// each pass's sub-rules inlined), then the sva verifier passes, then the
/// dynamic race audit. Diagnostics are stably sorted by this before
/// rendering, so output is invariant under emission order and --jobs.
std::vector<std::string> canonical_rule_order() {
    std::vector<std::string> order = {
        "ring-endpoints", "channel-ring",       "initial-holder",
        "isolated-sb",    "param-sanity",       "counter-width",
        "recycle-feasibility", "fifo-depth",    "fifo-head-visibility",
        "clock-ratio",    "restart-delay",      "deadlock-fixpoint",
        "deadlock-advisory"};
    for (const auto& p : sva::sva_pass_catalog()) order.push_back(p.id);
    order.push_back("sched-race");
    return order;
}

sys::SocSpec make_shipped(const std::string& name) {
    try {
        return sys::make_named_spec(name);
    } catch (const std::invalid_argument&) {
        std::fprintf(stderr, "st_lint: unknown spec '%s'\n", name.c_str());
        std::exit(2);
    }
}

void usage() {
    std::printf(
        "usage: st_lint [options]\n"
        "  --spec NAME       shipped testbench to lint: all");
    for (const auto& s : sys::named_specs()) std::printf("|%s", s.c_str());
    std::printf(
        " (default all)\n"
        "  --fixture NAME    lint a deliberately broken fixture instead\n"
        "                    (lint and sva fixture catalogs)\n"
        "  --spec-file PATH  lint a .stspec file instead\n"
        "  --verify          run the sva static-verification tier: prove\n"
        "                    deadlock/occupancy/clock/ordering obligations\n"
        "                    and replay counterexample witnesses dynamically\n"
        "  --format=FMT      text (default) or json\n"
        "  --race-audit N    additionally simulate N local cycles with the\n"
        "                    scheduler same-slot race audit enabled\n"
        "  --jobs N          lint specs — and verifier passes and witness\n"
        "                    replays under --verify — in parallel\n"
        "                    (default: hardware threads, ST_JOBS override);\n"
        "                    output is bit-identical at any value\n"
        "  --no-deadlock     skip the absorbed deadlock fixpoint pass\n"
        "  --list            list passes and fixtures, then exit\n"
        "  --quiet           print only per-spec summary lines\n");
}

void list_catalogs() {
    std::printf("passes:\n");
    for (const auto& p : lint::pass_catalog()) {
        std::printf("  %-22s %s\n", p.id, p.summary);
    }
    std::printf("verifier passes (--verify):\n");
    for (const auto& p : sva::sva_pass_catalog()) {
        std::printf("  %-22s %s\n", p.id, p.summary);
    }
    std::printf("fixtures (each must fail with its rule):\n");
    for (const auto& f : lint::fixture_catalog()) {
        std::printf("  %-22s [%s] %s\n", f.name, f.expected_rule, f.summary);
    }
    std::printf("verifier fixtures (--verify; expected verdict):\n");
    for (const auto& f : sva::fixture_catalog()) {
        std::printf("  %-22s [%s -> %s] %s\n", f.name, f.pass,
                    sva::verdict_name(f.expected), f.summary);
    }
}

/// Render one report GCC-style, using the spec name as the "file" component.
void render_report(std::string& out, const std::string& spec_name,
                   const lint::LintReport& report, bool quiet) {
    if (!quiet) {
        for (const auto& d : report.diagnostics()) {
            appendf(out, "%s: %s: %s: %s [%s]\n", spec_name.c_str(),
                    d.locus.c_str(), lint::severity_name(d.severity),
                    d.message.c_str(), d.rule.c_str());
            if (!d.fix_hint.empty()) {
                appendf(out, "%s: %s: note: fix: %s\n", spec_name.c_str(),
                        d.locus.c_str(), d.fix_hint.c_str());
            }
        }
    }
    appendf(out, "%s: %zu error(s), %zu warning(s), %zu note(s)\n",
            spec_name.c_str(), report.errors(), report.warnings(),
            report.notes());
}

/// One spec's rendered diagnostics plus its error count. `json` holds the
/// per-spec JSON object when --format=json; the reducer assembles the array.
struct LintRun {
    std::string text;
    std::string json;
    std::size_t errors = 0;
};

/// Lint — and under --verify statically verify — one spec, rendering into
/// `run.text` (and `run.json` for machine-readable output).
LintRun lint_one(const std::string& name, const sys::SocSpec& spec,
                 const Options& opt) {
    LintRun run;
    lint::LintOptions lopt;
    lopt.deadlock_pass = opt.deadlock_pass;
    lint::LintReport report = lint::lint(spec, lopt);
    std::string verify_summary;
    if (opt.verify) {
        sva::VerifyOptions vopt;
        vopt.jobs = runner::resolve_jobs(opt.jobs);
        const sva::VerifyReport vr = sva::verify(spec, vopt);
        sva::render(vr, report);
        verify_summary = vr.summary();
    }
    // Only audit dynamically when the spec is statically sound: elaborating
    // a structurally broken spec would throw long before any race could.
    if (opt.race_cycles > 0 && report.ok()) {
        lint::LintReport audit =
            lint::run_race_audit(spec, opt.race_cycles, sim::ms(500));
        if (!opt.quiet && !opt.json) {
            appendf(run.text, "%s: race audit over %llu cycles: %zu race(s)\n",
                    name.c_str(),
                    static_cast<unsigned long long>(opt.race_cycles),
                    audit.errors());
        }
        report.merge(audit);
    }
    report.canonicalize(canonical_rule_order());
    if (!verify_summary.empty()) {
        appendf(run.text, "%s: verify: %s\n", name.c_str(),
                verify_summary.c_str());
    }
    render_report(run.text, name, report, opt.quiet);
    if (opt.json) {
        appendf(run.json,
                "{\"name\":\"%s\",\"errors\":%zu,\"warnings\":%zu,"
                "\"notes\":%zu",
                lint::json_escape(name).c_str(), report.errors(),
                report.warnings(), report.notes());
        if (!verify_summary.empty()) {
            appendf(run.json, ",\"verify\":\"%s\"",
                    lint::json_escape(verify_summary).c_str());
        }
        appendf(run.json, ",\"diagnostics\":%s}", report.to_json().c_str());
    }
    run.errors = report.errors();
    return run;
}

/// Print one run in the selected format; JSON objects are comma-joined into
/// a top-level array by the caller via `index`.
void emit(const LintRun& run, const Options& opt, std::size_t index) {
    if (opt.json) {
        std::printf("%s%s", index ? ",\n" : "[\n", run.json.c_str());
    } else {
        std::fputs(run.text.c_str(), stdout);
    }
}

void emit_close(const Options& opt, bool any) {
    if (opt.json) std::printf("%s]\n", any ? "\n" : "[");
}

}  // namespace

int main(int argc, char** argv) {
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char* {
            if (i + 1 >= argc) {
                usage();
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--spec") {
            opt.spec = next();
        } else if (arg == "--fixture") {
            opt.fixture = next();
        } else if (arg == "--spec-file") {
            opt.spec_file = next();
        } else if (arg == "--verify") {
            opt.verify = true;
        } else if (arg == "--format=text") {
            opt.json = false;
        } else if (arg == "--format=json") {
            opt.json = true;
        } else if (arg == "--race-audit") {
            const char* value = next();
            char* end = nullptr;
            opt.race_cycles = std::strtoull(value, &end, 10);
            if (end == value || *end != '\0' || opt.race_cycles == 0) {
                std::fprintf(stderr,
                             "st_lint: --race-audit expects a positive cycle "
                             "count, got '%s'\n",
                             value);
                return 2;
            }
        } else if (arg == "--jobs") {
            opt.jobs = std::strtoull(next(), nullptr, 0);
        } else if (arg == "--no-deadlock") {
            opt.deadlock_pass = false;
        } else if (arg == "--quiet") {
            opt.quiet = true;
        } else if (arg == "--list") {
            list_catalogs();
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            usage();
            return 2;
        }
    }

    const int exclusive = (!opt.fixture.empty() ? 1 : 0) +
                          (!opt.spec_file.empty() ? 1 : 0) +
                          (opt.spec != "all" ? 1 : 0);
    if (exclusive > 1) {
        std::fprintf(stderr,
                     "st_lint: --spec, --fixture and --spec-file are "
                     "mutually exclusive\n");
        return 2;
    }

    std::size_t errors = 0;
    if (!opt.fixture.empty()) {
        try {
            const LintRun run =
                lint_one(opt.fixture, sva::make_fixture(opt.fixture), opt);
            emit(run, opt, 0);
            emit_close(opt, true);
            errors = run.errors;
        } catch (const std::invalid_argument& e) {
            std::fprintf(stderr, "st_lint: %s\n", e.what());
            return 2;
        }
    } else if (!opt.spec_file.empty()) {
        try {
            const auto spec = sva::to_spec(sva::load_spec_file(opt.spec_file));
            const LintRun run = lint_one(opt.spec_file, spec, opt);
            emit(run, opt, 0);
            emit_close(opt, true);
            errors = run.errors;
        } catch (const std::runtime_error& e) {
            std::fprintf(stderr, "st_lint: %s\n", e.what());
            return 2;
        }
    } else if (opt.spec == "all") {
        // Specs are independent: fan them out on the st::runner engine and
        // print each rendered listing in catalog order.
        const auto names = sys::named_specs();
        runner::sweep(
            names.size(), runner::resolve_jobs(opt.jobs),
            [&](std::size_t i) {
                return lint_one(names[i], make_shipped(names[i]), opt);
            },
            [&](std::size_t i, LintRun&& run) {
                emit(run, opt, i);
                errors += run.errors;
            });
        emit_close(opt, !names.empty());
    } else {
        const LintRun run = lint_one(opt.spec, make_shipped(opt.spec), opt);
        emit(run, opt, 0);
        emit_close(opt, true);
        errors = run.errors;
    }
    return errors == 0 ? 0 : 1;
}
