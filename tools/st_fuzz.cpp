// st_fuzz: fault-injection fuzzing harness for synchro-tokens SoCs.
//
// Drives seeded property-based campaigns over the composed space of delay
// perturbations (the paper's §5 experiment) and injected hardware faults
// (token loss/duplication, FIFO stalls and stuck data, clock restart
// glitches, spurious tokens). Every run is classified against the nominal
// golden traces as deterministic / divergent / deadlock / invariant, failing
// cases are shrunk to minimal counterexamples, and counterexamples round-trip
// through replayable text repro files.
//
//   $ ./tools/st_fuzz --spec pair --runs 200                 # fault-free
//   $ ./tools/st_fuzz --spec pair --runs 50 --faults token-drop
//                     --expect deadlock,invariant --require-fired
//   $ ./tools/st_fuzz --fixture token-drop-deadlock --shrink
//                     --max-dims 3 --out repro.txt
//   $ ./tools/st_fuzz --replay repro.txt
//
// Exit status: 0 when every check passed, 1 on any unexpected outcome,
// 2 on usage / I/O errors.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "fuzz/campaign.hpp"
#include "fuzz/checkpoint.hpp"
#include "fuzz/fault.hpp"
#include "fuzz/repro.hpp"
#include "fuzz/shrink.hpp"
#include "runner/runner.hpp"
#include "system/testbenches.hpp"

namespace {

using namespace st;

struct Options {
    std::string spec = "pair";
    std::uint64_t seed = 1;
    std::uint64_t runs = 100;
    std::uint64_t cycles = 100;
    std::uint64_t max_events = 2'000'000;
    std::vector<fuzz::FaultClass> classes;
    std::size_t max_faults = 2;
    std::uint64_t warmup = 0;
    bool warmup_fork = true;
    bool streaming = true;
    std::optional<std::set<fuzz::Outcome>> expect;
    bool require_fired = false;
    bool do_shrink = false;
    std::size_t max_dims = 0;  ///< 0 = unchecked
    std::string out_path;
    std::string replay_path;
    std::string fixture;
    std::size_t jobs = 0;  ///< 0 = auto (hardware threads, ST_JOBS override)
    std::size_t gang = 1;  ///< lockstep lanes per worker (1 = scalar engine)
    runner::Shard shard;   ///< deterministic 1-of-N slice of the campaign
    std::string checkpoint_path;
    std::uint64_t checkpoint_every = 0;  ///< 0 = default (1024)
    bool resume = false;
    std::uint64_t stop_after = 0;  ///< 0 = run to completion
    std::vector<std::string> merge_paths;
    bool quiet = false;
};

/// Known-bad seeded fixtures, expressed directly in the repro format. The
/// token-drop fixture buries the real cause (one lost token) under decoy
/// delay perturbations and absorbed faults, so shrinking has real work to do.
struct Fixture {
    const char* name;
    const char* repro;
};

const Fixture kFixtures[] = {
    {"token-drop-deadlock",
     "spec pair\n"
     "cycles 120\n"
     "outcome deadlock\n"
     "delay 0 150\n"   // fifo0 stage delay
     "delay 3 150\n"   // ring0 b->a wire
     "delay 4 75\n"    // clk0 period
     "fault token-drop unit=0 side=1 nth=1 value=0\n"
     "fault restart-glitch unit=0 side=0 nth=1 value=300\n"
     "fault fifo-stall unit=0 side=0 nth=2 value=400\n"},
};

void usage() {
    std::printf(
        "usage: st_fuzz [options]\n"
        "  --spec NAME        testbench spec");
    for (const auto& s : sys::named_specs()) std::printf("|%s", s.c_str());
    std::printf(
        " (default pair)\n"
        "  --seed N           campaign PRNG seed (default 1)\n"
        "  --runs N           random cases to run (default 100)\n"
        "  --cycles N         local-cycle comparison window (default 100)\n"
        "  --max-events N     per-run livelock watchdog budget\n"
        "  --faults LIST      comma-separated fault classes to inject, or\n"
        "                     'all'; omitted = fault-free delay fuzzing\n"
        "  --max-faults N     max faults per random case (default 2)\n"
        "  --warmup N         shared nominal warm-up prefix (local cycles,\n"
        "                     < --cycles); each case forks from one snapshot\n"
        "                     of the prefix instead of re-simulating it\n"
        "  --no-warmup-fork   with --warmup: re-simulate the prefix per case\n"
        "                     (baseline; summaries are bit-identical)\n"
        "  --no-streaming     classify runs by the batch differ instead of\n"
        "                     the online streaming checker (bit-identical\n"
        "                     summaries, no early exit; see docs/PERF.md)\n"
        "  --expect LIST      comma-separated acceptable outcomes; any run\n"
        "                     outside the list fails the campaign\n"
        "  --require-fired    every run must trigger >= 1 injected fault\n"
        "  --shrink           shrink the first failing case to a minimal\n"
        "                     counterexample\n"
        "  --max-dims N       fail if the shrunk case keeps > N dimensions\n"
        "  --out FILE         write the shrunk counterexample repro to FILE\n"
        "  --replay FILE      replay a repro file; fail unless the recorded\n"
        "                     outcome reproduces\n"
        "  --fixture NAME     run a built-in known-bad fixture");
    for (const auto& f : kFixtures) std::printf(" [%s]", f.name);
    std::printf(
        "\n"
        "  --jobs N           parallel campaign workers (default: hardware\n"
        "                     threads, ST_JOBS override); results are\n"
        "                     bit-identical at every N\n"
        "  --gang W           run W cases per worker in lockstep on\n"
        "                     persistent reusable lanes (default 1 =\n"
        "                     scalar engine); composes with --jobs/--shard/\n"
        "                     --checkpoint and keeps summaries bit-identical\n"
        "  --shard I/N        run only the 1-of-N deterministic slice I of\n"
        "                     the campaign's case indices; N completed shard\n"
        "                     checkpoints --merge to the byte-identical\n"
        "                     single-process summary\n"
        "  --checkpoint FILE  write periodic campaign-progress images (and a\n"
        "                     final one) to FILE; atomic, resumable\n"
        "  --checkpoint-every K  reduced cases between images (default 1024)\n"
        "  --resume           continue from --checkpoint FILE if it exists\n"
        "                     (fresh start otherwise); the final summary is\n"
        "                     bit-identical to an uninterrupted run\n"
        "  --stop-after N     stop cleanly after N reduced cases (simulates\n"
        "                     a mid-campaign kill for resume testing)\n"
        "  --merge LIST       merge comma-separated completed shard\n"
        "                     checkpoint files and print the combined\n"
        "                     campaign summary\n"
        "  --quiet            print only summary lines\n");
}

bool parse_classes(const std::string& list,
                   std::vector<fuzz::FaultClass>& out) {
    if (list == "all") {
        out = fuzz::all_fault_classes();
        return true;
    }
    std::istringstream is(list);
    std::string tok;
    while (std::getline(is, tok, ',')) {
        const auto cls = fuzz::parse_fault_class(tok);
        if (!cls) {
            std::fprintf(stderr, "st_fuzz: unknown fault class '%s'\n",
                         tok.c_str());
            return false;
        }
        out.push_back(*cls);
    }
    return !out.empty();
}

bool parse_expect(const std::string& list, std::set<fuzz::Outcome>& out) {
    std::istringstream is(list);
    std::string tok;
    while (std::getline(is, tok, ',')) {
        const auto o = fuzz::parse_outcome(tok);
        if (!o) {
            std::fprintf(stderr, "st_fuzz: unknown outcome '%s'\n",
                         tok.c_str());
            return false;
        }
        out.insert(*o);
    }
    return !out.empty();
}

const char* locus_kind_name(verify::MismatchLocus::Kind k) {
    switch (k) {
        case verify::MismatchLocus::Kind::kValue: return "value";
        case verify::MismatchLocus::Kind::kExtra: return "extra-event";
        case verify::MismatchLocus::Kind::kShortfall: return "shortfall";
        case verify::MismatchLocus::Kind::kMissingSb: return "missing-sb";
        case verify::MismatchLocus::Kind::kNone: break;
    }
    return "none";
}

void print_locus(const verify::MismatchLocus& l) {
    if (!l.valid()) return;
    std::printf("    locus kind=%s sb=%s index=%llu cycle=%llu port=%u",
                locus_kind_name(l.kind), l.sb.c_str(),
                static_cast<unsigned long long>(l.index),
                static_cast<unsigned long long>(l.cycle), l.port);
    if (l.expected) {
        std::printf(" expected=0x%llx",
                    static_cast<unsigned long long>(l.expected->word));
    }
    if (l.actual) {
        std::printf(" actual=0x%llx",
                    static_cast<unsigned long long>(l.actual->word));
    }
    std::printf("\n");
}

void print_case(const fuzz::FuzzCase& c, const fuzz::RunReport& r) {
    std::printf("  outcome=%s fired=%llu events=%llu%s%s\n",
                fuzz::outcome_name(r.outcome),
                static_cast<unsigned long long>(r.faults_fired),
                static_cast<unsigned long long>(r.events),
                r.detail.empty() ? "" : " :: ", r.detail.c_str());
    print_locus(r.locus);
    for (std::size_t d = 0; d < c.delays.dimensions(); ++d) {
        if (c.delays.get(d) != 100) {
            std::printf("    delay %s = %u%%\n",
                        c.delays.dim_name(d).c_str(), c.delays.get(d));
        }
    }
    for (const auto& f : c.faults) {
        std::printf("    fault %s\n", f.describe().c_str());
    }
}

/// Shrink `failing`, report, enforce --max-dims, optionally write --out.
/// Returns false on any check failure.
bool shrink_and_report(const fuzz::Campaign& campaign,
                       const fuzz::FuzzCase& failing, const Options& opt) {
    const fuzz::ShrinkResult res = fuzz::shrink(campaign, failing);
    std::printf(
        "shrunk: %zu -> %zu dimension(s) in %zu run(s), outcome %s\n",
        failing.complexity(), res.minimal.complexity(), res.attempts,
        fuzz::outcome_name(res.outcome));
    print_case(res.minimal, campaign.run_case(res.minimal));
    if (opt.max_dims != 0 && res.minimal.complexity() > opt.max_dims) {
        std::fprintf(stderr,
                     "st_fuzz: shrunk case keeps %zu dimensions (> %zu)\n",
                     res.minimal.complexity(), opt.max_dims);
        return false;
    }
    if (!opt.out_path.empty()) {
        fuzz::Repro repro = fuzz::Repro::from_case(
            campaign.config().spec_name, campaign.config().cycles,
            res.outcome, res.minimal);
        repro.seed = opt.seed;
        repro.jobs = runner::resolve_jobs(opt.jobs);
        std::ofstream out(opt.out_path);
        if (!out) {
            std::fprintf(stderr, "st_fuzz: cannot write '%s'\n",
                         opt.out_path.c_str());
            return false;
        }
        out << repro.to_text();
        std::printf("wrote %s\n", opt.out_path.c_str());
    }
    return true;
}

/// Replay one parsed repro (from file or fixture). Asserts the recorded
/// outcome reproduces; with --shrink also minimizes it.
int run_repro(const fuzz::Repro& repro, const Options& opt) {
    fuzz::CampaignConfig cfg;
    cfg.spec_name = repro.spec_name;
    cfg.cycles = repro.cycles;
    cfg.max_events = opt.max_events;
    cfg.streaming = opt.streaming;
    const fuzz::Campaign campaign(cfg);
    const fuzz::FuzzCase c = repro.to_case(campaign.spec());
    const fuzz::RunReport r = campaign.run_case(c);
    std::printf("replay: format=v%llu spec=%s cycles=%llu",
                static_cast<unsigned long long>(repro.version),
                repro.spec_name.c_str(),
                static_cast<unsigned long long>(repro.cycles));
    if (repro.seed) {
        std::printf(" seed=%llu",
                    static_cast<unsigned long long>(*repro.seed));
    }
    if (repro.jobs) {
        std::printf(" jobs=%llu",
                    static_cast<unsigned long long>(*repro.jobs));
    }
    std::printf("\n");
    print_case(c, r);
    if (repro.expected && r.outcome != *repro.expected) {
        std::fprintf(stderr,
                     "st_fuzz: recorded outcome %s did not reproduce "
                     "(got %s)\n",
                     fuzz::outcome_name(*repro.expected),
                     fuzz::outcome_name(r.outcome));
        return 1;
    }
    if (opt.do_shrink) {
        if (r.outcome == fuzz::Outcome::kDeterministic) {
            std::fprintf(stderr,
                         "st_fuzz: nothing to shrink (deterministic)\n");
            return 1;
        }
        if (!shrink_and_report(campaign, c, opt)) return 1;
    }
    return 0;
}

void print_summary_line(const char* label, const std::string& spec,
                        std::uint64_t seed, const fuzz::CampaignSummary& s) {
    std::printf(
        "%s: spec=%s seed=%llu runs=%llu | deterministic=%llu "
        "divergent=%llu deadlock=%llu invariant=%llu | fault-fired=%llu\n",
        label, spec.c_str(), static_cast<unsigned long long>(seed),
        static_cast<unsigned long long>(s.runs),
        static_cast<unsigned long long>(s.by_outcome[0]),
        static_cast<unsigned long long>(s.by_outcome[1]),
        static_cast<unsigned long long>(s.by_outcome[2]),
        static_cast<unsigned long long>(s.by_outcome[3]),
        static_cast<unsigned long long>(s.runs_with_fault_fired));
}

/// --merge: combine completed shard checkpoints into the single-process
/// summary. Every file must belong to the same campaign, be complete, and
/// together the shards must partition the case space exactly.
int run_merge(const Options& opt) {
    std::vector<fuzz::CampaignProgress> parts;
    for (const auto& path : opt.merge_paths) {
        parts.push_back(fuzz::load_progress_file(path));
    }
    const fuzz::CampaignKey& ref = parts.front().key;
    std::set<std::uint64_t> indices;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        const fuzz::CampaignProgress& p = parts[i];
        if (!p.key.same_campaign(ref)) {
            std::fprintf(stderr,
                         "st_fuzz: '%s' belongs to a different campaign\n",
                         opt.merge_paths[i].c_str());
            return 2;
        }
        if (p.key.shard.count != parts.size() ||
            !indices.insert(p.key.shard.index).second) {
            std::fprintf(stderr,
                         "st_fuzz: '%s' is shard %llu/%llu — expected %zu "
                         "distinct shards of /%zu\n",
                         opt.merge_paths[i].c_str(),
                         static_cast<unsigned long long>(p.key.shard.index),
                         static_cast<unsigned long long>(p.key.shard.count),
                         parts.size(), parts.size());
            return 2;
        }
        const std::uint64_t expect =
            p.key.shard.size_of(p.key.n_runs);
        if (p.completed != expect) {
            std::fprintf(stderr,
                         "st_fuzz: '%s' is incomplete (%llu of %llu cases)\n",
                         opt.merge_paths[i].c_str(),
                         static_cast<unsigned long long>(p.completed),
                         static_cast<unsigned long long>(expect));
            return 2;
        }
    }
    std::vector<fuzz::CampaignSummary> summaries;
    summaries.reserve(parts.size());
    for (auto& p : parts) summaries.push_back(std::move(p.summary));
    const fuzz::CampaignSummary merged = fuzz::merge_shards(summaries);
    std::printf("merged %zu shard(s):\n", parts.size());
    print_summary_line("campaign", ref.spec_name, ref.seed, merged);
    if (!opt.quiet) {
        for (const auto& f : merged.failures) {
            std::printf("failure at run %llu:\n",
                        static_cast<unsigned long long>(f.index));
            print_case(f.c, f.report);
        }
    }
    return 0;
}

int run_campaign(const Options& opt) {
    fuzz::CampaignConfig cfg;
    cfg.spec_name = opt.spec;
    cfg.cycles = opt.cycles;
    cfg.max_events = opt.max_events;
    cfg.classes = opt.classes;
    cfg.max_faults = opt.max_faults;
    cfg.warmup_cycles = opt.warmup;
    cfg.warmup_fork = opt.warmup_fork;
    cfg.streaming = opt.streaming;
    const fuzz::Campaign campaign(cfg);

    // Fault-free campaigns default to demanding full determinism — that is
    // the paper's claim under benign delay perturbation.
    std::set<fuzz::Outcome> expect;
    if (opt.expect) {
        expect = *opt.expect;
    } else if (opt.classes.empty()) {
        expect = {fuzz::Outcome::kDeterministic};
    }

    fuzz::CampaignControl ctl;
    ctl.gang_width = opt.gang;
    ctl.shard = opt.shard;
    ctl.checkpoint_path = opt.checkpoint_path;
    ctl.checkpoint_every = opt.checkpoint_every;
    ctl.stop_after = opt.stop_after;
    if (opt.resume) {
        // The CLI resume is lenient so "rerun the same command line until it
        // exits 0" works: a missing checkpoint file means a fresh start.
        std::ifstream probe(opt.checkpoint_path, std::ios::binary);
        ctl.resume = probe.good();
        if (!ctl.resume && !opt.quiet) {
            std::printf("no checkpoint at '%s'; starting fresh\n",
                        opt.checkpoint_path.c_str());
        }
    }

    std::uint64_t unexpected = 0;
    std::uint64_t unfired = 0;
    const auto summary = campaign.run(
        opt.runs, opt.seed,
        [&](std::size_t i, const fuzz::FuzzCase& c,
            const fuzz::RunReport& r) {
            const bool outcome_ok =
                expect.empty() || expect.count(r.outcome) != 0;
            const bool fired_ok = !opt.require_fired || r.faults_fired > 0;
            if (!outcome_ok) ++unexpected;
            if (!fired_ok) ++unfired;
            if (!opt.quiet || !outcome_ok || !fired_ok) {
                std::printf("run %zu:%s%s\n", i,
                            outcome_ok ? "" : " UNEXPECTED",
                            fired_ok ? "" : " NO-FAULT-FIRED");
                print_case(c, r);
            }
        },
        runner::resolve_jobs(opt.jobs), ctl);

    std::string label = "campaign";
    if (!opt.shard.is_full()) {
        label += " (shard " + std::to_string(opt.shard.index) + "/" +
                 std::to_string(opt.shard.count) + ")";
    }
    print_summary_line(label.c_str(), opt.spec, opt.seed, summary);
    if (opt.stop_after != 0 && summary.runs < opt.shard.size_of(opt.runs)) {
        std::printf("stopped after %llu reduced case(s); resume with "
                    "--resume --checkpoint %s\n",
                    static_cast<unsigned long long>(summary.runs),
                    opt.checkpoint_path.c_str());
        return unexpected == 0 && unfired == 0 ? 0 : 1;
    }

    bool ok = unexpected == 0 && unfired == 0;
    if (opt.do_shrink && !summary.failures.empty()) {
        ok = shrink_and_report(campaign, summary.failures.front().c, opt) &&
             ok;
    }
    return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "st_fuzz: %s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--spec") {
            opt.spec = next();
        } else if (arg == "--seed") {
            opt.seed = std::strtoull(next().c_str(), nullptr, 0);
        } else if (arg == "--runs") {
            opt.runs = std::strtoull(next().c_str(), nullptr, 0);
        } else if (arg == "--cycles") {
            opt.cycles = std::strtoull(next().c_str(), nullptr, 0);
        } else if (arg == "--max-events") {
            opt.max_events = std::strtoull(next().c_str(), nullptr, 0);
        } else if (arg == "--faults") {
            if (!parse_classes(next(), opt.classes)) return 2;
        } else if (arg == "--max-faults") {
            opt.max_faults = std::strtoull(next().c_str(), nullptr, 0);
        } else if (arg == "--warmup") {
            opt.warmup = std::strtoull(next().c_str(), nullptr, 0);
        } else if (arg == "--no-warmup-fork") {
            opt.warmup_fork = false;
        } else if (arg == "--no-streaming") {
            opt.streaming = false;
        } else if (arg == "--expect") {
            std::set<fuzz::Outcome> e;
            if (!parse_expect(next(), e)) return 2;
            opt.expect = std::move(e);
        } else if (arg == "--require-fired") {
            opt.require_fired = true;
        } else if (arg == "--shrink") {
            opt.do_shrink = true;
        } else if (arg == "--max-dims") {
            opt.max_dims = std::strtoull(next().c_str(), nullptr, 0);
        } else if (arg == "--out") {
            opt.out_path = next();
        } else if (arg == "--replay") {
            opt.replay_path = next();
        } else if (arg == "--fixture") {
            opt.fixture = next();
        } else if (arg == "--jobs") {
            opt.jobs = std::strtoull(next().c_str(), nullptr, 0);
        } else if (arg == "--gang") {
            opt.gang = std::strtoull(next().c_str(), nullptr, 0);
            if (opt.gang == 0) opt.gang = 1;
        } else if (arg == "--shard") {
            const std::string text = next();
            const auto shard = runner::parse_shard(text);
            if (!shard) {
                std::fprintf(stderr,
                             "st_fuzz: --shard expects I/N with I < N, got "
                             "'%s'\n",
                             text.c_str());
                return 2;
            }
            opt.shard = *shard;
        } else if (arg == "--checkpoint") {
            opt.checkpoint_path = next();
        } else if (arg == "--checkpoint-every") {
            opt.checkpoint_every = std::strtoull(next().c_str(), nullptr, 0);
        } else if (arg == "--resume") {
            opt.resume = true;
        } else if (arg == "--stop-after") {
            opt.stop_after = std::strtoull(next().c_str(), nullptr, 0);
        } else if (arg == "--merge") {
            std::istringstream is(next());
            std::string tok;
            while (std::getline(is, tok, ',')) {
                if (!tok.empty()) opt.merge_paths.push_back(tok);
            }
            if (opt.merge_paths.empty()) {
                std::fprintf(stderr,
                             "st_fuzz: --merge expects a comma-separated "
                             "list of checkpoint files\n");
                return 2;
            }
        } else if (arg == "--quiet") {
            opt.quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            usage();
            return 2;
        }
    }

    if ((opt.resume || opt.stop_after != 0) && opt.checkpoint_path.empty()) {
        std::fprintf(stderr,
                     "st_fuzz: --resume/--stop-after need --checkpoint\n");
        return 2;
    }

    try {
        if (!opt.merge_paths.empty()) return run_merge(opt);
        if (!opt.replay_path.empty()) {
            std::ifstream in(opt.replay_path);
            if (!in) {
                std::fprintf(stderr, "st_fuzz: cannot read '%s'\n",
                             opt.replay_path.c_str());
                return 2;
            }
            std::ostringstream text;
            text << in.rdbuf();
            return run_repro(fuzz::Repro::parse(text.str()), opt);
        }
        if (!opt.fixture.empty()) {
            for (const auto& f : kFixtures) {
                if (opt.fixture == f.name) {
                    return run_repro(fuzz::Repro::parse(f.repro), opt);
                }
            }
            std::fprintf(stderr, "st_fuzz: unknown fixture '%s'\n",
                         opt.fixture.c_str());
            return 2;
        }
        return run_campaign(opt);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "st_fuzz: %s\n", e.what());
        return 2;
    }
}
