// st_debug: deterministic debug driver for synchro-tokens SoCs.
//
// Commands execute in argument order, like a batch debugger script, against
// one Soc elaborated from --spec (or restored via --load). Because the
// simulation is deterministic in local-cycle space, two sessions that issue
// the same commands stop in bit-identical states — which is what makes
// save/restore/diff a meaningful workflow:
//
//   $ ./tools/st_debug --spec pair --break 0:50 --run --save a.snap
//   $ ./tools/st_debug --spec pair --load a.snap --save b.snap
//   $ ./tools/st_debug --diff a.snap b.snap          # identical
//
//   $ ./tools/st_debug --spec triangle --break 1:30 --run --step 200 --digest
//
// Exit status: 0 when every command succeeded (--diff: snapshots identical),
// 1 when --diff found divergence, 2 on usage / I/O errors.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "debug/driver.hpp"
#include "snap/snapshot.hpp"
#include "system/testbenches.hpp"

namespace {

using namespace st;

void usage() {
    std::printf(
        "usage: st_debug [commands...]   (executed in order)\n"
        "  --spec NAME        testbench spec");
    for (const auto& s : sys::named_specs()) std::printf("|%s", s.c_str());
    std::printf(
        " (default pair)\n"
        "  --break SB:CYCLE   add a breakpoint: stop when SB reaches the\n"
        "                     local cycle (repeatable)\n"
        "  --run              run until a breakpoint, quiescence, or the\n"
        "                     deadline; prints the stop reason\n"
        "  --step N           execute N scheduler events, then settle\n"
        "  --deadline-us N    simulated-time budget for --run (default 1000)\n"
        "  --save FILE        write a snapshot of the current state\n"
        "  --load FILE        restore FILE into a fresh Soc (same spec)\n"
        "  --digest           print the 64-bit state digest\n"
        "  --cycles           print each SB's local cycle count\n"
        "  --race-audit       enable the scheduler same-slot race audit for\n"
        "                     subsequent commands; the setting survives\n"
        "                     --load (resumed sessions audit identically)\n"
        "  --races            print the number of races recorded so far\n"
        "  --diff A B         compare two snapshot files; lists differing\n"
        "                     chunks, exit 1 unless identical\n");
}

struct Session {
    std::string spec_name = "pair";
    sim::Time deadline = sim::us(1000);
    std::unique_ptr<debug::Driver> driver;

    debug::Driver& get() {
        if (!driver) {
            driver = std::make_unique<debug::Driver>(
                sys::make_named_spec(spec_name));
        }
        return *driver;
    }
};

bool parse_breakpoint(const std::string& s, debug::Breakpoint& bp) {
    const auto colon = s.find(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 >= s.size()) {
        return false;
    }
    bp.sb = std::strtoull(s.substr(0, colon).c_str(), nullptr, 0);
    bp.cycle = std::strtoull(s.substr(colon + 1).c_str(), nullptr, 0);
    return true;
}

void print_state(debug::Driver& drv, const sys::SocSpec& spec) {
    std::printf("t=%llu ps", static_cast<unsigned long long>(drv.now()));
    for (std::size_t i = 0; i < spec.sbs.size(); ++i) {
        std::printf(" %s=%llu", spec.sbs[i].name.c_str(),
                    static_cast<unsigned long long>(drv.cycle(i)));
    }
    std::printf("\n");
}

int diff_files(const std::string& a, const std::string& b) {
    const snap::Snapshot sa = snap::Snapshot::load_file(a);
    const snap::Snapshot sb = snap::Snapshot::load_file(b);
    const auto diffs = snap::diff_snapshots(sa, sb);
    if (diffs.empty()) {
        std::printf("identical: %s == %s (digest %016llx)\n", a.c_str(),
                    b.c_str(),
                    static_cast<unsigned long long>(sa.digest()));
        return 0;
    }
    std::printf("%zu differing chunk(s) between %s and %s:\n%s",
                diffs.size(), a.c_str(), b.c_str(),
                snap::format_diff(diffs).c_str());
    return 1;
}

}  // namespace

int main(int argc, char** argv) {
    Session ses;
    if (argc <= 1) {
        usage();
        return 2;
    }
    try {
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            const auto next = [&]() -> std::string {
                if (i + 1 >= argc) {
                    std::fprintf(stderr, "st_debug: %s needs a value\n",
                                 arg.c_str());
                    std::exit(2);
                }
                return argv[++i];
            };
            if (arg == "--spec") {
                ses.spec_name = next();
                if (ses.driver) {
                    std::fprintf(stderr,
                                 "st_debug: --spec must precede the first "
                                 "driver command\n");
                    return 2;
                }
            } else if (arg == "--deadline-us") {
                ses.deadline =
                    sim::us(std::strtoull(next().c_str(), nullptr, 0));
            } else if (arg == "--break") {
                debug::Breakpoint bp;
                if (!parse_breakpoint(next(), bp)) {
                    std::fprintf(stderr,
                                 "st_debug: --break wants SB:CYCLE\n");
                    return 2;
                }
                ses.get().add_breakpoint(bp);
            } else if (arg == "--run") {
                auto& drv = ses.get();
                const debug::StopInfo stop = drv.run(ses.deadline);
                std::printf("%s\n", debug::format_stop(stop).c_str());
                print_state(drv, drv.soc().spec());
            } else if (arg == "--step") {
                auto& drv = ses.get();
                const std::uint64_t n =
                    std::strtoull(next().c_str(), nullptr, 0);
                const std::uint64_t done = drv.step(n);
                std::printf("stepped %llu event(s)\n",
                            static_cast<unsigned long long>(done));
                print_state(drv, drv.soc().spec());
            } else if (arg == "--save") {
                const std::string path = next();
                ses.get().save(path);
                std::printf("saved %s (digest %016llx)\n", path.c_str(),
                            static_cast<unsigned long long>(
                                ses.get().digest()));
            } else if (arg == "--load") {
                const std::string path = next();
                ses.get().load(path);
                std::printf("loaded %s\n", path.c_str());
                print_state(ses.get(), ses.get().soc().spec());
            } else if (arg == "--digest") {
                std::printf("digest %016llx\n",
                            static_cast<unsigned long long>(
                                ses.get().digest()));
            } else if (arg == "--cycles") {
                print_state(ses.get(), ses.get().soc().spec());
            } else if (arg == "--race-audit") {
                ses.get().set_race_audit(true);
            } else if (arg == "--races") {
                std::printf("%zu race(s)\n", ses.get().races().size());
            } else if (arg == "--diff") {
                const std::string a = next();
                const std::string b = next();
                return diff_files(a, b);
            } else if (arg == "--help" || arg == "-h") {
                usage();
                return 0;
            } else {
                usage();
                return 2;
            }
        }
    } catch (const std::exception& e) {
        std::fprintf(stderr, "st_debug: %s\n", e.what());
        return 2;
    }
    return 0;
}
