#include <gtest/gtest.h>

#include <deque>

#include "sb/kernels/sinks.hpp"
#include "sb/kernels/sources.hpp"
#include "sb/kernels/transforms.hpp"
#include "workload/traffic.hpp"

namespace st::sb {
namespace {

/// Minimal in-memory port implementations for kernel unit tests.
class VecInPort final : public InPortIf {
  public:
    std::deque<Word> queue;
    bool has_data() const override { return !queue.empty(); }
    Word peek() const override { return queue.front(); }
    Word take() override {
        const Word w = queue.front();
        queue.pop_front();
        return w;
    }
};

class VecOutPort final : public OutPortIf {
  public:
    std::vector<Word> words;
    bool full = false;
    bool can_push() const override { return !full; }
    void push(Word w) override { words.push_back(w); }
};

class TestCtx final : public SbContext {
  public:
    std::vector<VecInPort> ins;
    std::vector<VecOutPort> outs;
    std::uint64_t cycle = 0;

    std::size_t num_in() const override { return ins.size(); }
    std::size_t num_out() const override { return outs.size(); }
    InPortIf& in(std::size_t i) override { return ins.at(i); }
    OutPortIf& out(std::size_t i) override { return outs.at(i); }
    std::uint64_t local_cycle() const override { return cycle; }

    void run(Kernel& k, int cycles) {
        for (int i = 0; i < cycles; ++i) {
            k.on_cycle(*this);
            ++cycle;
        }
    }
};

TEST(LfsrSource, DeterministicMaximalishSequence) {
    LfsrSource a(0x1234);
    LfsrSource b(0x1234);
    TestCtx ca, cb;
    ca.outs.resize(1);
    cb.outs.resize(1);
    ca.run(a, 100);
    cb.run(b, 100);
    EXPECT_EQ(ca.outs[0].words, cb.outs[0].words);
    EXPECT_EQ(ca.outs[0].words.size(), 100u);
    // No short cycles in the first 100 states.
    std::set<Word> unique(ca.outs[0].words.begin(), ca.outs[0].words.end());
    EXPECT_EQ(unique.size(), 100u);
}

TEST(LfsrSource, ThrottleAndBackpressure) {
    LfsrSource k(0x99, /*emit_every=*/3);
    TestCtx ctx;
    ctx.outs.resize(1);
    ctx.run(k, 9);
    EXPECT_EQ(ctx.outs[0].words.size(), 3u);
    ctx.outs[0].full = true;
    ctx.run(k, 9);
    EXPECT_EQ(ctx.outs[0].words.size(), 3u);  // nothing pushed while full
    EXPECT_THROW(LfsrSource(0), std::invalid_argument);
    EXPECT_THROW(LfsrSource(1, 0), std::invalid_argument);
}

TEST(CounterSource, TagsAndSequences) {
    CounterSource k(0xAB);
    TestCtx ctx;
    ctx.outs.resize(2);
    ctx.run(k, 3);
    ASSERT_EQ(ctx.outs[0].words.size(), 3u);
    EXPECT_EQ(ctx.outs[0].words[0] >> 56, 0xABu);
    EXPECT_EQ(ctx.outs[1].words[1] & 0xffffffffull, 3u);  // interleaved count
}

TEST(AccumulatorKernel, AccumulatesAndRespectsBackpressure) {
    AccumulatorKernel k;
    TestCtx ctx;
    ctx.ins.resize(1);
    ctx.outs.resize(1);
    ctx.ins[0].queue = {1, 2, 3, 4};
    ctx.run(k, 4);
    EXPECT_EQ(ctx.outs[0].words, (std::vector<Word>{1, 3, 6, 10}));
    EXPECT_EQ(k.accumulator(), 10u);

    ctx.ins[0].queue = {5};
    ctx.outs[0].full = true;
    ctx.run(k, 2);
    EXPECT_EQ(k.accumulator(), 10u);  // not consumed while output blocked
    EXPECT_EQ(ctx.ins[0].queue.size(), 1u);
}

TEST(FirKernel, ComputesConvolution) {
    FirKernel k({2, 1});  // y[n] = 2x[n] + x[n-1]
    TestCtx ctx;
    ctx.ins.resize(1);
    ctx.outs.resize(1);
    ctx.ins[0].queue = {3, 5, 7};
    ctx.run(k, 3);
    EXPECT_EQ(ctx.outs[0].words, (std::vector<Word>{6, 13, 19}));
    EXPECT_THROW(FirKernel({}), std::invalid_argument);
}

TEST(Crc32Kernel, MatchesKnownVector) {
    // CRC-32 of the single zero word, computed with the bitwise reference.
    std::uint32_t crc = 0xffffffffu;
    crc = Crc32Kernel::update(crc, 0);
    std::uint32_t crc2 = 0xffffffffu;
    crc2 = Crc32Kernel::update(crc2, 0);
    EXPECT_EQ(crc, crc2);
    EXPECT_NE(crc, 0xffffffffu);
    // Order sensitivity: (a, b) != (b, a).
    const auto fold = [](std::initializer_list<std::uint64_t> ws) {
        std::uint32_t c = 0xffffffffu;
        for (auto w : ws) c = Crc32Kernel::update(c, w);
        return c;
    };
    EXPECT_NE(fold({1, 2}), fold({2, 1}));
}

TEST(TransformKernel, MapsPairedPorts) {
    TransformKernel k([](Word w) { return w * 2 + 1; });
    TestCtx ctx;
    ctx.ins.resize(2);
    ctx.outs.resize(2);
    ctx.ins[0].queue = {10};
    ctx.ins[1].queue = {20};
    ctx.run(k, 1);
    EXPECT_EQ(ctx.outs[0].words, (std::vector<Word>{21}));
    EXPECT_EQ(ctx.outs[1].words, (std::vector<Word>{41}));
}

TEST(RecorderSink, RecordsCycleAndPort) {
    RecorderSink k;
    TestCtx ctx;
    ctx.ins.resize(2);
    ctx.ins[0].queue = {7};
    ctx.run(k, 1);
    ctx.ins[1].queue = {9};
    ctx.run(k, 1);
    ASSERT_EQ(k.samples().size(), 2u);
    EXPECT_EQ(k.samples()[0].cycle, 0u);
    EXPECT_EQ(k.samples()[0].port, 0u);
    EXPECT_EQ(k.samples()[0].word, 7u);
    EXPECT_EQ(k.samples()[1].cycle, 1u);
    EXPECT_EQ(k.samples()[1].port, 1u);
}

TEST(CheckerSink, CountsMismatches) {
    CheckerSink k([](std::uint64_t i) { return i * 10; });
    TestCtx ctx;
    ctx.ins.resize(1);
    ctx.ins[0].queue = {0, 10, 21, 30};  // third word wrong
    ctx.run(k, 4);
    EXPECT_EQ(k.words_consumed(), 4u);
    EXPECT_EQ(k.mismatches(), 1u);
}

TEST(ScanStateRoundTrip, KernelsRestoreExactly) {
    wl::TrafficKernel t(0x42);
    TestCtx ctx;
    ctx.ins.resize(1);
    ctx.outs.resize(1);
    ctx.ins[0].queue = {1, 2, 3};
    ctx.run(t, 3);
    const auto saved = t.scan_state();

    wl::TrafficKernel fresh(0x42);
    fresh.load_state(saved);
    EXPECT_EQ(fresh.scan_state(), saved);
    EXPECT_EQ(fresh.signature(), t.signature());

    FirKernel f({1, 2, 3});
    TestCtx c2;
    c2.ins.resize(1);
    c2.outs.resize(1);
    c2.ins[0].queue = {4, 5};
    c2.run(f, 2);
    FirKernel f2({1, 2, 3});
    f2.load_state(f.scan_state());
    EXPECT_EQ(f2.scan_state(), f.scan_state());
}

TEST(RequesterKernel, WindowedRequestsAndChecking) {
    wl::RequesterKernel req([](Word r) { return r + 100; }, 2);
    TestCtx ctx;
    ctx.ins.resize(1);
    ctx.outs.resize(1);
    ctx.run(req, 3);
    EXPECT_EQ(req.requests_sent(), 2u);  // window limits outstanding
    ctx.ins[0].queue = {101};            // correct response to request 1
    ctx.run(req, 1);
    EXPECT_EQ(req.responses_ok(), 1u);
    ctx.ins[0].queue = {999};            // wrong response to request 2
    ctx.run(req, 1);
    EXPECT_EQ(req.responses_bad(), 1u);
    EXPECT_EQ(req.requests_sent(), 4u);  // window refilled
}

TEST(BurstTraffic, DutyCycleRespected) {
    wl::BurstTrafficKernel k(0x7, 3, 7);
    TestCtx ctx;
    ctx.outs.resize(1);
    ctx.run(k, 100);
    EXPECT_EQ(k.words_emitted(), 30u);  // 3 of every 10 cycles
}

}  // namespace
}  // namespace st::sb
