#include <gtest/gtest.h>

#include <deque>

#include "system/soc.hpp"
#include "system/testbenches.hpp"
#include "tap/boundary_scan.hpp"
#include "tap/test_sb.hpp"
#include "tap/tester.hpp"
#include "workload/router.hpp"

namespace st {
namespace {

// ---------------------------------------------------------------------------
// Boundary scan
// ---------------------------------------------------------------------------

struct Pins {
    bool in0 = false;
    bool in1 = true;
    bool out0 = false;
    bool out1 = false;
};

std::vector<tap::BoundaryCell> make_cells(Pins& pins) {
    return {
        {"in0", [&pins] { return pins.in0; }, nullptr},
        {"in1", [&pins] { return pins.in1; }, nullptr},
        {"out0", [&pins] { return pins.out0; },
         [&pins](bool v) { pins.out0 = v; }},
        {"out1", [&pins] { return pins.out1; },
         [&pins](bool v) { pins.out1 = v; }},
    };
}

TEST(BoundaryScan, SampleCapturesPinsNonIntrusively) {
    sys::Soc soc(sys::make_pair_spec());
    tap::TestSb tsb(soc, tap::TestSb::Params{});
    Pins pins;
    pins.in0 = true;
    pins.out1 = true;
    tsb.set_boundary_cells(make_cells(pins));
    soc.start();

    tap::TesterDriver drv(tsb);
    drv.reset();
    drv.shift_ir(tap::TestSb::Opcodes::kSample);
    const auto captured = drv.shift_dr({false, false, false, false});
    EXPECT_EQ(captured, (std::vector<bool>{true, true, false, true}));
    // SAMPLE must not drive: out pins unchanged despite shifting zeros in.
    EXPECT_FALSE(pins.out0);
    EXPECT_TRUE(pins.out1);
}

TEST(BoundaryScan, ExtestDrivesOutputCells) {
    sys::Soc soc(sys::make_pair_spec());
    tap::TestSb tsb(soc, tap::TestSb::Params{});
    Pins pins;
    tsb.set_boundary_cells(make_cells(pins));
    soc.start();

    tap::TesterDriver drv(tsb);
    drv.reset();
    drv.shift_ir(tap::TestSb::Opcodes::kExtest);
    // Image: in0, in1, out0=1, out1=0.
    drv.shift_dr({false, false, true, false});
    EXPECT_TRUE(pins.out0);
    EXPECT_FALSE(pins.out1);
    // Leaving EXTEST releases pin control decisions to future updates only.
    drv.shift_ir(tap::TestSb::Opcodes::kSample);
    EXPECT_FALSE(tsb.boundary()->extest());
}

TEST(BoundaryScan, DoubleInstallRejected) {
    sys::Soc soc(sys::make_pair_spec());
    tap::TestSb tsb(soc, tap::TestSb::Params{});
    Pins pins;
    tsb.set_boundary_cells(make_cells(pins));
    EXPECT_THROW(tsb.set_boundary_cells(make_cells(pins)), std::logic_error);
}

// ---------------------------------------------------------------------------
// RouterKernel unit behaviour
// ---------------------------------------------------------------------------

class QInPort final : public sb::InPortIf {
  public:
    std::deque<Word> q;
    bool has_data() const override { return !q.empty(); }
    Word peek() const override { return q.front(); }
    Word take() override {
        const Word w = q.front();
        q.pop_front();
        return w;
    }
};
class QOutPort final : public sb::OutPortIf {
  public:
    std::vector<Word> words;
    bool full = false;
    bool can_push() const override { return !full; }
    void push(Word w) override { words.push_back(w); }
};
class Ctx final : public sb::SbContext {
  public:
    std::vector<QInPort> ins{4};
    std::vector<QOutPort> outs{4};
    std::size_t num_in() const override { return ins.size(); }
    std::size_t num_out() const override { return outs.size(); }
    sb::InPortIf& in(std::size_t i) override { return ins.at(i); }
    sb::OutPortIf& out(std::size_t i) override { return outs.at(i); }
    std::uint64_t local_cycle() const override { return 0; }
};

wl::RouterKernel::Config mid_config() {
    wl::RouterKernel::Config c;
    c.x = 1;
    c.y = 1;
    c.out_east = 0;
    c.out_west = 1;
    c.out_north = 2;
    c.out_south = 3;
    return c;
}

TEST(RouterKernel, XyRoutesInDimensionOrder) {
    auto cfg = mid_config();
    wl::RouterKernel r(cfg);
    Ctx ctx;
    ctx.ins[0].q = {wl::Packet::make(2, 2, 1),   // east first (x before y)
                    wl::Packet::make(0, 1, 2),   // west
                    wl::Packet::make(1, 0, 3),   // north
                    wl::Packet::make(1, 2, 4)};  // south
    for (int i = 0; i < 4; ++i) r.on_cycle(ctx);
    EXPECT_EQ(ctx.outs[0].words, (std::vector<Word>{wl::Packet::make(2, 2, 1)}));
    EXPECT_EQ(ctx.outs[1].words, (std::vector<Word>{wl::Packet::make(0, 1, 2)}));
    EXPECT_EQ(ctx.outs[2].words, (std::vector<Word>{wl::Packet::make(1, 0, 3)}));
    EXPECT_EQ(ctx.outs[3].words, (std::vector<Word>{wl::Packet::make(1, 2, 4)}));
    EXPECT_EQ(r.forwarded(), 4u);
}

TEST(RouterKernel, DeliversLocalPacketsAndCountsThem) {
    auto cfg = mid_config();
    std::vector<Word> delivered;
    cfg.deliver = [&](Word w) { delivered.push_back(w); };
    wl::RouterKernel r(cfg);
    Ctx ctx;
    ctx.ins[2].q = {wl::Packet::make(1, 1, 0xAB)};
    r.on_cycle(ctx);
    ASSERT_EQ(delivered.size(), 1u);
    EXPECT_EQ(wl::Packet::payload(delivered[0]), 0xABu);
    EXPECT_EQ(r.delivered(), 1u);
}

TEST(RouterKernel, BackpressureLeavesPacketLatched) {
    auto cfg = mid_config();
    wl::RouterKernel r(cfg);
    Ctx ctx;
    ctx.outs[0].full = true;
    ctx.ins[1].q = {wl::Packet::make(2, 1, 9)};  // wants east
    r.on_cycle(ctx);
    EXPECT_EQ(ctx.ins[1].q.size(), 1u);  // not consumed
    EXPECT_TRUE(ctx.outs[0].words.empty());
    ctx.outs[0].full = false;
    r.on_cycle(ctx);
    EXPECT_EQ(ctx.ins[1].q.size(), 0u);
    EXPECT_EQ(ctx.outs[0].words.size(), 1u);
}

TEST(RouterKernel, InjectionYieldsToTransitTraffic) {
    auto cfg = mid_config();
    int injected_polls = 0;
    cfg.inject = [&]() -> std::optional<Word> {
        ++injected_polls;
        return wl::Packet::make(2, 1, 0x77);  // east
    };
    wl::RouterKernel r(cfg);
    Ctx ctx;
    ctx.outs[0].full = true;  // east blocked
    ctx.ins[1].q = {wl::Packet::make(2, 1, 1)};
    r.on_cycle(ctx);
    EXPECT_EQ(r.injected(), 0u);  // nothing could move east
    ctx.outs[0].full = false;
    r.on_cycle(ctx);  // transit packet goes first
    EXPECT_EQ(ctx.outs[0].words.size(), 2u);  // transit then the injection
    EXPECT_EQ(wl::Packet::payload(ctx.outs[0].words[0]), 1u);
    EXPECT_EQ(wl::Packet::payload(ctx.outs[0].words[1]), 0x77u);
}

TEST(PacketHelpers, FieldRoundTrip) {
    const Word w = wl::Packet::make(3, 7, 0x123456789ABCull);
    EXPECT_EQ(wl::Packet::dest_x(w), 3u);
    EXPECT_EQ(wl::Packet::dest_y(w), 7u);
    EXPECT_EQ(wl::Packet::payload(w), 0x123456789ABCull);
}

}  // namespace
}  // namespace st
