#include <gtest/gtest.h>

#include "analytic/models.hpp"
#include "system/soc.hpp"
#include "system/testbenches.hpp"
#include "workload/traffic.hpp"

namespace st::model {
namespace {

TEST(Equations, StariLatencyEq1) {
    // L_STARI = F*H/2 + T*H/2.
    EXPECT_DOUBLE_EQ(stari_latency(1000, 100, 8), 100.0 * 4 + 1000.0 * 4);
    EXPECT_DOUBLE_EQ(stari_latency(500, 50, 2), 50.0 + 500.0);
}

TEST(Equations, SynchroLatencyEq2) {
    // L_SYNCHRO = T*(R+H+1)/2 + F*H + T*(H+1)/2.
    const double t = 1000;
    const double f = 100;
    const double h = 4;
    const double r = 6;
    EXPECT_DOUBLE_EQ(synchro_latency(t, f, h, r),
                     t * (r + h + 1) / 2 + f * h + t * (h + 1) / 2);
}

TEST(Equations, ThroughputAndWidening) {
    EXPECT_DOUBLE_EQ(synchro_throughput(4, 6), 0.4);
    EXPECT_DOUBLE_EQ(widening_factor(4, 6), 2.5);
    // Widening by (H+R)/H recovers STARI's 1 word/cycle:
    EXPECT_DOUBLE_EQ(synchro_throughput(4, 6) * widening_factor(4, 6), 1.0);
}

TEST(Equations, SynchroLatencyAlwaysExceedsStariAtEqualDepth) {
    // The paper: "synchro-tokens has a performance penalty compared with
    // STARI" — for any parameters with the minimal R >= 1.
    for (double t : {500.0, 1000.0, 2000.0}) {
        for (double f : {50.0, 100.0, 400.0}) {
            for (double h : {2.0, 4.0, 16.0}) {
                EXPECT_GT(synchro_latency(t, f, h, h + 2),
                          stari_latency(t, f, h));
            }
        }
    }
}

TEST(MinRecycle, CoversRoundTripExactly) {
    // away = d_ab + d_ba + (H_peer + 1) * T_peer, R = ceil(away / T_local).
    EXPECT_EQ(min_recycle(1000, 1000, 4, 900, 900), 7u);   // 6800 / 1000
    EXPECT_EQ(min_recycle(1000, 1000, 4, 100, 100), 6u);   // 5200 / 1000
    EXPECT_EQ(min_recycle(500, 1000, 4, 900, 900), 14u);   // 6800 / 500
    EXPECT_EQ(min_recycle(2000, 1000, 4, 100, 100), 3u);   // 5200 / 2000
}

TEST(MinRecycle, MonotoneInItsArguments) {
    // Slower local clock -> more local cycles needed to cover the absence.
    EXPECT_GE(min_recycle(500, 1000, 4, 900, 900),
              min_recycle(1000, 1000, 4, 900, 900));
    // Longer peer hold or wire delays -> larger R.
    EXPECT_GE(min_recycle(1000, 1000, 8, 900, 900),
              min_recycle(1000, 1000, 4, 900, 900));
    EXPECT_GE(min_recycle(1000, 1000, 4, 1800, 1800),
              min_recycle(1000, 1000, 4, 900, 900));
}

/// Zero-stall operation needs the *jointly tuned* schedule (R = H+2 with the
/// waiter's initial recycle at H+1, DESIGN.md §5); a naive symmetric
/// override cannot achieve it — but a generous R still bounds the stall per
/// token round trip far below an under-provisioned one. This is the
/// area/performance knob the paper describes.
TEST(MinRecycle, LargerRecycleReducesWallClockStalling) {
    const auto stalled_per_pass = [](std::uint32_t recycle) {
        sys::PairOptions opt;
        opt.recycle_override = recycle;
        sys::Soc soc(sys::make_pair_spec(opt));
        soc.run_cycles(600, sim::ms(10));
        const double stopped = static_cast<double>(
            soc.wrapper(0).clock().total_stopped_time() +
            soc.wrapper(1).clock().total_stopped_time());
        const double passes = static_cast<double>(soc.ring(0).passes());
        return stopped / std::max(passes, 1.0);
    };
    const std::uint32_t r_model = min_recycle(1000, 1000, 4, 900, 900);
    EXPECT_LT(stalled_per_pass(r_model) * 1.5, stalled_per_pass(2));
    // The tuned default schedule is strictly better still: zero stalls.
    sys::Soc tuned(sys::make_pair_spec());
    tuned.run_cycles(600, sim::ms(10));
    EXPECT_EQ(tuned.wrapper(0).clock().total_stopped_time(), 0u);
}

/// Simulated throughput follows H/(H+R) across an R sweep.
class ThroughputSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ThroughputSweep, MatchesModel) {
    const std::uint32_t r = GetParam();
    sys::PairOptions opt;
    opt.hold = 4;
    opt.recycle_override = r;
    sys::Soc soc(sys::make_pair_spec(opt));
    ASSERT_TRUE(soc.run_cycles(2000, sim::ms(20)));
    const auto& k = dynamic_cast<const wl::TrafficKernel&>(
        soc.wrapper(0).block().kernel());
    const double measured = static_cast<double>(k.words_emitted()) /
                            static_cast<double>(soc.wrapper(0).clock().cycles());
    EXPECT_NEAR(measured, synchro_throughput(4, r), 0.02) << "R=" << r;
}

INSTANTIATE_TEST_SUITE_P(RecycleValues, ThroughputSweep,
                         ::testing::Values(6u, 8u, 12u, 20u));

}  // namespace
}  // namespace st::model
