#include <gtest/gtest.h>

#include "system/delay_config.hpp"
#include "system/soc.hpp"
#include "system/testbenches.hpp"
#include "verify/determinism.hpp"
#include "workload/traffic.hpp"

namespace st::sys {
namespace {

const wl::TrafficKernel& traffic_of(Soc& soc, std::size_t sb) {
    return dynamic_cast<const wl::TrafficKernel&>(
        soc.wrapper(sb).block().kernel());
}

TEST(PairSoc, ElaboratesWithExpectedStructure) {
    Soc soc(make_pair_spec());
    EXPECT_EQ(soc.num_sbs(), 2u);
    EXPECT_EQ(soc.num_rings(), 1u);
    EXPECT_EQ(soc.num_channels(), 2u);
    EXPECT_EQ(soc.wrapper(0).num_nodes(), 1u);
    EXPECT_EQ(soc.wrapper(0).num_inputs(), 1u);
    EXPECT_EQ(soc.wrapper(0).num_outputs(), 1u);
}

TEST(PairSoc, SymmetricNominalRunsWithoutClockStops) {
    Soc soc(make_pair_spec());
    ASSERT_TRUE(soc.run_cycles(400, sim::us(10)));
    // Exact schedule: the token is never late, so neither clock ever stops.
    EXPECT_EQ(soc.wrapper(0).clock().stop_events(), 0u);
    EXPECT_EQ(soc.wrapper(1).clock().stop_events(), 0u);
    EXPECT_EQ(soc.ring_node(0, 0).late_arrivals(), 0u);
    EXPECT_EQ(soc.ring_node(0, 1).late_arrivals(), 0u);
}

TEST(PairSoc, DataFlowsBothDirections) {
    Soc soc(make_pair_spec());
    ASSERT_TRUE(soc.run_cycles(400, sim::us(10)));
    EXPECT_GT(traffic_of(soc, 0).words_emitted(), 50u);
    EXPECT_GT(traffic_of(soc, 0).words_consumed(), 50u);
    EXPECT_GT(traffic_of(soc, 1).words_emitted(), 50u);
    EXPECT_GT(traffic_of(soc, 1).words_consumed(), 50u);
    // Conservation: every word alpha emitted was consumed by beta or is
    // still in flight (FIFO + latch + staged).
    const auto emitted = traffic_of(soc, 0).words_emitted();
    const auto consumed = traffic_of(soc, 1).words_consumed();
    EXPECT_LE(consumed, emitted);
    EXPECT_LE(emitted - consumed, 8u);
}

TEST(PairSoc, ThroughputMatchesHoldOverHoldPlusRecycle) {
    PairOptions opt;
    opt.hold = 4;  // symmetric: R = H + 2 = 6
    Soc soc(make_pair_spec(opt));
    ASSERT_TRUE(soc.run_cycles(1000, sim::us(20)));
    const double cycles = static_cast<double>(soc.wrapper(0).clock().cycles());
    const double words = static_cast<double>(traffic_of(soc, 0).words_emitted());
    const double expected = 4.0 / (4.0 + 6.0);
    EXPECT_NEAR(words / cycles, expected, 0.02);
}

TEST(PairSoc, TimingAuditPassesAtNominal) {
    Soc soc(make_pair_spec());
    soc.run_cycles(100, sim::us(10));
    const auto report = soc.audit_timing();
    EXPECT_TRUE(report.all_pass()) << report.summary();
}

TEST(PairSoc, TracesAreBitIdenticalAcrossReruns) {
    const auto run = [] {
        Soc soc(make_pair_spec());
        soc.run_cycles(300, sim::us(10));
        return soc.traces();
    };
    const auto a = run();
    const auto b = run();
    EXPECT_TRUE(verify::diff_traces(a, b).identical);
    EXPECT_EQ(verify::fingerprint(a), verify::fingerprint(b));
}

/// The heart of the paper: perturbing every analog delay leaves the
/// cycle-indexed I/O sequences untouched.
class PairDeterminism
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned, unsigned>> {
};

TEST_P(PairDeterminism, PerturbedDelaysReproduceNominalSequences) {
    const auto [fifo_pct, ring_pct, clock_pct] = GetParam();
    const SocSpec nominal = make_pair_spec();

    const auto runner = [&](const DelayConfig& cfg) {
        Soc soc(apply(nominal, cfg));
        soc.run_cycles(150, sim::us(40));
        return soc.traces();
    };
    verify::DeterminismHarness<DelayConfig> harness(
        runner, DelayConfig::nominal(nominal), 100);

    DelayConfig cfg = DelayConfig::nominal(nominal);
    cfg.fifo_pct.assign(cfg.fifo_pct.size(), fifo_pct);
    cfg.ring_ab_pct.assign(cfg.ring_ab_pct.size(), ring_pct);
    cfg.ring_ba_pct.assign(cfg.ring_ba_pct.size(), ring_pct);
    // Perturb only SB1's clock so the pair becomes plesiochronous.
    cfg.clock_pct.back() = clock_pct;

    const auto diff = harness.check(cfg);
    EXPECT_TRUE(diff.identical) << diff.first_mismatch;
}

INSTANTIATE_TEST_SUITE_P(
    PaperPercentages, PairDeterminism,
    ::testing::Combine(::testing::Values(50u, 75u, 100u, 150u, 200u),
                       ::testing::Values(50u, 75u, 100u, 150u, 200u),
                       ::testing::Values(75u, 100u, 150u)));

}  // namespace
}  // namespace st::sys
