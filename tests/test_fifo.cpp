#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "async/four_phase.hpp"
#include "async/self_timed_fifo.hpp"
#include "sim/scheduler.hpp"

namespace st::achan {
namespace {

/// Always-ready sink capturing words and their arrival times.
class CollectSink final : public LinkSink {
  public:
    explicit CollectSink(sim::Scheduler& s) : sched_(s) {}
    bool ready = true;
    std::vector<Word> words;
    std::vector<sim::Time> times;

    bool can_accept() const override { return ready; }
    void accept(Word w) override {
        words.push_back(w);
        times.push_back(sched_.now());
    }

  private:
    sim::Scheduler& sched_;
};

FourPhaseLink::Params link_params(unsigned bits = 32, sim::Time req = 20,
                                  sim::Time ack = 20) {
    return FourPhaseLink::Params{bits, req, ack};
}

TEST(FourPhaseLink, CompletesUnloadedHandshakeIn2ReqPlus2Ack) {
    sim::Scheduler sched;
    FourPhaseLink link(sched, "l", link_params(32, 30, 10));
    CollectSink sink(sched);
    link.bind_sink(&sink);
    int completions = 0;
    link.on_complete([&] { ++completions; });

    EXPECT_TRUE(link.idle());
    link.send(0xdead);
    EXPECT_FALSE(link.idle());
    sched.run();
    EXPECT_TRUE(link.idle());
    EXPECT_EQ(completions, 1);
    ASSERT_EQ(sink.words.size(), 1u);
    EXPECT_EQ(sink.words[0], 0xdeadu);
    EXPECT_EQ(sink.times[0], 30u);                // req wire delay
    EXPECT_EQ(link.last_latency(), 2 * 30u + 2 * 10u);
}

TEST(FourPhaseLink, MasksDataToBusWidth) {
    sim::Scheduler sched;
    FourPhaseLink link(sched, "l", link_params(8));
    CollectSink sink(sched);
    link.bind_sink(&sink);
    link.send(0x1234);
    sched.run();
    EXPECT_EQ(sink.words[0], 0x34u);
}

TEST(FourPhaseLink, BackpressureHoldsRequestUntilPoke) {
    sim::Scheduler sched;
    FourPhaseLink link(sched, "l", link_params());
    CollectSink sink(sched);
    sink.ready = false;
    link.bind_sink(&sink);
    link.send(1);
    sched.run();
    EXPECT_TRUE(link.request_pending());
    EXPECT_TRUE(sink.words.empty());

    sink.ready = true;
    link.poke();
    sched.run();
    EXPECT_TRUE(link.idle());
    EXPECT_EQ(sink.words.size(), 1u);
    EXPECT_EQ(link.transfers(), 1u);
}

TEST(FourPhaseLink, SendWhileBusyThrows) {
    sim::Scheduler sched;
    FourPhaseLink link(sched, "l", link_params());
    CollectSink sink(sched);
    link.bind_sink(&sink);
    link.send(1);
    EXPECT_THROW(link.send(2), std::logic_error);
}

TEST(FourPhaseLink, SendWithoutSinkThrows) {
    sim::Scheduler sched;
    FourPhaseLink link(sched, "l", link_params());
    EXPECT_THROW(link.send(1), std::logic_error);
}

class FifoFixture : public ::testing::Test {
  protected:
    SelfTimedFifo::Params fifo_params(std::size_t depth,
                                      sim::Time stage = 100) {
        SelfTimedFifo::Params p;
        p.depth = depth;
        p.stage_delay = stage;
        p.data_bits = 32;
        p.head_req_delay = 20;
        p.head_ack_delay = 20;
        return p;
    }

    /// Producer link bound to the FIFO tail (like an output interface).
    std::unique_ptr<FourPhaseLink> make_producer(SelfTimedFifo& fifo) {
        auto link = std::make_unique<FourPhaseLink>(sched, "prod",
                                                    link_params());
        link->bind_sink(&fifo.tail_sink());
        fifo.attach_tail_link(link.get());
        return link;
    }

    sim::Scheduler sched;
};

TEST_F(FifoFixture, WordTraversesAllStagesToConsumer) {
    SelfTimedFifo fifo(sched, "f", fifo_params(4));
    auto prod = make_producer(fifo);
    CollectSink sink(sched);
    fifo.head_link().bind_sink(&sink);

    prod->send(0x42);
    sched.run();
    ASSERT_EQ(sink.words.size(), 1u);
    EXPECT_EQ(sink.words[0], 0x42u);
    EXPECT_EQ(fifo.occupancy(), 0u);
    EXPECT_EQ(fifo.words_in(), 1u);
    EXPECT_EQ(fifo.words_out(), 1u);
    // Arrival at head after 3 inter-stage moves: tail req (20) + 3*100.
    EXPECT_EQ(fifo.last_head_arrival(), 20u + 3 * 100u);
}

TEST_F(FifoFixture, PreservesOrderUnderStreaming) {
    SelfTimedFifo fifo(sched, "f", fifo_params(3));
    auto prod = make_producer(fifo);
    CollectSink sink(sched);
    fifo.head_link().bind_sink(&sink);

    std::vector<Word> sent;
    int next = 0;
    std::function<void()> send_next = [&] {
        if (next < 20) {
            sent.push_back(static_cast<Word>(next));
            prod->send(static_cast<Word>(next++));
        }
    };
    prod->on_complete(send_next);
    send_next();
    sched.run();
    EXPECT_EQ(sink.words, sent);
}

TEST_F(FifoFixture, FillsToDepthWhenConsumerBlocked) {
    SelfTimedFifo fifo(sched, "f", fifo_params(4));
    auto prod = make_producer(fifo);
    CollectSink sink(sched);
    sink.ready = false;
    fifo.head_link().bind_sink(&sink);

    int sent = 0;
    std::function<void()> send_next = [&] {
        if (sent < 10) {
            ++sent;
            prod->send(static_cast<Word>(sent));
        }
    };
    prod->on_complete(send_next);
    send_next();
    sched.run();
    // All 4 stages full; the 5th transfer is pending at the tail.
    EXPECT_EQ(fifo.occupancy(), 4u);
    EXPECT_TRUE(fifo.head_valid());
    EXPECT_TRUE(prod->request_pending());
    EXPECT_EQ(sent, 5);

    // Unblock: everything drains in order.
    sink.ready = true;
    fifo.head_link().poke();
    sched.run();
    EXPECT_EQ(fifo.occupancy(), 0u);
    EXPECT_EQ(sink.words.size(), 10u);
    for (std::size_t i = 0; i < sink.words.size(); ++i) {
        EXPECT_EQ(sink.words[i], i + 1);
    }
}

TEST_F(FifoFixture, DepthOneFifoWorks) {
    SelfTimedFifo fifo(sched, "f", fifo_params(1));
    auto prod = make_producer(fifo);
    CollectSink sink(sched);
    fifo.head_link().bind_sink(&sink);

    prod->send(7);
    sched.run();
    EXPECT_EQ(sink.words, (std::vector<Word>{7}));
    prod->send(8);
    sched.run();
    EXPECT_EQ(sink.words, (std::vector<Word>{7, 8}));
}

TEST_F(FifoFixture, ZeroDepthRejected) {
    EXPECT_THROW(SelfTimedFifo(sched, "f", fifo_params(0)),
                 std::invalid_argument);
}

/// Property: for any (depth, stage delay, burst length), all words arrive in
/// order and the FIFO drains empty.
class FifoSweep : public FifoFixture,
                  public ::testing::WithParamInterface<
                      std::tuple<std::size_t, sim::Time, int>> {};

TEST_P(FifoSweep, OrderAndConservationHold) {
    const auto [depth, stage, burst] = GetParam();
    SelfTimedFifo fifo(sched, "f", fifo_params(depth, stage));
    auto prod = make_producer(fifo);
    CollectSink sink(sched);
    fifo.head_link().bind_sink(&sink);

    int sent = 0;
    std::function<void()> send_next = [&] {
        if (sent < burst) prod->send(static_cast<Word>(0x100 + sent++));
    };
    prod->on_complete(send_next);
    send_next();
    sched.run();

    ASSERT_EQ(sink.words.size(), static_cast<std::size_t>(burst));
    for (int i = 0; i < burst; ++i) {
        EXPECT_EQ(sink.words[static_cast<std::size_t>(i)],
                  static_cast<Word>(0x100 + i));
    }
    EXPECT_EQ(fifo.occupancy(), 0u);
    EXPECT_EQ(fifo.words_in(), fifo.words_out());
}

INSTANTIATE_TEST_SUITE_P(
    DepthDelayBurst, FifoSweep,
    ::testing::Combine(::testing::Values<std::size_t>(1, 2, 3, 5, 8),
                       ::testing::Values<sim::Time>(10, 100, 500),
                       ::testing::Values(1, 7, 32)));

}  // namespace
}  // namespace st::achan
