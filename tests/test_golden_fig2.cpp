// Golden-trace regression of the paper's Fig. 2 node state-machine scenario.
//
// The canonical waveform digest is checked in below: the full annotated
// event sequence (A..L letter codes) and an FNV-1a hash over every
// (code, time) pair. Any change to the node state machine, the stoppable
// clock, the ring delay model, or the scheduler's intra-timestamp ordering
// that shifts a single Fig. 2 event fails here first — with a diff a human
// can read against the figure.
//
// If a change is *intended* to alter the schedule, re-derive the constants
// with the fig2_waveforms bench (it prints them) and update this file in the
// same commit, explaining why the figure moved.

#include <gtest/gtest.h>

#include "system/fig2_digest.hpp"

namespace {

using namespace st;

// One Fig. 2 round of the alpha node: hold counts down while the SB runs
// (D D), the token departs and the SB disables with the hold preset
// (F G E), recycle counts down (H x4), clken drops and the clock stops with
// recycle expiring (I J B), the late token returns and restarts the clock
// (K L), and the SB re-enables (C).
constexpr const char* kGoldenSequence =
    "DDFGEHHHH"      // round 1: hold countdown, pass, recycle countdown
    "IJB"            // clock stops waiting on the late token
    "KLC"            // late return, async restart, re-enable
    "DDFGEHHHH"      // round 2 (steady state)
    "IJB"
    "KLC"
    "DDFGEHHHH";     // round 3 up to the 24-cycle window

constexpr std::uint64_t kGoldenDigest = 0x63ba6bdbfa0a7a1bull;

TEST(GoldenFig2, EventSequenceMatchesFigure) {
    const sys::Fig2Trace trace = sys::capture_fig2(24);
    EXPECT_EQ(trace.sequence(), kGoldenSequence);
}

TEST(GoldenFig2, TimedDigestIsStable) {
    const sys::Fig2Trace trace = sys::capture_fig2(24);
    EXPECT_EQ(trace.digest(), kGoldenDigest)
        << "sequence: " << trace.sequence();
}

TEST(GoldenFig2, CaptureIsDeterministic) {
    const sys::Fig2Trace a = sys::capture_fig2(24);
    const sys::Fig2Trace b = sys::capture_fig2(24);
    EXPECT_EQ(a.events, b.events);
}

TEST(GoldenFig2, SteadyStateRoundIsPeriodic) {
    // Rounds 2 and 3 repeat with a fixed period: same codes, constant
    // time offset (the scenario's token round-trip beat).
    const sys::Fig2Trace trace = sys::capture_fig2(24);
    const auto& ev = trace.events;
    ASSERT_EQ(ev.size(), 39u);
    constexpr std::size_t kRound = 15;   // events per full round
    constexpr std::size_t kStart = 15;   // round 2 begins here
    const sim::Time period = ev[kStart + kRound].t - ev[kStart].t;
    EXPECT_GT(period, 0u);
    for (std::size_t i = kStart; i + kRound < ev.size(); ++i) {
        EXPECT_EQ(ev[i].code, ev[i + kRound].code) << "at event " << i;
        EXPECT_EQ(ev[i + kRound].t - ev[i].t, period) << "at event " << i;
    }
}

}  // namespace
