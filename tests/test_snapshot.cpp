// Determinism contract for the snap:: state layer (ISSUE 4 satellite 1):
// saving at local cycle k and restoring into a freshly elaborated Soc must
// be observationally invisible — digests, cycle-indexed traces, scheduler
// event counts, continuation VCD output, and the Fig. 2 annotated digest
// all match the unsplit run byte-for-byte, including under DelayConfig
// perturbation and across a resumed fault-injection run.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "debug/driver.hpp"
#include "fuzz/campaign.hpp"
#include "fuzz/fault.hpp"
#include "fuzz/injector.hpp"
#include "snap/snapshot.hpp"
#include "snap/state_io.hpp"
#include "system/delay_config.hpp"
#include "system/fig2_digest.hpp"
#include "system/soc.hpp"
#include "system/testbenches.hpp"
#include "system/vcd_probe.hpp"
#include "system/warm_runner.hpp"
#include "verify/determinism.hpp"

namespace st {
namespace {

constexpr std::uint64_t kPrefix = 40;   // save point, local cycles
constexpr std::uint64_t kTotal = 100;   // continuation goal
const sim::Time kDeadline = sim::us(100);

// --- chunk format unit tests -------------------------------------------

TEST(StateIo, PrimitivesRoundTrip) {
    snap::StateWriter w;
    w.begin_group("top");
    w.begin("leaf", 3);
    w.u8(0xab);
    w.u16(0xcdef);
    w.u32(0xdeadbeefu);
    w.u64(0x0123456789abcdefull);
    w.b(true);
    w.str("hello");
    w.blob({1, 2, 3});
    w.end();
    w.end();

    snap::StateReader r(w.bytes());
    r.enter("top");
    EXPECT_EQ(r.enter("leaf", 3), 3);
    EXPECT_EQ(r.u8(), 0xab);
    EXPECT_EQ(r.u16(), 0xcdef);
    EXPECT_EQ(r.u32(), 0xdeadbeefu);
    EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
    EXPECT_TRUE(r.b());
    EXPECT_EQ(r.str(), "hello");
    EXPECT_EQ(r.blob(), (std::vector<std::uint8_t>{1, 2, 3}));
    r.leave();
    r.leave();
    EXPECT_TRUE(r.done());
}

TEST(StateIo, RejectsNameMismatchNewerVersionAndUnreadBytes) {
    snap::StateWriter w;
    w.begin("alpha", 2);
    w.u64(7);
    w.end();
    const auto image = w.take();

    {
        snap::StateReader r(image);
        EXPECT_THROW(r.enter("beta"), snap::SnapshotError);
    }
    {
        snap::StateReader r(image);
        EXPECT_THROW(r.enter("alpha", /*max_version=*/1),
                     snap::SnapshotError);
    }
    {
        snap::StateReader r(image);
        r.enter("alpha", 2);
        EXPECT_THROW(r.leave(), snap::SnapshotError);  // u64 never read
    }
}

TEST(Snapshot, FileRoundTripAndMagicCheck) {
    snap::StateWriter w;
    w.begin("x");
    w.u64(42);
    w.end();
    const snap::Snapshot snap(w.take());

    const std::string path = ::testing::TempDir() + "/st_snapshot_test.snap";
    snap.save_file(path);
    const snap::Snapshot back = snap::Snapshot::load_file(path);
    EXPECT_EQ(snap, back);
    EXPECT_EQ(snap.digest(), back.digest());

    // Corrupt the magic: the loader must reject, not misparse.
    {
        std::FILE* f = std::fopen(path.c_str(), "r+b");
        ASSERT_NE(f, nullptr);
        std::fputc('X', f);
        std::fclose(f);
    }
    EXPECT_THROW(snap::Snapshot::load_file(path), snap::SnapshotError);
    std::remove(path.c_str());
}

// --- whole-Soc restore equivalence -------------------------------------

struct SplitResult {
    std::uint64_t digest = 0;
    std::uint64_t events = 0;
    verify::TraceSet traces;
};

SplitResult run_unsplit(const sys::SocSpec& spec) {
    sys::Soc soc(spec);
    soc.run_cycles(kTotal, kDeadline);
    soc.settle();
    SplitResult out;
    out.digest = soc.state_digest();
    out.events = soc.scheduler().events_executed();
    out.traces = soc.traces();
    return out;
}

SplitResult run_split(const sys::SocSpec& spec) {
    snap::Snapshot snap;
    {
        sys::Soc soc(spec);
        soc.run_cycles(kPrefix, kDeadline);
        soc.settle();
        snap = soc.save_snapshot();
    }
    sys::Soc fresh(spec);
    fresh.restore_snapshot(snap);
    fresh.run_cycles(kTotal, kDeadline);
    fresh.settle();
    SplitResult out;
    out.digest = fresh.state_digest();
    out.events = fresh.scheduler().events_executed();
    out.traces = fresh.traces();
    return out;
}

class RestoreEquivalence : public ::testing::TestWithParam<std::string> {};

TEST_P(RestoreEquivalence, SplitRunMatchesUnsplitRun) {
    const sys::SocSpec spec = sys::make_named_spec(GetParam());
    const SplitResult a = run_unsplit(spec);
    const SplitResult b = run_split(spec);
    EXPECT_EQ(a.digest, b.digest);
    EXPECT_EQ(a.events, b.events);
    EXPECT_EQ(a.traces, b.traces);
}

INSTANTIATE_TEST_SUITE_P(AllShippedSpecs, RestoreEquivalence,
                         ::testing::ValuesIn(sys::named_specs()),
                         [](const auto& info) { return info.param; });

TEST(RestoreEquivalencePerturbed, SplitMatchesUnsplitUnderDelayConfig) {
    const sys::SocSpec nominal = sys::make_pair_spec();
    sys::DelayConfig cfg = sys::DelayConfig::nominal(nominal);
    cfg.fifo_pct.assign(cfg.fifo_pct.size(), 150);
    cfg.ring_ab_pct.assign(cfg.ring_ab_pct.size(), 75);
    cfg.clock_pct.back() = 150;
    const sys::SocSpec perturbed = sys::apply(nominal, cfg);

    const SplitResult a = run_unsplit(perturbed);
    const SplitResult b = run_split(perturbed);
    EXPECT_EQ(a.digest, b.digest);
    EXPECT_EQ(a.events, b.events);
    EXPECT_EQ(a.traces, b.traces);
}

TEST(RestoreEquivalenceVcd, ContinuationVcdIsByteIdentical) {
    for (const char* name : {"pair", "triangle"}) {
        const sys::SocSpec spec = sys::make_named_spec(name);

        // Original: run to the save point (probe-less — VCD pulse-clear
        // events are external to the model and may not straddle a
        // snapshot), save, then attach a probe and continue.
        sys::Soc a(spec);
        a.run_cycles(kPrefix, kDeadline);
        a.settle();
        const snap::Snapshot snap = a.save_snapshot();
        std::ostringstream vcd_a;
        sys::VcdProbe probe_a(a, vcd_a);
        a.run_cycles(kTotal, kDeadline);

        // Restored: fork from the snapshot, attach an identical probe,
        // continue to the same goal.
        sys::Soc b(spec);
        b.restore_snapshot(snap);
        std::ostringstream vcd_b;
        sys::VcdProbe probe_b(b, vcd_b);
        b.run_cycles(kTotal, kDeadline);

        EXPECT_EQ(vcd_a.str(), vcd_b.str()) << "spec " << name;
        EXPECT_FALSE(vcd_a.str().empty());
    }
}

TEST(RestoreEquivalenceFaults, ResumedFaultRunMatchesUnsplit) {
    const sys::SocSpec spec = sys::make_pair_spec();
    std::vector<fuzz::Fault> faults;
    {
        fuzz::Fault f;  // drop the 6th token arriving at ring 0 side b
        f.cls = fuzz::FaultClass::kTokenDropWire;
        f.unit = 0;
        f.side = 1;
        f.nth = 6;
        faults.push_back(f);
        fuzz::Fault s;  // spurious token late in the run window
        s.cls = fuzz::FaultClass::kSpuriousToken;
        s.unit = 0;
        s.side = 0;
        s.nth = 1;
        s.value = 60'000;  // ps; after the save point
        faults.push_back(s);
    }

    // Unsplit faulted run.
    SplitResult a;
    {
        sys::Soc soc(spec);
        fuzz::Injector inj(soc, faults);
        soc.run_cycles(kTotal, kDeadline);
        soc.settle();
        a.digest = soc.save_snapshot([&](snap::StateWriter& w) {
                          inj.save_state(w);
                      }).digest();
        a.events = soc.scheduler().events_executed();
        a.traces = soc.traces();
    }

    // Split faulted run: the injector's trigger counters and pending
    // spurious event ride in the image as an extra chunk.
    SplitResult b;
    {
        snap::Snapshot snap;
        {
            sys::Soc soc(spec);
            fuzz::Injector inj(soc, faults);
            soc.run_cycles(kPrefix, kDeadline);
            soc.settle();
            snap = soc.save_snapshot(
                [&](snap::StateWriter& w) { inj.save_state(w); });
        }
        sys::Soc soc(spec);
        fuzz::Injector inj(soc, faults, /*defer_spurious=*/true);
        soc.restore_snapshot(snap, [&](snap::StateReader& r) {
            inj.restore_state(r);
        });
        soc.run_cycles(kTotal, kDeadline);
        soc.settle();
        b.digest = soc.save_snapshot([&](snap::StateWriter& w) {
                          inj.save_state(w);
                      }).digest();
        b.events = soc.scheduler().events_executed();
        b.traces = soc.traces();
    }

    EXPECT_EQ(a.digest, b.digest);
    EXPECT_EQ(a.events, b.events);
    EXPECT_EQ(a.traces, b.traces);
}

// --- Fig. 2 digest across a snapshot boundary --------------------------

// Re-implements sys::capture_fig2's annotation rules with the run split at
// local cycle `k`: the restored Soc gets a fresh annotator whose edge state
// is seeded from the value the first leg's annotator last wrote, and the
// two trace legs are spliced into one sequence.
struct Fig2Prev {
    bool clken = true;
    bool sb_en = true;
    std::uint32_t rec = 0;
};

// Attaches the capture_fig2 annotation rules to `soc`, appending to `trace`
// and tracking the per-edge sampled state in `*prev`.
void annotate_fig2(sys::Soc& soc, sys::Fig2Trace& trace,
                   std::shared_ptr<Fig2Prev> prev, std::uint32_t hold) {
    auto& node = soc.ring_node(0, 0);
    auto& clk = soc.wrapper(0).clock();
    auto* tp = &trace;
    const auto push = [tp](char code, sim::Time t) {
        tp->events.push_back(sys::Fig2Event{code, t});
    };
    soc.ring(0).on_pass([push](std::size_t i, sim::Time t) {
        if (i == 0) push('F', t);
    });
    auto* np = &node;
    soc.ring(0).on_arrive([np, push](std::size_t i, sim::Time t) {
        if (i == 0) push(np->waiting() ? 'K' : 'A', t);
    });
    clk.on_edge([np, push, hold, prev](std::uint64_t, sim::Time t) {
        const Fig2Prev& p = *prev;
        if (p.clken && !np->clken()) {
            push('I', t);
            push('J', t);
        }
        if (!p.clken && np->clken()) push('L', t);
        if (!p.sb_en && np->sb_en()) push('C', t);
        if (p.sb_en && !np->sb_en()) {
            push('G', t);
            push('E', t);
        }
        if (np->sb_en() && np->hold_count() < hold) push('D', t);
        if (np->recycle_count() > 0 && np->recycle_count() < p.rec) {
            push('H', t);
        }
        if (p.rec > 0 && np->recycle_count() == 0) push('B', t);
        *prev = Fig2Prev{np->clken(), np->sb_en(), np->recycle_count()};
    });
}

sys::Fig2Trace capture_fig2_split(std::uint64_t k, std::uint64_t total) {
    sys::PairOptions opt;
    opt.hold = 3;
    opt.token_delay = 1600;
    opt.recycle_override = 5;
    const sys::SocSpec spec = sys::make_pair_spec(opt);

    sys::Fig2Trace trace;
    snap::Snapshot snap;
    Fig2Prev boundary;
    {
        sys::Soc soc(spec);
        auto prev = std::make_shared<Fig2Prev>();
        annotate_fig2(soc, trace, prev, opt.hold);
        soc.run_cycles(k, sim::us(1));
        soc.settle();
        boundary = *prev;
        snap = soc.save_snapshot();
    }
    {
        sys::Soc soc(spec);
        soc.restore_snapshot(snap);
        annotate_fig2(soc, trace, std::make_shared<Fig2Prev>(boundary),
                      opt.hold);
        soc.run_cycles(total, sim::us(1));
    }
    return trace;
}

TEST(Fig2Snapshot, SplitRunReproducesTheGoldenDigest) {
    const sys::Fig2Trace whole = sys::capture_fig2(24);
    const sys::Fig2Trace split = capture_fig2_split(10, 24);
    EXPECT_EQ(whole.sequence(), split.sequence());
    EXPECT_EQ(whole.digest(), split.digest());
}

// --- guard rails -------------------------------------------------------

TEST(SnapshotGuards, SaveRequiresStartAndRestoreRequiresFreshSoc) {
    const sys::SocSpec spec = sys::make_pair_spec();
    sys::Soc cold(spec);
    EXPECT_THROW(cold.save_snapshot(), snap::SnapshotError);

    sys::Soc running(spec);
    running.run_cycles(kPrefix, kDeadline);
    running.settle();
    const snap::Snapshot snap = running.save_snapshot();

    EXPECT_THROW(running.restore_snapshot(snap), snap::SnapshotError);
}

TEST(SnapshotGuards, StructureMismatchIsRejected) {
    sys::Soc pair(sys::make_pair_spec());
    pair.run_cycles(kPrefix, kDeadline);
    pair.settle();
    const snap::Snapshot snap = pair.save_snapshot();

    sys::Soc triangle(sys::make_triangle_spec());
    EXPECT_THROW(triangle.restore_snapshot(snap), snap::SnapshotError);
}

TEST(SnapshotGuards, DiffLocalisesDivergence) {
    const sys::SocSpec spec = sys::make_pair_spec();
    sys::Soc a(spec);
    a.run_cycles(kPrefix, kDeadline);
    a.settle();
    const snap::Snapshot sa = a.save_snapshot();

    EXPECT_TRUE(snap::diff_snapshots(sa, sa).empty());

    a.run_cycles(kPrefix + 10, kDeadline);
    a.settle();
    const snap::Snapshot sb = a.save_snapshot();
    const auto diffs = snap::diff_snapshots(sa, sb);
    ASSERT_FALSE(diffs.empty());
    // The scheduler chunk must be among the differing leaves (time moved).
    bool saw_sched = false;
    for (const auto& d : diffs) {
        if (d.path.find("sched") != std::string::npos) saw_sched = true;
    }
    EXPECT_TRUE(saw_sched) << snap::format_diff(diffs);
}

// --- debug driver ------------------------------------------------------

TEST(DebugDriver, BreakpointStopsAtRequestedLocalCycle) {
    debug::Driver drv(sys::make_pair_spec());
    const debug::StopInfo stop = drv.run_to_cycle(0, 25, kDeadline);
    ASSERT_EQ(stop.reason, debug::StopReason::kBreakpoint);
    EXPECT_GE(drv.cycle(0), 25u);
    // The stop is deterministic: a second session issuing the same command
    // lands on the identical state digest.
    debug::Driver drv2(sys::make_pair_spec());
    drv2.run_to_cycle(0, 25, kDeadline);
    EXPECT_EQ(drv.digest(), drv2.digest());
}

TEST(DebugDriver, SingleStepMakesDeterministicProgress) {
    debug::Driver a(sys::make_pair_spec());
    debug::Driver b(sys::make_pair_spec());
    a.run_to_cycle(0, 10, kDeadline);
    b.run_to_cycle(0, 10, kDeadline);
    for (int i = 0; i < 5; ++i) {
        a.step(3);
        b.step(3);
        EXPECT_EQ(a.digest(), b.digest()) << "after step burst " << i;
    }
}

TEST(DebugDriver, SaveLoadResumesExactly) {
    debug::Driver drv(sys::make_pair_spec());
    drv.run_to_cycle(0, kPrefix, kDeadline);
    const std::string path = ::testing::TempDir() + "/st_debug_test.snap";
    drv.save(path);
    drv.run_to_cycle(0, kTotal, kDeadline);
    const std::uint64_t end_digest = drv.digest();

    drv.load(path);
    EXPECT_GE(drv.cycle(0), kPrefix);
    drv.run_to_cycle(0, kTotal, kDeadline);
    EXPECT_EQ(drv.digest(), end_digest);
    std::remove(path.c_str());
}

TEST(DebugDriverRaceAudit, SettingSurvivesRestoreAndStaysArmed) {
    debug::Driver drv(sys::make_pair_spec());
    drv.set_race_audit(true);
    drv.run_to_cycle(0, kPrefix, kDeadline);
    const auto image = drv.snapshot();
    drv.restore(image);
    // The flag is driver state: the fresh Soc elaborated by restore() must
    // come back with the scheduler audit re-armed.
    EXPECT_TRUE(drv.race_audit());
    EXPECT_TRUE(drv.soc().scheduler().race_audit());
    // And genuinely armed, not just reported: a synthetic same-slot
    // collision on the restored scheduler is recorded.
    int dummy = 0;
    auto& sched = drv.soc().scheduler();
    sched.schedule_after(10, sim::EventTag{&dummy, "writer-a"}, [] {});
    sched.schedule_after(10, sim::EventTag{&dummy, "writer-b"}, [] {});
    drv.step(2000);
    EXPECT_FALSE(drv.races().empty());
}

TEST(DebugDriverRaceAudit, ResumedSessionAuditsLikeTheColdSession) {
    // Cold session: audit enabled over the whole window.
    debug::Driver cold(sys::make_triangle_spec());
    cold.set_race_audit(true);
    cold.run_to_cycle(0, kTotal, kDeadline);
    // Resumed session: audit enabled, snapshot mid-run, restore, continue.
    debug::Driver split(sys::make_triangle_spec());
    split.set_race_audit(true);
    split.run_to_cycle(0, kPrefix, kDeadline);
    const auto image = split.snapshot();
    split.restore(image);
    split.run_to_cycle(0, kTotal, kDeadline);
    // Identical end state, and the audited event stream is race-free in
    // both sessions — the resume changed nothing about the audit.
    EXPECT_EQ(cold.digest(), split.digest());
    EXPECT_TRUE(cold.races().empty());
    EXPECT_TRUE(split.races().empty());
}

TEST(DebugDriverRaceAudit, OffByDefaultAndOffAfterPlainRestore) {
    debug::Driver drv(sys::make_pair_spec());
    EXPECT_FALSE(drv.race_audit());
    drv.run_to_cycle(0, kPrefix, kDeadline);
    drv.restore(drv.snapshot());
    EXPECT_FALSE(drv.soc().scheduler().race_audit());
}

// --- warm-up forking ----------------------------------------------------

TEST(WarmRunner, ForkedSweepIsBitIdenticalToNonForked) {
    const sys::SocSpec spec = sys::make_pair_spec();
    const sys::DelayConfig nominal = sys::DelayConfig::nominal(spec);

    std::vector<sys::DelayConfig> cases;
    for (unsigned pct : {50u, 75u, 150u, 200u}) {
        sys::DelayConfig c = nominal;
        c.fifo_pct.assign(c.fifo_pct.size(), pct);
        cases.push_back(c);
        c = nominal;
        c.ring_ab_pct.assign(c.ring_ab_pct.size(), pct);
        cases.push_back(c);
    }

    const sys::WarmRunner forked(spec, kTotal, kDeadline, kPrefix,
                                 /*fork=*/true);
    const sys::WarmRunner plain(spec, kTotal, kDeadline, kPrefix,
                                /*fork=*/false);
    for (const auto& c : cases) {
        EXPECT_EQ(forked(c), plain(c));
    }

    // And through the harness: identical sweep summaries at any job count.
    verify::DeterminismHarness<sys::DelayConfig> hf(forked, nominal, kTotal);
    verify::DeterminismHarness<sys::DelayConfig> hp(plain, nominal, kTotal);
    const auto rf = hf.sweep(cases, /*jobs=*/2);
    const auto rp = hp.sweep(cases, /*jobs=*/1);
    EXPECT_EQ(rf.runs, rp.runs);
    EXPECT_EQ(rf.mismatches, rp.mismatches);
}

TEST(CampaignWarmup, ForkedSummaryIsBitIdenticalToNonForked) {
    fuzz::CampaignConfig base;
    base.spec_name = "pair";
    base.cycles = 80;
    base.classes = fuzz::all_fault_classes();
    base.warmup_cycles = 30;

    fuzz::CampaignConfig forked = base;
    forked.warmup_fork = true;
    fuzz::CampaignConfig plain = base;
    plain.warmup_fork = false;

    const fuzz::Campaign cf(forked);
    const fuzz::Campaign cp(plain);
    EXPECT_EQ(cf.golden(), cp.golden());
    EXPECT_FALSE(cf.warmup_prefix().empty());
    EXPECT_TRUE(cp.warmup_prefix().empty());

    // Identical case streams, identical per-run reports, identical summary —
    // forked at jobs=2 against non-forked at jobs=1 (the acceptance bar).
    std::vector<fuzz::RunReport> reports_f;
    std::vector<fuzz::RunReport> reports_p;
    const auto sf = cf.run(
        24, /*seed=*/0x5eedull,
        [&](std::size_t, const fuzz::FuzzCase&, const fuzz::RunReport& r) {
            reports_f.push_back(r);
        },
        /*jobs=*/2);
    const auto sp = cp.run(
        24, /*seed=*/0x5eedull,
        [&](std::size_t, const fuzz::FuzzCase&, const fuzz::RunReport& r) {
            reports_p.push_back(r);
        },
        /*jobs=*/1);
    EXPECT_EQ(reports_f, reports_p);
    EXPECT_EQ(sf, sp);
}

}  // namespace
}  // namespace st
