#include <gtest/gtest.h>

#include "deadlock/rules.hpp"
#include "system/delay_config.hpp"
#include "system/soc.hpp"
#include "system/testbenches.hpp"
#include "verify/determinism.hpp"
#include "workload/traffic.hpp"

namespace st::sys {
namespace {

TEST(TriangleSoc, ElaboratesThePaperTestCase) {
    // Paper §5: "a system composed of three SBs and six FIFOs".
    Soc soc(make_triangle_spec());
    EXPECT_EQ(soc.num_sbs(), 3u);
    EXPECT_EQ(soc.num_rings(), 3u);
    EXPECT_EQ(soc.num_channels(), 6u);
    // Each SB sits on two rings: two nodes, two inputs, two outputs.
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_EQ(soc.wrapper(i).num_nodes(), 2u);
        EXPECT_EQ(soc.wrapper(i).num_inputs(), 2u);
        EXPECT_EQ(soc.wrapper(i).num_outputs(), 2u);
    }
}

TEST(TriangleSoc, HeterogeneousClocksExchangeDataEverywhere) {
    Soc soc(make_triangle_spec());
    ASSERT_TRUE(soc.run_cycles(600, sim::ms(1)));
    for (std::size_t i = 0; i < 3; ++i) {
        const auto& k = dynamic_cast<const wl::TrafficKernel&>(
            soc.wrapper(i).block().kernel());
        EXPECT_GT(k.words_emitted(), 50u) << soc.wrapper(i).name();
        EXPECT_GT(k.words_consumed(), 50u) << soc.wrapper(i).name();
    }
}

TEST(TriangleSoc, ClocksActuallyStopAndRestart) {
    // With 1000/1250/1600 ps clocks the token schedules drift: this is a
    // genuinely GALS system in which the escapement mechanism is exercised.
    Soc soc(make_triangle_spec());
    ASSERT_TRUE(soc.run_cycles(600, sim::ms(1)));
    std::uint64_t total_stops = 0;
    for (std::size_t i = 0; i < 3; ++i) {
        total_stops += soc.wrapper(i).clock().stop_events();
    }
    EXPECT_GT(total_stops, 10u);
    EXPECT_FALSE(soc.deadlocked());
}

TEST(TriangleSoc, PassesStaticDeadlockRules) {
    const auto report = dl::check_rules(make_triangle_spec());
    EXPECT_TRUE(report.ok) << report.summary();
}

TEST(TriangleSoc, TimingAuditPasses) {
    Soc soc(make_triangle_spec());
    soc.run_cycles(100, sim::ms(1));
    const auto report = soc.audit_timing();
    EXPECT_TRUE(report.all_pass()) << report.summary();
}

TEST(TriangleSoc, ReproducibleAcrossReruns) {
    const auto run = [] {
        Soc soc(make_triangle_spec());
        soc.run_cycles(300, sim::ms(1));
        return soc.traces();
    };
    EXPECT_TRUE(verify::diff_traces(run(), run()).identical);
}

/// Paper §5 determinism experiment (condensed; the full >16000-run sweep
/// lives in bench_determinism): every perturbed run must reproduce the
/// nominal cycle-indexed I/O sequences over the first 100 local cycles.
class TriangleDeterminism : public ::testing::TestWithParam<int> {};

TEST_P(TriangleDeterminism, PerturbedRunMatchesNominal) {
    const SocSpec nominal = make_triangle_spec();
    const auto runner = [&](const DelayConfig& cfg) {
        Soc soc(apply(nominal, cfg));
        soc.run_cycles(150, sim::ms(2));
        return soc.traces();
    };
    verify::DeterminismHarness<DelayConfig> harness(
        runner, DelayConfig::nominal(nominal), 100);

    // Deterministically derived perturbation: parameter k gets one of the
    // paper's percentages based on the test index.
    const unsigned percents[5] = {50, 75, 100, 150, 200};
    DelayConfig cfg = DelayConfig::nominal(nominal);
    const int salt = GetParam();
    for (std::size_t d = 0; d < cfg.dimensions(); ++d) {
        const bool is_clock = d >= cfg.dimensions() - cfg.clock_pct.size();
        const unsigned pct =
            percents[(d * 7 + static_cast<std::size_t>(salt) * 13) % 5];
        // Clock-period perturbations below 100% tighten the FIFO timing
        // constraints; keep them within the audited envelope.
        cfg.set(d, is_clock ? std::max(75u, pct) : pct);
    }
    const auto diff = harness.check(cfg);
    EXPECT_TRUE(diff.identical) << diff.first_mismatch;
}

INSTANTIATE_TEST_SUITE_P(Salts, TriangleDeterminism, ::testing::Range(0, 25));

}  // namespace
}  // namespace st::sys
