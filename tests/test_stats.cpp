#include <gtest/gtest.h>

#include "system/soc.hpp"
#include "system/stats.hpp"
#include "system/testbenches.hpp"

namespace st::sys {
namespace {

TEST(RunStats, CollectsConsistentCounters) {
    Soc soc(make_triangle_spec());
    soc.run_cycles(300, sim::ms(4));
    const auto s = collect_stats(soc);

    ASSERT_EQ(s.sbs.size(), 3u);
    ASSERT_EQ(s.rings.size(), 3u);
    ASSERT_EQ(s.channels.size(), 6u);
    EXPECT_EQ(s.events, soc.scheduler().events_executed());
    EXPECT_EQ(s.sim_time, soc.scheduler().now());
    for (const auto& sb : s.sbs) {
        EXPECT_GE(sb.cycles, 300u);
        EXPECT_GE(sb.duty, 0.0);
        EXPECT_LE(sb.duty, 1.0);
        EXPECT_LE(sb.stopped_time, s.sim_time);
    }
    for (const auto& ring : s.rings) {
        EXPECT_GT(ring.passes, 5u) << ring.name;
    }
    std::uint64_t total_words = 0;
    for (const auto& ch : s.channels) total_words += ch.words;
    EXPECT_GT(total_words, 100u);
}

TEST(RunStats, DutyIsFullWhenNeverStalled) {
    Soc soc(make_pair_spec());  // tuned schedule: zero stops
    soc.run_cycles(300, sim::ms(4));
    const auto s = collect_stats(soc);
    for (const auto& sb : s.sbs) {
        EXPECT_DOUBLE_EQ(sb.duty, 1.0) << sb.name;
        EXPECT_EQ(sb.stop_events, 0u);
    }
}

TEST(RunStats, ReportRendersEverySection) {
    Soc soc(make_pair_spec());
    soc.run_cycles(100, sim::ms(2));
    const auto text = collect_stats(soc).to_string();
    EXPECT_NE(text.find("alpha"), std::string::npos);
    EXPECT_NE(text.find("ring_ab"), std::string::npos);
    EXPECT_NE(text.find("alpha_to_beta"), std::string::npos);
    EXPECT_NE(text.find("duty"), std::string::npos);
}

}  // namespace
}  // namespace st::sys
