#include <gtest/gtest.h>

#include <sstream>

#include "sim/vcd.hpp"
#include "sim/waveform.hpp"

namespace st::sim {
namespace {

TEST(VcdWriter, EmitsValidHeaderAndChanges) {
    std::ostringstream out;
    VcdWriter vcd(out, "soc");
    const int clk = vcd.add_signal("clk", 1);
    const int bus = vcd.add_signal("data", 8);
    vcd.change(clk, 1, 0);
    vcd.change(bus, 0x5a, 0);
    vcd.change(clk, 0, 500);
    vcd.change(clk, 0, 600);  // no change: suppressed
    vcd.change(clk, 1, 1000);
    const std::string s = out.str();
    EXPECT_NE(s.find("$timescale 1ps $end"), std::string::npos);
    EXPECT_NE(s.find("$var wire 1 ! clk $end"), std::string::npos);
    EXPECT_NE(s.find("$var wire 8 \" data $end"), std::string::npos);
    EXPECT_NE(s.find("#0\n"), std::string::npos);
    EXPECT_NE(s.find("b1011010 \""), std::string::npos);
    EXPECT_NE(s.find("#500\n0!"), std::string::npos);
    EXPECT_EQ(s.find("#600"), std::string::npos);  // suppressed timestamp
    EXPECT_NE(s.find("#1000\n1!"), std::string::npos);
}

TEST(VcdWriter, RejectsLateSignalRegistration) {
    std::ostringstream out;
    VcdWriter vcd(out);
    const int sig = vcd.add_signal("a");
    vcd.change(sig, 1, 0);
    EXPECT_THROW(vcd.add_signal("b"), std::logic_error);
}

TEST(VcdWriter, DestructorFinalizesHeaderAndFlushes) {
    // A run aborted before any change still yields a well-formed file: the
    // destructor closes the header and flushes the stream.
    std::ostringstream out;
    {
        VcdWriter vcd(out, "soc");
        vcd.add_signal("clk", 1);
    }
    const std::string s = out.str();
    EXPECT_NE(s.find("$var wire 1 ! clk $end"), std::string::npos);
    EXPECT_NE(s.find("$enddefinitions $end"), std::string::npos);

    // A truncated run stays readable up to its last change, and destruction
    // appends nothing after it.
    std::ostringstream out2;
    {
        VcdWriter vcd(out2, "soc");
        const int clk = vcd.add_signal("clk", 1);
        vcd.change(clk, 1, 100);
    }
    const std::string s2 = out2.str();
    EXPECT_NE(s2.find("$enddefinitions $end"), std::string::npos);
    EXPECT_TRUE(s2.ends_with("#100\n1!\n")) << s2;
}

TEST(WaveRecorder, RendersRailsDigitsAndAnnotations) {
    WaveRecorder rec;
    const int clk = rec.add_signal("clk", /*is_bit=*/true, 0);
    const int ctr = rec.add_signal("hold", /*is_bit=*/false, 3);
    rec.change(clk, 1, 100);
    rec.change(clk, 0, 200);
    rec.change(ctr, 2, 100);
    rec.change(ctr, 1, 200);
    rec.annotate(clk, 'A', 100);
    const std::string s = rec.render(0, 400, 100);
    // Annotation row, then clk rail with rise/fall marks, then digits.
    EXPECT_NE(s.find('A'), std::string::npos);
    EXPECT_NE(s.find('/'), std::string::npos);
    EXPECT_NE(s.find('\\'), std::string::npos);
    EXPECT_NE(s.find("321"), std::string::npos);
}

TEST(WaveRecorder, EmptyRangeYieldsEmptyString) {
    WaveRecorder rec;
    rec.add_signal("x", true, 0);
    EXPECT_TRUE(rec.render(100, 100, 10).empty());
    EXPECT_TRUE(rec.render(0, 100, 0).empty());
}

TEST(WaveRecorder, LargeCounterRendersPlus) {
    WaveRecorder rec;
    const int c = rec.add_signal("big", false, 15);
    rec.change(c, 12, 50);
    const std::string s = rec.render(0, 100, 50);
    EXPECT_NE(s.find('+'), std::string::npos);
}

}  // namespace
}  // namespace st::sim
