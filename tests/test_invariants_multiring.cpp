#include <gtest/gtest.h>

#include "formal/ring_model.hpp"
#include "system/delay_config.hpp"
#include "system/invariant_monitor.hpp"
#include "system/soc.hpp"
#include "system/testbenches.hpp"

namespace st {
namespace {

// ---------------------------------------------------------------------------
// Runtime invariant monitor over every standard topology
// ---------------------------------------------------------------------------

TEST(InvariantMonitor, PairHoldsAllProtocolInvariants) {
    sys::Soc soc(sys::make_pair_spec());
    sys::InvariantMonitor mon(soc);
    soc.run_cycles(500, sim::ms(4));
    EXPECT_GT(mon.checks_performed(), 900u);
    EXPECT_TRUE(mon.violations().empty())
        << mon.violations().front();
}

TEST(InvariantMonitor, TriangleHoldsUnderHeavyStalling) {
    sys::Soc soc(sys::make_triangle_spec());
    sys::InvariantMonitor mon(soc);
    soc.run_cycles(600, sim::ms(8));
    EXPECT_TRUE(mon.violations().empty()) << mon.violations().front();
}

TEST(InvariantMonitor, MeshHolds) {
    sys::MeshOptions opt;
    opt.width = 2;
    opt.height = 2;
    sys::Soc soc(sys::make_mesh_spec(opt));
    sys::InvariantMonitor mon(soc);
    soc.run_cycles(300, sim::ms(8));
    EXPECT_TRUE(mon.violations().empty()) << mon.violations().front();
}

TEST(InvariantMonitor, HoldsUnderExtremePerturbation) {
    const auto spec = sys::make_pair_spec();
    auto cfg = sys::DelayConfig::nominal(spec);
    cfg.fifo_pct.assign(cfg.fifo_pct.size(), 200);
    cfg.ring_ab_pct.assign(cfg.ring_ab_pct.size(), 200);
    cfg.ring_ba_pct.assign(cfg.ring_ba_pct.size(), 50);
    sys::Soc soc(sys::apply(spec, cfg));
    sys::InvariantMonitor mon(soc);
    soc.run_cycles(400, sim::ms(4));
    EXPECT_TRUE(mon.violations().empty()) << mon.violations().front();
}

// ---------------------------------------------------------------------------
// N-node ring formal proof
// ---------------------------------------------------------------------------

formal::MultiRingModel::Config ring_of(std::size_t n, std::uint32_t hold,
                                       std::uint32_t recycle) {
    formal::MultiRingModel::Config cfg;
    for (std::size_t i = 0; i < n; ++i) {
        formal::MultiRingModel::Station s;
        s.hold = hold;
        s.recycle = recycle;
        s.initial_recycle = recycle;
        cfg.stations.push_back(s);
    }
    cfg.max_cycles = 16;
    return cfg;
}

TEST(MultiRingProof, ThreeStationRingIsDeterministic) {
    const auto r = formal::MultiRingModel(ring_of(3, 2, 8)).explore();
    EXPECT_TRUE(r.deterministic) << r.violation;
    EXPECT_TRUE(r.invariants_hold) << r.violation;
    EXPECT_GT(r.states_explored, 200u);
    // Station 0 holds first: cycles 0..1 enabled.
    EXPECT_EQ(r.schedules[0][0], 1);
    EXPECT_EQ(r.schedules[0][1], 1);
    EXPECT_EQ(r.schedules[0][2], 0);
}

class MultiRingSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint32_t>> {
};

TEST_P(MultiRingSweep, AllInterleavingsAgree) {
    const auto [n, hold] = GetParam();
    const auto r =
        formal::MultiRingModel(ring_of(n, hold, hold * 4 + 4)).explore();
    EXPECT_TRUE(r.deterministic) << r.violation;
    EXPECT_TRUE(r.invariants_hold) << r.violation;
}

INSTANTIATE_TEST_SUITE_P(
    StationsByHold, MultiRingSweep,
    ::testing::Combine(::testing::Values<std::size_t>(2, 3, 4),
                       ::testing::Values<std::uint32_t>(1, 2, 3)));

TEST(MultiRingProof, MatchesTwoNodeModelOnSharedConfig) {
    // Sanity: the N-node model restricted to 2 stations agrees with the
    // dedicated two-node model.
    formal::RingModel::Config two;
    two.hold_a = two.hold_b = 2;
    two.recycle_a = two.recycle_b = 6;
    two.initial_recycle_b = 6;
    two.max_cycles = 16;
    const auto ra = formal::RingModel(two).explore();

    auto multi = ring_of(2, 2, 6);
    const auto rb = formal::MultiRingModel(multi).explore();
    ASSERT_TRUE(ra.deterministic && rb.deterministic);
    for (std::size_t i = 0; i < 16; ++i) {
        if (ra.schedule_a[i] >= 0 && rb.schedules[0][i] >= 0) {
            EXPECT_EQ(ra.schedule_a[i], rb.schedules[0][i]) << "cycle " << i;
        }
        if (ra.schedule_b[i] >= 0 && rb.schedules[1][i] >= 0) {
            EXPECT_EQ(ra.schedule_b[i], rb.schedules[1][i]) << "cycle " << i;
        }
    }
}

TEST(MultiRingProof, DegenerateConfigRejected) {
    formal::MultiRingModel::Config cfg;
    cfg.stations.resize(1);
    const auto r = formal::MultiRingModel(cfg).explore();
    EXPECT_FALSE(r.deterministic);
}

}  // namespace
}  // namespace st
