#include <gtest/gtest.h>

#include <set>
#include <string>

#include "lint/fixtures.hpp"
#include "lint/lint.hpp"
#include "lint/race_audit.hpp"
#include "sim/scheduler.hpp"
#include "system/testbenches.hpp"

namespace st::lint {
namespace {

// ---------------------------------------------------------------------------
// Shipped testbench specs lint clean (no error-severity diagnostics).
// ---------------------------------------------------------------------------

class ShippedSpecs : public ::testing::TestWithParam<const char*> {
  protected:
    static sys::SocSpec make(const std::string& name) {
        if (name == "pair") return sys::make_pair_spec();
        if (name == "triangle") return sys::make_triangle_spec();
        if (name == "chain") return sys::make_chain_spec();
        if (name == "mesh") return sys::make_mesh_spec();
        if (name == "wide") return sys::make_wide_pair_spec();
        return sys::make_bus_spec();
    }
};

TEST_P(ShippedSpecs, LintsClean) {
    const auto report = lint(ShippedSpecs::make(GetParam()));
    EXPECT_TRUE(report.ok()) << report.to_string();
    EXPECT_EQ(report.warnings(), 0u) << report.to_string();
}

INSTANTIATE_TEST_SUITE_P(AllTopologies, ShippedSpecs,
                         ::testing::Values("pair", "triangle", "chain",
                                           "mesh", "wide", "bus"),
                         [](const auto& info) {
                             return std::string(info.param);
                         });

// The tuned pair schedule intentionally runs inside the one-cycle alignment
// margin: the linter must explain that (note), not reject it (error).
TEST(ShippedSpecNotes, TunedPairScheduleIsANoteNotAnError) {
    const auto report = lint(sys::make_pair_spec());
    EXPECT_TRUE(report.ok());
    EXPECT_FALSE(report.for_rule("recycle-feasibility").empty());
    for (const auto& d : report.for_rule("recycle-feasibility")) {
        EXPECT_EQ(d.severity, Severity::kNote) << d.to_string();
    }
}

// ---------------------------------------------------------------------------
// Every broken fixture trips exactly its expected rule at error severity.
// ---------------------------------------------------------------------------

TEST(Fixtures, CatalogMatchesCMakeList) {
    // tools/CMakeLists.txt hardcodes these names for the WILL_FAIL tests.
    std::set<std::string> names;
    for (const auto& f : fixture_catalog()) names.insert(f.name);
    const std::set<std::string> expected = {
        "bad-channel-ring", "two-initial-holders", "undersized-fifo",
        "starved-recycle",  "counter-overflow",    "deadlock-cycle"};
    EXPECT_EQ(names, expected);
}

TEST(Fixtures, EachTriggersExactlyItsRule) {
    for (const auto& f : fixture_catalog()) {
        const auto report = lint(make_fixture(f.name));
        EXPECT_FALSE(report.ok()) << f.name << " should fail";
        EXPECT_TRUE(report.has_error(f.expected_rule))
            << f.name << " expected rule " << f.expected_rule << "\n"
            << report.to_string();
        for (const auto& d : report.diagnostics()) {
            if (d.severity == Severity::kError) {
                EXPECT_EQ(d.rule, f.expected_rule)
                    << f.name << " leaked an extra error:\n"
                    << d.to_string();
            }
        }
    }
}

TEST(Fixtures, UnknownNameThrows) {
    EXPECT_THROW(make_fixture("no-such-fixture"), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Individual passes on hand-rolled malformed specs.
// ---------------------------------------------------------------------------

TEST(StructuralPasses, OutOfRangeIndicesStopTheRun) {
    sys::SocSpec spec = sys::make_pair_spec();
    spec.rings.at(0).sb_b = 7;  // only 2 SBs exist
    const auto report = lint(spec);
    EXPECT_TRUE(report.has_error("ring-endpoints"));
    // Deeper passes were skipped — no schedule arithmetic on bad indices.
    EXPECT_TRUE(report.for_rule("recycle-feasibility").empty());
}

TEST(StructuralPasses, IsolatedSbIsAWarning) {
    auto spec = sys::make_pair_spec();
    sys::SbSpec loner;
    loner.name = "loner";
    loner.clock.base_period = 1000;
    loner.make_kernel = spec.sbs[0].make_kernel;
    spec.sbs.push_back(loner);
    const auto report = lint(spec);
    EXPECT_TRUE(report.ok()) << report.to_string();
    const auto diags = report.for_rule("isolated-sb");
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].severity, Severity::kWarning);
    EXPECT_NE(diags[0].locus.find("loner"), std::string::npos);
}

TEST(StructuralPasses, ZeroHoldIsRejected) {
    auto spec = sys::make_pair_spec();
    spec.rings.at(0).node_a.hold = 0;
    EXPECT_TRUE(lint(spec).has_error("param-sanity"));
}

TEST(StructuralPasses, NoInitialHolderIsRejected) {
    auto spec = sys::make_pair_spec();
    spec.rings.at(0).node_a.initial_holder = false;
    EXPECT_TRUE(lint(spec).has_error("initial-holder"));
}

TEST(StructuralPasses, MultiRingDuplicateMemberIsRejected) {
    auto spec = sys::make_bus_spec();
    spec.multi_rings.at(0).members.at(1).sb =
        spec.multi_rings.at(0).members.at(0).sb;
    EXPECT_TRUE(lint(spec).has_error("ring-endpoints"));
}

TEST(StructuralPasses, MultiRingNonMemberChannelIsRejected) {
    auto spec = sys::make_bus_spec();
    // Detach SB 2 from the bus; its channels now reference a non-member.
    auto& members = spec.multi_rings.at(0).members;
    members.erase(members.begin() + 2);
    const auto report = lint(spec);
    EXPECT_TRUE(report.has_error("channel-ring")) << report.to_string();
}

TEST(TimingPasses, HeadVisibilityWarnsOnSlowDeepFifo) {
    auto spec = sys::make_pair_spec();
    spec.channels.at(0).fifo.stage_delay = 400;  // 4 stages * 400 >> 900
    const auto report = lint(spec);
    EXPECT_TRUE(report.ok()) << report.to_string();  // warning, not error
    EXPECT_FALSE(report.for_rule("fifo-head-visibility").empty());
}

TEST(TimingPasses, ClockRatioWarnsBeyondFourX) {
    sys::PairOptions opt;
    opt.period_b = 5000;  // 5x the 1000 ps side
    const auto report = lint(sys::make_pair_spec(opt));
    EXPECT_FALSE(report.for_rule("clock-ratio").empty())
        << report.to_string();
}

TEST(TimingPasses, RestartDelayNearPeriodWarns) {
    auto spec = sys::make_pair_spec();
    spec.sbs.at(0).clock.restart_delay = 600;  // >= half of 1000 ps
    EXPECT_FALSE(lint(spec).for_rule("restart-delay").empty());
}

TEST(TimingPasses, DeadlockPassCanBeDisabled) {
    const auto fixture = make_fixture("deadlock-cycle");
    LintOptions opt;
    opt.deadlock_pass = false;
    EXPECT_TRUE(lint(fixture, opt).ok());
    EXPECT_FALSE(lint(fixture).ok());
}

// ---------------------------------------------------------------------------
// Diagnostic formatting.
// ---------------------------------------------------------------------------

TEST(DiagnosticFormat, GccStyleLine) {
    Diagnostic d;
    d.severity = Severity::kWarning;
    d.rule = "clock-ratio";
    d.locus = "ring 'r0'";
    d.message = "ratio 5 exceeds 4";
    EXPECT_EQ(d.to_string(), "ring 'r0': warning: ratio 5 exceeds 4 "
                             "[clock-ratio]");
    d.fix_hint = "retune dividers";
    EXPECT_NE(d.to_string().find("note: fix: retune dividers"),
              std::string::npos);
}

TEST(DiagnosticFormat, ReportSummaryCounts) {
    LintReport r;
    r.add(Severity::kError, "a", "x", "m1");
    r.add(Severity::kWarning, "b", "y", "m2");
    r.add(Severity::kNote, "b", "z", "m3");
    EXPECT_EQ(r.errors(), 1u);
    EXPECT_EQ(r.warnings(), 1u);
    EXPECT_EQ(r.notes(), 1u);
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.for_rule("b").size(), 2u);
    EXPECT_NE(r.to_string().find("1 error(s), 1 warning(s), 1 note(s)"),
              std::string::npos);
}

TEST(PassCatalog, IsPopulated) {
    EXPECT_GE(pass_catalog().size(), 8u);
}

// ---------------------------------------------------------------------------
// Scheduler race audit: fires on a synthetic same-slot same-actor pair,
// silent on the shipped testbenches.
// ---------------------------------------------------------------------------

TEST(RaceAudit, SyntheticSameSlotRaceIsDetected) {
    sim::Scheduler sched;
    sched.set_race_audit(true);
    int dummy = 0;
    sched.schedule_after(100, sim::EventTag{&dummy, "writer-a"}, [] {});
    sched.schedule_after(100, sim::EventTag{&dummy, "writer-b"}, [] {});
    sched.run();
    ASSERT_EQ(sched.races().size(), 1u);
    EXPECT_EQ(sched.races()[0].t, 100u);
    EXPECT_EQ(sched.races()[0].first, "writer-a");
    EXPECT_EQ(sched.races()[0].second, "writer-b");

    LintReport report;
    collect_race_diagnostics(sched, report);
    EXPECT_TRUE(report.has_error("sched-race"));
}

TEST(RaceAudit, DistinctActorsOrSlotsDoNotFire) {
    sim::Scheduler sched;
    sched.set_race_audit(true);
    int a = 0, b = 0;
    sched.schedule_after(100, sim::EventTag{&a, "x"}, [] {});
    sched.schedule_after(100, sim::EventTag{&b, "y"}, [] {});  // other actor
    sched.schedule_after(200, sim::EventTag{&a, "z"}, [] {});  // other slot
    sched.schedule_after(200, sim::Priority::kMonitor,
                         sim::EventTag{&a, "w"}, [] {});  // other priority
    sched.schedule_after(300, [] {});                     // untagged
    sched.schedule_after(300, [] {});
    sched.run();
    EXPECT_TRUE(sched.races().empty());
}

TEST(DiagnosticFormat, JsonObjectEscapesAndOmitsEmptyFields) {
    Diagnostic d;
    d.severity = Severity::kWarning;
    d.rule = "fifo-depth";
    d.locus = "channel \"x\"";
    d.message = "line1\nline2";
    EXPECT_EQ(d.to_json(),
              "{\"rule\":\"fifo-depth\",\"severity\":\"warning\","
              "\"locus\":\"channel \\\"x\\\"\","
              "\"message\":\"line1\\nline2\"}");
    d.fix_hint = "raise depth";
    d.witness = "delays{fifo0=200%}";
    EXPECT_NE(d.to_json().find("\"fix_hint\":\"raise depth\""),
              std::string::npos);
    EXPECT_NE(d.to_json().find("\"witness\":\"delays{fifo0=200%}\""),
              std::string::npos);
}

TEST(DiagnosticFormat, ReportJsonIsAnArray) {
    LintReport r;
    r.add(Severity::kError, "a-rule", "spot", "msg");
    r.add(Severity::kNote, "b-rule", "spot2", "msg2");
    const std::string j = r.to_json();
    EXPECT_EQ(j.front(), '[');
    EXPECT_EQ(j.back(), ']');
    EXPECT_NE(j.find("\"rule\":\"a-rule\""), std::string::npos);
    EXPECT_NE(j.find("},{"), std::string::npos);
}

TEST(DiagnosticFormat, CanonicalizeSortsByCatalogOrderThenLocus) {
    LintReport r;
    r.add(Severity::kNote, "zzz-unknown", "b", "m");
    r.add(Severity::kError, "fifo-depth", "z", "m");
    r.add(Severity::kError, "fifo-depth", "a", "m");
    r.add(Severity::kNote, "channel-ring", "x", "m");
    r.add(Severity::kNote, "aaa-unknown", "a", "m");
    r.canonicalize({"channel-ring", "fifo-depth"});
    const auto& d = r.diagnostics();
    ASSERT_EQ(d.size(), 5u);
    EXPECT_EQ(d[0].rule, "channel-ring");
    EXPECT_EQ(d[1].locus, "a");  // fifo-depth sorted by locus
    EXPECT_EQ(d[2].locus, "z");
    EXPECT_EQ(d[3].rule, "aaa-unknown");  // unknown rules last, by name
    EXPECT_EQ(d[4].rule, "zzz-unknown");
}

TEST(RaceAudit, AuditOffRecordsNothing) {
    sim::Scheduler sched;
    int dummy = 0;
    sched.schedule_after(10, sim::EventTag{&dummy, "a"}, [] {});
    sched.schedule_after(10, sim::EventTag{&dummy, "b"}, [] {});
    sched.run();
    EXPECT_TRUE(sched.races().empty());
}

class RaceAuditShipped : public ::testing::TestWithParam<const char*> {};

TEST_P(RaceAuditShipped, Tier1TestbenchesAreSilent) {
    const std::string name = GetParam();
    sys::SocSpec spec;
    if (name == "pair") {
        spec = sys::make_pair_spec();
    } else if (name == "triangle") {
        spec = sys::make_triangle_spec();
    } else if (name == "wide") {
        spec = sys::make_wide_pair_spec();
    } else {
        spec = sys::make_bus_spec();
    }
    const auto report = run_race_audit(spec, 300, sim::ms(200));
    EXPECT_TRUE(report.ok()) << report.to_string();
    EXPECT_TRUE(report.diagnostics().empty()) << report.to_string();
}

INSTANTIATE_TEST_SUITE_P(Topologies, RaceAuditShipped,
                         ::testing::Values("pair", "triangle", "wide", "bus"),
                         [](const auto& info) {
                             return std::string(info.param);
                         });

}  // namespace
}  // namespace st::lint
