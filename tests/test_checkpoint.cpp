// Tests for campaign checkpoint images, resume, and shard merge — the
// determinism contract extended across process boundaries: a campaign split
// into N shards, or killed and resumed at any reduction point, must produce
// the byte-identical summary of one uninterrupted single-process run.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "fuzz/campaign.hpp"
#include "fuzz/checkpoint.hpp"
#include "snap/snapshot.hpp"
#include "snap/state_io.hpp"

namespace {

using namespace st;

fuzz::CampaignConfig faulty_config() {
    fuzz::CampaignConfig cfg;
    cfg.spec_name = "pair";
    cfg.cycles = 80;
    cfg.classes = fuzz::all_fault_classes();
    cfg.max_faults = 2;
    return cfg;
}

/// A progress image with a non-trivial summary: real failures carrying
/// delay vectors, faults, loci, and expected/actual events.
fuzz::CampaignProgress sample_progress() {
    const fuzz::Campaign campaign(faulty_config());
    fuzz::CampaignProgress p;
    p.key = fuzz::make_campaign_key(campaign.config(), 9, 24,
                                    runner::Shard{1, 3});
    fuzz::CampaignControl ctl;
    ctl.shard = p.key.shard;
    p.summary = campaign.run(24, 9, {}, 2, ctl);
    p.completed = p.summary.runs;
    return p;
}

std::string temp_path(const std::string& name) {
    return ::testing::TempDir() + "st_checkpoint_" + name;
}

// --- image round-trip ---

TEST(Checkpoint, EncodeDecodeRoundTrip) {
    const fuzz::CampaignProgress p = sample_progress();
    ASSERT_GT(p.summary.runs, 0u);
    const fuzz::CampaignProgress q =
        fuzz::decode_progress(fuzz::encode_progress(p));
    EXPECT_TRUE(p == q);
}

TEST(Checkpoint, FileRoundTripIsAtomicAndStable) {
    const fuzz::CampaignProgress p = sample_progress();
    const std::string path = temp_path("roundtrip.ckpt");
    fuzz::save_progress_file(p, path);
    // Overwrite in place (the atomic tmp+rename path) and reload.
    fuzz::save_progress_file(p, path);
    const fuzz::CampaignProgress q = fuzz::load_progress_file(path);
    EXPECT_TRUE(p == q);
    std::remove(path.c_str());
}

TEST(Checkpoint, RejectsNewerFormatVersion) {
    // Negative fixture: a hand-crafted image whose top-level chunk claims
    // version 2. A build that only understands version 1 must refuse it
    // rather than misparse the body.
    snap::StateWriter w;
    w.begin_group("stcampaign", 2);
    w.begin("key", 2);
    w.str("pair");
    w.end();
    w.end();
    EXPECT_THROW(fuzz::decode_progress(snap::Snapshot(w.take())),
                 snap::SnapshotError);
}

TEST(Checkpoint, RejectsTrailingBytes) {
    const fuzz::CampaignProgress p = sample_progress();
    snap::Snapshot img = fuzz::encode_progress(p);
    std::vector<std::uint8_t> bytes = img.bytes();
    bytes.push_back(0xAB);
    EXPECT_THROW(fuzz::decode_progress(snap::Snapshot(std::move(bytes))),
                 snap::SnapshotError);
}

// --- resume ---

TEST(CheckpointResume, ResumeReproducesUninterruptedSummary) {
    const fuzz::Campaign campaign(faulty_config());
    const std::uint64_t n = 30;
    const std::uint64_t seed = 5;
    const fuzz::CampaignSummary whole = campaign.run(n, seed, {}, 2);

    for (const std::uint64_t stop : {1u, 7u, 15u, 29u}) {
        const std::string path =
            temp_path("resume_" + std::to_string(stop) + ".ckpt");
        fuzz::CampaignControl first;
        first.checkpoint_path = path;
        first.checkpoint_every = 4;
        first.stop_after = stop;
        const fuzz::CampaignSummary partial =
            campaign.run(n, seed, {}, 2, first);
        EXPECT_EQ(partial.runs, stop);

        fuzz::CampaignControl second;
        second.checkpoint_path = path;
        second.resume = true;
        const fuzz::CampaignSummary resumed =
            campaign.run(n, seed, {}, 4, second);
        EXPECT_TRUE(resumed == whole) << "stop=" << stop;
        std::remove(path.c_str());
    }
}

TEST(CheckpointResume, OnRunSeesOnlyTheRemainingGlobalIndices) {
    const fuzz::Campaign campaign(faulty_config());
    const std::string path = temp_path("resume_indices.ckpt");
    fuzz::CampaignControl first;
    first.checkpoint_path = path;
    first.stop_after = 6;
    campaign.run(20, 3, {}, 1, first);

    std::vector<std::size_t> indices;
    fuzz::CampaignControl second;
    second.checkpoint_path = path;
    second.resume = true;
    campaign.run(
        20, 3,
        [&](std::size_t i, const fuzz::FuzzCase&, const fuzz::RunReport&) {
            indices.push_back(i);
        },
        2, second);
    ASSERT_EQ(indices.size(), 14u);
    for (std::size_t k = 0; k < indices.size(); ++k) {
        EXPECT_EQ(indices[k], 6 + k);
    }
    std::remove(path.c_str());
}

TEST(CheckpointResume, RejectsCheckpointFromDifferentCampaign) {
    const fuzz::Campaign campaign(faulty_config());
    const std::string path = temp_path("mismatch.ckpt");
    fuzz::CampaignControl first;
    first.checkpoint_path = path;
    first.stop_after = 4;
    campaign.run(20, 3, {}, 1, first);

    fuzz::CampaignControl second;
    second.checkpoint_path = path;
    second.resume = true;
    // Different seed -> different campaign identity -> refuse to resume.
    EXPECT_THROW(campaign.run(20, 4, {}, 1, second), snap::SnapshotError);
    std::remove(path.c_str());
}

TEST(CheckpointResume, ResumeWithoutPathIsAUsageError) {
    const fuzz::Campaign campaign(faulty_config());
    fuzz::CampaignControl ctl;
    ctl.resume = true;
    EXPECT_THROW(campaign.run(10, 1, {}, 1, ctl), std::invalid_argument);
}

// --- shard merge ---

TEST(CheckpointShards, MergeMatchesSingleProcessAtEveryJobsValue) {
    const fuzz::Campaign campaign(faulty_config());
    const std::uint64_t n = 36;
    const std::uint64_t seed = 13;
    const fuzz::CampaignSummary whole = campaign.run(n, seed, {}, 1);
    ASSERT_GT(whole.failures.size(), 0u);

    for (const std::size_t jobs : {1u, 2u, 4u}) {
        for (const std::uint64_t count : {2u, 3u}) {
            std::vector<fuzz::CampaignSummary> parts;
            for (std::uint64_t idx = 0; idx < count; ++idx) {
                fuzz::CampaignControl ctl;
                ctl.shard = runner::Shard{idx, count};
                parts.push_back(campaign.run(n, seed, {}, jobs, ctl));
            }
            const fuzz::CampaignSummary merged = fuzz::merge_shards(parts);
            EXPECT_TRUE(merged == whole)
                << "jobs=" << jobs << " shards=" << count;
        }
    }
}

TEST(CheckpointShards, CompletedShardCheckpointsMergeToWhole) {
    // A completed shard's final checkpoint IS its summary: load the files
    // back and merge them, as `st_fuzz --merge` does.
    const fuzz::Campaign campaign(faulty_config());
    const std::uint64_t n = 24;
    const std::uint64_t seed = 21;
    const fuzz::CampaignSummary whole = campaign.run(n, seed, {}, 2);

    std::vector<fuzz::CampaignSummary> parts;
    for (std::uint64_t idx = 0; idx < 2; ++idx) {
        const std::string path =
            temp_path("shard_" + std::to_string(idx) + ".ckpt");
        fuzz::CampaignControl ctl;
        ctl.shard = runner::Shard{idx, 2};
        ctl.checkpoint_path = path;
        campaign.run(n, seed, {}, 2, ctl);
        const fuzz::CampaignProgress p = fuzz::load_progress_file(path);
        EXPECT_EQ(p.completed, p.key.shard.size_of(n));
        parts.push_back(p.summary);
        std::remove(path.c_str());
    }
    EXPECT_TRUE(fuzz::merge_shards(parts) == whole);
}

TEST(CheckpointShards, MergeShardsReappliesFailureRetentionCap) {
    // Synthetic shards holding more than kMaxFailures combined: the merge
    // must keep the 32 globally-earliest failures and count the rest as
    // dropped, exactly as a single process would have.
    fuzz::CampaignSummary a;
    fuzz::CampaignSummary b;
    fuzz::FuzzCase c;
    fuzz::RunReport r;
    r.outcome = fuzz::Outcome::kTraceDivergent;
    for (std::uint64_t g = 0; g < 48; ++g) {
        fuzz::CampaignSummary& s = (g % 2 == 0) ? a : b;
        s.runs += 1;
        s.by_outcome[static_cast<std::size_t>(r.outcome)] += 1;
        s.add_failure(g, c, r);
    }
    const fuzz::CampaignSummary merged = fuzz::merge_shards({a, b});
    EXPECT_EQ(merged.runs, 48u);
    ASSERT_EQ(merged.failures.size(), fuzz::CampaignSummary::kMaxFailures);
    for (std::size_t i = 0; i < merged.failures.size(); ++i) {
        EXPECT_EQ(merged.failures[i].index, i);
    }
    EXPECT_EQ(merged.failures_dropped,
              48 - fuzz::CampaignSummary::kMaxFailures);
}

}  // namespace
