#include <gtest/gtest.h>

#include "async/make_link.hpp"
#include "sim/scheduler.hpp"
#include "system/delay_config.hpp"
#include "system/soc.hpp"
#include "system/testbenches.hpp"
#include "verify/io_trace.hpp"
#include "workload/traffic.hpp"

namespace st::achan {
namespace {

class CollectSink final : public LinkSink {
  public:
    explicit CollectSink(sim::Scheduler& s) : sched_(s) {}
    bool ready = true;
    std::vector<Word> words;
    std::vector<sim::Time> times;
    bool can_accept() const override { return ready; }
    void accept(Word w) override {
        words.push_back(w);
        times.push_back(sched_.now());
    }

  private:
    sim::Scheduler& sched_;
};

FourPhaseLink::Params params(LinkProtocol proto, sim::Time req = 30,
                             sim::Time ack = 10) {
    FourPhaseLink::Params p;
    p.data_bits = 32;
    p.req_delay = req;
    p.ack_delay = ack;
    p.protocol = proto;
    return p;
}

TEST(TwoPhaseLink, HalvesTheHandshakeLatency) {
    sim::Scheduler sched;
    auto two = make_link(sched, "2p", params(LinkProtocol::kTwoPhase));
    auto four = make_link(sched, "4p", params(LinkProtocol::kFourPhase));
    CollectSink s2(sched);
    CollectSink s4(sched);
    two->bind_sink(&s2);
    four->bind_sink(&s4);
    two->send(1);
    four->send(2);
    sched.run();
    EXPECT_EQ(two->last_latency(), 40u);   // req + ack
    EXPECT_EQ(four->last_latency(), 80u);  // 2*(req + ack)
    EXPECT_EQ(two->unloaded_latency(), 40u);
    EXPECT_EQ(four->unloaded_latency(), 80u);
}

TEST(TwoPhaseLink, BackpressureAndPokeWork) {
    sim::Scheduler sched;
    auto link = make_link(sched, "2p", params(LinkProtocol::kTwoPhase));
    CollectSink sink(sched);
    sink.ready = false;
    link->bind_sink(&sink);
    link->send(7);
    sched.run();
    EXPECT_TRUE(link->request_pending());
    sink.ready = true;
    link->poke();
    sched.run();
    EXPECT_TRUE(link->idle());
    EXPECT_EQ(sink.words, (std::vector<Word>{7}));
}

TEST(TwoPhaseLink, BurstThroughputBeatsFourPhase) {
    const auto burst_time = [](LinkProtocol proto) {
        sim::Scheduler sched;
        auto link = make_link(sched, "l", params(proto));
        CollectSink sink(sched);
        link->bind_sink(&sink);
        int sent = 0;
        std::function<void()> next = [&] {
            if (sent < 50) link->send(static_cast<Word>(sent++));
        };
        link->on_complete(next);
        next();
        sched.run();
        return sched.now();
    };
    EXPECT_LT(burst_time(LinkProtocol::kTwoPhase),
              burst_time(LinkProtocol::kFourPhase));
}

TEST(TwoPhaseLink, ErrorsMirrorFourPhase) {
    sim::Scheduler sched;
    auto link = make_link(sched, "l", params(LinkProtocol::kTwoPhase));
    EXPECT_THROW(link->send(1), std::logic_error);  // no sink
    CollectSink sink(sched);
    link->bind_sink(&sink);
    link->send(1);
    EXPECT_THROW(link->send(2), std::logic_error);  // busy
}

/// End-to-end: the whole pair SoC running on two-phase links everywhere
/// stays functional and deterministic.
TEST(TwoPhaseSystem, PairRunsDeterministically) {
    auto spec = sys::make_pair_spec();
    for (auto& c : spec.channels) {
        c.tail_link.protocol = LinkProtocol::kTwoPhase;
        c.fifo.head_protocol = LinkProtocol::kTwoPhase;
    }
    const auto run = [&](const sys::DelayConfig& cfg) {
        sys::Soc soc(sys::apply(spec, cfg));
        soc.run_cycles(200, sim::ms(2));
        EXPECT_TRUE(soc.audit_timing().all_pass());
        return verify::truncated(soc.traces(), 150);
    };
    const auto nominal = run(sys::DelayConfig::nominal(spec));
    EXPECT_FALSE(nominal.at("alpha").events.empty());
    auto cfg = sys::DelayConfig::nominal(spec);
    cfg.fifo_pct.assign(cfg.fifo_pct.size(), 200);
    cfg.ring_ab_pct.assign(cfg.ring_ab_pct.size(), 50);
    const auto diff = verify::diff_traces(nominal, run(cfg));
    EXPECT_TRUE(diff.identical) << diff.first_mismatch;
}

/// The protocols deliver identical *data sequences* (only analog timing
/// differs), so the cycle-indexed traces of a two-phase system match the
/// four-phase system word for word.
TEST(TwoPhaseSystem, SameTracesAsFourPhaseSystem) {
    auto spec2 = sys::make_pair_spec();
    for (auto& c : spec2.channels) {
        c.tail_link.protocol = LinkProtocol::kTwoPhase;
        c.fifo.head_protocol = LinkProtocol::kTwoPhase;
    }
    const auto spec4 = sys::make_pair_spec();
    const auto run = [](const sys::SocSpec& s) {
        sys::Soc soc(s);
        soc.run_cycles(200, sim::ms(2));
        return verify::truncated(soc.traces(), 150);
    };
    const auto diff = verify::diff_traces(run(spec4), run(spec2));
    EXPECT_TRUE(diff.identical) << diff.first_mismatch;
}

}  // namespace
}  // namespace st::achan
