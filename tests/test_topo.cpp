// Tests for the procedural NoC-scale topology generator (src/topo) and the
// serializable routed-traffic kernel it emits (wl::NocKernel). The headline
// properties:
//
//  * every shape x {64, 256, 1024} SBs x 3 seeds round-trips byte-identically
//    through the .stspec v1 text format, lints clean, and discharges all
//    five sva verification obligations;
//  * routed traffic on a generated 64-SB mesh is deterministic under the
//    paper's delay perturbations, with bit-identical sweep aggregates at
//    --jobs 1, 2 and 4;
//  * a perturbation outside the provisioning envelope diverges, and the
//    streaming checker's early exit cuts the divergent run short at scale;
//  * the checked-in golden fixtures (mesh_8x8, star_64, ring_of_rings_64/256)
//    regenerate byte-identically, with their lint/verify verdicts and
//    golden-trace digests on record.

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "lint/lint.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"
#include "sva/spec_text.hpp"
#include "sva/verify.hpp"
#include "system/delay_config.hpp"
#include "system/soc.hpp"
#include "topo/topo.hpp"
#include "verify/determinism.hpp"
#include "verify/io_trace.hpp"
#include "verify/streaming.hpp"
#include "workload/noc.hpp"

namespace {

using namespace st;

std::string read_file(const std::filesystem::path& p) {
    std::ifstream in(p, std::ios::binary);
    EXPECT_TRUE(in) << "cannot open " << p;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

/// The paper-style joint perturbation st_topo sweeps with: every FIFO/ring
/// dimension from {50, 75, 150, 200} percent, clocks clamped to the audited
/// >= 75 percent envelope.
sys::DelayConfig joint_perturbation(const sys::SocSpec& spec,
                                    std::uint64_t seed) {
    auto cfg = sys::DelayConfig::nominal(spec);
    sim::Rng rng(seed);
    const unsigned percents[4] = {50, 75, 150, 200};
    for (std::size_t d = 0; d < cfg.dimensions(); ++d) {
        const bool is_clock = d >= cfg.dimensions() - cfg.clock_pct.size();
        const unsigned pct = percents[rng.next_below(4)];
        cfg.set(d, is_clock ? std::max(75u, pct) : pct);
    }
    return cfg;
}

/// Order-independent-free digest of a nominal run's golden traces: FNV-1a
/// over (name bytes, per-SB digest) in the GoldenIndex's fixed name order.
/// One word delivered at a different cycle anywhere changes the value.
std::uint64_t golden_digest(const sys::SocSpec& spec, std::uint64_t cycles) {
    sys::Soc soc(spec);
    EXPECT_TRUE(soc.run_cycles(cycles + 40, sim::ms(2000)));
    const auto golden = verify::truncated(soc.traces(), cycles);
    const verify::GoldenIndex idx(golden, cycles);
    std::uint64_t h = verify::kFnvOffset;
    for (const auto& e : idx.entries()) {
        for (const char c : e.name) {
            h = verify::fnv1a_u64(h, static_cast<unsigned char>(c));
        }
        h = verify::fnv1a_u64(h, e.events.size());
        h = verify::fnv1a_u64(h, e.digest);
    }
    return h;
}

// --- geometry planning -----------------------------------------------------

TEST(TopoGeometry, NearSquareFactorization) {
    EXPECT_EQ(topo::plan_geometry(64).width, 8u);
    EXPECT_EQ(topo::plan_geometry(64).height, 8u);
    EXPECT_EQ(topo::plan_geometry(256).width, 16u);
    EXPECT_EQ(topo::plan_geometry(256).height, 16u);
    EXPECT_EQ(topo::plan_geometry(1024).width, 32u);
    EXPECT_EQ(topo::plan_geometry(1024).height, 32u);
    EXPECT_EQ(topo::plan_geometry(96).width, 8u);
    EXPECT_EQ(topo::plan_geometry(96).height, 12u);
    // Primes degenerate to a 1 x p strip, still a valid mesh.
    EXPECT_EQ(topo::plan_geometry(13).width, 1u);
    EXPECT_EQ(topo::plan_geometry(13).height, 13u);
}

TEST(TopoGeometry, BadOptionsThrow) {
    topo::Options opt;
    opt.seed = 0;
    EXPECT_THROW(topo::generate(opt), std::invalid_argument);
    opt.seed = 1;
    opt.sbs = 1;
    EXPECT_THROW(topo::generate(opt), std::invalid_argument);
    opt.sbs = 64;
    opt.hold_lo = 0;
    EXPECT_THROW(topo::generate(opt), std::invalid_argument);
    opt.hold_lo = 2;
    opt.token_delay_hi = opt.token_delay_lo - 1;
    EXPECT_THROW(topo::generate(opt), std::invalid_argument);
}

// --- the shape x size x seed property matrix -------------------------------

// Every generated spec must (a) round-trip byte-identically through the
// .stspec v1 writer/parser, (b) lint clean, and (c) discharge all five sva
// verification obligations statically (PROVEN — the cross-check replay is
// skipped here: it is O(sim) per spec and the st_topo CTest entries cover
// it on the acceptance geometry).
TEST(TopoMatrix, RoundTripLintVerifyAtEveryScale) {
    for (const topo::Shape shape :
         {topo::Shape::kMesh, topo::Shape::kTorus, topo::Shape::kStar,
          topo::Shape::kHierRing}) {
        for (const std::size_t sbs : {64u, 256u, 1024u}) {
            for (const std::uint64_t seed : {1ull, 42ull, 1337ull}) {
                SCOPED_TRACE(std::string(topo::shape_name(shape)) + " " +
                             std::to_string(sbs) + " seed " +
                             std::to_string(seed));
                topo::Options opt;
                opt.shape = shape;
                opt.sbs = sbs;
                opt.seed = seed;
                const auto doc = topo::generate(opt);
                EXPECT_EQ(doc.sbs.size(), sbs);

                // Byte-reproducible: same options, same bytes.
                const std::string text = sva::to_text(doc);
                EXPECT_EQ(text, sva::to_text(topo::generate(opt)));

                // Parser round trip: doc equality and byte re-serialization.
                const auto back = sva::parse_spec_text(text);
                EXPECT_EQ(back, doc);
                EXPECT_EQ(sva::to_text(back), text);

                const auto spec = sva::to_spec(doc);
                const auto report = lint::lint(spec);
                EXPECT_TRUE(report.ok()) << report.to_string();

                sva::VerifyOptions vo;
                vo.cross_check = false;
                const auto vr = sva::verify(spec, vo);
                EXPECT_TRUE(vr.clean()) << vr.summary();
            }
        }
    }
}

TEST(TopoMatrix, SeedChangesTheDraw) {
    topo::Options a;
    a.seed = 42;
    topo::Options b = a;
    b.seed = 43;
    EXPECT_NE(sva::to_text(topo::generate(a)), sva::to_text(topo::generate(b)));
}

// --- routed-traffic determinism at scale -----------------------------------

// The paper's §5 experiment on a generated 64-SB mesh: three joint delay
// perturbations must replay the golden traces exactly, and the sweep
// aggregates must be bit-identical at every worker count.
TEST(TopoDeterminism, Mesh64SweepMatchesAtEveryJobsValue) {
    topo::Options opt;
    opt.sbs = 64;
    opt.seed = 42;
    const auto spec = sva::to_spec(topo::generate(opt));
    constexpr std::uint64_t kCycles = 90;
    const auto run = [&spec](const sys::DelayConfig& cfg) {
        sys::Soc soc(sys::apply(spec, cfg));
        EXPECT_TRUE(soc.run_cycles(kCycles + 40, sim::ms(2000)));
        return soc.traces();
    };
    verify::DeterminismHarness<sys::DelayConfig> harness(
        verify::DeterminismHarness<sys::DelayConfig>::Runner(run),
        sys::DelayConfig::nominal(spec), kCycles);
    std::vector<sys::DelayConfig> sweep;
    for (std::uint64_t s = 1; s <= 3; ++s) {
        sweep.push_back(joint_perturbation(spec, opt.seed + s));
    }
    const auto r1 = harness.sweep(sweep, 1);
    EXPECT_TRUE(r1.all_match()) << (r1.examples.empty()
                                        ? std::string("no example")
                                        : r1.examples.front().locus);
    EXPECT_EQ(r1.runs, 3u);
    EXPECT_EQ(r1, harness.sweep(sweep, 2));
    EXPECT_EQ(r1, harness.sweep(sweep, 4));
}

// A perturbation outside the provisioning envelope (FIFO ripple stretched
// past the minimum token flight, so pushed data loses the race against the
// token that licenses its consumption) must diverge — and the streaming
// checker's cooperative early exit must cut the divergent simulation short
// relative to the same check with early exit disabled.
TEST(TopoDeterminism, EnvelopeViolationDivergesAndEarlyExits) {
    topo::Options opt;
    opt.sbs = 64;
    opt.seed = 42;
    const auto spec = sva::to_spec(topo::generate(opt));
    constexpr std::uint64_t kCycles = 90;

    auto bad = sys::DelayConfig::nominal(spec);
    for (auto& p : bad.fifo_pct) p = 800;  // ~8x ripple: outside the envelope

    std::uint64_t events = 0;
    const auto live = [&](const sys::DelayConfig& cfg,
                          verify::RunCapture& cap) {
        sys::Soc soc(sys::apply(spec, cfg), &cap);
        soc.run_cycles(kCycles + 40, sim::ms(2000));
        events = soc.scheduler().events_executed();
    };
    using Harness = verify::DeterminismHarness<sys::DelayConfig>;
    Harness streaming(Harness::LiveRunner(live),
                      sys::DelayConfig::nominal(spec), kCycles);
    Harness batch(Harness::LiveRunner(live), sys::DelayConfig::nominal(spec),
                  kCycles);
    batch.set_early_exit(false);

    const auto d_stream = streaming.check(bad);
    const std::uint64_t events_stream = events;
    const auto d_batch = batch.check(bad);
    const std::uint64_t events_batch = events;

    EXPECT_FALSE(d_stream.identical);
    // Early exit changes how long the run simulates, never what it reports.
    EXPECT_EQ(d_stream, d_batch);
    EXPECT_LT(events_stream, events_batch / 2)
        << "early exit should stop a 64-SB divergent run well before the "
           "horizon (stream "
        << events_stream << " vs full " << events_batch << ")";
}

// --- golden fixtures -------------------------------------------------------

// The checked-in fixtures must regenerate byte-identically from the library
// at the recorded options, and their recorded verdicts must hold: clean
// lint, 5/5 obligations proven, and the nominal golden-trace digest below.
// A digest change means generated traffic semantics moved — that is a
// breaking change to every recorded sweep, so it must be deliberate.
struct GoldenFixture {
    const char* file;
    topo::Shape shape;
    std::uint64_t digest;  ///< golden_digest(spec, 90)
};

TEST(TopoFixtures, GoldenSpecsRegenerateByteIdenticallyWithVerdictsOnRecord) {
    const std::filesystem::path dir = ST_TESTS_DATA_DIR;
    const GoldenFixture fixtures[] = {
        {"mesh_8x8.stspec", topo::Shape::kMesh, 6717148561461495346ull},
        {"star_64.stspec", topo::Shape::kStar, 7068557603965434267ull},
    };
    for (const auto& f : fixtures) {
        SCOPED_TRACE(f.file);
        topo::Options opt;
        opt.shape = f.shape;
        opt.sbs = 64;
        opt.seed = 42;
        const std::string text = sva::to_text(topo::generate(opt));
        EXPECT_EQ(text, read_file(dir / f.file));

        const auto spec = sva::to_spec(sva::parse_spec_text(text));
        const auto report = lint::lint(spec);
        EXPECT_TRUE(report.ok()) << report.to_string();
        const auto vr = sva::verify(spec);
        EXPECT_TRUE(vr.clean()) << vr.summary();
        EXPECT_EQ(golden_digest(spec, 90), f.digest);
    }
}

// The ring-of-rings stress fixtures predate src/topo and are byte-frozen:
// the unified topo:: library must keep reproducing them exactly (they are
// also reachable as shape=hring through the near-square cluster split).
TEST(TopoFixtures, RingOfRingsRegeneratesByteIdentically) {
    const std::filesystem::path dir = ST_TESTS_DATA_DIR;
    for (const std::size_t n : {8u, 16u}) {
        SCOPED_TRACE(n);
        topo::RingOfRingsOptions opt;
        opt.clusters = n;
        opt.members = n;
        const std::string expected =
            sva::to_text(topo::make_ring_of_rings(opt));
        const auto path =
            dir / ("ring_of_rings_" + std::to_string(n * n) + ".stspec");
        EXPECT_EQ(read_file(path), expected);

        topo::Options gen;
        gen.shape = topo::Shape::kHierRing;
        gen.sbs = n * n;
        gen.seed = 0xC0FFEE;
        EXPECT_EQ(sva::to_text(topo::generate(gen)), expected);
    }
}

TEST(TopoFixtures, RingOfRings64IsProvenClean) {
    topo::RingOfRingsOptions opt;
    opt.clusters = 8;
    opt.members = 8;
    const auto spec = sva::to_spec(topo::make_ring_of_rings(opt));
    EXPECT_TRUE(lint::lint(spec).ok());
    const auto vr = sva::verify(spec);
    EXPECT_TRUE(vr.clean()) << vr.summary();
}

// --- NocKernel -------------------------------------------------------------

wl::NocKernel::Config mesh_config(std::uint8_t x, std::uint8_t y) {
    wl::NocKernel::Config cfg;
    cfg.mode = wl::NocKernel::Config::Mode::kMesh;
    cfg.x = x;
    cfg.y = y;
    cfg.width = 4;
    cfg.height = 4;
    cfg.nodes = 16;
    cfg.seed = 7;
    // Interior tile: east, west, north, south — the generator's port order.
    cfg.ports = {{static_cast<std::uint8_t>(x + 1), y},
                 {static_cast<std::uint8_t>(x - 1), y},
                 {x, static_cast<std::uint8_t>(y - 1)},
                 {x, static_cast<std::uint8_t>(y + 1)}};
    return cfg;
}

TEST(NocKernel, MeshRoutesDimensionOrdered) {
    const wl::NocKernel k(mesh_config(1, 1));
    // X first: (3,3) from (1,1) goes east even though south also helps.
    EXPECT_EQ(k.route(wl::Packet::make(3, 3, 0)), 0u);
    EXPECT_EQ(k.route(wl::Packet::make(0, 3, 0)), 1u);  // west
    EXPECT_EQ(k.route(wl::Packet::make(1, 0, 0)), 2u);  // x done: north
    EXPECT_EQ(k.route(wl::Packet::make(1, 3, 0)), 3u);  // x done: south
}

TEST(NocKernel, TorusRoutesTheShortWayRound) {
    auto cfg = mesh_config(0, 0);
    cfg.mode = wl::NocKernel::Config::Mode::kTorus;
    cfg.ports = {{1, 0}, {3, 0}, {0, 3}, {0, 1}};  // east wraps to x=3
    const wl::NocKernel k(cfg);
    // Dest (3,0): wrapping west (1 hop) beats going east (3 hops).
    EXPECT_EQ(k.route(wl::Packet::make(3, 0, 0)), 1u);
    // Dest (0,3): wrapping north (1 hop) beats going south (3 hops).
    EXPECT_EQ(k.route(wl::Packet::make(0, 3, 0)), 2u);
    EXPECT_EQ(k.route(wl::Packet::make(1, 0, 0)), 0u);  // adjacent: east
}

TEST(NocKernel, StarHubMatchesExactlyAndLeafUplinks) {
    wl::NocKernel::Config hub;
    hub.mode = wl::NocKernel::Config::Mode::kStar;
    hub.nodes = 4;
    hub.seed = 7;
    for (std::size_t i = 1; i < 4; ++i) {
        hub.ports.push_back(wl::NocKernel::node_coords(
            wl::NocKernel::Config::Mode::kStar, wl::NocKernel::kStarRow, i));
    }
    const wl::NocKernel k(hub);
    for (std::size_t i = 1; i < 4; ++i) {
        const auto c = wl::NocKernel::node_coords(
            wl::NocKernel::Config::Mode::kStar, wl::NocKernel::kStarRow, i);
        EXPECT_EQ(k.route(wl::Packet::make(c.x, c.y, 0)), i - 1);
    }

    wl::NocKernel::Config leaf;
    leaf.mode = wl::NocKernel::Config::Mode::kStar;
    leaf.nodes = 4;
    leaf.seed = 7;
    const auto self = wl::NocKernel::node_coords(
        wl::NocKernel::Config::Mode::kStar, wl::NocKernel::kStarRow, 2);
    leaf.x = self.x;
    leaf.y = self.y;
    leaf.ports = {{0, 0}};  // uplink
    const wl::NocKernel l(leaf);
    // Any non-self destination — even another leaf the hub is farther
    // from — goes up the single spoke.
    const auto peer = wl::NocKernel::node_coords(
        wl::NocKernel::Config::Mode::kStar, wl::NocKernel::kStarRow, 3);
    EXPECT_EQ(l.route(wl::Packet::make(peer.x, peer.y, 0)), 0u);
    EXPECT_EQ(l.route(wl::Packet::make(0, 0, 0)), 0u);
}

TEST(NocKernel, ScanImageRoundTripsQueues) {
    auto k = wl::NocKernel(mesh_config(1, 1));
    // 6 registers, port count, then per-port [len, words...].
    const std::vector<std::uint64_t> image = {
        /*rng*/ 99, /*phase*/ 5, /*inj*/ 2, /*fwd*/ 1, /*del*/ 3,
        /*crc*/ 0xabcd,
        /*ports*/ 4,
        /*q0*/ 2, 0x1111, 0x2222,
        /*q1*/ 0,
        /*q2*/ 1, 0x3333,
        /*q3*/ 0};
    k.load_state(image);
    EXPECT_EQ(k.scan_state(), image);
    EXPECT_EQ(k.queued(), 3u);

    // A register-prefix image updates the registers and keeps the queues.
    k.load_state({100, 6});
    auto after = k.scan_state();
    EXPECT_EQ(after[0], 100u);
    EXPECT_EQ(after[1], 6u);
    EXPECT_EQ(std::vector<std::uint64_t>(after.begin() + 6, after.end()),
              std::vector<std::uint64_t>(image.begin() + 6, image.end()));
}

TEST(NocKernel, MalformedScanImagesThrow) {
    auto k = wl::NocKernel(mesh_config(1, 1));
    // Wrong port count.
    EXPECT_THROW(k.load_state({0, 0, 0, 0, 0, 0, 3, 0, 0, 0}),
                 std::invalid_argument);
    // Truncated queue payload.
    EXPECT_THROW(k.load_state({0, 0, 0, 0, 0, 0, 4, 5, 0x1}),
                 std::invalid_argument);
    // Trailing garbage past the last queue.
    EXPECT_THROW(k.load_state({0, 0, 0, 0, 0, 0, 4, 0, 0, 0, 0, 7}),
                 std::invalid_argument);
    // Constructor validation.
    auto cfg = mesh_config(1, 1);
    cfg.seed = 0;
    EXPECT_THROW(wl::NocKernel{cfg}, std::invalid_argument);
}

}  // namespace
