#include <gtest/gtest.h>

#include <vector>

#include "system/delay_config.hpp"
#include "system/soc.hpp"
#include "system/testbenches.hpp"
#include "verify/io_trace.hpp"

namespace st::sys {
namespace {

/// Software golden model of the traffic streams: the exact LFSR sequence a
/// TrafficKernel with the given seed emits.
std::vector<Word> lfsr_stream(std::uint64_t seed, std::size_t n) {
    std::vector<Word> out;
    out.reserve(n);
    std::uint64_t s = seed;
    for (std::size_t i = 0; i < n; ++i) {
        const bool lsb = s & 1;
        s >>= 1;
        if (lsb) s ^= 0xd800000000000000ull;
        out.push_back(s);
    }
    return out;
}

std::vector<Word> masked(std::vector<Word> v, unsigned bits) {
    for (auto& w : v) w = mask_word(w, bits);
    return v;
}

std::vector<Word> in_words(const verify::IoTrace& t) {
    std::vector<Word> out;
    for (const auto& e : t.events) {
        if (e.dir == verify::IoEvent::Dir::kIn) out.push_back(e.word);
    }
    return out;
}

std::vector<Word> out_words(const verify::IoTrace& t) {
    std::vector<Word> out;
    for (const auto& e : t.events) {
        if (e.dir == verify::IoEvent::Dir::kOut) out.push_back(e.word);
    }
    return out;
}

/// End-to-end content check against the analytic golden model: everything
/// beta consumed is exactly the prefix of alpha's LFSR stream (no loss, no
/// duplication, no reordering, no corruption) — and vice versa.
TEST(GoldenContent, PairStreamsAreExactLfsrPrefixes) {
    PairOptions opt;  // seeds 0xace1 / 0xbeef
    Soc soc(make_pair_spec(opt));
    soc.run_cycles(500, sim::ms(4));
    const auto traces = soc.traces();

    const auto alpha_sent = out_words(traces.at("alpha"));
    const auto beta_got = in_words(traces.at("beta"));
    ASSERT_GT(beta_got.size(), 100u);
    const auto golden_a = lfsr_stream(opt.seed_a, alpha_sent.size());
    EXPECT_EQ(alpha_sent, golden_a);
    // The channel carries 32 data bits: received words are the masked
    // prefix of the sent stream.
    const auto golden_a32 = masked(golden_a, opt.data_bits);
    EXPECT_TRUE(std::equal(beta_got.begin(), beta_got.end(),
                           golden_a32.begin()));

    const auto beta_sent = out_words(traces.at("beta"));
    const auto alpha_got = in_words(traces.at("alpha"));
    const auto golden_b = lfsr_stream(opt.seed_b, beta_sent.size());
    EXPECT_EQ(beta_sent, golden_b);
    const auto golden_b32 = masked(golden_b, opt.data_bits);
    EXPECT_TRUE(std::equal(alpha_got.begin(), alpha_got.end(),
                           golden_b32.begin()));
}

/// The same content property at every perturbation corner: corners change
/// nothing — not even transiently — about the data stream content.
TEST(GoldenContent, ContentSurvivesPerturbationCorners) {
    const auto spec = make_pair_spec();
    for (const unsigned pct : {50u, 200u}) {
        auto cfg = DelayConfig::nominal(spec);
        cfg.fifo_pct.assign(cfg.fifo_pct.size(), pct);
        Soc soc(apply(spec, cfg));
        soc.run_cycles(300, sim::ms(4));
        const auto beta_got = in_words(soc.traces().at("beta"));
        const auto golden = masked(lfsr_stream(0xace1u, beta_got.size()), 32);
        EXPECT_EQ(beta_got, golden) << pct << "%";
    }
}

/// Triangle channel conservation: every word a receiver consumed on a
/// channel is exactly the prefix of what the sender pushed on that channel
/// — no loss, duplication, reordering or corruption anywhere in the mesh of
/// six FIFOs, despite heavy clock stalling.
TEST(GoldenContent, TriangleChannelsConserveStreams) {
    Soc soc(make_triangle_spec());
    soc.run_cycles(400, sim::ms(4));
    const auto traces = soc.traces();
    const auto& spec = soc.spec();

    // Recover each channel's (sender out-port, receiver in-port) indices by
    // replaying the elaboration order.
    std::vector<std::size_t> out_count(3, 0);
    std::vector<std::size_t> in_count(3, 0);
    for (const auto& c : spec.channels) {
        const std::size_t out_port = out_count[c.from_sb]++;
        const std::size_t in_port = in_count[c.to_sb]++;

        std::vector<Word> sent;
        for (const auto& e : traces.at(spec.sbs[c.from_sb].name).events) {
            if (e.dir == verify::IoEvent::Dir::kOut && e.port == out_port) {
                sent.push_back(e.word);
            }
        }
        std::vector<Word> got;
        for (const auto& e : traces.at(spec.sbs[c.to_sb].name).events) {
            if (e.dir == verify::IoEvent::Dir::kIn && e.port == in_port) {
                got.push_back(e.word);
            }
        }
        ASSERT_GT(got.size(), 20u) << c.name;
        ASSERT_LE(got.size(), sent.size()) << c.name;
        const auto sent32 = masked(sent, c.fifo.data_bits);
        EXPECT_TRUE(std::equal(got.begin(), got.end(), sent32.begin()))
            << c.name;
        // In flight at most: FIFO depth + latch + pending.
        EXPECT_LE(sent.size() - got.size(), c.fifo.depth + 2) << c.name;
    }
}

}  // namespace
}  // namespace st::sys
