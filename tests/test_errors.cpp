#include <gtest/gtest.h>

#include <memory>

#include "async/self_timed_fifo.hpp"
#include "sb/kernels/sources.hpp"
#include "synchro/token_ring.hpp"
#include "synchro/wrapper.hpp"
#include "system/soc.hpp"
#include "system/testbenches.hpp"
#include "tap/data_registers.hpp"
#include "tap/tap_controller.hpp"
#include "workload/traffic.hpp"

namespace st {
namespace {

std::unique_ptr<sb::Kernel> any_kernel() {
    return std::make_unique<wl::TrafficKernel>(1);
}

// ---------------------------------------------------------------------------
// Soc specification validation
// ---------------------------------------------------------------------------

TEST(SpecValidation, MissingKernelFactoryRejected) {
    sys::SocSpec spec = sys::make_pair_spec();
    spec.sbs[0].make_kernel = nullptr;
    EXPECT_THROW(sys::Soc{spec}, std::invalid_argument);
}

TEST(SpecValidation, RingEndpointErrorsRejected) {
    {
        auto spec = sys::make_pair_spec();
        spec.rings[0].sb_b = 0;  // self-loop
        EXPECT_THROW(sys::Soc{spec}, std::invalid_argument);
    }
    {
        auto spec = sys::make_pair_spec();
        spec.rings[0].sb_b = 7;  // out of range
        EXPECT_THROW(sys::Soc{spec}, std::invalid_argument);
    }
    {
        auto spec = sys::make_pair_spec();
        spec.rings[0].node_b.initial_holder = true;  // two holders
        EXPECT_THROW(sys::Soc{spec}, std::invalid_argument);
    }
    {
        auto spec = sys::make_pair_spec();
        spec.rings[0].node_a.initial_holder = false;  // no holder
        EXPECT_THROW(sys::Soc{spec}, std::invalid_argument);
    }
}

TEST(SpecValidation, ChannelErrorsRejected) {
    {
        auto spec = sys::make_pair_spec();
        spec.channels[0].ring = 5;
        EXPECT_THROW(sys::Soc{spec}, std::invalid_argument);
    }
    {
        sys::SocSpec spec = sys::make_triangle_spec();
        spec.channels[0].to_sb = 2;  // ring 0 joins SBs 0 and 1 only
        EXPECT_THROW(sys::Soc{spec}, std::invalid_argument);
    }
}

TEST(SpecValidation, MeshAndChainGuards) {
    sys::MeshOptions mesh;
    mesh.width = 0;
    EXPECT_THROW(sys::make_mesh_spec(mesh), std::invalid_argument);
    sys::ChainOptions chain;
    chain.length = 1;
    EXPECT_THROW(sys::make_chain_spec(chain), std::invalid_argument);
}

TEST(SocMethods, RingNodeLookupValidation) {
    sys::Soc soc(sys::make_pair_spec());
    EXPECT_NO_THROW(soc.ring_node(0, 0));
    EXPECT_NO_THROW(soc.ring_node(0, 1));
    EXPECT_THROW(soc.ring_node(0, 2), std::invalid_argument);
    EXPECT_THROW(soc.ring_node(3, 0), std::out_of_range);
}

// ---------------------------------------------------------------------------
// Wrapper lifecycle misuse
// ---------------------------------------------------------------------------

TEST(WrapperLifecycle, OperationsAfterFinalizeRejected) {
    sim::Scheduler sched;
    clk::StoppableClock::Params cp;
    cp.base_period = 1000;
    core::SbWrapper w(sched, "w", cp, any_kernel());
    core::TokenNode::Params np;
    np.initial_holder = true;
    auto& node = w.add_node(np);
    achan::SelfTimedFifo fifo(sched, "f", {});
    w.attach_input(node, fifo);
    w.finalize();
    EXPECT_THROW(w.add_node(np), std::logic_error);
    EXPECT_THROW(w.attach_input(node, fifo), std::logic_error);
    EXPECT_THROW(w.attach_output(node, fifo, {}), std::logic_error);
    EXPECT_THROW(w.finalize(), std::logic_error);
}

TEST(WrapperLifecycle, StartBeforeFinalizeRejected) {
    sim::Scheduler sched;
    clk::StoppableClock::Params cp;
    cp.base_period = 1000;
    core::SbWrapper w(sched, "w", cp, any_kernel());
    EXPECT_THROW(w.start(), std::logic_error);
}

TEST(TokenRingLifecycle, StructuralErrorsRejected) {
    sim::Scheduler sched;
    core::TokenRing ring(sched, "r");
    EXPECT_THROW(ring.add_node(nullptr, 100), std::invalid_argument);
    core::TokenNode::Params np;
    np.initial_holder = true;
    core::TokenNode solo("solo", np);
    ring.add_node(&solo, 100);
    EXPECT_THROW(ring.finalize(), std::logic_error);  // needs >= 2
    core::TokenNode peer("peer", core::TokenNode::Params{});
    ring.add_node(&peer, 100);
    ring.finalize();
    EXPECT_NO_THROW(ring.finalize());  // idempotent
    EXPECT_THROW(ring.add_node(&peer, 100), std::logic_error);
}

// ---------------------------------------------------------------------------
// FIFO misuse
// ---------------------------------------------------------------------------

TEST(FifoMisuse, PreloadAndPopGuards) {
    sim::Scheduler sched;
    achan::SelfTimedFifo fifo(sched, "f", {});
    EXPECT_THROW(fifo.pop_head(), std::logic_error);  // empty
    EXPECT_THROW(fifo.preload(std::vector<Word>(99, 0)),
                 std::invalid_argument);  // exceeds depth
    fifo.preload({1, 2});
    EXPECT_THROW(fifo.preload({3}), std::logic_error);  // already used
    EXPECT_EQ(fifo.pop_head(), 1u);
    EXPECT_EQ(fifo.occupancy(), 1u);
}

TEST(FifoMisuse, TailOverrunDetected) {
    sim::Scheduler sched;
    achan::SelfTimedFifo::Params p;
    p.depth = 1;
    achan::SelfTimedFifo fifo(sched, "f", p);
    fifo.accept(1);
    EXPECT_THROW(fifo.accept(2), std::logic_error);
}

// ---------------------------------------------------------------------------
// TAP register validation
// ---------------------------------------------------------------------------

TEST(TapValidation, RegisterAndControllerGuards) {
    EXPECT_THROW(tap::HookRegister(0, nullptr, nullptr),
                 std::invalid_argument);
    EXPECT_THROW(tap::HookRegister(65, nullptr, nullptr),
                 std::invalid_argument);
    EXPECT_THROW(tap::TapController("t", 1, 0), std::invalid_argument);
    tap::TapController t("t", 8, 0xabc);
    EXPECT_THROW(t.add_instruction(0x9, nullptr, "X"), std::invalid_argument);
}

TEST(TapValidation, TrstForcesReset) {
    tap::TapController t("t", 8, 0xabc);
    // Walk somewhere.
    t.set_tms(false);
    t.commit(0);
    t.set_tms(true);
    t.commit(1);
    ASSERT_NE(t.state(), tap::TapState::kTestLogicReset);
    t.trst();
    EXPECT_EQ(t.state(), tap::TapState::kTestLogicReset);
    EXPECT_EQ(t.current_mnemonic(), "IDCODE");
}

// ---------------------------------------------------------------------------
// Kernel misuse
// ---------------------------------------------------------------------------

TEST(KernelValidation, LoadStateGuards) {
    sb::LfsrSource lfsr(1);
    EXPECT_THROW(lfsr.load_state(std::vector<std::uint64_t>(5, 0)),
                 std::invalid_argument);
    wl::TrafficKernel traffic(1);
    EXPECT_THROW(traffic.load_state(std::vector<std::uint64_t>(9, 0)),
                 std::invalid_argument);
}

}  // namespace
}  // namespace st
