#include <gtest/gtest.h>

#include "system/delay_config.hpp"
#include "system/invariant_monitor.hpp"
#include "system/soc.hpp"
#include "system/testbenches.hpp"
#include "verify/io_trace.hpp"
#include "workload/traffic.hpp"

namespace st::sys {
namespace {

TEST(TokenBus, ElaboratesWithOneMultiRing) {
    BusOptions opt;
    opt.size = 4;
    Soc soc(make_bus_spec(opt));
    EXPECT_EQ(soc.num_sbs(), 4u);
    EXPECT_EQ(soc.num_rings(), 0u);
    EXPECT_EQ(soc.num_multi_rings(), 1u);
    EXPECT_EQ(soc.num_channels(), 4u);
    EXPECT_EQ(soc.multi_ring(0).size(), 4u);
}

TEST(TokenBus, TokenCirculatesAndEveryNodeCommunicates) {
    Soc soc(make_bus_spec());
    ASSERT_TRUE(soc.run_cycles(800, sim::ms(10)));
    EXPECT_FALSE(soc.deadlocked());
    EXPECT_GT(soc.multi_ring(0).passes(), 20u);
    for (std::size_t i = 0; i < soc.num_sbs(); ++i) {
        const auto& k = dynamic_cast<const wl::TrafficKernel&>(
            soc.wrapper(i).block().kernel());
        EXPECT_GT(k.words_emitted(), 20u) << i;
        EXPECT_GT(k.words_consumed(), 20u) << i;
    }
}

TEST(TokenBus, BusArbitrationInvariantsHold) {
    Soc soc(make_bus_spec());
    InvariantMonitor mon(soc);
    soc.run_cycles(500, sim::ms(10));
    EXPECT_TRUE(mon.violations().empty()) << mon.violations().front();
}

TEST(TokenBus, TimingAuditCoversMultiRingChannels) {
    Soc soc(make_bus_spec());
    soc.run_cycles(50, sim::ms(2));
    const auto report = soc.audit_timing();
    EXPECT_TRUE(report.all_pass()) << report.summary();
    EXPECT_EQ(report.constraints.size(), 4u * 5u);  // 5 constraints/channel
}

TEST(TokenBus, DeterministicUnderPerturbation) {
    const auto spec = make_bus_spec();
    const auto run = [&](const DelayConfig& cfg) {
        Soc soc(apply(spec, cfg));
        soc.run_cycles(150, sim::ms(8));
        return verify::truncated(soc.traces(), 100);
    };
    const auto nominal = run(DelayConfig::nominal(spec));
    for (const unsigned pct : {50u, 200u}) {
        auto cfg = DelayConfig::nominal(spec);
        cfg.fifo_pct.assign(cfg.fifo_pct.size(), pct);
        const auto diff = verify::diff_traces(nominal, run(cfg));
        EXPECT_TRUE(diff.identical) << pct << "%: " << diff.first_mismatch;
    }
}

TEST(TokenBus, ScalesToEightStations) {
    BusOptions opt;
    opt.size = 8;
    Soc soc(make_bus_spec(opt));
    ASSERT_TRUE(soc.run_cycles(900, sim::ms(40)));
    EXPECT_GT(soc.multi_ring(0).passes(), 8u);
    EXPECT_FALSE(soc.deadlocked());
}

TEST(TokenBus, SpecValidationErrors) {
    BusOptions opt;
    opt.size = 1;
    EXPECT_THROW(make_bus_spec(opt), std::invalid_argument);

    auto spec = make_bus_spec();
    spec.channels[0].to_sb = 99;  // not a member
    EXPECT_THROW(Soc{spec}, std::invalid_argument);

    auto two_holders = make_bus_spec();
    two_holders.multi_rings[0].members[1].node.initial_holder = true;
    EXPECT_THROW(Soc{two_holders}, std::invalid_argument);
}

TEST(TokenBus, MultiRingNodeLookup) {
    Soc soc(make_bus_spec());
    EXPECT_NO_THROW(soc.multi_ring_node(0, 0));
    EXPECT_NO_THROW(soc.multi_ring_node(0, 3));
    EXPECT_THROW(soc.multi_ring_node(0, 9), std::invalid_argument);
}

}  // namespace
}  // namespace st::sys
