// Unit tests for the st::runner parallel sweep engine and its determinism
// contract — the reduction runs on the calling thread in strictly increasing
// case index order, so any aggregate built through it is bit-identical at
// every jobs value. The heavyweight consumers (fuzz campaigns, determinism
// sweeps, the methodology matrix) are each checked jobs=1 vs jobs=N here.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "fuzz/campaign.hpp"
#include "runner/runner.hpp"
#include "sim/random.hpp"
#include "system/delay_config.hpp"
#include "system/soc.hpp"
#include "system/testbenches.hpp"
#include "verify/determinism.hpp"

namespace {

using namespace st;

// --- core engine ---

TEST(Runner, ResolveJobs) {
    EXPECT_EQ(runner::resolve_jobs(1), 1u);
    EXPECT_EQ(runner::resolve_jobs(3), 3u);
    EXPECT_EQ(runner::resolve_jobs(0), runner::hardware_jobs());
    EXPECT_GE(runner::hardware_jobs(), 1u);
}

TEST(Runner, ReducesInIndexOrderAtEveryJobsValue) {
    for (const std::size_t jobs : {1u, 2u, 4u, 8u}) {
        std::vector<std::size_t> order;
        runner::sweep(
            64, jobs, [](std::size_t i) { return i * i; },
            [&](std::size_t i, std::size_t&& sq) {
                EXPECT_EQ(sq, i * i);
                order.push_back(i);
            });
        ASSERT_EQ(order.size(), 64u) << "jobs=" << jobs;
        for (std::size_t i = 0; i < order.size(); ++i) {
            EXPECT_EQ(order[i], i) << "jobs=" << jobs;
        }
    }
}

TEST(Runner, SerialAndParallelAggregatesIdentical) {
    const auto run = [](std::size_t jobs) {
        std::uint64_t acc = 0;
        runner::sweep(
            100, jobs, [](std::size_t i) { return (i * 2654435761u) % 1000; },
            // Order-sensitive on purpose: a reduction that mixes indices
            // out of order produces a different value.
            [&](std::size_t i, std::uint64_t&& v) { acc = acc * 31 + v + i; });
        return acc;
    };
    const std::uint64_t serial = run(1);
    EXPECT_EQ(run(2), serial);
    EXPECT_EQ(run(8), serial);
}

TEST(Runner, ReductionRunsOnCallingThread) {
    const auto caller = std::this_thread::get_id();
    runner::sweep(
        16, 4, [](std::size_t i) { return i; },
        [&](std::size_t, std::size_t&&) {
            EXPECT_EQ(std::this_thread::get_id(), caller);
        });
}

TEST(Runner, SupportsMoveOnlyResults) {
    std::size_t sum = 0;
    runner::sweep(
        8, 4, [](std::size_t i) { return std::make_unique<std::size_t>(i); },
        [&](std::size_t, std::unique_ptr<std::size_t>&& p) { sum += *p; });
    EXPECT_EQ(sum, 28u);
}

TEST(Runner, EmptySweepInvokesNothing) {
    bool touched = false;
    runner::sweep(
        0, 4,
        [&](std::size_t) {
            touched = true;
            return 0;
        },
        [&](std::size_t, int&&) { touched = true; });
    EXPECT_FALSE(touched);
}

TEST(Runner, WorkExceptionPropagatesToCaller) {
    EXPECT_THROW(
        runner::sweep(
            32, 4,
            [](std::size_t i) {
                if (i == 17) throw std::runtime_error("boom at 17");
                return i;
            },
            [](std::size_t, std::size_t&&) {}),
        std::runtime_error);
}

TEST(Runner, ForEachVisitsEveryIndexExactlyOnce) {
    std::vector<std::atomic<int>> counts(10);
    runner::for_each(10, 4,
                     [&](std::size_t i) { counts[i].fetch_add(1); });
    for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

// --- fuzz campaign: summary and callback stream are jobs-invariant ---

fuzz::CampaignConfig pair_config() {
    fuzz::CampaignConfig cfg;
    cfg.spec_name = "pair";
    cfg.cycles = 100;
    return cfg;
}

TEST(RunnerCampaign, FaultFreeSummaryBitIdenticalAcrossJobs) {
    const fuzz::Campaign campaign(pair_config());
    const fuzz::CampaignSummary s1 = campaign.run(16, 11, {}, 1);
    const fuzz::CampaignSummary s8 = campaign.run(16, 11, {}, 8);
    EXPECT_EQ(s1.runs, 16u);
    EXPECT_TRUE(s1 == s8);
}

TEST(RunnerCampaign, FaultySummaryBitIdenticalAcrossJobs) {
    fuzz::CampaignConfig cfg = pair_config();
    cfg.classes = {fuzz::FaultClass::kTokenDropWire};
    const fuzz::Campaign campaign(cfg);
    const fuzz::CampaignSummary s1 = campaign.run(12, 7, {}, 1);
    const fuzz::CampaignSummary s8 = campaign.run(12, 7, {}, 8);
    EXPECT_EQ(s1.runs, 12u);
    EXPECT_TRUE(s1 == s8);
    // The retained failing cases must be the same cases in the same order.
    ASSERT_EQ(s1.failures.size(), s8.failures.size());
    for (std::size_t i = 0; i < s1.failures.size(); ++i) {
        EXPECT_TRUE(s1.failures[i].first == s8.failures[i].first);
        EXPECT_TRUE(s1.failures[i].second == s8.failures[i].second);
    }
}

TEST(RunnerCampaign, OnRunCallbackStreamIsJobsInvariant) {
    const fuzz::Campaign campaign(pair_config());
    const auto collect = [&](std::size_t jobs) {
        std::vector<std::pair<std::size_t, fuzz::RunReport>> events;
        campaign.run(
            10, 3,
            [&](std::size_t i, const fuzz::FuzzCase&,
                const fuzz::RunReport& r) { events.emplace_back(i, r); },
            jobs);
        return events;
    };
    const auto e1 = collect(1);
    const auto e4 = collect(4);
    ASSERT_EQ(e1.size(), 10u);
    ASSERT_EQ(e1.size(), e4.size());
    for (std::size_t i = 0; i < e1.size(); ++i) {
        EXPECT_EQ(e1[i].first, i);
        EXPECT_EQ(e4[i].first, i);
        EXPECT_TRUE(e1[i].second == e4[i].second);
    }
}

// --- determinism sweeps: SweepResult is jobs-invariant ---

TEST(RunnerSweep, DeterminismSweepResultJobsInvariant) {
    const sys::SocSpec spec = sys::make_pair_spec();
    const auto run = [&spec](const sys::DelayConfig& cfg) {
        sys::Soc soc(sys::apply(spec, cfg));
        soc.run_cycles(130, sim::ms(8));
        return soc.traces();
    };

    std::vector<sys::DelayConfig> perturbations;
    sim::Rng rng(42);
    const unsigned percents[4] = {50, 75, 150, 200};
    for (int p = 0; p < 12; ++p) {
        auto cfg = sys::DelayConfig::nominal(spec);
        for (std::size_t d = 0; d < cfg.dimensions(); ++d) {
            const bool is_clock = d >= cfg.dimensions() - cfg.clock_pct.size();
            const unsigned pct = percents[rng.next_below(4)];
            cfg.set(d, is_clock ? std::max(75u, pct) : pct);
        }
        perturbations.push_back(cfg);
    }

    verify::DeterminismHarness<sys::DelayConfig> h1(
        run, sys::DelayConfig::nominal(spec), 90);
    verify::DeterminismHarness<sys::DelayConfig> h4(
        run, sys::DelayConfig::nominal(spec), 90);
    const auto r1 = h1.sweep(perturbations, 1);
    const auto r4 = h4.sweep(perturbations, 4);

    EXPECT_EQ(r1.runs, 12u);
    EXPECT_EQ(r1.runs, r4.runs);
    EXPECT_EQ(r1.matches, r4.matches);
    EXPECT_EQ(r1.mismatches, r4.mismatches);
    EXPECT_EQ(r1.examples, r4.examples);
    // Paper §5: fault-free delay perturbation never diverges.
    EXPECT_TRUE(r1.all_match());
}

}  // namespace
