// Unit tests for the st::runner parallel sweep engine and its determinism
// contract — the reduction runs on the calling thread in strictly increasing
// case index order, so any aggregate built through it is bit-identical at
// every jobs value. The heavyweight consumers (fuzz campaigns, determinism
// sweeps, the methodology matrix) are each checked jobs=1 vs jobs=N here.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "fuzz/campaign.hpp"
#include "runner/runner.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"
#include "verify/trace_arena.hpp"
#include "system/delay_config.hpp"
#include "system/soc.hpp"
#include "system/testbenches.hpp"
#include "verify/determinism.hpp"

namespace {

using namespace st;

// --- core engine ---

TEST(Runner, ResolveJobs) {
    EXPECT_EQ(runner::resolve_jobs(1), 1u);
    EXPECT_EQ(runner::resolve_jobs(3), 3u);
    EXPECT_EQ(runner::resolve_jobs(0), runner::hardware_jobs());
    EXPECT_GE(runner::hardware_jobs(), 1u);
}

TEST(Runner, ReducesInIndexOrderAtEveryJobsValue) {
    for (const std::size_t jobs : {1u, 2u, 4u, 8u}) {
        std::vector<std::size_t> order;
        runner::sweep(
            64, jobs, [](std::size_t i) { return i * i; },
            [&](std::size_t i, std::size_t&& sq) {
                EXPECT_EQ(sq, i * i);
                order.push_back(i);
            });
        ASSERT_EQ(order.size(), 64u) << "jobs=" << jobs;
        for (std::size_t i = 0; i < order.size(); ++i) {
            EXPECT_EQ(order[i], i) << "jobs=" << jobs;
        }
    }
}

TEST(Runner, SerialAndParallelAggregatesIdentical) {
    const auto run = [](std::size_t jobs) {
        std::uint64_t acc = 0;
        runner::sweep(
            100, jobs, [](std::size_t i) { return (i * 2654435761u) % 1000; },
            // Order-sensitive on purpose: a reduction that mixes indices
            // out of order produces a different value.
            [&](std::size_t i, std::uint64_t&& v) { acc = acc * 31 + v + i; });
        return acc;
    };
    const std::uint64_t serial = run(1);
    EXPECT_EQ(run(2), serial);
    EXPECT_EQ(run(8), serial);
}

TEST(Runner, ReductionRunsOnCallingThread) {
    const auto caller = std::this_thread::get_id();
    runner::sweep(
        16, 4, [](std::size_t i) { return i; },
        [&](std::size_t, std::size_t&&) {
            EXPECT_EQ(std::this_thread::get_id(), caller);
        });
}

TEST(Runner, SupportsMoveOnlyResults) {
    std::size_t sum = 0;
    runner::sweep(
        8, 4, [](std::size_t i) { return std::make_unique<std::size_t>(i); },
        [&](std::size_t, std::unique_ptr<std::size_t>&& p) { sum += *p; });
    EXPECT_EQ(sum, 28u);
}

TEST(Runner, EmptySweepInvokesNothing) {
    bool touched = false;
    runner::sweep(
        0, 4,
        [&](std::size_t) {
            touched = true;
            return 0;
        },
        [&](std::size_t, int&&) { touched = true; });
    EXPECT_FALSE(touched);
}

TEST(Runner, WorkExceptionPropagatesToCaller) {
    EXPECT_THROW(
        runner::sweep(
            32, 4,
            [](std::size_t i) {
                if (i == 17) throw std::runtime_error("boom at 17");
                return i;
            },
            [](std::size_t, std::size_t&&) {}),
        std::runtime_error);
}

TEST(Runner, ForEachVisitsEveryIndexExactlyOnce) {
    std::vector<std::atomic<int>> counts(10);
    runner::for_each(10, 4,
                     [&](std::size_t i) { counts[i].fetch_add(1); });
    for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(Runner, PinnedTuningStillReducesInOrder) {
    // A tiny window forces the backpressure path: workers must park on
    // cv_space until the reducer frees slots, and the sweep must still
    // complete with an in-order reduction.
    for (const auto& [chunk, window] :
         std::vector<std::pair<std::size_t, std::size_t>>{
             {1, 1}, {1, 3}, {3, 3}, {5, 7}, {64, 64}}) {
        runner::Tuning tuning;
        tuning.chunk = chunk;
        tuning.window = window;
        std::vector<std::size_t> order;
        runner::sweep(
            97, 4, [](std::size_t i) { return i + 1; },
            [&](std::size_t i, std::size_t&& v) {
                EXPECT_EQ(v, i + 1);
                order.push_back(i);
            },
            tuning);
        ASSERT_EQ(order.size(), 97u) << "chunk=" << chunk;
        for (std::size_t i = 0; i < order.size(); ++i) {
            ASSERT_EQ(order[i], i) << "chunk=" << chunk;
        }
    }
}

TEST(Runner, ContextsAreReusedAcrossCases) {
    // Each worker gets exactly one context for the whole sweep; the
    // per-case work must never construct a new one.
    std::atomic<int> ctx_built{0};
    struct Ctx {
        std::atomic<int>* built;
        std::size_t cases = 0;
        explicit Ctx(std::atomic<int>* b) : built(b) { b->fetch_add(1); }
        Ctx(const Ctx&) = delete;
        Ctx& operator=(const Ctx&) = delete;
    };
    std::size_t total = 0;
    runner::sweep_ctx(
        200, 4, [&] { return Ctx(&ctx_built); },
        [](Ctx& ctx, std::size_t i) {
            ++ctx.cases;
            return i;
        },
        [&](std::size_t, std::size_t&&) { ++total; });
    EXPECT_EQ(total, 200u);
    EXPECT_LE(ctx_built.load(), 4);
    EXPECT_GE(ctx_built.load(), 1);
}

TEST(Runner, MakeCtxFailurePropagates) {
    EXPECT_THROW(
        runner::sweep_ctx(
            50, 4,
            []() -> int { throw std::runtime_error("no context"); },
            [](int&, std::size_t i) { return i; },
            [](std::size_t, std::size_t&&) {}),
        std::runtime_error);
}

TEST(Runner, WorkExceptionMidChunkPropagates) {
    runner::Tuning tuning;
    tuning.chunk = 8;
    EXPECT_THROW(
        runner::sweep(
            64, 3,
            [](std::size_t i) {
                if (i == 29) throw std::logic_error("mid-chunk");
                return i;
            },
            [](std::size_t, std::size_t&&) {}, tuning),
        std::logic_error);
}

// --- shards ---

TEST(RunnerShard, SelectionPartitionsIndices) {
    const std::uint64_t n = 103;
    for (const std::uint64_t count : {1u, 2u, 3u, 7u}) {
        std::uint64_t covered = 0;
        for (std::uint64_t idx = 0; idx < count; ++idx) {
            const runner::Shard s{idx, count};
            std::uint64_t mine = 0;
            for (std::uint64_t g = 0; g < n; ++g) mine += s.selects(g);
            EXPECT_EQ(mine, s.size_of(n)) << idx << "/" << count;
            covered += mine;
        }
        EXPECT_EQ(covered, n) << "count=" << count;
    }
}

TEST(RunnerShard, ParseShardAcceptsAndRejects) {
    const auto ok = runner::parse_shard("2/5");
    ASSERT_TRUE(ok.has_value());
    EXPECT_EQ(ok->index, 2u);
    EXPECT_EQ(ok->count, 5u);
    EXPECT_FALSE(ok->is_full());
    EXPECT_TRUE((runner::Shard{0, 1}).is_full());
    for (const char* bad : {"", "/", "3", "3/", "/4", "5/5", "6/4", "a/b",
                            "1/2x", "-1/2"}) {
        EXPECT_FALSE(runner::parse_shard(bad).has_value()) << bad;
    }
}

// --- fuzz campaign: summary and callback stream are jobs-invariant ---

fuzz::CampaignConfig pair_config() {
    fuzz::CampaignConfig cfg;
    cfg.spec_name = "pair";
    cfg.cycles = 100;
    return cfg;
}

TEST(RunnerCampaign, FaultFreeSummaryBitIdenticalAcrossJobs) {
    const fuzz::Campaign campaign(pair_config());
    const fuzz::CampaignSummary s1 = campaign.run(16, 11, {}, 1);
    const fuzz::CampaignSummary s8 = campaign.run(16, 11, {}, 8);
    EXPECT_EQ(s1.runs, 16u);
    EXPECT_TRUE(s1 == s8);
}

TEST(RunnerCampaign, FaultySummaryBitIdenticalAcrossJobs) {
    fuzz::CampaignConfig cfg = pair_config();
    cfg.classes = {fuzz::FaultClass::kTokenDropWire};
    const fuzz::Campaign campaign(cfg);
    const fuzz::CampaignSummary s1 = campaign.run(12, 7, {}, 1);
    const fuzz::CampaignSummary s8 = campaign.run(12, 7, {}, 8);
    EXPECT_EQ(s1.runs, 12u);
    EXPECT_TRUE(s1 == s8);
    // The retained failing cases must be the same cases in the same order.
    ASSERT_EQ(s1.failures.size(), s8.failures.size());
    for (std::size_t i = 0; i < s1.failures.size(); ++i) {
        EXPECT_EQ(s1.failures[i].index, s8.failures[i].index);
        EXPECT_TRUE(s1.failures[i].c == s8.failures[i].c);
        EXPECT_TRUE(s1.failures[i].report == s8.failures[i].report);
    }
}

TEST(RunnerCampaign, OnRunCallbackStreamIsJobsInvariant) {
    const fuzz::Campaign campaign(pair_config());
    const auto collect = [&](std::size_t jobs) {
        std::vector<std::pair<std::size_t, fuzz::RunReport>> events;
        campaign.run(
            10, 3,
            [&](std::size_t i, const fuzz::FuzzCase&,
                const fuzz::RunReport& r) { events.emplace_back(i, r); },
            jobs);
        return events;
    };
    const auto e1 = collect(1);
    const auto e4 = collect(4);
    ASSERT_EQ(e1.size(), 10u);
    ASSERT_EQ(e1.size(), e4.size());
    for (std::size_t i = 0; i < e1.size(); ++i) {
        EXPECT_EQ(e1[i].first, i);
        EXPECT_EQ(e4[i].first, i);
        EXPECT_TRUE(e1[i].second == e4[i].second);
    }
}

// --- determinism sweeps: SweepResult is jobs-invariant ---

TEST(RunnerSweep, DeterminismSweepResultJobsInvariant) {
    const sys::SocSpec spec = sys::make_pair_spec();
    const auto run = [&spec](const sys::DelayConfig& cfg) {
        sys::Soc soc(sys::apply(spec, cfg));
        soc.run_cycles(130, sim::ms(8));
        return soc.traces();
    };

    std::vector<sys::DelayConfig> perturbations;
    sim::Rng rng(42);
    const unsigned percents[4] = {50, 75, 150, 200};
    for (int p = 0; p < 12; ++p) {
        auto cfg = sys::DelayConfig::nominal(spec);
        for (std::size_t d = 0; d < cfg.dimensions(); ++d) {
            const bool is_clock = d >= cfg.dimensions() - cfg.clock_pct.size();
            const unsigned pct = percents[rng.next_below(4)];
            cfg.set(d, is_clock ? std::max(75u, pct) : pct);
        }
        perturbations.push_back(cfg);
    }

    verify::DeterminismHarness<sys::DelayConfig> h1(
        run, sys::DelayConfig::nominal(spec), 90);
    verify::DeterminismHarness<sys::DelayConfig> h4(
        run, sys::DelayConfig::nominal(spec), 90);
    const auto r1 = h1.sweep(perturbations, 1);
    const auto r4 = h4.sweep(perturbations, 4);

    EXPECT_EQ(r1.runs, 12u);
    EXPECT_EQ(r1.runs, r4.runs);
    EXPECT_EQ(r1.matches, r4.matches);
    EXPECT_EQ(r1.mismatches, r4.mismatches);
    EXPECT_EQ(r1.examples, r4.examples);
    // Paper §5: fault-free delay perturbation never diverges.
    EXPECT_TRUE(r1.all_match());
}

// --- memory: steady-state campaigns must not grow the pools ---

TEST(RunnerSoak, ArenaAndSlabPoolsFlatAcrossRepeatedCampaigns) {
    fuzz::CampaignConfig cfg;
    cfg.spec_name = "pair";
    cfg.cycles = 80;
    cfg.classes = {fuzz::FaultClass::kTokenDropWire};
    const fuzz::Campaign campaign(cfg);

    // Warm-up: let the thread-local trace arena and scheduler slab pool
    // reach their high-water marks (jobs=1 keeps all work on this thread).
    campaign.run(8, 3, {}, 1);
    campaign.run(8, 3, {}, 1);
    const std::size_t arena_hwm =
        verify::TraceArena::local().chunks_allocated();
    const std::size_t slabs_hwm = sim::Scheduler::tls_pooled_slabs();

    // Steady state: repeated same-shaped campaigns reuse pooled storage and
    // never allocate new chunks or slabs.
    for (int round = 0; round < 4; ++round) {
        campaign.run(8, 3, {}, 1);
        EXPECT_EQ(verify::TraceArena::local().chunks_allocated(), arena_hwm)
            << "round " << round;
        EXPECT_EQ(sim::Scheduler::tls_pooled_slabs(), slabs_hwm)
            << "round " << round;
    }
}

TEST(RunnerSoak, ArenaTrimReleasesIdleChunks) {
    verify::TraceArena arena;
    std::vector<verify::TraceArena::Chunk*> held;
    for (int i = 0; i < 8; ++i) held.push_back(arena.acquire());
    for (auto* c : held) arena.release(c);
    EXPECT_EQ(arena.chunks_allocated(), 8u);
    EXPECT_EQ(arena.chunks_free(), 8u);
    EXPECT_EQ(arena.bytes_retained(),
              8 * sizeof(verify::TraceArena::Chunk));
    EXPECT_EQ(arena.trim(3), 5u);
    EXPECT_EQ(arena.chunks_allocated(), 3u);
    EXPECT_EQ(arena.chunks_free(), 3u);
}

}  // namespace
