#include <gtest/gtest.h>

#include "clock/stoppable_clock.hpp"
#include "formal/ring_model.hpp"
#include "sim/scheduler.hpp"
#include "synchro/token_node.hpp"

namespace st::formal {
namespace {

TEST(RingModelProof, TunedConfigurationIsDeterministic) {
    RingModel::Config cfg;  // defaults: H=3, R=5, R0_b=4
    const auto r = RingModel(cfg).explore();
    EXPECT_TRUE(r.deterministic) << r.violation;
    EXPECT_TRUE(r.invariants_hold) << r.violation;
    EXPECT_GT(r.states_explored, 100u);
    // The canonical schedule is fully resolved for node A's early cycles.
    ASSERT_GE(r.schedule_a.size(), 4u);
    EXPECT_EQ(r.schedule_a[0], 1);
    EXPECT_EQ(r.schedule_a[1], 1);
    EXPECT_EQ(r.schedule_a[2], 1);  // H=3 enabled cycles
    EXPECT_EQ(r.schedule_a[3], 0);
}

/// The central theorem across a parameter grid: every (H, R) with the
/// provisioning invariant holds a unique cycle-indexed enable schedule over
/// *all* timing interleavings — including ones where tokens are arbitrarily
/// late or arbitrarily early.
class ProofSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {
};

TEST_P(ProofSweep, AllInterleavingsYieldOneSchedule) {
    const auto [h, extra] = GetParam();
    RingModel::Config cfg;
    cfg.hold_a = h;
    cfg.hold_b = h;
    cfg.recycle_a = h + extra;
    cfg.recycle_b = h + extra;
    cfg.initial_recycle_b = h + extra - 1;
    cfg.max_cycles = 20;
    const auto r = RingModel(cfg).explore();
    EXPECT_TRUE(r.deterministic) << r.violation;
    EXPECT_TRUE(r.invariants_hold) << r.violation;
}

INSTANTIATE_TEST_SUITE_P(
    HoldRecycleGrid, ProofSweep,
    ::testing::Combine(::testing::Values<std::uint32_t>(1, 2, 3, 5, 8),
                       ::testing::Values<std::uint32_t>(1, 2, 4, 8)));

TEST(RingModelProof, AsymmetricConfigurationsAlsoProve) {
    RingModel::Config cfg;
    cfg.hold_a = 2;
    cfg.recycle_a = 9;
    cfg.hold_b = 5;
    cfg.recycle_b = 3;
    cfg.initial_recycle_b = 7;
    cfg.max_cycles = 22;
    const auto r = RingModel(cfg).explore();
    EXPECT_TRUE(r.deterministic) << r.violation;
}

TEST(RingModelProof, ZeroInitialRecycleWaiter) {
    RingModel::Config cfg;
    cfg.initial_recycle_b = 0;  // waiter stalls at its first commit
    const auto r = RingModel(cfg).explore();
    EXPECT_TRUE(r.deterministic) << r.violation;
}

/// Cross-validation: the schedule the formal model proves unique must equal
/// the schedule the concrete TokenNode RTL model produces under one
/// particular timing (here: echo the token back after a fixed delay).
TEST(RingModelProof, CanonicalScheduleMatchesConcreteSimulation) {
    RingModel::Config cfg;
    cfg.hold_a = 3;
    cfg.recycle_a = 5;
    cfg.hold_b = 3;
    cfg.recycle_b = 5;
    cfg.initial_recycle_b = 4;
    cfg.max_cycles = 20;
    const auto proof = RingModel(cfg).explore();
    ASSERT_TRUE(proof.deterministic);

    // Concrete two-node simulation with real clocks and wire delays.
    sim::Scheduler sched;
    clk::StoppableClock::Params cp;
    cp.base_period = 1000;
    cp.restart_delay = 100;
    clk::StoppableClock clk_a(sched, "a", cp);
    cp.phase = 400;  // deliberately skewed
    clk::StoppableClock clk_b(sched, "b", cp);

    core::TokenNode::Params pa;
    pa.hold = cfg.hold_a;
    pa.recycle = cfg.recycle_a;
    pa.initial_holder = true;
    core::TokenNode node_a("a", pa);
    core::TokenNode::Params pb;
    pb.hold = cfg.hold_b;
    pb.recycle = cfg.recycle_b;
    pb.initial_holder = false;
    pb.initial_recycle = cfg.initial_recycle_b;
    core::TokenNode node_b("b", pb);

    // Wire the ring by hand; the delivery lambdas also perform the
    // wrapper's restart duty.
    node_a.set_pass_fn([&] {
        sched.schedule_after(700, [&] {
            node_b.token_arrive();
            if (node_b.clken()) clk_b.async_restart();
        });
    });
    node_b.set_pass_fn([&] {
        sched.schedule_after(700, [&] {
            node_a.token_arrive();
            if (node_a.clken()) clk_a.async_restart();
        });
    });

    std::vector<int> sched_a, sched_b;
    struct Rec final : clk::ClockSink {
        const core::TokenNode* n = nullptr;
        std::vector<int>* out = nullptr;
        void sample(std::uint64_t) override {
            out->push_back(n->sb_en() ? 1 : 0);
        }
        void commit(std::uint64_t) override {}
    } rec_a, rec_b;
    rec_a.n = &node_a;
    rec_a.out = &sched_a;
    rec_b.n = &node_b;
    rec_b.out = &sched_b;
    clk_a.add_sink(&node_a);
    clk_a.add_sink(&rec_a);
    clk_b.add_sink(&node_b);
    clk_b.add_sink(&rec_b);
    clk_a.set_enable_fn([&] { return node_a.clken(); });
    clk_b.set_enable_fn([&] { return node_b.clken(); });
    clk_a.start();
    clk_b.start();
    sched.run_until(sim::us(1));

    for (std::size_t i = 0; i < cfg.max_cycles && i < sched_a.size(); ++i) {
        if (proof.schedule_a[i] >= 0) {
            EXPECT_EQ(sched_a[i], proof.schedule_a[i]) << "A cycle " << i;
        }
    }
    for (std::size_t i = 0; i < cfg.max_cycles && i < sched_b.size(); ++i) {
        if (proof.schedule_b[i] >= 0) {
            EXPECT_EQ(sched_b[i], proof.schedule_b[i]) << "B cycle " << i;
        }
    }
}

}  // namespace
}  // namespace st::formal
