#include <gtest/gtest.h>

#include "verify/determinism.hpp"
#include "verify/io_trace.hpp"
#include "verify/timing_checker.hpp"

namespace st::verify {
namespace {

IoTrace make_trace(const std::string& name,
                   std::initializer_list<IoEvent> events) {
    IoTrace t;
    t.sb_name = name;
    t.events = events;
    return t;
}

TEST(IoTrace, FingerprintSensitiveToEveryField) {
    const IoEvent base{10, IoEvent::Dir::kIn, 0, 0xabc};
    const auto fp = [](IoEvent e) {
        IoTrace t;
        t.events = {e};
        return t.fingerprint();
    };
    IoEvent cycle = base;
    cycle.cycle = 11;
    IoEvent dir = base;
    dir.dir = IoEvent::Dir::kOut;
    IoEvent port = base;
    port.port = 1;
    IoEvent word = base;
    word.word = 0xabd;
    EXPECT_NE(fp(base), fp(cycle));
    EXPECT_NE(fp(base), fp(dir));
    EXPECT_NE(fp(base), fp(port));
    EXPECT_NE(fp(base), fp(word));
    EXPECT_EQ(fp(base), fp(base));
}

TEST(IoTrace, TruncationKeepsOnlyEarlyCycles) {
    const auto t = make_trace("sb", {{5, IoEvent::Dir::kIn, 0, 1},
                                     {99, IoEvent::Dir::kOut, 0, 2},
                                     {100, IoEvent::Dir::kIn, 0, 3},
                                     {250, IoEvent::Dir::kIn, 0, 4}});
    const auto cut = t.truncated(100);
    ASSERT_EQ(cut.events.size(), 2u);
    EXPECT_EQ(cut.events[1].cycle, 99u);
}

TEST(IoTrace, TruncationCutoffIsBinarySearchedOnSortedEvents) {
    // truncated() documents a cycle-sorted precondition (holds for every
    // captured trace: local cycle counters are monotone) and finds its
    // cutoff with std::partition_point. Pin the boundary semantics.
    const auto t = make_trace("sb", {{0, IoEvent::Dir::kIn, 0, 1},
                                     {1, IoEvent::Dir::kOut, 0, 2},
                                     {1, IoEvent::Dir::kIn, 1, 3},
                                     {7, IoEvent::Dir::kIn, 0, 4},
                                     {100, IoEvent::Dir::kIn, 0, 5},
                                     {120, IoEvent::Dir::kOut, 0, 6}});
    EXPECT_EQ(t.truncated(0).events.size(), 0u);    // empty window
    EXPECT_EQ(t.truncated(1).events.size(), 1u);    // cycle < 1
    EXPECT_EQ(t.truncated(2).events.size(), 3u);    // duplicate cycles kept
    EXPECT_EQ(t.truncated(100).events.size(), 4u);  // cycle == n excluded
    EXPECT_EQ(t.truncated(1000).events.size(), 6u);
    EXPECT_EQ(t.truncated(1000).sb_name, "sb");

    IoTrace empty;
    EXPECT_TRUE(empty.truncated(100).events.empty());
}

TEST(DiffTraces, FillsStructuredMismatchLocus) {
    TraceSet a;
    a.emplace("sb", make_trace("sb", {{1, IoEvent::Dir::kIn, 2, 7},
                                      {4, IoEvent::Dir::kIn, 2, 8}}));
    TraceSet value = a;
    value["sb"].events[1].word = 9;
    const auto d = diff_traces(a, value);
    ASSERT_FALSE(d.identical);
    EXPECT_EQ(d.locus.kind, MismatchLocus::Kind::kValue);
    EXPECT_EQ(d.locus.sb, "sb");
    EXPECT_EQ(d.locus.index, 1u);
    EXPECT_EQ(d.locus.cycle, 4u);
    EXPECT_EQ(d.locus.port, 2u);
    ASSERT_TRUE(d.locus.expected.has_value());
    ASSERT_TRUE(d.locus.actual.has_value());
    EXPECT_EQ(d.locus.expected->word, 8u);
    EXPECT_EQ(d.locus.actual->word, 9u);

    TraceSet shorter = a;
    shorter["sb"].events.pop_back();
    const auto ds = diff_traces(a, shorter);
    EXPECT_EQ(ds.locus.kind, MismatchLocus::Kind::kShortfall);
    EXPECT_EQ(ds.locus.index, 1u);

    TraceSet missing;
    const auto dm = diff_traces(a, missing);
    EXPECT_EQ(dm.locus.kind, MismatchLocus::Kind::kMissingSb);
    EXPECT_EQ(dm.locus.sb, "sb");

    EXPECT_FALSE(diff_traces(a, a).locus.valid());
}

TEST(DiffTraces, DetectsValueCycleAndLengthMismatches) {
    TraceSet a;
    a.emplace("sb", make_trace("sb", {{1, IoEvent::Dir::kIn, 0, 7},
                                      {2, IoEvent::Dir::kIn, 0, 8}}));
    TraceSet same = a;
    EXPECT_TRUE(diff_traces(a, same).identical);

    TraceSet value = a;
    value["sb"].events[1].word = 9;
    const auto d1 = diff_traces(a, value);
    EXPECT_FALSE(d1.identical);
    EXPECT_NE(d1.first_mismatch.find("event 1"), std::string::npos);

    TraceSet shifted = a;
    shifted["sb"].events[0].cycle = 3;
    EXPECT_FALSE(diff_traces(a, shifted).identical);

    TraceSet longer = a;
    longer["sb"].events.push_back({4, IoEvent::Dir::kOut, 0, 1});
    const auto d3 = diff_traces(a, longer);
    EXPECT_FALSE(d3.identical);
    EXPECT_NE(d3.first_mismatch.find("events"), std::string::npos);

    TraceSet missing;
    EXPECT_FALSE(diff_traces(a, missing).identical);
}

TEST(DeterminismHarness, CountsMatchesAndCollectsExamples) {
    // Runner returns traces that depend on the perturbation value parity.
    const auto runner = [](const int& p) {
        TraceSet t;
        t.emplace("sb",
                  make_trace("sb", {{static_cast<std::uint64_t>(p % 2),
                                     IoEvent::Dir::kIn, 0, 42}}));
        return t;
    };
    DeterminismHarness<int> harness(runner, /*nominal=*/0, /*n_cycles=*/100);
    const auto result = harness.sweep({2, 4, 1, 3, 6});
    EXPECT_EQ(result.runs, 5u);
    EXPECT_EQ(result.matches, 3u);
    EXPECT_EQ(result.mismatches, 2u);
    EXPECT_FALSE(result.all_match());
    // Both odd perturbations mismatch at the same locus; the example list
    // deduplicates, so one entry describes them all.
    EXPECT_EQ(result.examples.size(), 1u);

    DeterminismHarness<int> clean(runner, 0, 100);
    EXPECT_TRUE(clean.sweep({2, 4, 6}).all_match());
}

TEST(SweepResult, AddExampleDeduplicatesAndBounds) {
    SweepResult r;
    r.add_example(3, "sb0: event 3");
    r.add_example(9, "sb0: event 3");  // duplicate locus: ignored
    r.add_example(7, "sb1: event 7");
    ASSERT_EQ(r.examples.size(), 2u);
    EXPECT_EQ(r.examples[0].locus, "sb0: event 3");
    EXPECT_EQ(r.examples[0].index, 3u);  // first-seen index is kept
    EXPECT_EQ(r.examples[1].locus, "sb1: event 7");
    EXPECT_EQ(r.examples[1].index, 7u);

    // Fill to the cap with distinct loci; further entries are dropped even
    // if novel, so a pathological sweep can't balloon the result struct.
    for (std::size_t i = r.examples.size(); i < SweepResult::kMaxExamples;
         ++i) {
        r.add_example(100 + i, "locus " + std::to_string(i));
    }
    EXPECT_EQ(r.examples.size(), SweepResult::kMaxExamples);
    r.add_example(999, "one too many");
    EXPECT_EQ(r.examples.size(), SweepResult::kMaxExamples);
    for (const auto& e : r.examples) EXPECT_NE(e.locus, "one too many");
}

TEST(SweepResult, MergeSweepShardsReproducesSingleProcessRetention) {
    // Global mismatch sequence: indices 0..19, locus "L<i % 12>" — twelve
    // distinct loci, more than the cap, with duplicates across shards.
    const auto locus_of = [](std::uint64_t i) {
        return "L" + std::to_string(i % 12);
    };
    SweepResult single;
    std::vector<SweepResult> shards(3);
    for (std::uint64_t i = 0; i < 20; ++i) {
        single.runs += 1;
        single.mismatches += 1;
        single.add_example(i, locus_of(i));
        SweepResult& s = shards[i % 3];
        s.runs += 1;
        s.mismatches += 1;
        s.add_example(i, locus_of(i));
    }
    EXPECT_EQ(merge_sweep_shards(shards), single);
}

TEST(TimingChecker, SlackAndViolationAccounting) {
    TimingChecker checker;
    checker.require("fits", 80, 100);
    checker.require("exact", 100, 100);
    checker.require("breaks", 130, 100);
    const auto& r = checker.report();
    EXPECT_FALSE(r.all_pass());
    EXPECT_EQ(r.failures(), 1u);
    EXPECT_EQ(r.constraints[0].slack(), 20u);
    EXPECT_EQ(r.constraints[1].slack(), 0u);
    EXPECT_EQ(r.constraints[2].violation(), 30u);
    EXPECT_EQ(r.worst_slack(), 0u);
    EXPECT_NE(r.summary().find("FAIL breaks"), std::string::npos);
}

TEST(TimingChecker, EmptyReportPasses) {
    TimingChecker checker;
    EXPECT_TRUE(checker.report().all_pass());
    EXPECT_EQ(checker.report().worst_slack(), sim::kNever);
}

}  // namespace
}  // namespace st::verify
