#include <gtest/gtest.h>

#include <vector>

#include "clock/stoppable_clock.hpp"
#include "clock/tester_clock.hpp"
#include "sim/scheduler.hpp"

namespace st::clk {
namespace {

/// Records the two-phase protocol for inspection.
class ProbeSink final : public ClockSink {
  public:
    std::vector<std::uint64_t> samples;
    std::vector<std::uint64_t> commits;
    void sample(std::uint64_t c) override { samples.push_back(c); }
    void commit(std::uint64_t c) override { commits.push_back(c); }
};

StoppableClock::Params params(sim::Time period, sim::Time phase = 0) {
    StoppableClock::Params p;
    p.base_period = period;
    p.divider = 1;
    p.phase = phase;
    p.restart_delay = 50;
    return p;
}

TEST(StoppableClock, FreeRunsAtConfiguredPeriodAndPhase) {
    sim::Scheduler sched;
    StoppableClock clk(sched, "clk", params(1000, 250));
    ProbeSink sink;
    clk.add_sink(&sink);
    clk.start();
    sched.run_until(5000);
    // Edges at 250, 1250, 2250, 3250, 4250.
    EXPECT_EQ(clk.cycles(), 5u);
    EXPECT_EQ(sink.samples, (std::vector<std::uint64_t>{0, 1, 2, 3, 4}));
    EXPECT_EQ(sink.commits, sink.samples);
    EXPECT_FALSE(clk.stopped());
}

TEST(StoppableClock, SamplePhasePrecedesCommitAcrossSinks) {
    sim::Scheduler sched;
    StoppableClock clk(sched, "clk", params(100));
    // Sink B reads a value sink A updates in commit; with correct two-phase
    // semantics B's sample sees A's *previous* value.
    struct A final : ClockSink {
        int reg = 0;
        void sample(std::uint64_t) override {}
        void commit(std::uint64_t) override { ++reg; }
    } a;
    struct B final : ClockSink {
        const int* src = nullptr;
        std::vector<int> seen;
        void sample(std::uint64_t) override { seen.push_back(*src); }
        void commit(std::uint64_t) override {}
    } b;
    b.src = &a.reg;
    clk.add_sink(&a);
    clk.add_sink(&b);
    clk.start();
    sched.run_until(350);  // edges at 0, 100, 200, 300
    EXPECT_EQ(b.seen, (std::vector<int>{0, 1, 2, 3}));
}

TEST(StoppableClock, StopsSynchronouslyWhenEnableDeasserted) {
    sim::Scheduler sched;
    StoppableClock clk(sched, "clk", params(100));
    ProbeSink sink;
    clk.add_sink(&sink);
    bool enable = true;
    clk.set_enable_fn([&] { return enable; });
    clk.start();
    sched.run_until(250);  // edges 0,100,200
    EXPECT_EQ(clk.cycles(), 3u);
    enable = false;
    sched.run_until(1000);  // edge at 300 runs, then the clock stops
    EXPECT_EQ(clk.cycles(), 4u);
    EXPECT_TRUE(clk.stopped());
    EXPECT_TRUE(sched.quiescent());
    EXPECT_EQ(clk.stop_events(), 1u);
}

TEST(StoppableClock, AsyncRestartResumesWithRestartDelay) {
    sim::Scheduler sched;
    StoppableClock clk(sched, "clk", params(100));
    bool enable = false;
    clk.set_enable_fn([&] { return enable; });
    clk.start();
    sched.run_until(50);  // edge 0 at t=0, immediately stops
    ASSERT_TRUE(clk.stopped());

    sched.schedule_at(400, sim::Priority::kDefault, [&] {
        enable = true;
        clk.async_restart();
    });
    sched.run_until(2000);
    EXPECT_FALSE(clk.stopped());
    // Restart edge at 450 (restart_delay 50), then 550, 650, ...
    EXPECT_GT(clk.cycles(), 5u);
    EXPECT_EQ(clk.total_stopped_time(), 400u);
}

TEST(StoppableClock, RestartWhileRunningIsNoOp) {
    sim::Scheduler sched;
    StoppableClock clk(sched, "clk", params(100));
    clk.start();
    sched.run_until(250);
    const auto cycles_before = clk.cycles();
    clk.async_restart();  // running: must not inject extra edges
    sched.run_until(260);
    EXPECT_EQ(clk.cycles(), cycles_before);
}

TEST(StoppableClock, DividerScalesEffectivePeriod) {
    sim::Scheduler sched;
    StoppableClock clk(sched, "clk", params(100));
    clk.set_divider(4);
    EXPECT_EQ(clk.effective_period(), 400u);
    clk.start();
    sched.run_until(1700);  // edges 0,400,800,1200,1600
    EXPECT_EQ(clk.cycles(), 5u);
}

TEST(StoppableClock, RejectsInvalidConfiguration) {
    sim::Scheduler sched;
    EXPECT_THROW(StoppableClock(sched, "bad", params(0)),
                 std::invalid_argument);
    StoppableClock clk(sched, "clk", params(100));
    EXPECT_THROW(clk.set_divider(0), std::invalid_argument);
    EXPECT_THROW(clk.set_base_period(0), std::invalid_argument);
    EXPECT_THROW(clk.add_sink(nullptr), std::invalid_argument);
}

TEST(StoppableClock, EdgeObserversSeeSettledState) {
    sim::Scheduler sched;
    StoppableClock clk(sched, "clk", params(100));
    struct A final : ClockSink {
        int reg = 0;
        void sample(std::uint64_t) override {}
        void commit(std::uint64_t) override { ++reg; }
    } a;
    clk.add_sink(&a);
    std::vector<int> observed;
    clk.on_edge([&](std::uint64_t, sim::Time) { observed.push_back(a.reg); });
    clk.start();
    sched.run_until(250);
    // Observer runs at monitor priority, after commit: sees 1, 2, 3.
    EXPECT_EQ(observed, (std::vector<int>{1, 2, 3}));
}

TEST(TesterClock, PulsesDeliverEdgesAndGateSwallows) {
    sim::Scheduler sched;
    TesterClock tck(sched, "tck");
    ProbeSink sink;
    tck.add_sink(&sink);
    EXPECT_TRUE(tck.pulse());
    EXPECT_TRUE(tck.pulse());
    bool open = false;
    tck.set_gate_fn([&] { return open; });
    EXPECT_FALSE(tck.pulse());  // swallowed wait state
    open = true;
    EXPECT_TRUE(tck.pulse());
    EXPECT_EQ(tck.cycles(), 3u);
    EXPECT_EQ(tck.swallowed(), 1u);
    EXPECT_EQ(sink.samples, (std::vector<std::uint64_t>{0, 1, 2}));
}

}  // namespace
}  // namespace st::clk
