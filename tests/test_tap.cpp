#include <gtest/gtest.h>

#include "sb/kernels/sources.hpp"
#include "system/soc.hpp"
#include "system/testbenches.hpp"
#include "tap/p1500.hpp"
#include "tap/test_sb.hpp"
#include "tap/tester.hpp"
#include "workload/traffic.hpp"

namespace st::tap {
namespace {

TEST(TapFsm, ResetFromAnywhereWithFiveOnes) {
    for (int start = 0; start < 16; ++start) {
        TapState s = static_cast<TapState>(start);
        for (int i = 0; i < 5; ++i) s = tap_next_state(s, true);
        EXPECT_EQ(s, TapState::kTestLogicReset) << "from state " << start;
    }
}

TEST(TapFsm, StandardWalkThroughDrColumn) {
    TapState s = TapState::kTestLogicReset;
    s = tap_next_state(s, false);
    EXPECT_EQ(s, TapState::kRunTestIdle);
    s = tap_next_state(s, true);
    EXPECT_EQ(s, TapState::kSelectDrScan);
    s = tap_next_state(s, false);
    EXPECT_EQ(s, TapState::kCaptureDr);
    s = tap_next_state(s, false);
    EXPECT_EQ(s, TapState::kShiftDr);
    s = tap_next_state(s, false);
    EXPECT_EQ(s, TapState::kShiftDr);
    s = tap_next_state(s, true);
    EXPECT_EQ(s, TapState::kExit1Dr);
    s = tap_next_state(s, false);
    EXPECT_EQ(s, TapState::kPauseDr);
    s = tap_next_state(s, true);
    EXPECT_EQ(s, TapState::kExit2Dr);
    s = tap_next_state(s, true);
    EXPECT_EQ(s, TapState::kUpdateDr);
    s = tap_next_state(s, false);
    EXPECT_EQ(s, TapState::kRunTestIdle);
}

TEST(TapFsm, IrColumnReachable) {
    TapState s = TapState::kRunTestIdle;
    s = tap_next_state(s, true);   // Select-DR
    s = tap_next_state(s, true);   // Select-IR
    EXPECT_EQ(s, TapState::kSelectIrScan);
    s = tap_next_state(s, false);  // Capture-IR
    EXPECT_EQ(s, TapState::kCaptureIr);
    EXPECT_STREQ(to_string(s), "Capture-IR");
}

/// Fixture: pair SoC with a Test SB ringed to both mission SBs.
class TapFixture : public ::testing::Test {
  protected:
    TapFixture() : soc(sys::make_pair_spec()), tsb(soc, TestSb::Params{}) {
        core::TokenNode::Params mission;
        mission.hold = 2;
        mission.recycle = 12;  // covers one TCK-paced round trip
        mission.initial_holder = false;
        core::TokenNode::Params test_side;
        test_side.hold = 2;
        test_side.recycle = 30;
        test_side.initial_holder = true;
        tsb.attach_ring(0, mission, test_side, 500, 500);
        tsb.attach_ring(1, mission, test_side, 500, 500);
        tsb.add_default_scan_targets();
        soc.start();
    }

    sys::Soc soc;
    TestSb tsb;
};

TEST_F(TapFixture, IdcodeReadsBack) {
    TesterDriver drv(tsb);
    drv.reset();
    EXPECT_EQ(drv.read_idcode(), 0x5354'4B31u);
}

TEST_F(TapFixture, BypassIsSingleBitDelay) {
    TesterDriver drv(tsb);
    drv.reset();
    drv.shift_ir(0xFF);  // BYPASS
    // Through a 1-bit bypass, an n-bit pattern comes back shifted by one,
    // with a captured 0 leading.
    const auto out = drv.shift_dr({true, false, true, true});
    EXPECT_EQ(out, (std::vector<bool>{false, true, false, true}));
}

TEST_F(TapFixture, IrCapturePatternIsStandard01) {
    TesterDriver drv(tsb);
    drv.reset();
    const std::uint64_t captured = drv.shift_ir(0xFF);
    EXPECT_EQ(captured & 0b11, 0b01u);
}

TEST_F(TapFixture, ModeInstructionSwitchesModes) {
    TesterDriver drv(tsb);
    drv.reset();
    EXPECT_EQ(tsb.mode(), TestSb::Mode::kInterlocked);
    drv.shift_ir(TestSb::Opcodes::kMode);
    drv.shift_dr_word(1, 1);
    EXPECT_EQ(tsb.mode(), TestSb::Mode::kIndependent);
    // Reading back captures the new mode bit.
    const auto captured = drv.shift_dr_word(0, 1);
    EXPECT_EQ(captured, 1u);
    EXPECT_EQ(tsb.mode(), TestSb::Mode::kInterlocked);  // wrote 0 back
}

TEST_F(TapFixture, TokenHoldInstructionParksTokens) {
    TesterDriver drv(tsb);
    drv.reset();
    drv.shift_ir(TestSb::Opcodes::kTokenHold);
    drv.shift_dr_word(0b11, 16);
    EXPECT_TRUE(tsb.test_node(0).debug_hold());
    EXPECT_TRUE(tsb.test_node(1).debug_hold());
    drv.shift_dr_word(0b00, 16);
    EXPECT_FALSE(tsb.test_node(0).debug_hold());
}

TEST_F(TapFixture, BreakpointStopsAllMissionClocksDeterministically) {
    tsb.hold_all_tokens(true);
    const auto pulses = tsb.wait_for_system_stop();
    ASSERT_NE(pulses, ~0ull);
    EXPECT_TRUE(tsb.all_mission_clocks_stopped());
    // Stop cycle counts are a deterministic function of the configuration:
    // a second identical system stops at the same local cycle counts.
    sys::Soc soc2(sys::make_pair_spec());
    TestSb tsb2(soc2, TestSb::Params{});
    core::TokenNode::Params mission;
    mission.hold = 2;
    mission.recycle = 12;
    core::TokenNode::Params test_side;
    test_side.hold = 2;
    test_side.recycle = 30;
    test_side.initial_holder = true;
    tsb2.attach_ring(0, mission, test_side, 500, 500);
    tsb2.attach_ring(1, mission, test_side, 500, 500);
    soc2.start();
    tsb2.hold_all_tokens(true);
    ASSERT_NE(tsb2.wait_for_system_stop(), ~0ull);
    for (std::size_t i = 0; i < 2; ++i) {
        EXPECT_EQ(soc.wrapper(i).clock().cycles(),
                  soc2.wrapper(i).clock().cycles());
    }
}

TEST_F(TapFixture, ScanReadsArchitecturalStateAtBreakpoint) {
    tsb.hold_all_tokens(true);
    ASSERT_NE(tsb.wait_for_system_stop(), ~0ull);

    TesterDriver drv(tsb);
    drv.reset();
    const auto image = drv.scan_transaction({});
    ASSERT_EQ(image.size(), tsb.scan_chain().payload_bits());

    // First target: alpha's TrafficKernel, word 0 = LFSR state.
    std::uint64_t lfsr = 0;
    for (int b = 0; b < 64; ++b) {
        if (image[static_cast<std::size_t>(b)]) lfsr |= (1ull << b);
    }
    const auto& kernel = dynamic_cast<const wl::TrafficKernel&>(
        soc.wrapper(0).block().kernel());
    EXPECT_EQ(lfsr, kernel.scan_state()[0]);
}

TEST_F(TapFixture, ScanReadIsNonDestructive) {
    tsb.hold_all_tokens(true);
    ASSERT_NE(tsb.wait_for_system_stop(), ~0ull);
    TesterDriver drv(tsb);
    drv.reset();
    const auto before = drv.scan_transaction({});
    const auto after = drv.scan_transaction({});
    EXPECT_EQ(before, after);
}

TEST_F(TapFixture, ScanWriteModifiesStateAndReadsBack) {
    tsb.hold_all_tokens(true);
    ASSERT_NE(tsb.wait_for_system_stop(), ~0ull);
    TesterDriver drv(tsb);
    drv.reset();

    auto image = drv.scan_transaction({});
    // Overwrite alpha's LFSR (payload word 0) with a known value.
    const std::uint64_t magic = 0x1234'5678'9abc'def1ull;
    for (int b = 0; b < 64; ++b) {
        image[static_cast<std::size_t>(b)] = (magic >> b) & 1;
    }
    drv.scan_transaction(image);
    const auto& kernel = dynamic_cast<const wl::TrafficKernel&>(
        soc.wrapper(0).block().kernel());
    EXPECT_EQ(kernel.scan_state()[0], magic);

    const auto readback = drv.scan_transaction({});
    std::uint64_t lfsr = 0;
    for (int b = 0; b < 64; ++b) {
        if (readback[static_cast<std::size_t>(b)]) lfsr |= (1ull << b);
    }
    EXPECT_EQ(lfsr, magic);
}

TEST_F(TapFixture, SingleStepAdvancesSystemBetweenBreakpoints) {
    tsb.hold_all_tokens(true);
    ASSERT_NE(tsb.wait_for_system_stop(), ~0ull);
    const auto before0 = soc.wrapper(0).clock().cycles();
    const auto before1 = soc.wrapper(1).clock().cycles();

    ASSERT_TRUE(tsb.single_step());
    ASSERT_NE(tsb.wait_for_system_stop(), ~0ull);
    EXPECT_GT(soc.wrapper(0).clock().cycles(), before0);
    EXPECT_GT(soc.wrapper(1).clock().cycles(), before1);
}

TEST(TapInterlock, TightRecycleProducesWaitStates) {
    // A test node whose recycle expires before the mission round trip
    // completes swallows TCK pulses until the token returns — the wait
    // states the paper's Interlocked Mode exposes to the tester.
    sys::Soc soc(sys::make_pair_spec());
    TestSb tsb(soc, TestSb::Params{});
    core::TokenNode::Params mission;
    mission.hold = 8;
    mission.recycle = 20;
    core::TokenNode::Params test_side;
    test_side.hold = 2;
    test_side.recycle = 1;  // token cannot be back within one TCK cycle
    test_side.initial_holder = true;
    tsb.attach_ring(0, mission, test_side, 500, 500);
    soc.start();
    for (int i = 0; i < 200; ++i) tsb.clock(false, false);
    EXPECT_GT(tsb.wait_states(), 0u);
    // Despite the interlocking, tokens keep circulating.
    EXPECT_GT(tsb.test_node(0).tokens_received(), 2u);
}

TEST(TapIndependentMode, TokensBypassTestSbWithoutTck) {
    sys::Soc soc(sys::make_pair_spec());
    TestSb tsb(soc, TestSb::Params{});
    core::TokenNode::Params mission;
    mission.hold = 2;
    mission.recycle = 4;  // bypass round trip is ~1.1 ns: R=4 covers it
    mission.initial_holder = true;  // mission side owns the token
    core::TokenNode::Params test_side;
    test_side.hold = 2;
    test_side.recycle = 30;
    test_side.initial_holder = false;
    tsb.attach_ring(0, mission, test_side, 500, 500);
    tsb.set_mode(TestSb::Mode::kIndependent);
    soc.start();
    // No TCK pulses at all ("mission mode, where TCK never toggles"): the
    // SoC must still make full progress.
    ASSERT_TRUE(soc.run_cycles(300, sim::ms(1)));
    EXPECT_GE(soc.wrapper(0).clock().cycles(), 300u);
}

TEST(TapP1500, CoreWrapperScanAndBoundary) {
    sys::Soc soc(sys::make_pair_spec());
    TestSb tsb(soc, TestSb::Params{});
    soc.start();

    sb::CounterSource core_kernel(7);
    CoreWrapper cw("core0", core_kernel, 8);
    std::uint64_t boundary_out = ~0ull;
    cw.set_boundary_capture([] { return 0xA5ull; });
    cw.set_boundary_update([&](std::uint64_t v) { boundary_out = v; });
    tsb.tap().add_instruction(0x20, &cw.wir(), "CORE0_WIR");
    tsb.tap().add_instruction(0x21, &cw.wdr(), "CORE0_WDR");

    TesterDriver drv(tsb);
    drv.reset();

    // Select the boundary register through the WIR, then sample it.
    drv.shift_ir(0x20);
    drv.shift_dr_word(static_cast<std::uint64_t>(CoreWrapper::WirOp::kBoundary), 2);
    EXPECT_EQ(cw.current(), CoreWrapper::WirOp::kBoundary);
    drv.shift_ir(0x21);
    EXPECT_EQ(drv.shift_dr_word(0x3C, 8), 0xA5u);
    EXPECT_EQ(boundary_out, 0x3Cu);  // EXTEST-style drive

    // Core-internal scan: read the counter state through the WDR.
    drv.shift_ir(0x20);
    drv.shift_dr_word(static_cast<std::uint64_t>(CoreWrapper::WirOp::kCoreScan), 2);
    core_kernel.load_state({42});
    drv.shift_ir(0x21);
    const std::size_t len = cw.wdr().length();  // 64 payload + tail + WE
    std::vector<bool> zeros(len, false);
    drv.shift_ir(0x21);
    drv.shift_dr(zeros);  // capture+shift; WE low -> non-destructive
    // The payload bits follow the 2 empty tail stages.
    // Re-read deterministically via a fresh transaction:
    drv.shift_dr(zeros);
    EXPECT_EQ(core_kernel.scan_state()[0], 42u);  // untouched by reads

    // Bypass through the core wrapper is one bit long.
    drv.shift_ir(0x20);
    drv.shift_dr_word(static_cast<std::uint64_t>(CoreWrapper::WirOp::kBypass), 2);
    drv.shift_ir(0x21);
    EXPECT_EQ(cw.wdr().length(), 1u);
}

}  // namespace
}  // namespace st::tap
