#include <gtest/gtest.h>

#include <set>

#include "analytic/models.hpp"
#include "baselines/baseline_soc.hpp"
#include "baselines/stari.hpp"
#include "system/delay_config.hpp"
#include "system/testbenches.hpp"
#include "verify/io_trace.hpp"

namespace st::baseline {
namespace {

sys::SocSpec plesiochronous_pair() {
    sys::PairOptions opt;
    opt.period_a = 1000;
    opt.period_b = 1009;  // slightly off-frequency: realistic GALS
    return sys::make_pair_spec(opt);
}

verify::TraceSet run_baseline(const sys::SocSpec& spec, BaselineSoc::Kind kind,
                              const sys::DelayConfig& cfg) {
    BaselineSoc soc(sys::apply(spec, cfg), kind);
    soc.run_cycles(150, sim::ms(1));
    return verify::truncated(soc.traces(), 100);
}

TEST(TwoFlopBaseline, MovesDataAndIsInternallyReproducible) {
    const auto spec = plesiochronous_pair();
    const auto cfg = sys::DelayConfig::nominal(spec);
    const auto a = run_baseline(spec, BaselineSoc::Kind::kTwoFlop, cfg);
    const auto b = run_baseline(spec, BaselineSoc::Kind::kTwoFlop, cfg);
    // Same delays -> same trace (the simulator itself is deterministic; the
    // *system* is what's nondeterministic across delay variations).
    EXPECT_TRUE(verify::diff_traces(a, b).identical);
    EXPECT_FALSE(a.at("alpha").events.empty());
    EXPECT_FALSE(a.at("beta").events.empty());
}

/// Paper §5 control experiment: with the synchro-tokens control bypassed the
/// data sequences are nondeterministic — delay perturbations change the
/// cycle-indexed traces.
TEST(TwoFlopBaseline, DelayPerturbationChangesTraces) {
    const auto spec = plesiochronous_pair();
    const auto nominal =
        run_baseline(spec, BaselineSoc::Kind::kTwoFlop,
                     sys::DelayConfig::nominal(spec));
    std::size_t mismatches = 0;
    const unsigned percents[4] = {50, 75, 150, 200};
    for (const unsigned pct : percents) {
        auto cfg = sys::DelayConfig::nominal(spec);
        cfg.fifo_pct.assign(cfg.fifo_pct.size(), pct);
        const auto perturbed =
            run_baseline(spec, BaselineSoc::Kind::kTwoFlop, cfg);
        if (!verify::diff_traces(nominal, perturbed).identical) ++mismatches;
    }
    EXPECT_GT(mismatches, 0u);
}

TEST(PausibleBaseline, MovesDataAndArbitrates) {
    const auto spec = plesiochronous_pair();
    BaselineSoc soc(spec, BaselineSoc::Kind::kPausible);
    ASSERT_TRUE(soc.run_cycles(300, sim::ms(1)));
    const auto traces = soc.traces();
    EXPECT_FALSE(traces.at("alpha").events.empty());
    EXPECT_FALSE(traces.at("beta").events.empty());
}

TEST(PausibleBaseline, ClockFrequencyVariationChangesTraces) {
    // At steady state a full FIFO quantizes delivery times to the consumer's
    // commit instants, so pure datapath-delay perturbation can be absorbed.
    // But independent ring oscillators inevitably vary in *frequency*, and
    // even a 1% shift reshuffles which cycle each word lands in — the
    // synchro-tokens system shrugs this off (PairDeterminism tests), the
    // pausible baseline does not.
    const auto spec = plesiochronous_pair();
    const auto nominal = run_baseline(spec, BaselineSoc::Kind::kPausible,
                                      sys::DelayConfig::nominal(spec));
    std::size_t mismatches = 0;
    for (const unsigned pct : {99u, 101u, 150u, 200u}) {
        auto cfg = sys::DelayConfig::nominal(spec);
        cfg.clock_pct.back() = pct;
        if (!verify::diff_traces(
                 nominal, run_baseline(spec, BaselineSoc::Kind::kPausible, cfg))
                 .identical) {
            ++mismatches;
        }
    }
    EXPECT_GT(mismatches, 0u);
}

TEST(Stari, SteadyStateThroughputIsOneWordPerCycle) {
    sim::Scheduler sched;
    StariLink::Params p;
    p.depth = 8;
    p.stage_delay = 100;
    p.period = 1000;
    p.rx_skew = 300;
    StariLink link(sched, "stari", p);
    link.start();
    sched.run_until(sim::us(1));  // ~1000 cycles
    EXPECT_EQ(link.underflows(), 0u);
    EXPECT_EQ(link.overflows(), 0u);
    EXPECT_NEAR(link.throughput(), 1.0, 0.01);
}

TEST(Stari, ReceivedStreamIsInOrderAndComplete) {
    sim::Scheduler sched;
    StariLink::Params p;
    p.depth = 6;
    StariLink link(sched, "stari", p);
    std::vector<Word> seen;
    link.set_source([](std::uint64_t i) { return i * 3 + 1; });
    link.set_sink([&](std::uint64_t, Word w) { seen.push_back(w); });
    link.start();
    sched.run_until(sim::us(1));
    ASSERT_GT(seen.size(), 500u);
    for (std::size_t i = 0; i < seen.size(); ++i) {
        EXPECT_EQ(seen[i], i * 3 + 1);
    }
}

TEST(Stari, MeasuredLatencyTracksEquation1) {
    // L_STARI = F*H/2 + T*H/2 for a FIFO kept roughly half full.
    for (const std::size_t depth : {4u, 8u, 16u}) {
        sim::Scheduler sched;
        StariLink::Params p;
        p.depth = depth;
        p.stage_delay = 100;
        p.period = 1000;
        p.rx_skew = 500;
        StariLink link(sched, "stari", p);
        link.start();
        sched.run_until(sim::us(2));
        const double model = model::stari_latency(1000, 100, static_cast<double>(depth));
        // Behavioural simulation vs closed-form: agreement within 50%
        // (the equation is itself an approximation: "roughly half full").
        EXPECT_GT(link.mean_latency_ps(), model * 0.5) << "depth " << depth;
        EXPECT_LT(link.mean_latency_ps(), model * 1.7) << "depth " << depth;
    }
}

TEST(Stari, SkewIsAbsorbedAcrossRange) {
    // The half-full FIFO absorbs any skew within a period: no underflows,
    // full throughput, for every skew setting.
    for (const sim::Time skew : {100u, 300u, 500u, 700u, 900u}) {
        sim::Scheduler sched;
        StariLink::Params p;
        p.depth = 8;
        p.rx_skew = skew;
        StariLink link(sched, "stari", p);
        link.start();
        sched.run_until(sim::us(1));
        EXPECT_EQ(link.underflows(), 0u) << "skew " << skew;
        EXPECT_NEAR(link.throughput(), 1.0, 0.02) << "skew " << skew;
    }
}

}  // namespace
}  // namespace st::baseline
