#include <gtest/gtest.h>

#include "area/area_model.hpp"
#include "system/testbenches.hpp"

namespace st::area {
namespace {

TEST(GateLibrary, KnownCellsAndErrors) {
    GateLibrary lib;
    EXPECT_DOUBLE_EQ(lib.gate_eq("NAND2"), 1.0);
    EXPECT_TRUE(lib.has_cell("DFF"));
    EXPECT_FALSE(lib.has_cell("FLUX_CAPACITOR"));
    EXPECT_THROW(lib.gate_eq("FLUX_CAPACITOR"), std::invalid_argument);
}

TEST(Netlist, AccumulatesAndTotals) {
    GateLibrary lib;
    Netlist n;
    n.add("NAND2", 3);
    n.add("INV", 2);
    n.add("NAND2");
    EXPECT_EQ(n.instances(), 6);
    EXPECT_DOUBLE_EQ(n.total_gate_eq(lib), 4 * 1.0 + 2 * 0.6);

    Netlist m;
    m.add("DFF", 2);
    n.add(m);
    EXPECT_DOUBLE_EQ(n.total_gate_eq(lib), 4 * 1.0 + 2 * 0.6 + 2 * 4.5);
}

TEST(AreaModels, ComponentsAreLinearInDataBits) {
    GateLibrary lib;
    // Exact linearity: A(2w) - A(w) == A(3w) - A(2w).
    for (const auto& builder : {input_interface_netlist,
                                output_interface_netlist,
                                fifo_stage_netlist}) {
        const double a8 = builder(8).total_gate_eq(lib);
        const double a16 = builder(16).total_gate_eq(lib);
        const double a24 = builder(24).total_gate_eq(lib);
        EXPECT_NEAR(a16 - a8, a24 - a16, 1e-9);
        EXPECT_GT(a8, 0.0);
    }
}

TEST(AreaModels, NodeAreaMatchesPaperTable1) {
    GateLibrary lib;
    // Paper Table 1 reports the node at 145 2-input-gate equivalents; our
    // re-derived netlist must land within a few percent.
    const double node = node_area(lib);
    EXPECT_NEAR(node, 145.0, 145.0 * 0.05);
}

TEST(AreaModels, NodeAreaIndependentOfDataWidth) {
    // The node handles only the token, never data: its netlist takes no
    // width parameter by construction; the fitted models do.
    GateLibrary lib;
    const auto t = make_table1(lib);
    EXPECT_GT(t.fifo_interface.per_bit, 0.0);
    EXPECT_GT(t.fifo_stage.per_bit, 0.0);
    EXPECT_GT(t.fifo_interface.base, 0.0);
    EXPECT_GT(t.fifo_stage.base, 0.0);
}

TEST(AreaModels, FittedModelsPredictNetlistsExactly) {
    GateLibrary lib;
    const auto iface = fit_interface_model(lib);
    const auto stage = fit_stage_model(lib);
    for (const unsigned bits : {1u, 8u, 16u, 32u, 64u}) {
        const double direct_iface =
            (input_interface_netlist(bits).total_gate_eq(lib) +
             output_interface_netlist(bits).total_gate_eq(lib)) /
            2.0;
        EXPECT_NEAR(iface.at(bits), direct_iface, 1e-9) << bits;
        EXPECT_NEAR(stage.at(bits),
                    fifo_stage_netlist(bits).total_gate_eq(lib), 1e-9)
            << bits;
    }
}

TEST(SystemOverhead, TriangleBreakdownIsConsistent) {
    GateLibrary lib;
    const auto spec = sys::make_triangle_spec();
    const auto o = system_overhead(spec, lib);
    // 3 rings -> 6 nodes.
    EXPECT_NEAR(o.nodes, 6.0 * node_area(lib), 1e-9);
    EXPECT_GT(o.interfaces, 0.0);
    EXPECT_GT(o.fifo_stages, 0.0);
    EXPECT_NEAR(o.total(), o.nodes + o.interfaces + o.fifo_stages, 1e-9);
    // Paper §5: the synchro-tokens-specific overhead is the nodes only;
    // FIFOs and interfaces are needed by any GALS scheme.
    EXPECT_LT(o.synchro_tokens_specific(), o.total());
}

TEST(SystemOverhead, ScalesWithTopology) {
    GateLibrary lib;
    const auto small = system_overhead(sys::make_pair_spec(), lib);
    const auto large = system_overhead(sys::make_triangle_spec(), lib);
    EXPECT_GT(large.nodes, small.nodes);
    EXPECT_GT(large.total(), small.total());
}

TEST(Table1, RendersAllRows) {
    GateLibrary lib;
    const auto t = make_table1(lib);
    const auto s = t.to_string();
    EXPECT_NE(s.find("FIFO interface"), std::string::npos);
    EXPECT_NE(s.find("FIFO stage"), std::string::npos);
    EXPECT_NE(s.find("Node"), std::string::npos);
}

}  // namespace
}  // namespace st::area
