// Differential suite for the streaming verification pipeline: the streaming
// (online StreamingChecker, cooperative early exit) and batch (offline
// diff_capture) paths must produce bit-identical verdicts, loci, reports and
// summaries on every corpus this repo ships — the only permitted difference
// is wall-clock. Also pins the early-exit bound, the zero-allocation arena
// reuse, the capture sortedness precondition, and the scheduler stop flag.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "baselines/baseline_soc.hpp"
#include "fuzz/campaign.hpp"
#include "fuzz/repro.hpp"
#include "sim/scheduler.hpp"
#include "system/delay_config.hpp"
#include "system/soc.hpp"
#include "system/testbenches.hpp"
#include "system/warm_runner.hpp"
#include "verify/determinism.hpp"
#include "verify/streaming.hpp"
#include "verify/trace_arena.hpp"

namespace st {
namespace {

// ---------------------------------------------------------------------------
// Campaign differentials
// ---------------------------------------------------------------------------

struct CampaignRuns {
    fuzz::CampaignSummary summary;
    std::vector<fuzz::FuzzCase> cases;
    std::vector<fuzz::RunReport> reports;

    bool operator==(const CampaignRuns&) const = default;
};

CampaignRuns run_campaign(fuzz::CampaignConfig cfg, bool streaming,
                          std::uint64_t runs, std::uint64_t seed,
                          std::size_t jobs) {
    cfg.streaming = streaming;
    const fuzz::Campaign campaign(cfg);
    CampaignRuns out;
    out.summary = campaign.run(
        runs, seed,
        [&](std::size_t, const fuzz::FuzzCase& c, const fuzz::RunReport& r) {
            out.cases.push_back(c);
            out.reports.push_back(r);
        },
        jobs);
    return out;
}

TEST(StreamingBatch, EveryShippedSpecIdenticalReports) {
    for (const auto& name : sys::named_specs()) {
        SCOPED_TRACE(name);
        fuzz::CampaignConfig cfg;
        cfg.spec_name = name;
        cfg.cycles = 40;
        const auto stream = run_campaign(cfg, true, 4, 99, 1);
        const auto batch = run_campaign(cfg, false, 4, 99, 1);
        EXPECT_EQ(stream, batch);
        EXPECT_EQ(stream.summary.runs, 4u);
    }
}

TEST(StreamingBatch, FaultCampaignIdenticalAcrossModesAndJobs) {
    for (const auto* name : {"pair", "triangle"}) {
        SCOPED_TRACE(name);
        fuzz::CampaignConfig cfg;
        cfg.spec_name = name;
        cfg.cycles = 60;
        cfg.classes = fuzz::all_fault_classes();
        cfg.max_faults = 2;

        const auto baseline = run_campaign(cfg, true, 24, 7, 1);
        for (std::size_t jobs : {std::size_t{1}, std::size_t{2},
                                 std::size_t{4}}) {
            SCOPED_TRACE(jobs);
            EXPECT_EQ(run_campaign(cfg, true, 24, 7, jobs), baseline);
            EXPECT_EQ(run_campaign(cfg, false, 24, 7, jobs), baseline);
        }
        // A fault campaign over pair/triangle at these seeds exercises every
        // non-deterministic outcome; make sure the differential is not
        // vacuously comparing all-deterministic runs.
        EXPECT_GT(baseline.summary.runs -
                      baseline.summary.by_outcome[static_cast<std::size_t>(
                          fuzz::Outcome::kDeterministic)],
                  0u);
    }
}

TEST(StreamingBatch, DivergentReportCarriesStructuredLocus) {
    fuzz::CampaignConfig cfg;
    cfg.spec_name = "pair";
    cfg.cycles = 60;
    cfg.classes = fuzz::all_fault_classes();
    const auto runs = run_campaign(cfg, true, 40, 11, 1);
    bool saw_divergent = false;
    for (const auto& r : runs.reports) {
        if (r.outcome == fuzz::Outcome::kTraceDivergent) {
            saw_divergent = true;
            EXPECT_TRUE(r.locus.valid());
            EXPECT_FALSE(r.locus.sb.empty());
            EXPECT_FALSE(r.detail.empty());
        } else {
            EXPECT_FALSE(r.locus.valid());
        }
    }
    EXPECT_TRUE(saw_divergent);
}

TEST(StreamingBatch, ReproCorpusIdenticalClassification) {
    const std::filesystem::path dir = ST_TESTS_DATA_DIR;
    ASSERT_TRUE(std::filesystem::exists(dir));
    std::size_t replayed = 0;
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
        if (entry.path().extension() != ".repro") continue;
        SCOPED_TRACE(entry.path().filename().string());
        std::ifstream in(entry.path());
        std::stringstream text;
        text << in.rdbuf();

        fuzz::Repro repro;
        try {
            repro = fuzz::Repro::parse(text.str());
        } catch (const std::invalid_argument&) {
            // Corpus files that exist to pin parse *rejection* (e.g. the
            // unsupported-version fixture) are not replayable.
            continue;
        }
        fuzz::CampaignConfig cfg;
        cfg.spec_name = repro.spec_name;
        cfg.cycles = repro.cycles;

        cfg.streaming = true;
        const fuzz::Campaign stream(cfg);
        cfg.streaming = false;
        const fuzz::Campaign batch(cfg);

        const auto c = repro.to_case(stream.spec());
        const auto rs = stream.run_case(c);
        const auto rb = batch.run_case(c);
        EXPECT_EQ(rs, rb);
        if (repro.expected) {
            EXPECT_EQ(rs.outcome, *repro.expected);
        }
        ++replayed;
    }
    EXPECT_GE(replayed, 1u);
}

// ---------------------------------------------------------------------------
// Harness differentials
// ---------------------------------------------------------------------------

std::vector<sys::DelayConfig> grid_perturbations(const sys::SocSpec& spec) {
    std::vector<sys::DelayConfig> out;
    const auto nominal = sys::DelayConfig::nominal(spec);
    out.push_back(nominal);
    for (std::size_t dim = 0; dim < nominal.dimensions(); ++dim) {
        for (unsigned pct : {50u, 150u}) {
            auto cfg = nominal;
            cfg.set(dim, pct);
            out.push_back(cfg);
        }
    }
    return out;
}

TEST(HarnessDifferential, SynchroTokensLiveMatchesBatchAndLegacy) {
    const auto spec = sys::make_named_spec("triangle");
    const sys::WarmRunner runner(spec, 60, sim::ms(1));
    const auto nominal = sys::DelayConfig::nominal(spec);
    const auto perturbations = grid_perturbations(spec);

    verify::DeterminismHarness<sys::DelayConfig> stream(
        verify::DeterminismHarness<sys::DelayConfig>::LiveRunner(
            [&runner](const sys::DelayConfig& cfg, verify::RunCapture& cap) {
                runner.run(cfg, cap);
            }),
        nominal, 60);
    verify::DeterminismHarness<sys::DelayConfig> batch(
        verify::DeterminismHarness<sys::DelayConfig>::LiveRunner(
            [&runner](const sys::DelayConfig& cfg, verify::RunCapture& cap) {
                runner.run(cfg, cap);
            }),
        nominal, 60);
    batch.set_streaming(false);
    verify::DeterminismHarness<sys::DelayConfig> legacy(
        verify::DeterminismHarness<sys::DelayConfig>::Runner(
            [&runner](const sys::DelayConfig& cfg) { return runner(cfg); }),
        nominal, 60);

    const auto r_stream = stream.sweep(perturbations);
    EXPECT_EQ(r_stream, batch.sweep(perturbations));
    EXPECT_EQ(r_stream, legacy.sweep(perturbations));
    EXPECT_TRUE(r_stream.all_match());  // the paper's §5 claim
    // Case-index-ordered reduction: jobs only changes wall-clock.
    EXPECT_EQ(r_stream, stream.sweep(perturbations, 2));
    EXPECT_EQ(r_stream, stream.sweep(perturbations, 4));
}

TEST(HarnessDifferential, BaselineDivergentVerdictsIdentical) {
    sys::PairOptions opt;
    opt.period_b = 1009;  // plesiochronous: two-flop baseline diverges
    const auto spec = sys::make_pair_spec(opt);
    const auto nominal = sys::DelayConfig::nominal(spec);
    const auto live = [&spec](const sys::DelayConfig& cfg,
                              verify::RunCapture& cap) {
        baseline::BaselineSoc soc(sys::apply(spec, cfg),
                                  baseline::BaselineSoc::Kind::kTwoFlop, &cap);
        soc.run_cycles(150, sim::ms(1));
    };
    const auto perturbations = grid_perturbations(spec);

    verify::DeterminismHarness<sys::DelayConfig> stream(
        verify::DeterminismHarness<sys::DelayConfig>::LiveRunner(live),
        nominal, 100);
    verify::DeterminismHarness<sys::DelayConfig> batch(
        verify::DeterminismHarness<sys::DelayConfig>::LiveRunner(live),
        nominal, 100);
    batch.set_streaming(false);

    const auto r_stream = stream.sweep(perturbations);
    const auto r_batch = batch.sweep(perturbations);
    // Full equality including the retained example loci: early exit must not
    // change what a divergent run reports, only how long it simulates.
    EXPECT_EQ(r_stream, r_batch);
    EXPECT_GT(r_stream.mismatches, 0u);
    EXPECT_FALSE(r_stream.examples.empty());
    EXPECT_EQ(r_stream, stream.sweep(perturbations, 4));
}

// ---------------------------------------------------------------------------
// Early exit
// ---------------------------------------------------------------------------

TEST(EarlyExit, StopsWithinOneSlotOfInjectedCycle3Divergence) {
    const auto spec = sys::make_named_spec("pair");

    sys::Soc golden_soc(spec);
    ASSERT_TRUE(golden_soc.run_cycles(100, sim::ms(1)));
    const std::uint64_t full_events =
        golden_soc.scheduler().events_executed();
    auto golden = verify::truncated(golden_soc.traces(), 100);

    // Doctor the golden: flip the word of the earliest event at cycle >= 3,
    // so a nominal re-run diverges from the doctored golden at that event.
    std::string victim_sb;
    std::size_t victim_idx = 0;
    std::uint64_t victim_cycle = ~0ull;
    for (const auto& [name, trace] : golden) {
        for (std::size_t i = 0; i < trace.events.size(); ++i) {
            const auto& e = trace.events[i];
            if (e.cycle >= 3 && e.cycle < victim_cycle) {
                victim_sb = name;
                victim_idx = i;
                victim_cycle = e.cycle;
            }
        }
    }
    ASSERT_FALSE(victim_sb.empty());
    ASSERT_LE(victim_cycle, 4u);  // pair traffic starts immediately
    golden[victim_sb].events[victim_idx].word ^= 0x1;
    const verify::GoldenIndex doctored(golden, 100);

    verify::RunCapture cap;
    verify::StreamingChecker checker(doctored);
    checker.attach(cap);
    sys::Soc soc(spec, &cap);
    EXPECT_FALSE(soc.run_cycles(100, sim::ms(1)));
    EXPECT_TRUE(soc.scheduler().stop_requested());
    ASSERT_TRUE(checker.diverged());

    // The run stopped at the next event boundary: no local clock advanced
    // more than one slot past the mismatching cycle, and the event count is
    // a small fraction of the full 100-cycle run.
    for (std::size_t i = 0; i < soc.num_sbs(); ++i) {
        EXPECT_LE(soc.wrapper(i).clock().cycles(), victim_cycle + 2);
    }
    EXPECT_LT(soc.scheduler().events_executed(), full_events / 4);

    // Verdict parity: a full batch run against the same doctored golden
    // reports the identical diff (message and structured locus).
    verify::RunCapture cap_full;
    sys::Soc full(spec, &cap_full);
    full.run_cycles(100, sim::ms(1));
    const auto batch_diff = verify::diff_capture(doctored, cap_full);
    const auto stream_diff = checker.finish();
    EXPECT_EQ(stream_diff, batch_diff);
    EXPECT_FALSE(stream_diff.identical);
    EXPECT_EQ(stream_diff.locus.kind, verify::MismatchLocus::Kind::kValue);
    EXPECT_EQ(stream_diff.locus.sb, victim_sb);
    EXPECT_EQ(stream_diff.locus.cycle, victim_cycle);
}

TEST(EarlyExit, FaultedCampaignCaseStillRunsToCompletion) {
    // A replayed fault case must never early-exit, even under a fault-free
    // campaign config: Outcome precedence requires the full run.
    fuzz::CampaignConfig cfg;
    cfg.spec_name = "pair";
    cfg.cycles = 60;
    const fuzz::Campaign campaign(cfg);

    fuzz::FuzzCase c;
    c.delays = sys::DelayConfig::nominal(campaign.spec());
    fuzz::Fault f;
    f.cls = fuzz::FaultClass::kTokenDropWire;
    f.side = 1;
    f.nth = 2;
    c.faults.push_back(f);
    const auto report = campaign.run_case(c);
    EXPECT_EQ(report.outcome, fuzz::Outcome::kDeadlocked);
    // diff_capture on the full capture and the streaming verdict agree.
    cfg.streaming = false;
    EXPECT_EQ(report, fuzz::Campaign(cfg).run_case(c));
}

// ---------------------------------------------------------------------------
// Arena + capture invariants
// ---------------------------------------------------------------------------

TEST(TraceArena, ChunksReusedAcrossRuns) {
    const auto spec = sys::make_named_spec("pair");
    auto& arena = verify::TraceArena::local();
    const auto run_once = [&spec] {
        verify::RunCapture cap;
        sys::Soc soc(spec, &cap);
        soc.run_cycles(50, sim::ms(1));
    };
    run_once();
    const std::size_t after_first = arena.chunks_allocated();
    for (int i = 0; i < 3; ++i) run_once();
    // Steady state: every later run recycles the first run's chunks from the
    // freelist — zero new allocations.
    EXPECT_EQ(arena.chunks_allocated(), after_first);
}

TEST(RunCapture, StreamsAreCycleSorted) {
    // truncated() binary-searches its cutoff, which requires cycle-sorted
    // traces; captured streams provide that by construction (each SB's
    // local cycle counter is monotone).
    const auto spec = sys::make_named_spec("triangle");
    verify::RunCapture cap;
    sys::Soc soc(spec, &cap);
    soc.run_cycles(60, sim::ms(1));
    ASSERT_GT(cap.num_streams(), 0u);
    for (const auto& [name, trace] : cap.traces()) {
        EXPECT_TRUE(std::is_sorted(
            trace.events.begin(), trace.events.end(),
            [](const verify::IoEvent& a, const verify::IoEvent& b) {
                return a.cycle < b.cycle;
            }))
            << name;
    }
}

// ---------------------------------------------------------------------------
// Scheduler stop flag
// ---------------------------------------------------------------------------

TEST(SchedulerStop, StopsAtNextEventBoundaryAndIsSticky) {
    sim::Scheduler s;
    std::vector<int> ran;
    s.schedule_at(10, sim::Priority::kDefault, [&] {
        ran.push_back(1);
        s.request_stop();
    });
    s.schedule_at(20, sim::Priority::kDefault, [&] { ran.push_back(2); });
    s.run_until(100);
    // The in-flight event completes; the next one does not run.
    EXPECT_EQ(ran, (std::vector<int>{1}));
    EXPECT_TRUE(s.stop_requested());
    EXPECT_EQ(s.now(), 10u);

    // Sticky: further run calls are no-ops until cleared.
    s.run_until(100);
    EXPECT_EQ(ran, (std::vector<int>{1}));

    s.clear_stop_request();
    EXPECT_FALSE(s.stop_requested());
    s.run_until(100);
    EXPECT_EQ(ran, (std::vector<int>{1, 2}));
    EXPECT_EQ(s.now(), 100u);
}

}  // namespace
}  // namespace st
