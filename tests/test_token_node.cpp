#include <gtest/gtest.h>

#include <vector>

#include "clock/stoppable_clock.hpp"
#include "sim/scheduler.hpp"
#include "synchro/token_node.hpp"

namespace st::core {
namespace {

/// Samples a node's registered enables each cycle (registered after the node
/// so it sees values stable for the current cycle).
class EnableRecorder final : public clk::ClockSink {
  public:
    explicit EnableRecorder(const TokenNode& node) : node_(node) {}
    std::vector<bool> sb_en;
    std::vector<bool> clken;
    void sample(std::uint64_t) override {
        sb_en.push_back(node_.sb_en());
        clken.push_back(node_.clken());
    }
    void commit(std::uint64_t) override {}

  private:
    const TokenNode& node_;
};

clk::StoppableClock::Params clock_params() {
    clk::StoppableClock::Params p;
    p.base_period = 1000;
    p.divider = 1;
    p.phase = 0;
    p.restart_delay = 50;
    return p;
}

struct NodeHarness {
    explicit NodeHarness(TokenNode::Params p)
        : clk(sched, "clk", clock_params()), node("n", p), rec(node) {
        node.set_pass_fn([this] { pass_times.push_back(sched.now()); });
        clk.add_sink(&node);
        clk.add_sink(&rec);
        clk.set_enable_fn([this] { return node.clken(); });
        // Emulate the wrapper's restart duty.
        clk.start();
    }

    void deliver_token() {
        node.token_arrive();
        if (node.clken()) clk.async_restart();
    }

    sim::Scheduler sched;
    clk::StoppableClock clk;
    TokenNode node;
    EnableRecorder rec;
    std::vector<sim::Time> pass_times;
};

TokenNode::Params holder(std::uint32_t h, std::uint32_t r) {
    TokenNode::Params p;
    p.hold = h;
    p.recycle = r;
    p.initial_holder = true;
    return p;
}

TEST(TokenNode, InitialHolderEnablesForExactlyHoldCycles) {
    NodeHarness hn(holder(3, 4));
    hn.sched.run_until(2500);  // cycles 0, 1, 2
    EXPECT_EQ(hn.rec.sb_en, (std::vector<bool>{true, true, true}));
    ASSERT_EQ(hn.pass_times.size(), 1u);
    EXPECT_EQ(hn.pass_times[0], 2000u);  // commit of cycle H-1 = 2
}

TEST(TokenNode, OnTimeTokenResumesAtCycleHPlusR) {
    NodeHarness hn(holder(3, 4));
    // Pass at commit 2 (t=2000); recycle check at commit 6 (t=6000).
    // Deliver well before the check: an on-time (slightly early) token.
    hn.sched.schedule_at(5500, sim::Priority::kDefault,
                         [&] { hn.deliver_token(); });
    hn.sched.run_until(8500);  // cycles 0..8
    const std::vector<bool> expect{true, true,  true,  false, false,
                                   false, false, true,  true};
    EXPECT_EQ(hn.rec.sb_en, expect);
    EXPECT_EQ(hn.node.late_arrivals(), 0u);
    EXPECT_FALSE(hn.clk.stopped());
}

TEST(TokenNode, EarlyTokenIsNotRecognizedBeforeRecycleExpires) {
    NodeHarness hn(holder(3, 4));
    // Token bounces back immediately after the pass: very early.
    hn.sched.schedule_at(2100, sim::Priority::kDefault,
                         [&] { hn.deliver_token(); });
    hn.sched.run_until(8500);
    const std::vector<bool> expect{true, true,  true,  false, false,
                                   false, false, true,  true};
    EXPECT_EQ(hn.rec.sb_en, expect);  // identical schedule: cycle 7 resumes
    EXPECT_EQ(hn.node.late_arrivals(), 0u);
}

TEST(TokenNode, LateTokenStopsClockButPreservesCycleSchedule) {
    NodeHarness hn(holder(3, 4));
    // Recycle check at commit 6 (t=6000) fails; token arrives at t=9000.
    hn.sched.schedule_at(9000, sim::Priority::kDefault,
                         [&] { hn.deliver_token(); });
    hn.sched.run_until(20000);
    ASSERT_TRUE(hn.rec.sb_en.size() >= 9);
    // Cycle 7 (the restart edge, at t=9050) is enabled — the same cycle
    // index as in the on-time run. This is the determinism invariant.
    const std::vector<bool> head(hn.rec.sb_en.begin(),
                                 hn.rec.sb_en.begin() + 9);
    const std::vector<bool> expect{true, true,  true,  false, false,
                                   false, false, true,  true};
    EXPECT_EQ(head, expect);
    EXPECT_EQ(hn.node.late_arrivals(), 1u);
    // Two stops: the observed late token, plus the next recycle expiry (the
    // harness only delivers one token, so the node parks again at the end).
    EXPECT_EQ(hn.clk.stop_events(), 2u);
    EXPECT_EQ(hn.clk.total_stopped_time(), 3000u);  // 6000 -> 9000
}

TEST(TokenNode, TokenAtExactCheckInstantTakesLatePathSameSchedule) {
    NodeHarness hn(holder(3, 4));
    // Arrival at exactly t=6000: commit (priority kCommit) runs before the
    // default-priority arrival, so the node goes to the waiting state and is
    // revived within the same timestamp — schedule unchanged.
    hn.sched.schedule_at(6000, sim::Priority::kDefault,
                         [&] { hn.deliver_token(); });
    hn.sched.run_until(9000);
    const std::vector<bool> head(hn.rec.sb_en.begin(),
                                 hn.rec.sb_en.begin() + 9);
    const std::vector<bool> expect{true, true,  true,  false, false,
                                   false, false, true,  true};
    EXPECT_EQ(head, expect);
    EXPECT_EQ(hn.node.late_arrivals(), 1u);
}

TEST(TokenNode, DebugHoldFreezesHoldCounter) {
    NodeHarness hn(holder(3, 4));
    hn.node.set_debug_hold(true);
    hn.sched.run_until(10500);
    EXPECT_TRUE(hn.pass_times.empty());       // token never leaves
    EXPECT_EQ(hn.node.hold_count(), 3u);      // counter frozen
    EXPECT_TRUE(hn.node.sb_en());             // interfaces stay enabled
    hn.node.set_debug_hold(false);
    hn.sched.run_until(14000);
    EXPECT_EQ(hn.pass_times.size(), 1u);      // resumes counting, passes
}

TEST(TokenNode, SecondTokenWhileHoldingIsProtocolError) {
    NodeHarness hn(holder(3, 4));
    hn.sched.schedule_at(500, sim::Priority::kDefault,
                         [&] { hn.node.token_arrive(); });
    hn.sched.run_until(1000);
    EXPECT_EQ(hn.node.protocol_errors(), 1u);
}

TEST(TokenNode, WaiterWithZeroInitialRecycleStopsImmediately) {
    TokenNode::Params p;
    p.hold = 2;
    p.recycle = 3;
    p.initial_holder = false;
    p.initial_recycle = 0;
    NodeHarness hn(p);
    hn.sched.run_until(5000);
    // Commit of cycle 0 finds recycle == 0, no token: clock stops at once.
    EXPECT_TRUE(hn.clk.stopped());
    EXPECT_EQ(hn.clk.cycles(), 1u);
    hn.deliver_token();
    hn.sched.run_until(9000);
    EXPECT_FALSE(hn.clk.stopped());
    EXPECT_EQ(hn.pass_times.size(), 1u);  // held 2 cycles then passed
}

TEST(TokenNode, RegisterReloadTakesEffectNextPreset) {
    NodeHarness hn(holder(2, 2));
    hn.node.load_hold_register(5);
    // Current hold phase still runs with the old counter value (2 cycles),
    // the next one runs 5 cycles.
    std::vector<bool> expected;
    hn.sched.schedule_at(3500, sim::Priority::kDefault,
                         [&] { hn.deliver_token(); });  // on-time return
    hn.sched.run_until(10500);
    // cycles: 0,1 enabled (old H=2); 2,3 recycling; 4.. enabled for 5 cycles
    const std::vector<bool> expect{true, true, false, false,
                                   true, true, true,  true, true, false};
    const std::vector<bool> head(hn.rec.sb_en.begin(),
                                 hn.rec.sb_en.begin() + 10);
    EXPECT_EQ(head, expect);
}

TEST(TokenNode, EightBitCounterBoundaryKeepsSchedule) {
    // The paper's hold/recycle registers are 8 bits wide; 255 is the largest
    // programmable value. The schedule must stay exact at that boundary —
    // an off-by-one or a narrowing truncation shows up as a shifted pass.
    NodeHarness hn(holder(255, 255));
    // Pass at commit of cycle H-1 = 254 (t = 254'000); recycle check at
    // commit of cycle H+R-1 = 509. Deliver early, well before the check.
    hn.sched.schedule_at(400'000, sim::Priority::kDefault,
                         [&] { hn.deliver_token(); });
    hn.sched.run_until(765'500);  // cycles 0 .. 765
    ASSERT_EQ(hn.pass_times.size(), 2u);
    EXPECT_EQ(hn.pass_times[0], 254'000u);
    // Resume at cycle H+R = 510; second pass at commit of 510 + 254 = 764.
    EXPECT_EQ(hn.pass_times[1], 764'000u);
    ASSERT_GE(hn.rec.sb_en.size(), 765u);
    EXPECT_TRUE(hn.rec.sb_en[0]);
    EXPECT_TRUE(hn.rec.sb_en[254]);   // last hold cycle
    EXPECT_FALSE(hn.rec.sb_en[255]);  // first recycle cycle
    EXPECT_FALSE(hn.rec.sb_en[509]);  // last recycle cycle
    EXPECT_TRUE(hn.rec.sb_en[510]);   // re-enabled on schedule
    EXPECT_TRUE(hn.rec.sb_en[764]);
    EXPECT_EQ(hn.node.late_arrivals(), 0u);
    EXPECT_EQ(hn.node.protocol_errors(), 0u);
    EXPECT_FALSE(hn.clk.stopped());
}

TEST(TokenNode, SecondTokenWhileLatchedEarlyIsProtocolError) {
    // An early token is latched while still recycling (token_here_ set but
    // not yet recognized). A *second* arrival in that window means the ring
    // carries two tokens — it must be counted, never silently merged.
    NodeHarness hn(holder(3, 4));
    // Pass at t=2000; bounce the token back early, then again.
    hn.sched.schedule_at(2100, sim::Priority::kDefault,
                         [&] { hn.deliver_token(); });
    hn.sched.schedule_at(2600, sim::Priority::kDefault,
                         [&] { hn.deliver_token(); });
    hn.sched.run_until(3000);
    EXPECT_EQ(hn.node.protocol_errors(), 1u);
    EXPECT_EQ(hn.node.tokens_received(), 2u);
}

TEST(TokenNode, InvalidParamsRejected) {
    TokenNode::Params p;
    p.hold = 0;
    EXPECT_THROW(TokenNode("n", p), std::invalid_argument);
    TokenNode node("n", holder(2, 2));
    EXPECT_THROW(node.load_hold_register(0), std::invalid_argument);
}

}  // namespace
}  // namespace st::core
