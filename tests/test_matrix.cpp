#include <gtest/gtest.h>

#include "async/link.hpp"
#include "sim/random.hpp"
#include "system/delay_config.hpp"
#include "system/soc.hpp"
#include "system/testbenches.hpp"
#include "verify/determinism.hpp"

namespace st::sys {
namespace {

/// Methodology matrix: one determinism check for every combination of
/// topology x handshake protocol x perturbation class. This is the broad
/// regression net over the whole stack: any semantic slip anywhere (kernel
/// ordering, link FSM, node schedule, wrapper gating) shows up as a trace
/// divergence in at least one cell.

enum class Topology { kPair, kTriangle, kChain, kWide };
enum class PerturbClass { kFifo, kRing, kClocks, kJointRandom };

SocSpec topo_spec(Topology t) {
    switch (t) {
        case Topology::kPair:
            return make_pair_spec();
        case Topology::kTriangle:
            return make_triangle_spec();
        case Topology::kChain: {
            ChainOptions opt;
            opt.length = 5;
            return make_chain_spec(opt);
        }
        case Topology::kWide:
            return make_wide_pair_spec();
    }
    return make_pair_spec();
}

const char* topo_name(Topology t) {
    switch (t) {
        case Topology::kPair: return "pair";
        case Topology::kTriangle: return "triangle";
        case Topology::kChain: return "chain";
        case Topology::kWide: return "wide";
    }
    return "?";
}

DelayConfig perturb(const SocSpec& spec, PerturbClass pc, std::uint64_t seed) {
    auto cfg = DelayConfig::nominal(spec);
    sim::Rng rng(seed);
    const unsigned percents[4] = {50, 75, 150, 200};
    switch (pc) {
        case PerturbClass::kFifo:
            for (auto& p : cfg.fifo_pct) p = percents[rng.next_below(4)];
            break;
        case PerturbClass::kRing:
            for (auto& p : cfg.ring_ab_pct) p = percents[rng.next_below(4)];
            for (auto& p : cfg.ring_ba_pct) p = percents[rng.next_below(4)];
            break;
        case PerturbClass::kClocks:
            // Stay inside the audited envelope: >= 75 %.
            for (auto& p : cfg.clock_pct) {
                p = 75 + static_cast<unsigned>(rng.next_below(100));
            }
            break;
        case PerturbClass::kJointRandom:
            for (std::size_t d = 0; d < cfg.dimensions(); ++d) {
                const bool is_clock =
                    d >= cfg.dimensions() - cfg.clock_pct.size();
                const unsigned pct = percents[rng.next_below(4)];
                cfg.set(d, is_clock ? std::max(75u, pct) : pct);
            }
            break;
    }
    return cfg;
}

using MatrixParam =
    std::tuple<Topology, achan::LinkProtocol, PerturbClass, std::uint64_t>;

class MethodologyMatrix : public ::testing::TestWithParam<MatrixParam> {};

TEST_P(MethodologyMatrix, DeterminismHoldsInEveryCell) {
    const auto [topo, proto, pclass, seed] = GetParam();
    SocSpec spec = topo_spec(topo);
    for (auto& c : spec.channels) {
        c.tail_link.protocol = proto;
        c.fifo.head_protocol = proto;
    }

    const auto run = [&](const DelayConfig& cfg) {
        Soc soc(apply(spec, cfg));
        soc.run_cycles(130, sim::ms(8));
        return soc.traces();
    };
    verify::DeterminismHarness<DelayConfig> harness(
        run, DelayConfig::nominal(spec), 90);
    const auto diff = harness.check(perturb(spec, pclass, seed));
    EXPECT_TRUE(diff.identical)
        << topo_name(topo) << ": " << diff.first_mismatch;
}

INSTANTIATE_TEST_SUITE_P(
    AllCells, MethodologyMatrix,
    ::testing::Combine(
        ::testing::Values(Topology::kPair, Topology::kTriangle,
                          Topology::kChain, Topology::kWide),
        ::testing::Values(achan::LinkProtocol::kFourPhase,
                          achan::LinkProtocol::kTwoPhase),
        ::testing::Values(PerturbClass::kFifo, PerturbClass::kRing,
                          PerturbClass::kClocks, PerturbClass::kJointRandom),
        ::testing::Values<std::uint64_t>(1, 2)));

// The same matrix sweep fanned out on the st::runner engine must produce the
// same aggregate as the serial path — matrix cells are exactly the
// independent-run shape the engine parallelizes, so this pins the
// jobs-invariance contract at the methodology level.
TEST(MethodologyMatrixParallel, SweepResultMatchesSerialRun) {
    const SocSpec spec = topo_spec(Topology::kTriangle);
    const auto run = [&spec](const DelayConfig& cfg) {
        Soc soc(apply(spec, cfg));
        soc.run_cycles(130, sim::ms(8));
        return soc.traces();
    };

    std::vector<DelayConfig> sweep;
    for (const PerturbClass pc :
         {PerturbClass::kFifo, PerturbClass::kRing, PerturbClass::kClocks,
          PerturbClass::kJointRandom}) {
        for (const std::uint64_t seed : {1u, 2u, 3u}) {
            sweep.push_back(perturb(spec, pc, seed));
        }
    }

    verify::DeterminismHarness<DelayConfig> serial(
        run, DelayConfig::nominal(spec), 90);
    verify::DeterminismHarness<DelayConfig> parallel(
        run, DelayConfig::nominal(spec), 90);
    const auto r1 = serial.sweep(sweep, 1);
    const auto r4 = parallel.sweep(sweep, 4);

    EXPECT_EQ(r1.runs, sweep.size());
    EXPECT_EQ(r1.runs, r4.runs);
    EXPECT_EQ(r1.matches, r4.matches);
    EXPECT_EQ(r1.mismatches, r4.mismatches);
    EXPECT_EQ(r1.examples, r4.examples);
    EXPECT_TRUE(r1.all_match());
}

}  // namespace
}  // namespace st::sys
