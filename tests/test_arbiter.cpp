#include <gtest/gtest.h>

#include <vector>

#include "async/arbiter.hpp"
#include "sim/scheduler.hpp"

namespace st::achan {
namespace {

struct Harness {
    explicit Harness(MutexElement::Params p = {})
        : mutex(sched, "mx", p) {
        mutex.on_grant_a([this] { grants.push_back('A'); });
        mutex.on_grant_b([this] { grants.push_back('B'); });
    }
    sim::Scheduler sched;
    MutexElement mutex;
    std::vector<char> grants;
};

TEST(MutexElement, UncontendedRequestGrantsAfterFixedDelay) {
    Harness h;
    h.mutex.request_a();
    h.sched.run();
    ASSERT_EQ(h.grants, (std::vector<char>{'A'}));
    EXPECT_EQ(h.sched.now(), 30u);  // grant_delay
    EXPECT_TRUE(h.mutex.granted_a());
    EXPECT_EQ(h.mutex.metastable_events(), 0u);
}

TEST(MutexElement, EarlierRequestWins) {
    Harness h;
    h.sched.schedule_after(100, [&] { h.mutex.request_b(); });
    h.sched.schedule_after(300, [&] { h.mutex.request_a(); });
    h.sched.run();
    ASSERT_EQ(h.grants.size(), 1u);
    EXPECT_EQ(h.grants[0], 'B');
    // A is queued; releasing B hands over.
    h.mutex.release_b();
    h.sched.run();
    ASSERT_EQ(h.grants.size(), 2u);
    EXPECT_EQ(h.grants[1], 'A');
}

TEST(MutexElement, CloseRequestsResolveWithExtraDelay) {
    MutexElement::Params p;
    p.grant_delay = 30;
    p.window = 60;
    p.tau = 25;
    Harness h(p);
    h.sched.schedule_after(100, [&] { h.mutex.request_a(); });
    h.sched.schedule_after(110, [&] { h.mutex.request_b(); });  // 10 ps apart
    h.sched.run();
    ASSERT_EQ(h.grants.size(), 1u);
    EXPECT_EQ(h.grants[0], 'A');  // earlier still wins
    EXPECT_EQ(h.mutex.metastable_events(), 1u);
    EXPECT_GT(h.mutex.worst_resolution(), 0u);
    // tau * ln(60/10) ~ 45 ps of extra resolution.
    EXPECT_GT(h.sched.now(), 100u + 30u + 30u);
}

TEST(MutexElement, ResolutionTimeGrowsAsSeparationShrinks) {
    const auto resolve_time = [](sim::Time separation) {
        Harness h;
        h.sched.schedule_after(100, [&] { h.mutex.request_a(); });
        h.sched.schedule_after(100 + separation,
                               [&] { h.mutex.request_b(); });
        h.sched.run();
        return h.mutex.worst_resolution();
    };
    const auto r50 = resolve_time(50);
    const auto r10 = resolve_time(10);
    const auto r1 = resolve_time(1);
    EXPECT_LT(r50, r10);
    EXPECT_LT(r10, r1);
}

TEST(MutexElement, ResolutionDelayIsCapped) {
    MutexElement::Params p;
    p.max_resolution = 100;
    Harness h(p);
    h.sched.schedule_after(100, [&] { h.mutex.request_a(); });
    h.sched.schedule_after(100, [&] { h.mutex.request_b(); });
    h.sched.run();
    EXPECT_LE(h.mutex.worst_resolution(), 100u);
    EXPECT_EQ(h.grants.size(), 1u);
}

TEST(MutexElement, MutualExclusionInvariantUnderTraffic) {
    Harness h;
    // Two clients repeatedly acquiring/releasing with incommensurate
    // periods; the grant must never be double-issued.
    int a_round = 0;
    int b_round = 0;
    std::function<void()> a_cycle = [&] {
        if (a_round++ > 50) return;
        h.mutex.request_a();
    };
    std::function<void()> b_cycle = [&] {
        if (b_round++ > 50) return;
        h.mutex.request_b();
    };
    h.mutex.on_grant_a([&] {
        h.grants.push_back('A');
        EXPECT_FALSE(h.mutex.granted_b());
        h.sched.schedule_after(70, [&] {
            h.mutex.release_a();
            h.sched.schedule_after(101, a_cycle);
        });
    });
    h.mutex.on_grant_b([&] {
        h.grants.push_back('B');
        EXPECT_FALSE(h.mutex.granted_a());
        h.sched.schedule_after(90, [&] {
            h.mutex.release_b();
            h.sched.schedule_after(131, b_cycle);
        });
    });
    a_cycle();
    h.sched.schedule_after(13, b_cycle);
    h.sched.run();
    EXPECT_GT(h.grants.size(), 60u);
    // Both sides made progress (no starvation in this pattern).
    EXPECT_GT(std::count(h.grants.begin(), h.grants.end(), 'A'), 20);
    EXPECT_GT(std::count(h.grants.begin(), h.grants.end(), 'B'), 20);
}

TEST(MutexElement, WithdrawnPendingRequestIsVoided) {
    Harness h;
    h.mutex.request_a();
    h.mutex.release_a();  // withdraw before the grant matures
    h.sched.run();
    EXPECT_TRUE(h.grants.empty());
    // The element still works afterwards.
    h.mutex.request_b();
    h.sched.run();
    EXPECT_EQ(h.grants, (std::vector<char>{'B'}));
}

TEST(MutexElement, DoubleRequestThrows) {
    Harness h;
    h.mutex.request_a();
    EXPECT_THROW(h.mutex.request_a(), std::logic_error);
}

/// The §1 point in one test: which side wins depends on analog timing, so a
/// delay perturbation flips the grant order — nondeterminism at the source.
TEST(MutexElement, GrantOrderIsDelaySensitive) {
    const auto first_grant = [](sim::Time a_delay) {
        Harness h;
        h.sched.schedule_after(a_delay, [&] { h.mutex.request_a(); });
        h.sched.schedule_after(200, [&] { h.mutex.request_b(); });
        h.sched.run();
        return h.grants.at(0);
    };
    EXPECT_EQ(first_grant(150), 'A');
    EXPECT_EQ(first_grant(250), 'B');  // same design, slower wire: flipped
}

}  // namespace
}  // namespace st::achan
