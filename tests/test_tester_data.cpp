#include <gtest/gtest.h>

#include "sb/kernels/transforms.hpp"
#include "system/delay_config.hpp"
#include "system/soc.hpp"
#include "system/spec.hpp"
#include "tap/test_sb.hpp"

namespace st::tap {
namespace {

/// One mission SB (a pure word transformer) reachable only through the Test
/// SB: a tester->mission channel and a mission->tester channel, both bundled
/// to one interlocked token ring.
struct DataRig {
    explicit DataRig(unsigned mission_clock_pct = 100) {
        sys::SocSpec spec;
        sys::SbSpec sb;
        sb.name = "dut";
        sb.clock.base_period = sim::scale_percent(1000, mission_clock_pct);
        sb.clock.restart_delay = 200;
        sb.make_kernel = [] {
            return std::make_unique<sb::TransformKernel>(
                [](Word w) { return w * 3 + 1; });
        };
        spec.sbs.push_back(sb);
        soc = std::make_unique<sys::Soc>(spec);
        tsb = std::make_unique<TestSb>(*soc, TestSb::Params{});

        core::TokenNode::Params mission;
        mission.hold = 4;
        mission.recycle = 20;
        core::TokenNode::Params test_side;
        test_side.hold = 4;
        test_side.recycle = 30;
        test_side.initial_holder = true;
        tsb->attach_ring(0, mission, test_side, 500, 500);

        achan::SelfTimedFifo::Params fifo;
        fifo.depth = 4;
        fifo.data_bits = 64;
        achan::FourPhaseLink::Params link{64, 20, 20,
                                          achan::LinkProtocol::kFourPhase};
        tx = tsb->attach_data_to(0, fifo, link);
        rx = tsb->attach_data_from(0, fifo, link);
        soc->start();
    }

    std::vector<Word> exchange(const std::vector<Word>& cmds,
                               int pulses = 400) {
        for (const Word c : cmds) tsb->host_send(tx, c);
        std::vector<Word> got;
        for (int i = 0; i < pulses && got.size() < cmds.size(); ++i) {
            tsb->clock(false, false);
            while (auto w = tsb->host_recv(rx)) got.push_back(*w);
        }
        return got;
    }

    std::unique_ptr<sys::Soc> soc;
    std::unique_ptr<TestSb> tsb;
    std::size_t tx = 0;
    std::size_t rx = 0;
};

TEST(TesterData, RoundTripThroughInterlockedChannels) {
    DataRig rig;
    const auto got = rig.exchange({5, 10, 0, 42, 99});
    ASSERT_EQ(got.size(), 5u);
    EXPECT_EQ(got, (std::vector<Word>{16, 31, 1, 127, 298}));
}

TEST(TesterData, ExchangeIsReproducible) {
    DataRig a;
    DataRig b;
    const std::vector<Word> cmds{1, 2, 3, 4, 5, 6, 7, 8};
    EXPECT_EQ(a.exchange(cmds), b.exchange(cmds));
}

/// Paper §4.2: "In Interlocked Mode ... data exchange between the tester and
/// the mission mode logic is deterministic." The mission clock runs 50%
/// slower — the tester sees wait states, but the received data is identical.
TEST(TesterData, DeterministicAcrossMissionClockVariation) {
    DataRig nominal;
    DataRig slow(150);
    DataRig fast(75);
    const std::vector<Word> cmds{11, 22, 33, 44, 55};
    const auto ref = nominal.exchange(cmds);
    ASSERT_EQ(ref.size(), cmds.size());
    EXPECT_EQ(slow.exchange(cmds), ref);
    EXPECT_EQ(fast.exchange(cmds), ref);
}

TEST(TesterData, EmptyReceiveReturnsNullopt) {
    DataRig rig;
    EXPECT_FALSE(rig.tsb->host_recv(rig.rx).has_value());
}

}  // namespace
}  // namespace st::tap
