#include <gtest/gtest.h>

#include <memory>

#include "clock/stoppable_clock.hpp"
#include "deadlock/rules.hpp"
#include "sb/kernels/transforms.hpp"
#include "sim/scheduler.hpp"
#include "synchro/token_node.hpp"
#include "synchro/token_ring.hpp"
#include "system/delay_config.hpp"
#include "system/soc.hpp"
#include "system/testbenches.hpp"
#include "verify/io_trace.hpp"
#include "workload/host_port.hpp"
#include "workload/traffic.hpp"

namespace st {
namespace {

// ---------------------------------------------------------------------------
// Mesh ("larger system" future-work item)
// ---------------------------------------------------------------------------

TEST(Mesh, ThreeByThreeRunsLiveAndEverywhereActive) {
    sys::MeshOptions opt;  // 3x3, 12 rings, 24 channels
    sys::Soc soc(sys::make_mesh_spec(opt));
    EXPECT_EQ(soc.num_sbs(), 9u);
    EXPECT_EQ(soc.num_rings(), 12u);
    EXPECT_EQ(soc.num_channels(), 24u);
    ASSERT_TRUE(soc.run_cycles(400, sim::ms(8)));
    EXPECT_FALSE(soc.deadlocked());
    for (std::size_t i = 0; i < soc.num_sbs(); ++i) {
        const auto& k = dynamic_cast<const wl::TrafficKernel&>(
            soc.wrapper(i).block().kernel());
        EXPECT_GT(k.words_consumed(), 10u) << soc.wrapper(i).name();
    }
}

TEST(Mesh, PassesDeadlockRulesAndTimingAudit) {
    const auto spec = sys::make_mesh_spec();
    EXPECT_TRUE(dl::check_rules(spec).ok);
    sys::Soc soc(spec);
    soc.run_cycles(100, sim::ms(8));
    EXPECT_TRUE(soc.audit_timing().all_pass());
}

TEST(Mesh, DeterministicUnderPerturbation) {
    sys::MeshOptions opt;
    opt.width = 2;
    opt.height = 2;
    const auto spec = sys::make_mesh_spec(opt);
    const auto run = [&](const sys::DelayConfig& cfg) {
        sys::Soc soc(sys::apply(spec, cfg));
        soc.run_cycles(140, sim::ms(4));
        return verify::truncated(soc.traces(), 100);
    };
    const auto nominal = run(sys::DelayConfig::nominal(spec));
    auto cfg = sys::DelayConfig::nominal(spec);
    for (std::size_t d = 0; d < cfg.dimensions() - cfg.clock_pct.size(); ++d) {
        cfg.set(d, d % 2 ? 150 : 75);
    }
    const auto diff = verify::diff_traces(nominal, run(cfg));
    EXPECT_TRUE(diff.identical) << diff.first_mismatch;
}

// ---------------------------------------------------------------------------
// N-node token rings (round-robin generalization)
// ---------------------------------------------------------------------------

class MultiNodeRing : public ::testing::Test {
  protected:
    struct Station {
        std::unique_ptr<clk::StoppableClock> clock;
        std::unique_ptr<core::TokenNode> node;
        std::vector<int> enables;  // sb_en per local cycle
        std::unique_ptr<clk::ClockSink> recorder;
    };

    void build(std::size_t n, std::uint32_t hold, std::uint32_t recycle) {
        ring = std::make_unique<core::TokenRing>(sched, "multi");
        for (std::size_t i = 0; i < n; ++i) {
            auto st = std::make_unique<Station>();
            clk::StoppableClock::Params cp;
            cp.base_period = 1000 + 37 * static_cast<sim::Time>(i);
            cp.restart_delay = 100;
            st->clock = std::make_unique<clk::StoppableClock>(
                sched, "clk" + std::to_string(i), cp);
            core::TokenNode::Params np;
            np.hold = hold;
            np.recycle = recycle;
            np.initial_holder = (i == 0);
            st->node = std::make_unique<core::TokenNode>(
                "n" + std::to_string(i), np);
            struct Rec final : clk::ClockSink {
                Station* s = nullptr;
                void sample(std::uint64_t) override {
                    s->enables.push_back(s->node->sb_en() ? 1 : 0);
                }
                void commit(std::uint64_t) override {}
            };
            auto rec = std::make_unique<Rec>();
            rec->s = st.get();
            st->clock->add_sink(st->node.get());
            st->clock->add_sink(rec.get());
            st->recorder = std::move(rec);
            auto* node_ptr = st->node.get();
            auto* clock_ptr = st->clock.get();
            st->clock->set_enable_fn(
                [node_ptr] { return node_ptr->clken(); });
            ring->add_node(node_ptr, 600);
            stations.push_back(std::move(st));
            // Restart duty: watch arrivals per node.
            (void)clock_ptr;
        }
        ring->finalize();
        // Wrap arrivals with clock restarts (normally the wrapper's job).
        ring->on_arrive([this](std::size_t i, sim::Time) {
            arrivals.push_back(i);
        });
        for (auto& st : stations) st->clock->start();
    }

    void post_arrive_restart() {
        // After each event burst, restart any clock whose node recovered.
        for (auto& st : stations) {
            if (st->node->clken()) st->clock->async_restart();
        }
    }

    sim::Scheduler sched;
    std::unique_ptr<core::TokenRing> ring;
    std::vector<std::unique_ptr<Station>> stations;
    std::vector<std::size_t> arrivals;
};

TEST_F(MultiNodeRing, TokenCirculatesRoundRobinWithMutualExclusion) {
    build(4, 3, 40);
    // Pump the simulation; do restart duty between chunks.
    for (int chunk = 0; chunk < 400; ++chunk) {
        sched.run_until(sched.now() + 500);
        post_arrive_restart();
    }
    // Every station received the token several times, in ring order.
    ASSERT_GT(arrivals.size(), 12u);
    for (std::size_t i = 1; i < arrivals.size(); ++i) {
        EXPECT_EQ(arrivals[i], (arrivals[i - 1] + 1) % 4)
            << "arrival " << i << " out of ring order";
    }
    for (const auto& st : stations) {
        EXPECT_GT(st->node->tokens_received(), 2u);
        EXPECT_EQ(st->node->protocol_errors(), 0u);
    }
    // Mutual exclusion of the *hold phases* in cycle-schedule terms: each
    // node is enabled for exactly `hold` cycles per token visit.
    for (const auto& st : stations) {
        int run_len = 0;
        int max_run = 0;
        for (const int e : st->enables) {
            run_len = e ? run_len + 1 : 0;
            max_run = std::max(max_run, run_len);
        }
        EXPECT_LE(max_run, 3);
    }
}

TEST_F(MultiNodeRing, SingleTokenInvariant) {
    build(3, 2, 30);
    for (int chunk = 0; chunk < 200; ++chunk) {
        sched.run_until(sched.now() + 500);
        post_arrive_restart();
        int holders = 0;
        for (const auto& st : stations) {
            if (st->node->phase() == core::TokenNode::Phase::kHolding) {
                ++holders;
            }
        }
        EXPECT_LE(holders, 1);
    }
}

// ---------------------------------------------------------------------------
// I/O SB: host <-> SoC bridge
// ---------------------------------------------------------------------------

TEST(HostPort, RoundTripThroughTheSocIsDeterministic) {
    const auto run = [](const std::vector<Word>& cmds) {
        auto spec = sys::make_pair_spec();
        spec.sbs[0].make_kernel = [] {
            return std::make_unique<wl::HostPortKernel>();
        };
        spec.sbs[1].make_kernel = [] {
            return std::make_unique<sb::TransformKernel>(
                [](Word w) { return w * 3 + 1; });
        };
        sys::Soc soc(spec);
        soc.start();
        auto& host = dynamic_cast<wl::HostPortKernel&>(
            soc.wrapper(0).block().kernel());
        for (const Word c : cmds) host.host_send(c);
        soc.run_cycles(400, sim::ms(4));
        std::vector<Word> got;
        while (auto w = host.host_recv()) got.push_back(*w);
        return got;
    };
    const std::vector<Word> cmds{5, 10, 0, 42, 7};
    const auto a = run(cmds);
    const auto b = run(cmds);
    ASSERT_EQ(a.size(), cmds.size());
    for (std::size_t i = 0; i < cmds.size(); ++i) {
        EXPECT_EQ(a[i], cmds[i] * 3 + 1);
    }
    EXPECT_EQ(a, b);
}

// ---------------------------------------------------------------------------
// Failure injection: the timing audit flags configurations whose bundling
// constraints break — the preconditions of the determinism theorem.
// ---------------------------------------------------------------------------

TEST(FailureInjection, SlowHandshakeWiresFailTheAudit) {
    auto spec = sys::make_pair_spec();
    for (auto& c : spec.channels) {
        c.tail_link.req_delay = 400;  // 2*(400+400) > 1000 ps cycle
        c.tail_link.ack_delay = 400;
    }
    sys::Soc soc(spec);
    soc.run_cycles(50, sim::ms(1));
    const auto report = soc.audit_timing();
    EXPECT_FALSE(report.all_pass());
    EXPECT_NE(report.summary().find("tail_handshake"), std::string::npos);
}

TEST(FailureInjection, SlowFifoVersusShortTokenPathFailsHeadVisibility) {
    sys::PairOptions opt;
    opt.stage_delay = 700;  // traversal 3*700 >> token path 900 + 1000
    auto spec = sys::make_pair_spec(opt);
    sys::Soc soc(spec);
    soc.run_cycles(50, sim::ms(1));
    const auto report = soc.audit_timing();
    EXPECT_FALSE(report.all_pass());
    EXPECT_NE(report.summary().find("head_visibility"), std::string::npos);
}

TEST(FailureInjection, InsufficientRestartDelayIsFlagged) {
    auto spec = sys::make_pair_spec();
    for (auto& sb : spec.sbs) sb.clock.restart_delay = 10;
    sys::Soc soc(spec);
    soc.run_cycles(50, sim::ms(1));
    const auto report = soc.audit_timing();
    EXPECT_FALSE(report.all_pass());
    EXPECT_NE(report.summary().find("restart_vs_pending"), std::string::npos);
}

TEST(FailureInjection, AuditedEnvelopeIsHonestAboutDeterminism) {
    // A configuration *passing* the audit stays deterministic at the
    // extreme perturbation corner (regression companion to the failing
    // cases above).
    const auto spec = sys::make_pair_spec();
    sys::Soc probe(spec);
    probe.run_cycles(10, sim::ms(1));
    ASSERT_TRUE(probe.audit_timing().all_pass());
    const auto run = [&](unsigned fifo_pct) {
        auto cfg = sys::DelayConfig::nominal(spec);
        cfg.fifo_pct.assign(cfg.fifo_pct.size(), fifo_pct);
        sys::Soc soc(sys::apply(spec, cfg));
        soc.run_cycles(140, sim::ms(2));
        return verify::truncated(soc.traces(), 100);
    };
    EXPECT_TRUE(verify::diff_traces(run(100), run(200)).identical);
}

}  // namespace
}  // namespace st
