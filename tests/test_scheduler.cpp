#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "sim/random.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"
#include "sim/wire.hpp"

namespace st::sim {
namespace {

TEST(Scheduler, StartsAtTimeZeroAndQuiescent) {
    Scheduler s;
    EXPECT_EQ(s.now(), 0u);
    EXPECT_TRUE(s.quiescent());
    EXPECT_EQ(s.next_event_time(), kNever);
    EXPECT_FALSE(s.step());
}

TEST(Scheduler, ExecutesEventsInTimeOrder) {
    Scheduler s;
    std::vector<int> order;
    s.schedule_after(30, [&] { order.push_back(3); });
    s.schedule_after(10, [&] { order.push_back(1); });
    s.schedule_after(20, [&] { order.push_back(2); });
    s.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(s.now(), 30u);
}

TEST(Scheduler, SameTimeOrderedByPriorityThenInsertion) {
    Scheduler s;
    std::vector<int> order;
    s.schedule_at(5, Priority::kMonitor, [&] { order.push_back(4); });
    s.schedule_at(5, Priority::kClockEdge, [&] { order.push_back(0); });
    s.schedule_at(5, Priority::kDefault, [&] { order.push_back(2); });
    s.schedule_at(5, Priority::kDefault, [&] { order.push_back(3); });
    s.schedule_at(5, Priority::kCommit, [&] { order.push_back(1); });
    s.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Scheduler, RejectsEventsInThePast) {
    Scheduler s;
    s.schedule_after(10, [] {});
    s.run();
    EXPECT_THROW(s.schedule_at(5, Priority::kDefault, [] {}),
                 std::logic_error);
}

TEST(Scheduler, RunUntilStopsAtBoundaryInclusive) {
    Scheduler s;
    int hits = 0;
    for (Time t = 10; t <= 100; t += 10) {
        s.schedule_at(t, Priority::kDefault, [&] { ++hits; });
    }
    EXPECT_EQ(s.run_until(50), 5u);
    EXPECT_EQ(hits, 5);
    EXPECT_EQ(s.now(), 50u);
    s.run();
    EXPECT_EQ(hits, 10);
}

TEST(Scheduler, RunUntilAdvancesTimeWhenQueueEmpty) {
    Scheduler s;
    s.run_until(1234);
    EXPECT_EQ(s.now(), 1234u);
}

TEST(Scheduler, EventsCanScheduleFurtherEvents) {
    Scheduler s;
    int depth = 0;
    std::function<void()> recurse = [&] {
        if (++depth < 5) s.schedule_after(7, recurse);
    };
    s.schedule_after(7, recurse);
    s.run();
    EXPECT_EQ(depth, 5);
    EXPECT_EQ(s.now(), 35u);
    EXPECT_EQ(s.events_executed(), 5u);
}

TEST(Scheduler, RunHonorsMaxEvents) {
    Scheduler s;
    int hits = 0;
    for (int i = 0; i < 10; ++i) s.schedule_after(1 + i, [&] { ++hits; });
    EXPECT_EQ(s.run(3), 3u);
    EXPECT_EQ(hits, 3);
}

TEST(Wire, DeliversChangesToObserversOnce) {
    Scheduler s;
    Wire<int> w(s, 0);
    int calls = 0;
    int last = -1;
    w.observe([&](const int& v) {
        ++calls;
        last = v;
    });
    w.set(0);  // no change -> no notify
    EXPECT_EQ(calls, 0);
    w.set(7);
    EXPECT_EQ(calls, 1);
    EXPECT_EQ(last, 7);
}

TEST(Wire, DriveAppliesTransportDelay) {
    Scheduler s;
    Wire<int> w(s, 0);
    w.drive(5, 100);
    EXPECT_EQ(w.value(), 0);
    s.run();
    EXPECT_EQ(w.value(), 5);
    EXPECT_EQ(w.last_change(), 100u);
}

TEST(BitWire, EdgeCallbacksFireOnCorrectPolarity) {
    Scheduler s;
    BitWire b(s, false);
    int rises = 0;
    int falls = 0;
    b.on_rise([&] { ++rises; });
    b.on_fall([&] { ++falls; });
    b.toggle();
    b.toggle();
    b.toggle();
    EXPECT_EQ(rises, 2);
    EXPECT_EQ(falls, 1);
}

TEST(Time, FormatAndScaleHelpers) {
    EXPECT_EQ(ns(1), 1000u);
    EXPECT_EQ(us(1), 1000000u);
    EXPECT_EQ(scale_percent(1000, 50), 500u);
    EXPECT_EQ(scale_percent(1000, 200), 2000u);
    EXPECT_EQ(scale_percent(1000, 75), 750u);
    EXPECT_EQ(scale_percent(333, 150), 500u);  // rounds to nearest
    EXPECT_EQ(format_time(500), "500 ps");
    EXPECT_EQ(format_time(kNever), "never");
}

TEST(Scheduler, RaceAuditFlagsSameSlotSameActor) {
    Scheduler s;
    s.set_race_audit(true);
    int actor = 0;
    s.schedule_at(100, Priority::kDefault, EventTag{&actor, "first"},
                  [&] { actor = 1; });
    s.schedule_at(100, Priority::kDefault, EventTag{&actor, "second"},
                  [&] { actor = 2; });
    s.run();
    ASSERT_EQ(s.races().size(), 1u);
    EXPECT_EQ(s.races()[0].actor, &actor);
    EXPECT_EQ(s.races()[0].t, 100u);
    EXPECT_EQ(s.races()[0].first, "first");
    EXPECT_EQ(s.races()[0].second, "second");
}

TEST(Scheduler, RaceAuditCoversSameSlotTaggedSelfDelivery) {
    // An event that schedules *into its own (time, priority) slot* targeting
    // the same actor is ordered only by insertion sequence — exactly the
    // hidden ordering the audit exists to flag, even though the second event
    // did not exist when the slot began executing.
    Scheduler s;
    s.set_race_audit(true);
    int actor = 0;
    s.schedule_at(50, Priority::kDefault, EventTag{&actor, "deliver"}, [&] {
        s.schedule_at(50, Priority::kDefault, EventTag{&actor, "redeliver"},
                      [&] { actor = 2; });
        actor = 1;
    });
    s.run();
    EXPECT_EQ(actor, 2);
    ASSERT_EQ(s.races().size(), 1u);
    EXPECT_EQ(s.races()[0].first, "deliver");
    EXPECT_EQ(s.races()[0].second, "redeliver");
}

TEST(Scheduler, RaceAuditIgnoresDistinctSlotsAndActors) {
    Scheduler s;
    s.set_race_audit(true);
    int a = 0;
    int b = 0;
    // Same slot, different actors: fine.
    s.schedule_at(10, Priority::kDefault, EventTag{&a, "x"}, [] {});
    s.schedule_at(10, Priority::kDefault, EventTag{&b, "y"}, [] {});
    // Same actor, different priorities: deterministically ordered, fine.
    s.schedule_at(20, Priority::kCommit, EventTag{&a, "commit"}, [] {});
    s.schedule_at(20, Priority::kMonitor, EventTag{&a, "monitor"}, [] {});
    // Same actor, different times: fine.
    s.schedule_at(30, Priority::kDefault, EventTag{&a, "t30"}, [] {});
    s.schedule_at(31, Priority::kDefault, EventTag{&a, "t31"}, [] {});
    s.run();
    EXPECT_TRUE(s.races().empty());
}

TEST(Scheduler, InterceptorDropsOnlyTaggedEvents) {
    Scheduler s;
    int tagged = 0;
    int untagged = 0;
    s.set_interceptor([](const EventTag&, Time) { return false; });
    s.schedule_at(10, Priority::kDefault, EventTag{&tagged, "t"},
                  [&] { ++tagged; });
    s.schedule_at(10, Priority::kDefault, [&] { ++untagged; });
    s.run();
    EXPECT_EQ(tagged, 0);   // dropped: the kernel never ran its callback
    EXPECT_EQ(untagged, 1);  // untagged events cannot be faulted
    EXPECT_EQ(s.events_dropped(), 1u);
    EXPECT_EQ(s.events_executed(), 1u);
    EXPECT_EQ(s.now(), 10u);  // a dropped event still advances time
}

TEST(Scheduler, InterceptorSelectsByTag) {
    Scheduler s;
    std::vector<std::string> ran;
    s.set_interceptor([](const EventTag& tag, Time) {
        return std::string(tag.label) != "drop-me";
    });
    int actor = 0;
    s.schedule_at(1, Priority::kDefault, EventTag{&actor, "keep"},
                  [&] { ran.push_back("keep"); });
    s.schedule_at(2, Priority::kDefault, EventTag{&actor, "drop-me"},
                  [&] { ran.push_back("drop-me"); });
    s.schedule_at(3, Priority::kDefault, EventTag{&actor, "keep2"},
                  [&] { ran.push_back("keep2"); });
    s.run();
    EXPECT_EQ(ran, (std::vector<std::string>{"keep", "keep2"}));
    EXPECT_EQ(s.events_dropped(), 1u);
}

// --- event pool + SmallFn callback storage (kernel hot-path overhaul) ---

TEST(Scheduler, EventPoolRecyclesRecordsAcrossRuns) {
    // A long self-rescheduling chain keeps the queue at depth 1; a pool that
    // recycles records must never grow past a single slab no matter how many
    // events execute.
    Scheduler s;
    std::uint64_t left = 10'000;
    struct Hop {
        Scheduler* s;
        std::uint64_t* left;
        void operator()() const {
            if (--*left > 0) s->schedule_after(1, Hop{s, left});
        }
    };
    s.schedule_after(1, Hop{&s, &left});
    s.run();
    EXPECT_EQ(left, 0u);
    EXPECT_EQ(s.events_executed(), 10'000u);
    EXPECT_LE(s.pool_capacity(), 64u);

    // Reuse continues across separate run_until() calls on the same kernel.
    const auto cap = s.pool_capacity();
    for (int round = 0; round < 100; ++round) {
        s.schedule_after(1, [] {});
        s.run();
    }
    EXPECT_EQ(s.pool_capacity(), cap);
}

TEST(Scheduler, LargeCaptureCallbacksSpillToHeapCorrectly) {
    // Captures past SmallFn's inline buffer take the heap path; behaviour
    // must be identical.
    Scheduler s;
    std::array<std::uint64_t, 16> payload{};
    for (std::size_t i = 0; i < payload.size(); ++i) payload[i] = i * 3 + 1;
    std::uint64_t sum = 0;
    s.schedule_after(5, [payload, &sum] {
        for (const auto v : payload) sum += v;
    });
    s.run();
    std::uint64_t want = 0;
    for (const auto v : payload) want += v;
    EXPECT_EQ(sum, want);
}

TEST(Scheduler, AcceptsMoveOnlyCallbacks) {
    // std::function required copyable callables; the kernel's move-only
    // callback does not, so captures can own resources directly.
    Scheduler s;
    int got = 0;
    s.schedule_after(1, [p = std::make_unique<int>(7), &got] { got = *p; });
    s.run();
    EXPECT_EQ(got, 7);
}

TEST(Scheduler, DestroysCallbackStateAfterExecution) {
    Scheduler s;
    const auto token = std::make_shared<int>(1);
    s.schedule_after(1, [token] {});
    EXPECT_EQ(token.use_count(), 2);
    s.run();
    EXPECT_EQ(token.use_count(), 1);  // pool slot must not pin the capture
}

TEST(Scheduler, InterceptorStorageStaysInlineInSteadyState) {
    // The fault-injection surface is consulted on every tagged event, so
    // its storage must be the same small-buffer machinery as the event
    // callbacks — an injector-shaped capture (object pointer + a couple of
    // words of plan state) may never spill to the heap. The static_assert
    // turns a capture grown past the budget into a build error instead of
    // a silent per-campaign allocation.
    Scheduler s;
    std::uint64_t consulted = 0;
    std::uint64_t plan[3] = {0, 0, 0};  // never matches a real timestamp
    auto plan_fn = [&consulted, &plan](const EventTag&, Time t) {
        ++consulted;
        return t != plan[1];
    };
    static_assert(Scheduler::Interceptor::fits_inline<decltype(plan_fn)>(),
                  "injector-shaped interceptor captures must stay inline");
    Scheduler::Interceptor stored(std::move(plan_fn));
    EXPECT_TRUE(stored.is_inline());
    s.set_interceptor(std::move(stored));

    // Steady state: a long tagged self-rescheduling chain with the
    // interceptor armed recycles event records exactly like the untagged
    // chain — the pool's high-water mark stays flat across repeat runs, so
    // neither the callback nor the per-event interceptor consult allocates.
    int actor = 0;
    std::uint64_t left = 5'000;
    struct Hop {
        Scheduler* s;
        int* actor;
        std::uint64_t* left;
        void operator()() const {
            if (--*left > 0) {
                s->schedule_at(s->now() + 1, Priority::kDefault,
                               EventTag{actor, "hop"}, Hop{s, actor, left});
            }
        }
    };
    s.schedule_at(1, Priority::kDefault, EventTag{&actor, "hop"},
                  Hop{&s, &actor, &left});
    s.run();
    EXPECT_EQ(left, 0u);
    EXPECT_EQ(consulted, 5'000u);
    EXPECT_EQ(s.events_dropped(), 0u);
    const auto cap = s.pool_capacity();
    EXPECT_LE(cap, 64u);
    for (int round = 0; round < 50; ++round) {
        std::uint64_t more = 100;
        s.schedule_at(s.now() + 1, Priority::kDefault,
                      EventTag{&actor, "hop"}, Hop{&s, &actor, &more});
        s.run();
    }
    EXPECT_EQ(s.pool_capacity(), cap);
}

TEST(Scheduler, DroppedEventsReleaseTheirCallbacks) {
    Scheduler s;
    int actor = 0;
    const auto token = std::make_shared<int>(1);
    s.set_interceptor([](const EventTag& tag, Time) {
        return std::string(tag.label) != "drop-me";
    });
    s.schedule_at(1, Priority::kDefault, EventTag{&actor, "drop-me"},
                  [token] {});
    s.run();
    EXPECT_EQ(s.events_dropped(), 1u);
    EXPECT_EQ(token.use_count(), 1);
}

TEST(Rng, DeterministicFromSeedAndUnbiasedBounds) {
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());

    Rng c(7);
    for (int i = 0; i < 1000; ++i) {
        const auto v = c.next_in(3, 9);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 9u);
    }
    EXPECT_EQ(c.next_below(0), 0u);
}

}  // namespace
}  // namespace st::sim
