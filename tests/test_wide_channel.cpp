#include <gtest/gtest.h>

#include <stdexcept>

#include "analytic/models.hpp"
#include "async/self_timed_fifo.hpp"
#include "sim/scheduler.hpp"
#include "system/delay_config.hpp"
#include "system/soc.hpp"
#include "system/testbenches.hpp"
#include "verify/io_trace.hpp"
#include "workload/streaming.hpp"

namespace st::sys {
namespace {

const wl::StreamingSink& sink_of(Soc& soc) {
    return dynamic_cast<const wl::StreamingSink&>(
        soc.wrapper(1).block().kernel());
}
const wl::StreamingSource& source_of(Soc& soc) {
    return dynamic_cast<const wl::StreamingSource&>(
        soc.wrapper(0).block().kernel());
}

TEST(WideChannel, RecoverStariParityThroughput) {
    // Paper §5: widening by >= (H+R)/H recovers STARI's 1 word/cycle.
    // H=4, R=6 -> (H+R)/H = 2.5 -> 3 lanes.
    WidePairOptions opt;
    opt.hold = 4;
    opt.lanes = 3;
    Soc soc(make_wide_pair_spec(opt));
    ASSERT_TRUE(soc.run_cycles(3000, sim::ms(60)));
    const auto& sink = sink_of(soc);
    EXPECT_EQ(sink.sequence_errors(), 0u);
    const double rate =
        static_cast<double>(sink.words_consumed()) /
        static_cast<double>(soc.wrapper(1).clock().cycles());
    EXPECT_GT(rate, 0.97);  // ~1 word/cycle after warmup
    // The SB-side synchronous queue stays bounded (steady state).
    EXPECT_LT(source_of(soc).max_queue_depth(), 64u);
}

TEST(WideChannel, SingleLaneIsThroughputLimited) {
    WidePairOptions opt;
    opt.hold = 4;
    opt.lanes = 1;
    Soc soc(make_wide_pair_spec(opt));
    ASSERT_TRUE(soc.run_cycles(2000, sim::ms(60)));
    const auto& sink = sink_of(soc);
    EXPECT_EQ(sink.sequence_errors(), 0u);
    const double rate =
        static_cast<double>(sink.words_consumed()) /
        static_cast<double>(soc.wrapper(1).clock().cycles());
    EXPECT_NEAR(rate, model::synchro_throughput(4, 6), 0.02);
    // Producing 1/cycle into a 0.4/cycle channel: the queue must back up.
    EXPECT_GT(source_of(soc).max_queue_depth(), 100u);
}

/// Lane count sweep: throughput saturates at min(1, lanes * H/(H+R)).
class LaneSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LaneSweep, ThroughputMatchesModel) {
    const std::size_t lanes = GetParam();
    WidePairOptions opt;
    opt.hold = 4;
    opt.lanes = lanes;
    Soc soc(make_wide_pair_spec(opt));
    ASSERT_TRUE(soc.run_cycles(3000, sim::ms(90)));
    const auto& sink = sink_of(soc);
    EXPECT_EQ(sink.sequence_errors(), 0u);
    const double rate =
        static_cast<double>(sink.words_consumed()) /
        static_cast<double>(soc.wrapper(1).clock().cycles());
    const double expected =
        std::min(1.0, static_cast<double>(lanes) *
                          model::synchro_throughput(4, 6));
    EXPECT_NEAR(rate, expected, 0.04) << "lanes=" << lanes;
}

INSTANTIATE_TEST_SUITE_P(Lanes, LaneSweep, ::testing::Values(1u, 2u, 3u, 4u));

TEST(WideChannel, DeterministicUnderPerturbation) {
    WidePairOptions opt;
    opt.lanes = 3;
    const SocSpec spec = make_wide_pair_spec(opt);
    const auto run = [&](const DelayConfig& cfg) {
        Soc soc(apply(spec, cfg));
        soc.run_cycles(150, sim::ms(2));
        return verify::truncated(soc.traces(), 100);
    };
    const auto nominal = run(DelayConfig::nominal(spec));
    for (const unsigned pct : {50u, 200u}) {
        auto cfg = DelayConfig::nominal(spec);
        cfg.fifo_pct.assign(cfg.fifo_pct.size(), pct);
        const auto diff = verify::diff_traces(nominal, run(cfg));
        EXPECT_TRUE(diff.identical) << pct << "%: " << diff.first_mismatch;
    }
}

TEST(WideChannel, ZeroAndOversizedLaneWidthsAreRejected) {
    sim::Scheduler sched;
    achan::SelfTimedFifo::Params p;
    p.data_bits = 0;
    EXPECT_THROW(achan::SelfTimedFifo(sched, "w0", p), std::invalid_argument);
    p.data_bits = 65;  // Word is 64 bits; a 65-bit lane cannot exist
    EXPECT_THROW(achan::SelfTimedFifo(sched, "w65", p), std::invalid_argument);
}

TEST(WideChannel, MaxWidthLaneRoundTripsAllOnes) {
    // data_bits = 64 is the boundary where a naive (1 << bits) - 1 mask
    // shifts out of range. An all-ones word must survive untouched.
    sim::Scheduler sched;
    achan::SelfTimedFifo::Params p;
    p.depth = 3;
    p.data_bits = 64;
    achan::SelfTimedFifo fifo(sched, "wide", p);
    fifo.preload({~0ull, 0x8000000000000001ull});
    EXPECT_EQ(fifo.occupancy(), 2u);
    ASSERT_TRUE(fifo.head_valid());
    EXPECT_EQ(fifo.pop_head(), ~0ull);
    sched.run();  // let the second word ripple to the head
    ASSERT_TRUE(fifo.head_valid());
    EXPECT_EQ(fifo.pop_head(), 0x8000000000000001ull);
}

}  // namespace
}  // namespace st::sys
