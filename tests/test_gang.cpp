// Differential suite for the gang execution engine: blocks of fuzz cases
// advanced in lockstep on persistent structure-of-arrays lanes must be
// *indistinguishable* from the scalar CaseRunner — bit-identical campaign
// summaries at every (jobs, gang width) point, identical per-case reports
// (outcome, detail locus, event counts), peel handoffs that land on the
// same classification as the uninterrupted scalar run, and checkpoints
// portable between the two engines in both directions.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "fuzz/campaign.hpp"
#include "fuzz/gang_runner.hpp"
#include "fuzz/injector.hpp"
#include "fuzz/shrink.hpp"
#include "gang/delay_sweep.hpp"
#include "gang/program.hpp"
#include "sim/random.hpp"
#include "sva/spec_text.hpp"
#include "system/delay_config.hpp"
#include "system/soc.hpp"
#include "system/testbenches.hpp"
#include "verify/determinism.hpp"

namespace {

using namespace st;

std::string read_file(const std::string& path) {
    std::ifstream is(path, std::ios::binary);
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

sys::SocSpec fixture_spec(const char* file) {
    const std::string text =
        read_file(std::string(ST_TESTS_DATA_DIR) + "/" + file);
    return sva::to_spec(sva::parse_spec_text(text));
}

std::string temp_path(const std::string& name) {
    return ::testing::TempDir() + "st_gang_" + name;
}

fuzz::CampaignSummary run_grid_point(const fuzz::Campaign& campaign,
                                     std::uint64_t runs, std::uint64_t seed,
                                     std::size_t jobs, std::size_t gang) {
    fuzz::CampaignControl ctl;
    ctl.gang_width = gang;
    return campaign.run(runs, seed, {}, jobs, ctl);
}

/// The core differential: the summary — counters, retained failure cases
/// with their delay vectors, faults, details and loci — must be equal at
/// every grid point, for this campaign configuration.
void expect_grid_identical(const fuzz::Campaign& campaign,
                           std::uint64_t runs, std::uint64_t seed) {
    const auto reference = run_grid_point(campaign, runs, seed, 1, 1);
    EXPECT_EQ(reference.runs, runs);
    for (const std::size_t jobs : {1, 2, 4}) {
        for (const std::size_t gang : {1, 4, 16}) {
            if (jobs == 1 && gang == 1) continue;
            const auto r = run_grid_point(campaign, runs, seed, jobs, gang);
            EXPECT_TRUE(r == reference)
                << "summary diverged at jobs=" << jobs << " gang=" << gang;
        }
    }
}

// --- shipped specs, fault-free and faulted -------------------------------

TEST(GangDifferential, ShippedSpecsFaultFree) {
    for (const auto& name : sys::named_specs()) {
        SCOPED_TRACE(name);
        fuzz::CampaignConfig cfg;
        cfg.spec_name = name;
        cfg.cycles = 60;
        const fuzz::Campaign campaign(cfg);
        expect_grid_identical(campaign, 18, 17);
    }
}

TEST(GangDifferential, ShippedSpecsAllFaultClasses) {
    for (const auto& name : sys::named_specs()) {
        SCOPED_TRACE(name);
        fuzz::CampaignConfig cfg;
        cfg.spec_name = name;
        cfg.cycles = 60;
        // The bus spec's multi-ring rejects ring-wire fault classes
        // (Injector throws on both engines, pre-existing); exercise the
        // FIFO/restart classes there and the full set everywhere else.
        cfg.classes = name == "bus"
                          ? std::vector<fuzz::FaultClass>{
                                fuzz::FaultClass::kFifoStall,
                                fuzz::FaultClass::kRestartGlitch}
                          : fuzz::all_fault_classes();
        cfg.max_faults = 2;
        const fuzz::Campaign campaign(cfg);
        expect_grid_identical(campaign, 18, 29);
    }
}

// Warm-up prefixes interact with lane rewind (fork restores the shared
// snapshot; non-fork re-simulates the prefix on the lane): both must stay
// on the scalar engine's summary.
TEST(GangDifferential, WarmupForkAndNonFork) {
    for (const bool fork : {true, false}) {
        SCOPED_TRACE(fork ? "fork" : "non-fork");
        fuzz::CampaignConfig cfg;
        cfg.spec_name = "pair";
        cfg.cycles = 80;
        cfg.warmup_cycles = 30;
        cfg.warmup_fork = fork;
        cfg.classes = fuzz::all_fault_classes();
        const fuzz::Campaign campaign(cfg);
        const auto reference = run_grid_point(campaign, 24, 5, 1, 1);
        for (const std::size_t gang : {4, 16}) {
            const auto r = run_grid_point(campaign, 24, 5, 2, gang);
            EXPECT_TRUE(r == reference) << "gang=" << gang;
        }
    }
}

// Batch (offline diff) classification composes with gang lanes too: the
// lanes simply run without checkers and diff at the end.
TEST(GangDifferential, NoStreamingMode) {
    fuzz::CampaignConfig cfg;
    cfg.spec_name = "triangle";
    cfg.cycles = 60;
    cfg.streaming = false;
    cfg.classes = fuzz::all_fault_classes();
    const fuzz::Campaign campaign(cfg);
    const auto reference = run_grid_point(campaign, 16, 3, 1, 1);
    const auto gang = run_grid_point(campaign, 16, 3, 2, 8);
    EXPECT_TRUE(gang == reference);
}

// --- NoC-scale fixture specs ---------------------------------------------

TEST(GangDifferential, TopoFixtureSpecs) {
    for (const char* file : {"mesh_8x8.stspec", "star_64.stspec"}) {
        SCOPED_TRACE(file);
        fuzz::CampaignConfig cfg;
        cfg.spec_name = file;
        cfg.cycles = 50;
        const fuzz::Campaign campaign(cfg, fixture_spec(file));
        const auto reference = run_grid_point(campaign, 6, 11, 1, 1);
        EXPECT_EQ(reference.by_outcome[0], 6u)
            << "synchro-token fixture must be delay-insensitive";
        for (const std::size_t gang : {4, 16}) {
            const auto r = run_grid_point(campaign, 6, 11, 2, gang);
            EXPECT_TRUE(r == reference) << "gang=" << gang;
        }
    }
}

// --- sharding / blocks ----------------------------------------------------

// Gang blocks are formed from *shard-local* case indices, so shard
// summaries produced on the gang engine merge to the same single-process
// summary as scalar shards.
TEST(GangDifferential, ShardedGangMergesToScalarWhole) {
    fuzz::CampaignConfig cfg;
    cfg.spec_name = "pair";
    cfg.cycles = 60;
    cfg.classes = fuzz::all_fault_classes();
    const fuzz::Campaign campaign(cfg);
    const auto whole = run_grid_point(campaign, 30, 7, 1, 1);

    std::vector<fuzz::CampaignSummary> parts;
    for (std::uint64_t i = 0; i < 3; ++i) {
        fuzz::CampaignControl ctl;
        ctl.gang_width = 4;
        ctl.shard = runner::Shard{i, 3};
        parts.push_back(campaign.run(30, 7, {}, 2, ctl));
    }
    EXPECT_TRUE(fuzz::merge_shards(parts) == whole);
}

// The on_run observation stream (global index, case, report) must be the
// scalar stream even though execution happens in lockstep blocks.
TEST(GangDifferential, OnRunSequenceMatchesScalar) {
    fuzz::CampaignConfig cfg;
    cfg.spec_name = "pair";
    cfg.cycles = 60;
    cfg.classes = {fuzz::FaultClass::kTokenDropWire};
    const fuzz::Campaign campaign(cfg);

    using Seen = std::vector<std::pair<std::size_t, fuzz::RunReport>>;
    const auto observe = [&](std::size_t gang_width) {
        Seen seen;
        fuzz::CampaignControl ctl;
        ctl.gang_width = gang_width;
        campaign.run(
            20, 13,
            [&](std::size_t i, const fuzz::FuzzCase&,
                const fuzz::RunReport& r) { seen.emplace_back(i, r); },
            1, ctl);
        return seen;
    };
    EXPECT_TRUE(observe(8) == observe(1));
}

// --- peeling --------------------------------------------------------------

// Force divergence-under-fault: cases whose scalar classification is
// kTraceDivergent keep early-exit off, so the gang lane diverges mid-flight
// and must peel onto the scalar finisher — and still report the same
// outcome, locus, and event count as the uninterrupted scalar run.
TEST(GangPeel, DivergentFaultedCasesPeelToSameClassification) {
    fuzz::CampaignConfig cfg;
    cfg.spec_name = "pair";
    cfg.cycles = 80;
    cfg.classes = fuzz::all_fault_classes();
    cfg.max_faults = 2;
    const fuzz::Campaign campaign(cfg);

    // Draw until we have a block's worth of scalar-divergent cases.
    sim::Rng rng(21);
    std::vector<fuzz::FuzzCase> divergent;
    std::vector<fuzz::RunReport> expected;
    fuzz::CaseRunner scalar(campaign);
    for (int draws = 0; draws < 4000 && divergent.size() < 4; ++draws) {
        const auto c = campaign.random_case(rng);
        const auto r = scalar.run(c);
        if (r.outcome == fuzz::Outcome::kTraceDivergent) {
            divergent.push_back(c);
            expected.push_back(r);
        }
    }
    ASSERT_EQ(divergent.size(), 4u)
        << "seed 21 no longer yields divergent faulted cases; pick another";

    // A small lockstep window: peel checks happen only at window
    // boundaries, and these short cases finish inside the default 2048.
    fuzz::GangRunner gang(campaign, divergent.size(), /*window=*/64);
    const auto reports = gang.run_block(divergent.data(), divergent.size());
    EXPECT_GT(gang.lanes_peeled(), 0u)
        << "divergent faulted lanes must take the peel path";
    ASSERT_EQ(reports.size(), expected.size());
    for (std::size_t i = 0; i < reports.size(); ++i) {
        EXPECT_TRUE(reports[i] == expected[i])
            << "case " << i << ": " << reports[i].detail << " vs "
            << expected[i].detail;
    }
}

// Lanes are reused across blocks: running the same block twice on one
// runner must give identical reports (rewind leaves no residue), and a
// peeled block must not contaminate the next.
TEST(GangPeel, LaneReuseAcrossBlocksIsStateless) {
    fuzz::CampaignConfig cfg;
    cfg.spec_name = "pair";
    cfg.cycles = 60;
    cfg.classes = fuzz::all_fault_classes();
    const fuzz::Campaign campaign(cfg);

    sim::Rng rng(33);
    std::vector<fuzz::FuzzCase> block;
    for (int i = 0; i < 8; ++i) block.push_back(campaign.random_case(rng));

    fuzz::GangRunner gang(campaign, block.size());
    const auto first = gang.run_block(block.data(), block.size());
    const auto second = gang.run_block(block.data(), block.size());
    EXPECT_TRUE(first == second);
}

// --- checkpoints across engines ------------------------------------------

TEST(GangCheckpoint, CrossEngineResumeBothWays) {
    fuzz::CampaignConfig cfg;
    cfg.spec_name = "pair";
    cfg.cycles = 60;
    cfg.classes = fuzz::all_fault_classes();
    const fuzz::Campaign campaign(cfg);
    const auto whole = run_grid_point(campaign, 48, 19, 1, 1);

    struct Leg {
        std::size_t stop_gang;    ///< engine that runs the prefix
        std::size_t resume_gang;  ///< engine that finishes the campaign
    };
    for (const Leg leg : {Leg{1, 4}, Leg{4, 1}}) {
        SCOPED_TRACE(std::to_string(leg.stop_gang) + "->" +
                     std::to_string(leg.resume_gang));
        const std::string path =
            temp_path("xengine_" + std::to_string(leg.stop_gang) + ".ckpt");

        fuzz::CampaignControl stop;
        stop.gang_width = leg.stop_gang;
        stop.checkpoint_path = path;
        stop.stop_after = 20;
        const auto prefix = campaign.run(48, 19, {}, 2, stop);
        EXPECT_EQ(prefix.runs, 20u);

        fuzz::CampaignControl resume;
        resume.gang_width = leg.resume_gang;
        resume.checkpoint_path = path;
        resume.resume = true;
        const auto finished = campaign.run(48, 19, {}, 2, resume);
        EXPECT_TRUE(finished == whole);
        std::remove(path.c_str());
    }
}

// --- shrink / replay ------------------------------------------------------

// A failure retained by a gang campaign shrinks and replays exactly like
// the scalar-retained failure (they are the same case by summary equality;
// this pins the whole loop end to end).
TEST(GangShrink, GangRetainedFailureShrinksAndReplays) {
    fuzz::CampaignConfig cfg;
    cfg.spec_name = "pair";
    cfg.cycles = 80;
    cfg.classes = {fuzz::FaultClass::kTokenDropWire};
    const fuzz::Campaign campaign(cfg);

    const auto gang_summary = run_grid_point(campaign, 40, 7, 2, 8);
    const auto scalar_summary = run_grid_point(campaign, 40, 7, 1, 1);
    ASSERT_TRUE(gang_summary == scalar_summary);
    ASSERT_FALSE(gang_summary.failures.empty());

    const auto& failure = gang_summary.failures.front();
    const auto shrunk = fuzz::shrink(campaign, failure.c);
    EXPECT_EQ(shrunk.outcome, failure.report.outcome);
    // The shrunk case replays deterministically on both engines.
    const auto scalar_replay = campaign.run_case(shrunk.minimal);
    EXPECT_EQ(scalar_replay.outcome, shrunk.outcome);
    fuzz::GangRunner gang(campaign, 1);
    const auto replayed = gang.run_block(&shrunk.minimal, 1);
    ASSERT_EQ(replayed.size(), 1u);
    EXPECT_TRUE(replayed[0] == scalar_replay);
}

// --- determinism-harness gang front-end ----------------------------------

// The DelayConfig sweep runner (st_topo --gang) against the scalar batch
// harness: identical SweepResults over the whole (jobs, gang) grid on a
// NoC-scale fixture.
TEST(GangHarness, DelaySweepMatchesScalarAcrossGrid) {
    const sys::SocSpec spec = fixture_spec("star_64.stspec");
    const std::uint64_t cycles = 50;
    const std::uint64_t horizon = cycles + 40;
    const auto run = [&](const sys::DelayConfig& dc) {
        sys::Soc soc(sys::apply(spec, dc));
        soc.run_cycles(horizon, sim::ms(2000));
        return soc.traces();
    };
    verify::DeterminismHarness<sys::DelayConfig> harness(
        run, sys::DelayConfig::nominal(spec), cycles);
    harness.capture_nominal();

    std::vector<sys::DelayConfig> sweep;
    sim::Rng rng(77);
    for (int k = 0; k < 6; ++k) {
        auto dc = sys::DelayConfig::nominal(spec);
        const unsigned percents[4] = {50, 75, 150, 200};
        for (std::size_t d = 0; d < dc.dimensions(); ++d) {
            const bool clock =
                d >= dc.dimensions() - dc.clock_pct.size();
            const unsigned pct = percents[rng.next_below(4)];
            dc.set(d, clock ? std::max(75u, pct) : pct);
        }
        sweep.push_back(dc);
    }

    const auto reference = harness.sweep(sweep, 1);
    EXPECT_TRUE(reference.all_match());
    for (const std::size_t gang : {2, 4}) {
        harness.set_gang(
            [&spec, &harness, horizon, gang] {
                return gang::make_delay_block_runner(
                    spec, harness.golden_index(), horizon, sim::ms(2000),
                    gang);
            },
            gang);
        for (const std::size_t jobs : {1, 2}) {
            const auto r = harness.sweep(sweep, jobs);
            EXPECT_TRUE(r == reference)
                << "jobs=" << jobs << " gang=" << gang;
        }
    }
}

// --- shared program & delta rewind ---------------------------------------

/// Exercise one campaign's lane through a fault-free case, a faulted case,
/// and a peel-style mid-run handoff; after each, both rewind flavours —
/// the plan (delta) path and a fresh strict full restore — must land the
/// lane on the program's exact pristine state, witnessed by re-serializing
/// the live state and comparing digests.
void check_rewind_equivalence(const fuzz::Campaign& campaign,
                              std::uint64_t cycles) {
    gang::Lane::Options opt;
    opt.golden = &campaign.golden_index();
    opt.monitor = true;
    gang::Lane lane(campaign.program(), opt);
    const std::uint64_t pristine = lane.pristine().digest();
    const sim::Time deadline = sim::ms(2000);

    sim::Rng rng(91);
    const auto dirty = [&](gang::Lane& l, const fuzz::FuzzCase& c,
                           std::uint64_t n) {
        // Injector scoped per case, as GangRunner scopes its own: rewinds
        // happen with no per-case hooks attached.
        fuzz::Injector inj(l.soc(), c.faults);
        sys::apply_live(l.soc(), c.delays);
        l.soc().run_cycles(n, deadline);
    };

    // Fault-free, then faulted: plan rewind vs strict restore, both back
    // to the pristine digest.
    for (int k = 0; k < 2; ++k) {
        fuzz::FuzzCase c = campaign.random_case(rng);
        if (k == 0) c.faults.clear();
        SCOPED_TRACE(k == 0 ? "fault-free" : "faulted");

        lane.rewind();
        dirty(lane, c, cycles);
        lane.rewind();  // delta path through the shared plan
        EXPECT_EQ(lane.soc().pristine_image().digest(), pristine);

        dirty(lane, c, cycles);
        lane.soc().reset_from_image(lane.pristine());  // strict full parse
        EXPECT_EQ(lane.soc().pristine_image().digest(), pristine);
    }

    // Peel-style handoff: image the lane mid-case with the injector's
    // counters, restore onto a finisher lane sharing the same program, run
    // the finisher out — then plan-rewind both lanes. The handoff must
    // leave no residue in either.
    const fuzz::FuzzCase pc = campaign.random_case(rng);
    lane.rewind();
    snap::Snapshot handoff;
    {
        fuzz::Injector inj(lane.soc(), pc.faults);
        sys::apply_live(lane.soc(), pc.delays);
        lane.soc().run_cycles(cycles / 2, deadline);
        lane.soc().settle();
        handoff = lane.soc().save_snapshot(
            [&inj](snap::StateWriter& w) { inj.save_state(w); });
    }
    gang::Lane finisher(campaign.program(), opt);
    EXPECT_EQ(finisher.program().get(), lane.program().get());
    {
        fuzz::Injector fin_inj(finisher.soc(), pc.faults,
                               /*defer_spurious=*/true);
        finisher.rewind(handoff, [&fin_inj](snap::StateReader& r) {
            fin_inj.restore_state(r);
        });
        sys::apply_live(finisher.soc(), pc.delays);
        finisher.soc().run_cycles(cycles, deadline);
    }
    finisher.rewind();
    EXPECT_EQ(finisher.soc().pristine_image().digest(), pristine);
    lane.rewind();
    EXPECT_EQ(lane.soc().pristine_image().digest(), pristine);
}

TEST(GangRewind, PlanRewindMatchesStrictRestoreShippedSpecs) {
    for (const auto& name : sys::named_specs()) {
        SCOPED_TRACE(name);
        fuzz::CampaignConfig cfg;
        cfg.spec_name = name;
        cfg.cycles = 40;
        cfg.classes = name == "bus"
                          ? std::vector<fuzz::FaultClass>{
                                fuzz::FaultClass::kFifoStall,
                                fuzz::FaultClass::kRestartGlitch}
                          : fuzz::all_fault_classes();
        const fuzz::Campaign campaign(cfg);
        check_rewind_equivalence(campaign, cfg.cycles);
    }
}

TEST(GangRewind, PlanRewindMatchesStrictRestoreTopoFixtures) {
    for (const char* file : {"mesh_8x8.stspec", "star_64.stspec"}) {
        SCOPED_TRACE(file);
        fuzz::CampaignConfig cfg;
        cfg.spec_name = file;
        cfg.cycles = 40;
        cfg.classes = fuzz::all_fault_classes();
        const fuzz::Campaign campaign(cfg, fixture_spec(file));
        check_rewind_equivalence(campaign, cfg.cycles);
    }
}

// --- program registry sharing --------------------------------------------

// Every holder on one spec key — lanes, the campaign itself, a sweep
// context's DelaySweepRunner — must hand back the identical Program
// object, not an equivalent copy: one elaboration, one pristine image, one
// plan per process.
TEST(GangProgram, LanesCampaignAndSweepContextShareOneProgram) {
    fuzz::CampaignConfig cfg;
    cfg.spec_name = "pair";
    cfg.cycles = 40;
    const fuzz::Campaign campaign(cfg);

    const sys::SocSpec spec = sys::make_named_spec("pair");
    gang::Lane a(spec, {});
    gang::Lane b(spec, {});
    EXPECT_EQ(a.program().get(), b.program().get());
    EXPECT_EQ(a.program().get(), campaign.program().get());

    gang::DelaySweepRunner sweep(spec, campaign.golden_index(), cfg.cycles,
                                 sim::ms(2000), /*width=*/2);
    EXPECT_EQ(sweep.program().get(), campaign.program().get());

    // A perturbed spec is a different program: its key is cleared, so it
    // gets a private elaboration, never the nominal registry entry.
    auto dc = sys::DelayConfig::nominal(spec);
    dc.set(0, 150);
    const sys::SocSpec perturbed = sys::apply(spec, dc);
    EXPECT_TRUE(perturbed.program_key.empty());
    EXPECT_NE(gang::Program::get(perturbed).get(), a.program().get());
}

// A concurrent race on one never-seen key must yield exactly one registry
// entry and one elaboration (construction happens under the registry
// lock); every thread gets the identical pointer. Run under TSan in CI.
TEST(GangProgram, ConcurrentGetYieldsExactlyOneEntry) {
    sys::SocSpec spec = sys::make_named_spec("pair");
    spec.program_key = "test:concurrent-get";
    const std::uint64_t misses0 = gang::Program::registry_misses();
    const std::uint64_t hits0 = gang::Program::registry_hits();
    const std::size_t entries0 = gang::Program::registry_entries();

    constexpr int kThreads = 8;
    std::atomic<int> ready{0};
    std::atomic<bool> go{false};
    std::vector<std::shared_ptr<const gang::Program>> got(kThreads);
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int i = 0; i < kThreads; ++i) {
        threads.emplace_back([&, i] {
            ready.fetch_add(1);
            while (!go.load()) std::this_thread::yield();
            got[static_cast<std::size_t>(i)] = gang::Program::get(spec);
        });
    }
    while (ready.load() < kThreads) std::this_thread::yield();
    go.store(true);
    for (auto& t : threads) t.join();

    for (int i = 0; i < kThreads; ++i) {
        ASSERT_NE(got[static_cast<std::size_t>(i)], nullptr);
        EXPECT_EQ(got[static_cast<std::size_t>(i)].get(), got[0].get());
    }
    EXPECT_EQ(gang::Program::registry_misses(), misses0 + 1);
    EXPECT_EQ(gang::Program::registry_hits(),
              hits0 + static_cast<std::uint64_t>(kThreads) - 1);
    EXPECT_EQ(gang::Program::registry_entries(), entries0 + 1);
}

}  // namespace
