// Differential suite for the gang execution engine: blocks of fuzz cases
// advanced in lockstep on persistent structure-of-arrays lanes must be
// *indistinguishable* from the scalar CaseRunner — bit-identical campaign
// summaries at every (jobs, gang width) point, identical per-case reports
// (outcome, detail locus, event counts), peel handoffs that land on the
// same classification as the uninterrupted scalar run, and checkpoints
// portable between the two engines in both directions.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "fuzz/campaign.hpp"
#include "fuzz/gang_runner.hpp"
#include "fuzz/shrink.hpp"
#include "gang/delay_sweep.hpp"
#include "sim/random.hpp"
#include "sva/spec_text.hpp"
#include "system/delay_config.hpp"
#include "system/soc.hpp"
#include "system/testbenches.hpp"
#include "verify/determinism.hpp"

namespace {

using namespace st;

std::string read_file(const std::string& path) {
    std::ifstream is(path, std::ios::binary);
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

sys::SocSpec fixture_spec(const char* file) {
    const std::string text =
        read_file(std::string(ST_TESTS_DATA_DIR) + "/" + file);
    return sva::to_spec(sva::parse_spec_text(text));
}

std::string temp_path(const std::string& name) {
    return ::testing::TempDir() + "st_gang_" + name;
}

fuzz::CampaignSummary run_grid_point(const fuzz::Campaign& campaign,
                                     std::uint64_t runs, std::uint64_t seed,
                                     std::size_t jobs, std::size_t gang) {
    fuzz::CampaignControl ctl;
    ctl.gang_width = gang;
    return campaign.run(runs, seed, {}, jobs, ctl);
}

/// The core differential: the summary — counters, retained failure cases
/// with their delay vectors, faults, details and loci — must be equal at
/// every grid point, for this campaign configuration.
void expect_grid_identical(const fuzz::Campaign& campaign,
                           std::uint64_t runs, std::uint64_t seed) {
    const auto reference = run_grid_point(campaign, runs, seed, 1, 1);
    EXPECT_EQ(reference.runs, runs);
    for (const std::size_t jobs : {1, 2, 4}) {
        for (const std::size_t gang : {1, 4, 16}) {
            if (jobs == 1 && gang == 1) continue;
            const auto r = run_grid_point(campaign, runs, seed, jobs, gang);
            EXPECT_TRUE(r == reference)
                << "summary diverged at jobs=" << jobs << " gang=" << gang;
        }
    }
}

// --- shipped specs, fault-free and faulted -------------------------------

TEST(GangDifferential, ShippedSpecsFaultFree) {
    for (const auto& name : sys::named_specs()) {
        SCOPED_TRACE(name);
        fuzz::CampaignConfig cfg;
        cfg.spec_name = name;
        cfg.cycles = 60;
        const fuzz::Campaign campaign(cfg);
        expect_grid_identical(campaign, 18, 17);
    }
}

TEST(GangDifferential, ShippedSpecsAllFaultClasses) {
    for (const auto& name : sys::named_specs()) {
        SCOPED_TRACE(name);
        fuzz::CampaignConfig cfg;
        cfg.spec_name = name;
        cfg.cycles = 60;
        // The bus spec's multi-ring rejects ring-wire fault classes
        // (Injector throws on both engines, pre-existing); exercise the
        // FIFO/restart classes there and the full set everywhere else.
        cfg.classes = name == "bus"
                          ? std::vector<fuzz::FaultClass>{
                                fuzz::FaultClass::kFifoStall,
                                fuzz::FaultClass::kRestartGlitch}
                          : fuzz::all_fault_classes();
        cfg.max_faults = 2;
        const fuzz::Campaign campaign(cfg);
        expect_grid_identical(campaign, 18, 29);
    }
}

// Warm-up prefixes interact with lane rewind (fork restores the shared
// snapshot; non-fork re-simulates the prefix on the lane): both must stay
// on the scalar engine's summary.
TEST(GangDifferential, WarmupForkAndNonFork) {
    for (const bool fork : {true, false}) {
        SCOPED_TRACE(fork ? "fork" : "non-fork");
        fuzz::CampaignConfig cfg;
        cfg.spec_name = "pair";
        cfg.cycles = 80;
        cfg.warmup_cycles = 30;
        cfg.warmup_fork = fork;
        cfg.classes = fuzz::all_fault_classes();
        const fuzz::Campaign campaign(cfg);
        const auto reference = run_grid_point(campaign, 24, 5, 1, 1);
        for (const std::size_t gang : {4, 16}) {
            const auto r = run_grid_point(campaign, 24, 5, 2, gang);
            EXPECT_TRUE(r == reference) << "gang=" << gang;
        }
    }
}

// Batch (offline diff) classification composes with gang lanes too: the
// lanes simply run without checkers and diff at the end.
TEST(GangDifferential, NoStreamingMode) {
    fuzz::CampaignConfig cfg;
    cfg.spec_name = "triangle";
    cfg.cycles = 60;
    cfg.streaming = false;
    cfg.classes = fuzz::all_fault_classes();
    const fuzz::Campaign campaign(cfg);
    const auto reference = run_grid_point(campaign, 16, 3, 1, 1);
    const auto gang = run_grid_point(campaign, 16, 3, 2, 8);
    EXPECT_TRUE(gang == reference);
}

// --- NoC-scale fixture specs ---------------------------------------------

TEST(GangDifferential, TopoFixtureSpecs) {
    for (const char* file : {"mesh_8x8.stspec", "star_64.stspec"}) {
        SCOPED_TRACE(file);
        fuzz::CampaignConfig cfg;
        cfg.spec_name = file;
        cfg.cycles = 50;
        const fuzz::Campaign campaign(cfg, fixture_spec(file));
        const auto reference = run_grid_point(campaign, 6, 11, 1, 1);
        EXPECT_EQ(reference.by_outcome[0], 6u)
            << "synchro-token fixture must be delay-insensitive";
        for (const std::size_t gang : {4, 16}) {
            const auto r = run_grid_point(campaign, 6, 11, 2, gang);
            EXPECT_TRUE(r == reference) << "gang=" << gang;
        }
    }
}

// --- sharding / blocks ----------------------------------------------------

// Gang blocks are formed from *shard-local* case indices, so shard
// summaries produced on the gang engine merge to the same single-process
// summary as scalar shards.
TEST(GangDifferential, ShardedGangMergesToScalarWhole) {
    fuzz::CampaignConfig cfg;
    cfg.spec_name = "pair";
    cfg.cycles = 60;
    cfg.classes = fuzz::all_fault_classes();
    const fuzz::Campaign campaign(cfg);
    const auto whole = run_grid_point(campaign, 30, 7, 1, 1);

    std::vector<fuzz::CampaignSummary> parts;
    for (std::uint64_t i = 0; i < 3; ++i) {
        fuzz::CampaignControl ctl;
        ctl.gang_width = 4;
        ctl.shard = runner::Shard{i, 3};
        parts.push_back(campaign.run(30, 7, {}, 2, ctl));
    }
    EXPECT_TRUE(fuzz::merge_shards(parts) == whole);
}

// The on_run observation stream (global index, case, report) must be the
// scalar stream even though execution happens in lockstep blocks.
TEST(GangDifferential, OnRunSequenceMatchesScalar) {
    fuzz::CampaignConfig cfg;
    cfg.spec_name = "pair";
    cfg.cycles = 60;
    cfg.classes = {fuzz::FaultClass::kTokenDropWire};
    const fuzz::Campaign campaign(cfg);

    using Seen = std::vector<std::pair<std::size_t, fuzz::RunReport>>;
    const auto observe = [&](std::size_t gang_width) {
        Seen seen;
        fuzz::CampaignControl ctl;
        ctl.gang_width = gang_width;
        campaign.run(
            20, 13,
            [&](std::size_t i, const fuzz::FuzzCase&,
                const fuzz::RunReport& r) { seen.emplace_back(i, r); },
            1, ctl);
        return seen;
    };
    EXPECT_TRUE(observe(8) == observe(1));
}

// --- peeling --------------------------------------------------------------

// Force divergence-under-fault: cases whose scalar classification is
// kTraceDivergent keep early-exit off, so the gang lane diverges mid-flight
// and must peel onto the scalar finisher — and still report the same
// outcome, locus, and event count as the uninterrupted scalar run.
TEST(GangPeel, DivergentFaultedCasesPeelToSameClassification) {
    fuzz::CampaignConfig cfg;
    cfg.spec_name = "pair";
    cfg.cycles = 80;
    cfg.classes = fuzz::all_fault_classes();
    cfg.max_faults = 2;
    const fuzz::Campaign campaign(cfg);

    // Draw until we have a block's worth of scalar-divergent cases.
    sim::Rng rng(21);
    std::vector<fuzz::FuzzCase> divergent;
    std::vector<fuzz::RunReport> expected;
    fuzz::CaseRunner scalar(campaign);
    for (int draws = 0; draws < 4000 && divergent.size() < 4; ++draws) {
        const auto c = campaign.random_case(rng);
        const auto r = scalar.run(c);
        if (r.outcome == fuzz::Outcome::kTraceDivergent) {
            divergent.push_back(c);
            expected.push_back(r);
        }
    }
    ASSERT_EQ(divergent.size(), 4u)
        << "seed 21 no longer yields divergent faulted cases; pick another";

    // A small lockstep window: peel checks happen only at window
    // boundaries, and these short cases finish inside the default 2048.
    fuzz::GangRunner gang(campaign, divergent.size(), /*window=*/64);
    const auto reports = gang.run_block(divergent.data(), divergent.size());
    EXPECT_GT(gang.lanes_peeled(), 0u)
        << "divergent faulted lanes must take the peel path";
    ASSERT_EQ(reports.size(), expected.size());
    for (std::size_t i = 0; i < reports.size(); ++i) {
        EXPECT_TRUE(reports[i] == expected[i])
            << "case " << i << ": " << reports[i].detail << " vs "
            << expected[i].detail;
    }
}

// Lanes are reused across blocks: running the same block twice on one
// runner must give identical reports (rewind leaves no residue), and a
// peeled block must not contaminate the next.
TEST(GangPeel, LaneReuseAcrossBlocksIsStateless) {
    fuzz::CampaignConfig cfg;
    cfg.spec_name = "pair";
    cfg.cycles = 60;
    cfg.classes = fuzz::all_fault_classes();
    const fuzz::Campaign campaign(cfg);

    sim::Rng rng(33);
    std::vector<fuzz::FuzzCase> block;
    for (int i = 0; i < 8; ++i) block.push_back(campaign.random_case(rng));

    fuzz::GangRunner gang(campaign, block.size());
    const auto first = gang.run_block(block.data(), block.size());
    const auto second = gang.run_block(block.data(), block.size());
    EXPECT_TRUE(first == second);
}

// --- checkpoints across engines ------------------------------------------

TEST(GangCheckpoint, CrossEngineResumeBothWays) {
    fuzz::CampaignConfig cfg;
    cfg.spec_name = "pair";
    cfg.cycles = 60;
    cfg.classes = fuzz::all_fault_classes();
    const fuzz::Campaign campaign(cfg);
    const auto whole = run_grid_point(campaign, 48, 19, 1, 1);

    struct Leg {
        std::size_t stop_gang;    ///< engine that runs the prefix
        std::size_t resume_gang;  ///< engine that finishes the campaign
    };
    for (const Leg leg : {Leg{1, 4}, Leg{4, 1}}) {
        SCOPED_TRACE(std::to_string(leg.stop_gang) + "->" +
                     std::to_string(leg.resume_gang));
        const std::string path =
            temp_path("xengine_" + std::to_string(leg.stop_gang) + ".ckpt");

        fuzz::CampaignControl stop;
        stop.gang_width = leg.stop_gang;
        stop.checkpoint_path = path;
        stop.stop_after = 20;
        const auto prefix = campaign.run(48, 19, {}, 2, stop);
        EXPECT_EQ(prefix.runs, 20u);

        fuzz::CampaignControl resume;
        resume.gang_width = leg.resume_gang;
        resume.checkpoint_path = path;
        resume.resume = true;
        const auto finished = campaign.run(48, 19, {}, 2, resume);
        EXPECT_TRUE(finished == whole);
        std::remove(path.c_str());
    }
}

// --- shrink / replay ------------------------------------------------------

// A failure retained by a gang campaign shrinks and replays exactly like
// the scalar-retained failure (they are the same case by summary equality;
// this pins the whole loop end to end).
TEST(GangShrink, GangRetainedFailureShrinksAndReplays) {
    fuzz::CampaignConfig cfg;
    cfg.spec_name = "pair";
    cfg.cycles = 80;
    cfg.classes = {fuzz::FaultClass::kTokenDropWire};
    const fuzz::Campaign campaign(cfg);

    const auto gang_summary = run_grid_point(campaign, 40, 7, 2, 8);
    const auto scalar_summary = run_grid_point(campaign, 40, 7, 1, 1);
    ASSERT_TRUE(gang_summary == scalar_summary);
    ASSERT_FALSE(gang_summary.failures.empty());

    const auto& failure = gang_summary.failures.front();
    const auto shrunk = fuzz::shrink(campaign, failure.c);
    EXPECT_EQ(shrunk.outcome, failure.report.outcome);
    // The shrunk case replays deterministically on both engines.
    const auto scalar_replay = campaign.run_case(shrunk.minimal);
    EXPECT_EQ(scalar_replay.outcome, shrunk.outcome);
    fuzz::GangRunner gang(campaign, 1);
    const auto replayed = gang.run_block(&shrunk.minimal, 1);
    ASSERT_EQ(replayed.size(), 1u);
    EXPECT_TRUE(replayed[0] == scalar_replay);
}

// --- determinism-harness gang front-end ----------------------------------

// The DelayConfig sweep runner (st_topo --gang) against the scalar batch
// harness: identical SweepResults over the whole (jobs, gang) grid on a
// NoC-scale fixture.
TEST(GangHarness, DelaySweepMatchesScalarAcrossGrid) {
    const sys::SocSpec spec = fixture_spec("star_64.stspec");
    const std::uint64_t cycles = 50;
    const std::uint64_t horizon = cycles + 40;
    const auto run = [&](const sys::DelayConfig& dc) {
        sys::Soc soc(sys::apply(spec, dc));
        soc.run_cycles(horizon, sim::ms(2000));
        return soc.traces();
    };
    verify::DeterminismHarness<sys::DelayConfig> harness(
        run, sys::DelayConfig::nominal(spec), cycles);
    harness.capture_nominal();

    std::vector<sys::DelayConfig> sweep;
    sim::Rng rng(77);
    for (int k = 0; k < 6; ++k) {
        auto dc = sys::DelayConfig::nominal(spec);
        const unsigned percents[4] = {50, 75, 150, 200};
        for (std::size_t d = 0; d < dc.dimensions(); ++d) {
            const bool clock =
                d >= dc.dimensions() - dc.clock_pct.size();
            const unsigned pct = percents[rng.next_below(4)];
            dc.set(d, clock ? std::max(75u, pct) : pct);
        }
        sweep.push_back(dc);
    }

    const auto reference = harness.sweep(sweep, 1);
    EXPECT_TRUE(reference.all_match());
    for (const std::size_t gang : {2, 4}) {
        harness.set_gang(
            [&spec, &harness, horizon, gang] {
                return gang::make_delay_block_runner(
                    spec, harness.golden_index(), horizon, sim::ms(2000),
                    gang);
            },
            gang);
        for (const std::size_t jobs : {1, 2}) {
            const auto r = harness.sweep(sweep, jobs);
            EXPECT_TRUE(r == reference)
                << "jobs=" << jobs << " gang=" << gang;
        }
    }
}

}  // namespace
