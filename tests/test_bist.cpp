#include <gtest/gtest.h>

#include "system/delay_config.hpp"
#include "system/soc.hpp"
#include "system/testbenches.hpp"
#include "tap/bist.hpp"
#include "tap/test_sb.hpp"
#include "tap/tester.hpp"
#include "workload/traffic.hpp"

namespace st::tap {
namespace {

TEST(Misr, CompactsAndDistinguishesStreams) {
    Misr a;
    Misr b;
    const std::vector<bool> s1{1, 0, 1, 1, 0, 0, 1, 0, 1, 1};
    std::vector<bool> s2 = s1;
    s2[4] = !s2[4];
    a.shift_bits(s1);
    b.shift_bits(s2);
    EXPECT_NE(a.signature(), b.signature());

    Misr c;
    c.shift_bits(s1);
    EXPECT_EQ(a.signature(), c.signature());
}

struct BistRig {
    explicit BistRig(const sys::SocSpec& spec)
        : soc(spec), tsb(soc, TestSb::Params{}) {
        core::TokenNode::Params mission;
        mission.hold = 2;
        mission.recycle = 12;
        core::TokenNode::Params test_side;
        test_side.hold = 2;
        test_side.recycle = 30;
        test_side.initial_holder = true;
        tsb.attach_ring(0, mission, test_side, 500, 500);
        tsb.attach_ring(1, mission, test_side, 500, 500);
        tsb.add_kernel_scan_targets();  // BIST patterns only touch kernels
        soc.start();
        tsb.hold_all_tokens(true);
        tsb.wait_for_system_stop();
    }

    std::uint32_t run(std::size_t patterns, std::uint64_t seed) {
        TesterDriver drv(tsb);
        drv.reset();
        BistController bist(drv, tsb);
        return bist.run(patterns, seed, /*steps_between=*/1).signature;
    }

    sys::Soc soc;
    TestSb tsb;
};

TEST(Bist, SignatureIsReproducibleAcrossIdenticalDies) {
    const auto spec = sys::make_pair_spec();
    BistRig die1(spec);
    BistRig die2(spec);
    const auto s1 = die1.run(6, 0xb157);
    const auto s2 = die2.run(6, 0xb157);
    EXPECT_EQ(s1, s2);
}

TEST(Bist, SignatureSurvivesDelayCorners) {
    // The BIST point of deterministic GALS: one golden signature per
    // configuration, valid at every process corner.
    const auto spec = sys::make_pair_spec();
    BistRig nominal(spec);
    const auto golden = nominal.run(6, 0xb157);

    auto cfg = sys::DelayConfig::nominal(spec);
    cfg.fifo_pct.assign(cfg.fifo_pct.size(), 200);
    cfg.ring_ab_pct.assign(cfg.ring_ab_pct.size(), 50);
    BistRig corner(sys::apply(spec, cfg));
    EXPECT_EQ(corner.run(6, 0xb157), golden);
}

TEST(Bist, SignatureDetectsInjectedFault) {
    const auto spec = sys::make_pair_spec();
    BistRig good(spec);
    const auto golden = good.run(5, 0xfa57);

    BistRig faulty(spec);
    // Stuck-at-style fault: corrupt one architectural bit before the run.
    auto& kernel = faulty.soc.wrapper(0).block().kernel();
    auto state = kernel.scan_state();
    state[0] ^= 0x40;  // flip one LFSR bit
    kernel.load_state(state);
    EXPECT_NE(faulty.run(5, 0xfa57), golden);
}

TEST(Bist, DifferentSeedsGiveDifferentSignatures) {
    const auto spec = sys::make_pair_spec();
    BistRig rig(spec);
    const auto s1 = rig.run(4, 0x1111);
    BistRig rig2(spec);
    const auto s2 = rig2.run(4, 0x2222);
    EXPECT_NE(s1, s2);
}

}  // namespace
}  // namespace st::tap
