// Unit tests for the fault-injection fuzzing harness: fault vocabulary,
// injector hook wiring, campaign classification, greedy shrinking, and the
// replayable repro format. The end-to-end smoke campaigns live in CTest via
// the st_fuzz CLI (tools/CMakeLists.txt); these tests pin the semantics the
// CLI builds on.

#include <gtest/gtest.h>

#include <stdexcept>

#include "fuzz/campaign.hpp"
#include "fuzz/fault.hpp"
#include "fuzz/injector.hpp"
#include "fuzz/repro.hpp"
#include "fuzz/shrink.hpp"
#include "system/soc.hpp"
#include "system/testbenches.hpp"

namespace {

using namespace st;

fuzz::CampaignConfig pair_config() {
    fuzz::CampaignConfig cfg;
    cfg.spec_name = "pair";
    cfg.cycles = 100;
    return cfg;
}

// --- fault vocabulary ---

TEST(Fault, NamesRoundTripThroughParse) {
    for (const fuzz::FaultClass cls : fuzz::all_fault_classes()) {
        const auto parsed = fuzz::parse_fault_class(fuzz::fault_class_name(cls));
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(*parsed, cls);
    }
    EXPECT_FALSE(fuzz::parse_fault_class("no-such-fault").has_value());
}

TEST(Fault, DescribeMatchesReproGrammar) {
    fuzz::Fault f;
    f.cls = fuzz::FaultClass::kTokenDropWire;
    f.unit = 3;
    f.side = 1;
    f.nth = 2;
    f.value = 7;
    EXPECT_EQ(f.describe(), "token-drop unit=3 side=1 nth=2 value=7");
}

TEST(FuzzCase, ComplexityCountsFaultsAndPerturbedDims) {
    const auto spec = sys::make_named_spec("pair");
    fuzz::FuzzCase c;
    c.delays = sys::DelayConfig::nominal(spec);
    EXPECT_EQ(c.complexity(), 0u);
    c.delays.set(0, 150);
    c.delays.set(2, 50);
    c.faults.push_back(fuzz::Fault{});
    EXPECT_EQ(c.complexity(), 3u);
}

// --- outcomes ---

TEST(Outcome, NamesRoundTripThroughParse) {
    for (std::size_t i = 0; i < fuzz::kNumOutcomes; ++i) {
        const auto o = static_cast<fuzz::Outcome>(i);
        const auto parsed = fuzz::parse_outcome(fuzz::outcome_name(o));
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(*parsed, o);
    }
    EXPECT_FALSE(fuzz::parse_outcome("flaky").has_value());
}

// --- injector validation ---

TEST(Injector, RejectsOutOfRangeUnits) {
    const auto spec = sys::make_named_spec("pair");

    fuzz::Fault bad_ring;
    bad_ring.cls = fuzz::FaultClass::kTokenDropWire;
    bad_ring.unit = 99;
    {
        sys::Soc soc(spec);
        EXPECT_THROW(fuzz::Injector(soc, {bad_ring}), std::invalid_argument);
    }

    fuzz::Fault bad_side;
    bad_side.cls = fuzz::FaultClass::kTokenDuplicate;
    bad_side.side = 2;
    {
        sys::Soc soc(spec);
        EXPECT_THROW(fuzz::Injector(soc, {bad_side}), std::invalid_argument);
    }

    fuzz::Fault bad_channel;
    bad_channel.cls = fuzz::FaultClass::kFifoStall;
    bad_channel.unit = 99;
    {
        sys::Soc soc(spec);
        EXPECT_THROW(fuzz::Injector(soc, {bad_channel}),
                     std::invalid_argument);
    }

    fuzz::Fault bad_sb;
    bad_sb.cls = fuzz::FaultClass::kRestartGlitch;
    bad_sb.unit = 99;
    {
        sys::Soc soc(spec);
        EXPECT_THROW(fuzz::Injector(soc, {bad_sb}), std::invalid_argument);
    }
}

// --- campaign classification ---

TEST(Campaign, NominalCaseIsDeterministic) {
    const fuzz::Campaign campaign(pair_config());
    EXPECT_FALSE(campaign.golden().empty());

    fuzz::FuzzCase nominal;
    nominal.delays = sys::DelayConfig::nominal(campaign.spec());
    const fuzz::RunReport r = campaign.run_case(nominal);
    EXPECT_EQ(r.outcome, fuzz::Outcome::kDeterministic);
    EXPECT_TRUE(r.goal_met);
    EXPECT_EQ(r.faults_fired, 0u);
}

TEST(Campaign, PerturbedDelaysStayDeterministic) {
    // The paper's §5 property: benign delay perturbation never changes the
    // cycle-indexed I/O sequences.
    const fuzz::Campaign campaign(pair_config());
    fuzz::FuzzCase c;
    c.delays = sys::DelayConfig::nominal(campaign.spec());
    for (auto& pct : c.delays.fifo_pct) pct = 200;
    for (auto& pct : c.delays.ring_ab_pct) pct = 50;
    for (auto& pct : c.delays.ring_ba_pct) pct = 150;
    const fuzz::RunReport r = campaign.run_case(c);
    EXPECT_EQ(r.outcome, fuzz::Outcome::kDeterministic);
}

TEST(Campaign, TokenDropDeadlocksAndIsNeverSilent) {
    const fuzz::Campaign campaign(pair_config());
    fuzz::FuzzCase c;
    c.delays = sys::DelayConfig::nominal(campaign.spec());
    fuzz::Fault drop;
    drop.cls = fuzz::FaultClass::kTokenDropWire;
    drop.unit = 0;
    drop.side = 1;
    drop.nth = 1;
    c.faults.push_back(drop);

    const fuzz::RunReport r = campaign.run_case(c);
    EXPECT_EQ(r.outcome, fuzz::Outcome::kDeadlocked);
    EXPECT_EQ(r.faults_fired, 1u);
    EXPECT_FALSE(r.goal_met);
    EXPECT_FALSE(r.detail.empty());
}

TEST(Campaign, TokenDuplicateTripsProtocolInvariant) {
    const fuzz::Campaign campaign(pair_config());
    fuzz::FuzzCase c;
    c.delays = sys::DelayConfig::nominal(campaign.spec());
    fuzz::Fault dup;
    dup.cls = fuzz::FaultClass::kTokenDuplicate;
    dup.unit = 0;
    dup.side = 0;
    dup.nth = 1;
    c.faults.push_back(dup);

    const fuzz::RunReport r = campaign.run_case(c);
    EXPECT_EQ(r.outcome, fuzz::Outcome::kInvariantViolation);
    EXPECT_GT(r.protocol_errors, 0u);
}

TEST(Campaign, RestartGlitchIsAbsorbed) {
    // A delayed asynchronous restart shifts wall-clock time only; in local
    // cycle index space nothing moves — the paper's robustness argument.
    const fuzz::Campaign campaign(pair_config());
    fuzz::FuzzCase c;
    c.delays = sys::DelayConfig::nominal(campaign.spec());
    // Slow the ring so tokens arrive late and the clocks actually stop —
    // at nominal pair timing there is no restart for the glitch to hit.
    for (auto& pct : c.delays.ring_ab_pct) pct = 200;
    for (auto& pct : c.delays.ring_ba_pct) pct = 200;
    fuzz::Fault glitch;
    glitch.cls = fuzz::FaultClass::kRestartGlitch;
    glitch.unit = 0;
    glitch.nth = 1;
    glitch.value = 700;
    c.faults.push_back(glitch);

    const fuzz::RunReport r = campaign.run_case(c);
    EXPECT_EQ(r.outcome, fuzz::Outcome::kDeterministic);
    EXPECT_EQ(r.faults_fired, 1u);
}

TEST(Campaign, StuckDataDiverges) {
    const fuzz::Campaign campaign(pair_config());
    fuzz::FuzzCase c;
    c.delays = sys::DelayConfig::nominal(campaign.spec());
    fuzz::Fault stuck;
    stuck.cls = fuzz::FaultClass::kFifoStuckData;
    stuck.unit = 0;
    stuck.nth = 1;
    stuck.value = 0xdeadbeefull;
    c.faults.push_back(stuck);

    const fuzz::RunReport r = campaign.run_case(c);
    EXPECT_EQ(r.outcome, fuzz::Outcome::kTraceDivergent);
    EXPECT_FALSE(r.detail.empty());
}

TEST(Campaign, RunCaseIsDeterministic) {
    const fuzz::Campaign campaign(pair_config());
    sim::Rng rng(99);
    fuzz::CampaignConfig cfg = pair_config();
    cfg.classes = fuzz::all_fault_classes();
    const fuzz::Campaign faulty(cfg);
    const fuzz::FuzzCase c = faulty.random_case(rng);
    const fuzz::RunReport a = faulty.run_case(c);
    const fuzz::RunReport b = faulty.run_case(c);
    EXPECT_EQ(a.outcome, b.outcome);
    EXPECT_EQ(a.events, b.events);
    EXPECT_EQ(a.faults_fired, b.faults_fired);
}

TEST(Campaign, RandomCaseRespectsConfig) {
    fuzz::CampaignConfig cfg = pair_config();
    cfg.classes = {fuzz::FaultClass::kTokenDropWire};
    cfg.max_faults = 2;
    const fuzz::Campaign campaign(cfg);
    sim::Rng rng(5);
    for (int i = 0; i < 50; ++i) {
        const fuzz::FuzzCase c = campaign.random_case(rng);
        EXPECT_GE(c.faults.size(), 1u);
        EXPECT_LE(c.faults.size(), 2u);
        for (const auto& f : c.faults) {
            EXPECT_EQ(f.cls, fuzz::FaultClass::kTokenDropWire);
        }
        for (const unsigned pct : c.delays.clock_pct) EXPECT_GE(pct, 75u);
    }
}

TEST(Campaign, SummaryCountsAndCollectsFailures) {
    fuzz::CampaignConfig cfg = pair_config();
    cfg.classes = {fuzz::FaultClass::kTokenDropWire};
    const fuzz::Campaign campaign(cfg);
    const fuzz::CampaignSummary s = campaign.run(10, 7);
    EXPECT_EQ(s.runs, 10u);
    EXPECT_EQ(s.by_outcome[static_cast<std::size_t>(
                  fuzz::Outcome::kDeadlocked)],
              10u);
    EXPECT_EQ(s.runs_with_fault_fired, 10u);
    EXPECT_EQ(s.failures.size(), 10u);
    EXPECT_EQ(s.failures_dropped, 0u);
}

TEST(Campaign, SummaryCapsRetainedFailuresAndCountsOverflow) {
    // Every token-drop run fails, so a 40-run campaign overflows the
    // kMaxFailures retention bound; the overflow is counted, not silently
    // discarded, and the aggregate counters still cover every run.
    fuzz::CampaignConfig cfg = pair_config();
    cfg.classes = {fuzz::FaultClass::kTokenDropWire};
    const fuzz::Campaign campaign(cfg);
    const std::uint64_t runs = fuzz::CampaignSummary::kMaxFailures + 8;
    const fuzz::CampaignSummary s = campaign.run(runs, 7);
    EXPECT_EQ(s.runs, runs);
    EXPECT_EQ(s.failures.size(), fuzz::CampaignSummary::kMaxFailures);
    EXPECT_EQ(s.failures_dropped, 8u);
    std::uint64_t classified = 0;
    for (const auto c : s.by_outcome) classified += c;
    EXPECT_EQ(classified, runs);
}

// --- shrinking ---

TEST(Shrink, ReducesDecoyedCaseToSingleFault) {
    const fuzz::Campaign campaign(pair_config());
    fuzz::FuzzCase c;
    c.delays = sys::DelayConfig::nominal(campaign.spec());
    c.delays.set(0, 150);  // decoy delay perturbations
    c.delays.set(3, 150);
    fuzz::Fault drop;
    drop.cls = fuzz::FaultClass::kTokenDropWire;
    drop.unit = 0;
    drop.side = 1;
    drop.nth = 1;
    fuzz::Fault decoy;
    decoy.cls = fuzz::FaultClass::kRestartGlitch;
    decoy.unit = 0;
    decoy.nth = 1;
    decoy.value = 300;
    c.faults = {drop, decoy};
    ASSERT_EQ(c.complexity(), 4u);

    const fuzz::ShrinkResult res = fuzz::shrink(campaign, c);
    EXPECT_EQ(res.outcome, fuzz::Outcome::kDeadlocked);
    EXPECT_EQ(res.minimal.complexity(), 1u);
    ASSERT_EQ(res.minimal.faults.size(), 1u);
    EXPECT_EQ(res.minimal.faults[0], drop);
    EXPECT_EQ(campaign.run_case(res.minimal).outcome,
              fuzz::Outcome::kDeadlocked);
    EXPECT_GT(res.attempts, 1u);
}

TEST(Shrink, RejectsPassingCase) {
    const fuzz::Campaign campaign(pair_config());
    fuzz::FuzzCase ok;
    ok.delays = sys::DelayConfig::nominal(campaign.spec());
    EXPECT_THROW(fuzz::shrink(campaign, ok), std::invalid_argument);
}

// --- repro format ---

TEST(Repro, RoundTripsThroughText) {
    const auto spec = sys::make_named_spec("pair");
    fuzz::FuzzCase c;
    c.delays = sys::DelayConfig::nominal(spec);
    c.delays.set(2, 150);
    c.delays.set(5, 75);
    fuzz::Fault drop;
    drop.cls = fuzz::FaultClass::kTokenDropWire;
    drop.unit = 0;
    drop.side = 1;
    drop.nth = 2;
    c.faults.push_back(drop);

    const fuzz::Repro out = fuzz::Repro::from_case(
        "pair", 120, fuzz::Outcome::kDeadlocked, c);
    const fuzz::Repro in = fuzz::Repro::parse(out.to_text());
    EXPECT_EQ(in.spec_name, "pair");
    EXPECT_EQ(in.cycles, 120u);
    ASSERT_TRUE(in.expected.has_value());
    EXPECT_EQ(*in.expected, fuzz::Outcome::kDeadlocked);
    EXPECT_EQ(in.to_case(spec), c);
}

TEST(Repro, ParseSkipsCommentsAndBlankLines) {
    const fuzz::Repro r = fuzz::Repro::parse(
        "# header comment\n"
        "\n"
        "spec triangle   # trailing comment\n"
        "cycles 80\n");
    EXPECT_EQ(r.spec_name, "triangle");
    EXPECT_EQ(r.cycles, 80u);
    EXPECT_FALSE(r.expected.has_value());
}

TEST(Repro, ParseRejectsMalformedInput) {
    EXPECT_THROW(fuzz::Repro::parse("cycles 10\n"), std::invalid_argument);
    EXPECT_THROW(fuzz::Repro::parse("spec pair\nbogus 1\n"),
                 std::invalid_argument);
    EXPECT_THROW(fuzz::Repro::parse("spec pair\noutcome flaky\n"),
                 std::invalid_argument);
    EXPECT_THROW(fuzz::Repro::parse("spec pair\ndelay 3\n"),
                 std::invalid_argument);
    EXPECT_THROW(
        fuzz::Repro::parse("spec pair\nfault no-such unit=0 side=0 nth=1 "
                           "value=0\n"),
        std::invalid_argument);
    EXPECT_THROW(
        fuzz::Repro::parse("spec pair\nfault token-drop unit=x side=0 nth=1 "
                           "value=0\n"),
        std::invalid_argument);
}

TEST(Repro, HeaderRoundTripsVersionAndProvenance) {
    fuzz::Repro out;
    out.spec_name = "pair";
    out.cycles = 90;
    out.seed = 12345;
    out.jobs = 4;
    const std::string text = out.to_text();
    EXPECT_EQ(text.rfind("st-fuzz-repro v2 seed=12345 jobs=4\n", 0), 0u);

    const fuzz::Repro in = fuzz::Repro::parse(text);
    EXPECT_EQ(in.version, fuzz::Repro::kFormatVersion);
    ASSERT_TRUE(in.seed.has_value());
    EXPECT_EQ(*in.seed, 12345u);
    ASSERT_TRUE(in.jobs.has_value());
    EXPECT_EQ(*in.jobs, 4u);
}

TEST(Repro, HeaderlessFilesParseAsVersionOne) {
    const fuzz::Repro r = fuzz::Repro::parse("spec pair\ncycles 50\n");
    EXPECT_EQ(r.version, 1u);
    EXPECT_FALSE(r.seed.has_value());
    EXPECT_FALSE(r.jobs.has_value());
}

TEST(Repro, RejectsUnknownFormatVersionWithClearDiagnostic) {
    try {
        fuzz::Repro::parse("st-fuzz-repro v3\nspec pair\n");
        FAIL() << "v3 header must be rejected";
    } catch (const std::invalid_argument& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("version 3"), std::string::npos) << what;
        EXPECT_NE(what.find("v2"), std::string::npos) << what;
    }
    EXPECT_THROW(fuzz::Repro::parse("st-fuzz-repro v0\nspec pair\n"),
                 std::invalid_argument);
    EXPECT_THROW(fuzz::Repro::parse("st-fuzz-repro 2\nspec pair\n"),
                 std::invalid_argument);
    EXPECT_THROW(fuzz::Repro::parse("st-fuzz-repro v2 color=red\n"),
                 std::invalid_argument);
    // The header must lead the file.
    EXPECT_THROW(fuzz::Repro::parse("spec pair\nst-fuzz-repro v2\n"),
                 std::invalid_argument);
}

TEST(Repro, ToCaseRejectsOutOfRangeDimension) {
    const auto spec = sys::make_named_spec("pair");
    fuzz::Repro r;
    r.spec_name = "pair";
    r.delays.emplace_back(999, 150);
    EXPECT_THROW(r.to_case(spec), std::invalid_argument);
}

// --- named spec catalog (used by st_lint and st_fuzz) ---

TEST(NamedSpecs, CatalogBuildsEverySpec) {
    const auto& names = sys::named_specs();
    EXPECT_EQ(names.size(), 6u);
    for (const auto& name : names) {
        const sys::SocSpec spec = sys::make_named_spec(name);
        EXPECT_FALSE(spec.sbs.empty()) << name;
    }
    EXPECT_THROW(sys::make_named_spec("nonesuch"), std::invalid_argument);
}

}  // namespace
