#include <gtest/gtest.h>

#include "deadlock/rules.hpp"
#include "deadlock/waitfor.hpp"
#include "system/delay_config.hpp"
#include "system/soc.hpp"
#include "system/testbenches.hpp"
#include "workload/traffic.hpp"

namespace st::dl {
namespace {

/// Three SBs in a directed cycle of rings, each holding one token and
/// starving the next: recycle registers far too small, guaranteeing a
/// cyclic wait.
sys::SocSpec starved_cycle_spec() {
    sys::SocSpec spec;
    for (int i = 0; i < 3; ++i) {
        sys::SbSpec sb;
        sb.name = "sb" + std::to_string(i);
        sb.clock.base_period = 1000;
        sb.clock.restart_delay = 200;
        sb.make_kernel = [i] {
            return std::make_unique<wl::TrafficKernel>(0x1000u + static_cast<unsigned>(i));
        };
        spec.sbs.push_back(sb);
    }
    for (std::size_t i = 0; i < 3; ++i) {
        sys::RingSpec ring;
        ring.name = "ring" + std::to_string(i);
        ring.sb_a = i;
        ring.sb_b = (i + 1) % 3;
        ring.node_a.hold = 4;
        ring.node_a.recycle = 1;  // hopelessly under-provisioned
        ring.node_a.initial_holder = true;
        ring.node_b.hold = 4;
        ring.node_b.recycle = 1;
        ring.node_b.initial_holder = false;
        ring.delay_ab = 900;
        ring.delay_ba = 900;
        spec.rings.push_back(ring);
    }
    return spec;
}

TEST(DeadlockRules, WellProvisionedConfigsPass) {
    EXPECT_TRUE(check_rules(sys::make_pair_spec()).ok);
    EXPECT_TRUE(check_rules(sys::make_triangle_spec()).ok);
    EXPECT_TRUE(check_rules(sys::make_chain_spec()).ok);
}

TEST(DeadlockRules, StarvedCycleIsRejected) {
    const auto report = check_rules(starved_cycle_spec());
    EXPECT_FALSE(report.ok);
    EXPECT_FALSE(report.violations.empty());
    EXPECT_NE(report.summary().find("DEADLOCK RISK"), std::string::npos);
}

TEST(DeadlockRules, SlackRestoresSafety) {
    auto spec = starved_cycle_spec();
    for (auto& ring : spec.rings) {
        ring.node_a.recycle = 40;
        ring.node_b.recycle = 40;
    }
    const auto report = check_rules(spec);
    EXPECT_TRUE(report.ok) << report.summary();
}

TEST(DeadlockRules, PairStallBoundsAreSmallAndBounded) {
    // A single-ring pair can never deadlock; the conservative alignment
    // term may report up to ~one clock period of possible stall per token
    // round trip, but the bound must converge and stay below a period.
    const auto report = check_rules(sys::make_pair_spec());
    ASSERT_EQ(report.stall_bound.size(), 2u);
    EXPECT_TRUE(report.ok);
    EXPECT_LE(report.stall_bound[0], 1000u);
    EXPECT_LE(report.stall_bound[1], 1000u);
}

TEST(DeadlockRuntime, StarvedCycleActuallyDeadlocks) {
    sys::Soc soc(starved_cycle_spec());
    EXPECT_FALSE(soc.run_cycles(100, sim::ms(1)));  // goal never reached
    EXPECT_TRUE(soc.deadlocked());
    const auto diag = diagnose(soc);
    EXPECT_TRUE(diag.deadlocked);
    EXPECT_EQ(diag.cycle.size(), 3u);
    EXPECT_FALSE(diag.edges.empty());
    EXPECT_NE(diag.summary().find("DEADLOCK"), std::string::npos);
}

TEST(DeadlockRuntime, HealthySystemDiagnosesClean) {
    sys::Soc soc(sys::make_triangle_spec());
    soc.run_cycles(200, sim::ms(1));
    EXPECT_FALSE(soc.deadlocked());
    EXPECT_FALSE(diagnose(soc).deadlocked);
    EXPECT_EQ(diagnose(soc).summary(), "no deadlock");
}

/// Paper §5: "Whether or not deadlock occurs is deterministic; thus, no
/// detection or recovery methodology is needed." The same configuration
/// deadlocks identically — at the same local cycle counts — under every
/// delay perturbation.
TEST(DeadlockRuntime, DeadlockIsDeterministicAcrossPerturbations) {
    const auto spec = starved_cycle_spec();
    std::vector<std::uint64_t> nominal_cycles;
    {
        sys::Soc soc(spec);
        soc.run_cycles(100, sim::ms(1));
        ASSERT_TRUE(soc.deadlocked());
        for (std::size_t i = 0; i < soc.num_sbs(); ++i) {
            nominal_cycles.push_back(soc.wrapper(i).clock().cycles());
        }
    }
    for (const unsigned pct : {50u, 75u, 150u, 200u}) {
        auto cfg = sys::DelayConfig::nominal(spec);
        cfg.ring_ab_pct.assign(cfg.ring_ab_pct.size(), pct);
        cfg.ring_ba_pct.assign(cfg.ring_ba_pct.size(), pct);
        sys::Soc soc(sys::apply(spec, cfg));
        soc.run_cycles(100, sim::ms(1));
        EXPECT_TRUE(soc.deadlocked()) << pct;
        for (std::size_t i = 0; i < soc.num_sbs(); ++i) {
            EXPECT_EQ(soc.wrapper(i).clock().cycles(), nominal_cycles[i])
                << "SB " << i << " at " << pct << "%";
        }
    }
}

}  // namespace
}  // namespace st::dl
