#include <gtest/gtest.h>

#include <sstream>

#include "async/four_phase.hpp"
#include "async/self_timed_fifo.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"
#include "system/param_rom.hpp"
#include "system/soc.hpp"
#include "system/testbenches.hpp"
#include "system/vcd_probe.hpp"
#include "tap/tap_controller.hpp"
#include "workload/traffic.hpp"

namespace st {
namespace {

// ---------------------------------------------------------------------------
// Scheduler stress property
// ---------------------------------------------------------------------------

class SchedulerStress : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedulerStress, TimeIsMonotoneAndEveryEventFiresAtItsTimestamp) {
    sim::Scheduler sched;
    sim::Rng rng(GetParam());
    std::size_t fired = 0;
    sim::Time last = 0;
    constexpr std::size_t kEvents = 3000;
    for (std::size_t i = 0; i < kEvents; ++i) {
        const sim::Time at = rng.next_below(100000);
        const auto pri = static_cast<sim::Priority>(rng.next_below(5));
        sched.schedule_at(at, pri, [&, at] {
            EXPECT_EQ(sched.now(), at);
            EXPECT_GE(at, last);
            last = at;
            ++fired;
            // Events may spawn more events, always in the future.
            if (rng.next_bool(0.2)) {
                const sim::Time d = 1 + rng.next_below(500);
                sched.schedule_after(d, [&, expect = at + d] {
                    EXPECT_EQ(sched.now(), expect);
                    ++fired;
                });
            }
        });
    }
    sched.run();
    EXPECT_GE(fired, kEvents);
    EXPECT_EQ(sched.events_executed(), fired);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerStress,
                         ::testing::Values(1u, 42u, 0xdeadu));

// ---------------------------------------------------------------------------
// FIFO property under a randomly stalling consumer
// ---------------------------------------------------------------------------

class FifoRandomConsumer : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FifoRandomConsumer, OrderAndConservationSurviveArbitraryStalls) {
    sim::Scheduler sched;
    achan::SelfTimedFifo::Params fp;
    fp.depth = 5;
    fp.stage_delay = 80;
    achan::SelfTimedFifo fifo(sched, "f", fp);
    achan::FourPhaseLink producer(sched, "p", {32, 20, 20,
                                               achan::LinkProtocol::kFourPhase});
    producer.bind_sink(&fifo.tail_sink());
    fifo.attach_tail_link(&producer);

    struct FlakySink final : achan::LinkSink {
        bool ready = false;
        std::vector<Word> words;
        bool can_accept() const override { return ready; }
        void accept(Word w) override { words.push_back(w); }
    } sink;
    fifo.head_link().bind_sink(&sink);

    sim::Rng rng(GetParam());
    // Producer: 200 words back to back.
    int sent = 0;
    std::function<void()> next = [&] {
        if (sent < 200) producer.send(static_cast<Word>(1000 + sent++));
    };
    producer.on_complete(next);
    next();
    // Consumer: readiness toggles at random times.
    for (int i = 0; i < 400; ++i) {
        sched.schedule_after(rng.next_below(200000),
                             sim::Priority::kDefault, [&] {
                                 sink.ready = !sink.ready;
                                 fifo.head_link().poke();
                             });
    }
    // Final drain.
    sched.run();
    sink.ready = true;
    fifo.head_link().poke();
    sched.run();

    ASSERT_EQ(sink.words.size(), 200u);
    for (std::size_t i = 0; i < sink.words.size(); ++i) {
        EXPECT_EQ(sink.words[i], 1000 + i);
    }
    EXPECT_EQ(fifo.occupancy(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FifoRandomConsumer,
                         ::testing::Values(7u, 99u, 12345u));

// ---------------------------------------------------------------------------
// TAP random-walk property
// ---------------------------------------------------------------------------

TEST(TapRandomWalk, ControllerNeverMisbehavesAndAlwaysRecovers) {
    tap::TapController tap("walk", 8, 0x12345678u);
    sim::Rng rng(0x7ap5);
    for (int i = 0; i < 20000; ++i) {
        tap.set_tms(rng.next_bool());
        tap.set_tdi(rng.next_bool());
        tap.sample(static_cast<std::uint64_t>(i));
        tap.commit(static_cast<std::uint64_t>(i));
        // State stays inside the 16-state space (enum soundness) and the
        // name table covers it.
        EXPECT_NE(std::string(to_string(tap.state())), "?");
    }
    // Five TMS=1 edges recover Test-Logic-Reset from anywhere.
    tap.set_tms(true);
    for (int i = 0; i < 5; ++i) {
        tap.sample(0);
        tap.commit(0);
    }
    EXPECT_EQ(tap.state(), tap::TapState::kTestLogicReset);
    EXPECT_EQ(tap.current_mnemonic(), "IDCODE");
}

// ---------------------------------------------------------------------------
// Enable duty-cycle property: sb_en high exactly H out of every H+R cycles
// ---------------------------------------------------------------------------

class DutyCycle
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {
};

TEST_P(DutyCycle, EnableScheduleIsExactlyPeriodic) {
    const auto [h, r] = GetParam();
    sys::PairOptions opt;
    opt.hold = h;
    opt.recycle_override = r;
    sys::Soc soc(sys::make_pair_spec(opt));
    std::vector<bool> enables;
    soc.start();
    // Sample-phase recorder: reads the registered sb_en valid for the
    // *current* cycle (an edge observer would see the post-commit value,
    // which belongs to the next cycle).
    struct Rec final : clk::ClockSink {
        const core::TokenNode* node = nullptr;
        std::vector<bool>* out = nullptr;
        void sample(std::uint64_t) override {
            out->push_back(node->sb_en());
        }
        void commit(std::uint64_t) override {}
    } rec;
    rec.node = &soc.wrapper(0).node(0);
    rec.out = &enables;
    soc.wrapper(0).clock().add_sink(&rec);
    soc.run_cycles(30 * (h + r), sim::ms(30));
    // Steady state: every window of (h+r) samples contains exactly h highs.
    const std::size_t period = h + r;
    std::size_t start = 2 * period;  // skip startup alignment
    for (std::size_t w = start; w + period < enables.size(); w += period) {
        std::size_t highs = 0;
        for (std::size_t i = 0; i < period; ++i) highs += enables[w + i];
        EXPECT_EQ(highs, h) << "window at " << w;
    }
}

INSTANTIATE_TEST_SUITE_P(
    HoldRecycle, DutyCycle,
    ::testing::Values(std::make_tuple(2u, 4u), std::make_tuple(4u, 6u),
                      std::make_tuple(4u, 12u), std::make_tuple(8u, 10u)));

// ---------------------------------------------------------------------------
// ParamRom
// ---------------------------------------------------------------------------

TEST(ParamRom, WordImageRoundTripsExactly) {
    sys::ParamRom rom;
    rom.add(sys::ParamRom::NodeEntry{0, 0, 6, 9});
    rom.add(sys::ParamRom::NodeEntry{2, 1, 3, 17});
    rom.add(sys::ParamRom::ClockEntry{1, 4});
    const auto words = rom.to_words();
    EXPECT_EQ(sys::ParamRom::from_words(words), rom);
    EXPECT_THROW(sys::ParamRom::from_words({}), std::invalid_argument);
    auto truncated = words;
    truncated.pop_back();
    EXPECT_THROW(sys::ParamRom::from_words(truncated), std::invalid_argument);
}

TEST(ParamRom, AppliesToSpecAndLiveSoc) {
    auto spec = sys::make_pair_spec();
    sys::ParamRom rom;
    rom.add(sys::ParamRom::NodeEntry{0, 0, 5, 11});
    rom.add(sys::ParamRom::ClockEntry{1, 2});
    rom.apply(spec);
    EXPECT_EQ(spec.rings[0].node_a.hold, 5u);
    EXPECT_EQ(spec.rings[0].node_a.recycle, 11u);
    EXPECT_EQ(spec.sbs[1].clock.divider, 2u);

    sys::Soc soc(sys::make_pair_spec());
    rom.apply(soc);
    EXPECT_EQ(soc.ring_node(0, 0).hold_register(), 5u);
    EXPECT_EQ(soc.ring_node(0, 0).recycle_register(), 11u);
    EXPECT_EQ(soc.wrapper(1).clock().divider(), 2u);
}

// ---------------------------------------------------------------------------
// VcdProbe smoke: valid header, all signal kinds present, plenty of changes
// ---------------------------------------------------------------------------

TEST(VcdProbe, CapturesWholeSystemActivity) {
    sys::Soc soc(sys::make_pair_spec());
    std::ostringstream out;
    sys::VcdProbe probe(soc, out);
    soc.run_cycles(200, sim::ms(2));
    const std::string s = out.str();
    EXPECT_NE(s.find("$enddefinitions"), std::string::npos);
    EXPECT_NE(s.find("alpha.clk"), std::string::npos);
    EXPECT_NE(s.find("alpha.node0.sb_en"), std::string::npos);
    EXPECT_NE(s.find(".occupancy"), std::string::npos);
    EXPECT_NE(s.find("ring_ab.pass"), std::string::npos);
    // Plenty of timestamped activity.
    EXPECT_GT(std::count(s.begin(), s.end(), '#'), 100);
}

// ---------------------------------------------------------------------------
// Trace probe consistency with kernel counters
// ---------------------------------------------------------------------------

TEST(TraceProbe, EventCountsMatchKernelCounters) {
    sys::Soc soc(sys::make_pair_spec());
    soc.run_cycles(300, sim::ms(2));
    const auto traces = soc.traces();
    const auto& alpha = dynamic_cast<const wl::TrafficKernel&>(
        soc.wrapper(0).block().kernel());
    std::size_t in_events = 0;
    std::size_t out_events = 0;
    for (const auto& e : traces.at("alpha").events) {
        (e.dir == verify::IoEvent::Dir::kIn ? in_events : out_events) += 1;
    }
    EXPECT_EQ(in_events, alpha.words_consumed());
    EXPECT_EQ(out_events, alpha.words_emitted());
}

}  // namespace
}  // namespace st
