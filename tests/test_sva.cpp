// Tests for the sva static-verification layer: token-flow graph lowering,
// the five proof-obligation passes, witness concretization + dynamic
// cross-check, the .stspec text format, the ring-of-rings generator, and the
// repro-corpus pipeline. The headline properties:
//
//  * every shipped testbench spec is statically PROVEN on all obligations;
//  * every fixture defect is flagged by its pass and the concretized witness
//    replays to the recorded verdict (CONFIRMED, or RETRACTED for the
//    deliberate over-approximation demo);
//  * the verifier agrees with dl::check_rules on deadlock verdicts;
//  * output is invariant under --jobs.

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include <gtest/gtest.h>

#include "deadlock/rules.hpp"
#include "fuzz/repro.hpp"
#include "lint/lint.hpp"
#include "sva/fixtures.hpp"
#include "sva/graph.hpp"
#include "sva/spec_text.hpp"
#include "sva/verify.hpp"
#include "system/delay_config.hpp"
#include "system/testbenches.hpp"

namespace {

using namespace st;

std::string read_file(const std::filesystem::path& p) {
    std::ifstream in(p, std::ios::binary);
    EXPECT_TRUE(in) << "cannot open " << p;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

bool has_nonproven(const std::vector<sva::Obligation>& obs,
                   const std::string& pass) {
    for (const auto& ob : obs) {
        if (ob.pass == pass && ob.verdict != sva::Verdict::kProven) {
            return true;
        }
    }
    return false;
}

// --- lowering --------------------------------------------------------------

TEST(SvaGraph, LowersPairGeometry) {
    const auto g = sva::lower(sys::make_pair_spec());
    EXPECT_TRUE(g.ok());
    EXPECT_EQ(g.sbs.size(), 2u);
    EXPECT_EQ(g.rings.size(), 1u);
    EXPECT_EQ(g.stations.size(), 2u);  // one per ring endpoint
    EXPECT_EQ(g.fifos.size(), 2u);
    for (const auto& st : g.stations) {
        EXPECT_GT(st.provisioned, 0u);
        EXPECT_GT(st.away, 0u);
    }
}

TEST(SvaGraph, LowersBusMultiRingPairwise) {
    const auto spec = sys::make_bus_spec();
    const auto g = sva::lower(spec);
    EXPECT_TRUE(g.ok());
    ASSERT_EQ(spec.multi_rings.size(), 1u);
    const std::size_t m = spec.multi_rings[0].members.size();
    // One station per (member, other-member) pair — mirrors dl::check_rules.
    EXPECT_EQ(g.stations.size(), m * (m - 1));
}

TEST(SvaGraph, StructurallyBrokenSpecLowersWithDefects) {
    const auto g = sva::lower(sva::make_fixture("bad-channel-ring"));
    EXPECT_FALSE(g.ok());
    EXPECT_FALSE(g.structural.empty());
    // The binding defect is replayable: elaboration traps deterministically.
    EXPECT_FALSE(g.trap_defects.empty());
}

TEST(SvaGraph, NeverThrowsOnIllIndexedSpec) {
    auto spec = sys::make_pair_spec();
    spec.rings[0].sb_b = 99;  // out of range
    spec.channels[0].to_sb = 42;
    const auto g = sva::lower(spec);
    EXPECT_FALSE(g.ok());
    // Ill-indexed defects are not replayable (elaboration is UB-adjacent).
    EXPECT_TRUE(g.trap_defects.empty());
}

// --- deadlock pass vs. the dl fixpoint -------------------------------------

TEST(SvaDeadlock, AgreesWithCheckRulesOnAllSpecs) {
    std::vector<std::pair<std::string, sys::SocSpec>> specs;
    for (const auto& name : sys::named_specs()) {
        specs.emplace_back(name, sys::make_named_spec(name));
    }
    specs.emplace_back("starved-cycle", sva::make_fixture("starved-cycle"));
    specs.emplace_back("deadlock-cycle", sva::make_fixture("deadlock-cycle"));
    for (const auto& [name, spec] : specs) {
        const auto obs = sva::pass_deadlock(sva::lower(spec));
        const bool dl_ok = dl::check_rules(spec).ok;
        EXPECT_EQ(has_nonproven(obs, "sva-deadlock"), !dl_ok)
            << "verdict disagreement on " << name;
    }
}

TEST(SvaDeadlock, DivergenceCertificateNamesTheCycle) {
    const auto obs =
        sva::pass_deadlock(sva::lower(sva::make_fixture("starved-cycle")));
    ASSERT_EQ(obs.size(), 1u);
    EXPECT_EQ(obs[0].verdict, sva::Verdict::kPlausible);
    // The minimal cycle threads all three rings.
    EXPECT_NE(obs[0].evidence.find("ring0"), std::string::npos);
    EXPECT_NE(obs[0].evidence.find("ring1"), std::string::npos);
    EXPECT_NE(obs[0].evidence.find("ring2"), std::string::npos);
    ASSERT_TRUE(obs[0].witness.has_value());
    ASSERT_EQ(obs[0].witness->expect.size(), 1u);
    EXPECT_EQ(obs[0].witness->expect[0], fuzz::Outcome::kDeadlocked);
}

// --- full pipeline ---------------------------------------------------------

TEST(SvaVerify, ShippedSpecsAllProven) {
    for (const auto& name : sys::named_specs()) {
        const auto vr = sva::verify(sys::make_named_spec(name));
        EXPECT_TRUE(vr.clean()) << name << ": " << vr.summary();
        EXPECT_EQ(vr.obligations.size(), 5u) << name;
    }
}

TEST(SvaVerify, FixturesReachTheirRecordedVerdicts) {
    for (const auto& f : sva::fixture_catalog()) {
        const auto vr = sva::verify(sva::make_fixture(f.name));
        bool found = false;
        for (const auto& ob : vr.obligations) {
            if (ob.pass == f.pass && ob.verdict == f.expected) found = true;
            // After the cross-check no finding may remain merely PLAUSIBLE.
            EXPECT_NE(ob.verdict, sva::Verdict::kPlausible)
                << f.name << ": unreplayed " << ob.pass << " @ " << ob.locus;
            // Only the designated retraction demo may retract: a retraction
            // on any other fixture means its witness recipe is wrong.
            if (f.expected != sva::Verdict::kRetracted) {
                EXPECT_NE(ob.verdict, sva::Verdict::kRetracted)
                    << f.name << ": " << ob.pass << " @ " << ob.locus << ": "
                    << ob.replay;
            }
        }
        EXPECT_TRUE(found) << f.name << " did not reach "
                           << sva::verdict_name(f.expected) << " on "
                           << f.pass << ": " << vr.summary();
    }
}

TEST(SvaVerify, WitnessDescriptionIsConcrete) {
    const auto vr = sva::verify(sva::make_fixture("undersized-fifo"));
    for (const auto& ob : vr.obligations) {
        if (ob.pass != "sva-occupancy") continue;
        ASSERT_TRUE(ob.witness.has_value());
        const std::string w = ob.witness->describe();
        EXPECT_NE(w.find("fifo-stall"), std::string::npos) << w;
        EXPECT_NE(w.find("expect={divergent,invariant}"), std::string::npos)
            << w;
    }
}

TEST(SvaVerify, JobsInvariance) {
    for (const auto& name : {"pair", "mesh"}) {
        sva::VerifyOptions one;
        one.jobs = 1;
        sva::VerifyOptions four;
        four.jobs = 4;
        const auto a = sva::verify(sys::make_named_spec(name), one);
        const auto b = sva::verify(sys::make_named_spec(name), four);
        lint::LintReport ra, rb;
        sva::render(a, ra);
        sva::render(b, rb);
        EXPECT_EQ(ra.to_string(), rb.to_string()) << name;
        EXPECT_EQ(ra.to_json(), rb.to_json()) << name;
    }
}

TEST(SvaVerify, StructurallyBrokenSpecSkipsDeepPasses) {
    const auto vr = sva::verify(sva::make_fixture("bad-channel-ring"));
    EXPECT_FALSE(vr.lowered_ok);
    for (const auto& ob : vr.obligations) {
        EXPECT_EQ(ob.pass, "sva-structure");
        EXPECT_EQ(ob.verdict, sva::Verdict::kConfirmed) << ob.replay;
    }
}

// --- spec text + generator -------------------------------------------------

TEST(SpecText, RoundTripsAHandWrittenDoc) {
    sva::SpecDoc doc;
    for (int i = 0; i < 2; ++i) {
        sva::SbDoc sb;
        sb.name = "s" + std::to_string(i);
        sb.period = 1000 + 100u * i;
        sb.seed = 0xABCDu + i;
        doc.sbs.push_back(sb);
    }
    sva::RingDoc r;
    r.name = "r0";
    r.sb_b = 1;
    r.node_a.holder = true;
    r.node_a.recycle = 7;
    r.node_b.recycle = 7;
    r.node_b.has_initial_recycle = true;
    r.node_b.initial_recycle = 5;
    doc.rings.push_back(r);
    sva::ChannelDoc c;
    c.name = "c0";
    c.to_sb = 1;
    doc.channels.push_back(c);

    const auto round = sva::parse_spec_text(sva::to_text(doc));
    EXPECT_EQ(round, doc);

    // The doc elaborates and runs deterministically.
    const auto vr = sva::verify(sva::to_spec(doc));
    EXPECT_EQ(vr.obligations.size(), 5u);
}

TEST(SpecText, RejectsMalformedInputWithLineNumbers) {
    EXPECT_THROW(sva::parse_spec_text(""), std::runtime_error);
    EXPECT_THROW(sva::parse_spec_text("stspec v9\n"), std::runtime_error);
    try {
        sva::parse_spec_text("stspec v1\nsb x period=banana\n");
        FAIL() << "malformed number accepted";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
            << e.what();
    }
    EXPECT_THROW(sva::parse_spec_text("stspec v1\nfrob x y=1\n"),
                 std::runtime_error);
}

// The ring-of-rings generator tests (fixture byte-identity, proven-clean at
// 64 SBs) live in test_topo.cpp since the generator moved to src/topo.

// --- repro-corpus pipeline -------------------------------------------------

// Every checked-in fuzz counterexample names a shipped spec and a delay
// configuration; the lint + sva pipeline must run over each reconstructed
// spec without crashing, and the sva obligations must stay PROVEN: delay
// perturbations are absorbed by construction (count-quantization), so no
// determinism or deadlock obligation may flip. lint's per-node
// recycle-feasibility check is a *throughput* bound, not a determinism one
// — a slowed token wire legitimately trips it (recorded per file below)
// while the verifier still proves the schedule deterministic.
TEST(Corpus, ReproSpecsKeepTheirObligationsUnderDelayConfigs) {
    const std::filesystem::path dir = ST_TESTS_DATA_DIR;
    std::size_t seen = 0;
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
        if (entry.path().extension() != ".repro") continue;
        if (entry.path().filename() == "unsupported_version.repro") continue;
        SCOPED_TRACE(entry.path().filename().string());
        const auto repro = fuzz::Repro::parse(read_file(entry.path()));
        const auto nominal = sys::make_named_spec(repro.spec_name);
        const auto perturbed =
            sys::apply(nominal, repro.to_case(nominal).delays);
        const auto report = lint::lint(perturbed);  // must not crash
        const auto vr = sva::verify(perturbed);
        EXPECT_TRUE(vr.clean()) << vr.summary();
        if (entry.path().filename() == "token_drop_deadlock.repro") {
            // Expected verdict on record: the 150% a->b wire overruns the
            // static recycle provision (throughput), determinism holds.
            EXPECT_TRUE(report.has_error("recycle-feasibility"))
                << report.to_string();
        }
        ++seen;
    }
    EXPECT_GE(seen, 1u);  // the corpus must actually be exercised
}

}  // namespace
