// Property tests for sim::Rng (splitmix64): the single source of randomness
// in the repository. Everything downstream — workloads, delay sweeps, the
// fuzz harness — assumes these properties; if one breaks, "same seed, same
// simulation" breaks everywhere at once.

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "sim/random.hpp"

namespace {

using st::sim::Rng;

TEST(Rng, SameSeedReproducesExactStream) {
    Rng a(0x1234u);
    Rng b(0x1234u);
    for (int i = 0; i < 1000; ++i) {
        ASSERT_EQ(a.next_u64(), b.next_u64()) << "diverged at draw " << i;
    }
}

TEST(Rng, DifferentSeedsProduceIndependentStreams) {
    // Adjacent seeds are the worst case for a counter-based generator; the
    // splitmix64 finalizer must still decorrelate them completely.
    Rng a(1);
    Rng b(2);
    int equal = 0;
    for (int i = 0; i < 1000; ++i) {
        if (a.next_u64() == b.next_u64()) ++equal;
    }
    EXPECT_EQ(equal, 0);
}

TEST(Rng, StreamHasNoShortCycle) {
    Rng rng(0xfeedu);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 10000; ++i) {
        ASSERT_TRUE(seen.insert(rng.next_u64()).second)
            << "repeat after " << i << " draws";
    }
}

TEST(Rng, NextBelowStaysInRange) {
    Rng rng(7);
    for (const std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull,
                                      (1ull << 33) + 7}) {
        for (int i = 0; i < 200; ++i) {
            EXPECT_LT(rng.next_below(bound), bound);
        }
    }
    EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(Rng, NextInCoversInclusiveRange) {
    Rng rng(11);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const std::uint64_t v = rng.next_in(5, 9);
        ASSERT_GE(v, 5u);
        ASSERT_LE(v, 9u);
        saw_lo = saw_lo || v == 5;
        saw_hi = saw_hi || v == 9;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextBelowIsRoughlyUniform) {
    // 10 buckets x 10000 draws: expect 1000 per bucket. A 25% tolerance is
    // ~8 sigma for a binomial(10000, 0.1) — loose enough to never flake,
    // tight enough to catch a broken mixer or modulo bias.
    Rng rng(0xace1u);
    constexpr int kBuckets = 10;
    constexpr int kDraws = 10000;
    std::vector<int> count(kBuckets, 0);
    for (int i = 0; i < kDraws; ++i) {
        ++count[static_cast<std::size_t>(rng.next_below(kBuckets))];
    }
    for (int b = 0; b < kBuckets; ++b) {
        EXPECT_GT(count[b], 750) << "bucket " << b;
        EXPECT_LT(count[b], 1250) << "bucket " << b;
    }
}

TEST(Rng, HighBitsAreUniformToo) {
    // Top-bit balance: a generator whose low bits are fine but whose high
    // bits are skewed passes next_below tests with small bounds yet breaks
    // 64-bit word draws (fifo-stuck fault values use full words).
    Rng rng(0xbeefu);
    int high_set = 0;
    constexpr int kDraws = 10000;
    for (int i = 0; i < kDraws; ++i) {
        if (rng.next_u64() >> 63) ++high_set;
    }
    EXPECT_GT(high_set, kDraws / 2 - 1250);
    EXPECT_LT(high_set, kDraws / 2 + 1250);
}

TEST(Rng, NextDoubleStaysInUnitInterval) {
    Rng rng(3);
    for (int i = 0; i < 5000; ++i) {
        const double d = rng.next_double();
        ASSERT_GE(d, 0.0);
        ASSERT_LT(d, 1.0);
    }
}

}  // namespace
