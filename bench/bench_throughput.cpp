// Experiment §5 throughput analysis: STARI moves 1 word per clock cycle;
// the synchro-tokens FIFO moves at most H/(H+R) words per cycle, and the
// paper's remedy is widening the channel by at least (H+R)/H (an
// area/performance trade-off). This bench measures simulated throughput
// against the closed-form bound across H and R sweeps and prints the
// widening factor and its area cost.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "analytic/models.hpp"
#include "area/area_model.hpp"
#include "baselines/stari.hpp"
#include "bench_util.hpp"
#include "runner/runner.hpp"
#include "system/soc.hpp"
#include "system/testbenches.hpp"
#include "workload/traffic.hpp"

namespace {

using namespace st;

double measure_synchro_throughput(std::uint32_t hold, std::uint32_t recycle) {
    sys::PairOptions opt;
    opt.hold = hold;
    opt.recycle_override = recycle;
    sys::Soc soc(sys::make_pair_spec(opt));
    soc.run_cycles(2000, sim::ms(60));
    const auto& k = dynamic_cast<const wl::TrafficKernel&>(
        soc.wrapper(0).block().kernel());
    return static_cast<double>(k.words_emitted()) /
           static_cast<double>(soc.wrapper(0).clock().cycles());
}

double measure_stari_throughput(std::size_t depth) {
    sim::Scheduler sched;
    baseline::StariLink::Params p;
    p.depth = depth;
    baseline::StariLink link(sched, "stari", p);
    link.start();
    sched.run_until(sim::us(2));
    return link.throughput();
}

void run_experiment() {
    area::GateLibrary lib;
    bench::banner("§5 throughput: synchro-tokens vs STARI");
    std::printf("%4s %4s | %9s %9s | %7s | %9s | %s\n", "H", "R", "model",
                "measured", "STARI", "widening", "widened-channel area cost");
    std::printf("----------+---------------------+---------+-----------+----\n");
    // Every (H, R) grid cell is an independent simulation; fan the grid out
    // on the st::runner engine and print rows in grid order.
    struct Cell {
        std::uint32_t h = 0;
        std::uint32_t r = 0;
    };
    std::vector<Cell> grid;
    for (const std::uint32_t h : {2u, 4u, 8u}) {
        for (const std::uint32_t e : {2u, 4u, 8u, 16u}) {
            grid.push_back({h, h + e});
        }
    }
    struct CellResult {
        double model = 0.0;
        double measured = 0.0;
        double stari = 0.0;
    };
    runner::sweep(
        grid.size(), runner::hardware_jobs(),
        [&](std::size_t i) {
            const auto [h, r] = grid[i];
            CellResult res;
            res.model = model::synchro_throughput(h, r);
            res.measured = measure_synchro_throughput(h, r);
            res.stari = measure_stari_throughput(h < 2 ? 2 : h);
            return res;
        },
        [&](std::size_t i, CellResult&& res) {
            const auto [h, r] = grid[i];
            const double widen = model::widening_factor(h, r);
            // Area cost of widening: interfaces + stages scale with bits.
            const double base_bits = 32;
            const double widened_bits = base_bits * widen;
            const double base_area =
                area::input_interface_netlist(32).total_gate_eq(lib) +
                area::output_interface_netlist(32).total_gate_eq(lib) +
                static_cast<double>(h) *
                    area::fifo_stage_netlist(32).total_gate_eq(lib);
            const auto widened = static_cast<unsigned>(widened_bits + 0.5);
            const double widened_area =
                area::input_interface_netlist(widened).total_gate_eq(lib) +
                area::output_interface_netlist(widened).total_gate_eq(lib) +
                static_cast<double>(h) *
                    area::fifo_stage_netlist(widened).total_gate_eq(lib);
            std::printf("%4u %4u | %9.3f %9.3f | %7.3f | %8.2fx | %.0f -> %.0f gate-eq (%.2fx)\n",
                        h, r, res.model, res.measured, res.stari, widen,
                        base_area, widened_area, widened_area / base_area);
        });
    std::printf("\npaper: STARI achieves 1 word/cycle; synchro-tokens at most "
                "H/(H+R); widening by (H+R)/H recovers parity at area cost.\n");
}

void BM_PairThroughputRun(benchmark::State& state) {
    for (auto _ : state) {
        benchmark::DoNotOptimize(measure_synchro_throughput(4, 6));
    }
}
BENCHMARK(BM_PairThroughputRun)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    run_experiment();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
