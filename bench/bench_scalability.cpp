// Paper future work: "the implementation of a larger system for further
// performance studies". This bench scales the methodology up — pipelines to
// 16 stages, meshes to 4x4 (16 clock domains, 24 rings, 48 channels) — and
// reports simulation speed, traffic, stall behaviour and rule-check status,
// plus a determinism spot-check per topology.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "bench_util.hpp"
#include "deadlock/rules.hpp"
#include "runner/runner.hpp"
#include "system/delay_config.hpp"
#include "system/soc.hpp"
#include "system/testbenches.hpp"
#include "verify/determinism.hpp"
#include "workload/traffic.hpp"

namespace {

using namespace st;

struct Row {
    std::string name;
    sys::SocSpec spec;
};

void run_experiment() {
    std::vector<Row> rows;
    for (const std::size_t len : {4u, 8u, 16u}) {
        sys::ChainOptions opt;
        opt.length = len;
        rows.push_back({"chain-" + std::to_string(len),
                        sys::make_chain_spec(opt)});
    }
    for (const std::size_t n : {4u, 8u}) {
        sys::BusOptions opt;
        opt.size = n;
        rows.push_back({"bus-" + std::to_string(n), sys::make_bus_spec(opt)});
    }
    for (const std::size_t dim : {2u, 3u, 4u}) {
        sys::MeshOptions opt;
        opt.width = dim;
        opt.height = dim;
        rows.push_back({"mesh-" + std::to_string(dim) + "x" +
                            std::to_string(dim),
                        sys::make_mesh_spec(opt)});
    }

    bench::banner("Scaling study (paper future work: larger systems)");

    // Phase 1 (serial): timed runs. Wall-clock events/s numbers must not
    // contend with each other, so these stay on one thread.
    struct Measured {
        bool rules_ok = false;
        std::uint64_t events = 0;
        double events_per_sec = 0.0;
        std::uint64_t stops = 0;
    };
    std::vector<Measured> measured(rows.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
        auto& row = rows[i];
        auto& m = measured[i];
        m.rules_ok = dl::check_rules(row.spec).ok;
        const auto t0 = std::chrono::steady_clock::now();
        sys::Soc soc(row.spec);
        soc.run_cycles(400, sim::ms(20));
        const auto t1 = std::chrono::steady_clock::now();
        const double secs = std::chrono::duration<double>(t1 - t0).count();
        for (std::size_t s = 0; s < soc.num_sbs(); ++s) {
            m.stops += soc.wrapper(s).clock().stop_events();
        }
        m.events = soc.scheduler().events_executed();
        m.events_per_sec =
            static_cast<double>(m.events) / (secs > 0 ? secs : 1e-9);
    }

    // Phase 2 (parallel): determinism spot-checks — one aggressive joint
    // perturbation per topology, two full simulations each. Independent runs,
    // fanned out across topologies on the st::runner engine.
    const std::size_t jobs = runner::hardware_jobs();
    std::vector<verify::TraceDiff> diffs(rows.size());
    runner::sweep(
        rows.size(), jobs,
        [&](std::size_t i) {
            const auto& spec = rows[i].spec;
            verify::DeterminismHarness<sys::DelayConfig> harness(
                [&spec](const sys::DelayConfig& cfg) {
                    sys::Soc s(sys::apply(spec, cfg));
                    s.run_cycles(140, sim::ms(20));
                    return s.traces();
                },
                sys::DelayConfig::nominal(spec), 100);
            auto cfg = sys::DelayConfig::nominal(spec);
            for (std::size_t d = 0;
                 d < cfg.dimensions() - cfg.clock_pct.size(); ++d) {
                cfg.set(d, d % 2 ? 200 : 50);
            }
            return harness.check(cfg);
        },
        [&](std::size_t i, verify::TraceDiff&& d) { diffs[i] = std::move(d); });

    std::printf("spot-checks fanned out over %zu job(s)\n", jobs);
    std::printf("%-10s | %4s %5s %5s | %8s | %9s | %7s | %6s | %s\n",
                "system", "SBs", "rings", "chans", "events", "events/s",
                "stops", "rules", "determinism spot-check");
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const auto& row = rows[i];
        const auto& m = measured[i];
        std::printf("%-10s | %4zu %5zu %5zu | %8llu | %9.0f | %7llu | %6s | %s\n",
                    row.name.c_str(), row.spec.sbs.size(),
                    row.spec.rings.size(), row.spec.channels.size(),
                    static_cast<unsigned long long>(m.events),
                    m.events_per_sec,
                    static_cast<unsigned long long>(m.stops),
                    m.rules_ok ? "safe" : "RISK",
                    diffs[i].identical ? "match" : "MISMATCH");
    }
}

void BM_Mesh4x4Run(benchmark::State& state) {
    sys::MeshOptions opt;
    opt.width = 4;
    opt.height = 4;
    const auto spec = sys::make_mesh_spec(opt);
    for (auto _ : state) {
        sys::Soc soc(spec);
        soc.run_cycles(100, sim::ms(20));
        benchmark::DoNotOptimize(soc.scheduler().events_executed());
    }
}
BENCHMARK(BM_Mesh4x4Run)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    run_experiment();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
