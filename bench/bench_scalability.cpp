// Paper future work: "the implementation of a larger system for further
// performance studies". This bench scales the methodology up — pipelines to
// 16 stages, meshes to 4x4 (16 clock domains, 24 rings, 48 channels) — and
// reports simulation speed, traffic, stall behaviour and rule-check status,
// plus a determinism spot-check per topology.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "bench_util.hpp"
#include "deadlock/rules.hpp"
#include "system/delay_config.hpp"
#include "system/soc.hpp"
#include "system/testbenches.hpp"
#include "verify/determinism.hpp"
#include "workload/traffic.hpp"

namespace {

using namespace st;

struct Row {
    std::string name;
    sys::SocSpec spec;
};

void run_experiment() {
    std::vector<Row> rows;
    for (const std::size_t len : {4u, 8u, 16u}) {
        sys::ChainOptions opt;
        opt.length = len;
        rows.push_back({"chain-" + std::to_string(len),
                        sys::make_chain_spec(opt)});
    }
    for (const std::size_t n : {4u, 8u}) {
        sys::BusOptions opt;
        opt.size = n;
        rows.push_back({"bus-" + std::to_string(n), sys::make_bus_spec(opt)});
    }
    for (const std::size_t dim : {2u, 3u, 4u}) {
        sys::MeshOptions opt;
        opt.width = dim;
        opt.height = dim;
        rows.push_back({"mesh-" + std::to_string(dim) + "x" +
                            std::to_string(dim),
                        sys::make_mesh_spec(opt)});
    }

    bench::banner("Scaling study (paper future work: larger systems)");
    std::printf("%-10s | %4s %5s %5s | %8s | %9s | %7s | %6s | %s\n",
                "system", "SBs", "rings", "chans", "events", "events/s",
                "stops", "rules", "determinism spot-check");
    for (auto& row : rows) {
        const auto rules_ok = dl::check_rules(row.spec).ok;
        const auto t0 = std::chrono::steady_clock::now();
        sys::Soc soc(row.spec);
        soc.run_cycles(400, sim::ms(20));
        const auto t1 = std::chrono::steady_clock::now();
        const double secs =
            std::chrono::duration<double>(t1 - t0).count();
        std::uint64_t stops = 0;
        for (std::size_t i = 0; i < soc.num_sbs(); ++i) {
            stops += soc.wrapper(i).clock().stop_events();
        }

        // Determinism spot-check: one aggressive joint perturbation.
        verify::DeterminismHarness<sys::DelayConfig> harness(
            [&](const sys::DelayConfig& cfg) {
                sys::Soc s(sys::apply(row.spec, cfg));
                s.run_cycles(140, sim::ms(20));
                return s.traces();
            },
            sys::DelayConfig::nominal(row.spec), 100);
        auto cfg = sys::DelayConfig::nominal(row.spec);
        for (std::size_t d = 0;
             d < cfg.dimensions() - cfg.clock_pct.size(); ++d) {
            cfg.set(d, d % 2 ? 200 : 50);
        }
        const auto diff = harness.check(cfg);

        std::printf("%-10s | %4zu %5zu %5zu | %8llu | %9.0f | %7llu | %6s | %s\n",
                    row.name.c_str(), row.spec.sbs.size(), row.spec.rings.size(),
                    row.spec.channels.size(),
                    static_cast<unsigned long long>(
                        soc.scheduler().events_executed()),
                    static_cast<double>(soc.scheduler().events_executed()) /
                        (secs > 0 ? secs : 1e-9),
                    static_cast<unsigned long long>(stops),
                    rules_ok ? "safe" : "RISK",
                    diff.identical ? "match" : "MISMATCH");
    }
}

void BM_Mesh4x4Run(benchmark::State& state) {
    sys::MeshOptions opt;
    opt.width = 4;
    opt.height = 4;
    const auto spec = sys::make_mesh_spec(opt);
    for (auto _ : state) {
        sys::Soc soc(spec);
        soc.run_cycles(100, sim::ms(20));
        benchmark::DoNotOptimize(soc.scheduler().events_executed());
    }
}
BENCHMARK(BM_Mesh4x4Run)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    run_experiment();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
