// Experiment Fig. 1: the synchro-tokens system architecture and wrapper
// logic. This bench elaborates the paper's 3-SB / 6-FIFO validation system
// and prints its full structure — SBs, wrappers, token rings, channels —
// the textual analogue of Figure 1A/1B. The google-benchmark section
// measures elaboration cost.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "area/area_model.hpp"
#include "bench_util.hpp"
#include "system/soc.hpp"
#include "system/testbenches.hpp"

namespace {

void print_architecture() {
    using namespace st;
    const auto spec = sys::make_triangle_spec();
    sys::Soc soc(spec);

    bench::banner("Figure 1A: system architecture (3 SBs, 6 FIFOs, 3 rings)");
    for (std::size_t i = 0; i < soc.num_sbs(); ++i) {
        const auto& w = soc.wrapper(i);
        std::printf("SB '%s': clock period %s, %zu token node(s), "
                    "%zu input / %zu output interface(s)\n",
                    w.name().c_str(),
                    sim::format_time(w.clock().effective_period()).c_str(),
                    w.num_nodes(), w.num_inputs(), w.num_outputs());
    }
    for (std::size_t r = 0; r < spec.rings.size(); ++r) {
        const auto& ring = spec.rings[r];
        std::printf(
            "Ring '%s': %s <-> %s, wire delays %s / %s, "
            "H=%u/%u R=%u/%u, initial holder: %s\n",
            ring.name.c_str(), spec.sbs[ring.sb_a].name.c_str(),
            spec.sbs[ring.sb_b].name.c_str(),
            sim::format_time(ring.delay_ab).c_str(),
            sim::format_time(ring.delay_ba).c_str(), ring.node_a.hold,
            ring.node_b.hold, ring.node_a.recycle, ring.node_b.recycle,
            ring.node_a.initial_holder ? spec.sbs[ring.sb_a].name.c_str()
                                       : spec.sbs[ring.sb_b].name.c_str());
    }
    for (const auto& c : spec.channels) {
        std::printf(
            "Channel '%s': %s -> %s over ring %zu, %zu-deep FIFO, "
            "stage delay %s, %u data bits\n",
            c.name.c_str(), spec.sbs[c.from_sb].name.c_str(),
            spec.sbs[c.to_sb].name.c_str(), c.ring, c.fifo.depth,
            sim::format_time(c.fifo.stage_delay).c_str(), c.fifo.data_bits);
    }

    bench::banner("Figure 1B: wrapper composition (gate-equivalent area)");
    area::GateLibrary lib;
    std::printf("per node: %.0f gate-eq; per 32-bit input interface: %.1f; "
                "per 32-bit output interface: %.1f; per 32-bit FIFO stage: %.1f\n",
                area::node_area(lib),
                area::input_interface_netlist(32).total_gate_eq(lib),
                area::output_interface_netlist(32).total_gate_eq(lib),
                area::fifo_stage_netlist(32).total_gate_eq(lib));

    // Sanity: the elaborated system runs and the timing audit passes.
    soc.run_cycles(200, st::sim::ms(1));
    const auto audit = soc.audit_timing();
    std::printf("timing audit: %s\n", audit.summary().c_str());
}

void BM_ElaborateTriangle(benchmark::State& state) {
    for (auto _ : state) {
        st::sys::Soc soc(st::sys::make_triangle_spec());
        benchmark::DoNotOptimize(&soc);
    }
}
BENCHMARK(BM_ElaborateTriangle);

void BM_SimulateTriangle100Cycles(benchmark::State& state) {
    for (auto _ : state) {
        st::sys::Soc soc(st::sys::make_triangle_spec());
        soc.run_cycles(100, st::sim::ms(1));
        benchmark::DoNotOptimize(soc.scheduler().events_executed());
    }
}
BENCHMARK(BM_SimulateTriangle100Cycles);

}  // namespace

int main(int argc, char** argv) {
    print_architecture();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
