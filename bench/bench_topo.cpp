// Topology-generator scaling grid: generation, lint, static verify, and
// routed-traffic simulation wall-clock versus SB count for the procedural
// shapes in src/topo. The interesting axis is SB count — the deadlock
// fixpoint and the event-driven sim both scale with stations/channels, and
// this grid records where the 64 -> 1024 growth actually lands. Rows go to
// BENCH_topo.json (docs/PERF.md schema); quick mode (ST_QUICK=1) caps the
// grid at 256 SBs for CI.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <functional>
#include <vector>

#include "bench_util.hpp"
#include "lint/lint.hpp"
#include "sim/time.hpp"
#include "sva/spec_text.hpp"
#include "sva/verify.hpp"
#include "system/soc.hpp"
#include "topo/topo.hpp"

namespace {

using namespace st;

double best_of(std::size_t reps, const std::function<void()>& fn) {
    double best = 1e9;
    for (std::size_t r = 0; r < reps; ++r) {
        const auto t0 = std::chrono::steady_clock::now();
        fn();
        const auto t1 = std::chrono::steady_clock::now();
        const double s = std::chrono::duration<double>(t1 - t0).count();
        if (s < best) best = s;
    }
    return best;
}

constexpr std::uint64_t kSimCycles = 200;

void run_experiment() {
    const bool quick = bench::quick_mode();
    const std::size_t reps = quick ? 3 : 5;
    bench::JsonReport report("BENCH_topo.json");

    bench::banner("topo generator — gen / lint / verify / sim vs SB count");
    std::printf("%6s | %5s | %10s | %10s | %10s | %10s\n", "shape", "sbs",
                "gen ms", "lint ms", "verify ms", "sim ms");

    std::vector<std::size_t> sizes = {64, 256};
    if (!quick) sizes.push_back(1024);

    for (const topo::Shape shape :
         {topo::Shape::kMesh, topo::Shape::kTorus, topo::Shape::kStar,
          topo::Shape::kHierRing}) {
        for (const std::size_t n : sizes) {
            topo::Options opt;
            opt.shape = shape;
            opt.sbs = n;
            opt.seed = 42;
            const double gen_s =
                best_of(reps, [&] { (void)topo::generate(opt); });
            const auto spec = sva::to_spec(topo::generate(opt));
            const double lint_s = best_of(reps, [&] {
                if (!lint::lint(spec).ok()) std::exit(1);
            });
            sva::VerifyOptions vo;
            vo.cross_check = false;  // static tier; generated specs PROVEN
            const double verify_s = best_of(reps, [&] {
                if (!sva::verify(spec, vo).clean()) std::exit(1);
            });
            const double sim_s = best_of(reps, [&] {
                sys::Soc soc(spec);
                if (!soc.run_cycles(kSimCycles, sim::ms(60))) std::exit(1);
            });
            std::printf("%6s | %5zu | %10.3f | %10.3f | %10.3f | %10.3f\n",
                        topo::shape_name(shape), n, gen_s * 1e3, lint_s * 1e3,
                        verify_s * 1e3, sim_s * 1e3);
            const std::string tag =
                std::string(topo::shape_name(shape)) + std::to_string(n);
            report.add("topo_gen_" + tag, gen_s * 1e3, "ms", 1);
            report.add("topo_lint_" + tag, lint_s * 1e3, "ms", 1);
            report.add("topo_verify_" + tag, verify_s * 1e3, "ms", 1);
            report.add("topo_sim" + std::to_string(kSimCycles) + "_" + tag,
                       sim_s * 1e3, "ms", 1);
        }
    }

    report.write();
}

void BM_GenerateMesh256(benchmark::State& state) {
    topo::Options opt;
    opt.sbs = 256;
    opt.seed = 42;
    for (auto _ : state) {
        benchmark::DoNotOptimize(topo::generate(opt));
    }
}
BENCHMARK(BM_GenerateMesh256)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    run_experiment();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
