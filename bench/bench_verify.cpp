// Streaming golden-trace verification: wall-clock of the online
// StreamingChecker pipeline (rolling per-SB digests, cooperative early exit,
// arena-backed capture) against the offline batch diff over the same runs.
//
// Two workload mixes, matching how the pipeline is used:
//  - deterministic-heavy: the paper's §5 sweep on the synchro-tokens
//    triangle — every run matches, so streaming's win is the O(#SBs) verdict
//    (no end-of-run scan) and the allocation-free capture;
//  - divergent-heavy: the two-flop-synchronizer baseline on a plesiochronous
//    pair — most runs diverge within a few cycles, so the early exit skips
//    almost the whole remaining simulation.
//
// Every row re-checks the pipeline's contract — streaming and batch
// SweepResults bit-identical (verdicts, counts, retained example loci) — and
// the bench exits non-zero if it ever breaks. Numbers land in
// BENCH_verify.json (docs/PERF.md).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "baselines/baseline_soc.hpp"
#include "bench_util.hpp"
#include "system/delay_config.hpp"
#include "system/testbenches.hpp"
#include "system/warm_runner.hpp"
#include "verify/determinism.hpp"

namespace {

using namespace st;

using Harness = verify::DeterminismHarness<sys::DelayConfig>;

std::vector<sys::DelayConfig> grid(const sys::SocSpec& spec,
                                   std::size_t target_runs) {
    std::vector<sys::DelayConfig> out;
    const auto nominal = sys::DelayConfig::nominal(spec);
    out.push_back(nominal);
    while (out.size() < target_runs) {
        for (std::size_t dim = 0;
             dim < nominal.dimensions() && out.size() < target_runs; ++dim) {
            for (unsigned pct : {50u, 75u, 150u, 200u}) {
                if (out.size() >= target_runs) break;
                auto cfg = nominal;
                cfg.set(dim, pct);
                out.push_back(cfg);
            }
        }
    }
    return out;
}

double timed_sweep(Harness& h, const std::vector<sys::DelayConfig>& ps,
                   verify::SweepResult& out) {
    const auto t0 = std::chrono::steady_clock::now();
    out = h.sweep(ps);
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

void require_identical(const verify::SweepResult& a,
                       const verify::SweepResult& b, const char* what) {
    if (a == b) return;
    std::fprintf(stderr,
                 "bench_verify: %s sweep diverged from the streaming result "
                 "— the streaming/batch parity contract is broken\n",
                 what);
    std::exit(1);
}

double rate(std::size_t runs, double secs) {
    return static_cast<double>(runs) / (secs > 0 ? secs : 1e-9);
}

void run_experiment() {
    const std::size_t runs = bench::quick_mode() ? 48 : 240;
    bench::JsonReport report("BENCH_verify.json");

    // ---- deterministic-heavy: synchro-tokens triangle, all runs match ----
    bench::banner("streaming verification — deterministic-heavy (triangle)");
    {
        const auto spec = sys::make_named_spec("triangle");
        const sys::WarmRunner runner(spec, 100, sim::ms(1));
        const auto live = [&runner](const sys::DelayConfig& cfg,
                                    verify::RunCapture& cap) {
            runner.run(cfg, cap);
        };
        const auto ps = grid(spec, runs);

        Harness stream{Harness::LiveRunner(live),
                       sys::DelayConfig::nominal(spec), 100};
        Harness batch{Harness::LiveRunner(live),
                      sys::DelayConfig::nominal(spec), 100};
        batch.set_streaming(false);

        verify::SweepResult rs, rb;
        const double ts = timed_sweep(stream, ps, rs);
        const double tb = timed_sweep(batch, ps, rb);
        require_identical(rs, rb, "deterministic-heavy batch");
        if (!rs.all_match()) {
            std::fprintf(stderr,
                         "bench_verify: triangle sweep found mismatches — "
                         "determinism regression\n");
            std::exit(1);
        }
        std::printf("%10s | %9s | %9s | %s\n", "mode", "seconds", "runs/s",
                    "result vs streaming");
        std::printf("%10s | %9.3f | %9.1f | (baseline)\n", "streaming", ts,
                    rate(ps.size(), ts));
        std::printf("%10s | %9.3f | %9.1f | bit-identical\n", "batch", tb,
                    rate(ps.size(), tb));
        report.add("verify_stream_runs_per_sec", rate(ps.size(), ts),
                   "runs/s", 1);
        report.add("verify_batch_runs_per_sec", rate(ps.size(), tb),
                   "runs/s", 1);
    }

    // ---- divergent-heavy: two-flop baseline, early exit dominates ----
    bench::banner(
        "streaming verification — divergent-heavy (two-flop baseline)");
    {
        sys::PairOptions opt;
        opt.period_b = 1009;  // plesiochronous: the baseline diverges early
        const auto spec = sys::make_pair_spec(opt);
        const auto live = [&spec](const sys::DelayConfig& cfg,
                                  verify::RunCapture& cap) {
            baseline::BaselineSoc soc(sys::apply(spec, cfg),
                                      baseline::BaselineSoc::Kind::kTwoFlop,
                                      &cap);
            soc.run_cycles(150, sim::ms(1));
        };
        const auto ps = grid(spec, runs);
        const auto nominal = sys::DelayConfig::nominal(spec);

        Harness early{Harness::LiveRunner(live), nominal, 100};
        Harness no_early{Harness::LiveRunner(live), nominal, 100};
        no_early.set_early_exit(false);
        Harness batch{Harness::LiveRunner(live), nominal, 100};
        batch.set_streaming(false);

        verify::SweepResult re, rn, rb;
        const double te = timed_sweep(early, ps, re);
        const double tn = timed_sweep(no_early, ps, rn);
        const double tb = timed_sweep(batch, ps, rb);
        require_identical(re, rn, "no-early-exit streaming");
        require_identical(re, rb, "divergent-heavy batch");
        if (re.mismatches == 0) {
            std::fprintf(stderr,
                         "bench_verify: divergent-heavy mix produced no "
                         "mismatches — the workload is mislabelled\n");
            std::exit(1);
        }
        const double speedup = tb / (te > 0 ? te : 1e-9);
        std::printf("divergent runs: %llu / %llu\n",
                    static_cast<unsigned long long>(re.mismatches),
                    static_cast<unsigned long long>(re.runs));
        std::printf("%12s | %9s | %9s | %8s | %s\n", "mode", "seconds",
                    "runs/s", "speedup", "result vs early-exit");
        std::printf("%12s | %9.3f | %9.1f | %7.2fx | (baseline)\n",
                    "early-exit", te, rate(ps.size(), te), 1.0);
        std::printf("%12s | %9.3f | %9.1f | %7.2fx | bit-identical\n",
                    "stream-full", tn, rate(ps.size(), tn),
                    te / (tn > 0 ? tn : 1e-9));
        std::printf("%12s | %9.3f | %9.1f | %7.2fx | bit-identical\n",
                    "batch", tb, rate(ps.size(), tb),
                    te / (tb > 0 ? tb : 1e-9));
        std::printf("early-exit speedup vs batch: %.2fx\n", speedup);
        report.add("verify_stream_div_runs_per_sec", rate(ps.size(), te),
                   "runs/s", 1);
        report.add("verify_batch_div_runs_per_sec", rate(ps.size(), tb),
                   "runs/s", 1);
        report.add("verify_early_exit_speedup", speedup, "x", 1);
    }

    report.write();
}

void BM_SweepTriangle(benchmark::State& state) {
    const auto spec = sys::make_named_spec("triangle");
    const sys::WarmRunner runner(spec, 100, sim::ms(1));
    Harness h{Harness::LiveRunner(
                  [&runner](const sys::DelayConfig& cfg,
                            verify::RunCapture& cap) { runner.run(cfg, cap); }),
              sys::DelayConfig::nominal(spec), 100};
    h.set_streaming(state.range(0) != 0);
    const auto ps = grid(spec, 8);
    h.capture_nominal();
    for (auto _ : state) {
        const auto r = h.sweep(ps);
        benchmark::DoNotOptimize(r.runs);
    }
}
BENCHMARK(BM_SweepTriangle)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    run_experiment();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
