// sva static-verifier wall-clock: lower + all five proof-obligation passes
// (no witness cross-check — shipped and generated specs are PROVEN, so the
// dynamic tier never runs on them anyway) over the shipped testbenches and
// the generated ring-of-rings stress geometries.
//
// The interesting scaling axis is station count: the deadlock fixpoint is
// the dominant pass and runs Bellman-Ford-style rounds bounded by |stations|
// (multi-ring buses contribute M*(M-1) stations each), so the 256-SB
// geometry exercises ~4k stations. The acceptance bound for the full
// `st_lint --verify` tier on the 256-SB spec is 10 s single-threaded;
// numbers land in BENCH_sva.json (docs/PERF.md).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "bench_util.hpp"
#include "sva/graph.hpp"
#include "sva/spec_text.hpp"
#include "sva/verify.hpp"
#include "system/testbenches.hpp"
#include "topo/topo.hpp"

namespace {

using namespace st;

sys::SocSpec ring_of_rings(std::size_t n) {
    topo::RingOfRingsOptions opt;
    opt.clusters = n;
    opt.members = n;
    return sva::to_spec(topo::make_ring_of_rings(opt));
}

double timed_verify(const sys::SocSpec& spec, std::size_t jobs,
                    std::size_t reps) {
    sva::VerifyOptions opt;
    opt.cross_check = false;  // static tier only; nothing to replay anyway
    opt.jobs = jobs;
    double best = 1e9;
    for (std::size_t r = 0; r < reps; ++r) {
        const auto t0 = std::chrono::steady_clock::now();
        const auto vr = sva::verify(spec, opt);
        const auto t1 = std::chrono::steady_clock::now();
        if (!vr.clean()) {
            std::fprintf(stderr, "bench_sva: spec not proven: %s\n",
                         vr.summary().c_str());
            std::exit(1);
        }
        const double s = std::chrono::duration<double>(t1 - t0).count();
        if (s < best) best = s;
    }
    return best;
}

void run_experiment() {
    const std::size_t reps = bench::quick_mode() ? 5 : 20;
    bench::JsonReport report("BENCH_sva.json");

    bench::banner("sva static verifier — lower + 5 passes, proven specs");
    std::printf("%18s | %9s | %9s | %10s\n", "spec", "stations",
                "jobs", "seconds");
    const auto row = [&](const char* name, const sys::SocSpec& spec,
                         std::size_t jobs) {
        const auto g = sva::lower(spec);
        const double s = timed_verify(spec, jobs, reps);
        std::printf("%18s | %9zu | %9zu | %10.6f\n", name,
                    g.stations.size(), jobs, s);
        report.add(std::string("verify_") + name + "_j" +
                       std::to_string(jobs),
                   s * 1e3, "ms", jobs);
    };

    for (const auto& name : sys::named_specs()) {
        row(name.c_str(), sys::make_named_spec(name), 1);
    }
    const auto r64 = ring_of_rings(8);
    const auto r256 = ring_of_rings(16);
    row("ring_of_rings_64", r64, 1);
    row("ring_of_rings_256", r256, 1);
    // Pass-level fan-out: 5 independent passes, so parallel speedup tops
    // out at the slowest pass (the deadlock fixpoint). Report jobs=2/4 for
    // the scaling record in docs/PERF.md.
    row("ring_of_rings_256", r256, 2);
    row("ring_of_rings_256", r256, 4);

    report.write();
}

void BM_Verify256(benchmark::State& state) {
    const auto spec = ring_of_rings(16);
    sva::VerifyOptions opt;
    opt.cross_check = false;
    opt.jobs = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(sva::verify(spec, opt));
    }
}
BENCHMARK(BM_Verify256)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    run_experiment();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
