// Experiment §5 (the paper's headline result): determinism of the
// synchro-tokens system under delay perturbation.
//
// Paper: a system of three SBs and six FIFOs was simulated with FIFO delays,
// token-ring delays and local clock frequencies perturbed to 50/75/150/200 %
// of nominal; in all >16,000 simulations the data sequences observed at each
// SB's I/Os over the first 100 local clock cycles matched the nominal run
// exactly — and with the synchro-tokens control logic bypassed (interfaces
// and clocks forced always-enabled) the sequences were nondeterministic.
//
// This bench reruns exactly that experiment shape: single-parameter sweeps
// plus seeded random multi-parameter combinations totalling >16,000 runs for
// the synchro-tokens SoC, and a (smaller) control sweep for the bypassed
// two-flop baseline. Set ST_QUICK=1 for a reduced run count.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "baselines/baseline_soc.hpp"
#include "bench_util.hpp"
#include "runner/runner.hpp"
#include "sim/random.hpp"
#include "system/delay_config.hpp"
#include "system/soc.hpp"
#include "system/testbenches.hpp"
#include "verify/determinism.hpp"

namespace {

using namespace st;

constexpr unsigned kPercents[] = {50, 75, 100, 150, 200};

/// Clock periods shrink the datapath timing budget; keep them inside the
/// envelope the timing audit certifies (>= 75 % of nominal).
unsigned clamp_clock(unsigned pct) { return pct < 75 ? 75 : pct; }

std::vector<sys::DelayConfig> build_sweep(const sys::SocSpec& spec,
                                          std::size_t total_runs) {
    const auto nominal = sys::DelayConfig::nominal(spec);
    std::vector<sys::DelayConfig> sweep;
    // (a) every parameter alone at each non-nominal percentage,
    for (std::size_t d = 0; d < nominal.dimensions(); ++d) {
        const bool is_clock = d >= nominal.dimensions() - nominal.clock_pct.size();
        for (const unsigned pct : kPercents) {
            if (pct == 100) continue;
            auto cfg = nominal;
            cfg.set(d, is_clock ? clamp_clock(pct) : pct);
            sweep.push_back(cfg);
        }
    }
    // (b) seeded random joint assignments until the target count.
    sim::Rng rng(0x5eed);
    while (sweep.size() < total_runs) {
        auto cfg = nominal;
        for (std::size_t d = 0; d < nominal.dimensions(); ++d) {
            const bool is_clock =
                d >= nominal.dimensions() - nominal.clock_pct.size();
            const unsigned pct = kPercents[rng.next_below(5)];
            cfg.set(d, is_clock ? clamp_clock(pct) : pct);
        }
        sweep.push_back(cfg);
    }
    return sweep;
}

void run_experiment() {
    const std::size_t target = bench::quick_mode() ? 600 : 16200;
    const std::size_t jobs = runner::hardware_jobs();
    const sys::SocSpec spec = sys::make_triangle_spec();
    const auto sweep = build_sweep(spec, target);

    bench::banner("Paper §5 determinism experiment (3 SBs, 6 FIFOs)");
    std::printf("perturbing %zu delay parameters to {50,75,100,150,200}%% "
                "(clocks clamped to >=75%%), %zu runs, first 100 local "
                "cycles per SB, %zu parallel job(s)\n",
                sys::DelayConfig::nominal(spec).dimensions(), sweep.size(),
                jobs);

    // --- synchro-tokens arm ---
    // Each perturbation elaborates its own Soc; the st::runner engine fans
    // the sweep out across hardware threads with a jobs-invariant result.
    verify::DeterminismHarness<sys::DelayConfig> st_harness(
        [&](const sys::DelayConfig& cfg) {
            sys::Soc soc(sys::apply(spec, cfg));
            soc.run_cycles(140, sim::ms(2));
            return soc.traces();
        },
        sys::DelayConfig::nominal(spec), 100);
    const auto st_result = st_harness.sweep(sweep, jobs);

    // --- bypassed control arm (two-flop synchronizers, free clocks) ---
    const std::size_t control_runs =
        bench::quick_mode() ? 100 : std::min<std::size_t>(sweep.size(), 2000);
    verify::DeterminismHarness<sys::DelayConfig> ctl_harness(
        [&](const sys::DelayConfig& cfg) {
            baseline::BaselineSoc soc(sys::apply(spec, cfg),
                                      baseline::BaselineSoc::Kind::kTwoFlop);
            soc.run_cycles(140, sim::ms(2));
            return soc.traces();
        },
        sys::DelayConfig::nominal(spec), 100);
    const auto ctl_result = ctl_harness.sweep(
        std::vector<sys::DelayConfig>(sweep.begin(),
                                      sweep.begin() + static_cast<std::ptrdiff_t>(control_runs)),
        jobs);

    std::printf("\n%-28s | %10s | %10s | %10s\n", "configuration", "runs",
                "match", "mismatch");
    std::printf("-----------------------------+------------+------------+-----------\n");
    std::printf("%-28s | %10llu | %10llu | %10llu\n", "synchro-tokens",
                static_cast<unsigned long long>(st_result.runs),
                static_cast<unsigned long long>(st_result.matches),
                static_cast<unsigned long long>(st_result.mismatches));
    std::printf("%-28s | %10llu | %10llu | %10llu\n",
                "bypassed (two-flop sync)",
                static_cast<unsigned long long>(ctl_result.runs),
                static_cast<unsigned long long>(ctl_result.matches),
                static_cast<unsigned long long>(ctl_result.mismatches));

    std::printf("\npaper: all >16,000 synchro-tokens runs matched exactly; "
                "bypassed logic was nondeterministic.\n");
    std::printf("ours : %s / control mismatch rate %.1f%%\n",
                st_result.all_match() ? "ALL MATCH" : "MISMATCHES PRESENT",
                100.0 * static_cast<double>(ctl_result.mismatches) /
                    static_cast<double>(ctl_result.runs ? ctl_result.runs : 1));
    if (!st_result.all_match()) {
        for (const auto& e : st_result.examples) {
            std::printf("  example: run %llu: %s\n",
                        static_cast<unsigned long long>(e.index),
                        e.locus.c_str());
        }
    }
}

void BM_OnePerturbationRun(benchmark::State& state) {
    const auto spec = sys::make_triangle_spec();
    auto cfg = sys::DelayConfig::nominal(spec);
    cfg.fifo_pct.assign(cfg.fifo_pct.size(), 150);
    for (auto _ : state) {
        sys::Soc soc(sys::apply(spec, cfg));
        soc.run_cycles(140, sim::ms(2));
        benchmark::DoNotOptimize(verify::fingerprint(soc.traces()));
    }
}
BENCHMARK(BM_OnePerturbationRun)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    run_experiment();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
