// Experiment §4.2 debug & test features: deterministic clock-stop
// breakpoints via token holding, single-stepping, scan-chain access to
// architectural state, and clock-frequency shmooing through the
// tester-loadable divider registers — all over the IEEE 1149.1 TAP of the
// Test SB, in Interlocked mode.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hpp"
#include "system/soc.hpp"
#include "system/testbenches.hpp"
#include "tap/test_sb.hpp"
#include "tap/tester.hpp"
#include "workload/traffic.hpp"

namespace {

using namespace st;

struct Rig {
    explicit Rig(sys::PairOptions opt = {})
        : soc(sys::make_pair_spec(opt)), tsb(soc, tap::TestSb::Params{}) {
        core::TokenNode::Params mission;
        mission.hold = 2;
        mission.recycle = 12;
        core::TokenNode::Params test_side;
        test_side.hold = 2;
        test_side.recycle = 30;
        test_side.initial_holder = true;
        tsb.attach_ring(0, mission, test_side, 500, 500);
        tsb.attach_ring(1, mission, test_side, 500, 500);
        tsb.add_default_scan_targets();
        soc.start();
    }
    sys::Soc soc;
    tap::TestSb tsb;
};

void run_experiment() {
    bench::banner("§4.2 deterministic breakpoint (token hold -> clock stop)");
    Rig rig;
    tap::TesterDriver drv(rig.tsb);
    drv.reset();
    std::printf("IDCODE readback: 0x%08x\n", drv.read_idcode());

    drv.shift_ir(tap::TestSb::Opcodes::kTokenHold);
    drv.shift_dr_word(0b11, 16);  // park both tokens via the TAP
    const auto pulses = rig.tsb.wait_for_system_stop();
    std::printf("tokens parked via ST_TOKENHOLD; all mission clocks stopped "
                "after %llu TCK pulses at cycles {alpha=%llu, beta=%llu}\n",
                static_cast<unsigned long long>(pulses),
                static_cast<unsigned long long>(rig.soc.wrapper(0).clock().cycles()),
                static_cast<unsigned long long>(rig.soc.wrapper(1).clock().cycles()));

    bench::banner("scan access to stopped state");
    const auto image = drv.scan_transaction({});
    std::printf("scan chain: %zu payload bits + %zu empty tail stages + "
                "write-enable cell\n",
                rig.tsb.scan_chain().payload_bits(),
                rig.tsb.scan_chain().tail_bits());
    std::uint64_t lfsr = 0;
    for (int b = 0; b < 64; ++b) {
        if (image[static_cast<std::size_t>(b)]) lfsr |= 1ull << b;
    }
    const auto& kernel = dynamic_cast<const wl::TrafficKernel&>(
        rig.soc.wrapper(0).block().kernel());
    std::printf("alpha LFSR via scan: 0x%016llx (direct: 0x%016llx) %s\n",
                static_cast<unsigned long long>(lfsr),
                static_cast<unsigned long long>(kernel.scan_state()[0]),
                lfsr == kernel.scan_state()[0] ? "MATCH" : "MISMATCH");

    bench::banner("single-stepping (natural breakpoints, paper §4.2)");
    for (int step = 0; step < 5; ++step) {
        const auto a0 = rig.soc.wrapper(0).clock().cycles();
        const auto b0 = rig.soc.wrapper(1).clock().cycles();
        rig.tsb.single_step();
        rig.tsb.wait_for_system_stop();
        std::printf("step %d: alpha +%llu cycles, beta +%llu cycles\n", step,
                    static_cast<unsigned long long>(
                        rig.soc.wrapper(0).clock().cycles() - a0),
                    static_cast<unsigned long long>(
                        rig.soc.wrapper(1).clock().cycles() - b0));
    }

    bench::banner("frequency shmoo via tester-loadable divider registers");
    std::printf("%5s %5s | %9s | %8s | %s\n", "div_a", "div_b", "consumed",
                "stops", "deterministic-rerun");
    for (const unsigned da : {1u, 2u}) {
        for (const unsigned db : {1u, 2u, 4u}) {
            const auto run_once = [&](bool print) {
                sys::Soc soc(sys::make_pair_spec());
                soc.start();
                soc.wrapper(0).clock().set_divider(da);
                soc.wrapper(1).clock().set_divider(db);
                soc.run_cycles(200, sim::ms(2));
                const auto& k = dynamic_cast<const wl::TrafficKernel&>(
                    soc.wrapper(1).block().kernel());
                const auto consumed = k.words_consumed();
                const auto sig = k.signature();
                const auto stops = soc.wrapper(0).clock().stop_events() +
                                   soc.wrapper(1).clock().stop_events();
                if (print) {
                    std::printf("%5u %5u | %9llu | %8llu | ", da, db,
                                static_cast<unsigned long long>(consumed),
                                static_cast<unsigned long long>(stops));
                }
                return sig;
            };
            const auto s1 = run_once(true);
            const auto s2 = run_once(false);
            std::printf("%s\n", s1 == s2 ? "yes" : "NO");
        }
    }
    std::printf("(shmoo points with divider mismatch stall deterministically "
                "— signatures reproduce exactly)\n");
}

void BM_ScanTransaction(benchmark::State& state) {
    Rig rig;
    rig.tsb.hold_all_tokens(true);
    rig.tsb.wait_for_system_stop();
    tap::TesterDriver drv(rig.tsb);
    drv.reset();
    for (auto _ : state) {
        benchmark::DoNotOptimize(drv.scan_transaction({}).size());
    }
}
BENCHMARK(BM_ScanTransaction)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
    run_experiment();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
