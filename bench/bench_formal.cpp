// Paper future work: "Formal methods need to be applied to prove that
// synchro-tokens enforces deterministic behavior." This bench runs the
// bounded model checker of src/formal over a grid of hold/recycle
// configurations: every timing interleaving of a two-node ring (a strict
// superset of physically realizable delays, including arbitrarily early and
// late tokens) must produce one unique cycle-indexed enable schedule per
// node, with token conservation as an auxiliary invariant.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hpp"
#include "formal/ring_model.hpp"

namespace {

using namespace st;

void run_experiment() {
    bench::banner("Bounded formal proof of the determinism property");
    std::printf("%4s %4s %5s | %10s %11s | %7s | %s\n", "H", "R", "R0_b",
                "states", "transitions", "proved", "schedule head (node A)");
    std::uint64_t total_states = 0;
    bool all_proved = true;
    for (const std::uint32_t h : {1u, 2u, 3u, 4u, 6u}) {
        for (const std::uint32_t extra : {1u, 2u, 4u, 8u}) {
            formal::RingModel::Config cfg;
            cfg.hold_a = cfg.hold_b = h;
            cfg.recycle_a = cfg.recycle_b = h + extra;
            cfg.initial_recycle_b = h + extra - 1;
            cfg.max_cycles = 22;
            const auto r = formal::RingModel(cfg).explore();
            total_states += r.states_explored;
            all_proved &= r.deterministic && r.invariants_hold;
            char sched[32] = {0};
            for (int i = 0; i < 16 && i < static_cast<int>(r.schedule_a.size());
                 ++i) {
                sched[i] = r.schedule_a[static_cast<std::size_t>(i)] < 0
                               ? '?'
                               : static_cast<char>(
                                     '0' + r.schedule_a[static_cast<std::size_t>(i)]);
            }
            std::printf("%4u %4u %5u | %10llu %11llu | %7s | %s\n", h,
                        h + extra, cfg.initial_recycle_b,
                        static_cast<unsigned long long>(r.states_explored),
                        static_cast<unsigned long long>(r.transitions),
                        r.deterministic ? "yes" : "NO", sched);
            if (!r.deterministic) {
                std::printf("      violation: %s\n", r.violation.c_str());
            }
        }
    }
    std::printf("\ntotal states explored: %llu; property %s over the full "
                "grid (bound: 22 cycles per node)\n",
                static_cast<unsigned long long>(total_states),
                all_proved ? "PROVED" : "REFUTED");

    bench::banner("N-station round-robin ring generalization");
    std::printf("%9s %4s %4s | %10s | %s\n", "stations", "H", "R", "states",
                "proved");
    for (const std::size_t n : {2u, 3u, 4u, 5u}) {
        for (const std::uint32_t h : {1u, 2u, 3u}) {
            formal::MultiRingModel::Config cfg;
            for (std::size_t i = 0; i < n; ++i) {
                formal::MultiRingModel::Station s;
                s.hold = h;
                s.recycle = h * static_cast<std::uint32_t>(n) + 4;
                s.initial_recycle = s.recycle;
                cfg.stations.push_back(s);
            }
            cfg.max_cycles = 14;
            const auto r = formal::MultiRingModel(cfg).explore();
            std::printf("%9zu %4u %4u | %10llu | %s\n", n, h,
                        cfg.stations[0].recycle,
                        static_cast<unsigned long long>(r.states_explored),
                        r.deterministic && r.invariants_hold ? "yes" : "NO");
        }
    }
}

void BM_Explore(benchmark::State& state) {
    formal::RingModel::Config cfg;
    cfg.max_cycles = static_cast<std::uint32_t>(state.range(0));
    formal::RingModel model(cfg);
    for (auto _ : state) {
        benchmark::DoNotOptimize(model.explore().states_explored);
    }
}
BENCHMARK(BM_Explore)->Arg(12)->Arg(24)->Arg(48)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    run_experiment();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
