// Experiment Table 1: synchro-tokens component area models in average
// 2-input-gate equivalents, plus the system-wide overhead discussion of §5.
//
// The paper measured a 0.25 um cell library [15]; we re-derive the models
// from gate-level netlists of each component characterized against a
// relative-size cell library (see DESIGN.md §2 for the substitution). The
// paper's structural claims reproduced here:
//   * FIFO interface and FIFO stage areas are base + per_bit * data bits,
//   * the node is data-width-independent (paper: 145 gate-eq),
//   * system-wide overhead is low because there is one node pair per
//     communicating SB pair, and comparisons with other GALS schemes should
//     exclude the FIFO components (any scheme needs those).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "area/area_model.hpp"
#include "bench_util.hpp"
#include "system/testbenches.hpp"

namespace {

using namespace st;

void print_table1() {
    area::GateLibrary lib;
    const auto t = area::make_table1(lib);

    bench::banner("Table 1: synchro-tokens component area models");
    std::printf("%s", t.to_string().c_str());
    std::printf("paper reference row: Node = 145 (ours: %.0f, %+.1f%%)\n",
                t.node, 100.0 * (t.node - 145.0) / 145.0);

    bench::banner("Component areas at common bus widths (gate-eq)");
    std::printf("%8s | %14s | %15s | %10s\n", "bits", "in interface",
                "out interface", "FIFO stage");
    for (const unsigned bits : {8u, 16u, 32u, 64u}) {
        std::printf("%8u | %14.1f | %15.1f | %10.1f\n", bits,
                    area::input_interface_netlist(bits).total_gate_eq(lib),
                    area::output_interface_netlist(bits).total_gate_eq(lib),
                    area::fifo_stage_netlist(bits).total_gate_eq(lib));
    }

    bench::banner("System-wide overhead (paper validation system + variants)");
    std::printf("%-10s | %10s | %12s | %12s | %12s\n", "system", "nodes",
                "interfaces", "FIFO stages", "total");
    const auto row = [&](const char* name, const sys::SocSpec& spec) {
        const auto o = area::system_overhead(spec, lib);
        std::printf("%-10s | %10.0f | %12.0f | %12.0f | %12.0f\n", name,
                    o.nodes, o.interfaces, o.fifo_stages, o.total());
    };
    row("pair", sys::make_pair_spec());
    row("triangle", sys::make_triangle_spec());
    sys::ChainOptions chain;
    chain.length = 8;
    row("chain-8", sys::make_chain_spec(chain));
    std::printf("(synchro-tokens-specific overhead = the node column only)\n");
}

void BM_Table1Fit(benchmark::State& state) {
    area::GateLibrary lib;
    for (auto _ : state) {
        benchmark::DoNotOptimize(area::make_table1(lib).node);
    }
}
BENCHMARK(BM_Table1Fit);

}  // namespace

int main(int argc, char** argv) {
    print_table1();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
