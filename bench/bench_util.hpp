#pragma once

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace st::bench {

/// Honour ST_QUICK=1 for CI-speed runs of the heavyweight sweeps.
inline bool quick_mode() {
    const char* v = std::getenv("ST_QUICK");
    return v != nullptr && v[0] != '\0' && v[0] != '0';
}

inline void banner(const std::string& title) {
    std::printf("\n==== %s ====\n", title.c_str());
}

/// Robust summary of repeated timing samples. Medians resist the one-off
/// outliers (page faults, scheduler preemption) that make single-shot
/// numbers jitter; CV (stddev/mean) states how trustworthy a row is.
struct SampleStats {
    double median = 0.0;
    double p95 = 0.0;
    double mean = 0.0;
    double stddev = 0.0;
    double cv = 0.0;  ///< stddev / mean; 0 when mean is 0
    double min = 0.0;
    double max = 0.0;
    std::size_t samples = 0;
};

inline SampleStats compute_stats(std::vector<double> xs) {
    SampleStats s;
    if (xs.empty()) return s;
    std::sort(xs.begin(), xs.end());
    s.samples = xs.size();
    s.min = xs.front();
    s.max = xs.back();
    const std::size_t n = xs.size();
    s.median = n % 2 == 1 ? xs[n / 2] : 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
    // Nearest-rank p95 (ceil(0.95 n), 1-based) — exact for small n.
    const std::size_t rank =
        static_cast<std::size_t>(std::ceil(0.95 * static_cast<double>(n)));
    s.p95 = xs[std::min(n - 1, rank == 0 ? 0 : rank - 1)];
    double sum = 0.0;
    for (const double x : xs) sum += x;
    s.mean = sum / static_cast<double>(n);
    double var = 0.0;
    for (const double x : xs) var += (x - s.mean) * (x - s.mean);
    var /= static_cast<double>(n);
    s.stddev = std::sqrt(var);
    s.cv = s.mean != 0.0 ? s.stddev / s.mean : 0.0;
    return s;
}

/// HPC measurement discipline in one helper: `warmup` unrecorded runs to
/// populate caches/pools/branch predictors, then `samples` timed runs.
/// Returns per-run wall-clock seconds.
inline std::vector<double> measure_seconds(std::size_t warmup,
                                           std::size_t samples,
                                           const std::function<void()>& fn) {
    for (std::size_t i = 0; i < warmup; ++i) fn();
    std::vector<double> xs;
    xs.reserve(samples);
    for (std::size_t i = 0; i < samples; ++i) {
        const auto t0 = std::chrono::steady_clock::now();
        fn();
        const auto t1 = std::chrono::steady_clock::now();
        xs.push_back(std::chrono::duration<double>(t1 - t0).count());
    }
    return xs;
}

/// Machine-readable perf trajectory: collects (metric, value, units, jobs)
/// rows and writes them as a JSON array, so successive PRs can diff measured
/// numbers (`BENCH_scheduler.json`, `BENCH_campaign.json`, ...) instead of
/// scraping bench stdout. See docs/PERF.md for the schema and the recorded
/// history.
class JsonReport {
  public:
    explicit JsonReport(std::string path) : path_(std::move(path)) {}

    void add(const std::string& metric, double value,
             const std::string& units, std::size_t jobs) {
        entries_.push_back(Entry{metric, units, value, jobs, {}});
    }

    /// A row keyed by both grid axes: worker count and lockstep lane
    /// width. Emitted with an explicit "gang" field so downstream schema
    /// checks can validate the full (jobs, gang) coordinates.
    void add_gang(const std::string& metric, double value,
                  const std::string& units, std::size_t jobs,
                  std::size_t gang) {
        Entry e{metric, units, value, jobs, {}};
        e.gang = gang;
        e.has_gang = true;
        entries_.push_back(std::move(e));
    }

    /// A row with full measurement statistics: `value` is the median (the
    /// number perf gates compare), and the distribution rides along so the
    /// recorded history can tell a real regression from sampling noise.
    void add_stats(const std::string& metric, const SampleStats& s,
                   const std::string& units, std::size_t jobs) {
        Entry e{metric, units, s.median, jobs, {}};
        e.stats = s;
        e.has_stats = true;
        entries_.push_back(std::move(e));
    }

    /// Statistics row on the (jobs, gang) grid.
    void add_gang_stats(const std::string& metric, const SampleStats& s,
                        const std::string& units, std::size_t jobs,
                        std::size_t gang) {
        Entry e{metric, units, s.median, jobs, {}};
        e.stats = s;
        e.has_stats = true;
        e.gang = gang;
        e.has_gang = true;
        entries_.push_back(std::move(e));
    }

    /// Write the collected rows. Returns false (and warns) on I/O failure —
    /// benches still print their human-readable tables either way.
    bool write() const {
        std::FILE* f = std::fopen(path_.c_str(), "w");
        if (f == nullptr) {
            std::fprintf(stderr, "bench: cannot write %s\n", path_.c_str());
            return false;
        }
        std::fprintf(f, "[\n");
        for (std::size_t i = 0; i < entries_.size(); ++i) {
            const Entry& e = entries_[i];
            std::fprintf(f,
                         "  {\"metric\": \"%s\", \"value\": %.6g, "
                         "\"units\": \"%s\", \"jobs\": %zu",
                         e.metric.c_str(), e.value, e.units.c_str(), e.jobs);
            if (e.has_gang) {
                std::fprintf(f, ", \"gang\": %zu", e.gang);
            }
            if (e.has_stats) {
                std::fprintf(f,
                             ", \"median\": %.6g, \"p95\": %.6g, "
                             "\"stddev\": %.6g, \"cv\": %.4g, "
                             "\"samples\": %zu",
                             e.stats.median, e.stats.p95, e.stats.stddev,
                             e.stats.cv, e.stats.samples);
            }
            std::fprintf(f, "}%s\n", i + 1 < entries_.size() ? "," : "");
        }
        std::fprintf(f, "]\n");
        std::fclose(f);
        std::printf("wrote %s (%zu metric(s))\n", path_.c_str(),
                    entries_.size());
        return true;
    }

  private:
    struct Entry {
        std::string metric;
        std::string units;
        double value = 0.0;
        std::size_t jobs = 1;
        SampleStats stats;
        bool has_stats = false;
        std::size_t gang = 1;
        bool has_gang = false;
    };
    std::string path_;
    std::vector<Entry> entries_;
};

}  // namespace st::bench
