#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

namespace st::bench {

/// Honour ST_QUICK=1 for CI-speed runs of the heavyweight sweeps.
inline bool quick_mode() {
    const char* v = std::getenv("ST_QUICK");
    return v != nullptr && v[0] != '\0' && v[0] != '0';
}

inline void banner(const std::string& title) {
    std::printf("\n==== %s ====\n", title.c_str());
}

}  // namespace st::bench
