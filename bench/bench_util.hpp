#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

namespace st::bench {

/// Honour ST_QUICK=1 for CI-speed runs of the heavyweight sweeps.
inline bool quick_mode() {
    const char* v = std::getenv("ST_QUICK");
    return v != nullptr && v[0] != '\0' && v[0] != '0';
}

inline void banner(const std::string& title) {
    std::printf("\n==== %s ====\n", title.c_str());
}

/// Machine-readable perf trajectory: collects (metric, value, units, jobs)
/// rows and writes them as a JSON array, so successive PRs can diff measured
/// numbers (`BENCH_scheduler.json`, `BENCH_campaign.json`, ...) instead of
/// scraping bench stdout. See docs/PERF.md for the schema and the recorded
/// history.
class JsonReport {
  public:
    explicit JsonReport(std::string path) : path_(std::move(path)) {}

    void add(const std::string& metric, double value,
             const std::string& units, std::size_t jobs) {
        entries_.push_back(Entry{metric, units, value, jobs});
    }

    /// Write the collected rows. Returns false (and warns) on I/O failure —
    /// benches still print their human-readable tables either way.
    bool write() const {
        std::FILE* f = std::fopen(path_.c_str(), "w");
        if (f == nullptr) {
            std::fprintf(stderr, "bench: cannot write %s\n", path_.c_str());
            return false;
        }
        std::fprintf(f, "[\n");
        for (std::size_t i = 0; i < entries_.size(); ++i) {
            const Entry& e = entries_[i];
            std::fprintf(f,
                         "  {\"metric\": \"%s\", \"value\": %.6g, "
                         "\"units\": \"%s\", \"jobs\": %zu}%s\n",
                         e.metric.c_str(), e.value, e.units.c_str(), e.jobs,
                         i + 1 < entries_.size() ? "," : "");
        }
        std::fprintf(f, "]\n");
        std::fclose(f);
        std::printf("wrote %s (%zu metric(s))\n", path_.c_str(),
                    entries_.size());
        return true;
    }

  private:
    struct Entry {
        std::string metric;
        std::string units;
        double value = 0.0;
        std::size_t jobs = 1;
    };
    std::string path_;
    std::vector<Entry> entries_;
};

}  // namespace st::bench
