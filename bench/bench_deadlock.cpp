// Experiment §5 deadlock claim: "A synchro-tokens system may deadlock if
// there is a cyclic dependency among a set of SBs in which each has stopped
// its clock to wait for a late token. Whether or not deadlock occurs is
// deterministic; thus, no detection or recovery methodology is needed. A
// set of deadlock-preventing design rules ... has been formally derived."
//
// This bench (a) shows a deliberately under-provisioned cyclic system
// deadlocking at identical local cycle counts under every delay
// perturbation, (b) shows the derived design rules rejecting exactly the
// configurations that deadlock, and (c) sweeps recycle slack to locate the
// rule boundary.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "deadlock/rules.hpp"
#include "deadlock/waitfor.hpp"
#include "runner/runner.hpp"
#include "system/delay_config.hpp"
#include "system/soc.hpp"
#include "system/testbenches.hpp"
#include "workload/traffic.hpp"

namespace {

using namespace st;

sys::SocSpec cyclic_spec(std::uint32_t recycle) {
    sys::SocSpec spec;
    for (int i = 0; i < 3; ++i) {
        sys::SbSpec sb;
        sb.name = "sb" + std::to_string(i);
        sb.clock.base_period = 1000;
        sb.clock.restart_delay = 200;
        sb.make_kernel = [i] {
            return std::make_unique<wl::TrafficKernel>(
                0x2000u + static_cast<unsigned>(i));
        };
        spec.sbs.push_back(sb);
    }
    for (std::size_t i = 0; i < 3; ++i) {
        sys::RingSpec ring;
        ring.name = "ring" + std::to_string(i);
        ring.sb_a = i;
        ring.sb_b = (i + 1) % 3;
        ring.node_a.hold = 4;
        ring.node_a.recycle = recycle;
        ring.node_a.initial_holder = true;
        ring.node_b.hold = 4;
        ring.node_b.recycle = recycle;
        ring.delay_ab = 900;
        ring.delay_ba = 900;
        spec.rings.push_back(ring);
    }
    return spec;
}

struct Outcome {
    bool deadlocked = false;
    std::uint64_t cycles[3] = {0, 0, 0};
};

Outcome run_config(const sys::SocSpec& spec, const sys::DelayConfig& cfg) {
    sys::Soc soc(sys::apply(spec, cfg));
    soc.run_cycles(400, sim::ms(4));
    Outcome o;
    o.deadlocked = soc.deadlocked();
    for (std::size_t i = 0; i < 3; ++i) {
        o.cycles[i] = soc.wrapper(i).clock().cycles();
    }
    return o;
}

void run_experiment() {
    bench::banner("Deadlock determinism under delay perturbation");
    std::printf("3-SB cyclic ring topology, H=4, recycle=1 (starved)\n");
    const auto spec = cyclic_spec(1);
    const auto nominal = run_config(spec, sys::DelayConfig::nominal(spec));
    std::printf("%-14s | %9s | cycles at halt\n", "perturbation", "deadlock");
    std::printf("%-14s | %9s | %llu %llu %llu\n", "nominal",
                nominal.deadlocked ? "yes" : "no",
                static_cast<unsigned long long>(nominal.cycles[0]),
                static_cast<unsigned long long>(nominal.cycles[1]),
                static_cast<unsigned long long>(nominal.cycles[2]));
    // Independent perturbed runs, fanned out on the st::runner engine and
    // reduced (printed, compared) in sweep order.
    const std::size_t jobs = runner::hardware_jobs();
    const std::vector<unsigned> pcts = {50u, 75u, 150u, 200u};
    bool all_identical = true;
    runner::sweep(
        pcts.size(), jobs,
        [&](std::size_t i) {
            auto cfg = sys::DelayConfig::nominal(spec);
            cfg.ring_ab_pct.assign(cfg.ring_ab_pct.size(), pcts[i]);
            cfg.ring_ba_pct.assign(cfg.ring_ba_pct.size(), pcts[i]);
            cfg.fifo_pct.assign(cfg.fifo_pct.size(), pcts[i]);
            return run_config(spec, cfg);
        },
        [&](std::size_t i, Outcome&& o) {
            char label[32];
            std::snprintf(label, sizeof label, "delays %u%%", pcts[i]);
            std::printf("%-14s | %9s | %llu %llu %llu\n", label,
                        o.deadlocked ? "yes" : "no",
                        static_cast<unsigned long long>(o.cycles[0]),
                        static_cast<unsigned long long>(o.cycles[1]),
                        static_cast<unsigned long long>(o.cycles[2]));
            all_identical &= o.deadlocked == nominal.deadlocked &&
                             o.cycles[0] == nominal.cycles[0] &&
                             o.cycles[1] == nominal.cycles[1] &&
                             o.cycles[2] == nominal.cycles[2];
        });
    std::printf("=> deadlock behaviour %s across perturbations (paper: "
                "deterministic)\n",
                all_identical ? "IDENTICAL" : "DIVERGED");

    {
        sys::Soc soc(spec);
        soc.run_cycles(400, sim::ms(4));
        std::printf("\nruntime diagnosis: %s\n",
                    dl::diagnose(soc).summary().c_str());
    }

    bench::banner("Design-rule boundary: recycle slack sweep");
    std::printf("%8s | %12s | %10s\n", "recycle", "rule check", "simulated");
    const std::vector<std::uint32_t> recycles = {1u,  4u,  8u, 12u,
                                                 16u, 24u, 40u};
    struct BoundaryRow {
        bool rules_ok = false;
        bool deadlocked = false;
    };
    runner::sweep(
        recycles.size(), jobs,
        [&](std::size_t i) {
            const auto s = cyclic_spec(recycles[i]);
            BoundaryRow row;
            row.rules_ok = dl::check_rules(s).ok;
            row.deadlocked =
                run_config(s, sys::DelayConfig::nominal(s)).deadlocked;
            return row;
        },
        [&](std::size_t i, BoundaryRow&& row) {
            std::printf("%8u | %12s | %10s\n", recycles[i],
                        row.rules_ok ? "safe" : "RISK",
                        row.deadlocked ? "DEADLOCK" : "live");
        });
    std::printf("(the static rule must be conservative: every simulated "
                "deadlock must sit in a RISK row)\n");
}

void BM_RuleCheckTriangle(benchmark::State& state) {
    const auto spec = sys::make_triangle_spec();
    for (auto _ : state) {
        benchmark::DoNotOptimize(dl::check_rules(spec).ok);
    }
}
BENCHMARK(BM_RuleCheckTriangle);

}  // namespace

int main(int argc, char** argv) {
    run_experiment();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
