// Parallel run-execution engine: wall-clock scaling of the st_fuzz pair
// campaign over st::runner jobs, with the engine's core guarantee checked on
// every row — the CampaignSummary must be bit-identical at every jobs value
// (case draws are jobs-independent, reduction is case-index-ordered).
//
// Numbers land in BENCH_campaign.json (docs/PERF.md) so future PRs track the
// speedup trajectory. On a 1-core host the speedup is honestly ~1.0x; the
// determinism check is what must hold everywhere.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "fuzz/campaign.hpp"
#include "runner/runner.hpp"

namespace {

using namespace st;

double timed_run(const fuzz::Campaign& campaign, std::uint64_t runs,
                 std::uint64_t seed, std::size_t jobs,
                 fuzz::CampaignSummary& out) {
    const auto t0 = std::chrono::steady_clock::now();
    out = campaign.run(runs, seed, {}, jobs);
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

void run_experiment() {
    const std::uint64_t runs = bench::quick_mode() ? 40 : 200;
    const std::uint64_t seed = 1;

    fuzz::CampaignConfig cfg;
    cfg.spec_name = "pair";
    cfg.cycles = 100;
    const fuzz::Campaign campaign(cfg);

    bench::banner("st::runner campaign scaling (pair, fault-free)");
    std::printf("hardware threads: %zu (ST_JOBS overrides)\n",
                runner::hardware_jobs());

    std::vector<std::size_t> jobs_axis = {1, 2, 4};
    const std::size_t hw = runner::hardware_jobs();
    if (hw > 4) jobs_axis.push_back(hw);

    bench::JsonReport report("BENCH_campaign.json");
    fuzz::CampaignSummary baseline;
    double t1 = 0.0;
    std::printf("%6s | %9s | %9s | %8s | %s\n", "jobs", "seconds", "runs/s",
                "speedup", "summary vs jobs=1");
    for (const std::size_t jobs : jobs_axis) {
        fuzz::CampaignSummary s;
        const double secs = timed_run(campaign, runs, seed, jobs, s);
        if (jobs == 1) {
            baseline = s;
            t1 = secs;
        }
        const bool identical = s == baseline;
        std::printf("%6zu | %9.3f | %9.1f | %7.2fx | %s\n", jobs, secs,
                    static_cast<double>(runs) / (secs > 0 ? secs : 1e-9),
                    t1 / (secs > 0 ? secs : 1e-9),
                    identical ? "bit-identical" : "DIVERGED");
        report.add("campaign_pair_runs_per_sec",
                   static_cast<double>(runs) / (secs > 0 ? secs : 1e-9),
                   "runs/s", jobs);
        report.add("campaign_pair_speedup_vs_jobs1",
                   t1 / (secs > 0 ? secs : 1e-9), "x", jobs);
        if (!identical) {
            std::fprintf(stderr,
                         "bench_campaign: summary diverged at jobs=%zu — "
                         "the engine's determinism contract is broken\n",
                         jobs);
            std::exit(1);
        }
    }

    // Warm-up fast-forward: every case shares a nominal prefix; forking it
    // from one snapshot removes the re-simulated prefix from each case's
    // cost. Restore-equivalence demands the forked summary stay
    // bit-identical to the re-simulated baseline — checked on every run.
    bench::banner("campaign warm-up fast-forward (pair, warmup=60/100)");
    fuzz::CampaignConfig wcfg;
    wcfg.spec_name = "pair";
    wcfg.cycles = 100;
    wcfg.warmup_cycles = 60;
    wcfg.warmup_fork = false;
    const fuzz::Campaign warm_plain(wcfg);
    wcfg.warmup_fork = true;
    const fuzz::Campaign warm_forked(wcfg);

    std::printf("%10s | %9s | %9s | %8s | %s\n", "prefix", "seconds",
                "runs/s", "speedup", "summary vs re-simulated");
    fuzz::CampaignSummary s_plain;
    const double secs_plain = timed_run(warm_plain, runs, seed, 1, s_plain);
    std::printf("%10s | %9.3f | %9.1f | %7.2fx | (baseline)\n",
                "re-sim", secs_plain,
                static_cast<double>(runs) / (secs_plain > 0 ? secs_plain : 1e-9),
                1.0);
    fuzz::CampaignSummary s_forked;
    const double secs_forked = timed_run(warm_forked, runs, seed, 1, s_forked);
    const bool warm_identical = s_forked == s_plain;
    std::printf("%10s | %9.3f | %9.1f | %7.2fx | %s\n", "snap-fork",
                secs_forked,
                static_cast<double>(runs) /
                    (secs_forked > 0 ? secs_forked : 1e-9),
                secs_plain / (secs_forked > 0 ? secs_forked : 1e-9),
                warm_identical ? "bit-identical" : "DIVERGED");
    report.add("campaign_pair_warmup_resim_runs_per_sec",
               static_cast<double>(runs) / (secs_plain > 0 ? secs_plain : 1e-9),
               "runs/s", 1);
    report.add("campaign_pair_warmup_fork_runs_per_sec",
               static_cast<double>(runs) /
                   (secs_forked > 0 ? secs_forked : 1e-9),
               "runs/s", 1);
    report.add("campaign_pair_warmup_fork_speedup",
               secs_plain / (secs_forked > 0 ? secs_forked : 1e-9), "x", 1);
    if (!warm_identical) {
        std::fprintf(stderr,
                     "bench_campaign: snapshot-forked summary diverged from "
                     "the re-simulated baseline — restore-equivalence is "
                     "broken\n");
        std::exit(1);
    }
    report.write();
}

void BM_CampaignRunJobs(benchmark::State& state) {
    fuzz::CampaignConfig cfg;
    cfg.spec_name = "pair";
    cfg.cycles = 100;
    const fuzz::Campaign campaign(cfg);
    const auto jobs = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        const auto s = campaign.run(20, 7, {}, jobs);
        benchmark::DoNotOptimize(s.runs);
    }
}
BENCHMARK(BM_CampaignRunJobs)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    run_experiment();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
