// Parallel run-execution engine: wall-clock scaling of st_fuzz campaigns
// over st::runner jobs, with the engine's core guarantee checked on every
// row — the CampaignSummary must be bit-identical at every jobs value, at
// every shard split, and at every resume point (case draws are
// jobs-independent, reduction is case-index-ordered).
//
// Measurement discipline: every scaling row is warmup + repeated samples,
// reported as median with p95/stddev/CV in BENCH_campaign.json
// (docs/PERF.md), so future PRs can tell a real regression from sampling
// noise. Two campaign shapes bracket the engine's regimes: the 2-SB pair
// spec (case setup dominates) and a generated 64-SB mesh (simulation
// dominates). On a 1-core host the speedup is honestly ~1.0x; the
// determinism checks are what must hold everywhere.
//
// The gang-execution grid re-times both shapes at every (jobs, gang
// width) point — persistent lockstep lanes instead of per-case Socs —
// and records `campaign_*_gang_*` rows carrying both axes, again with the
// bit-identical-summary check on every point.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "fuzz/campaign.hpp"
#include "fuzz/checkpoint.hpp"
#include "runner/runner.hpp"
#include "sva/spec_text.hpp"
#include "topo/topo.hpp"

namespace {

using namespace st;

struct ScalingRow {
    std::size_t jobs = 0;
    bench::SampleStats stats;  ///< per-campaign wall-clock seconds
    bool identical = true;     ///< summary == jobs=1 summary
};

/// Time `runs` cases at each jobs value with warmup + repeated samples.
/// Exits the process if any summary deviates from the jobs=1 baseline.
std::vector<ScalingRow> scale_campaign(const fuzz::Campaign& campaign,
                                       const std::string& name,
                                       std::uint64_t runs, std::uint64_t seed,
                                       const std::vector<std::size_t>& axis,
                                       std::size_t warmup,
                                       std::size_t samples,
                                       bench::JsonReport& report) {
    std::vector<ScalingRow> rows;
    fuzz::CampaignSummary baseline;
    double median1 = 0.0;
    std::printf("%6s | %9s | %9s | %9s | %6s | %8s | %s\n", "jobs",
                "median s", "p95 s", "runs/s", "cv", "speedup",
                "summary vs jobs=1");
    for (const std::size_t jobs : axis) {
        fuzz::CampaignSummary s;
        const auto xs = bench::measure_seconds(
            warmup, samples, [&] { s = campaign.run(runs, seed, {}, jobs); });
        ScalingRow row;
        row.jobs = jobs;
        row.stats = bench::compute_stats(xs);
        if (jobs == axis.front()) {
            baseline = s;
            median1 = row.stats.median;
        }
        row.identical = s == baseline;
        const double med = row.stats.median > 0 ? row.stats.median : 1e-9;
        std::printf("%6zu | %9.3f | %9.3f | %9.1f | %5.1f%% | %7.2fx | %s\n",
                    jobs, row.stats.median, row.stats.p95,
                    static_cast<double>(runs) / med, 100.0 * row.stats.cv,
                    median1 / med,
                    row.identical ? "bit-identical" : "DIVERGED");
        std::vector<double> rates;
        rates.reserve(xs.size());
        for (const double t : xs) {
            rates.push_back(static_cast<double>(runs) / (t > 0 ? t : 1e-9));
        }
        report.add_stats("campaign_" + name + "_runs_per_sec",
                         bench::compute_stats(rates), "runs/s", jobs);
        report.add("campaign_" + name + "_speedup_vs_jobs1", median1 / med,
                   "x", jobs);
        if (!row.identical) {
            std::fprintf(stderr,
                         "bench_campaign: %s summary diverged at jobs=%zu — "
                         "the engine's determinism contract is broken\n",
                         name.c_str(), jobs);
            std::exit(1);
        }
        rows.push_back(row);
    }
    return rows;
}

/// Gang-execution grid: time the campaign at every (jobs, gang width)
/// point, demand the summary stay bit-identical to the scalar jobs=1
/// reference at every point, and record each point as a
/// `campaign_<name>_gang_runs_per_sec` stats row keyed by both axes.
/// The gang=1 column doubles as the scalar baseline for the
/// `campaign_<name>_gang_speedup_vs_scalar` rows.
void gang_grid(const fuzz::Campaign& campaign, const std::string& name,
               std::uint64_t runs, std::uint64_t seed,
               const std::vector<std::size_t>& jobs_axis,
               const std::vector<std::size_t>& gang_axis, std::size_t warmup,
               std::size_t samples, bench::JsonReport& report) {
    fuzz::CampaignSummary reference;
    double scalar_med = 0.0;
    std::printf("%6s | %6s | %9s | %9s | %6s | %10s | %s\n", "jobs", "gang",
                "median s", "runs/s", "cv", "vs scalar",
                "summary vs (jobs=1, gang=1)");
    for (const std::size_t gang : gang_axis) {
        for (const std::size_t jobs : jobs_axis) {
            fuzz::CampaignSummary s;
            fuzz::CampaignControl ctl;
            ctl.gang_width = gang;
            const auto xs = bench::measure_seconds(warmup, samples, [&] {
                s = campaign.run(runs, seed, {}, jobs, ctl);
            });
            const auto stats = bench::compute_stats(xs);
            const double med = stats.median > 0 ? stats.median : 1e-9;
            const bool first = gang == gang_axis.front() &&
                               jobs == jobs_axis.front();
            if (first) {
                reference = s;
                scalar_med = med;
            }
            const bool identical = s == reference;
            std::printf(
                "%6zu | %6zu | %9.3f | %9.1f | %5.1f%% | %9.2fx | %s\n",
                jobs, gang, stats.median,
                static_cast<double>(runs) / med, 100.0 * stats.cv,
                scalar_med / med, identical ? "bit-identical" : "DIVERGED");
            std::vector<double> rates;
            rates.reserve(xs.size());
            for (const double t : xs) {
                rates.push_back(static_cast<double>(runs) /
                                (t > 0 ? t : 1e-9));
            }
            report.add_gang_stats("campaign_" + name + "_gang_runs_per_sec",
                                  bench::compute_stats(rates), "runs/s",
                                  jobs, gang);
            report.add_gang("campaign_" + name + "_gang_speedup_vs_scalar",
                            scalar_med / med, "x", jobs, gang);
            if (!identical) {
                std::fprintf(stderr,
                             "bench_campaign: %s summary diverged at "
                             "jobs=%zu gang=%zu — the gang engine broke "
                             "the determinism contract\n",
                             name.c_str(), jobs, gang);
                std::exit(1);
            }
        }
    }
}

/// The cross-process half of the contract: shard summaries merge to the
/// single-process summary, and a checkpointed stop + resume reproduces the
/// uninterrupted summary. Both checked byte-for-byte; exits on divergence.
void check_shards_and_resume(const fuzz::Campaign& campaign,
                             const std::string& name, std::uint64_t runs,
                             std::uint64_t seed) {
    const fuzz::CampaignSummary whole = campaign.run(runs, seed, {}, 2);

    std::vector<fuzz::CampaignSummary> parts;
    for (std::uint64_t idx = 0; idx < 2; ++idx) {
        fuzz::CampaignControl ctl;
        ctl.shard = runner::Shard{idx, 2};
        parts.push_back(campaign.run(runs, seed, {}, 2, ctl));
    }
    const bool shards_ok = fuzz::merge_shards(parts) == whole;

    const std::string path = "bench_campaign_" + name + ".ckpt";
    fuzz::CampaignControl stop;
    stop.checkpoint_path = path;
    stop.stop_after = runs / 2;
    campaign.run(runs, seed, {}, 2, stop);
    fuzz::CampaignControl resume;
    resume.checkpoint_path = path;
    resume.resume = true;
    const bool resume_ok = campaign.run(runs, seed, {}, 4, resume) == whole;
    std::remove(path.c_str());

    std::printf("%s: 2-shard merge %s, mid-campaign resume %s\n",
                name.c_str(), shards_ok ? "bit-identical" : "DIVERGED",
                resume_ok ? "bit-identical" : "DIVERGED");
    if (!shards_ok || !resume_ok) {
        std::fprintf(stderr,
                     "bench_campaign: %s shard/resume summary diverged from "
                     "the single-process run\n",
                     name.c_str());
        std::exit(1);
    }
}

void run_experiment() {
    const bool quick = bench::quick_mode();
    const std::uint64_t seed = 1;
    const std::size_t warmup = 1;
    const std::size_t samples = quick ? 3 : 5;

    std::vector<std::size_t> jobs_axis = {1, 2, 4};
    const std::size_t hw = runner::hardware_jobs();
    if (hw > 4) jobs_axis.push_back(hw);

    bench::JsonReport report("BENCH_campaign.json");
    report.add("campaign_hardware_threads", static_cast<double>(hw),
               "threads", 1);

    // --- pair: tiny spec, per-case cost dominated by elaboration/setup ---
    const std::uint64_t pair_runs = quick ? 60 : 200;
    fuzz::CampaignConfig cfg;
    cfg.spec_name = "pair";
    cfg.cycles = 100;
    const fuzz::Campaign pair(cfg);

    bench::banner("st::runner campaign scaling (pair, fault-free)");
    std::printf("hardware threads: %zu (ST_JOBS overrides); %zu sample(s) "
                "per row after %zu warmup\n",
                hw, samples, warmup);
    scale_campaign(pair, "pair", pair_runs, seed, jobs_axis, warmup, samples,
                   report);
    check_shards_and_resume(pair, "pair", pair_runs, seed);

    // Gang grid on the setup-bound pair spec: persistent lanes replace the
    // per-case Soc elaboration with a snapshot rewind, and the worker
    // dispatch granularity becomes one block instead of one case — this is
    // the regime where gang execution pays on a single CPU. Long campaign
    // so the one-time lane construction amortizes as it does in real use.
    const std::uint64_t pair_gang_runs = quick ? 400 : 2000;
    bench::banner("gang execution grid (pair, fault-free)");
    gang_grid(pair, "pair", pair_gang_runs, seed, jobs_axis, {1, 4, 16},
              warmup, samples, report);

    // --- mesh64: generated 64-SB mesh (topo::generate), per-case cost
    // dominated by simulation — the regime where parallel workers matter ---
    topo::Options topt;
    topt.shape = topo::Shape::kMesh;
    topt.sbs = 64;
    topt.seed = 7;
    fuzz::CampaignConfig mcfg;
    mcfg.spec_name = "mesh64";
    mcfg.cycles = 60;
    const fuzz::Campaign mesh(mcfg, sva::to_spec(topo::generate(topt)));
    const std::uint64_t mesh_runs = quick ? 8 : 24;

    bench::banner("st::runner campaign scaling (generated mesh-64)");
    scale_campaign(mesh, "mesh64", mesh_runs, seed, jobs_axis, warmup,
                   samples, report);
    check_shards_and_resume(mesh, "mesh64", mesh_runs, seed);

    // Gang grid on the sim-bound mesh: on one CPU the lockstep engine is
    // honestly about break-even here (docs/PERF.md "Gang execution") —
    // the rows exist so the determinism contract is *measured* at NoC
    // scale and so multi-core hosts can read their actual scaling.
    const std::uint64_t mesh_gang_runs = quick ? 16 : 96;
    bench::banner("gang execution grid (generated mesh-64)");
    gang_grid(mesh, "mesh64", mesh_gang_runs, seed, jobs_axis, {1, 4, 16},
              warmup, samples, report);

    // --- scaling proof at campaign scale (full mode only): 10^5 cases.
    // One sample — at this size the run IS its own statistics — recorded as
    // a plain row. The nightly CI leg raises this to 10^6.
    if (!quick) {
        bench::banner("100k-run scaling proof (pair)");
        const std::uint64_t big = 100'000;
        for (const std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
            fuzz::CampaignSummary s;
            const auto xs = bench::measure_seconds(
                0, 1, [&] { s = pair.run(big, seed, {}, jobs); });
            std::printf("jobs=%zu: %.1fs (%.0f runs/s)\n", jobs, xs[0],
                        static_cast<double>(big) / xs[0]);
            report.add("campaign_pair_100k_runs_per_sec",
                       static_cast<double>(big) / xs[0], "runs/s", jobs);
        }
    }

    // --- warm-up fast-forward: every case shares a nominal prefix; forking
    // it from one snapshot removes the re-simulated prefix from each case's
    // cost. Restore-equivalence demands the forked summary stay
    // bit-identical to the re-simulated baseline — checked on every run. ---
    bench::banner("campaign warm-up fast-forward (pair, warmup=60/100)");
    fuzz::CampaignConfig wcfg;
    wcfg.spec_name = "pair";
    wcfg.cycles = 100;
    wcfg.warmup_cycles = 60;
    wcfg.warmup_fork = false;
    const fuzz::Campaign warm_plain(wcfg);
    wcfg.warmup_fork = true;
    const fuzz::Campaign warm_forked(wcfg);

    fuzz::CampaignSummary s_plain;
    const auto plain_stats = bench::compute_stats(bench::measure_seconds(
        warmup, samples,
        [&] { s_plain = warm_plain.run(pair_runs, seed, {}, 1); }));
    fuzz::CampaignSummary s_forked;
    const auto fork_stats = bench::compute_stats(bench::measure_seconds(
        warmup, samples,
        [&] { s_forked = warm_forked.run(pair_runs, seed, {}, 1); }));
    const bool warm_identical = s_forked == s_plain;
    const double plain_med =
        plain_stats.median > 0 ? plain_stats.median : 1e-9;
    const double fork_med = fork_stats.median > 0 ? fork_stats.median : 1e-9;
    std::printf("%10s | %9s | %9s | %8s | %s\n", "prefix", "median s",
                "runs/s", "speedup", "summary vs re-simulated");
    std::printf("%10s | %9.3f | %9.1f | %7.2fx | (baseline)\n", "re-sim",
                plain_stats.median, static_cast<double>(pair_runs) / plain_med,
                1.0);
    std::printf("%10s | %9.3f | %9.1f | %7.2fx | %s\n", "snap-fork",
                fork_stats.median, static_cast<double>(pair_runs) / fork_med,
                plain_med / fork_med,
                warm_identical ? "bit-identical" : "DIVERGED");
    report.add("campaign_pair_warmup_resim_runs_per_sec",
               static_cast<double>(pair_runs) / plain_med, "runs/s", 1);
    report.add("campaign_pair_warmup_fork_runs_per_sec",
               static_cast<double>(pair_runs) / fork_med, "runs/s", 1);
    report.add("campaign_pair_warmup_fork_speedup", plain_med / fork_med,
               "x", 1);
    if (!warm_identical) {
        std::fprintf(stderr,
                     "bench_campaign: snapshot-forked summary diverged from "
                     "the re-simulated baseline — restore-equivalence is "
                     "broken\n");
        std::exit(1);
    }
    report.write();
}

void BM_CampaignRunJobs(benchmark::State& state) {
    fuzz::CampaignConfig cfg;
    cfg.spec_name = "pair";
    cfg.cycles = 100;
    const fuzz::Campaign campaign(cfg);
    const auto jobs = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        const auto s = campaign.run(20, 7, {}, jobs);
        benchmark::DoNotOptimize(s.runs);
    }
}
BENCHMARK(BM_CampaignRunJobs)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    run_experiment();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
