// Ablation study over the design choices DESIGN.md calls out:
//   (a) handshake protocol — four-phase RTZ vs two-phase NRZ: timing slack
//       and the fastest local clock the bundling constraints allow,
//   (b) FIFO depth relative to the hold register value H (the paper sets
//       depth = H; shallower FIFOs throttle, deeper ones buy nothing),
//   (c) asynchronous restart delay — recovery overhead per late token vs
//       the restart_vs_pending constraint,
//   (d) recycle slack — wall-clock stall cost of under/over-provisioning.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "analytic/models.hpp"
#include "bench_util.hpp"
#include "system/soc.hpp"
#include "system/testbenches.hpp"
#include "workload/traffic.hpp"

namespace {

using namespace st;

void protocol_ablation() {
    bench::banner("(a) handshake protocol: four-phase vs two-phase");
    std::printf("%-12s | %12s | %22s\n", "protocol", "worst slack",
                "min period (audit-clean)");
    for (const auto proto :
         {achan::LinkProtocol::kFourPhase, achan::LinkProtocol::kTwoPhase}) {
        auto spec = sys::make_pair_spec();
        for (auto& c : spec.channels) {
            c.tail_link.protocol = proto;
            c.fifo.head_protocol = proto;
        }
        sys::Soc probe(spec);
        probe.run_cycles(10, sim::ms(1));
        const auto slack = probe.audit_timing().worst_slack();

        // Shrink the clock period until a constraint breaks.
        sim::Time min_period = 0;
        for (sim::Time period = 1000; period >= 100; period -= 50) {
            auto s = spec;
            for (auto& sb : s.sbs) sb.clock.base_period = period;
            sys::Soc soc(s);
            soc.run_cycles(5, sim::ms(1));
            if (!soc.audit_timing().all_pass()) break;
            min_period = period;
        }
        std::printf("%-12s | %12s | %s\n",
                    proto == achan::LinkProtocol::kFourPhase ? "four-phase"
                                                             : "two-phase",
                    sim::format_time(slack).c_str(),
                    sim::format_time(min_period).c_str());
    }
}

void depth_ablation() {
    bench::banner("(b) FIFO depth vs hold value H=4, R=6");
    std::printf("%8s | %10s | %s\n", "depth", "words/cyc", "note");
    for (const std::size_t depth : {1u, 2u, 4u, 8u}) {
        auto spec = sys::make_pair_spec();
        for (auto& c : spec.channels) c.fifo.depth = depth;
        sys::Soc soc(spec);
        soc.run_cycles(2000, sim::ms(60));
        const auto& k = dynamic_cast<const wl::TrafficKernel&>(
            soc.wrapper(0).block().kernel());
        const double rate =
            static_cast<double>(k.words_emitted()) /
            static_cast<double>(soc.wrapper(0).clock().cycles());
        std::printf("%8zu | %10.3f | %s\n", depth, rate,
                    depth < 4   ? "shallow FIFO throttles the hold phase"
                    : depth == 4 ? "paper's choice: depth = H"
                                 : "extra stages buy nothing (token-bound)");
    }
}

void restart_ablation() {
    bench::banner("(c) asynchronous restart delay (plesiochronous pair)");
    std::printf("%10s | %10s | %14s | %s\n", "restart", "stops",
                "stopped time", "audit");
    for (const sim::Time restart : {100u, 200u, 400u, 800u}) {
        sys::PairOptions opt;
        opt.period_b = 1150;  // off-frequency: tokens go late regularly
        auto spec = sys::make_pair_spec(opt);
        for (auto& sb : spec.sbs) sb.clock.restart_delay = restart;
        sys::Soc soc(spec);
        soc.run_cycles(1500, sim::ms(60));
        const auto stops = soc.wrapper(0).clock().stop_events() +
                           soc.wrapper(1).clock().stop_events();
        const auto stopped = soc.wrapper(0).clock().total_stopped_time() +
                             soc.wrapper(1).clock().total_stopped_time();
        std::printf("%10s | %10llu | %14s | %s\n",
                    sim::format_time(restart).c_str(),
                    static_cast<unsigned long long>(stops),
                    sim::format_time(stopped).c_str(),
                    soc.audit_timing().all_pass() ? "clean" : "VIOLATED");
    }
}

void recycle_ablation() {
    bench::banner("(d) recycle slack: throughput vs wall-clock stalling (H=4)");
    std::printf("%4s | %10s | %12s | %14s\n", "R", "words/cyc",
                "stops/1k cyc", "model H/(H+R)");
    for (const std::uint32_t r : {5u, 6u, 8u, 12u, 20u}) {
        sys::PairOptions opt;
        opt.recycle_override = r;
        sys::Soc soc(sys::make_pair_spec(opt));
        soc.run_cycles(2000, sim::ms(60));
        const auto& k = dynamic_cast<const wl::TrafficKernel&>(
            soc.wrapper(0).block().kernel());
        const double cycles =
            static_cast<double>(soc.wrapper(0).clock().cycles());
        const auto stops = soc.wrapper(0).clock().stop_events() +
                           soc.wrapper(1).clock().stop_events();
        std::printf("%4u | %10.3f | %12.1f | %14.3f\n", r,
                    static_cast<double>(k.words_emitted()) / cycles,
                    1000.0 * static_cast<double>(stops) / cycles,
                    model::synchro_throughput(4, r));
    }
    std::printf("(throughput tracks the model exactly; slack only buys "
                "fewer wall-clock stalls)\n");
}

void BM_AuditTiming(benchmark::State& state) {
    sys::Soc soc(sys::make_triangle_spec());
    soc.run_cycles(10, sim::ms(1));
    for (auto _ : state) {
        benchmark::DoNotOptimize(soc.audit_timing().all_pass());
    }
}
BENCHMARK(BM_AuditTiming);

}  // namespace

int main(int argc, char** argv) {
    protocol_ablation();
    depth_ablation();
    restart_ablation();
    recycle_ablation();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
