// Scheduler hot-path microbench: raw event throughput of the deterministic
// discrete-event kernel, the multiplier under every workload in the repo
// (every fuzz case, determinism sweep and bench run is millions of
// schedule/dispatch pairs).
//
// This PR's kernel overhaul — move-only small-buffer callbacks instead of
// std::function, a slab/free-list event pool behind a (time, priority, seq)
// keyed heap — is measured here, and the numbers land in
// BENCH_scheduler.json so future PRs can track the trajectory
// (docs/PERF.md).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "bench_util.hpp"
#include "sim/scheduler.hpp"
#include "system/soc.hpp"
#include "system/testbenches.hpp"

namespace {

using namespace st;

/// Self-rescheduling event chain: the pure schedule+dispatch cycle with a
/// minimal capture ([&sched, &left] — two pointers), queue depth 1. This is
/// the upper bound on kernel event rate.
double chain_events_per_sec(std::uint64_t n_events) {
    sim::Scheduler sched;
    std::uint64_t left = n_events;
    const auto t0 = std::chrono::steady_clock::now();
    struct Hop {
        sim::Scheduler* s;
        std::uint64_t* left;
        void operator()() const {
            if (--*left > 0) s->schedule_after(1, Hop{s, left});
        }
    };
    sched.schedule_after(1, Hop{&sched, &left});
    sched.run();
    const auto t1 = std::chrono::steady_clock::now();
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    return static_cast<double>(n_events) / (secs > 0 ? secs : 1e-9);
}

/// Wide queue: `width` interleaved periodic event streams keep the heap at
/// depth `width`, exercising sift costs and pool reuse across a deep queue.
double wide_events_per_sec(std::size_t width, std::uint64_t rounds) {
    sim::Scheduler sched;
    std::uint64_t fired = 0;
    struct Tick {
        sim::Scheduler* s;
        std::uint64_t* fired;
        std::uint64_t left;
        void operator()() {
            ++*fired;
            if (left > 0) s->schedule_after(10, Tick{s, fired, left - 1});
        }
    };
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < width; ++i) {
        sched.schedule_after(1 + i, Tick{&sched, &fired, rounds});
    }
    sched.run();
    const auto t1 = std::chrono::steady_clock::now();
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    return static_cast<double>(fired) / (secs > 0 ? secs : 1e-9);
}

/// End-to-end: events/sec of a real pair-SoC run — the number every sweep
/// workload actually multiplies.
double soc_events_per_sec(std::uint64_t cycles) {
    sys::Soc soc(sys::make_pair_spec());
    const auto t0 = std::chrono::steady_clock::now();
    soc.run_cycles(cycles, sim::ms(60));
    const auto t1 = std::chrono::steady_clock::now();
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    return static_cast<double>(soc.scheduler().events_executed()) /
           (secs > 0 ? secs : 1e-9);
}

void run_experiment() {
    const std::uint64_t chain_n = bench::quick_mode() ? 200'000 : 2'000'000;
    const std::uint64_t rounds = bench::quick_mode() ? 2'000 : 20'000;
    const std::uint64_t cycles = bench::quick_mode() ? 2'000 : 20'000;

    bench::banner("Scheduler kernel event throughput");
    const double chain = chain_events_per_sec(chain_n);
    const double wide64 = wide_events_per_sec(64, rounds);
    const double wide1k = wide_events_per_sec(1024, rounds / 10);
    const double soc = soc_events_per_sec(cycles);
    std::printf("%-32s | %12.0f events/s\n", "self-rescheduling chain", chain);
    std::printf("%-32s | %12.0f events/s\n", "64-wide periodic queue", wide64);
    std::printf("%-32s | %12.0f events/s\n", "1024-wide periodic queue",
                wide1k);
    std::printf("%-32s | %12.0f events/s\n", "pair SoC end-to-end", soc);

    bench::JsonReport report("BENCH_scheduler.json");
    report.add("scheduler_chain", chain, "events/s", 1);
    report.add("scheduler_wide64", wide64, "events/s", 1);
    report.add("scheduler_wide1024", wide1k, "events/s", 1);
    report.add("scheduler_soc_pair", soc, "events/s", 1);
    report.write();
}

void BM_ScheduleDispatchChain(benchmark::State& state) {
    for (auto _ : state) {
        benchmark::DoNotOptimize(chain_events_per_sec(100'000));
    }
}
BENCHMARK(BM_ScheduleDispatchChain)->Unit(benchmark::kMillisecond);

void BM_WideQueue(benchmark::State& state) {
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            wide_events_per_sec(static_cast<std::size_t>(state.range(0)),
                                1'000));
    }
}
BENCHMARK(BM_WideQueue)->Arg(64)->Arg(1024)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    run_experiment();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
