// Experiment Fig. 2: waveforms illustrating the operation of the node state
// machine, with the paper's event annotations:
//   A token arrives        B recycle counter reaches zero
//   C SB-enable asserts    D hold counter decrements
//   E hold counter presets F token passed
//   G SBs disabled         H recycle counter decrements
//   I clken deasserted     J clock stops
//   K late token returns   L clock restarts
// The bench runs one on-time round (A..H) followed by a late round (I..L)
// by lengthening the ring wire mid-experiment is impossible (delays are
// fixed), so it uses a ring delay > one period: the token is late every
// round and the full A..L sequence appears. Output: ASCII waveform on
// stdout and a GTKWave-compatible fig2.vcd next to the binary.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>

#include "bench_util.hpp"
#include "sim/vcd.hpp"
#include "sim/waveform.hpp"
#include "system/fig2_digest.hpp"
#include "system/soc.hpp"
#include "system/testbenches.hpp"

namespace {

using namespace st;

void emit_waveforms() {
    sys::PairOptions opt;
    opt.hold = 3;
    opt.token_delay = 1600;  // > T: tokens are late, exercising I/J/K/L
    opt.recycle_override = 5;
    sys::Soc soc(sys::make_pair_spec(opt));
    auto& node = soc.ring_node(0, 0);
    auto& clk = soc.wrapper(0).clock();

    sim::WaveRecorder wave;
    const int w_tin = wave.add_signal("TokenIn", true, 0);
    const int w_tout = wave.add_signal("TokenOut", true, 0);
    const int w_clk = wave.add_signal("clk", true, 0);
    const int w_clken = wave.add_signal("clken", true, 1);
    const int w_sben = wave.add_signal("sb_en", true, 1);
    const int w_hold = wave.add_signal("hold_ctr", false, opt.hold);
    const int w_rec = wave.add_signal("recycle_ctr", false, 0);

    std::ofstream vcd_file("fig2.vcd");
    sim::VcdWriter vcd(vcd_file, "synchro_tokens");
    const int v_tin = vcd.add_signal("token_in");
    const int v_tout = vcd.add_signal("token_out");
    const int v_clken = vcd.add_signal("clken");
    const int v_sben = vcd.add_signal("sb_en");
    const int v_hold = vcd.add_signal("hold_ctr", 8);
    const int v_rec = vcd.add_signal("recycle_ctr", 8);

    const sim::Time dt = 250;  // one ASCII column per quarter period

    soc.ring(0).on_pass([&](std::size_t i, sim::Time t) {
        if (i != 0) return;
        wave.change(w_tout, 1, t);
        wave.change(w_tout, 0, t + dt);
        wave.annotate(w_tout, 'F', t);
        vcd.change(v_tout, 1, t);
        vcd.change(v_tout, 0, t + 100);
    });
    soc.ring(0).on_arrive([&](std::size_t i, sim::Time t) {
        if (i != 0) return;
        wave.change(w_tin, 1, t);
        wave.change(w_tin, 0, t + dt);
        wave.annotate(w_tin, node.waiting() ? 'K' : 'A', t);
        vcd.change(v_tin, 1, t);
        vcd.change(v_tin, 0, t + 100);
    });

    struct Prev {
        bool clken = true;
        bool sb_en = true;
        std::uint32_t rec = 0;
    } prev;
    clk.on_edge([&](std::uint64_t, sim::Time t) {
        wave.change(w_clk, 1, t);
        wave.change(w_clk, 0, t + dt);
        wave.change(w_clken, node.clken(), t);
        wave.change(w_sben, node.sb_en(), t);
        wave.change(w_hold, node.hold_count(), t);
        wave.change(w_rec, node.recycle_count(), t);
        vcd.change(v_clken, node.clken(), t);
        vcd.change(v_sben, node.sb_en(), t);
        vcd.change(v_hold, node.hold_count(), t);
        vcd.change(v_rec, node.recycle_count(), t);
        if (prev.clken && !node.clken()) {
            wave.annotate(w_clken, 'I', t);
            wave.annotate(w_clk, 'J', t + dt);
        }
        if (!prev.clken && node.clken()) wave.annotate(w_clk, 'L', t);
        if (!prev.sb_en && node.sb_en()) wave.annotate(w_sben, 'C', t);
        if (prev.sb_en && !node.sb_en()) {
            wave.annotate(w_sben, 'G', t);
            wave.annotate(w_hold, 'E', t);
        }
        if (node.sb_en() && node.hold_count() < static_cast<std::uint32_t>(opt.hold)) {
            wave.annotate(w_hold, 'D', t);
        }
        if (node.recycle_count() > 0 && node.recycle_count() < prev.rec) {
            wave.annotate(w_rec, 'H', t);
        }
        if (prev.rec > 0 && node.recycle_count() == 0) {
            wave.annotate(w_rec, 'B', t);
        }
        prev = {node.clken(), node.sb_en(), node.recycle_count()};
    });

    soc.run_cycles(24, sim::us(1));

    bench::banner("Figure 2: node state machine waveforms (alpha node)");
    std::printf("legend: A arrive, B recycle=0, C enable, D hold--, E preset,\n"
                "        F pass, G disable, H recycle--, I clken low,\n"
                "        J clock stops, K late arrival, L async restart\n\n");
    std::printf("%s\n", wave.render(0, sim::ns(26), dt).c_str());
    std::printf("VCD written to fig2.vcd (%llu clock stops observed)\n",
                static_cast<unsigned long long>(clk.stop_events()));

    // Golden-trace constants for tests/test_golden_fig2.cpp: if an intended
    // change moved the figure, copy these into the test.
    const sys::Fig2Trace trace = sys::capture_fig2(24);
    std::printf("\ngolden sequence: %s\n", trace.sequence().c_str());
    std::printf("golden digest:   0x%016llx\n",
                static_cast<unsigned long long>(trace.digest()));
}

void BM_NodeCommit(benchmark::State& state) {
    core::TokenNode::Params p;
    p.hold = 4;
    p.recycle = 6;
    p.initial_holder = true;
    core::TokenNode node("bench", p);
    node.set_pass_fn([&node] { node.token_arrive(); });
    std::uint64_t cycle = 0;
    for (auto _ : state) {
        node.commit(cycle++);
        benchmark::DoNotOptimize(node.sb_en());
    }
}
BENCHMARK(BM_NodeCommit);

}  // namespace

int main(int argc, char** argv) {
    emit_waveforms();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
