// Gang rewind microbench: the per-case reset cost of a persistent lane,
// strict full-image restore vs the shared-program plan path, across NoC
// sizes (64 / 256 / 1024 SBs, topo::generate meshes). Every row lands in
// BENCH_gang.json as a stats row (median/p95/stddev/CV over repeated
// samples) so docs/PERF.md and the CI scaling gate can tell a regression
// from noise.
//
// The equivalence contract is checked inline on every size: a lane rewound
// through the plan and run K cycles must reach the exact state digest of a
// lane rewound through the strict parse and run the same K cycles. A
// digest mismatch exits the process — the speedup is worthless if the
// trusted parse isn't bit-identical.
//
// The program-sharing half of the PR is measured too: one-time spec
// elaboration + pristine serialization (what every lane used to pay) vs
// constructing a lane against the already-registered gang::Program.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "gang/lane.hpp"
#include "gang/program.hpp"
#include "sva/spec_text.hpp"
#include "system/soc.hpp"
#include "topo/topo.hpp"

namespace {

using namespace st;

/// One benched size: a generated mesh with `sbs` switch-boxes.
void bench_size(std::size_t sbs, bench::JsonReport& report) {
    const bool quick = bench::quick_mode();
    const std::size_t warmup = 1;
    const std::size_t samples = quick ? 3 : 5;
    // Rewinds per timed sample: enough that one batch is well above timer
    // resolution at the small size without making the 1024-SB row crawl.
    const std::size_t reps = quick ? 4 : (sbs >= 1024 ? 8 : 24);
    const std::uint64_t cycles = 20;
    const sim::Time deadline = sim::ms(2000);
    const std::string tag = "sb" + std::to_string(sbs);

    topo::Options topt;
    topt.shape = topo::Shape::kMesh;
    topt.sbs = sbs;
    topt.seed = 7;
    const sys::SocSpec spec = sva::to_spec(topo::generate(topt));

    // One-time cost a pre-sharing lane paid on every construction:
    // elaborate the spec, start, serialize the pristine image, build the
    // plan. Program::elaborate bypasses the registry so this stays cold.
    std::shared_ptr<const gang::Program> prog;
    const auto elab = bench::compute_stats(bench::measure_seconds(
        0, quick ? 1 : 3,
        [&] { prog = gang::Program::elaborate(spec); }));
    report.add("gang_program_elaborate_" + tag, elab.median * 1e3, "ms", 1);
    report.add("gang_program_image_bytes_" + tag,
               static_cast<double>(prog->pristine().bytes().size()), "bytes",
               1);

    // Registered program: what every subsequent lane/context actually pays.
    const std::shared_ptr<const gang::Program> shared =
        gang::Program::get(spec);
    const auto ctor = bench::compute_stats(
        bench::measure_seconds(warmup, samples, [&] {
            gang::Lane lane(shared, {});
            benchmark::DoNotOptimize(&lane.soc());
        }));
    report.add("gang_lane_ctor_shared_" + tag, ctor.median * 1e3, "ms", 1);

    gang::Lane lane(shared, {});

    // Equivalence first: strict-rewound and plan-rewound continuations must
    // land on the same digest after the same run.
    const auto digest_after = [&](bool use_plan) {
        if (use_plan) {
            lane.rewind();
        } else {
            lane.soc().reset_from_image(shared->pristine());
        }
        lane.soc().run_cycles(cycles, deadline);
        lane.soc().settle();
        return lane.soc().save_snapshot().digest();
    };
    const std::uint64_t strict_digest = digest_after(false);
    const std::uint64_t plan_digest = digest_after(true);
    const bool identical = strict_digest == plan_digest;
    std::printf("%s: plan-rewound continuation %s strict baseline\n",
                tag.c_str(),
                identical ? "bit-identical to" : "DIVERGED from");
    if (!identical) {
        std::fprintf(stderr,
                     "bench_gang: %s plan rewind diverged from the strict "
                     "restore — the trusted parse is not equivalent\n",
                     tag.c_str());
        std::exit(1);
    }

    // Dirty the lane once so every timed rewind undoes real work, then time
    // batches of rewinds. After the first rewind each iteration restores
    // the same pristine state, so per-rewind work is steady within a batch.
    lane.soc().run_cycles(cycles, deadline);
    const auto time_rewind = [&](bool use_plan) {
        const auto xs = bench::measure_seconds(warmup, samples, [&] {
            for (std::size_t i = 0; i < reps; ++i) {
                if (use_plan) {
                    lane.rewind();
                } else {
                    lane.soc().reset_from_image(shared->pristine());
                }
            }
        });
        std::vector<double> per_us;
        per_us.reserve(xs.size());
        for (const double t : xs) {
            per_us.push_back(t * 1e6 / static_cast<double>(reps));
        }
        return bench::compute_stats(per_us);
    };
    const auto full = time_rewind(false);
    const auto delta = time_rewind(true);
    const double full_med = full.median > 0 ? full.median : 1e-9;
    const double delta_med = delta.median > 0 ? delta.median : 1e-9;
    report.add_stats("gang_rewind_full_" + tag, full, "us", 1);
    report.add_stats("gang_rewind_delta_" + tag, delta, "us", 1);
    report.add("gang_rewind_speedup_" + tag, full_med / delta_med, "x", 1);
    std::printf(
        "%-7s | %10.1f us full | %10.1f us plan | %6.2fx | cv %4.1f%%\n",
        tag.c_str(), full.median, delta.median, full_med / delta_med,
        100.0 * delta.cv);
}

void run_experiment() {
    bench::banner("gang per-case rewind: strict full restore vs plan path");
    bench::JsonReport report("BENCH_gang.json");
    for (const std::size_t sbs : {64, 256, 1024}) {
        bench_size(sbs, report);
    }
    report.write();
}

void BM_LaneRewind(benchmark::State& state) {
    topo::Options topt;
    topt.shape = topo::Shape::kMesh;
    topt.sbs = static_cast<std::size_t>(state.range(0));
    topt.seed = 7;
    gang::Lane lane(sva::to_spec(topo::generate(topt)), {});
    lane.soc().run_cycles(20, sim::ms(2000));
    for (auto _ : state) {
        lane.rewind();
        benchmark::DoNotOptimize(lane.soc().scheduler());
    }
}
BENCHMARK(BM_LaneRewind)->Arg(64)->Arg(256)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
    run_experiment();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
