// Experiment §5 latency analysis, equations (1) and (2):
//   L_STARI   = F*H/2 + T*H/2                          (eq. 1)
//   L_SYNCHRO = T*(R+H+1)/2 + F*H + T*(H+1)/2          (eq. 2)
// The bench measures word latency (generation time -> delivery to the
// receiving SB) in full simulation for both schemes and prints it against
// the closed-form models across H, T and F sweeps. Absolute agreement is
// not the bar (the equations themselves average over token phase); the
// *shape* — synchro-tokens slower, the gap trending toward ~2x as H grows,
// linear growth in T and F — is.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <deque>
#include <functional>
#include <memory>

#include "analytic/models.hpp"
#include "baselines/stari.hpp"
#include "bench_util.hpp"
#include "sb/kernel.hpp"
#include "system/soc.hpp"
#include "system/testbenches.hpp"

namespace {

using namespace st;

using NowFn = std::function<sim::Time()>;

/// Generates one timestamped word every `gen_every` cycles and pushes as
/// channel capacity allows.
class StampedSource final : public sb::Kernel {
  public:
    StampedSource(NowFn now, std::uint32_t gen_every)
        : now_(std::move(now)), gen_every_(gen_every) {}

    void on_cycle(sb::SbContext& ctx) override {
        if ((phase_++ % gen_every_) == 0) queue_.push_back(now_());
        if (ctx.num_out() > 0 && !queue_.empty() && ctx.out(0).can_push()) {
            ctx.out(0).push(queue_.front());
            queue_.pop_front();
        }
    }

  private:
    NowFn now_;
    std::uint32_t gen_every_;
    std::uint64_t phase_ = 0;
    std::deque<sim::Time> queue_;
};

/// Consumes timestamped words and accumulates latency.
class StampedSink final : public sb::Kernel {
  public:
    explicit StampedSink(NowFn now) : now_(std::move(now)) {}

    void on_cycle(sb::SbContext& ctx) override {
        if (ctx.num_in() == 0 || !ctx.in(0).has_data()) return;
        const Word stamp = ctx.in(0).take();
        sum_ += now_() - stamp;
        ++count_;
    }

    double mean_latency() const {
        return count_ ? static_cast<double>(sum_) / static_cast<double>(count_)
                      : 0.0;
    }
    std::uint64_t count() const { return count_; }

  private:
    NowFn now_;
    std::uint64_t sum_ = 0;
    std::uint64_t count_ = 0;
};

struct LatencyResult {
    double measured = 0.0;
    std::uint64_t words = 0;
};

LatencyResult measure_synchro_latency(std::uint32_t hold, sim::Time period,
                                      sim::Time stage_delay) {
    sys::PairOptions opt;
    opt.hold = hold;
    opt.stage_delay = stage_delay;
    opt.period_a = period;
    opt.period_b = period;
    opt.data_bits = 64;  // timestamps need full width
    auto spec = sys::make_pair_spec(opt);

    // The kernels need simulated time; the Soc owns the scheduler and the
    // factories run inside its constructor, so route `now` through a slot
    // filled in before any event executes.
    auto now_slot = std::make_shared<sim::Scheduler*>(nullptr);
    const NowFn now = [now_slot] { return (*now_slot)->now(); };
    const std::uint32_t r = hold + 2;
    const std::uint32_t gen_every = (hold + r + hold - 1) / hold + 1;
    spec.sbs[0].make_kernel = [now, gen_every] {
        return std::make_unique<StampedSource>(now, gen_every);
    };
    spec.sbs[1].make_kernel = [now] {
        return std::make_unique<StampedSink>(now);
    };

    sys::Soc soc(spec);
    *now_slot = &soc.scheduler();
    soc.run_cycles(4000, sim::ms(60));
    const auto& sink =
        dynamic_cast<const StampedSink&>(soc.wrapper(1).block().kernel());
    return LatencyResult{sink.mean_latency(), sink.count()};
}

double measure_stari_latency(std::size_t depth, sim::Time period,
                             sim::Time stage_delay) {
    sim::Scheduler sched;
    baseline::StariLink::Params p;
    p.depth = depth;
    p.period = period;
    p.stage_delay = stage_delay;
    p.rx_skew = period / 2;
    baseline::StariLink link(sched, "stari", p);
    link.start();
    sched.run_until(sim::us(4));
    return link.mean_latency_ps();
}

void run_experiment() {
    bench::banner("§5 latency: eq.(1) STARI vs eq.(2) synchro-tokens");
    std::printf("T=1000 ps, F=100 ps, R=H+2 (minimal tuned schedule)\n");
    std::printf("%4s | %10s %10s | %10s %10s | %7s\n", "H", "eq2 model",
                "ST meas", "eq1 model", "STARI meas", "gap");
    std::printf("-----+------------------------+------------------------+------\n");
    for (const std::uint32_t h : {2u, 4u, 8u, 16u}) {
        const double eq2 = model::synchro_latency(1000, 100, h, h + 2);
        const auto st = measure_synchro_latency(h, 1000, 100);
        const double eq1 = model::stari_latency(1000, 100, h);
        const double stari = measure_stari_latency(h < 2 ? 2 : h, 1000, 100);
        std::printf("%4u | %10.0f %10.0f | %10.0f %10.0f | %6.2fx\n", h, eq2,
                    st.measured, eq1, stari, st.measured / stari);
    }

    bench::banner("latency scaling in T and F (H=4)");
    std::printf("%6s %6s | %10s %10s\n", "T", "F", "eq2 model", "ST meas");
    for (const sim::Time t : {800u, 1000u, 1600u}) {
        for (const sim::Time f : {50u, 100u, 200u}) {
            const double eq2 = model::synchro_latency(
                static_cast<double>(t), static_cast<double>(f), 4, 6);
            const auto st = measure_synchro_latency(4, t, f);
            std::printf("%6llu %6llu | %10.0f %10.0f\n",
                        static_cast<unsigned long long>(t),
                        static_cast<unsigned long long>(f), eq2, st.measured);
        }
    }
    std::printf("\npaper claim: synchro-tokens pays a latency penalty vs "
                "STARI, reducible by shrinking T and H at a throughput "
                "cost.\n");
}

void BM_LatencyMeasurementRun(benchmark::State& state) {
    for (auto _ : state) {
        benchmark::DoNotOptimize(measure_synchro_latency(4, 1000, 100).measured);
    }
}
BENCHMARK(BM_LatencyMeasurementRun)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    run_experiment();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
