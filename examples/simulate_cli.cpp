// simulate_cli: command-line driver for the synchro-tokens simulator — run
// any built-in topology with optional delay perturbation, dump statistics,
// the timing audit, the deadlock rule check, and (optionally) a full VCD.
//
//   $ ./examples/simulate_cli --topology triangle --cycles 500
//   $ ./examples/simulate_cli --topology mesh --perturb 150 --report
//   $ ./examples/simulate_cli --topology pair --vcd trace.vcd

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

#include "deadlock/rules.hpp"
#include "system/delay_config.hpp"
#include "system/invariant_monitor.hpp"
#include "system/soc.hpp"
#include "system/stats.hpp"
#include "system/testbenches.hpp"
#include "system/vcd_probe.hpp"

namespace {

using namespace st;

struct Options {
    std::string topology = "pair";
    std::uint64_t cycles = 300;
    unsigned perturb = 100;  // percent applied to every datapath delay
    std::string vcd_path;
    bool report = true;
    bool audit = true;
};

void usage() {
    std::printf(
        "usage: simulate_cli [options]\n"
        "  --topology pair|triangle|chain|mesh|wide|bus (default pair)\n"
        "  --cycles N           local cycles to simulate (default 300)\n"
        "  --perturb PCT        scale all datapath delays to PCT%% (default 100)\n"
        "  --vcd FILE           dump a full-system VCD\n"
        "  --no-report          skip the statistics report\n"
        "  --no-audit           skip timing audit and deadlock rules\n");
}

sys::SocSpec make_spec(const std::string& topology) {
    if (topology == "pair") return sys::make_pair_spec();
    if (topology == "triangle") return sys::make_triangle_spec();
    if (topology == "chain") return sys::make_chain_spec();
    if (topology == "mesh") return sys::make_mesh_spec();
    if (topology == "wide") return sys::make_wide_pair_spec();
    if (topology == "bus") return sys::make_bus_spec();
    std::fprintf(stderr, "unknown topology '%s'\n", topology.c_str());
    std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char* {
            if (i + 1 >= argc) {
                usage();
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--topology") {
            opt.topology = next();
        } else if (arg == "--cycles") {
            opt.cycles = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--perturb") {
            opt.perturb = static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
        } else if (arg == "--vcd") {
            opt.vcd_path = next();
        } else if (arg == "--no-report") {
            opt.report = false;
        } else if (arg == "--no-audit") {
            opt.audit = false;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            usage();
            return 2;
        }
    }

    auto spec = make_spec(opt.topology);
    auto cfg = sys::DelayConfig::nominal(spec);
    if (opt.perturb != 100) {
        cfg.fifo_pct.assign(cfg.fifo_pct.size(), opt.perturb);
        cfg.ring_ab_pct.assign(cfg.ring_ab_pct.size(), opt.perturb);
        cfg.ring_ba_pct.assign(cfg.ring_ba_pct.size(), opt.perturb);
    }

    if (opt.audit) {
        const auto rules = dl::check_rules(spec);
        std::printf("deadlock rules: %s\n", rules.summary().c_str());
    }

    sys::Soc soc(sys::apply(spec, cfg));
    sys::InvariantMonitor monitor(soc);
    std::unique_ptr<std::ofstream> vcd_file;
    std::unique_ptr<sys::VcdProbe> vcd;
    if (!opt.vcd_path.empty()) {
        vcd_file = std::make_unique<std::ofstream>(opt.vcd_path);
        vcd = std::make_unique<sys::VcdProbe>(soc, *vcd_file);
    }

    const bool done = soc.run_cycles(opt.cycles, sim::ms(500));
    std::printf("%s: %s after %s\n", opt.topology.c_str(),
                done          ? "completed"
                : soc.deadlocked() ? "DEADLOCKED"
                                   : "deadline hit",
                sim::format_time(soc.scheduler().now()).c_str());

    if (opt.audit) {
        const auto audit = soc.audit_timing();
        std::printf("timing audit: %s\n", audit.summary().c_str());
    }
    if (!monitor.violations().empty()) {
        std::printf("INVARIANT VIOLATIONS:\n");
        for (const auto& v : monitor.violations()) {
            std::printf("  %s\n", v.c_str());
        }
        return 1;
    }
    if (opt.report) {
        std::printf("%s", sys::collect_stats(soc).to_string().c_str());
    }
    if (vcd) std::printf("VCD written to %s\n", opt.vcd_path.c_str());
    return done ? 0 : 1;
}
