// Quickstart: build the smallest synchro-tokens system — two synchronous
// blocks with independent clocks exchanging data over one token ring — run
// it, and verify the deterministic-GALS property by rerunning with every
// analog delay perturbed.
//
//   $ ./examples/quickstart

#include <cstdio>

#include "system/delay_config.hpp"
#include "system/soc.hpp"
#include "system/testbenches.hpp"
#include "verify/io_trace.hpp"
#include "workload/traffic.hpp"

int main() {
    using namespace st;

    // 1. Describe the system. make_pair_spec() returns a ready-made spec;
    //    build your own SocSpec for custom topologies (see dsp_pipeline).
    sys::PairOptions opt;
    opt.hold = 4;          // each node keeps the token for 4 local cycles
    opt.period_a = 1000;   // ps — alpha's local ring-oscillator period
    opt.period_b = 1000;   // beta's
    const sys::SocSpec spec = sys::make_pair_spec(opt);

    // 2. Elaborate and simulate.
    sys::Soc soc(spec);
    soc.run_cycles(/*n_cycles=*/500, /*deadline=*/sim::ms(1));

    const auto& alpha = dynamic_cast<const wl::TrafficKernel&>(
        soc.wrapper(0).block().kernel());
    const auto& beta = dynamic_cast<const wl::TrafficKernel&>(
        soc.wrapper(1).block().kernel());
    std::printf("after 500 local cycles:\n");
    std::printf("  alpha emitted %llu words, consumed %llu, signature %08x\n",
                (unsigned long long)alpha.words_emitted(),
                (unsigned long long)alpha.words_consumed(), alpha.signature());
    std::printf("  beta  emitted %llu words, consumed %llu, signature %08x\n",
                (unsigned long long)beta.words_emitted(),
                (unsigned long long)beta.words_consumed(), beta.signature());
    std::printf("  clock stops: %llu (the tuned schedule never stalls)\n",
                (unsigned long long)(soc.wrapper(0).clock().stop_events() +
                                     soc.wrapper(1).clock().stop_events()));

    // 3. The headline property: perturb every delay in the design — FIFO
    //    stages to 200%, token wires to 50%, beta's clock 25% slower — and
    //    the cycle-indexed I/O sequences are *identical*.
    const auto nominal_traces = verify::truncated(soc.traces(), 100);

    auto cfg = sys::DelayConfig::nominal(spec);
    cfg.fifo_pct.assign(cfg.fifo_pct.size(), 200);
    cfg.ring_ab_pct.assign(cfg.ring_ab_pct.size(), 50);
    cfg.ring_ba_pct.assign(cfg.ring_ba_pct.size(), 50);
    cfg.clock_pct.back() = 125;
    sys::Soc perturbed(sys::apply(spec, cfg));
    perturbed.run_cycles(500, sim::ms(1));

    const auto diff = verify::diff_traces(
        nominal_traces, verify::truncated(perturbed.traces(), 100));
    std::printf("\nperturbed rerun (FIFO 200%%, wires 50%%, beta clock 125%%): %s\n",
                diff.identical ? "traces IDENTICAL — deterministic GALS"
                               : diff.first_mismatch.c_str());
    return diff.identical ? 0 : 1;
}
