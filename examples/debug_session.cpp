// Debug session: a silicon-debug walk-through using the Test SB's IEEE
// 1149.1 TAP (paper §4.2) — exactly the flow a bring-up engineer would run
// on a tester:
//   1. read IDCODE,
//   2. park the tokens (ST_TOKENHOLD) -> every mission clock stops
//      deterministically at a natural breakpoint,
//   3. scan out architectural state through the self-timed scan chain,
//   4. patch a register through the same chain (write-enable cell set),
//   5. single-step the system and watch the state advance reproducibly.
//
//   $ ./examples/debug_session

#include <cstdio>

#include "system/soc.hpp"
#include "system/testbenches.hpp"
#include "tap/test_sb.hpp"
#include "tap/tester.hpp"
#include "workload/traffic.hpp"

int main() {
    using namespace st;

    sys::Soc soc(sys::make_pair_spec());
    tap::TestSb tsb(soc, tap::TestSb::Params{});
    core::TokenNode::Params mission;
    mission.hold = 2;
    mission.recycle = 12;
    core::TokenNode::Params test_side;
    test_side.hold = 2;
    test_side.recycle = 30;
    test_side.initial_holder = true;
    tsb.attach_ring(0, mission, test_side, 500, 500);
    tsb.attach_ring(1, mission, test_side, 500, 500);
    tsb.add_default_scan_targets();
    soc.start();

    tap::TesterDriver drv(tsb);
    drv.reset();
    std::printf("[1] IDCODE: 0x%08x\n", drv.read_idcode());

    drv.shift_ir(tap::TestSb::Opcodes::kTokenHold);
    drv.shift_dr_word(0b11, 16);
    tsb.wait_for_system_stop();
    std::printf("[2] breakpoint: alpha stopped at cycle %llu, beta at %llu\n",
                (unsigned long long)soc.wrapper(0).clock().cycles(),
                (unsigned long long)soc.wrapper(1).clock().cycles());

    auto image = drv.scan_transaction({});
    const auto word_at = [&](std::size_t bit0) {
        std::uint64_t w = 0;
        for (int b = 0; b < 64; ++b) {
            if (image[bit0 + static_cast<std::size_t>(b)]) w |= 1ull << b;
        }
        return w;
    };
    std::printf("[3] scan dump (%zu bits): alpha lfsr=0x%016llx emitted=%llu "
                "consumed=%llu crc=%08llx\n",
                image.size(), (unsigned long long)word_at(0),
                (unsigned long long)word_at(64),
                (unsigned long long)word_at(128),
                (unsigned long long)(word_at(192) & 0xffffffff));

    // Patch alpha's LFSR to a chosen seed, through the scan chain.
    const std::uint64_t patched = 0xD1A6'0000'0000'BEEFull;
    for (int b = 0; b < 64; ++b) {
        image[static_cast<std::size_t>(b)] = (patched >> b) & 1;
    }
    drv.scan_transaction(image);
    const auto& alpha = dynamic_cast<const wl::TrafficKernel&>(
        soc.wrapper(0).block().kernel());
    std::printf("[4] patched alpha lfsr via scan: now 0x%016llx (%s)\n",
                (unsigned long long)alpha.scan_state()[0],
                alpha.scan_state()[0] == patched ? "applied" : "FAILED");

    for (int step = 0; step < 3; ++step) {
        const auto before = soc.wrapper(0).clock().cycles();
        tsb.single_step();
        tsb.wait_for_system_stop();
        const auto after_img = drv.scan_transaction({});
        std::uint64_t lfsr = 0;
        for (int b = 0; b < 64; ++b) {
            if (after_img[static_cast<std::size_t>(b)]) lfsr |= 1ull << b;
        }
        std::printf("[5] step %d: alpha advanced %llu cycles, lfsr=0x%016llx\n",
                    step,
                    (unsigned long long)(soc.wrapper(0).clock().cycles() - before),
                    (unsigned long long)lfsr);
    }
    std::printf("tester wait states absorbed by Interlocked mode: %llu\n",
                (unsigned long long)tsb.wait_states());
    return 0;
}
