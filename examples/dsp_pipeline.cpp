// DSP pipeline: the dataflow profile that motivated the escapement-clock
// ancestors of synchro-tokens (paper ref. [12] is a monolithic DSP clock
// generator). A four-stage GALS pipeline — traffic source, two FIR filter
// cores at different clock frequencies, recording sink — built from a
// custom SocSpec, with a golden software model checking every delivered
// sample.
//
//   $ ./examples/dsp_pipeline

#include <cstdio>
#include <memory>
#include <vector>

#include "sb/kernels/sinks.hpp"
#include "sb/kernels/sources.hpp"
#include "sb/kernels/transforms.hpp"
#include "system/soc.hpp"
#include "system/testbenches.hpp"

int main() {
    using namespace st;

    // Chain topology: stage0 (counter source) -> stage1 (FIR) ->
    // stage2 (FIR) -> stage3 (recorder), each stage its own clock domain.
    sys::ChainOptions opt;
    opt.length = 4;
    opt.base_period = 1000;
    opt.period_step = 350;  // strongly heterogeneous clocks
    sys::SocSpec spec = sys::make_chain_spec(opt);

    const std::vector<std::int32_t> taps1{1, 2, 1};
    const std::vector<std::int32_t> taps2{3, -1};
    spec.sbs[0].make_kernel = [] {
        return std::make_unique<sb::CounterSource>(0);  // samples 0,1,2,...
    };
    spec.sbs[1].make_kernel = [taps1] {
        return std::make_unique<sb::FirKernel>(taps1);
    };
    spec.sbs[2].make_kernel = [taps2] {
        return std::make_unique<sb::FirKernel>(taps2);
    };
    spec.sbs[3].make_kernel = [] {
        return std::make_unique<sb::RecorderSink>();
    };

    sys::Soc soc(spec);
    soc.run_cycles(800, sim::ms(4));

    const auto& sink = dynamic_cast<const sb::RecorderSink&>(
        soc.wrapper(3).block().kernel());

    // Golden model: the same two FIRs applied in software.
    const auto golden = [&](std::size_t n) {
        std::vector<Word> x(n);
        for (std::size_t i = 0; i < n; ++i) x[i] = i;
        const auto fir = [](const std::vector<Word>& in,
                            const std::vector<std::int32_t>& taps) {
            std::vector<Word> out(in.size(), 0);
            for (std::size_t i = 0; i < in.size(); ++i) {
                Word y = 0;
                for (std::size_t k = 0; k < taps.size(); ++k) {
                    const Word xi = i >= k ? in[i - k] : 0;
                    y += static_cast<Word>(taps[k]) * xi;
                }
                out[i] = y;
            }
            return out;
        };
        return fir(fir(x, std::vector<std::int32_t>{1, 2, 1}),
                   std::vector<std::int32_t>{3, -1});
    };

    const auto expect = golden(sink.samples().size());
    std::size_t errors = 0;
    for (std::size_t i = 0; i < sink.samples().size(); ++i) {
        if (sink.samples()[i].word != expect[i]) ++errors;
    }

    std::printf("DSP pipeline over 4 clock domains (%llu/%llu/%llu/%llu ps):\n",
                (unsigned long long)spec.sbs[0].clock.base_period,
                (unsigned long long)spec.sbs[1].clock.base_period,
                (unsigned long long)spec.sbs[2].clock.base_period,
                (unsigned long long)spec.sbs[3].clock.base_period);
    std::printf("  delivered %zu filtered samples, %zu golden-model errors\n",
                sink.samples().size(), errors);
    std::printf("  first samples:");
    for (std::size_t i = 0; i < 8 && i < sink.samples().size(); ++i) {
        std::printf(" %llu", (unsigned long long)sink.samples()[i].word);
    }
    std::printf("\n  clock stop events (escapement in action): %llu\n",
                (unsigned long long)(soc.wrapper(0).clock().stop_events() +
                                     soc.wrapper(1).clock().stop_events() +
                                     soc.wrapper(2).clock().stop_events() +
                                     soc.wrapper(3).clock().stop_events()));
    return errors == 0 && !sink.samples().empty() ? 0 : 1;
}
