// Wide stream: the paper's §5 area/performance trade-off, end to end. A
// synchro-tokens channel moves at most H/(H+R) words per cycle; widening it
// to ceil((H+R)/H) parallel lanes — with the SB-side synchronous queue the
// paper prescribes — recovers STARI-parity full-rate streaming while keeping
// the deterministic-GALS property.
//
//   $ ./examples/wide_stream

#include <cstdio>

#include "analytic/models.hpp"
#include "system/soc.hpp"
#include "system/testbenches.hpp"
#include "workload/streaming.hpp"

int main() {
    using namespace st;

    std::printf("H=4, R=6: single-channel bound H/(H+R) = %.3f words/cycle\n\n",
                model::synchro_throughput(4, 6));
    std::printf("%6s | %10s | %10s | %12s | %s\n", "lanes", "rate", "errors",
                "tx backlog", "verdict");

    bool ok = true;
    for (const std::size_t lanes : {1u, 2u, 3u}) {
        sys::WidePairOptions opt;
        opt.hold = 4;
        opt.lanes = lanes;
        sys::Soc soc(sys::make_wide_pair_spec(opt));
        soc.run_cycles(3000, sim::ms(60));
        const auto& sink = dynamic_cast<const wl::StreamingSink&>(
            soc.wrapper(1).block().kernel());
        const auto& src = dynamic_cast<const wl::StreamingSource&>(
            soc.wrapper(0).block().kernel());
        const double rate =
            static_cast<double>(sink.words_consumed()) /
            static_cast<double>(soc.wrapper(1).clock().cycles());
        const bool full_rate = rate > 0.97;
        std::printf("%6zu | %10.3f | %10llu | %12zu | %s\n", lanes, rate,
                    (unsigned long long)sink.sequence_errors(),
                    src.max_queue_depth(),
                    full_rate ? "full rate (STARI parity)"
                              : "throughput-limited");
        ok &= sink.sequence_errors() == 0;
        if (lanes == 3) ok &= full_rate;
    }
    std::printf("\n3 lanes = ceil((H+R)/H): the widened channel sustains one "
                "word per cycle, in order, deterministically.\n");
    return ok ? 0 : 1;
}
