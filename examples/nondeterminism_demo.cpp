// Nondeterminism demo: the paper's §1 problem statement, made concrete.
// The *same* dual-core design is run twice under a small fabrication-like
// variation (one FIFO 15% slower, one clock 1% off). With classic two-flop
// synchronizer wrappers the observed data sequences differ — the "known
// good response" is not unique, so a stored-response tester would fail a
// good chip. With synchro-tokens wrappers the sequences are bit- and
// cycle-identical.
//
//   $ ./examples/nondeterminism_demo

#include <cstdio>

#include "baselines/baseline_soc.hpp"
#include "system/delay_config.hpp"
#include "system/soc.hpp"
#include "system/testbenches.hpp"
#include "verify/io_trace.hpp"

int main() {
    using namespace st;

    sys::PairOptions opt;
    opt.period_a = 1000;
    opt.period_b = 1009;  // independent oscillators are never exact
    const sys::SocSpec spec = sys::make_pair_spec(opt);

    // "Process variation": one FIFO slightly slow, beta's oscillator 1% off.
    auto varied = sys::DelayConfig::nominal(spec);
    varied.fifo_pct[0] = 115;
    varied.clock_pct[1] = 101;

    const auto run_synchro = [&](const sys::DelayConfig& cfg) {
        sys::Soc soc(sys::apply(spec, cfg));
        soc.run_cycles(150, sim::ms(1));
        return verify::truncated(soc.traces(), 100);
    };
    const auto run_twoflop = [&](const sys::DelayConfig& cfg) {
        baseline::BaselineSoc soc(sys::apply(spec, cfg),
                                  baseline::BaselineSoc::Kind::kTwoFlop);
        soc.run_cycles(150, sim::ms(1));
        return verify::truncated(soc.traces(), 100);
    };

    const auto nominal_cfg = sys::DelayConfig::nominal(spec);

    const auto st_diff =
        verify::diff_traces(run_synchro(nominal_cfg), run_synchro(varied));
    const auto tf_diff =
        verify::diff_traces(run_twoflop(nominal_cfg), run_twoflop(varied));

    std::printf("chip A vs chip B (same design, FIFO +15%%, clock +1%%):\n\n");
    std::printf("two-flop synchronizer wrappers:\n  %s\n\n",
                tf_diff.identical
                    ? "traces identical (unexpected for this variation)"
                    : ("NONDETERMINISTIC — first divergence:\n  " +
                       tf_diff.first_mismatch)
                          .c_str());
    std::printf("synchro-tokens wrappers:\n  %s\n",
                st_diff.identical
                    ? "traces IDENTICAL — one golden response serves every "
                      "chip and every tester rerun"
                    : ("unexpected mismatch: " + st_diff.first_mismatch).c_str());
    return st_diff.identical && !tf_diff.identical ? 0 : 1;
}
