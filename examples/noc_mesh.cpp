// NoC mesh: a 3x3 network-on-chip of XY routers, every tile in its own
// clock domain, all links synchro-tokens channels. Tile (0,0) injects
// packets round-robin to every other tile; each delivery is checked and the
// whole run is replayed to confirm the deterministic-GALS property at
// system scale — the "larger system" the paper's future work asks for.
//
//   $ ./examples/noc_mesh

#include <cstdio>
#include <map>
#include <memory>
#include <vector>

#include "analytic/models.hpp"
#include "system/soc.hpp"
#include "system/spec.hpp"
#include "workload/router.hpp"

namespace {

using namespace st;

constexpr std::size_t kW = 3;
constexpr std::size_t kH = 3;
constexpr std::uint64_t kPackets = 64;

struct DeliveryLog {
    // tile -> sequence of delivered payloads
    std::map<std::size_t, std::vector<Word>> per_tile;
};

sys::SocSpec build_noc(std::shared_ptr<DeliveryLog> log) {
    sys::SocSpec spec;
    const auto tile = [](std::size_t x, std::size_t y) { return y * kW + x; };

    // Per-tile router configs; port indices are assigned while channels are
    // appended below, then baked into the kernel factories.
    std::vector<wl::RouterKernel::Config> cfgs(kW * kH);
    std::vector<std::size_t> out_count(kW * kH, 0);

    const sim::Time periods[3] = {1000, 1300, 1600};
    for (std::size_t y = 0; y < kH; ++y) {
        for (std::size_t x = 0; x < kW; ++x) {
            sys::SbSpec sb;
            sb.name = "tile" + std::to_string(x) + std::to_string(y);
            sb.clock.base_period = periods[(x + y) % 3];
            sb.clock.restart_delay = 200;
            spec.sbs.push_back(sb);
            cfgs[tile(x, y)].x = static_cast<std::uint8_t>(x);
            cfgs[tile(x, y)].y = static_cast<std::uint8_t>(y);
        }
    }

    const auto add_link = [&](std::size_t a, std::size_t b,
                              std::size_t& out_dir_a, std::size_t& out_dir_b) {
        const sim::Time t_a = spec.sbs[a].clock.base_period;
        const sim::Time t_b = spec.sbs[b].clock.base_period;
        sys::RingSpec ring;
        ring.name = "ring_" + spec.sbs[a].name + "_" + spec.sbs[b].name;
        ring.sb_a = a;
        ring.sb_b = b;
        ring.node_a.hold = 4;
        ring.node_a.initial_holder = true;
        ring.node_a.recycle = 12 + model::min_recycle(t_a, t_b, 4, 900, 900);
        ring.node_b.hold = 4;
        ring.node_b.recycle = 12 + model::min_recycle(t_b, t_a, 4, 900, 900);
        ring.delay_ab = 900;
        ring.delay_ba = 900;
        const std::size_t r = spec.rings.size();
        spec.rings.push_back(ring);

        for (const auto& [from, to] : {std::pair{a, b}, std::pair{b, a}}) {
            sys::ChannelSpec ch;
            ch.name = spec.sbs[from].name + "_to_" + spec.sbs[to].name;
            ch.from_sb = from;
            ch.to_sb = to;
            ch.ring = r;
            ch.fifo.depth = 4;
            ch.fifo.stage_delay = 100;
            ch.fifo.data_bits = 64;
            ch.tail_link = achan::FourPhaseLink::Params{64, 20, 20};
            spec.channels.push_back(ch);
        }
        out_dir_a = out_count[a]++;
        out_dir_b = out_count[b]++;
    };

    for (std::size_t y = 0; y < kH; ++y) {
        for (std::size_t x = 0; x < kW; ++x) {
            if (x + 1 < kW) {
                add_link(tile(x, y), tile(x + 1, y),
                         cfgs[tile(x, y)].out_east,
                         cfgs[tile(x + 1, y)].out_west);
            }
            if (y + 1 < kH) {
                add_link(tile(x, y), tile(x, y + 1),
                         cfgs[tile(x, y)].out_south,
                         cfgs[tile(x, y + 1)].out_north);
            }
        }
    }

    for (std::size_t t = 0; t < kW * kH; ++t) {
        auto cfg = cfgs[t];
        cfg.deliver = [log, t](Word w) {
            log->per_tile[t].push_back(wl::Packet::payload(w));
        };
        if (t == 0) {
            auto counter = std::make_shared<std::uint64_t>(0);
            cfg.inject = [counter]() -> std::optional<Word> {
                if (*counter >= kPackets) return std::nullopt;
                const std::uint64_t i = (*counter)++;
                const auto dest = 1 + (i % (kW * kH - 1));  // skip self
                return wl::Packet::make(static_cast<std::uint8_t>(dest % kW),
                                        static_cast<std::uint8_t>(dest / kW),
                                        0x1000 + i);
            };
        }
        spec.sbs[t].make_kernel = [cfg] {
            return std::make_unique<wl::RouterKernel>(cfg);
        };
    }
    return spec;
}

std::uint64_t run_and_report(bool print) {
    auto log = std::make_shared<DeliveryLog>();
    sys::Soc soc(build_noc(log));
    soc.run_cycles(5000, sim::ms(120));

    std::uint64_t total = 0;
    std::uint64_t fingerprint = 0xcbf29ce484222325ull;
    for (const auto& [t, words] : log->per_tile) {
        total += words.size();
        for (const Word w : words) {
            fingerprint = (fingerprint ^ (w + t)) * 0x100000001b3ull;
        }
        if (print) {
            std::printf("  tile %zu (%zu,%zu): %zu packets, first payload 0x%llx\n",
                        t, t % kW, t / kW, words.size(),
                        words.empty() ? 0ull
                                      : (unsigned long long)words.front());
        }
    }
    if (print) {
        std::printf("delivered %llu / %llu packets across 9 clock domains\n",
                    (unsigned long long)total,
                    (unsigned long long)kPackets);
    }
    return total == kPackets ? fingerprint : 0;
}

}  // namespace

int main() {
    std::printf("3x3 XY-router NoC over synchro-tokens links:\n");
    const auto fp1 = run_and_report(true);
    const auto fp2 = run_and_report(false);
    std::printf("replay fingerprint %s (0x%016llx)\n",
                fp1 != 0 && fp1 == fp2 ? "MATCHES — deterministic NoC"
                                       : "MISMATCH",
                (unsigned long long)fp1);
    return fp1 != 0 && fp1 == fp2 ? 0 : 1;
}
