#pragma once

#include <string>
#include <vector>

#include "sva/passes.hpp"
#include "system/spec.hpp"

namespace st::sva {

/// A deliberately defective SocSpec paired with the verifier pass that must
/// flag it and the verdict the full PLAUSIBLE->replay pipeline must reach.
/// Most entries reuse the lint fixture set; the rest target obligations only
/// the graph passes can see.
struct Fixture {
    const char* name;     ///< CLI / CTest identifier
    const char* pass;     ///< sva pass id whose obligation must be non-proven
    const char* summary;  ///< what is defective, in one line
    /// Verdict after witness replay. `kRetracted` marks the deliberate
    /// retraction demo (a static over-approximation that runs fine).
    Verdict expected = Verdict::kConfirmed;
};

/// All registered verifier fixtures.
const std::vector<Fixture>& fixture_catalog();

/// Materialize fixture `name` (lint fixtures resolve too). Throws
/// std::invalid_argument on unknown names.
sys::SocSpec make_fixture(const std::string& name);

}  // namespace st::sva
