#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "lint/diagnostic.hpp"
#include "system/spec.hpp"

namespace st::sva {

/// One token-ring station: a ring endpoint's (or multi-ring member's) view
/// of the token schedule, annotated with the budgets the static passes
/// reason about. Mirrors the absorbed dl::check_rules node model exactly —
/// one station per endpoint for two-node rings, one station per
/// (member, other-member) pair for multi-rings — so the sva deadlock pass
/// and the legacy fixpoint agree by construction.
struct Station {
    std::size_t ring = 0;  ///< unified id: rings, then multi_rings offset
    bool multi = false;
    std::size_t sb = 0;       ///< SB hosting this station
    std::size_t peer_sb = 0;  ///< SB whose stall this station inherits
    std::uint32_t hold = 0;
    std::uint32_t recycle = 0;
    sim::Time t_local = 0;      ///< effective local clock period, ps
    sim::Time provisioned = 0;  ///< R * T_local: wait budgeted after passing
    sim::Time away = 0;         ///< nominal token absence, ps
    std::string locus;          ///< lint-style locus for diagnostics

    /// Signed schedule margin, floored at zero on each side.
    sim::Time deficit() const {
        return away > provisioned ? away - provisioned : 0;
    }
    sim::Time slack() const {
        return provisioned > away ? provisioned - away : 0;
    }
};

/// One channel (self-timed FIFO + handshakes) as a data edge of the graph,
/// annotated with the occupancy and timing intervals the passes need.
struct FifoEdge {
    std::size_t channel = 0;  ///< index into SocSpec::channels
    std::size_t from_sb = 0;
    std::size_t to_sb = 0;
    std::size_t ring = 0;  ///< unified ring id the channel is bundled to
    bool multi = false;
    std::uint32_t depth = 0;
    sim::Time stage_delay = 0;
    std::uint32_t burst = 0;  ///< producer hold H: words pushed per rotation
    sim::Time ripple = 0;     ///< full ripple + head handshake, ps
    sim::Time flight = 0;     ///< token flight producer -> consumer, ps
    sim::Time t_prod = 0;     ///< producer effective clock period
    sim::Time t_cons = 0;     ///< consumer effective clock period
    std::string locus;
};

/// One SB with its schedule-relevant clock parameters and adjacency.
struct SbNode {
    std::string name;
    sim::Time period = 0;   ///< effective period (base * divider)
    sim::Time restart = 0;  ///< async restart latency
    std::vector<std::size_t> stations;
    std::vector<std::size_t> out_channels;
    std::vector<std::size_t> in_channels;
};

/// One unified ring (two-node rings first, then multi-rings).
struct RingInfo {
    std::string name;
    bool multi = false;
    std::size_t index = 0;    ///< into spec.rings or spec.multi_rings
    std::size_t holders = 0;  ///< number of initial token holders (budget)
};

/// The token-flow graph IR every sva pass runs over: SBs, stations, FIFO
/// edges, and the station-coupling relation (station j couples into station
/// n when j sits in n's peer SB on a different ring — j's stall delays the
/// token n waits for). Structural defects found while lowering are recorded
/// instead of thrown, so the structure pass can report them as obligations.
struct TokenFlowGraph {
    const sys::SocSpec* spec = nullptr;
    std::vector<SbNode> sbs;
    std::vector<RingInfo> rings;
    std::vector<Station> stations;
    std::vector<FifoEdge> fifos;
    /// coupling[n] = stations feeding station n's transitive stall.
    std::vector<std::vector<std::size_t>> coupling;
    /// Lowering-time structural defects (rule `sva-structure`). When any
    /// defect makes an element un-lowerable the element is skipped; deeper
    /// passes run only on a graph with no defects.
    std::vector<lint::Diagnostic> structural;
    /// Defects that a plain elaboration would reject with a clean exception
    /// (replayable as a model-trap witness), as indices into `structural`.
    std::vector<std::size_t> trap_defects;

    bool ok() const { return structural.empty(); }
};

/// Lower a SocSpec into the token-flow graph. Never throws: malformed
/// structure lands in `structural` and the affected elements are skipped.
TokenFlowGraph lower(const sys::SocSpec& spec);

}  // namespace st::sva
