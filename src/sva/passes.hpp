#pragma once

#include <optional>
#include <string>
#include <vector>

#include "sva/graph.hpp"
#include "sva/witness.hpp"

namespace st::sva {

/// Lifecycle of one proof obligation:
///   kProven     — discharged statically; no dynamic run needed.
///   kPlausible  — not provable; carries a concretized witness (when the
///                 defect is replayable) awaiting the cross-check.
///   kConfirmed  — the witness reproduced the predicted failure through the
///                 st_fuzz classifier.
///   kRetracted  — the witness did NOT reproduce it: the static analysis
///                 over-approximated (e.g. a conservative fixpoint) and the
///                 finding is demoted to an advisory note.
enum class Verdict : std::uint8_t {
    kProven = 0,
    kPlausible = 1,
    kConfirmed = 2,
    kRetracted = 3,
};

const char* verdict_name(Verdict v);

/// One proof obligation emitted by a pass.
struct Obligation {
    std::string pass;   ///< pass id (== diagnostic rule id), e.g. sva-deadlock
    std::string locus;  ///< lint-style locus
    Verdict verdict = Verdict::kProven;
    std::string evidence;  ///< proof summary or counterexample description
    std::optional<Witness> witness;  ///< present when not proven + replayable
    std::string replay;  ///< cross-check transcript (confirm/retract detail)
};

/// Catalog entry mirroring lint::PassInfo, for --list and docs/LINT.md.
struct PassInfo {
    const char* id;
    const char* summary;
};

/// The five sva passes, in execution order.
const std::vector<PassInfo>& sva_pass_catalog();

/// Well-formedness of the lowering itself: every structural defect becomes
/// an obligation (replayable ones carry a nominal model-trap witness).
std::vector<Obligation> pass_structure(const TokenFlowGraph& g);

/// Deadlock freedom: the dl::check_rules transitive-stall recurrence recast
/// as graph reasoning. A monotone max-plus system with zero floors over the
/// station-coupling graph stabilizes within |stations| rounds unless a
/// positive-deficit coupling cycle exists; divergence extracts the minimal
/// cycle and concretizes a nominal-delay deadlock witness.
std::vector<Obligation> pass_deadlock(const TokenFlowGraph& g);

/// Worst-case FIFO occupancy by interval dataflow over token rotations:
/// per rotation the producer bursts H words into a depth-D pipeline, so
/// occupancy stays in [0, H]; H > D yields an overflow witness (a targeted
/// fifo-stall fault plan that the overflowed channel cannot absorb).
std::vector<Obligation> pass_occupancy(const TokenFlowGraph& g);

/// Clock-ratio / restart feasibility intervals per station: the per-word
/// tail-handshake service time against the producer's cycle window must
/// keep its nominal relation across the whole audited delay envelope
/// (fifo 50–200%, clocks 75–200%); a relation flip concretizes the exact
/// envelope corner as a delay-only divergence witness.
std::vector<Obligation> pass_clocks(const TokenFlowGraph& g);

/// Ordering ambiguity (the static counterpart of the dynamic race audit):
/// token budget must be exactly 1 per ring, and every same-slot candidate
/// event pair must target distinct single-writer actors.
std::vector<Obligation> pass_ordering(const TokenFlowGraph& g);

}  // namespace st::sva
