#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "system/spec.hpp"

namespace st::sva {

// A plain-data mirror of sys::SocSpec with a stable line-oriented text form
// (`.stspec`). SocSpec itself cannot round-trip through text — its kernel
// factories are opaque closures — so SpecDoc is the authoritative
// intermediate: generators produce SpecDoc, `to_text` serializes it,
// `parse_spec_text` reads it back, and `to_spec` elaborates it (kernels are
// reconstructed from the recorded traffic seed). Used for the checked-in
// ring-of-rings stress specs and `st_lint --spec-file`.

struct NodeDoc {
    std::uint32_t hold = 4;
    std::uint32_t recycle = 4;
    bool has_initial_recycle = false;  ///< false = node defaults to recycle
    std::uint32_t initial_recycle = 0;
    bool holder = false;

    bool operator==(const NodeDoc&) const = default;
};

/// Routed-traffic kernel parameters (wl::NocKernel). The per-SB output-port
/// table is NOT recorded here: `to_spec` derives it from the channel list —
/// output port k of SB i is the k-th channel with from_sb == i, and its
/// neighbour coordinates come from the destination SB's own noc record — so
/// the text form cannot drift out of sync with the wiring.
struct NocDoc {
    unsigned mode = 0;  ///< 0 = mesh, 1 = torus, 2 = star
    unsigned x = 0;
    unsigned y = 0;
    unsigned width = 1;
    unsigned height = 1;
    unsigned nodes = 1;
    unsigned inject_period = 0;

    bool operator==(const NocDoc&) const = default;
};

struct SbDoc {
    std::string name;
    std::uint64_t period = 1000;  ///< ring-oscillator base period, ps
    unsigned divider = 1;
    std::uint64_t phase = 0;
    std::uint64_t restart = 50;
    std::uint64_t seed = 0;  ///< kernel seed (traffic stream / injector)
    /// Kernel kind: false = `traffic:<seed>` (TrafficKernel), true =
    /// `noc:<mode>,...` (NocKernel routed traffic; additive v1 extension —
    /// files without it parse exactly as before).
    bool has_noc = false;
    NocDoc noc;

    bool operator==(const SbDoc&) const = default;
};

struct RingDoc {
    std::string name;
    std::size_t sb_a = 0;
    std::size_t sb_b = 0;
    NodeDoc node_a;
    NodeDoc node_b;
    std::uint64_t delay_ab = 900;
    std::uint64_t delay_ba = 900;

    bool operator==(const RingDoc&) const = default;
};

struct MemberDoc {
    std::size_t sb = 0;
    std::uint64_t hop_delay = 900;
    NodeDoc node;

    bool operator==(const MemberDoc&) const = default;
};

struct MultiRingDoc {
    std::string name;
    std::vector<MemberDoc> members;

    bool operator==(const MultiRingDoc&) const = default;
};

struct ChannelDoc {
    std::string name;
    std::size_t from_sb = 0;
    std::size_t to_sb = 0;
    std::size_t ring = 0;
    bool on_multi_ring = false;
    std::size_t depth = 4;
    std::uint64_t stage_delay = 100;
    unsigned data_bits = 32;
    std::uint64_t head_req = 20;
    std::uint64_t head_ack = 20;
    std::uint64_t tail_req = 20;
    std::uint64_t tail_ack = 20;

    bool operator==(const ChannelDoc&) const = default;
};

struct SpecDoc {
    std::vector<SbDoc> sbs;
    std::vector<RingDoc> rings;
    std::vector<MultiRingDoc> multi_rings;
    std::vector<ChannelDoc> channels;

    bool operator==(const SpecDoc&) const = default;
};

/// Serialize to the `.stspec` v1 text form. Deterministic: equal docs yield
/// byte-identical text.
std::string to_text(const SpecDoc& doc);

/// Parse `.stspec` text. Throws std::runtime_error with a line number on any
/// malformed input. parse_spec_text(to_text(d)) == d for every valid doc.
SpecDoc parse_spec_text(const std::string& text);

/// Read and parse a `.stspec` file. Throws std::runtime_error on I/O errors.
SpecDoc load_spec_file(const std::string& path);

/// Elaboratable SocSpec with TrafficKernel factories from the recorded
/// seeds. Does not validate topology — that is the verifier's job.
sys::SocSpec to_spec(const SpecDoc& doc);

}  // namespace st::sva
