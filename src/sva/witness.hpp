#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/campaign.hpp"
#include "fuzz/fault.hpp"
#include "system/delay_config.hpp"
#include "system/spec.hpp"

namespace st::sva {

/// A concretized counterexample attached to a non-proven obligation: a
/// delay configuration (plus an optional fault plan) that, replayed through
/// the st_fuzz classifier, should reproduce the predicted failure. This is
/// the contract that keeps the static layer honest — every PLAUSIBLE
/// finding either upgrades to CONFIRMED dynamically or is retracted.
struct Witness {
    sys::DelayConfig delays;
    std::vector<fuzz::Fault> faults;
    /// Replay horizon in local cycles; 0 = use the verifier's default.
    std::uint64_t cycles = 0;
    /// The defect is structural: elaborating the spec at all must throw
    /// (a "model trap"); `expect` is ignored.
    bool expect_trap = false;
    /// Acceptable fuzz outcomes; any of them confirms the finding.
    std::vector<fuzz::Outcome> expect;

    /// Compact human/JSON-safe description: perturbed delay dimensions,
    /// fault plan, horizon, and the expected outcome set.
    std::string describe() const;
};

/// Result of replaying one witness through the dynamic classifier.
struct ReplayResult {
    bool confirmed = false;
    std::string detail;  ///< outcome + classifier detail, or trap message
};

/// Replay `w` against `spec`:
///  1. a thrown elaboration/model error counts as CONFIRMED iff the witness
///     expected a trap;
///  2. a deadlock or invariant violation observed by a direct bounded probe
///     (no golden needed) confirms if expected;
///  3. otherwise a golden-backed fuzz::Campaign classifies the case and the
///     outcome must be in the expected set.
ReplayResult replay_witness(const sys::SocSpec& spec, const Witness& w);

}  // namespace st::sva
