#include "sva/witness.hpp"

#include <algorithm>
#include <exception>
#include <sstream>

namespace st::sva {

std::string Witness::describe() const {
    std::ostringstream os;
    os << "delays{";
    bool first = true;
    for (std::size_t d = 0; d < delays.dimensions(); ++d) {
        if (delays.get(d) == 100) continue;
        if (!first) os << ", ";
        first = false;
        os << delays.dim_name(d) << "=" << delays.get(d) << "%";
    }
    if (first) os << "nominal";
    os << "}";
    for (const auto& f : faults) os << " fault{" << f.describe() << "}";
    if (cycles > 0) os << " cycles=" << cycles;
    if (expect_trap) {
        os << " expect=trap";
    } else {
        os << " expect={";
        for (std::size_t i = 0; i < expect.size(); ++i) {
            os << (i ? "," : "") << fuzz::outcome_name(expect[i]);
        }
        os << "}";
    }
    return os.str();
}

ReplayResult replay_witness(const sys::SocSpec& spec, const Witness& w) {
    const std::uint64_t cycles = w.cycles > 0 ? w.cycles : 200;
    fuzz::FuzzCase c;
    c.delays = w.delays;
    c.faults = w.faults;

    const auto expected = [&](fuzz::Outcome o) {
        return std::find(w.expect.begin(), w.expect.end(), o) !=
               w.expect.end();
    };

    // Stage 1: direct bounded probe. Elaboration traps and goal misses are
    // classified here without needing a golden run (whose own nominal leg
    // can legitimately fail for deadlocking specs).
    fuzz::RunReport probe;
    try {
        probe = fuzz::probe_case(spec, c, cycles);
    } catch (const std::exception& e) {
        if (w.expect_trap) {
            return {true, std::string("model trap: ") + e.what()};
        }
        return {false, std::string("unexpected model trap: ") + e.what()};
    }
    if (w.expect_trap) {
        return {false,
                "expected an elaboration trap but the witness ran (" +
                    std::string(fuzz::outcome_name(probe.outcome)) + ")"};
    }
    if (probe.outcome == fuzz::Outcome::kDeadlocked ||
        probe.outcome == fuzz::Outcome::kInvariantViolation) {
        const std::string what =
            std::string(fuzz::outcome_name(probe.outcome)) +
            (probe.detail.empty() ? "" : ": " + probe.detail);
        if (expected(probe.outcome)) return {true, what};
        return {false, "witness replayed '" + what + "'"};
    }

    // Stage 2: the goal was met cleanly, so a divergence verdict needs the
    // golden-backed classifier.
    fuzz::RunReport r;
    try {
        fuzz::CampaignConfig cfg;
        cfg.spec_name = "<sva-witness>";
        cfg.cycles = cycles;
        const fuzz::Campaign campaign(cfg, spec);
        r = campaign.run_case(c);
    } catch (const std::exception& e) {
        return {false,
                std::string("golden-backed replay failed: ") + e.what()};
    }
    const std::string what = std::string(fuzz::outcome_name(r.outcome)) +
                             (r.detail.empty() ? "" : ": " + r.detail);
    if (expected(r.outcome)) return {true, what};
    return {false, "witness replayed '" + what + "'"};
}

}  // namespace st::sva
