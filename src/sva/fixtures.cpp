// Verifier fixtures: each spec carries a defect one sva pass must flag, and
// the witness replay must land on the recorded verdict. The set deliberately
// includes one static over-approximation (deadlock-cycle) whose finding is
// retracted dynamically — the honesty path of the pipeline.

#include "sva/fixtures.hpp"

#include <memory>
#include <stdexcept>

#include "lint/fixtures.hpp"
#include "system/testbenches.hpp"
#include "workload/traffic.hpp"

namespace st::sva {

namespace {

/// Three rings in a directed cycle with recycle registers several local
/// cycles short of the token round trip: the stall fixpoint diverges AND the
/// system genuinely deadlocks (mirrors tests/test_deadlock.cpp).
sys::SocSpec starved_cycle() {
    sys::SocSpec spec;
    for (int i = 0; i < 3; ++i) {
        sys::SbSpec sb;
        sb.name = "sb" + std::to_string(i);
        sb.clock.base_period = 1000;
        sb.clock.restart_delay = 200;
        sb.make_kernel = [i] {
            return std::make_unique<wl::TrafficKernel>(
                0x1000u + static_cast<unsigned>(i));
        };
        spec.sbs.push_back(sb);
    }
    for (std::size_t i = 0; i < 3; ++i) {
        sys::RingSpec ring;
        ring.name = "ring" + std::to_string(i);
        ring.sb_a = i;
        ring.sb_b = (i + 1) % 3;
        ring.node_a.hold = 4;
        ring.node_a.recycle = 1;  // hopelessly under-provisioned
        ring.node_a.initial_holder = true;
        ring.node_b.hold = 4;
        ring.node_b.recycle = 1;
        ring.node_b.initial_holder = false;
        ring.delay_ab = 900;
        ring.delay_ba = 900;
        spec.rings.push_back(ring);
    }
    return spec;
}

/// FIFO stages slowed until the service-rate envelope is unstable: at the
/// fast-FIFO / slow-producer corner the head-delivery schedule flips
/// relative to nominal, so cross-corner traces diverge.
sys::SocSpec late_head() {
    sys::PairOptions opt;
    opt.stage_delay = 400;  // nominal service 4*400+ ; unstable across corners
    return sys::make_pair_spec(opt);
}

}  // namespace

const std::vector<Fixture>& fixture_catalog() {
    static const std::vector<Fixture> catalog = {
        {"bad-channel-ring", "sva-structure",
         "channel bundled to a ring that does not join its SBs",
         Verdict::kConfirmed},
        {"two-initial-holders", "sva-ordering",
         "two tokens on a one-token ring", Verdict::kConfirmed},
        {"undersized-fifo", "sva-occupancy",
         "FIFO depth below the producer's hold burst", Verdict::kConfirmed},
        {"starved-cycle", "sva-deadlock",
         "cyclic recycle starvation; diverging fixpoint and a real deadlock",
         Verdict::kConfirmed},
        {"late-head", "sva-clocks",
         "slow FIFO stages make the service-rate envelope corner-unstable",
         Verdict::kConfirmed},
        {"deadlock-cycle", "sva-deadlock",
         "sub-cycle under-provisioning cycle; fixpoint diverges but the "
         "tuned schedule absorbs it — replay retracts",
         Verdict::kRetracted},
    };
    return catalog;
}

sys::SocSpec make_fixture(const std::string& name) {
    if (name == "starved-cycle") return starved_cycle();
    if (name == "late-head") return late_head();
    try {
        return lint::make_fixture(name);
    } catch (const std::invalid_argument&) {
        throw std::invalid_argument("unknown sva fixture '" + name + "'");
    }
}

}  // namespace st::sva
