#include "sva/verify.hpp"

#include <sstream>
#include <utility>

#include "runner/runner.hpp"
#include "sva/graph.hpp"

namespace st::sva {

std::size_t VerifyReport::count(Verdict v) const {
    std::size_t n = 0;
    for (const auto& ob : obligations) {
        if (ob.verdict == v) ++n;
    }
    return n;
}

bool VerifyReport::clean() const {
    for (const auto& ob : obligations) {
        if (ob.verdict != Verdict::kProven) return false;
    }
    return true;
}

std::string VerifyReport::summary() const {
    std::ostringstream os;
    os << obligations.size() << " obligation(s): " << count(Verdict::kProven)
       << " proven, " << count(Verdict::kConfirmed) << " confirmed, "
       << count(Verdict::kPlausible) << " plausible, "
       << count(Verdict::kRetracted) << " retracted";
    return os.str();
}

VerifyReport verify(const sys::SocSpec& spec, const VerifyOptions& opt) {
    const TokenFlowGraph g = lower(spec);
    VerifyReport vr;
    vr.lowered_ok = g.ok();

    // The passes are independent pure analyses over the shared immutable
    // graph: fan them out on the runner engine. Reduction in pass order
    // keeps the obligation list bit-identical at any --jobs value.
    using PassFn = std::vector<Obligation> (*)(const TokenFlowGraph&);
    static constexpr PassFn kPasses[] = {pass_structure, pass_deadlock,
                                         pass_occupancy, pass_clocks,
                                         pass_ordering};
    constexpr std::size_t kNumPasses = sizeof(kPasses) / sizeof(kPasses[0]);
    runner::sweep(
        kNumPasses, opt.jobs,
        [&](std::size_t i) { return kPasses[i](g); },
        [&](std::size_t, std::vector<Obligation>&& obs) {
            for (auto& ob : obs) vr.obligations.push_back(std::move(ob));
        });

    if (opt.cross_check) {
        std::vector<std::size_t> todo;
        for (std::size_t i = 0; i < vr.obligations.size(); ++i) {
            if (vr.obligations[i].witness.has_value()) todo.push_back(i);
        }
        // Witness replays are full (bounded) simulations — the expensive
        // tier — and independent of each other: fan them out too.
        runner::sweep(
            todo.size(), opt.jobs,
            [&](std::size_t k) {
                Witness w = *vr.obligations[todo[k]].witness;
                if (w.cycles == 0) w.cycles = opt.witness_cycles;
                return replay_witness(spec, w);
            },
            [&](std::size_t k, ReplayResult&& res) {
                Obligation& ob = vr.obligations[todo[k]];
                if (ob.witness->cycles == 0) {
                    ob.witness->cycles = opt.witness_cycles;
                }
                ob.verdict = res.confirmed ? Verdict::kConfirmed
                                           : Verdict::kRetracted;
                ob.replay = std::move(res.detail);
            });
    }
    return vr;
}

void render(const VerifyReport& vr, lint::LintReport& out) {
    for (const auto& ob : vr.obligations) {
        lint::Diagnostic d;
        d.rule = ob.pass;
        d.locus = ob.locus;
        const bool bad = ob.verdict == Verdict::kPlausible ||
                         ob.verdict == Verdict::kConfirmed;
        d.severity = bad ? lint::Severity::kError : lint::Severity::kNote;
        std::string msg =
            std::string(verdict_name(ob.verdict)) + ": " + ob.evidence;
        if (ob.verdict == Verdict::kRetracted) {
            msg += " — static over-approximation, finding withdrawn";
        }
        if (!ob.replay.empty()) msg += "; replay: " + ob.replay;
        d.message = std::move(msg);
        if (ob.witness.has_value()) {
            d.witness = ob.witness->describe();
        }
        out.add(std::move(d));
    }
    if (!vr.lowered_ok) {
        out.add(lint::Severity::kNote, "sva-structure", "soc",
                "deadlock/occupancy/clock/ordering passes skipped until the "
                "structure obligations are resolved");
    }
}

}  // namespace st::sva
