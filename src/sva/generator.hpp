#pragma once

#include <cstddef>
#include <cstdint>

#include "sva/spec_text.hpp"

namespace st::sva {

/// Geometry of a generated ring-of-rings stress spec: `clusters` multi-ring
/// buses of `members` SBs each, cluster gateways chained by two-node outer
/// rings. Every ring is provisioned from the same closed-form recycle math
/// the verifier checks, so generated specs are clean by construction at any
/// size — the negative space is covered by the fixture set.
struct RingOfRingsOptions {
    std::size_t clusters = 8;
    std::size_t members = 8;
    std::uint64_t base_period = 1000;  ///< ps
    /// Per-SB period spread: period = base + (global_index % 5) * step.
    std::uint64_t period_step = 120;
    std::uint64_t hop_delay = 600;    ///< bus member-to-member token wire, ps
    std::uint64_t outer_delay = 900;  ///< gateway-to-gateway token wire, ps
    std::uint32_t hold = 3;
    /// Extra recycle cycles on top of the computed token-absence bound.
    std::uint32_t recycle_slack = 4;
    std::uint64_t seed = 0xC0FFEE;  ///< traffic-kernel seed base
};

/// Deterministic: equal options yield equal docs (and, via `to_text`,
/// byte-identical .stspec files — the checked-in stress specs are asserted
/// against this).
SpecDoc make_ring_of_rings(const RingOfRingsOptions& opt = {});

}  // namespace st::sva
