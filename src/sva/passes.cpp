#include "sva/passes.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <sstream>

#include "sim/time.hpp"

namespace st::sva {

namespace {

constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();

/// The paper's audited perturbation envelope (§5): asynchronous delays at
/// 50–200% of nominal, clocks clamped to >= 75% (the bundling constraint).
constexpr unsigned kDelayGrid[] = {50, 75, 100, 150, 200};
constexpr unsigned kClockGrid[] = {75, 100, 150, 200};

std::string ps(sim::Time t) { return sim::format_time(t); }

Witness nominal_trap_witness(const sys::SocSpec& spec) {
    Witness w;
    w.delays = sys::DelayConfig::nominal(spec);
    w.expect_trap = true;
    return w;
}

}  // namespace

const char* verdict_name(Verdict v) {
    switch (v) {
        case Verdict::kProven: return "PROVEN";
        case Verdict::kPlausible: return "PLAUSIBLE";
        case Verdict::kConfirmed: return "CONFIRMED";
        case Verdict::kRetracted: return "RETRACTED";
    }
    return "?";
}

const std::vector<PassInfo>& sva_pass_catalog() {
    static const std::vector<PassInfo> catalog = {
        {"sva-structure",
         "token-flow graph lowering is well-formed (endpoints, bindings, "
         "memberships)"},
        {"sva-deadlock",
         "no positive-deficit coupling cycle: the transitive-stall fixpoint "
         "converges (deadlock freedom), else a minimal cycle + deadlock "
         "witness"},
        {"sva-occupancy",
         "worst-case FIFO occupancy interval [0, H] fits the configured "
         "depth, else a targeted overflow fault witness"},
        {"sva-clocks",
         "tail-handshake service rate keeps its nominal relation to the "
         "producer cycle window across the audited delay envelope, else the "
         "flipping corner as a delay-only witness"},
        {"sva-ordering",
         "token budget is exactly 1 per ring and every same-slot event pair "
         "targets distinct single-writer actors (static race audit)"},
    };
    return catalog;
}

std::vector<Obligation> pass_structure(const TokenFlowGraph& g) {
    std::vector<Obligation> out;
    if (g.ok()) {
        Obligation ob;
        ob.pass = "sva-structure";
        ob.locus = "soc";
        std::size_t multis = 0;
        for (const auto& r : g.rings) multis += r.multi ? 1 : 0;
        std::ostringstream os;
        os << "lowered " << g.sbs.size() << " SB(s), " << g.rings.size()
           << " ring(s) (" << multis << " multi), " << g.stations.size()
           << " station(s), " << g.fifos.size()
           << " channel(s); every endpoint, ring binding, and membership is "
              "well-formed";
        ob.evidence = os.str();
        out.push_back(std::move(ob));
        return out;
    }
    for (std::size_t k = 0; k < g.structural.size(); ++k) {
        const auto& d = g.structural[k];
        Obligation ob;
        ob.pass = "sva-structure";
        ob.locus = d.locus;
        ob.verdict = Verdict::kPlausible;
        ob.evidence = d.message;
        const bool replayable =
            std::find(g.trap_defects.begin(), g.trap_defects.end(), k) !=
            g.trap_defects.end();
        if (replayable) {
            ob.witness = nominal_trap_witness(*g.spec);
        } else {
            ob.evidence +=
                " (not replayable: elaborating an ill-indexed spec is "
                "undefined, fix the indices first)";
        }
        out.push_back(std::move(ob));
    }
    return out;
}

std::vector<Obligation> pass_deadlock(const TokenFlowGraph& g) {
    std::vector<Obligation> out;
    if (!g.ok()) return out;
    Obligation ob;
    ob.pass = "sva-deadlock";
    ob.locus = "soc";
    const std::size_t V = g.stations.size();
    if (V == 0) {
        ob.evidence = "no token rings: trivially deadlock-free";
        out.push_back(std::move(ob));
        return out;
    }

    // Monotone max-plus recurrence with zero floors (identical numbers to
    // dl::check_rules):
    //   stall(n) = max(0, away(n) + max_{j in coupling(n)} stall(j)
    //                     - provisioned(n))
    // Values only grow; any growth after |V| rounds requires a dependency
    // walk longer than |V| stations, which must revisit one — and the
    // revisited segment must have net-positive deficit. So a change in
    // round |V|+1 certifies a positive-deficit coupling cycle (divergence),
    // and following the argmax predecessors from a still-growing station
    // extracts one such cycle.
    std::vector<sim::Time> stall(V, 0);
    std::vector<std::size_t> pred(V, kNone);
    std::vector<char> grew(V, 0);
    bool diverged = false;
    std::size_t rounds = 0;
    for (std::size_t round = 0;; ++round) {
        bool changed = false;
        std::fill(grew.begin(), grew.end(), 0);
        for (std::size_t i = 0; i < V; ++i) {
            const auto& n = g.stations[i];
            sim::Time cross = 0;
            std::size_t best = kNone;
            for (const std::size_t j : g.coupling[i]) {
                if (stall[j] > cross) {
                    cross = stall[j];
                    best = j;
                }
            }
            const sim::Time pressure = n.away + cross;
            const sim::Time s =
                pressure > n.provisioned ? pressure - n.provisioned : 0;
            if (s > stall[i]) {
                stall[i] = s;
                pred[i] = best;
                grew[i] = 1;
                changed = true;
            }
        }
        rounds = round + 1;
        if (!changed) break;
        if (round >= V + 1) {
            diverged = true;
            break;
        }
    }

    if (!diverged) {
        sim::Time worst = 0;
        std::size_t worst_i = 0;
        std::size_t fragile = 0;
        for (std::size_t i = 0; i < V; ++i) {
            if (stall[i] > worst) {
                worst = stall[i];
                worst_i = i;
            }
            // Worst envelope corner: every away contribution at 200%, the
            // local clock (and with it the provisioned wait) at 75%.
            if (g.stations[i].provisioned * 75 < g.stations[i].away * 200) {
                ++fragile;
            }
        }
        std::ostringstream os;
        os << "transitive-stall fixpoint converged over " << V
           << " station(s) in " << rounds << " round(s); worst stall bound "
           << ps(worst);
        if (worst > 0) os << " at " << g.stations[worst_i].locus;
        os << "; " << fragile << "/" << V
           << " station(s) have negative worst-corner slack under the "
              "50-200% envelope — absorbed by count-quantization (delivery "
              "coordinates are hold/recycle counts, not wall-clock times)";
        ob.evidence = os.str();
        out.push_back(std::move(ob));
        return out;
    }

    // Extract a positive-deficit cycle by walking argmax predecessors from
    // a station that was still growing in the final round.
    std::size_t start = kNone;
    for (std::size_t i = 0; i < V; ++i) {
        if (grew[i]) {
            start = i;
            break;
        }
    }
    std::vector<std::size_t> cycle;
    if (start != kNone) {
        std::vector<std::size_t> order(V, kNone);
        std::vector<std::size_t> path;
        std::size_t cur = start;
        while (cur != kNone && order[cur] == kNone) {
            order[cur] = path.size();
            path.push_back(cur);
            cur = pred[cur];
        }
        if (cur != kNone) {
            cycle.assign(path.begin() +
                             static_cast<std::ptrdiff_t>(order[cur]),
                         path.end());
        }
    }

    ob.verdict = Verdict::kPlausible;
    std::ostringstream os;
    if (!cycle.empty()) {
        ob.locus = g.stations[cycle.front()].locus;
        std::int64_t gain = 0;
        os << "positive-deficit coupling cycle (stall fixpoint diverges): ";
        for (std::size_t k = 0; k < cycle.size(); ++k) {
            const auto& s = g.stations[cycle[k]];
            const std::int64_t d = static_cast<std::int64_t>(s.away) -
                                   static_cast<std::int64_t>(s.provisioned);
            gain += d;
            if (k) os << " <- ";
            os << s.locus << " (" << (d >= 0 ? "+" : "") << d << " ps)";
        }
        os << "; net +" << gain
           << " ps per rotation — each rotation returns the tokens later "
              "until every clock in the cycle stalls permanently";
    } else {
        os << "stall fixpoint diverges (cyclic chain of under-provisioned "
              "recycle registers) but no predecessor cycle was recovered";
    }
    ob.evidence = os.str();
    Witness w;
    w.delays = sys::DelayConfig::nominal(*g.spec);
    w.expect = {fuzz::Outcome::kDeadlocked};
    ob.witness = std::move(w);
    out.push_back(std::move(ob));
    return out;
}

std::vector<Obligation> pass_occupancy(const TokenFlowGraph& g) {
    std::vector<Obligation> out;
    if (!g.ok()) return out;
    std::uint32_t max_burst = 0;
    std::uint32_t min_depth = std::numeric_limits<std::uint32_t>::max();
    std::int64_t worst_vis = std::numeric_limits<std::int64_t>::max();
    std::size_t worst_vis_ch = kNone;
    bool violated = false;
    for (const auto& e : g.fifos) {
        max_burst = std::max(max_burst, e.burst);
        min_depth = std::min(min_depth, e.depth);
        if (e.flight > 0) {
            const std::int64_t margin = static_cast<std::int64_t>(e.flight) -
                                        static_cast<std::int64_t>(e.ripple);
            if (margin < worst_vis) {
                worst_vis = margin;
                worst_vis_ch = e.channel;
            }
        }
        if (e.depth >= e.burst) continue;
        violated = true;
        Obligation ob;
        ob.pass = "sva-occupancy";
        ob.locus = e.locus;
        ob.verdict = Verdict::kPlausible;
        std::ostringstream os;
        os << "worst-case occupancy interval [0, H=" << e.burst
           << "] exceeds depth " << e.depth
           << ": one hold phase bursts H words into a " << e.depth
           << "-stage pipeline, so the tail handshake backs up mid-burst "
              "and any extra ripple latency shifts delivery cycles";
        ob.evidence = os.str();
        // Concretize: one targeted ripple stall of two consumer cycles on
        // the overflowed channel. A correctly provisioned FIFO absorbs this
        // (count-quantization re-aligns the head); an overflowed one has no
        // headroom and the delivery schedule diverges.
        Witness w;
        w.delays = sys::DelayConfig::nominal(*g.spec);
        fuzz::Fault f;
        f.cls = fuzz::FaultClass::kFifoStall;
        f.unit = e.channel;
        f.nth = 3;
        f.value = 2 * e.t_cons;
        w.faults.push_back(f);
        w.expect = {fuzz::Outcome::kTraceDivergent,
                    fuzz::Outcome::kInvariantViolation};
        ob.witness = std::move(w);
        out.push_back(std::move(ob));
    }
    if (!violated) {
        Obligation ob;
        ob.pass = "sva-occupancy";
        ob.locus = "soc";
        std::ostringstream os;
        os << "interval dataflow over rotations: occupancy stays in [0, H] "
              "with H <= depth for all "
           << g.fifos.size() << " channel(s) (max burst " << max_burst
           << ", min depth "
           << (g.fifos.empty() ? 0 : min_depth) << ")";
        if (worst_vis_ch != kNone) {
            os << "; worst head-visibility margin "
               << worst_vis << " ps at channel '"
               << g.spec->channels[worst_vis_ch].name
               << "' (negative margins are hidden by backlog buffering, "
                  "see sva-clocks for the envelope obligation)";
        }
        ob.evidence = os.str();
        out.push_back(std::move(ob));
    }
    return out;
}

std::vector<Obligation> pass_clocks(const TokenFlowGraph& g) {
    std::vector<Obligation> out;
    if (!g.ok()) return out;

    // Per-channel service-rate envelope stability. The producer pushes one
    // word per local cycle while holding; each word occupies the FIFO tail
    // for ~stage_delay (scaled by the fifo envelope). If the relation
    // "service time <= producer cycle window" flips anywhere on the
    // envelope, the push gating (can_push: link idle) reorders pushes
    // relative to nominal and the delivery schedule is no longer
    // delay-insensitive.
    std::vector<std::size_t> flipped;
    unsigned corner_f = 0;
    unsigned corner_c = 0;
    for (std::size_t i = 0; i < g.fifos.size(); ++i) {
        const auto& e = g.fifos[i];
        const bool nominal_over = e.stage_delay * 100 > e.t_prod * 100;
        bool flip = false;
        unsigned ff = 0;
        unsigned cc = 0;
        // Scan strongest-first (largest service, smallest window) so the
        // first flip found is the most stressed corner.
        for (const unsigned f : {200u, 150u, 100u, 75u, 50u}) {
            for (const unsigned c : kClockGrid) {
                const bool over = e.stage_delay * f > e.t_prod * c;
                if (over != nominal_over) {
                    flip = true;
                    ff = f;
                    cc = c;
                    break;
                }
            }
            if (flip) break;
        }
        if (flip) {
            flipped.push_back(i);
            if (flipped.size() == 1) {
                corner_f = ff;
                corner_c = cc;
            }
        }
    }

    // Ring clock-ratio and restart margins (reported as interval evidence;
    // lint's clock-hazards pass owns the warning-level thresholds).
    double worst_ratio = 1.0;
    for (const auto& r : g.rings) {
        sim::Time lo = std::numeric_limits<sim::Time>::max();
        sim::Time hi = 0;
        if (!r.multi) {
            const auto& ring = g.spec->rings[r.index];
            lo = std::min(g.sbs[ring.sb_a].period, g.sbs[ring.sb_b].period);
            hi = std::max(g.sbs[ring.sb_a].period, g.sbs[ring.sb_b].period);
        } else {
            for (const auto& m : g.spec->multi_rings[r.index].members) {
                lo = std::min(lo, g.sbs[m.sb].period);
                hi = std::max(hi, g.sbs[m.sb].period);
            }
        }
        if (lo > 0) {
            worst_ratio = std::max(worst_ratio, static_cast<double>(hi) /
                                                    static_cast<double>(lo));
        }
    }
    std::int64_t restart_margin = std::numeric_limits<std::int64_t>::max();
    for (const auto& sb : g.sbs) {
        restart_margin = std::min(
            restart_margin, static_cast<std::int64_t>(sb.period) -
                                2 * static_cast<std::int64_t>(sb.restart));
    }

    if (flipped.empty()) {
        Obligation ob;
        ob.pass = "sva-clocks";
        ob.locus = "soc";
        std::ostringstream os;
        os << "service/window relation stable over the 50-200% x 75-200% "
              "envelope for all "
           << g.fifos.size() << " channel(s)";
        if (!g.sbs.empty()) {
            os << "; worst ring clock ratio " << worst_ratio
               << "; min restart margin " << restart_margin << " ps";
        }
        ob.evidence = os.str();
        out.push_back(std::move(ob));
        return out;
    }

    const auto& first = g.fifos[flipped[0]];
    Obligation ob;
    ob.pass = "sva-clocks";
    ob.locus = first.locus;
    ob.verdict = Verdict::kPlausible;
    std::ostringstream os;
    os << "tail-handshake service rate is not envelope-stable for "
       << flipped.size() << " channel(s) (";
    for (std::size_t k = 0; k < flipped.size(); ++k) {
        os << (k ? ", " : "") << "'"
           << g.spec->channels[g.fifos[flipped[k]].channel].name << "'";
    }
    os << "): at corner (fifo=" << corner_f << "%, producer clock="
       << corner_c << "%) per-word service "
       << first.stage_delay * corner_f / 100 << " ps crosses the cycle "
       << "window " << first.t_prod * corner_c / 100 << " ps (nominal "
       << first.stage_delay << " ps vs " << first.t_prod
       << " ps) — the push schedule shifts and delivery cycles diverge";
    ob.evidence = os.str();

    Witness w;
    w.delays = sys::DelayConfig::nominal(*g.spec);
    for (auto& pct : w.delays.fifo_pct) pct = corner_f;
    if (first.from_sb < w.delays.clock_pct.size()) {
        w.delays.clock_pct[first.from_sb] = corner_c;
    }
    w.expect = {fuzz::Outcome::kTraceDivergent};
    ob.witness = std::move(w);
    out.push_back(std::move(ob));
    return out;
}

std::vector<Obligation> pass_ordering(const TokenFlowGraph& g) {
    std::vector<Obligation> out;
    if (!g.ok()) return out;
    bool violated = false;
    for (const auto& r : g.rings) {
        if (r.holders == 1) continue;
        violated = true;
        Obligation ob;
        ob.pass = "sva-ordering";
        ob.locus = (r.multi ? std::string("multi-ring '")
                            : std::string("ring '")) +
                   r.name + "'";
        ob.verdict = Verdict::kPlausible;
        if (r.holders == 0) {
            ob.evidence =
                "token budget 0: no station can ever enter its hold phase "
                "— total starvation of the ring";
        } else {
            std::ostringstream os;
            os << "token budget " << r.holders
               << " > 1: two tokens share one wire, so same-slot arrival "
                  "pairs at one endpoint commute and the delivery order is "
                  "ambiguous";
            ob.evidence = os.str();
        }
        ob.witness = nominal_trap_witness(*g.spec);
        out.push_back(std::move(ob));
    }
    if (violated) return out;

    // Same-slot census: candidate commuting pairs are inbound async events
    // landing in one SB's timeslot — token arrivals (one per station) and
    // FIFO head deliveries (one per inbound channel). Every such source
    // targets its own single-writer actor (the station's node, the head
    // latch of one channel), so any same-slot pair acts on disjoint state
    // and commutes harmlessly; phases *within* one actor are ordered by the
    // scheduler's priority strata. This is the static mirror of the
    // dynamic race audit, which reports zero races on exactly this census.
    std::size_t pairs = 0;
    for (const auto& sb : g.sbs) {
        const std::size_t sources =
            sb.stations.size() + sb.in_channels.size();
        pairs += sources * (sources - 1) / 2;
    }
    Obligation ob;
    ob.pass = "sva-ordering";
    ob.locus = "soc";
    std::ostringstream os;
    os << "each of " << g.rings.size()
       << " ring(s) carries exactly one token (budget == 1); enumerated "
       << pairs << " same-slot candidate pair(s) over " << g.stations.size()
       << " station(s) and " << g.fifos.size()
       << " FIFO head(s) — every pair targets distinct single-writer "
          "actors, so same-slot commutation cannot change architectural "
          "state";
    ob.evidence = os.str();
    out.push_back(std::move(ob));
    return out;
}

}  // namespace st::sva
