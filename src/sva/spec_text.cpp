#include "sva/spec_text.hpp"

#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "synchro/token_node.hpp"
#include "workload/noc.hpp"
#include "workload/traffic.hpp"

namespace st::sva {

namespace {

// --- writer ----------------------------------------------------------------

const char* noc_mode_name(unsigned mode) {
    switch (mode) {
        case 0: return "mesh";
        case 1: return "torus";
        case 2: return "star";
    }
    throw std::invalid_argument("stspec: unknown noc mode " +
                                std::to_string(mode));
}

void write_node(std::ostringstream& os, const NodeDoc& n) {
    os << n.hold << "," << n.recycle << ",";
    if (n.has_initial_recycle) {
        os << n.initial_recycle;
    } else {
        os << "-";
    }
    os << "," << (n.holder ? "h" : "w");
}

// --- reader ----------------------------------------------------------------

struct Cursor {
    std::size_t line = 0;  ///< 1-based, for error messages
};

[[noreturn]] void fail(const Cursor& at, const std::string& what) {
    throw std::runtime_error("stspec line " + std::to_string(at.line) + ": " +
                             what);
}

std::vector<std::string> split(const std::string& s, char sep) {
    std::vector<std::string> out;
    std::string cur;
    for (const char c : s) {
        if (c == sep) {
            out.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    out.push_back(cur);
    return out;
}

std::uint64_t parse_u64(const Cursor& at, const std::string& s) {
    if (s.empty()) fail(at, "expected a number, got an empty field");
    std::size_t pos = 0;
    std::uint64_t v = 0;
    try {
        v = std::stoull(s, &pos, 0);  // base 0: accepts 0x... seeds
    } catch (const std::exception&) {
        fail(at, "malformed number '" + s + "'");
    }
    if (pos != s.size()) fail(at, "trailing junk in number '" + s + "'");
    return v;
}

NodeDoc parse_node(const Cursor& at, const std::string& s) {
    const auto f = split(s, ',');
    if (f.size() != 4) {
        fail(at, "node '" + s + "' wants hold,recycle,initrec|-,h|w");
    }
    NodeDoc n;
    n.hold = static_cast<std::uint32_t>(parse_u64(at, f[0]));
    n.recycle = static_cast<std::uint32_t>(parse_u64(at, f[1]));
    if (f[2] != "-") {
        n.has_initial_recycle = true;
        n.initial_recycle = static_cast<std::uint32_t>(parse_u64(at, f[2]));
    }
    if (f[3] == "h") {
        n.holder = true;
    } else if (f[3] == "w") {
        n.holder = false;
    } else {
        fail(at, "node role must be 'h' or 'w', got '" + f[3] + "'");
    }
    return n;
}

/// key=value fields after the record name, order-insensitive.
class Fields {
  public:
    Fields(const Cursor& at, const std::vector<std::string>& tokens,
           std::size_t first)
        : at_(at) {
        for (std::size_t i = first; i < tokens.size(); ++i) {
            const auto eq = tokens[i].find('=');
            if (eq == std::string::npos || eq == 0) {
                fail(at_, "expected key=value, got '" + tokens[i] + "'");
            }
            kv_.emplace_back(tokens[i].substr(0, eq), tokens[i].substr(eq + 1));
        }
    }

    bool has(const std::string& key) const {
        for (const auto& [k, v] : kv_) {
            if (k == key) return true;
        }
        return false;
    }

    std::string get(const std::string& key) const {
        for (const auto& [k, v] : kv_) {
            if (k == key) return v;
        }
        fail(at_, "missing field '" + key + "'");
    }

    std::uint64_t num(const std::string& key) const {
        return parse_u64(at_, get(key));
    }

  private:
    const Cursor& at_;
    std::vector<std::pair<std::string, std::string>> kv_;
};

std::vector<std::string> tokenize(const std::string& line) {
    std::vector<std::string> out;
    std::istringstream is(line);
    std::string tok;
    while (is >> tok) out.push_back(tok);
    return out;
}

}  // namespace

std::string to_text(const SpecDoc& doc) {
    std::ostringstream os;
    os << "stspec v1\n";
    for (const auto& sb : doc.sbs) {
        os << "sb " << sb.name << " period=" << sb.period
           << " divider=" << sb.divider << " phase=" << sb.phase
           << " restart=" << sb.restart;
        if (sb.has_noc) {
            os << " kernel=noc:" << noc_mode_name(sb.noc.mode) << ","
               << sb.noc.x << "," << sb.noc.y << "," << sb.noc.width << ","
               << sb.noc.height << "," << sb.noc.nodes << ","
               << sb.noc.inject_period << ",0x" << std::hex << sb.seed
               << std::dec;
        } else {
            os << " kernel=traffic:0x" << std::hex << sb.seed << std::dec;
        }
        os << "\n";
    }
    for (const auto& r : doc.rings) {
        os << "ring " << r.name << " a=" << r.sb_a << " b=" << r.sb_b
           << " dab=" << r.delay_ab << " dba=" << r.delay_ba << " na=";
        write_node(os, r.node_a);
        os << " nb=";
        write_node(os, r.node_b);
        os << "\n";
    }
    for (const auto& m : doc.multi_rings) {
        os << "mring " << m.name << " members=";
        for (std::size_t i = 0; i < m.members.size(); ++i) {
            if (i) os << ";";
            os << m.members[i].sb << ":" << m.members[i].hop_delay << ":";
            write_node(os, m.members[i].node);
        }
        os << "\n";
    }
    for (const auto& c : doc.channels) {
        os << "chan " << c.name << " from=" << c.from_sb << " to=" << c.to_sb
           << (c.on_multi_ring ? " mring=" : " ring=") << c.ring
           << " depth=" << c.depth << " stage=" << c.stage_delay
           << " bits=" << c.data_bits << " head=" << c.head_req << ","
           << c.head_ack << " tail=" << c.tail_req << "," << c.tail_ack
           << "\n";
    }
    return os.str();
}

SpecDoc parse_spec_text(const std::string& text) {
    SpecDoc doc;
    Cursor at;
    bool saw_header = false;
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line)) {
        ++at.line;
        const auto tokens = tokenize(line);
        if (tokens.empty() || tokens[0][0] == '#') continue;
        if (!saw_header) {
            if (tokens.size() != 2 || tokens[0] != "stspec" ||
                tokens[1] != "v1") {
                fail(at, "expected header 'stspec v1'");
            }
            saw_header = true;
            continue;
        }
        if (tokens.size() < 2) fail(at, "record wants a kind and a name");
        const std::string& kind = tokens[0];
        const Fields f(at, tokens, 2);
        if (kind == "sb") {
            SbDoc sb;
            sb.name = tokens[1];
            sb.period = f.num("period");
            sb.divider = static_cast<unsigned>(f.num("divider"));
            sb.phase = f.num("phase");
            sb.restart = f.num("restart");
            const std::string kernel = f.get("kernel");
            const std::string traffic_prefix = "traffic:";
            const std::string noc_prefix = "noc:";
            if (kernel.rfind(traffic_prefix, 0) == 0) {
                sb.seed =
                    parse_u64(at, kernel.substr(traffic_prefix.size()));
            } else if (kernel.rfind(noc_prefix, 0) == 0) {
                const auto bits =
                    split(kernel.substr(noc_prefix.size()), ',');
                if (bits.size() != 8) {
                    fail(at, "noc kernel wants "
                             "mode,x,y,w,h,nodes,inject,seed");
                }
                sb.has_noc = true;
                if (bits[0] == "mesh") {
                    sb.noc.mode = 0;
                } else if (bits[0] == "torus") {
                    sb.noc.mode = 1;
                } else if (bits[0] == "star") {
                    sb.noc.mode = 2;
                } else {
                    fail(at, "unknown noc mode '" + bits[0] + "'");
                }
                sb.noc.x = static_cast<unsigned>(parse_u64(at, bits[1]));
                sb.noc.y = static_cast<unsigned>(parse_u64(at, bits[2]));
                sb.noc.width = static_cast<unsigned>(parse_u64(at, bits[3]));
                sb.noc.height =
                    static_cast<unsigned>(parse_u64(at, bits[4]));
                sb.noc.nodes = static_cast<unsigned>(parse_u64(at, bits[5]));
                sb.noc.inject_period =
                    static_cast<unsigned>(parse_u64(at, bits[6]));
                sb.seed = parse_u64(at, bits[7]);
            } else {
                fail(at, "unsupported kernel '" + kernel +
                             "' (traffic:<seed> or noc:<...>)");
            }
            doc.sbs.push_back(std::move(sb));
        } else if (kind == "ring") {
            RingDoc r;
            r.name = tokens[1];
            r.sb_a = f.num("a");
            r.sb_b = f.num("b");
            r.delay_ab = f.num("dab");
            r.delay_ba = f.num("dba");
            r.node_a = parse_node(at, f.get("na"));
            r.node_b = parse_node(at, f.get("nb"));
            doc.rings.push_back(std::move(r));
        } else if (kind == "mring") {
            MultiRingDoc m;
            m.name = tokens[1];
            for (const auto& part : split(f.get("members"), ';')) {
                const auto bits = split(part, ':');
                if (bits.size() != 3) {
                    fail(at, "member '" + part + "' wants sb:hop:node");
                }
                MemberDoc mem;
                mem.sb = parse_u64(at, bits[0]);
                mem.hop_delay = parse_u64(at, bits[1]);
                mem.node = parse_node(at, bits[2]);
                m.members.push_back(std::move(mem));
            }
            doc.multi_rings.push_back(std::move(m));
        } else if (kind == "chan") {
            ChannelDoc c;
            c.name = tokens[1];
            c.from_sb = f.num("from");
            c.to_sb = f.num("to");
            if (f.has("mring")) {
                c.on_multi_ring = true;
                c.ring = f.num("mring");
            } else {
                c.ring = f.num("ring");
            }
            c.depth = f.num("depth");
            c.stage_delay = f.num("stage");
            c.data_bits = static_cast<unsigned>(f.num("bits"));
            const auto head = split(f.get("head"), ',');
            const auto tail = split(f.get("tail"), ',');
            if (head.size() != 2 || tail.size() != 2) {
                fail(at, "head/tail want req,ack delay pairs");
            }
            c.head_req = parse_u64(at, head[0]);
            c.head_ack = parse_u64(at, head[1]);
            c.tail_req = parse_u64(at, tail[0]);
            c.tail_ack = parse_u64(at, tail[1]);
            doc.channels.push_back(std::move(c));
        } else {
            fail(at, "unknown record kind '" + kind + "'");
        }
    }
    if (!saw_header) fail(at, "empty input (no 'stspec v1' header)");
    return doc;
}

SpecDoc load_spec_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("cannot open spec file '" + path + "'");
    std::ostringstream buf;
    buf << in.rdbuf();
    try {
        return parse_spec_text(buf.str());
    } catch (const std::runtime_error& e) {
        throw std::runtime_error(path + ": " + e.what());
    }
}

namespace {

core::TokenNode::Params to_params(const NodeDoc& n) {
    core::TokenNode::Params p;
    p.hold = n.hold;
    p.recycle = n.recycle;
    p.initial_holder = n.holder;
    if (n.has_initial_recycle) p.initial_recycle = n.initial_recycle;
    return p;
}

}  // namespace

sys::SocSpec to_spec(const SpecDoc& doc) {
    sys::SocSpec spec;
    for (std::size_t i = 0; i < doc.sbs.size(); ++i) {
        const auto& sb = doc.sbs[i];
        sys::SbSpec s;
        s.name = sb.name;
        s.clock.base_period = sb.period;
        s.clock.divider = sb.divider;
        s.clock.phase = sb.phase;
        s.clock.restart_delay = sb.restart;
        const std::uint64_t seed = sb.seed;
        if (sb.has_noc) {
            // Output port k of SB i is the k-th channel with from_sb == i
            // (Soc attaches outputs in channel order); each port's
            // neighbour coordinates come from the destination SB's own noc
            // record, so the routing table is derived, never stored.
            wl::NocKernel::Config cfg;
            cfg.mode = static_cast<wl::NocKernel::Config::Mode>(sb.noc.mode);
            cfg.x = static_cast<std::uint8_t>(sb.noc.x);
            cfg.y = static_cast<std::uint8_t>(sb.noc.y);
            cfg.width = static_cast<std::uint8_t>(sb.noc.width);
            cfg.height = static_cast<std::uint8_t>(sb.noc.height);
            cfg.nodes = static_cast<std::uint16_t>(sb.noc.nodes);
            cfg.seed = seed;
            cfg.inject_period = sb.noc.inject_period;
            for (const auto& c : doc.channels) {
                if (c.from_sb != i) continue;
                if (c.to_sb >= doc.sbs.size() ||
                    !doc.sbs[c.to_sb].has_noc) {
                    throw std::runtime_error(
                        "stspec: noc SB '" + sb.name + "' channel '" +
                        c.name + "' targets a non-noc SB");
                }
                const auto& peer = doc.sbs[c.to_sb].noc;
                wl::NocKernel::Config::OutPort port;
                port.x = static_cast<std::uint8_t>(peer.x);
                port.y = static_cast<std::uint8_t>(peer.y);
                cfg.ports.push_back(port);
            }
            s.make_kernel = [cfg] {
                return std::make_unique<wl::NocKernel>(cfg);
            };
        } else {
            s.make_kernel = [seed] {
                return std::make_unique<wl::TrafficKernel>(seed);
            };
        }
        spec.sbs.push_back(std::move(s));
    }
    for (const auto& r : doc.rings) {
        sys::RingSpec ring;
        ring.name = r.name;
        ring.sb_a = r.sb_a;
        ring.sb_b = r.sb_b;
        ring.node_a = to_params(r.node_a);
        ring.node_b = to_params(r.node_b);
        ring.delay_ab = r.delay_ab;
        ring.delay_ba = r.delay_ba;
        spec.rings.push_back(std::move(ring));
    }
    for (const auto& m : doc.multi_rings) {
        sys::MultiRingSpec mr;
        mr.name = m.name;
        for (const auto& mem : m.members) {
            sys::MultiRingSpec::Member member;
            member.sb = mem.sb;
            member.hop_delay = mem.hop_delay;
            member.node = to_params(mem.node);
            mr.members.push_back(std::move(member));
        }
        spec.multi_rings.push_back(std::move(mr));
    }
    for (const auto& c : doc.channels) {
        sys::ChannelSpec ch;
        ch.name = c.name;
        ch.from_sb = c.from_sb;
        ch.to_sb = c.to_sb;
        ch.ring = c.ring;
        ch.on_multi_ring = c.on_multi_ring;
        ch.fifo.depth = c.depth;
        ch.fifo.stage_delay = c.stage_delay;
        ch.fifo.data_bits = c.data_bits;
        ch.fifo.head_req_delay = c.head_req;
        ch.fifo.head_ack_delay = c.head_ack;
        ch.tail_link.data_bits = c.data_bits;
        ch.tail_link.req_delay = c.tail_req;
        ch.tail_link.ack_delay = c.tail_ack;
        spec.channels.push_back(std::move(ch));
    }
    // The canonical text round-trip is total for SpecDoc, so it is a sound
    // registry identity: equal text ⇒ this function builds an identical
    // spec (kernel factories included — they close only over doc fields).
    spec.program_key = "stspec:" + to_text(doc);
    return spec;
}

}  // namespace st::sva
