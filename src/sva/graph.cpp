#include "sva/graph.hpp"

#include <algorithm>
#include <sstream>

namespace st::sva {

namespace {

sim::Time effective_period(const sys::SbSpec& sb) {
    return sb.clock.base_period * std::max(1u, sb.clock.divider);
}

std::string sb_name(const sys::SocSpec& spec, std::size_t i) {
    return i < spec.sbs.size() ? spec.sbs[i].name : "<out-of-range>";
}

void defect(TokenFlowGraph& g, std::string locus, std::string message,
            bool replayable_trap) {
    lint::Diagnostic d;
    d.severity = lint::Severity::kError;
    d.rule = "sva-structure";
    d.locus = std::move(locus);
    d.message = std::move(message);
    if (replayable_trap) g.trap_defects.push_back(g.structural.size());
    g.structural.push_back(std::move(d));
}

}  // namespace

TokenFlowGraph lower(const sys::SocSpec& spec) {
    TokenFlowGraph g;
    g.spec = &spec;

    g.sbs.reserve(spec.sbs.size());
    for (const auto& sb : spec.sbs) {
        SbNode n;
        n.name = sb.name;
        n.period = effective_period(sb);
        n.restart = sb.clock.restart_delay;
        g.sbs.push_back(std::move(n));
    }

    // --- two-node rings ---------------------------------------------------
    for (std::size_t r = 0; r < spec.rings.size(); ++r) {
        const auto& ring = spec.rings[r];
        const std::string locus = "ring '" + ring.name + "'";
        if (ring.sb_a >= spec.sbs.size() || ring.sb_b >= spec.sbs.size()) {
            defect(g, locus, "SB endpoint index out of range", false);
            continue;
        }
        if (ring.sb_a == ring.sb_b) {
            defect(g, locus, "ring is a self-loop on one SB", false);
            continue;
        }
        RingInfo info;
        info.name = ring.name;
        info.multi = false;
        info.index = r;
        info.holders = (ring.node_a.initial_holder ? 1u : 0u) +
                       (ring.node_b.initial_holder ? 1u : 0u);
        g.rings.push_back(std::move(info));

        const sim::Time t_a = g.sbs[ring.sb_a].period;
        const sim::Time t_b = g.sbs[ring.sb_b].period;
        const sim::Time round_trip = ring.delay_ab + ring.delay_ba;

        Station a;
        a.ring = r;
        a.sb = ring.sb_a;
        a.peer_sb = ring.sb_b;
        a.hold = ring.node_a.hold;
        a.recycle = ring.node_a.recycle;
        a.t_local = t_a;
        a.provisioned = static_cast<sim::Time>(ring.node_a.recycle) * t_a;
        a.away =
            round_trip + static_cast<sim::Time>(ring.node_b.hold + 1) * t_b;
        a.locus = "ring '" + ring.name + "' node in SB '" +
                  spec.sbs[ring.sb_a].name + "'";
        g.sbs[ring.sb_a].stations.push_back(g.stations.size());
        g.stations.push_back(std::move(a));

        Station b;
        b.ring = r;
        b.sb = ring.sb_b;
        b.peer_sb = ring.sb_a;
        b.hold = ring.node_b.hold;
        b.recycle = ring.node_b.recycle;
        b.t_local = t_b;
        b.provisioned = static_cast<sim::Time>(ring.node_b.recycle) * t_b;
        b.away =
            round_trip + static_cast<sim::Time>(ring.node_a.hold + 1) * t_a;
        b.locus = "ring '" + ring.name + "' node in SB '" +
                  spec.sbs[ring.sb_b].name + "'";
        g.sbs[ring.sb_b].stations.push_back(g.stations.size());
        g.stations.push_back(std::move(b));
    }

    // --- multi-rings (token buses) ----------------------------------------
    for (std::size_t r = 0; r < spec.multi_rings.size(); ++r) {
        const auto& mr = spec.multi_rings[r];
        const std::string locus = "multi-ring '" + mr.name + "'";
        if (mr.members.size() < 2) {
            defect(g, locus, "fewer than 2 members", false);
            continue;
        }
        bool bad = false;
        for (const auto& m : mr.members) {
            if (m.sb >= spec.sbs.size()) {
                defect(g, locus, "member SB index out of range", false);
                bad = true;
                break;
            }
        }
        if (bad) continue;
        for (std::size_t i = 0; !bad && i < mr.members.size(); ++i) {
            for (std::size_t j = i + 1; j < mr.members.size(); ++j) {
                if (mr.members[i].sb == mr.members[j].sb) {
                    defect(g, locus,
                           "SB '" + spec.sbs[mr.members[i].sb].name +
                               "' appears twice",
                           false);
                    bad = true;
                    break;
                }
            }
        }
        if (bad) continue;

        RingInfo info;
        info.name = mr.name;
        info.multi = true;
        info.index = r;
        for (const auto& m : mr.members) {
            if (m.node.initial_holder) ++info.holders;
        }
        g.rings.push_back(std::move(info));

        sim::Time hops_total = 0;
        for (const auto& m : mr.members) hops_total += m.hop_delay;
        const std::size_t ring_id = spec.rings.size() + r;
        for (std::size_t i = 0; i < mr.members.size(); ++i) {
            const auto& me = mr.members[i];
            const sim::Time t_local = g.sbs[me.sb].period;
            sim::Time others = 0;
            for (std::size_t j = 0; j < mr.members.size(); ++j) {
                if (j == i) continue;
                others +=
                    static_cast<sim::Time>(mr.members[j].node.hold + 1) *
                    g.sbs[mr.members[j].sb].period;
            }
            // One station per (member, other-member) pair, like the dl
            // fixpoint, so coupling can propagate from any co-member's SB.
            for (std::size_t j = 0; j < mr.members.size(); ++j) {
                if (j == i) continue;
                Station v;
                v.ring = ring_id;
                v.multi = true;
                v.sb = me.sb;
                v.peer_sb = mr.members[j].sb;
                v.hold = me.node.hold;
                v.recycle = me.node.recycle;
                v.t_local = t_local;
                v.provisioned =
                    static_cast<sim::Time>(me.node.recycle) * t_local;
                v.away = hops_total + others;
                v.locus = "multi-ring '" + mr.name + "' member SB '" +
                          spec.sbs[me.sb].name + "'";
                g.sbs[me.sb].stations.push_back(g.stations.size());
                g.stations.push_back(std::move(v));
            }
        }
    }

    // --- channels ----------------------------------------------------------
    for (std::size_t c = 0; c < spec.channels.size(); ++c) {
        const auto& ch = spec.channels[c];
        const std::string locus = "channel '" + ch.name + "'";
        if (ch.from_sb >= spec.sbs.size() || ch.to_sb >= spec.sbs.size()) {
            defect(g, locus, "SB endpoint index out of range", false);
            continue;
        }
        FifoEdge e;
        e.channel = c;
        e.from_sb = ch.from_sb;
        e.to_sb = ch.to_sb;
        e.multi = ch.on_multi_ring;
        e.depth = ch.fifo.depth;
        e.stage_delay = ch.fifo.stage_delay;
        e.ripple = static_cast<sim::Time>(ch.fifo.depth) * ch.fifo.stage_delay +
                   2 * (ch.fifo.head_req_delay + ch.fifo.head_ack_delay);
        e.t_prod = g.sbs[ch.from_sb].period;
        e.t_cons = g.sbs[ch.to_sb].period;
        e.locus = locus;
        if (!ch.on_multi_ring) {
            if (ch.ring >= spec.rings.size()) {
                defect(g, locus, "ring index out of range", false);
                continue;
            }
            const auto& ring = spec.rings[ch.ring];
            const bool joins = (ring.sb_a == ch.from_sb &&
                                ring.sb_b == ch.to_sb) ||
                               (ring.sb_a == ch.to_sb &&
                                ring.sb_b == ch.from_sb);
            if (!joins) {
                // Elaboration rejects this binding with a clean exception,
                // so the defect is replayable as a model-trap witness.
                defect(g, locus,
                       "bundled ring '" + ring.name +
                           "' does not join SBs '" +
                           sb_name(spec, ch.from_sb) + "' and '" +
                           sb_name(spec, ch.to_sb) + "'",
                       true);
                continue;
            }
            e.ring = ch.ring;
            e.burst = ch.from_sb == ring.sb_a ? ring.node_a.hold
                                              : ring.node_b.hold;
            e.flight =
                ch.from_sb == ring.sb_a ? ring.delay_ab : ring.delay_ba;
        } else {
            if (ch.ring >= spec.multi_rings.size()) {
                defect(g, locus, "multi-ring index out of range", false);
                continue;
            }
            const auto& mr = spec.multi_rings[ch.ring];
            std::size_t from_m = mr.members.size();
            std::size_t to_m = mr.members.size();
            for (std::size_t m = 0; m < mr.members.size(); ++m) {
                if (mr.members[m].sb == ch.from_sb) from_m = m;
                if (mr.members[m].sb == ch.to_sb) to_m = m;
            }
            if (from_m == mr.members.size() || to_m == mr.members.size()) {
                defect(g, locus,
                       "an endpoint is not a member of multi-ring '" +
                           mr.name + "'",
                       false);
                continue;
            }
            e.ring = spec.rings.size() + ch.ring;
            e.burst = mr.members[from_m].node.hold;
            // Token flight: hop distances from producer to consumer in ring
            // order (hop_delay is the wire to the *next* member).
            for (std::size_t m = from_m; m != to_m;
                 m = (m + 1) % mr.members.size()) {
                e.flight += mr.members[m].hop_delay;
            }
        }
        g.sbs[ch.from_sb].out_channels.push_back(g.fifos.size());
        g.sbs[ch.to_sb].in_channels.push_back(g.fifos.size());
        g.fifos.push_back(std::move(e));
    }

    // --- station coupling (the dl cross() relation, precomputed) -----------
    g.coupling.resize(g.stations.size());
    std::vector<std::vector<std::size_t>> by_sb(g.sbs.size());
    for (std::size_t i = 0; i < g.stations.size(); ++i) {
        by_sb[g.stations[i].sb].push_back(i);
    }
    for (std::size_t n = 0; n < g.stations.size(); ++n) {
        for (const std::size_t j : by_sb[g.stations[n].peer_sb]) {
            if (g.stations[j].ring != g.stations[n].ring) {
                g.coupling[n].push_back(j);
            }
        }
    }
    // A trap witness promises that elaboration throws *cleanly*. That only
    // holds when every structural defect is of the clean-throwing kind: if
    // an ill-indexed defect coexists, elaboration may fault on it first, so
    // no defect is safely replayable.
    if (g.trap_defects.size() != g.structural.size()) g.trap_defects.clear();
    return g;
}

}  // namespace st::sva
