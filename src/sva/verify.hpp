#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lint/diagnostic.hpp"
#include "sva/passes.hpp"
#include "system/spec.hpp"

namespace st::sva {

struct VerifyOptions {
    /// Replay every witness through the st_fuzz classifier to upgrade
    /// PLAUSIBLE findings to CONFIRMED or retract them.
    bool cross_check = true;
    /// Replay horizon (local cycles) for witnesses that do not pin one.
    std::uint64_t witness_cycles = 200;
    /// Fan passes and witness replays out over runner::sweep.
    std::size_t jobs = 1;
};

struct VerifyReport {
    std::vector<Obligation> obligations;
    bool lowered_ok = true;

    std::size_t count(Verdict v) const;
    /// Every obligation discharged statically — the acceptance bar for
    /// shipped and generated specs.
    bool clean() const;
    /// "7 obligation(s): 7 proven, 0 confirmed, 0 plausible, 0 retracted"
    std::string summary() const;
};

/// Lower `spec` and run the full static-verification pipeline: the five
/// passes fan out on the runner engine, then every witnessed obligation is
/// cross-checked dynamically (when enabled). Never throws on malformed
/// specs — structural defects become obligations.
VerifyReport verify(const sys::SocSpec& spec, const VerifyOptions& opt = {});

/// Render obligations as lint diagnostics: PROVEN and RETRACTED are notes,
/// PLAUSIBLE and CONFIRMED are errors; the witness description rides along
/// on the diagnostic for machine-readable output.
void render(const VerifyReport& vr, lint::LintReport& out);

}  // namespace st::sva
