#include "debug/driver.hpp"

#include <stdexcept>

namespace st::debug {

Driver::Driver(sys::SocSpec spec)
    : spec_(std::move(spec)), soc_(std::make_unique<sys::Soc>(spec_)) {}

bool Driver::any_hit(const std::vector<Breakpoint>& stops,
                     std::optional<Breakpoint>& which) const {
    for (const auto& bp : stops) {
        if (bp.sb >= soc_->num_sbs()) {
            throw std::invalid_argument("debug: breakpoint SB " +
                                        std::to_string(bp.sb) +
                                        " out of range");
        }
        if (soc_->wrapper(bp.sb).clock().cycles() >= bp.cycle) {
            which = bp;
            return true;
        }
    }
    return false;
}

StopInfo Driver::run_impl(sim::Time deadline,
                          const std::vector<Breakpoint>& stops) {
    soc_->start();
    auto& sched = soc_->scheduler();
    StopInfo info;
    while (true) {
        if (any_hit(stops, info.hit)) {
            info.reason = StopReason::kBreakpoint;
            break;
        }
        if (sched.quiescent()) {
            info.reason = StopReason::kQuiescent;
            break;
        }
        if (sched.next_event_time() > deadline) {
            info.reason = StopReason::kDeadline;
            break;
        }
        sched.step();
    }
    // Land on a slot boundary so the stop state is snapshottable and
    // digests are reproducible across sessions.
    soc_->settle();
    return info;
}

StopInfo Driver::run(sim::Time deadline) {
    return run_impl(deadline, breakpoints_);
}

StopInfo Driver::run_to_cycle(std::size_t sb, std::uint64_t cycle,
                              sim::Time deadline) {
    return run_impl(deadline, {Breakpoint{sb, cycle}});
}

std::uint64_t Driver::step(std::uint64_t n) {
    soc_->start();
    auto& sched = soc_->scheduler();
    std::uint64_t done = 0;
    while (done < n && sched.step()) ++done;
    soc_->settle();
    return done;
}

std::uint64_t Driver::cycle(std::size_t sb) const {
    return soc_->wrapper(sb).clock().cycles();
}

snap::Snapshot Driver::snapshot() {
    soc_->start();
    soc_->settle();
    return soc_->save_snapshot();
}

void Driver::save(const std::string& path) { snapshot().save_file(path); }

void Driver::set_race_audit(bool on) {
    race_audit_ = on;
    soc_->scheduler().set_race_audit(on);
}

void Driver::restore(const snap::Snapshot& snapshot) {
    auto fresh = std::make_unique<sys::Soc>(spec_);
    fresh->restore_snapshot(snapshot);
    soc_ = std::move(fresh);
    // Re-arm driver-owned observation state on the fresh Soc: without this a
    // resumed session silently stops auditing and diverges from the cold
    // session's diagnostics.
    if (race_audit_) soc_->scheduler().set_race_audit(true);
}

void Driver::load(const std::string& path) {
    restore(snap::Snapshot::load_file(path));
}

std::string format_stop(const StopInfo& info) {
    switch (info.reason) {
        case StopReason::kBreakpoint:
            return "breakpoint sb=" + std::to_string(info.hit->sb) +
                   " cycle=" + std::to_string(info.hit->cycle);
        case StopReason::kQuiescent:
            return "quiescent";
        case StopReason::kDeadline:
            return "deadline";
    }
    return "unknown";
}

}  // namespace st::debug
