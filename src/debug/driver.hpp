#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "snap/snapshot.hpp"
#include "system/soc.hpp"
#include "system/testbenches.hpp"

namespace st::debug {

/// A breakpoint in local-cycle space: fire when SB `sb` has executed at
/// least `cycle` local clock cycles. Local cycle indices — not picoseconds —
/// are the deterministic coordinate system of the paper: the same (SB,
/// cycle) pair names the same architectural state in every run, under every
/// delay perturbation.
struct Breakpoint {
    std::size_t sb = 0;
    std::uint64_t cycle = 0;

    bool operator==(const Breakpoint&) const = default;
};

/// Outcome of one Driver::run / run_to_cycle leg.
enum class StopReason : std::uint8_t {
    kBreakpoint,  ///< a breakpoint's SB reached its cycle
    kQuiescent,   ///< no events pending (deadlock when clocks are stopped)
    kDeadline,    ///< simulated-time deadline passed
};

struct StopInfo {
    StopReason reason = StopReason::kQuiescent;
    std::optional<Breakpoint> hit;  ///< set when reason == kBreakpoint
};

/// Deterministic debug driver: wraps a Soc elaborated from a spec and
/// provides run-to-cycle breakpoints, event-level single-stepping, and
/// snapshot save/load — the simulator-side analogue of the paper's
/// tester-side debug flow (stop deterministically, examine state, resume).
///
/// Every stop lands on a slot boundary (the driver settles the current
/// timeslot), so the state is always snapshottable and two sessions that
/// issue the same commands observe identical digests at every stop.
class Driver {
  public:
    /// Elaborate a fresh Soc from `spec` (not started until the first run).
    explicit Driver(sys::SocSpec spec);

    /// Convenience: elaborate a shipped testbench by name.
    static Driver from_named_spec(const std::string& name) {
        return Driver(sys::make_named_spec(name));
    }

    sys::Soc& soc() { return *soc_; }

    // --- breakpoints ---
    void add_breakpoint(Breakpoint bp) { breakpoints_.push_back(bp); }
    void clear_breakpoints() { breakpoints_.clear(); }
    const std::vector<Breakpoint>& breakpoints() const { return breakpoints_; }

    /// Run until any breakpoint fires, the system goes quiescent, or the
    /// deadline passes. Already-satisfied breakpoints fire immediately.
    StopInfo run(sim::Time deadline);

    /// Run until SB `sb` has executed >= `cycle` local cycles (a one-shot
    /// breakpoint that does not disturb the persistent set).
    StopInfo run_to_cycle(std::size_t sb, std::uint64_t cycle,
                          sim::Time deadline);

    /// Execute up to `n` scheduler events, then settle to a slot boundary.
    /// Returns events actually executed (less than `n` when quiescent).
    std::uint64_t step(std::uint64_t n);

    // --- observation ---
    std::uint64_t cycle(std::size_t sb) const;
    sim::Time now() const { return soc_->scheduler().now(); }
    bool quiescent() const { return soc_->scheduler().quiescent(); }

    // --- race audit ---
    /// Toggle the scheduler's same-slot race audit. The setting is driver
    /// state, not Soc state: it survives restore()/load() (which elaborate a
    /// fresh Soc), so a resumed debug session audits exactly like the cold
    /// session it was snapshotted from.
    void set_race_audit(bool on);
    bool race_audit() const { return race_audit_; }
    /// Races recorded by the current Soc (cleared by a restore — the races
    /// belong to the discarded simulation, not the restored one).
    const std::vector<sim::RaceRecord>& races() const {
        return soc_->scheduler().races();
    }

    // --- snapshot/restore ---
    snap::Snapshot snapshot();
    std::uint64_t digest() { return snapshot().digest(); }
    void save(const std::string& path);

    /// Discard the current Soc, elaborate a fresh one from the same spec,
    /// and restore `snapshot` into it. Breakpoints survive a load.
    void restore(const snap::Snapshot& snapshot);
    void load(const std::string& path);

  private:
    StopInfo run_impl(sim::Time deadline,
                      const std::vector<Breakpoint>& stops);
    bool any_hit(const std::vector<Breakpoint>& stops,
                 std::optional<Breakpoint>& which) const;

    sys::SocSpec spec_;
    std::unique_ptr<sys::Soc> soc_;
    std::vector<Breakpoint> breakpoints_;
    bool race_audit_ = false;
};

/// Human-readable stop description for CLI output.
std::string format_stop(const StopInfo& info);

}  // namespace st::debug
