#include "snap/state_io.hpp"

#include <cassert>
#include <cstring>

namespace st::snap {

std::uint64_t fnv1a(const std::uint8_t* data, std::size_t n,
                    std::uint64_t seed) {
    std::uint64_t h = seed;
    for (std::size_t i = 0; i < n; ++i) {
        h ^= data[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

// ---------------------------------------------------------------- writer

namespace {

void put_le(std::vector<std::uint8_t>& buf, std::uint64_t v, int bytes) {
    for (int i = 0; i < bytes; ++i) {
        buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
}

}  // namespace

void StateWriter::open_chunk(const std::string& name, std::uint16_t version,
                             std::uint8_t kind) {
    if (name.empty() || name.size() > 0xffff) {
        throw SnapshotError("bad chunk name '" + name + "'");
    }
    put_le(buf_, name.size(), 2);
    buf_.insert(buf_.end(), name.begin(), name.end());
    put_le(buf_, version, 2);
    put_le(buf_, kind, 1);
    open_.push_back(buf_.size());
    put_le(buf_, 0, 8);  // body_len placeholder, patched by end()
}

void StateWriter::begin(const std::string& name, std::uint16_t version) {
    open_chunk(name, version, 0);
}

void StateWriter::begin_group(const std::string& name,
                              std::uint16_t version) {
    open_chunk(name, version, 1);
}

void StateWriter::end() {
    if (open_.empty()) throw SnapshotError("end() without begin()");
    const std::size_t at = open_.back();
    open_.pop_back();
    const std::uint64_t body = buf_.size() - (at + 8);
    for (int i = 0; i < 8; ++i) {
        buf_[at + static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(body >> (8 * i));
    }
}

void StateWriter::u8(std::uint8_t v) { put_le(buf_, v, 1); }
void StateWriter::u16(std::uint16_t v) { put_le(buf_, v, 2); }
void StateWriter::u32(std::uint32_t v) { put_le(buf_, v, 4); }
void StateWriter::u64(std::uint64_t v) { put_le(buf_, v, 8); }

void StateWriter::str(const std::string& s) {
    if (s.size() > 0xffffffffull) throw SnapshotError("string too long");
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
}

void StateWriter::blob(const std::vector<std::uint8_t>& v) {
    u64(v.size());
    buf_.insert(buf_.end(), v.begin(), v.end());
}

std::vector<std::uint8_t> StateWriter::take() {
    if (!open_.empty()) throw SnapshotError("take() with open chunk");
    return std::move(buf_);
}

// ----------------------------------------------------------- rewind plan

void RewindPlan::build(const std::uint8_t* data, std::size_t n) {
    if (n == 0) throw SnapshotError("rewind plan over empty image");
    chunks_.clear();
    // Iterative pre-order walk with the same framing checks enter() makes.
    // Each header is parsed exactly once; group bodies recurse via the
    // explicit `pending` stack of body-end offsets.
    std::vector<std::size_t> pending;  // innermost group body end, last
    std::size_t pos = 0;
    const auto fail = [](std::size_t at, const char* what) {
        throw SnapshotError("rewind plan: " + std::string(what) +
                            " at offset " + std::to_string(at));
    };
    while (true) {
        while (!pending.empty() && pos == pending.back()) pending.pop_back();
        if (pending.empty() && pos == n) break;
        const std::size_t end = pending.empty() ? n : pending.back();
        const std::size_t hdr = pos;
        if (pos + 2 > end) fail(pos, "truncated chunk header");
        const std::uint16_t name_len =
            static_cast<std::uint16_t>(data[pos] | (data[pos + 1] << 8));
        pos += 2;
        if (name_len == 0 || pos + name_len > end) fail(hdr, "bad chunk name");
        const std::size_t name_off = pos;
        pos += name_len;
        if (pos + 2 + 1 + 8 > end) fail(hdr, "truncated chunk header");
        const std::uint16_t version =
            static_cast<std::uint16_t>(data[pos] | (data[pos + 1] << 8));
        pos += 2;
        const std::uint8_t kind = data[pos++];
        if (kind > 1) fail(hdr, "bad chunk kind");
        std::uint64_t body = 0;
        for (int i = 0; i < 8; ++i) {
            body |= static_cast<std::uint64_t>(data[pos + i]) << (8 * i);
        }
        pos += 8;
        if (body > end - pos) fail(hdr, "chunk body overruns parent");
        const std::size_t body_end = pos + static_cast<std::size_t>(body);
        chunks_.push_back(ChunkSpan{hdr, pos, body_end,
                                    static_cast<std::uint32_t>(name_off),
                                    name_len, version});
        if (kind == 1) {
            pending.push_back(body_end);  // descend into the group body
        } else {
            pos = body_end;
        }
    }
    size_ = n;
    digest_ = fnv1a(data, n);
}

// ---------------------------------------------------------------- reader

void StateReader::need(std::size_t n) const {
    if (pos_ + n > limit_) {
        throw SnapshotError("truncated image (need " + std::to_string(n) +
                            " bytes at offset " + std::to_string(pos_) + ")");
    }
}

std::uint8_t StateReader::u8() {
    need(1);
    return buf_[pos_++];
}

std::uint16_t StateReader::u16() {
    need(2);
    std::uint16_t v = 0;
    for (int i = 0; i < 2; ++i) {
        v = static_cast<std::uint16_t>(
            v | static_cast<std::uint16_t>(buf_[pos_ + static_cast<std::size_t>(i)]) << (8 * i));
    }
    pos_ += 2;
    return v;
}

std::uint32_t StateReader::u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
        v |= static_cast<std::uint32_t>(buf_[pos_ + static_cast<std::size_t>(i)]) << (8 * i);
    }
    pos_ += 4;
    return v;
}

std::uint64_t StateReader::u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
        v |= static_cast<std::uint64_t>(buf_[pos_ + static_cast<std::size_t>(i)]) << (8 * i);
    }
    pos_ += 8;
    return v;
}

std::string StateReader::str() {
    const std::uint32_t n = u32();
    need(n);
    std::string s(reinterpret_cast<const char*>(buf_ + pos_), n);
    pos_ += n;
    return s;
}

std::vector<std::uint8_t> StateReader::blob() {
    const std::uint64_t n = u64();
    need(static_cast<std::size_t>(n));
    std::vector<std::uint8_t> v(buf_ + pos_, buf_ + pos_ + n);
    pos_ += static_cast<std::size_t>(n);
    return v;
}

std::string StateReader::peek() {
    if (pos_ >= limit_) return {};
    const std::size_t saved = pos_;
    const std::uint16_t len = u16();
    need(len);
    std::string name(reinterpret_cast<const char*>(buf_ + pos_), len);
    pos_ = saved;
    return name;
}

std::uint16_t StateReader::enter(const std::string& name,
                                 std::uint16_t max_version) {
    if (plan_ != nullptr) {
        // Trusted fast path: the restore walk over a fixed image is
        // deterministic, so the plan's pre-order table *is* the enter()
        // sequence. Cross-check the cursors so any desync (reader bug,
        // wrong image) throws instead of silently misreading.
        if (chunk_idx_ >= plan_->chunks_.size() ||
            plan_->chunks_[chunk_idx_].hdr_off != pos_) {
            throw SnapshotError("rewind plan desync entering '" + name +
                                "' at offset " + std::to_string(pos_));
        }
        const RewindPlan::ChunkSpan& c = plan_->chunks_[chunk_idx_++];
        assert(c.name_len == name.size() &&
               std::memcmp(buf_ + c.name_off, name.data(), name.size()) == 0 &&
               "rewind plan chunk name mismatch");
        if (c.version > max_version) {
            throw SnapshotError("chunk '" + name + "' has version " +
                                std::to_string(c.version) +
                                "; this build reads <= " +
                                std::to_string(max_version));
        }
        pos_ = static_cast<std::size_t>(c.body_begin);
        limit_ = static_cast<std::size_t>(c.body_end);
        ends_.push_back(limit_);
        return c.version;
    }
    const std::uint16_t len = u16();
    need(len);
    if (len != name.size() ||
        std::memcmp(buf_ + pos_, name.data(), len) != 0) {
        std::string got(reinterpret_cast<const char*>(buf_ + pos_), len);
        throw SnapshotError("expected chunk '" + name + "', found '" + got +
                            "'");
    }
    pos_ += len;
    const std::uint16_t version = u16();
    if (version > max_version) {
        throw SnapshotError("chunk '" + name + "' has version " +
                            std::to_string(version) +
                            "; this build reads <= " +
                            std::to_string(max_version));
    }
    const std::uint8_t kind = u8();
    if (kind > 1) {
        throw SnapshotError("chunk '" + name + "' has bad kind " +
                            std::to_string(kind));
    }
    const std::uint64_t body = u64();
    need(static_cast<std::size_t>(body));
    limit_ = pos_ + static_cast<std::size_t>(body);
    ends_.push_back(limit_);
    return version;
}

void StateReader::leave() {
    if (ends_.empty()) throw SnapshotError("leave() without enter()");
    if (pos_ != ends_.back()) {
        throw SnapshotError("chunk body has " +
                            std::to_string(ends_.back() - pos_) +
                            " unread bytes");
    }
    ends_.pop_back();
    limit_ = ends_.empty() ? size_ : ends_.back();
}

}  // namespace st::snap
