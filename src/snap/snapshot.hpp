#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "snap/state_io.hpp"

namespace st::snap {

/// Uniform checkpoint interface. Implementations write their complete
/// model state (including the fire times of any events they have pending
/// in the scheduler) in save_state, and reconstruct it — re-arming those
/// pending events through the scheduler's restore staging — in
/// restore_state. save_state and restore_state must consume exactly the
/// same chunk sequence.
class Snapshottable {
  public:
    virtual ~Snapshottable() = default;
    virtual void save_state(StateWriter& w) const = 0;
    virtual void restore_state(StateReader& r) = 0;
};

/// A complete checkpoint image: the raw chunk bytes plus helpers for
/// digesting, diffing, and file round-trips.
class Snapshot {
  public:
    Snapshot() = default;
    explicit Snapshot(std::vector<std::uint8_t> image)
        : image_(std::move(image)) {}

    const std::vector<std::uint8_t>& bytes() const { return image_; }
    bool empty() const { return image_.empty(); }

    /// FNV-1a over the whole image. Two runs of the same model are in the
    /// same state iff their snapshot digests match.
    std::uint64_t digest() const {
        return fnv1a(image_.data(), image_.size());
    }

    /// Write to / read from a file ("STSNAP1\n" magic + image bytes).
    /// Throws SnapshotError on I/O failure or bad magic.
    void save_file(const std::string& path) const;
    static Snapshot load_file(const std::string& path);

    /// save_file via a sibling temp file + rename, so a reader (or a crash
    /// mid-write) never observes a torn image at `path`. This is what
    /// campaign checkpointing uses: a kill between any two progress images
    /// leaves the previous complete image in place.
    void save_file_atomic(const std::string& path) const;

    friend bool operator==(const Snapshot& a, const Snapshot& b) {
        return a.image_ == b.image_;
    }
    friend bool operator!=(const Snapshot& a, const Snapshot& b) {
        return !(a == b);
    }

  private:
    std::vector<std::uint8_t> image_;
};

/// One differing chunk between two snapshots.
struct ChunkDiff {
    std::string path;       ///< slash-joined chunk names, e.g. "soc/sb0/clk"
    std::uint64_t digest_a = 0;  ///< 0 when the chunk is absent on a side
    std::uint64_t digest_b = 0;
};

/// Walk both chunk trees in parallel and report every leaf-level chunk
/// whose bytes differ (or that exists on only one side). Used by
/// `st_debug --diff` to localise state divergence between checkpoints.
std::vector<ChunkDiff> diff_snapshots(const Snapshot& a, const Snapshot& b);

/// Render a chunk diff for humans, one line per differing chunk.
std::string format_diff(const std::vector<ChunkDiff>& diffs);

}  // namespace st::snap
