#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace st::snap {

/// Thrown on any malformed, truncated, or mismatching snapshot image.
class SnapshotError : public std::runtime_error {
  public:
    explicit SnapshotError(const std::string& what)
        : std::runtime_error("snapshot: " + what) {}
};

/// FNV-1a over a byte range (same constants as sys::fig2 digest).
std::uint64_t fnv1a(const std::uint8_t* data, std::size_t n,
                    std::uint64_t seed = 0xcbf29ce484222325ull);

/// Serializer for the snapshot chunk format.
///
/// The image is a flat byte buffer of nested *chunks*. Every chunk is
///
///     name_len : u16    little-endian
///     name     : bytes  (ASCII, no NUL)
///     version  : u16
///     kind     : u8     0 = leaf (body is primitives only),
///                       1 = group (body is a sequence of chunks)
///     body_len : u64    byte length of the body
///     body     : bytes
///
/// All primitives are explicitly little-endian regardless of host byte
/// order, so images are portable across machines. Versions are per-chunk:
/// a reader that encounters a chunk version newer than it understands must
/// reject the image (see StateReader::enter). The kind byte lets generic
/// tools (diff_snapshots) walk the tree without model knowledge.
class StateWriter {
  public:
    /// Open a leaf chunk (primitives only). Must be balanced with end().
    void begin(const std::string& name, std::uint16_t version = 1);
    /// Open a group chunk (body is nested chunks only).
    void begin_group(const std::string& name, std::uint16_t version = 1);
    void end();

    void u8(std::uint8_t v);
    void u16(std::uint16_t v);
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    void b(bool v) { u8(v ? 1 : 0); }
    void str(const std::string& s);
    /// Length-prefixed raw byte blob.
    void blob(const std::vector<std::uint8_t>& v);

    /// Finish and take the image. Throws if any chunk is still open.
    std::vector<std::uint8_t> take();

    const std::vector<std::uint8_t>& bytes() const { return buf_; }

  private:
    void open_chunk(const std::string& name, std::uint16_t version,
                    std::uint8_t kind);

    std::vector<std::uint8_t> buf_;
    /// Offsets of the body_len field of each open chunk, innermost last.
    std::vector<std::size_t> open_;
};

/// Deserializer for the snapshot chunk format. Strict by design: chunk
/// names must match exactly, every body byte must be consumed before
/// leave(), and versions newer than the caller expects are rejected.
class StateReader {
  public:
    explicit StateReader(const std::vector<std::uint8_t>& image)
        : buf_(image.data()), size_(image.size()) {}
    StateReader(const std::uint8_t* data, std::size_t n)
        : buf_(data), size_(n) {}

    /// Enter the next chunk; its name must equal `name` and its version
    /// must be <= max_version. Returns the chunk's version.
    std::uint16_t enter(const std::string& name,
                        std::uint16_t max_version = 1);
    /// Leave the current chunk; throws if body bytes remain unread.
    void leave();

    std::uint8_t u8();
    std::uint16_t u16();
    std::uint32_t u32();
    std::uint64_t u64();
    bool b() { return u8() != 0; }
    std::string str();
    std::vector<std::uint8_t> blob();

    /// Name of the next chunk at the current position (without consuming
    /// it). Empty string when the current chunk body (or image) is done.
    std::string peek();

    /// True when every byte of the image has been consumed.
    bool done() const { return pos_ == size_; }

  private:
    std::uint64_t limit() const;
    void need(std::size_t n) const;

    const std::uint8_t* buf_;
    std::size_t size_;
    std::size_t pos_ = 0;
    /// End offset of each open chunk body, innermost last.
    std::vector<std::size_t> ends_;
};

}  // namespace st::snap
