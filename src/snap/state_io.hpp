#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace st::snap {

/// Thrown on any malformed, truncated, or mismatching snapshot image.
class SnapshotError : public std::runtime_error {
  public:
    explicit SnapshotError(const std::string& what)
        : std::runtime_error("snapshot: " + what) {}
};

/// FNV-1a over a byte range (same constants as sys::fig2 digest).
std::uint64_t fnv1a(const std::uint8_t* data, std::size_t n,
                    std::uint64_t seed = 0xcbf29ce484222325ull);

/// Serializer for the snapshot chunk format.
///
/// The image is a flat byte buffer of nested *chunks*. Every chunk is
///
///     name_len : u16    little-endian
///     name     : bytes  (ASCII, no NUL)
///     version  : u16
///     kind     : u8     0 = leaf (body is primitives only),
///                       1 = group (body is a sequence of chunks)
///     body_len : u64    byte length of the body
///     body     : bytes
///
/// All primitives are explicitly little-endian regardless of host byte
/// order, so images are portable across machines. Versions are per-chunk:
/// a reader that encounters a chunk version newer than it understands must
/// reject the image (see StateReader::enter). The kind byte lets generic
/// tools (diff_snapshots) walk the tree without model knowledge.
class StateWriter {
  public:
    /// Open a leaf chunk (primitives only). Must be balanced with end().
    void begin(const std::string& name, std::uint16_t version = 1);
    /// Open a group chunk (body is nested chunks only).
    void begin_group(const std::string& name, std::uint16_t version = 1);
    void end();

    void u8(std::uint8_t v);
    void u16(std::uint16_t v);
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    void b(bool v) { u8(v ? 1 : 0); }
    void str(const std::string& s);
    /// Length-prefixed raw byte blob.
    void blob(const std::vector<std::uint8_t>& v);

    /// Finish and take the image. Throws if any chunk is still open.
    std::vector<std::uint8_t> take();

    const std::vector<std::uint8_t>& bytes() const { return buf_; }

  private:
    void open_chunk(const std::string& name, std::uint16_t version,
                    std::uint8_t kind);

    std::vector<std::uint8_t> buf_;
    /// Offsets of the body_len field of each open chunk, innermost last.
    std::vector<std::size_t> open_;
};

/// Pre-validated parse plan for one *fixed* snapshot image: the flattened
/// pre-order chunk table (header offset, version, body span) produced by a
/// single strict walk of the image bytes. Building the plan performs every
/// framing check the strict reader would (bounds, kind, nesting), so a
/// StateReader constructed over the *same bytes* with the plan can resolve
/// each enter() by table lookup — no name decode/compare, no per-chunk
/// re-validation — while primitive reads keep their bounds checks.
///
/// This is the delta that makes gang-lane rewind cheap: the pristine image
/// never changes between cases, yet a strict restore re-parses and
/// re-validates all of its framing every time. The plan hoists that work
/// to once per (process, image). Identity is the caller's contract — pair
/// a plan only with the byte buffer it was built from (compare
/// image_size()/image_digest() once; `sys::Soc::reset_from_image` does).
class RewindPlan {
  public:
    RewindPlan() = default;
    /// Build by strict-walking `image`; throws SnapshotError if malformed.
    explicit RewindPlan(const std::vector<std::uint8_t>& image) {
        build(image.data(), image.size());
    }
    RewindPlan(const std::uint8_t* data, std::size_t n) { build(data, n); }

    bool built() const { return size_ != 0; }
    std::size_t image_size() const { return size_; }
    /// FNV-1a of the full image the plan was built from.
    std::uint64_t image_digest() const { return digest_; }
    std::size_t num_chunks() const { return chunks_.size(); }

  private:
    friend class StateReader;
    /// One chunk of the walked image, in pre-order.
    struct ChunkSpan {
        std::uint64_t hdr_off;     ///< offset of the name_len field
        std::uint64_t body_begin;  ///< first body byte
        std::uint64_t body_end;    ///< one past the last body byte
        std::uint32_t name_off;    ///< offset of the name bytes
        std::uint16_t name_len;
        std::uint16_t version;
    };
    void build(const std::uint8_t* data, std::size_t n);

    std::vector<ChunkSpan> chunks_;
    std::size_t size_ = 0;
    std::uint64_t digest_ = 0;
};

/// Deserializer for the snapshot chunk format. Strict by design: chunk
/// names must match exactly, every body byte must be consumed before
/// leave(), and versions newer than the caller expects are rejected.
///
/// A reader constructed with a RewindPlan runs in *trusted* mode: enter()
/// follows the plan's chunk table in O(1) instead of decoding and comparing
/// the chunk name. Framing trust is earned, not assumed — the plan itself
/// was a strict walk, every enter() still cross-checks the plan cursor
/// against the byte cursor (a desync throws), leave() still requires full
/// body consumption, and primitive reads keep their bounds checks.
class StateReader {
  public:
    explicit StateReader(const std::vector<std::uint8_t>& image)
        : buf_(image.data()), size_(image.size()), limit_(image.size()) {}
    StateReader(const std::uint8_t* data, std::size_t n)
        : buf_(data), size_(n), limit_(n) {}
    /// Trusted mode: `plan` must have been built from exactly these bytes.
    /// Size is checked here; content identity is the caller's contract
    /// (verify image_digest() once per pairing).
    StateReader(const std::vector<std::uint8_t>& image, const RewindPlan& plan)
        : buf_(image.data()),
          size_(image.size()),
          limit_(image.size()),
          plan_(&plan) {
        if (plan.image_size() != image.size()) {
            throw SnapshotError("rewind plan is for a different image (" +
                                std::to_string(plan.image_size()) + " vs " +
                                std::to_string(image.size()) + " bytes)");
        }
    }

    /// Enter the next chunk; its name must equal `name` and its version
    /// must be <= max_version. Returns the chunk's version.
    std::uint16_t enter(const std::string& name,
                        std::uint16_t max_version = 1);
    /// Leave the current chunk; throws if body bytes remain unread.
    void leave();

    std::uint8_t u8();
    std::uint16_t u16();
    std::uint32_t u32();
    std::uint64_t u64();
    bool b() { return u8() != 0; }
    std::string str();
    std::vector<std::uint8_t> blob();

    /// Name of the next chunk at the current position (without consuming
    /// it). Empty string when the current chunk body (or image) is done.
    std::string peek();

    /// True when every byte of the image has been consumed.
    bool done() const { return pos_ == size_; }

    /// True when this reader resolves chunks through a RewindPlan.
    bool trusted() const { return plan_ != nullptr; }

  private:
    void need(std::size_t n) const;

    const std::uint8_t* buf_;
    std::size_t size_;
    std::size_t pos_ = 0;
    /// End offset of the innermost open chunk body (size_ at top level);
    /// cached so the per-primitive bounds check is one compare.
    std::size_t limit_;
    /// End offset of each open chunk body, innermost last.
    std::vector<std::size_t> ends_;
    /// Non-null in trusted mode; cursor into its pre-order chunk table.
    const RewindPlan* plan_ = nullptr;
    std::size_t chunk_idx_ = 0;
};

}  // namespace st::snap
