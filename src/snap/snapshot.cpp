#include "snap/snapshot.hpp"

#include <cstdio>

namespace st::snap {

namespace {

constexpr char kMagic[] = "STSNAP1\n";
constexpr std::size_t kMagicLen = 8;

}  // namespace

void Snapshot::save_file(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (!f) throw SnapshotError("cannot open '" + path + "' for writing");
    bool ok = std::fwrite(kMagic, 1, kMagicLen, f) == kMagicLen;
    if (ok && !image_.empty()) {
        ok = std::fwrite(image_.data(), 1, image_.size(), f) == image_.size();
    }
    ok = (std::fclose(f) == 0) && ok;
    if (!ok) throw SnapshotError("short write to '" + path + "'");
}

void Snapshot::save_file_atomic(const std::string& path) const {
    const std::string tmp = path + ".tmp";
    save_file(tmp);
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        throw SnapshotError("cannot rename '" + tmp + "' to '" + path + "'");
    }
}

Snapshot Snapshot::load_file(const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (!f) throw SnapshotError("cannot open '" + path + "'");
    std::fseek(f, 0, SEEK_END);
    const long len = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    if (len < static_cast<long>(kMagicLen)) {
        std::fclose(f);
        throw SnapshotError("'" + path + "' is not a snapshot (too short)");
    }
    char magic[kMagicLen];
    if (std::fread(magic, 1, kMagicLen, f) != kMagicLen ||
        std::string(magic, kMagicLen) != std::string(kMagic, kMagicLen)) {
        std::fclose(f);
        throw SnapshotError("'" + path + "' is not a snapshot (bad magic)");
    }
    std::vector<std::uint8_t> image(static_cast<std::size_t>(len) -
                                    kMagicLen);
    const bool ok = image.empty() ||
                    std::fread(image.data(), 1, image.size(), f) ==
                        image.size();
    std::fclose(f);
    if (!ok) throw SnapshotError("short read from '" + path + "'");
    return Snapshot(std::move(image));
}

namespace {

/// Raw view of one chunk header parsed straight off the wire. Mirrors the
/// layout documented in state_io.hpp; kept here so diff can walk images
/// generically without a StateReader expectation of chunk names.
struct RawChunk {
    std::string name;
    std::uint8_t kind = 0;
    const std::uint8_t* body = nullptr;
    std::size_t body_len = 0;
    std::size_t total = 0;  ///< header + body size
};

RawChunk parse_chunk(const std::uint8_t* p, std::size_t n) {
    auto fail = [] { throw SnapshotError("corrupt image in diff walk"); };
    std::size_t pos = 0;
    auto rd = [&](int bytes) {
        if (pos + static_cast<std::size_t>(bytes) > n) fail();
        std::uint64_t v = 0;
        for (int i = 0; i < bytes; ++i) {
            v |= static_cast<std::uint64_t>(p[pos + static_cast<std::size_t>(i)]) << (8 * i);
        }
        pos += static_cast<std::size_t>(bytes);
        return v;
    };
    RawChunk c;
    const auto name_len = static_cast<std::size_t>(rd(2));
    if (pos + name_len > n) fail();
    c.name.assign(reinterpret_cast<const char*>(p + pos), name_len);
    pos += name_len;
    rd(2);  // version — not part of identity
    c.kind = static_cast<std::uint8_t>(rd(1));
    c.body_len = static_cast<std::size_t>(rd(8));
    if (pos + c.body_len > n) fail();
    c.body = p + pos;
    c.total = pos + c.body_len;
    return c;
}

void walk(const std::uint8_t* p, std::size_t n, const std::string& prefix,
          std::vector<std::pair<std::string, std::uint64_t>>& out) {
    std::size_t pos = 0;
    // Sibling chunks can share a name (e.g. repeated "hop" entries); a
    // per-level ordinal keeps paths unique.
    std::size_t ordinal = 0;
    while (pos < n) {
        const RawChunk c = parse_chunk(p + pos, n - pos);
        const std::string path = prefix + "/" + c.name + "[" +
                                 std::to_string(ordinal++) + "]";
        if (c.kind == 1) {
            walk(c.body, c.body_len, path, out);
        } else {
            out.emplace_back(path, fnv1a(c.body, c.body_len));
        }
        pos += c.total;
    }
}

}  // namespace

std::vector<ChunkDiff> diff_snapshots(const Snapshot& a, const Snapshot& b) {
    std::vector<std::pair<std::string, std::uint64_t>> la, lb;
    walk(a.bytes().data(), a.bytes().size(), "", la);
    walk(b.bytes().data(), b.bytes().size(), "", lb);
    std::vector<ChunkDiff> out;
    std::size_t i = 0, j = 0;
    // Leaf lists are in tree order; identical models yield identical paths,
    // so a linear merge keyed on path equality suffices. If the trees have
    // different shapes (different specs), unmatched leaves show up as
    // one-sided entries.
    while (i < la.size() || j < lb.size()) {
        if (i < la.size() && j < lb.size() && la[i].first == lb[j].first) {
            if (la[i].second != lb[j].second) {
                out.push_back({la[i].first, la[i].second, lb[j].second});
            }
            ++i;
            ++j;
        } else if (i < la.size() &&
                   (j >= lb.size() || la[i].first < lb[j].first)) {
            out.push_back({la[i].first, la[i].second, 0});
            ++i;
        } else {
            out.push_back({lb[j].first, 0, lb[j].second});
            ++j;
        }
    }
    return out;
}

std::string format_diff(const std::vector<ChunkDiff>& diffs) {
    if (diffs.empty()) return "snapshots identical\n";
    std::string out;
    char line[160];
    for (const auto& d : diffs) {
        std::snprintf(line, sizeof(line), "%-40s %016llx != %016llx\n",
                      d.path.c_str(),
                      static_cast<unsigned long long>(d.digest_a),
                      static_cast<unsigned long long>(d.digest_b));
        out += line;
    }
    return out;
}

}  // namespace st::snap
