#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace st::sys {

/// One annotated event of the paper's Fig. 2 node state-machine scenario,
/// using the figure's letter codes:
///
///   A token arrives        B recycle counter reaches zero
///   C SB-enable asserts    D hold counter decrements
///   E hold counter presets F token passed
///   G SBs disabled         H recycle counter decrements
///   I clken deasserted     J clock stops
///   K late token returns   L clock restarts
struct Fig2Event {
    char code = '?';
    sim::Time t = 0;

    bool operator==(const Fig2Event&) const = default;
};

/// The canonical event sequence of one Fig. 2 run, observed on the alpha
/// node. Both the code string and the timed digest are golden-tested: the
/// former reads like the figure, the latter pins the exact schedule.
struct Fig2Trace {
    std::vector<Fig2Event> events;

    /// Concatenated event codes in order, e.g. "AFCDDD...".
    std::string sequence() const;

    /// 64-bit FNV-1a over every (code, time) pair in order.
    std::uint64_t digest() const;
};

/// Run the Fig. 2 scenario — the pair testbench with hold=3, recycle=5 and a
/// token wire longer than the clock period, so every round walks the full
/// A..L annotation set including the stop/restart arc — for `cycles` local
/// cycles of the alpha SB, and capture the annotated event sequence.
///
/// Deterministic: same inputs, same trace, same digest. The golden values
/// are asserted by tests/test_golden_fig2.cpp and printed by the
/// fig2_waveforms bench.
Fig2Trace capture_fig2(std::uint64_t cycles = 24);

}  // namespace st::sys
