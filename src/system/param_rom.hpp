#pragma once

#include <cstdint>
#include <vector>

#include "system/soc.hpp"
#include "system/spec.hpp"

namespace st::sys {

/// Parameter ROM: the paper's §4.1 register-download story — "Each counter
/// is parallel loadable from a dedicated register, which in turn may be
/// downloadable from ROM bits, fuses, or directly from the tester."
///
/// The tester path is the TAP scan chain (tap::NodeConfigTarget); this class
/// is the ROM/fuse path: a serializable image of hold/recycle values per
/// ring node and divider settings per SB, applicable either at elaboration
/// (patching a SocSpec — "ROM bits") or to a live pre-start Soc ("fuses").
class ParamRom {
  public:
    struct NodeEntry {
        std::uint16_t ring = 0;
        std::uint8_t side = 0;  ///< 0 = the ring's sb_a node, 1 = sb_b
        std::uint16_t hold = 0;
        std::uint16_t recycle = 0;
        bool operator==(const NodeEntry&) const = default;
    };
    struct ClockEntry {
        std::uint16_t sb = 0;
        std::uint8_t divider = 1;
        bool operator==(const ClockEntry&) const = default;
    };

    void add(NodeEntry e) { nodes_.push_back(e); }
    void add(ClockEntry e) { clocks_.push_back(e); }

    const std::vector<NodeEntry>& nodes() const { return nodes_; }
    const std::vector<ClockEntry>& clocks() const { return clocks_; }

    /// Pack into 64-bit fuse words / unpack. Round-trip exact.
    std::vector<std::uint64_t> to_words() const;
    static ParamRom from_words(const std::vector<std::uint64_t>& words);

    /// ROM-bits path: patch the specification before elaboration.
    void apply(SocSpec& spec) const;

    /// Fuse path: program a live (pre- or post-start) system's registers.
    /// Hold/recycle take effect at each node's next counter preset.
    void apply(Soc& soc) const;

    bool operator==(const ParamRom&) const = default;

  private:
    std::vector<NodeEntry> nodes_;
    std::vector<ClockEntry> clocks_;
};

}  // namespace st::sys
