#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "system/spec.hpp"

namespace st::sys {

/// Two SBs exchanging bidirectional traffic over one token ring — the
/// minimal synchro-tokens system, tuned (symmetric clocks) so the token
/// returns exactly when expected: never early-recognized, never late.
struct PairOptions {
    std::uint32_t hold = 4;          ///< H register (also the FIFO depth)
    sim::Time period_a = 1000;       ///< SB0 clock period, ps
    sim::Time period_b = 1000;       ///< SB1 clock period, ps
    sim::Time token_delay = 900;     ///< token wire delay each way, ps
    sim::Time stage_delay = 100;     ///< FIFO stage propagation F, ps
    unsigned data_bits = 32;
    std::uint64_t seed_a = 0xace1u;
    std::uint64_t seed_b = 0xbeefu;
    /// Force a specific recycle value on both nodes (throughput/latency
    /// sweeps); by default the minimal stall-free value is derived.
    std::optional<std::uint32_t> recycle_override;
};

SocSpec make_pair_spec(const PairOptions& opt = {});

/// The paper's §5 validation system: three SBs and six FIFOs (one channel
/// per direction per SB pair) over three token rings, with heterogeneous
/// local clock frequencies — a genuinely GALS configuration in which tokens
/// are routinely early or late and clocks deterministically stop and restart.
struct TriangleOptions {
    std::uint32_t hold = 4;
    sim::Time period_0 = 1000;
    sim::Time period_1 = 1250;
    sim::Time period_2 = 1600;
    sim::Time token_delay = 900;
    sim::Time stage_delay = 100;
    unsigned data_bits = 32;
    /// Extra recycle slack (cycles) absorbing cross-ring stalls. The default
    /// passes the deadlock rule checker; 0 under-provisions the system and is
    /// used by the deadlock experiments.
    std::uint32_t recycle_slack = 8;
};

SocSpec make_triangle_spec(const TriangleOptions& opt = {});

/// Widened unidirectional stream (paper §5's throughput remedy): one token
/// ring, `lanes` parallel channels alpha -> beta, a full-rate StreamingSource
/// with the SB-side synchronous queue, and an order-checking StreamingSink.
/// With lanes >= ceil((H+R)/H) the stream sustains one word per cycle —
/// STARI-parity throughput.
struct WidePairOptions {
    std::uint32_t hold = 4;
    std::size_t lanes = 3;  ///< ceil((H+R)/H) for the default H=4, R=6
    sim::Time period = 1000;
    sim::Time token_delay = 900;
    sim::Time stage_delay = 100;
    unsigned data_bits = 64;
    std::uint64_t seed = 0x51deu;
};

SocSpec make_wide_pair_spec(const WidePairOptions& opt = {});

/// Linear pipeline of `n` SBs (source -> FIR -> ... -> sink) for scalability
/// and DSP-style dataflow experiments.
struct ChainOptions {
    std::size_t length = 4;  ///< number of SBs (>= 2)
    std::uint32_t hold = 4;
    sim::Time base_period = 1000;
    sim::Time period_step = 150;  ///< SB i runs at base + i*step
    sim::Time token_delay = 900;
    sim::Time stage_delay = 100;
    unsigned data_bits = 32;
    std::uint64_t seed = 0xfeedu;
};

SocSpec make_chain_spec(const ChainOptions& opt = {});

/// Rectangular mesh of SBs with duplex channels between 4-neighbours — the
/// "larger system for further performance studies" of the paper's future
/// work. Clock periods vary per tile (deterministic pseudo-random spread);
/// every tile runs a TrafficKernel.
struct MeshOptions {
    std::size_t width = 3;
    std::size_t height = 3;
    std::uint32_t hold = 4;
    sim::Time base_period = 1000;
    sim::Time period_spread = 600;  ///< tile periods in [base, base+spread]
    sim::Time token_delay = 900;
    sim::Time stage_delay = 100;
    unsigned data_bits = 32;
    std::uint32_t recycle_slack = 12;
    std::uint64_t seed = 0x6e53ull;
};

SocSpec make_mesh_spec(const MeshOptions& opt = {});

/// Shared token bus: `n` SBs on ONE multi-node ring; each SB streams to its
/// successor over a channel bundled to the bus token. Since exactly one
/// member holds the token at any time, the channels time-share the medium
/// with deterministic, arbiter-free arbitration — a token bus.
struct BusOptions {
    std::size_t size = 4;  ///< number of SBs (>= 2)
    std::uint32_t hold = 3;
    sim::Time base_period = 1000;
    sim::Time period_step = 120;
    sim::Time hop_delay = 600;
    sim::Time stage_delay = 100;
    unsigned data_bits = 32;
    std::uint32_t recycle_slack = 6;
};

SocSpec make_bus_spec(const BusOptions& opt = {});

/// Names of all shipped testbench specs, in canonical order. Tools
/// (st_lint, st_fuzz) iterate this catalog so a new testbench is picked up
/// everywhere by adding it here.
const std::vector<std::string>& named_specs();

/// Build a shipped testbench by catalog name, with default options.
/// Throws std::invalid_argument for names not in named_specs().
SocSpec make_named_spec(const std::string& name);

}  // namespace st::sys
