#include "system/fig2_digest.hpp"

#include "system/soc.hpp"
#include "system/testbenches.hpp"

namespace st::sys {

std::string Fig2Trace::sequence() const {
    std::string s;
    s.reserve(events.size());
    for (const Fig2Event& e : events) s.push_back(e.code);
    return s;
}

std::uint64_t Fig2Trace::digest() const {
    std::uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a offset basis
    const auto mix = [&h](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xffu;
            h *= 0x100000001b3ull;  // FNV prime
        }
    };
    for (const Fig2Event& e : events) {
        mix(static_cast<std::uint64_t>(e.code));
        mix(static_cast<std::uint64_t>(e.t));
    }
    return h;
}

Fig2Trace capture_fig2(std::uint64_t cycles) {
    PairOptions opt;
    opt.hold = 3;
    opt.token_delay = 1600;  // > T: the token is late every round
    opt.recycle_override = 5;
    Soc soc(make_pair_spec(opt));
    auto& node = soc.ring_node(0, 0);
    auto& clk = soc.wrapper(0).clock();

    Fig2Trace trace;
    const auto push = [&trace](char code, sim::Time t) {
        trace.events.push_back(Fig2Event{code, t});
    };

    // Asynchronous ring events, observed on the alpha hop (index 0) — the
    // same annotation rules as the fig2_waveforms bench.
    soc.ring(0).on_pass([&](std::size_t i, sim::Time t) {
        if (i == 0) push('F', t);
    });
    soc.ring(0).on_arrive([&](std::size_t i, sim::Time t) {
        if (i == 0) push(node.waiting() ? 'K' : 'A', t);
    });

    // Synchronous annotations, derived from settled per-edge node state.
    struct Prev {
        bool clken = true;
        bool sb_en = true;
        std::uint32_t rec = 0;
    };
    Prev prev;
    clk.on_edge([&, hold = opt.hold](std::uint64_t, sim::Time t) {
        if (prev.clken && !node.clken()) {
            push('I', t);
            push('J', t);  // no further edge until the token returns
        }
        if (!prev.clken && node.clken()) push('L', t);
        if (!prev.sb_en && node.sb_en()) push('C', t);
        if (prev.sb_en && !node.sb_en()) {
            push('G', t);
            push('E', t);
        }
        if (node.sb_en() && node.hold_count() < hold) push('D', t);
        if (node.recycle_count() > 0 && node.recycle_count() < prev.rec) {
            push('H', t);
        }
        if (prev.rec > 0 && node.recycle_count() == 0) push('B', t);
        prev = Prev{node.clken(), node.sb_en(), node.recycle_count()};
    });

    soc.run_cycles(cycles, sim::us(1));
    return trace;
}

}  // namespace st::sys
