#include "system/warm_runner.hpp"

#include <stdexcept>

namespace st::sys {

WarmRunner::WarmRunner(SocSpec spec, std::uint64_t cycles, sim::Time deadline,
                       std::uint64_t warmup, bool fork)
    : spec_(std::move(spec)),
      cycles_(cycles),
      deadline_(deadline),
      warmup_(warmup),
      fork_(fork) {
    if (warmup_ >= cycles_ && warmup_ != 0) {
        throw std::invalid_argument("WarmRunner: warmup must be < cycles");
    }
    if (warmup_ > 0 && fork_) {
        Soc warm(spec_);
        if (!warm.run_cycles(warmup_, deadline_)) {
            throw std::runtime_error(
                "WarmRunner: nominal warm-up leg did not reach its cycle "
                "goal");
        }
        warm.settle();
        prefix_ = warm.save_snapshot();
    }
}

verify::TraceSet WarmRunner::operator()(const DelayConfig& cfg) const {
    verify::RunCapture cap;
    run(cfg, cap);
    return cap.traces();
}

void WarmRunner::run(const DelayConfig& cfg, verify::RunCapture& cap) const {
    if (warmup_ == 0) {
        Soc soc(apply(spec_, cfg), &cap);
        soc.run_cycles(cycles_, deadline_);
        return;
    }
    Soc soc(spec_, &cap);
    if (fork_) {
        soc.restore_snapshot(prefix_);
    } else {
        soc.run_cycles(warmup_, deadline_);
        soc.settle();
    }
    apply_live(soc, cfg);
    soc.run_cycles(cycles_, deadline_);
}

}  // namespace st::sys
