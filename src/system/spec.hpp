#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "async/four_phase.hpp"
#include "async/self_timed_fifo.hpp"
#include "clock/stoppable_clock.hpp"
#include "sb/kernel.hpp"
#include "sim/time.hpp"
#include "synchro/token_node.hpp"

namespace st::sys {

/// One synchronous block of the SoC.
struct SbSpec {
    std::string name;
    clk::StoppableClock::Params clock;
    /// Factory, not instance: the same SocSpec elaborates many independent
    /// simulations (the determinism sweep re-runs the system thousands of
    /// times).
    std::function<std::unique_ptr<sb::Kernel>()> make_kernel;
};

/// One token ring between a pair of SBs (paper: one ring per communicating
/// pair; the model also supports >2-node rings via Soc extensions).
struct RingSpec {
    std::string name;
    std::size_t sb_a = 0;
    std::size_t sb_b = 0;
    core::TokenNode::Params node_a;  ///< node inside sb_a's wrapper
    core::TokenNode::Params node_b;  ///< node inside sb_b's wrapper
    sim::Time delay_ab = 900;        ///< token wire delay a -> b, ps
    sim::Time delay_ba = 900;        ///< token wire delay b -> a, ps
};

/// A token ring threading more than two SBs round-robin — the shared-bus
/// generalization: since exactly one member holds the token at a time, all
/// channels bundled to the ring share the medium with deterministic,
/// arbiter-free arbitration.
struct MultiRingSpec {
    struct Member {
        std::size_t sb = 0;
        core::TokenNode::Params node;
        sim::Time hop_delay = 900;  ///< wire delay to the *next* member
    };
    std::string name;
    std::vector<Member> members;  ///< >= 2, exactly one initial holder
};

/// One unidirectional communication channel (self-timed FIFO + handshakes),
/// bundled to a ring's token (its master handshake).
struct ChannelSpec {
    std::string name;
    std::size_t from_sb = 0;
    std::size_t to_sb = 0;
    std::size_t ring = 0;  ///< ring index; must join the SBs
    /// When true, `ring` indexes SocSpec::multi_rings instead of rings and
    /// both endpoints must be members of that multi-ring.
    bool on_multi_ring = false;
    achan::SelfTimedFifo::Params fifo;
    achan::FourPhaseLink::Params tail_link;  ///< output-interface link
};

/// Whole-SoC structural description.
struct SocSpec {
    std::vector<SbSpec> sbs;
    std::vector<RingSpec> rings;
    std::vector<MultiRingSpec> multi_rings;
    std::vector<ChannelSpec> channels;
    /// Registry identity for gang::Program sharing. Two specs with the same
    /// non-empty key must elaborate identically (same topology, kernels,
    /// parameters); producers that can guarantee that set it — sva::to_spec
    /// keys on the canonical spec text, make_named_spec on the catalog name.
    /// The key cannot be derived here because make_kernel is an opaque
    /// factory, and anything that perturbs a spec (sys::apply) must clear
    /// it. Empty = not shareable across the process; holders still share
    /// one private Program by pointer.
    std::string program_key;
};

}  // namespace st::sys
