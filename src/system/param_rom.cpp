#include "system/param_rom.hpp"

#include <stdexcept>

namespace st::sys {

std::vector<std::uint64_t> ParamRom::to_words() const {
    std::vector<std::uint64_t> words;
    words.push_back((static_cast<std::uint64_t>(nodes_.size()) << 32) |
                    clocks_.size());
    for (const auto& n : nodes_) {
        words.push_back(static_cast<std::uint64_t>(n.ring) |
                        (static_cast<std::uint64_t>(n.side) << 16) |
                        (static_cast<std::uint64_t>(n.hold) << 24) |
                        (static_cast<std::uint64_t>(n.recycle) << 40));
    }
    for (const auto& c : clocks_) {
        words.push_back(static_cast<std::uint64_t>(c.sb) |
                        (static_cast<std::uint64_t>(c.divider) << 16));
    }
    return words;
}

ParamRom ParamRom::from_words(const std::vector<std::uint64_t>& words) {
    if (words.empty()) throw std::invalid_argument("ParamRom: empty image");
    const std::size_t n_nodes = static_cast<std::size_t>(words[0] >> 32);
    const std::size_t n_clocks =
        static_cast<std::size_t>(words[0] & 0xffffffffu);
    if (words.size() != 1 + n_nodes + n_clocks) {
        throw std::invalid_argument("ParamRom: truncated image");
    }
    ParamRom rom;
    std::size_t idx = 1;
    for (std::size_t i = 0; i < n_nodes; ++i, ++idx) {
        NodeEntry e;
        e.ring = static_cast<std::uint16_t>(words[idx] & 0xffff);
        e.side = static_cast<std::uint8_t>((words[idx] >> 16) & 0xff);
        e.hold = static_cast<std::uint16_t>((words[idx] >> 24) & 0xffff);
        e.recycle = static_cast<std::uint16_t>((words[idx] >> 40) & 0xffff);
        rom.nodes_.push_back(e);
    }
    for (std::size_t i = 0; i < n_clocks; ++i, ++idx) {
        ClockEntry e;
        e.sb = static_cast<std::uint16_t>(words[idx] & 0xffff);
        e.divider = static_cast<std::uint8_t>((words[idx] >> 16) & 0xff);
        rom.clocks_.push_back(e);
    }
    return rom;
}

void ParamRom::apply(SocSpec& spec) const {
    for (const auto& n : nodes_) {
        auto& ring = spec.rings.at(n.ring);
        auto& node = n.side == 0 ? ring.node_a : ring.node_b;
        if (n.hold != 0) node.hold = n.hold;
        node.recycle = n.recycle;
    }
    for (const auto& c : clocks_) {
        if (c.divider == 0) {
            throw std::invalid_argument("ParamRom: zero divider");
        }
        spec.sbs.at(c.sb).clock.divider = c.divider;
    }
}

void ParamRom::apply(Soc& soc) const {
    for (const auto& n : nodes_) {
        const auto& ring_spec = soc.spec().rings.at(n.ring);
        auto& node = soc.ring_node(
            n.ring, n.side == 0 ? ring_spec.sb_a : ring_spec.sb_b);
        if (n.hold != 0) node.load_hold_register(n.hold);
        node.load_recycle_register(n.recycle);
    }
    for (const auto& c : clocks_) {
        if (c.divider == 0) {
            throw std::invalid_argument("ParamRom: zero divider");
        }
        soc.wrapper(c.sb).clock().set_divider(c.divider);
    }
}

}  // namespace st::sys
