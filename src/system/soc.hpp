#pragma once

#include <memory>
#include <string>
#include <vector>

#include "async/self_timed_fifo.hpp"
#include "sim/scheduler.hpp"
#include "snap/snapshot.hpp"
#include "synchro/token_ring.hpp"
#include "synchro/wrapper.hpp"
#include "verify/io_trace.hpp"
#include "verify/timing_checker.hpp"
#include "verify/trace_arena.hpp"
#include "verify/trace_probe.hpp"

#include "system/spec.hpp"

namespace st::sys {

/// A fully elaborated, runnable synchro-tokens SoC.
///
/// Owns the scheduler and the whole design: wrappers (clock + nodes +
/// interfaces + SB), token rings, self-timed FIFOs, and per-SB trace probes.
/// Construction elaborates; `start()` schedules the first clock edges.
class Soc {
  public:
    /// Elaborate from `spec`. With `capture == nullptr` the Soc owns a
    /// private verify::RunCapture; passing one in lets a sweep worker reuse
    /// a single capture (arena chunks, attached StreamingChecker) across
    /// many cases — the ctor calls `capture->begin_run()` and binds the
    /// scheduler, so each Soc is one "run" of the capture.
    ///
    /// The spec is the Soc's immutable program: it is only read, never
    /// copied per-run state. The shared_ptr overload shares one spec across
    /// every Soc elaborated from it (gang lanes, sweep contexts, campaign
    /// case runners); the const& overload copies for callers whose spec is
    /// transient.
    explicit Soc(std::shared_ptr<const SocSpec> spec,
                 verify::RunCapture* capture = nullptr);
    explicit Soc(const SocSpec& spec, verify::RunCapture* capture = nullptr)
        : Soc(std::make_shared<const SocSpec>(spec), capture) {}

    Soc(const Soc&) = delete;
    Soc& operator=(const Soc&) = delete;

    /// Schedule every SB clock's first edge. Idempotent.
    void start();

    sim::Scheduler& scheduler() { return sched_; }

    /// Run until every SB has executed at least `n_cycles` local cycles, the
    /// system goes quiescent (deadlock: stopped clocks waiting on each other)
    /// or the wall deadline passes. Returns true when the cycle goal was met.
    bool run_cycles(std::uint64_t n_cycles, sim::Time deadline);

    /// Run to an absolute simulated time.
    void run_until(sim::Time t) { sched_.run_until(t); }

    /// True when no events remain but some clock is stopped — a deadlock in
    /// the paper's sense (cyclic dependency of SBs waiting on late tokens).
    bool deadlocked() const;

    std::size_t num_sbs() const { return wrappers_.size(); }
    core::SbWrapper& wrapper(std::size_t i) { return *wrappers_.at(i); }
    const core::SbWrapper& wrapper(std::size_t i) const {
        return *wrappers_.at(i);
    }
    std::size_t num_rings() const { return rings_.size(); }
    core::TokenRing& ring(std::size_t i) { return *rings_.at(i); }
    std::size_t num_channels() const { return fifos_.size(); }
    achan::SelfTimedFifo& fifo(std::size_t i) { return *fifos_.at(i); }

    /// Node of ring `r` living inside SB `sb` (throws if `sb` not on `r`).
    core::TokenNode& ring_node(std::size_t r, std::size_t sb);

    /// Node of multi-ring `r` living inside SB `sb`.
    core::TokenNode& multi_ring_node(std::size_t r, std::size_t sb);
    std::size_t num_multi_rings() const { return multi_rings_.size(); }
    core::TokenRing& multi_ring(std::size_t i) { return *multi_rings_.at(i); }

    /// Per-SB cycle-indexed I/O traces captured so far (materialized out of
    /// the run capture's arena streams).
    verify::TraceSet traces() const;

    /// The capture this Soc records into (owned or borrowed).
    verify::RunCapture& capture() { return *capture_; }
    const verify::RunCapture& capture() const { return *capture_; }

    /// Audit the bundling/timing constraints after (or during) a run.
    verify::TimingReport audit_timing() const;

    // --- snapshot/restore ---
    /// Drain every event scheduled at exactly now() so the system sits at a
    /// slot boundary — the only states a snapshot may capture. Behaviour
    /// neutral: those events would run before anything else anyway.
    void settle() { sched_.settle(); }

    /// Extension point: extra state (e.g. a fuzz::Injector's trigger
    /// counters) saved after / restored alongside the Soc's own chunks, so
    /// external components can participate in the same image and re-arm
    /// their pending events inside the scheduler's restore window.
    using ExtraSave = std::function<void(snap::StateWriter&)>;
    using ExtraRestore = std::function<void(snap::StateReader&)>;

    /// Serialize the entire SoC — scheduler counters, every wrapper (clock,
    /// nodes, interfaces, kernel), rings, FIFOs (including in-flight link
    /// and ripple events), and captured I/O traces — into one image.
    /// Requires start() and a slot boundary (call settle() when unsure).
    snap::Snapshot save_snapshot(const ExtraSave& extra = {}) const;

    /// FNV-1a digest of save_snapshot(): the cheap state-equality witness.
    std::uint64_t state_digest() const { return save_snapshot().digest(); }

    /// Load a snapshot taken from a Soc elaborated from an identical spec.
    /// Must be called on a freshly constructed, never-started Soc; on return
    /// this instance continues exactly where the saved one stopped —
    /// identical event order, traces, digests. Throws snap::SnapshotError on
    /// any structural or format mismatch.
    void restore_snapshot(const snap::Snapshot& snapshot,
                          const ExtraRestore& extra = {});

    /// restore_snapshot through a pre-validated parse plan. Contract: `plan`
    /// was built from `snapshot.bytes()` (the builder's strict walk is the
    /// validation pass); nullptr falls back to the strict parse. The warm-
    /// fork campaign path restores the same prefix image for every case —
    /// one plan replaces per-case framing re-parses.
    void restore_snapshot(const snap::Snapshot& snapshot,
                          const snap::RewindPlan* plan,
                          const ExtraRestore& extra = {});

    /// Image of this Soc in its freshly-started state (started, nothing
    /// executed yet): the gang engine's per-lane reset point. Unlike
    /// save_snapshot it tolerates the first clock edges pending at exactly
    /// t=0 (a clock with phase 0) — with zero events executed no two-phase
    /// edge protocol can be half-applied, so the state is consistent.
    snap::Snapshot pristine_image(const ExtraSave& extra = {}) const;

    /// Rewind a *running* Soc to an image taken from this (or an identically
    /// elaborated) Soc — pristine_image for a lane reset, save_snapshot for
    /// a mid-run handoff. Pending events are dropped, the capture is rewound
    /// in place (probe slots and an attached StreamingChecker survive), and
    /// every component restores; on return this Soc continues exactly where
    /// the imaged one stood. Persistent wiring (observers, monitors, bound
    /// checkers) is untouched; per-case hooks (fault injectors) must be
    /// detached by their owners before reuse.
    void reset_from_image(const snap::Snapshot& image,
                          const ExtraRestore& extra = {});

    /// Rewind through a pre-validated snap::RewindPlan — the gang engine's
    /// per-case reset. The first call with a given (image, plan) pairing
    /// runs the strict restore and verifies the plan matches the image
    /// (size + digest); once verified, later calls with the same pairing
    /// take the trusted O(1)-per-chunk parse. Passing nullptr (or an
    /// unverifiable plan) degrades to the strict path — behaviour, traces,
    /// and digests are identical either way.
    void reset_from_image(const snap::Snapshot& image,
                          const snap::RewindPlan* plan,
                          const ExtraRestore& extra = {});

    const SocSpec& spec() const { return *spec_; }
    const std::shared_ptr<const SocSpec>& spec_ptr() const { return spec_; }

  private:
    /// Shared save/restore bodies (snapshot and image paths differ only in
    /// preconditions and capture/probe lifecycle).
    void write_image(snap::StateWriter& w, const ExtraSave& extra,
                     bool require_boundary) const;
    void read_image(snap::StateReader& r, const ExtraRestore& extra);
    std::shared_ptr<const SocSpec> spec_;
    sim::Scheduler sched_;
    std::vector<std::unique_ptr<core::SbWrapper>> wrappers_;
    std::vector<std::unique_ptr<core::TokenRing>> rings_;
    // ring index -> (node in sb_a, node in sb_b)
    std::vector<std::pair<core::TokenNode*, core::TokenNode*>> ring_nodes_;
    std::vector<std::unique_ptr<core::TokenRing>> multi_rings_;
    // multi-ring index -> member nodes (parallel to spec members)
    std::vector<std::vector<core::TokenNode*>> multi_ring_nodes_;
    std::vector<std::unique_ptr<achan::SelfTimedFifo>> fifos_;
    std::unique_ptr<verify::RunCapture> own_capture_;  ///< when not borrowed
    verify::RunCapture* capture_ = nullptr;
    std::vector<std::unique_ptr<verify::TraceProbe>> probes_;
    bool started_ = false;
    /// The (image, plan) pairing proven consistent by a strict restore;
    /// identity is by plan pointer + image data pointer/size, so a moved or
    /// regenerated image re-verifies (digest compare) before trusting.
    const snap::RewindPlan* verified_plan_ = nullptr;
    const std::uint8_t* verified_data_ = nullptr;
    std::size_t verified_size_ = 0;
};

}  // namespace st::sys
