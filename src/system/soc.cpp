#include "system/soc.hpp"

#include <stdexcept>

namespace st::sys {

Soc::Soc(std::shared_ptr<const SocSpec> spec, verify::RunCapture* capture)
    : spec_(std::move(spec)) {
    if (!spec_) throw std::invalid_argument("Soc: null spec");
    if (capture != nullptr) {
        capture_ = capture;
    } else {
        own_capture_ = std::make_unique<verify::RunCapture>();
        capture_ = own_capture_.get();
    }
    // This Soc is one run of the capture: reset its streams/arrival counter
    // (an attached StreamingChecker is kept and reset alongside) and bind
    // the scheduler so the checker can request an early exit.
    capture_->begin_run();
    capture_->bind_scheduler(&sched_);

    // 1. Wrappers (clock + SB).
    for (const auto& s : spec_->sbs) {
        if (!s.make_kernel) {
            throw std::invalid_argument("Soc: SB '" + s.name + "' has no kernel");
        }
        wrappers_.push_back(std::make_unique<core::SbWrapper>(
            sched_, s.name, s.clock, s.make_kernel()));
    }

    // 2. Token rings: one node per endpoint wrapper.
    for (const auto& r : spec_->rings) {
        if (r.sb_a >= wrappers_.size() || r.sb_b >= wrappers_.size() ||
            r.sb_a == r.sb_b) {
            throw std::invalid_argument("Soc: ring '" + r.name + "' endpoints invalid");
        }
        if (r.node_a.initial_holder == r.node_b.initial_holder) {
            throw std::invalid_argument(
                "Soc: ring '" + r.name + "' must have exactly one initial holder");
        }
        auto& node_a = wrappers_[r.sb_a]->add_node(r.node_a);
        auto& node_b = wrappers_[r.sb_b]->add_node(r.node_b);
        auto ring = std::make_unique<core::TokenRing>(sched_, r.name);
        ring->add_node(&node_a, r.delay_ab);
        ring->add_node(&node_b, r.delay_ba);
        ring->finalize();
        rings_.push_back(std::move(ring));
        ring_nodes_.emplace_back(&node_a, &node_b);
    }

    // 2b. Multi-rings (shared-bus token rings across >2 SBs).
    for (const auto& mr : spec_->multi_rings) {
        if (mr.members.size() < 2) {
            throw std::invalid_argument(
                "Soc: multi-ring '" + mr.name + "' needs >= 2 members");
        }
        std::size_t holders = 0;
        for (const auto& m : mr.members) {
            holders += m.node.initial_holder ? 1 : 0;
        }
        if (holders != 1) {
            throw std::invalid_argument(
                "Soc: multi-ring '" + mr.name + "' must have exactly one holder");
        }
        auto ring = std::make_unique<core::TokenRing>(sched_, mr.name);
        std::vector<core::TokenNode*> nodes;
        for (const auto& m : mr.members) {
            if (m.sb >= wrappers_.size()) {
                throw std::invalid_argument(
                    "Soc: multi-ring '" + mr.name + "' member out of range");
            }
            auto& node = wrappers_[m.sb]->add_node(m.node);
            ring->add_node(&node, m.hop_delay);
            nodes.push_back(&node);
        }
        ring->finalize();
        multi_rings_.push_back(std::move(ring));
        multi_ring_nodes_.push_back(std::move(nodes));
    }

    // 3. Channels: FIFO + output interface at the source, input interface at
    //    the destination, both gated by the ring's node in their wrapper.
    for (const auto& c : spec_->channels) {
        core::TokenNode* src_node = nullptr;
        core::TokenNode* dst_node = nullptr;
        if (c.on_multi_ring) {
            if (c.ring >= multi_rings_.size()) {
                throw std::invalid_argument(
                    "Soc: channel '" + c.name + "' bad multi-ring");
            }
            const auto& mr = spec_->multi_rings[c.ring];
            for (std::size_t m = 0; m < mr.members.size(); ++m) {
                if (mr.members[m].sb == c.from_sb) {
                    src_node = multi_ring_nodes_[c.ring][m];
                }
                if (mr.members[m].sb == c.to_sb) {
                    dst_node = multi_ring_nodes_[c.ring][m];
                }
            }
            if (src_node == nullptr || dst_node == nullptr) {
                throw std::invalid_argument(
                    "Soc: channel '" + c.name + "' endpoints not on multi-ring");
            }
        } else {
            if (c.ring >= rings_.size()) {
                throw std::invalid_argument("Soc: channel '" + c.name + "' bad ring");
            }
            const auto& r = spec_->rings[c.ring];
            const bool forward = (c.from_sb == r.sb_a && c.to_sb == r.sb_b);
            const bool backward = (c.from_sb == r.sb_b && c.to_sb == r.sb_a);
            if (!forward && !backward) {
                throw std::invalid_argument(
                    "Soc: channel '" + c.name + "' does not join its ring's SBs");
            }
            src_node = forward ? ring_nodes_[c.ring].first
                               : ring_nodes_[c.ring].second;
            dst_node = forward ? ring_nodes_[c.ring].second
                               : ring_nodes_[c.ring].first;
        }
        auto fifo = std::make_unique<achan::SelfTimedFifo>(sched_, c.name, c.fifo);
        wrappers_[c.from_sb]->attach_output(*src_node, *fifo, c.tail_link);
        wrappers_[c.to_sb]->attach_input(*dst_node, *fifo);
        fifos_.push_back(std::move(fifo));
    }

    // Finalization (sink ordering, probes) is deferred to start() so test
    // infrastructure — e.g. a Test SB adding token rings for debug access —
    // can extend the wrappers after elaboration.
}

void Soc::start() {
    if (started_) return;
    started_ = true;
    for (auto& w : wrappers_) {
        w->finalize();
        probes_.push_back(std::make_unique<verify::TraceProbe>(*w, *capture_));
        w->start();
    }
}

bool Soc::run_cycles(std::uint64_t n_cycles, sim::Time deadline) {
    start();
    // O(1) per event: watch one laggard wrapper at a time instead of
    // re-scanning every SB before every step. Cycle counts only grow, so
    // once a wrapper meets the goal it stays met, and the run still stops
    // at exactly the event that brings the last unmet wrapper to the goal —
    // the same boundary the full-scan formulation stopped at.
    std::size_t lag = 0;
    for (;;) {
        while (lag < wrappers_.size() &&
               wrappers_[lag]->clock().cycles() >= n_cycles) {
            ++lag;
        }
        if (lag == wrappers_.size()) return true;
        while (wrappers_[lag]->clock().cycles() < n_cycles) {
            if (sched_.stop_requested()) return false;  // cooperative exit
            if (sched_.quiescent() || sched_.next_event_time() > deadline) {
                return false;
            }
            sched_.step();
        }
    }
}

bool Soc::deadlocked() const {
    if (!sched_.quiescent()) return false;
    for (const auto& w : wrappers_) {
        if (w->clock().stopped()) return true;
    }
    return false;
}

core::TokenNode& Soc::ring_node(std::size_t r, std::size_t sb) {
    const auto& spec = spec_->rings.at(r);
    if (spec.sb_a == sb) return *ring_nodes_.at(r).first;
    if (spec.sb_b == sb) return *ring_nodes_.at(r).second;
    throw std::invalid_argument("Soc::ring_node: SB not on ring");
}

core::TokenNode& Soc::multi_ring_node(std::size_t r, std::size_t sb) {
    const auto& spec = spec_->multi_rings.at(r);
    for (std::size_t m = 0; m < spec.members.size(); ++m) {
        if (spec.members[m].sb == sb) return *multi_ring_nodes_.at(r).at(m);
    }
    throw std::invalid_argument("Soc::multi_ring_node: SB not on multi-ring");
}

snap::Snapshot Soc::save_snapshot(const ExtraSave& extra) const {
    if (!started_) {
        throw snap::SnapshotError("Soc::save_snapshot: not started");
    }
    snap::StateWriter w;
    write_image(w, extra, /*require_boundary=*/true);
    return snap::Snapshot(w.take());
}

snap::Snapshot Soc::pristine_image(const ExtraSave& extra) const {
    if (!started_) {
        throw snap::SnapshotError("Soc::pristine_image: not started");
    }
    if (sched_.events_executed() != 0) {
        throw snap::SnapshotError(
            "Soc::pristine_image: events already executed — use "
            "save_snapshot at a slot boundary instead");
    }
    snap::StateWriter w;
    write_image(w, extra, /*require_boundary=*/false);
    return snap::Snapshot(w.take());
}

void Soc::write_image(snap::StateWriter& w, const ExtraSave& extra,
                      bool require_boundary) const {
    w.begin_group("soc");

    // Structural fingerprint: restore validates the target Soc was
    // elaborated to the same shape before touching any component.
    w.begin("shape");
    w.u32(static_cast<std::uint32_t>(wrappers_.size()));
    for (const auto& wr : wrappers_) {
        w.u32(static_cast<std::uint32_t>(wr->num_nodes()));
        w.u32(static_cast<std::uint32_t>(wr->num_inputs()));
        w.u32(static_cast<std::uint32_t>(wr->num_outputs()));
    }
    w.u32(static_cast<std::uint32_t>(rings_.size()));
    w.u32(static_cast<std::uint32_t>(multi_rings_.size()));
    w.u32(static_cast<std::uint32_t>(fifos_.size()));
    w.end();

    sched_.save_state(w, require_boundary);
    for (const auto& wr : wrappers_) {
        w.begin_group("wrapper");
        wr->clock().save_state(w);
        for (std::size_t i = 0; i < wr->num_nodes(); ++i) {
            wr->node(i).save_state(w);
        }
        for (std::size_t i = 0; i < wr->num_inputs(); ++i) {
            wr->input(i).save_state(w);
        }
        for (std::size_t i = 0; i < wr->num_outputs(); ++i) {
            wr->output(i).save_state(w);
        }
        wr->block().save_state(w);
        w.end();
    }
    for (const auto& r : rings_) r->save_state(w);
    for (const auto& r : multi_rings_) r->save_state(w);
    for (const auto& f : fifos_) f->save_state(w);
    for (const auto& p : probes_) p->save_state(w);
    if (extra) extra(w);

    w.end();
}

void Soc::restore_snapshot(const snap::Snapshot& snapshot,
                           const snap::RewindPlan* plan,
                           const ExtraRestore& extra) {
    if (plan == nullptr || !plan->built()) {
        restore_snapshot(snapshot, extra);
        return;
    }
    if (started_) {
        throw snap::SnapshotError(
            "Soc::restore_snapshot: target must be freshly constructed");
    }
    started_ = true;
    for (auto& wr : wrappers_) {
        wr->finalize();
        probes_.push_back(
            std::make_unique<verify::TraceProbe>(*wr, *capture_));
    }
    snap::StateReader r(snapshot.bytes(), *plan);
    read_image(r, extra);
}

void Soc::restore_snapshot(const snap::Snapshot& snapshot,
                           const ExtraRestore& extra) {
    if (started_) {
        throw snap::SnapshotError(
            "Soc::restore_snapshot: target must be freshly constructed");
    }
    // Bring the structure to post-start shape WITHOUT scheduling the first
    // clock edges — the snapshot carries the live event set instead.
    started_ = true;
    for (auto& wr : wrappers_) {
        wr->finalize();
        probes_.push_back(
            std::make_unique<verify::TraceProbe>(*wr, *capture_));
    }
    snap::StateReader r(snapshot.bytes());
    read_image(r, extra);
}

void Soc::reset_from_image(const snap::Snapshot& image,
                           const ExtraRestore& extra) {
    reset_from_image(image, nullptr, extra);
}

void Soc::reset_from_image(const snap::Snapshot& image,
                           const snap::RewindPlan* plan,
                           const ExtraRestore& extra) {
    if (!started_) {
        throw snap::SnapshotError("Soc::reset_from_image: not started");
    }
    sched_.clear_pending();
    capture_->rewind_run();
    const std::vector<std::uint8_t>& bytes = image.bytes();
    if (plan != nullptr && plan == verified_plan_ &&
        bytes.data() == verified_data_ && bytes.size() == verified_size_) {
        // This exact (image, plan) pairing already survived a strict
        // restore: the restore walk is a pure function of the image bytes,
        // so the trusted parse revisits only spans the strict pass proved.
        snap::StateReader r(bytes, *plan);
        read_image(r, extra);
        return;
    }
    snap::StateReader r(bytes);
    read_image(r, extra);
    // Strict restore succeeded — remember the pairing if the plan really
    // describes these bytes (one digest compare, amortized over every
    // later rewind of the same image).
    if (plan != nullptr && plan->built() &&
        plan->image_size() == bytes.size() &&
        plan->image_digest() == image.digest()) {
        verified_plan_ = plan;
        verified_data_ = bytes.data();
        verified_size_ = bytes.size();
    }
}

void Soc::read_image(snap::StateReader& r, const ExtraRestore& extra) {
    r.enter("soc");

    r.enter("shape");
    const auto expect = [](std::uint32_t got, std::uint32_t want,
                           const char* what) {
        if (got != want) {
            throw snap::SnapshotError(
                std::string("structure mismatch: image has ") +
                std::to_string(got) + " " + what + ", target has " +
                std::to_string(want));
        }
    };
    expect(r.u32(), static_cast<std::uint32_t>(wrappers_.size()), "SBs");
    for (const auto& wr : wrappers_) {
        expect(r.u32(), static_cast<std::uint32_t>(wr->num_nodes()), "nodes");
        expect(r.u32(), static_cast<std::uint32_t>(wr->num_inputs()),
               "inputs");
        expect(r.u32(), static_cast<std::uint32_t>(wr->num_outputs()),
               "outputs");
    }
    expect(r.u32(), static_cast<std::uint32_t>(rings_.size()), "rings");
    expect(r.u32(), static_cast<std::uint32_t>(multi_rings_.size()),
           "multi-rings");
    expect(r.u32(), static_cast<std::uint32_t>(fifos_.size()), "channels");
    r.leave();

    sched_.begin_restore(r);
    for (auto& wr : wrappers_) {
        r.enter("wrapper");
        wr->clock().restore_state(r);
        for (std::size_t i = 0; i < wr->num_nodes(); ++i) {
            wr->node(i).restore_state(r);
        }
        for (std::size_t i = 0; i < wr->num_inputs(); ++i) {
            wr->input(i).restore_state(r);
        }
        for (std::size_t i = 0; i < wr->num_outputs(); ++i) {
            wr->output(i).restore_state(r);
        }
        wr->block().restore_state(r);
        r.leave();
    }
    for (auto& ring : rings_) ring->restore_state(r);
    for (auto& ring : multi_rings_) ring->restore_state(r);
    for (auto& f : fifos_) f->restore_state(r);
    for (auto& p : probes_) p->restore_state(r);
    if (extra) extra(r);
    sched_.end_restore();

    r.leave();
    if (!r.done()) {
        throw snap::SnapshotError("trailing bytes after soc chunk");
    }
}

verify::TraceSet Soc::traces() const {
    verify::TraceSet out;
    for (const auto& p : probes_) {
        out.emplace(p->sb_name(), p->trace());
    }
    return out;
}

verify::TimingReport Soc::audit_timing() const {
    verify::TimingChecker checker;
    for (std::size_t i = 0; i < spec_->channels.size(); ++i) {
        const auto& c = spec_->channels[i];
        const sim::Time t_src = wrappers_[c.from_sb]->clock().effective_period();
        const sim::Time t_dst = wrappers_[c.to_sb]->clock().effective_period();
        const auto& fifo = *fifos_[i];

        // Paper §4.1: "Each stage of the FIFO must be able to complete a
        // four-phase handshake within one local clock cycle of the
        // transmitter or sender."
        const sim::Time tail_hs = achan::unloaded_link_latency(c.tail_link);
        checker.require(c.name + ".tail_handshake", tail_hs, t_src);
        achan::FourPhaseLink::Params head_params;
        head_params.data_bits = fifo.params().data_bits;
        head_params.req_delay = fifo.params().head_req_delay;
        head_params.ack_delay = fifo.params().head_ack_delay;
        head_params.protocol = fifo.params().head_protocol;
        const sim::Time head_hs = achan::unloaded_link_latency(head_params);
        checker.require(c.name + ".head_handshake", head_hs, t_dst);
        checker.require(c.name + ".stage_vs_dst_cycle",
                        fifo.params().stage_delay + head_hs, t_dst);

        // Paper §4.1: data entering the tail just before the token departs
        // must reach the head before the token enables the head interface.
        // Conservative form: full traversal within token wire delay plus one
        // destination cycle of wait (the receiving node's recycle check
        // happens at the earliest one edge after arrival).
        sim::Time token_wire = 0;
        if (c.on_multi_ring) {
            // Sum the hop delays from the source member to the destination
            // member along the ring order.
            const auto& mr = spec_->multi_rings[c.ring];
            std::size_t src = 0;
            std::size_t dst = 0;
            for (std::size_t m = 0; m < mr.members.size(); ++m) {
                if (mr.members[m].sb == c.from_sb) src = m;
                if (mr.members[m].sb == c.to_sb) dst = m;
            }
            for (std::size_t m = src; m != dst;
                 m = (m + 1) % mr.members.size()) {
                token_wire += mr.members[m].hop_delay;
            }
        } else {
            const auto& r = spec_->rings[c.ring];
            token_wire = c.from_sb == r.sb_a ? r.delay_ab : r.delay_ba;
        }
        const sim::Time token_path = token_wire + t_dst;
        const sim::Time traversal =
            fifo.params().stage_delay * (fifo.params().depth - 1) +
            c.tail_link.req_delay + head_hs;
        checker.require(c.name + ".head_visibility", traversal, token_path);

        // A transfer left pending while the SB was disabled completes the
        // instant a late token re-raises sb_en; its return-to-zero must fit
        // inside the clock's asynchronous restart latency so the restarted
        // edge samples a settled interface.
        const sim::Time rtz = achan::post_accept_link_latency(c.tail_link);
        checker.require(
            c.name + ".restart_vs_pending", rtz,
            spec_->sbs[c.from_sb].clock.restart_delay);
    }
    return checker.report();
}

}  // namespace st::sys
