#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "system/soc.hpp"

namespace st::sys {

/// Runtime invariant monitor: hooks every wrapper clock of a Soc and checks
/// the synchro-tokens protocol invariants after each settled edge:
///
///  * per ring, at most one endpoint is in the holding phase (single-token
///    mutual exclusion of the master handshake),
///  * sb_en implies the node is holding, and a waiting node has clken low,
///  * no node ever observes a protocol error (second token while holding),
///  * a running clock implies every one of its nodes asserts clken.
///
/// Attach after elaboration, before start; assert `violations().empty()` at
/// the end of the run.
///
/// **Cost model** (docs/PERF.md): the mutual-exclusion checks are evaluated
/// from per-ring holding counts maintained *incrementally* via the token
/// nodes' phase observers, not by polling every node of every ring at every
/// edge — on the mesh-64 bench the polling formulation was ~70% of total
/// case time. The counts change exactly when a phase changes, so "count == 2
/// at a check" is equivalent to "both endpoints holding at that check": the
/// recorded violations (text and order) are identical to the polling
/// implementation's. Violation messages are only formatted when a check
/// fires, so the fault-free fast path allocates nothing.
///
/// The monitor is reusable across runs of the same Soc (the gang engine
/// keeps one per lane): call `reset()` after a snapshot restore to clear
/// the log and re-derive the holding counts from the restored phases.
class InvariantMonitor {
  public:
    explicit InvariantMonitor(Soc& soc);

    InvariantMonitor(const InvariantMonitor&) = delete;
    InvariantMonitor& operator=(const InvariantMonitor&) = delete;

    /// Re-arm for a fresh run on the same Soc: clears the violation log and
    /// the check counter and recounts ring holders from the current node
    /// phases (snapshot restores bypass the phase observers by design).
    void reset();

    const std::vector<std::string>& violations() const { return violations_; }
    std::uint64_t checks_performed() const { return checks_; }

  private:
    void check(std::size_t wrapper_index, std::uint64_t cycle);
    void record(std::string what);
    void recount();

    Soc& soc_;
    std::vector<std::string> violations_;
    std::uint64_t checks_ = 0;

    /// Per-wrapper check context, resolved once at attach: the clock and
    /// node pointers the hot per-edge loop reads (topology is immutable
    /// after elaboration, so the indirection through Soc/wrapper accessors
    /// is pure overhead at check time).
    struct WrapperCtx {
        const clk::StoppableClock* clock = nullptr;
        std::vector<const core::TokenNode*> nodes;
    };
    std::vector<WrapperCtx> wrappers_;

    /// Endpoints currently holding, per ring (0..2) / per multi-ring.
    std::vector<std::uint8_t> ring_holders_;
    std::vector<std::uint8_t> multi_holders_;
    /// Rings at count 2 / multi-rings above count 1 right now. The per-edge
    /// fast path is two zero tests; the ring scans only run while a
    /// violation is actually in force.
    std::size_t rings_both_ = 0;
    std::size_t multis_over_ = 0;

    static constexpr std::size_t kMaxRecorded = 16;
};

}  // namespace st::sys
