#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "system/soc.hpp"

namespace st::sys {

/// Runtime invariant monitor: hooks every wrapper clock of a Soc and checks
/// the synchro-tokens protocol invariants after each settled edge:
///
///  * per ring, at most one endpoint is in the holding phase (single-token
///    mutual exclusion of the master handshake),
///  * sb_en implies the node is holding, and a waiting node has clken low,
///  * no node ever observes a protocol error (second token while holding),
///  * a running clock implies every one of its nodes asserts clken.
///
/// Attach after elaboration, before start; assert `violations().empty()` at
/// the end of the run.
class InvariantMonitor {
  public:
    explicit InvariantMonitor(Soc& soc);

    InvariantMonitor(const InvariantMonitor&) = delete;
    InvariantMonitor& operator=(const InvariantMonitor&) = delete;

    const std::vector<std::string>& violations() const { return violations_; }
    std::uint64_t checks_performed() const { return checks_; }

  private:
    void check(std::size_t wrapper_index, std::uint64_t cycle);
    void record(const std::string& what);

    Soc& soc_;
    std::vector<std::string> violations_;
    std::uint64_t checks_ = 0;
    static constexpr std::size_t kMaxRecorded = 16;
};

}  // namespace st::sys
