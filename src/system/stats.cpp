#include "system/stats.hpp"

#include <algorithm>
#include <sstream>

namespace st::sys {

RunStats collect_stats(Soc& soc) {
    RunStats s;
    s.sim_time = soc.scheduler().now();
    s.events = soc.scheduler().events_executed();
    for (std::size_t i = 0; i < soc.num_sbs(); ++i) {
        auto& w = soc.wrapper(i);
        RunStats::SbStats sb;
        sb.name = w.name();
        sb.cycles = w.clock().cycles();
        sb.stop_events = w.clock().stop_events();
        sb.stopped_time = w.clock().total_stopped_time();
        sb.period = w.clock().effective_period();
        sb.duty = s.sim_time == 0
                      ? 1.0
                      : 1.0 - static_cast<double>(sb.stopped_time) /
                                  static_cast<double>(s.sim_time);
        s.sbs.push_back(sb);
    }
    for (std::size_t r = 0; r < soc.num_rings(); ++r) {
        RunStats::RingStats ring;
        ring.name = soc.ring(r).name();
        ring.passes = soc.ring(r).passes();
        const auto& spec = soc.spec().rings[r];
        ring.late_arrivals = soc.ring_node(r, spec.sb_a).late_arrivals() +
                             soc.ring_node(r, spec.sb_b).late_arrivals();
        s.rings.push_back(ring);
    }
    for (std::size_t c = 0; c < soc.num_channels(); ++c) {
        RunStats::ChannelStats ch;
        ch.name = soc.fifo(c).name();
        ch.words = soc.fifo(c).words_in();
        ch.max_link_latency =
            std::max(soc.fifo(c).head_link().max_latency(),
                     sim::Time{0});
        s.channels.push_back(ch);
    }
    return s;
}

std::string RunStats::to_string() const {
    std::ostringstream os;
    os << "simulated " << sim::format_time(sim_time) << ", " << events
       << " events\n";
    os << "  SB            cycles   stops   stopped     duty\n";
    for (const auto& sb : sbs) {
        char line[160];
        std::snprintf(line, sizeof line, "  %-12s %7llu %7llu %9s %7.1f%%\n",
                      sb.name.c_str(),
                      static_cast<unsigned long long>(sb.cycles),
                      static_cast<unsigned long long>(sb.stop_events),
                      sim::format_time(sb.stopped_time).c_str(),
                      100.0 * sb.duty);
        os << line;
    }
    os << "  ring                         passes    late\n";
    for (const auto& r : rings) {
        char line[160];
        std::snprintf(line, sizeof line, "  %-26s %8llu %7llu\n",
                      r.name.c_str(),
                      static_cast<unsigned long long>(r.passes),
                      static_cast<unsigned long long>(r.late_arrivals));
        os << line;
    }
    os << "  channel                       words   max link latency\n";
    for (const auto& c : channels) {
        char line[160];
        std::snprintf(line, sizeof line, "  %-26s %8llu   %s\n",
                      c.name.c_str(),
                      static_cast<unsigned long long>(c.words),
                      sim::format_time(c.max_link_latency).c_str());
        os << line;
    }
    return os.str();
}

}  // namespace st::sys
