#include "system/vcd_probe.hpp"

namespace st::sys {

VcdProbe::VcdProbe(Soc& soc, std::ostream& out) : vcd_(out, "soc") {
    struct WrapperSignals {
        int clk = -1;
        std::vector<int> sb_en;
        std::vector<int> clken;
        std::vector<int> hold;
        std::vector<int> recycle;
    };

    std::vector<WrapperSignals> wsigs(soc.num_sbs());
    for (std::size_t i = 0; i < soc.num_sbs(); ++i) {
        auto& w = soc.wrapper(i);
        wsigs[i].clk = vcd_.add_signal(w.name() + ".clk", 1);
        for (std::size_t n = 0; n < w.num_nodes(); ++n) {
            const auto base = w.node(n).name();
            wsigs[i].sb_en.push_back(vcd_.add_signal(base + ".sb_en", 1));
            wsigs[i].clken.push_back(vcd_.add_signal(base + ".clken", 1));
            wsigs[i].hold.push_back(vcd_.add_signal(base + ".hold", 8));
            wsigs[i].recycle.push_back(vcd_.add_signal(base + ".recycle", 8));
        }
    }
    std::vector<int> fifo_occ;
    for (std::size_t f = 0; f < soc.num_channels(); ++f) {
        fifo_occ.push_back(
            vcd_.add_signal(soc.fifo(f).name() + ".occupancy", 8));
    }
    std::vector<int> ring_pass;
    std::vector<int> ring_arrive;
    for (std::size_t r = 0; r < soc.num_rings(); ++r) {
        ring_pass.push_back(vcd_.add_signal(soc.ring(r).name() + ".pass", 1));
        ring_arrive.push_back(
            vcd_.add_signal(soc.ring(r).name() + ".arrive", 1));
    }

    for (std::size_t i = 0; i < soc.num_sbs(); ++i) {
        auto& w = soc.wrapper(i);
        auto sig = wsigs[i];
        auto* soc_ptr = &soc;
        w.clock().on_edge([this, sig, &w, soc_ptr](std::uint64_t cycle,
                                                   sim::Time t) {
            vcd_.change(sig.clk, cycle & 1, t);
            for (std::size_t n = 0; n < w.num_nodes(); ++n) {
                vcd_.change(sig.sb_en[n], w.node(n).sb_en(), t);
                vcd_.change(sig.clken[n], w.node(n).clken(), t);
                vcd_.change(sig.hold[n], w.node(n).hold_count(), t);
                vcd_.change(sig.recycle[n], w.node(n).recycle_count(), t);
            }
        });
    }
    for (std::size_t f = 0; f < soc.num_channels(); ++f) {
        // Occupancy sampled at the destination SB's clock (cheap and stable).
        const auto& c = soc.spec().channels[f];
        auto* fifo = &soc.fifo(f);
        const int sig = fifo_occ[f];
        soc.wrapper(c.to_sb).clock().on_edge(
            [this, fifo, sig](std::uint64_t, sim::Time t) {
                vcd_.change(sig, fifo->occupancy(), t);
            });
    }
    auto& sched = soc.scheduler();
    for (std::size_t r = 0; r < soc.num_rings(); ++r) {
        const int ps = ring_pass[r];
        const int ar = ring_arrive[r];
        // Pulse clears go through the scheduler so VCD timestamps stay
        // globally non-decreasing.
        soc.ring(r).on_pass([this, ps, &sched](std::size_t, sim::Time t) {
            vcd_.change(ps, 1, t);
            sched.schedule_after(1, sim::Priority::kMonitor, [this, ps, &sched] {
                vcd_.change(ps, 0, sched.now());
            });
        });
        soc.ring(r).on_arrive([this, ar, &sched](std::size_t, sim::Time t) {
            vcd_.change(ar, 1, t);
            sched.schedule_after(1, sim::Priority::kMonitor, [this, ar, &sched] {
                vcd_.change(ar, 0, sched.now());
            });
        });
    }
}

}  // namespace st::sys
