#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "system/soc.hpp"

namespace st::sys {

/// Post-run summary of a Soc: per-SB clock and stall statistics, per-ring
/// token circulation, per-channel traffic — the counters an architect wants
/// after every experiment, gathered in one place.
struct RunStats {
    struct SbStats {
        std::string name;
        std::uint64_t cycles = 0;
        std::uint64_t stop_events = 0;
        sim::Time stopped_time = 0;
        sim::Time period = 0;
        double duty = 0.0;  ///< fraction of wall time the clock ran
    };
    struct RingStats {
        std::string name;
        std::uint64_t passes = 0;
        std::uint64_t late_arrivals = 0;
    };
    struct ChannelStats {
        std::string name;
        std::uint64_t words = 0;
        sim::Time max_link_latency = 0;
    };

    sim::Time sim_time = 0;
    std::uint64_t events = 0;
    std::vector<SbStats> sbs;
    std::vector<RingStats> rings;
    std::vector<ChannelStats> channels;

    std::string to_string() const;
};

/// Collect statistics from a Soc after (or during) a run.
RunStats collect_stats(Soc& soc);

}  // namespace st::sys
