#include "system/delay_config.hpp"

#include <stdexcept>

#include "system/soc.hpp"

namespace st::sys {

DelayConfig DelayConfig::nominal(const SocSpec& spec) {
    DelayConfig c;
    c.fifo_pct.assign(spec.channels.size(), 100);
    c.ring_ab_pct.assign(spec.rings.size(), 100);
    c.ring_ba_pct.assign(spec.rings.size(), 100);
    c.clock_pct.assign(spec.sbs.size(), 100);
    return c;
}

unsigned DelayConfig::get(std::size_t dim) const {
    if (dim < fifo_pct.size()) return fifo_pct[dim];
    dim -= fifo_pct.size();
    if (dim < ring_ab_pct.size()) return ring_ab_pct[dim];
    dim -= ring_ab_pct.size();
    if (dim < ring_ba_pct.size()) return ring_ba_pct[dim];
    dim -= ring_ba_pct.size();
    if (dim < clock_pct.size()) return clock_pct[dim];
    throw std::out_of_range("DelayConfig::get: bad dimension");
}

void DelayConfig::set(std::size_t dim, unsigned pct) {
    if (dim < fifo_pct.size()) {
        fifo_pct[dim] = pct;
        return;
    }
    dim -= fifo_pct.size();
    if (dim < ring_ab_pct.size()) {
        ring_ab_pct[dim] = pct;
        return;
    }
    dim -= ring_ab_pct.size();
    if (dim < ring_ba_pct.size()) {
        ring_ba_pct[dim] = pct;
        return;
    }
    dim -= ring_ba_pct.size();
    if (dim < clock_pct.size()) {
        clock_pct[dim] = pct;
        return;
    }
    throw std::out_of_range("DelayConfig::set: bad dimension");
}

std::string DelayConfig::dim_name(std::size_t dim) const {
    if (dim < fifo_pct.size()) return "fifo" + std::to_string(dim);
    dim -= fifo_pct.size();
    if (dim < ring_ab_pct.size()) return "ring" + std::to_string(dim) + ".ab";
    dim -= ring_ab_pct.size();
    if (dim < ring_ba_pct.size()) return "ring" + std::to_string(dim) + ".ba";
    dim -= ring_ba_pct.size();
    if (dim < clock_pct.size()) return "clk" + std::to_string(dim);
    throw std::out_of_range("DelayConfig::dim_name: bad dimension");
}

SocSpec apply(const SocSpec& nominal, const DelayConfig& cfg) {
    if (cfg.fifo_pct.size() != nominal.channels.size() ||
        cfg.ring_ab_pct.size() != nominal.rings.size() ||
        cfg.ring_ba_pct.size() != nominal.rings.size() ||
        cfg.clock_pct.size() != nominal.sbs.size()) {
        throw std::invalid_argument("DelayConfig shape does not match SocSpec");
    }
    SocSpec out = nominal;
    // A perturbed spec is a different program: carrying the nominal key
    // forward would alias it onto the nominal registry entry.
    out.program_key.clear();
    for (std::size_t i = 0; i < out.channels.size(); ++i) {
        auto& f = out.channels[i].fifo;
        f.stage_delay = sim::scale_percent(f.stage_delay, cfg.fifo_pct[i]);
    }
    for (std::size_t i = 0; i < out.rings.size(); ++i) {
        out.rings[i].delay_ab =
            sim::scale_percent(out.rings[i].delay_ab, cfg.ring_ab_pct[i]);
        out.rings[i].delay_ba =
            sim::scale_percent(out.rings[i].delay_ba, cfg.ring_ba_pct[i]);
    }
    for (std::size_t i = 0; i < out.sbs.size(); ++i) {
        auto& c = out.sbs[i].clock;
        c.base_period = sim::scale_percent(c.base_period, cfg.clock_pct[i]);
    }
    return out;
}

void apply_live(Soc& soc, const DelayConfig& cfg) {
    const SocSpec& nominal = soc.spec();
    if (cfg.fifo_pct.size() != nominal.channels.size() ||
        cfg.ring_ab_pct.size() != nominal.rings.size() ||
        cfg.ring_ba_pct.size() != nominal.rings.size() ||
        cfg.clock_pct.size() != nominal.sbs.size()) {
        throw std::invalid_argument("DelayConfig shape does not match SocSpec");
    }
    for (std::size_t i = 0; i < nominal.channels.size(); ++i) {
        soc.fifo(i).set_stage_delay(sim::scale_percent(
            nominal.channels[i].fifo.stage_delay, cfg.fifo_pct[i]));
    }
    for (std::size_t i = 0; i < nominal.rings.size(); ++i) {
        // Hop 0 carries a -> b (the Soc adds node_a first), hop 1 b -> a.
        soc.ring(i).set_hop_delay(
            0, sim::scale_percent(nominal.rings[i].delay_ab,
                                  cfg.ring_ab_pct[i]));
        soc.ring(i).set_hop_delay(
            1, sim::scale_percent(nominal.rings[i].delay_ba,
                                  cfg.ring_ba_pct[i]));
    }
    for (std::size_t i = 0; i < nominal.sbs.size(); ++i) {
        soc.wrapper(i).clock().set_base_period(sim::scale_percent(
            nominal.sbs[i].clock.base_period, cfg.clock_pct[i]));
    }
}

}  // namespace st::sys
