#include "system/invariant_monitor.hpp"

namespace st::sys {

namespace {
using Phase = core::TokenNode::Phase;

/// Apply one phase transition to a holder count, keeping `flagged` (the
/// number of counts at-or-above `limit`) in sync.
void apply_transition(std::uint8_t& holders, Phase now, std::uint8_t limit,
                      std::size_t& flagged) {
    if (now == Phase::kHolding) {
        if (++holders == limit) ++flagged;
    } else {
        if (holders-- == limit) --flagged;
    }
}
}  // namespace

InvariantMonitor::InvariantMonitor(Soc& soc) : soc_(soc) {
    ring_holders_.assign(soc_.num_rings(), 0);
    multi_holders_.assign(soc_.num_multi_rings(), 0);
    // Each TokenNode belongs to exactly one ring (or one multi-ring
    // membership), so the single observer slot per node is enough.
    for (std::size_t r = 0; r < soc_.num_rings(); ++r) {
        const auto& spec = soc_.spec().rings[r];
        for (const std::size_t sb : {spec.sb_a, spec.sb_b}) {
            soc_.ring_node(r, sb).set_phase_observer([this, r](Phase now) {
                apply_transition(ring_holders_[r], now, 2, rings_both_);
            });
        }
    }
    for (std::size_t r = 0; r < soc_.num_multi_rings(); ++r) {
        const auto& spec = soc_.spec().multi_rings[r];
        for (const auto& m : spec.members) {
            soc_.multi_ring_node(r, m.sb).set_phase_observer(
                [this, r](Phase now) {
                    apply_transition(multi_holders_[r], now, 2, multis_over_);
                });
        }
    }
    recount();
    wrappers_.resize(soc_.num_sbs());
    for (std::size_t i = 0; i < soc_.num_sbs(); ++i) {
        auto& w = soc_.wrapper(i);
        wrappers_[i].clock = &w.clock();
        for (std::size_t n = 0; n < w.num_nodes(); ++n) {
            wrappers_[i].nodes.push_back(&w.node(n));
        }
        w.clock().on_edge(
            [this, i](std::uint64_t cycle, sim::Time) { check(i, cycle); });
    }
}

void InvariantMonitor::reset() {
    violations_.clear();
    checks_ = 0;
    recount();
}

void InvariantMonitor::recount() {
    rings_both_ = 0;
    multis_over_ = 0;
    for (std::size_t r = 0; r < soc_.num_rings(); ++r) {
        const auto& spec = soc_.spec().rings[r];
        std::uint8_t holders = 0;
        for (const std::size_t sb : {spec.sb_a, spec.sb_b}) {
            if (soc_.ring_node(r, sb).phase() == Phase::kHolding) ++holders;
        }
        ring_holders_[r] = holders;
        if (holders >= 2) ++rings_both_;
    }
    for (std::size_t r = 0; r < soc_.num_multi_rings(); ++r) {
        const auto& spec = soc_.spec().multi_rings[r];
        std::uint8_t holders = 0;
        for (const auto& m : spec.members) {
            if (soc_.multi_ring_node(r, m.sb).phase() == Phase::kHolding) {
                ++holders;
            }
        }
        multi_holders_[r] = holders;
        if (holders >= 2) ++multis_over_;
    }
}

void InvariantMonitor::record(std::string what) {
    if (violations_.size() < kMaxRecorded) violations_.push_back(std::move(what));
}

void InvariantMonitor::check(std::size_t wrapper_index, std::uint64_t cycle) {
    ++checks_;
    const WrapperCtx& w = wrappers_[wrapper_index];
    const bool running = !w.clock->stopped();

    for (const core::TokenNode* np : w.nodes) {
        const auto& node = *np;
        const bool bad_en = node.sb_en() && node.phase() != Phase::kHolding;
        const bool bad_wait = node.waiting() && node.clken();
        const bool bad_proto = node.protocol_errors() != 0;
        const bool bad_clk = running && !node.clken();
        if (!(bad_en || bad_wait || bad_proto || bad_clk)) continue;
        // Slow path: a violation is in force — now pay for formatting.
        const std::string loc =
            node.name() + " @cycle " + std::to_string(cycle) + ": ";
        if (bad_en) record(loc + "sb_en asserted while not holding");
        if (bad_wait) record(loc + "waiting with clken asserted");
        if (bad_proto) record(loc + "token protocol error observed");
        if (bad_clk) {
            // Settled post-edge state: a deasserted clken must have stopped
            // the clock by now (the post-commit gate runs before monitors).
            record(loc + "clken low but clock still running");
        }
    }

    // Single-token mutual exclusion per ring (both endpoints visible). The
    // counts are maintained by the nodes' phase observers; scanning for the
    // offending ring only happens while some ring is actually violated.
    if (rings_both_ != 0) {
        for (std::size_t r = 0; r < soc_.num_rings(); ++r) {
            if (ring_holders_[r] < 2) continue;
            record("ring '" + soc_.ring(r).name() + "' @cycle " +
                   std::to_string(cycle) + ": both endpoints holding");
        }
    }
    // Multi-rings: at most one member holding (token-bus arbitration).
    if (multis_over_ != 0) {
        for (std::size_t r = 0; r < soc_.num_multi_rings(); ++r) {
            if (multi_holders_[r] < 2) continue;
            record("multi-ring '" + soc_.multi_ring(r).name() + "' @cycle " +
                   std::to_string(cycle) + ": " +
                   std::to_string(static_cast<unsigned>(multi_holders_[r])) +
                   " members holding");
        }
    }
}

}  // namespace st::sys
