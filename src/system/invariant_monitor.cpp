#include "system/invariant_monitor.hpp"

#include <sstream>

namespace st::sys {

InvariantMonitor::InvariantMonitor(Soc& soc) : soc_(soc) {
    for (std::size_t i = 0; i < soc_.num_sbs(); ++i) {
        soc_.wrapper(i).clock().on_edge(
            [this, i](std::uint64_t cycle, sim::Time) { check(i, cycle); });
    }
}

void InvariantMonitor::record(const std::string& what) {
    if (violations_.size() < kMaxRecorded) violations_.push_back(what);
}

void InvariantMonitor::check(std::size_t wrapper_index, std::uint64_t cycle) {
    ++checks_;
    auto& w = soc_.wrapper(wrapper_index);

    for (std::size_t n = 0; n < w.num_nodes(); ++n) {
        const auto& node = w.node(n);
        std::ostringstream loc;
        loc << node.name() << " @cycle " << cycle << ": ";
        if (node.sb_en() &&
            node.phase() != core::TokenNode::Phase::kHolding) {
            record(loc.str() + "sb_en asserted while not holding");
        }
        if (node.waiting() && node.clken()) {
            record(loc.str() + "waiting with clken asserted");
        }
        if (node.protocol_errors() != 0) {
            record(loc.str() + "token protocol error observed");
        }
        if (!w.clock().stopped() && !node.clken()) {
            // Settled post-edge state: a deasserted clken must have stopped
            // the clock by now (the post-commit gate runs before monitors).
            record(loc.str() + "clken low but clock still running");
        }
    }

    // Single-token mutual exclusion per ring (both endpoints visible).
    for (std::size_t r = 0; r < soc_.num_rings(); ++r) {
        const auto& spec = soc_.spec().rings[r];
        const auto& a = soc_.ring_node(r, spec.sb_a);
        const auto& b = soc_.ring_node(r, spec.sb_b);
        if (a.phase() == core::TokenNode::Phase::kHolding &&
            b.phase() == core::TokenNode::Phase::kHolding) {
            std::ostringstream os;
            os << "ring '" << soc_.ring(r).name()
               << "' @cycle " << cycle << ": both endpoints holding";
            record(os.str());
        }
    }
    // Multi-rings: at most one member holding (token-bus arbitration).
    for (std::size_t r = 0; r < soc_.num_multi_rings(); ++r) {
        const auto& spec = soc_.spec().multi_rings[r];
        std::size_t holders = 0;
        for (const auto& m : spec.members) {
            if (soc_.multi_ring_node(r, m.sb).phase() ==
                core::TokenNode::Phase::kHolding) {
                ++holders;
            }
        }
        if (holders > 1) {
            std::ostringstream os;
            os << "multi-ring '" << soc_.multi_ring(r).name() << "' @cycle "
               << cycle << ": " << holders << " members holding";
            record(os.str());
        }
    }
}

}  // namespace st::sys
