#pragma once

#include <cstdint>

#include "snap/snapshot.hpp"
#include "system/delay_config.hpp"
#include "system/soc.hpp"
#include "verify/io_trace.hpp"

namespace st::sys {

/// Runner functor for `verify::DeterminismHarness<DelayConfig>`: executes
/// `cycles` local cycles of `spec` under a delay perturbation and returns
/// the traces. With `warmup > 0` every case shares a nominal prefix of
/// `warmup` cycles before its perturbation is applied live; with `fork`
/// additionally enabled (the default) that prefix is simulated once at
/// construction, snapshotted, and every case resumes from the snapshot.
/// Restore-equivalence makes forked and non-forked sweeps bit-identical —
/// the fork only removes the re-simulated prefix from each case's cost.
class WarmRunner {
  public:
    WarmRunner(SocSpec spec, std::uint64_t cycles, sim::Time deadline,
               std::uint64_t warmup = 0, bool fork = true);

    verify::TraceSet operator()(const DelayConfig& cfg) const;

    /// Streaming-pipeline entry point (DeterminismHarness::LiveRunner
    /// shape): drive the case through the caller's RunCapture so an
    /// attached StreamingChecker observes events online. The batch
    /// operator() above is this plus materialization.
    void run(const DelayConfig& cfg, verify::RunCapture& cap) const;

    std::uint64_t warmup() const { return warmup_; }
    const snap::Snapshot& prefix() const { return prefix_; }

  private:
    SocSpec spec_;
    std::uint64_t cycles_;
    sim::Time deadline_;
    std::uint64_t warmup_;
    bool fork_;
    snap::Snapshot prefix_;
};

}  // namespace st::sys
