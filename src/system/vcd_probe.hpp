#pragma once

#include <ostream>
#include <vector>

#include "sim/vcd.hpp"
#include "system/soc.hpp"

namespace st::sys {

/// Full-system VCD tracer: attaches to an elaborated (pre-start) Soc and
/// records per-wrapper clock activity, every token node's sb_en/clken and
/// counters, per-FIFO occupancy, and token pass/arrive pulses per ring.
/// The resulting file opens in GTKWave for visual debug of any experiment.
class VcdProbe {
  public:
    /// Must be constructed after Soc elaboration and before the first event
    /// executes (the VCD header closes on the first change).
    VcdProbe(Soc& soc, std::ostream& out);

    VcdProbe(const VcdProbe&) = delete;
    VcdProbe& operator=(const VcdProbe&) = delete;

  private:
    sim::VcdWriter vcd_;
};

}  // namespace st::sys
