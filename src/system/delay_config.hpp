#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "system/spec.hpp"

namespace st::sys {

/// A delay perturbation, expressed exactly as the paper does: each delay-like
/// parameter set to a percentage of its nominal value (they used 50, 75, 100,
/// 150, and 200 %). A DelayConfig is pure data — applying it to a SocSpec
/// yields a new SocSpec; nothing about the simulation kernel changes.
struct DelayConfig {
    std::vector<unsigned> fifo_pct;     ///< per channel: FIFO stage delay
    std::vector<unsigned> ring_ab_pct;  ///< per ring: a->b token wire delay
    std::vector<unsigned> ring_ba_pct;  ///< per ring: b->a token wire delay
    std::vector<unsigned> clock_pct;    ///< per SB: local clock period

    /// All-100% configuration shaped for `spec`.
    static DelayConfig nominal(const SocSpec& spec);

    /// Total number of perturbable parameters.
    std::size_t dimensions() const {
        return fifo_pct.size() + ring_ab_pct.size() + ring_ba_pct.size() +
               clock_pct.size();
    }

    /// Flat accessors treating all parameters as one vector (for sweeps).
    unsigned get(std::size_t dim) const;
    void set(std::size_t dim, unsigned pct);
    std::string dim_name(std::size_t dim) const;

    bool operator==(const DelayConfig&) const = default;
};

/// Produce the perturbed spec: every delay scaled by its percentage.
SocSpec apply(const SocSpec& nominal, const DelayConfig& cfg);

class Soc;

/// Apply a perturbation to an already-elaborated (possibly running) Soc —
/// the snapshot-forking fork point: a warm-up prefix runs at nominal
/// delays, then each case scales the live components exactly as apply()
/// would have scaled the spec. Scaling is always relative to the Soc's own
/// (nominal) spec, so applying twice is not cumulative.
void apply_live(Soc& soc, const DelayConfig& cfg);

}  // namespace st::sys
