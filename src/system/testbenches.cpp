#include "system/testbenches.hpp"

#include <memory>
#include <stdexcept>

#include "analytic/models.hpp"
#include "sim/random.hpp"
#include "sb/kernels/sinks.hpp"
#include "sb/kernels/transforms.hpp"
#include "workload/streaming.hpp"
#include "workload/traffic.hpp"

namespace st::sys {

namespace {

achan::SelfTimedFifo::Params fifo_params(std::size_t depth, sim::Time stage,
                                         unsigned bits) {
    achan::SelfTimedFifo::Params p;
    p.depth = depth;
    p.stage_delay = stage;
    p.data_bits = bits;
    p.head_req_delay = 20;
    p.head_ack_delay = 20;
    return p;
}

achan::FourPhaseLink::Params tail_link_params(unsigned bits) {
    return achan::FourPhaseLink::Params{bits, 20, 20};
}

clk::StoppableClock::Params clock_params(sim::Time period) {
    clk::StoppableClock::Params p;
    p.base_period = period;
    p.divider = 1;
    p.phase = 0;
    // The asynchronous restart must give interface handshakes that completed
    // the moment sb_en rose time to return to zero before the restarted edge
    // samples them (audited as the "restart_vs_pending" constraint).
    p.restart_delay = 200;
    return p;
}

/// Both-direction channels between two SBs over one ring.
void add_duplex_channels(SocSpec& spec, std::size_t ring, std::size_t sb_a,
                         std::size_t sb_b, std::size_t depth, sim::Time stage,
                         unsigned bits) {
    ChannelSpec fwd;
    fwd.name = spec.sbs[sb_a].name + "_to_" + spec.sbs[sb_b].name;
    fwd.from_sb = sb_a;
    fwd.to_sb = sb_b;
    fwd.ring = ring;
    fwd.fifo = fifo_params(depth, stage, bits);
    fwd.tail_link = tail_link_params(bits);
    spec.channels.push_back(fwd);

    ChannelSpec bwd = fwd;
    bwd.name = spec.sbs[sb_b].name + "_to_" + spec.sbs[sb_a].name;
    bwd.from_sb = sb_b;
    bwd.to_sb = sb_a;
    spec.channels.push_back(bwd);
}

}  // namespace

SocSpec make_pair_spec(const PairOptions& opt) {
    SocSpec spec;

    SbSpec alpha;
    alpha.name = "alpha";
    alpha.clock = clock_params(opt.period_a);
    alpha.make_kernel = [seed = opt.seed_a] {
        return std::make_unique<wl::TrafficKernel>(seed);
    };
    spec.sbs.push_back(alpha);

    SbSpec beta;
    beta.name = "beta";
    beta.clock = clock_params(opt.period_b);
    beta.make_kernel = [seed = opt.seed_b] {
        return std::make_unique<wl::TrafficKernel>(seed);
    };
    spec.sbs.push_back(beta);

    const bool symmetric = (opt.period_a == opt.period_b) &&
                           (opt.token_delay < opt.period_a);
    std::uint32_t recycle_a = 0;
    std::uint32_t recycle_b = 0;
    std::uint32_t initial_recycle_b = 0;
    if (opt.recycle_override) {
        recycle_a = recycle_b = *opt.recycle_override;
        initial_recycle_b = *opt.recycle_override;
    } else if (symmetric) {
        // Exact schedule (DESIGN.md §5): with D < T the token always arrives
        // one cycle's margin before the recycle check — never early-
        // recognized, never late.
        recycle_a = opt.hold + 2;
        recycle_b = opt.hold + 2;
        initial_recycle_b = opt.hold + 1;
    } else {
        recycle_a = model::min_recycle(opt.period_a, opt.period_b, opt.hold,
                                       opt.token_delay, opt.token_delay);
        recycle_b = model::min_recycle(opt.period_b, opt.period_a, opt.hold,
                                       opt.token_delay, opt.token_delay);
        initial_recycle_b = recycle_b;
    }

    RingSpec ring;
    ring.name = "ring_ab";
    ring.sb_a = 0;
    ring.sb_b = 1;
    ring.node_a.hold = opt.hold;
    ring.node_a.recycle = recycle_a;
    ring.node_a.initial_holder = true;
    ring.node_b.hold = opt.hold;
    ring.node_b.recycle = recycle_b;
    ring.node_b.initial_holder = false;
    ring.node_b.initial_recycle = initial_recycle_b;
    ring.delay_ab = opt.token_delay;
    ring.delay_ba = opt.token_delay;
    spec.rings.push_back(ring);

    add_duplex_channels(spec, 0, 0, 1, opt.hold, opt.stage_delay,
                        opt.data_bits);
    return spec;
}

SocSpec make_triangle_spec(const TriangleOptions& opt) {
    SocSpec spec;

    const sim::Time periods[3] = {opt.period_0, opt.period_1, opt.period_2};
    const char* names[3] = {"alpha", "beta", "gamma"};
    const std::uint64_t seeds[3] = {0xace1u, 0xbeefu, 0xcafeu};
    for (int i = 0; i < 3; ++i) {
        SbSpec sb;
        sb.name = names[i];
        sb.clock = clock_params(periods[i]);
        sb.make_kernel = [seed = seeds[i]] {
            return std::make_unique<wl::TrafficKernel>(seed);
        };
        spec.sbs.push_back(sb);
    }

    const std::size_t pairs[3][2] = {{0, 1}, {1, 2}, {0, 2}};
    for (std::size_t r = 0; r < 3; ++r) {
        const std::size_t a = pairs[r][0];
        const std::size_t b = pairs[r][1];
        RingSpec ring;
        ring.name = std::string("ring_") + names[a] + "_" + names[b];
        ring.sb_a = a;
        ring.sb_b = b;
        ring.node_a.hold = opt.hold;
        ring.node_a.initial_holder = true;
        ring.node_a.recycle = opt.recycle_slack +
                              model::min_recycle(periods[a], periods[b],
                                                 opt.hold, opt.token_delay,
                                                 opt.token_delay);
        ring.node_b.hold = opt.hold;
        ring.node_b.initial_holder = false;
        ring.node_b.recycle = opt.recycle_slack +
                              model::min_recycle(periods[b], periods[a],
                                                 opt.hold, opt.token_delay,
                                                 opt.token_delay);
        ring.delay_ab = opt.token_delay;
        ring.delay_ba = opt.token_delay;
        spec.rings.push_back(ring);
        add_duplex_channels(spec, r, a, b, opt.hold, opt.stage_delay,
                            opt.data_bits);
    }
    return spec;
}

SocSpec make_wide_pair_spec(const WidePairOptions& opt) {
    SocSpec spec;

    SbSpec alpha;
    alpha.name = "alpha";
    alpha.clock = clock_params(opt.period);
    alpha.make_kernel = [seed = opt.seed] {
        return std::make_unique<wl::StreamingSource>(seed);
    };
    spec.sbs.push_back(alpha);

    SbSpec beta;
    beta.name = "beta";
    beta.clock = clock_params(opt.period);
    beta.make_kernel = [seed = opt.seed] {
        return std::make_unique<wl::StreamingSink>(seed);
    };
    spec.sbs.push_back(beta);

    RingSpec ring;
    ring.name = "ring_ab";
    ring.sb_a = 0;
    ring.sb_b = 1;
    ring.node_a.hold = opt.hold;
    ring.node_a.recycle = opt.hold + 2;  // tuned symmetric schedule
    ring.node_a.initial_holder = true;
    ring.node_b.hold = opt.hold;
    ring.node_b.recycle = opt.hold + 2;
    ring.node_b.initial_holder = false;
    ring.node_b.initial_recycle = opt.hold + 1;
    ring.delay_ab = opt.token_delay;
    ring.delay_ba = opt.token_delay;
    spec.rings.push_back(ring);

    for (std::size_t lane = 0; lane < opt.lanes; ++lane) {
        ChannelSpec ch;
        ch.name = "lane" + std::to_string(lane);
        ch.from_sb = 0;
        ch.to_sb = 1;
        ch.ring = 0;
        ch.fifo = fifo_params(opt.hold, opt.stage_delay, opt.data_bits);
        ch.tail_link = tail_link_params(opt.data_bits);
        spec.channels.push_back(ch);
    }
    return spec;
}

SocSpec make_chain_spec(const ChainOptions& opt) {
    if (opt.length < 2) {
        throw std::invalid_argument("make_chain_spec: length must be >= 2");
    }
    SocSpec spec;
    for (std::size_t i = 0; i < opt.length; ++i) {
        SbSpec sb;
        sb.name = "stage" + std::to_string(i);
        sb.clock = clock_params(opt.base_period +
                                static_cast<sim::Time>(i) * opt.period_step);
        if (i == 0) {
            sb.make_kernel = [seed = opt.seed] {
                return std::make_unique<wl::TrafficKernel>(seed);
            };
        } else if (i + 1 == opt.length) {
            sb.make_kernel = [] { return std::make_unique<sb::RecorderSink>(); };
        } else {
            sb.make_kernel = [] {
                return std::make_unique<sb::FirKernel>(
                    std::vector<std::int32_t>{1, 2, 3, 2, 1});
            };
        }
        spec.sbs.push_back(sb);
    }
    for (std::size_t i = 0; i + 1 < opt.length; ++i) {
        const sim::Time t_a = spec.sbs[i].clock.base_period;
        const sim::Time t_b = spec.sbs[i + 1].clock.base_period;
        RingSpec ring;
        ring.name = "ring_" + std::to_string(i);
        ring.sb_a = i;
        ring.sb_b = i + 1;
        ring.node_a.hold = opt.hold;
        ring.node_a.initial_holder = true;
        ring.node_a.recycle =
            4 + model::min_recycle(t_a, t_b, opt.hold, opt.token_delay,
                                   opt.token_delay);
        ring.node_b.hold = opt.hold;
        ring.node_b.initial_holder = false;
        ring.node_b.recycle =
            4 + model::min_recycle(t_b, t_a, opt.hold, opt.token_delay,
                                   opt.token_delay);
        ring.delay_ab = opt.token_delay;
        ring.delay_ba = opt.token_delay;
        spec.rings.push_back(ring);

        ChannelSpec ch;
        ch.name = "ch_" + std::to_string(i);
        ch.from_sb = i;
        ch.to_sb = i + 1;
        ch.ring = i;
        ch.fifo = fifo_params(opt.hold, opt.stage_delay, opt.data_bits);
        ch.tail_link = tail_link_params(opt.data_bits);
        spec.channels.push_back(ch);
    }
    return spec;
}

SocSpec make_bus_spec(const BusOptions& opt) {
    if (opt.size < 2) {
        throw std::invalid_argument("make_bus_spec: size must be >= 2");
    }
    SocSpec spec;
    for (std::size_t i = 0; i < opt.size; ++i) {
        SbSpec sb;
        sb.name = "node" + std::to_string(i);
        sb.clock = clock_params(opt.base_period +
                                static_cast<sim::Time>(i) * opt.period_step);
        sb.make_kernel = [seed = 0xb005u + i] {
            return std::make_unique<wl::TrafficKernel>(seed);
        };
        spec.sbs.push_back(sb);
    }

    MultiRingSpec bus;
    bus.name = "bus";
    // Worst-case token absence seen from any member: all other members hold
    // (plus one alignment cycle each) and the token crosses every hop.
    sim::Time others_total = 0;
    for (std::size_t i = 0; i < opt.size; ++i) {
        others_total += static_cast<sim::Time>(opt.hold + 1) *
                        spec.sbs[i].clock.base_period;
    }
    const sim::Time hops_total =
        static_cast<sim::Time>(opt.size) * opt.hop_delay;
    for (std::size_t i = 0; i < opt.size; ++i) {
        MultiRingSpec::Member m;
        m.sb = i;
        m.hop_delay = opt.hop_delay;
        m.node.hold = opt.hold;
        m.node.initial_holder = (i == 0);
        const sim::Time t_local = spec.sbs[i].clock.base_period;
        const sim::Time away =
            hops_total + others_total -
            static_cast<sim::Time>(opt.hold + 1) * t_local;
        m.node.recycle = opt.recycle_slack +
                         static_cast<std::uint32_t>((away + t_local - 1) /
                                                    t_local);
        bus.members.push_back(m);
    }
    spec.multi_rings.push_back(bus);

    for (std::size_t i = 0; i < opt.size; ++i) {
        ChannelSpec ch;
        ch.name = spec.sbs[i].name + "_to_" +
                  spec.sbs[(i + 1) % opt.size].name;
        ch.from_sb = i;
        ch.to_sb = (i + 1) % opt.size;
        ch.ring = 0;
        ch.on_multi_ring = true;
        ch.fifo = fifo_params(opt.hold, opt.stage_delay, opt.data_bits);
        ch.tail_link = tail_link_params(opt.data_bits);
        spec.channels.push_back(ch);
    }
    return spec;
}

SocSpec make_mesh_spec(const MeshOptions& opt) {
    if (opt.width == 0 || opt.height == 0) {
        throw std::invalid_argument("make_mesh_spec: empty mesh");
    }
    SocSpec spec;
    sim::Rng rng(opt.seed);
    const auto tile = [&](std::size_t x, std::size_t y) {
        return y * opt.width + x;
    };
    for (std::size_t y = 0; y < opt.height; ++y) {
        for (std::size_t x = 0; x < opt.width; ++x) {
            SbSpec sb;
            sb.name = "tile" + std::to_string(x) + "_" + std::to_string(y);
            const sim::Time period =
                opt.base_period +
                (opt.period_spread == 0 ? 0 : rng.next_below(opt.period_spread));
            sb.clock = clock_params(period);
            sb.make_kernel = [seed = rng.next_u64() | 1ull] {
                return std::make_unique<wl::TrafficKernel>(seed);
            };
            spec.sbs.push_back(sb);
        }
    }
    const auto add_ring = [&](std::size_t a, std::size_t b) {
        const sim::Time t_a = spec.sbs[a].clock.base_period;
        const sim::Time t_b = spec.sbs[b].clock.base_period;
        RingSpec ring;
        ring.name = "ring_" + spec.sbs[a].name + "_" + spec.sbs[b].name;
        ring.sb_a = a;
        ring.sb_b = b;
        ring.node_a.hold = opt.hold;
        ring.node_a.initial_holder = true;
        ring.node_a.recycle =
            opt.recycle_slack + model::min_recycle(t_a, t_b, opt.hold,
                                                   opt.token_delay,
                                                   opt.token_delay);
        ring.node_b.hold = opt.hold;
        ring.node_b.initial_holder = false;
        ring.node_b.recycle =
            opt.recycle_slack + model::min_recycle(t_b, t_a, opt.hold,
                                                   opt.token_delay,
                                                   opt.token_delay);
        ring.delay_ab = opt.token_delay;
        ring.delay_ba = opt.token_delay;
        const std::size_t r = spec.rings.size();
        spec.rings.push_back(ring);
        add_duplex_channels(spec, r, a, b, opt.hold, opt.stage_delay,
                            opt.data_bits);
    };
    for (std::size_t y = 0; y < opt.height; ++y) {
        for (std::size_t x = 0; x < opt.width; ++x) {
            if (x + 1 < opt.width) add_ring(tile(x, y), tile(x + 1, y));
            if (y + 1 < opt.height) add_ring(tile(x, y), tile(x, y + 1));
        }
    }
    return spec;
}

const std::vector<std::string>& named_specs() {
    static const std::vector<std::string> names = {"pair", "triangle", "chain",
                                                   "mesh", "wide",     "bus"};
    return names;
}

SocSpec make_named_spec(const std::string& name) {
    SocSpec spec;
    if (name == "pair") {
        spec = make_pair_spec();
    } else if (name == "triangle") {
        spec = make_triangle_spec();
    } else if (name == "chain") {
        spec = make_chain_spec();
    } else if (name == "mesh") {
        spec = make_mesh_spec();
    } else if (name == "wide") {
        spec = make_wide_pair_spec();
    } else if (name == "bus") {
        spec = make_bus_spec();
    } else {
        throw std::invalid_argument("make_named_spec: unknown spec '" + name +
                                    "'");
    }
    // The catalog is fixed per build, so the name alone identifies the
    // elaborated program (gang::Program registry sharing).
    spec.program_key = "catalog:" + name;
    return spec;
}

}  // namespace sys
