// Structural lint passes: index validity, channel/ring bundling, initial
// token holders, isolated SBs, parameter sanity, counter widths.

#include <set>
#include <sstream>
#include <string>

#include "lint/lint.hpp"
#include "lint/locus.hpp"

namespace st::lint {

namespace {

using detail::channel_locus;
using detail::multi_ring_locus;
using detail::ring_locus;
using detail::sb_locus;

/// Width of the parallel-loadable hold/recycle counters in the node netlist
/// (area::node_netlist builds them 8 bits wide; Table 1's 145-gate figure
/// assumes this width).
constexpr std::uint32_t kCounterMax = 0xffu;

}  // namespace

void check_endpoints(const sys::SocSpec& spec, LintReport& report) {
    const std::size_t n = spec.sbs.size();
    const auto in_range = [n](std::size_t i) { return i < n; };

    if (n == 0) {
        report.add(Severity::kError, "ring-endpoints", "spec",
                   "spec has no synchronous blocks");
        return;
    }
    for (const auto& ring : spec.rings) {
        if (!in_range(ring.sb_a) || !in_range(ring.sb_b)) {
            report.add(Severity::kError, "ring-endpoints", ring_locus(ring),
                       "SB index out of range (" + std::to_string(ring.sb_a) +
                           ", " + std::to_string(ring.sb_b) + " vs " +
                           std::to_string(n) + " SBs)");
            continue;
        }
        if (ring.sb_a == ring.sb_b) {
            report.add(Severity::kError, "ring-endpoints", ring_locus(ring),
                       "ring joins " + sb_locus(spec, ring.sb_a) +
                           " to itself; a token ring needs two distinct SBs");
        }
    }
    for (const auto& mr : spec.multi_rings) {
        if (mr.members.size() < 2) {
            report.add(Severity::kError, "ring-endpoints",
                       multi_ring_locus(mr),
                       "multi-ring has " + std::to_string(mr.members.size()) +
                           " member(s); a token needs >= 2 stations");
            continue;
        }
        std::set<std::size_t> seen;
        for (const auto& m : mr.members) {
            if (!in_range(m.sb)) {
                report.add(Severity::kError, "ring-endpoints",
                           multi_ring_locus(mr),
                           "member SB index " + std::to_string(m.sb) +
                               " out of range");
            } else if (!seen.insert(m.sb).second) {
                report.add(Severity::kError, "ring-endpoints",
                           multi_ring_locus(mr),
                           sb_locus(spec, m.sb) +
                               " appears twice on the multi-ring; one node "
                               "per SB per ring");
            }
        }
    }
    for (const auto& ch : spec.channels) {
        if (!in_range(ch.from_sb) || !in_range(ch.to_sb)) {
            report.add(Severity::kError, "ring-endpoints", channel_locus(ch),
                       "endpoint SB index out of range");
            continue;
        }
        if (ch.from_sb == ch.to_sb) {
            report.add(Severity::kError, "ring-endpoints", channel_locus(ch),
                       "channel loops " + sb_locus(spec, ch.from_sb) +
                           " back to itself");
        }
        const std::size_t ring_count =
            ch.on_multi_ring ? spec.multi_rings.size() : spec.rings.size();
        if (ch.ring >= ring_count) {
            report.add(Severity::kError, "ring-endpoints", channel_locus(ch),
                       std::string("channel's ") +
                           (ch.on_multi_ring ? "multi-ring" : "ring") +
                           " index " + std::to_string(ch.ring) +
                           " out of range (" + std::to_string(ring_count) +
                           " configured)");
        }
    }
}

void check_channel_ring(const sys::SocSpec& spec, LintReport& report) {
    for (const auto& ch : spec.channels) {
        if (ch.on_multi_ring) {
            const auto& mr = spec.multi_rings[ch.ring];
            const auto member = [&mr](std::size_t sb) {
                for (const auto& m : mr.members) {
                    if (m.sb == sb) return true;
                }
                return false;
            };
            for (const std::size_t sb : {ch.from_sb, ch.to_sb}) {
                if (!member(sb)) {
                    report.add(
                        Severity::kError, "channel-ring", channel_locus(ch),
                        sb_locus(spec, sb) + " is not a member of " +
                            multi_ring_locus(mr) +
                            ", so its interfaces are never token-enabled",
                        "bundle the channel to a ring joining both SBs, or "
                        "add the SB to the multi-ring");
                }
            }
            continue;
        }
        const auto& ring = spec.rings[ch.ring];
        const bool joins =
            (ring.sb_a == ch.from_sb && ring.sb_b == ch.to_sb) ||
            (ring.sb_a == ch.to_sb && ring.sb_b == ch.from_sb);
        if (!joins) {
            std::ostringstream os;
            os << "master handshake " << ring_locus(ring) << " joins "
               << sb_locus(spec, ring.sb_a) << " and "
               << sb_locus(spec, ring.sb_b) << ", not the channel's "
               << sb_locus(spec, ch.from_sb) << " -> "
               << sb_locus(spec, ch.to_sb)
               << "; data exchange would never be enabled on a deterministic "
                  "schedule";
            report.add(Severity::kError, "channel-ring", channel_locus(ch),
                       os.str(),
                       "bundle the channel to the ring joining its two SBs");
        }
    }
}

void check_initial_holder(const sys::SocSpec& spec, LintReport& report) {
    for (const auto& ring : spec.rings) {
        const int holders = (ring.node_a.initial_holder ? 1 : 0) +
                            (ring.node_b.initial_holder ? 1 : 0);
        if (holders != 1) {
            report.add(
                Severity::kError, "initial-holder", ring_locus(ring),
                std::to_string(holders) +
                    " initial token holders; a ring carries exactly one token",
                holders == 0
                    ? "set initial_holder on exactly one of the two nodes"
                    : "clear initial_holder on all but one node");
        }
    }
    for (const auto& mr : spec.multi_rings) {
        int holders = 0;
        for (const auto& m : mr.members) holders += m.node.initial_holder;
        if (holders != 1) {
            report.add(
                Severity::kError, "initial-holder", multi_ring_locus(mr),
                std::to_string(holders) +
                    " initial token holders; a ring carries exactly one token",
                "set initial_holder on exactly one member");
        }
    }
}

void check_isolated_sb(const sys::SocSpec& spec, LintReport& report) {
    std::vector<bool> connected(spec.sbs.size(), false);
    for (const auto& ring : spec.rings) {
        connected[ring.sb_a] = connected[ring.sb_b] = true;
    }
    for (const auto& mr : spec.multi_rings) {
        for (const auto& m : mr.members) connected[m.sb] = true;
    }
    for (const auto& ch : spec.channels) {
        connected[ch.from_sb] = connected[ch.to_sb] = true;
    }
    for (std::size_t i = 0; i < spec.sbs.size(); ++i) {
        if (!connected[i]) {
            report.add(Severity::kWarning, "isolated-sb", sb_locus(spec, i),
                       "SB joins no ring and no channel; it free-runs outside "
                       "the deterministic schedule",
                       "remove the SB or wire it to a ring");
        }
    }
}

void check_param_sanity(const sys::SocSpec& spec, LintReport& report) {
    for (std::size_t i = 0; i < spec.sbs.size(); ++i) {
        const auto& c = spec.sbs[i].clock;
        if (c.base_period == 0) {
            report.add(Severity::kError, "param-sanity", sb_locus(spec, i),
                       "zero clock base period");
        }
        if (c.divider == 0) {
            report.add(Severity::kError, "param-sanity", sb_locus(spec, i),
                       "zero clock divider");
        }
        if (!spec.sbs[i].make_kernel) {
            report.add(Severity::kError, "param-sanity", sb_locus(spec, i),
                       "no kernel factory; the SB cannot be elaborated");
        }
    }
    const auto check_node = [&](const core::TokenNode::Params& node,
                                const std::string& locus) {
        if (node.hold == 0) {
            report.add(Severity::kError, "param-sanity", locus,
                       "hold register is 0; a node must keep the token for "
                       ">= 1 local cycle to preset its counter");
        }
    };
    for (const auto& ring : spec.rings) {
        check_node(ring.node_a, detail::node_locus(spec, ring, ring.sb_a));
        check_node(ring.node_b, detail::node_locus(spec, ring, ring.sb_b));
        if (ring.delay_ab == 0 || ring.delay_ba == 0) {
            report.add(Severity::kWarning, "param-sanity", ring_locus(ring),
                       "zero token wire delay models an instantaneous "
                       "asynchronous wire; use a positive delay");
        }
    }
    for (const auto& mr : spec.multi_rings) {
        for (const auto& m : mr.members) {
            check_node(m.node, multi_ring_locus(mr) + " node in " +
                                   sb_locus(spec, m.sb));
        }
    }
    for (const auto& ch : spec.channels) {
        if (ch.fifo.depth == 0) {
            report.add(Severity::kError, "param-sanity", channel_locus(ch),
                       "zero-depth FIFO");
        }
        if (ch.fifo.data_bits == 0 || ch.fifo.data_bits > 64) {
            report.add(Severity::kError, "param-sanity", channel_locus(ch),
                       "data width " + std::to_string(ch.fifo.data_bits) +
                           " outside the modelled 1..64 bits");
        }
        if (ch.tail_link.data_bits != ch.fifo.data_bits) {
            report.add(Severity::kWarning, "param-sanity", channel_locus(ch),
                       "tail link width " +
                           std::to_string(ch.tail_link.data_bits) +
                           " != FIFO width " +
                           std::to_string(ch.fifo.data_bits) +
                           "; words will be masked at the boundary");
        }
    }
}

void check_counter_width(const sys::SocSpec& spec, LintReport& report) {
    const auto check_node = [&](const core::TokenNode::Params& node,
                                const std::string& locus) {
        const auto flag = [&](const char* reg, std::uint32_t v) {
            report.add(Severity::kError, "counter-width", locus,
                       std::string(reg) + " register value " +
                           std::to_string(v) +
                           " overflows the 8-bit parallel-loadable counter "
                           "(max 255, Table 1 node netlist)",
                       "lower the value or rescale clock periods so the "
                       "count fits 8 bits");
        };
        if (node.hold > kCounterMax) flag("hold", node.hold);
        if (node.recycle > kCounterMax) flag("recycle", node.recycle);
        if (node.initial_recycle != core::TokenNode::Params::kUseRecycle &&
            node.initial_recycle > kCounterMax) {
            flag("initial_recycle", node.initial_recycle);
        }
    };
    for (const auto& ring : spec.rings) {
        check_node(ring.node_a, detail::node_locus(spec, ring, ring.sb_a));
        check_node(ring.node_b, detail::node_locus(spec, ring, ring.sb_b));
    }
    for (const auto& mr : spec.multi_rings) {
        for (const auto& m : mr.members) {
            check_node(m.node, multi_ring_locus(mr) + " node in " +
                                   sb_locus(spec, m.sb));
        }
    }
}

}  // namespace st::lint
