#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace st::lint {

/// Severity of one finding. Only kError makes a report (and the st_lint CLI)
/// fail; warnings flag likely misconfiguration, notes record informational
/// results such as tuned-schedule margins.
enum class Severity { kError, kWarning, kNote };

const char* severity_name(Severity s);

/// One finding of a lint pass (or of the scheduler race audit), in the shape
/// of a compiler diagnostic: where, how bad, which rule, what to do about it.
struct Diagnostic {
    Severity severity = Severity::kError;
    /// Stable kebab-case rule identifier (docs/LINT.md documents each).
    std::string rule;
    /// Locus inside the spec: "ring 'ring_ab' node in SB 'alpha'",
    /// "channel 'lane0'", "scheduler @ 12.3ns" ...
    std::string locus;
    std::string message;
    /// Optional concrete remedy ("raise recycle to >= 7").
    std::string fix_hint;
    /// Optional concretized counterexample (sva verifier witnesses): the
    /// delay/fault recipe that reproduces the finding dynamically. Shown in
    /// machine-readable output; the human listing stays unchanged.
    std::string witness;

    /// GCC-style one-liner: `<locus>: <severity>: <message> [<rule>]`.
    std::string to_string() const;

    /// One JSON object: {"rule", "severity", "locus", "message",
    /// "fix_hint"?, "witness"?}. Optional fields are omitted when empty.
    std::string to_json() const;
};

/// Escape a string for embedding in a JSON string literal.
std::string json_escape(const std::string& s);

/// Aggregated result of running lint passes over one SocSpec.
class LintReport {
  public:
    void add(Diagnostic d) { diags_.push_back(std::move(d)); }
    void add(Severity sev, std::string rule, std::string locus,
             std::string message, std::string fix_hint = {});

    const std::vector<Diagnostic>& diagnostics() const { return diags_; }
    std::size_t errors() const { return count(Severity::kError); }
    std::size_t warnings() const { return count(Severity::kWarning); }
    std::size_t notes() const { return count(Severity::kNote); }

    /// True when no error-severity diagnostic was produced.
    bool ok() const { return errors() == 0; }

    /// Diagnostics carrying the given rule id.
    std::vector<Diagnostic> for_rule(const std::string& rule) const;

    /// True when some diagnostic of `rule` at error severity exists.
    bool has_error(const std::string& rule) const;

    /// Full GCC-style listing plus a one-line summary, for CLI output.
    std::string to_string() const;

    /// Merge another report's diagnostics into this one.
    void merge(const LintReport& other);

    /// Impose the canonical diagnostic order: stable sort by position of the
    /// rule id in `rule_order` (unknown rules sort after known ones, by
    /// name), then locus, severity, and message. Passes may emit findings in
    /// any order (e.g. when fanned out over worker threads); canonicalizing
    /// before rendering makes output invariant under --jobs.
    void canonicalize(const std::vector<std::string>& rule_order);

    /// JSON array of `Diagnostic::to_json()` objects, in current order.
    std::string to_json() const;

  private:
    std::size_t count(Severity s) const;
    std::vector<Diagnostic> diags_;
};

}  // namespace st::lint
