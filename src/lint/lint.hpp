#pragma once

#include <string>
#include <vector>

#include "lint/diagnostic.hpp"
#include "system/spec.hpp"

namespace st::lint {

/// Options for the full lint run.
struct LintOptions {
    /// Run the absorbed deadlock fixpoint (`dl::check_rules`) pass.
    bool deadlock_pass = true;
};

/// Catalog entry describing one analysis pass (docs/LINT.md mirrors this).
struct PassInfo {
    const char* id;       ///< pass name (== primary rule id it emits)
    const char* summary;  ///< one-line description
};

/// All registered passes, in execution order.
const std::vector<PassInfo>& pass_catalog();

/// Run every static analysis pass over `spec`.
///
/// Structural validity (index ranges) is checked first; when the topology is
/// malformed the deeper schedule/occupancy passes are skipped — their
/// arithmetic would dereference out-of-range spec entries — and a note
/// records the early exit.
LintReport lint(const sys::SocSpec& spec, const LintOptions& opt = {});

// --- individual passes (exposed for targeted tests) -----------------------
// Every pass assumes `check_endpoints` reported no error unless noted.

/// rule `ring-endpoints`: SB indices of rings / multi-rings / channels are in
/// range, rings are not self-loops, multi-rings have >= 2 distinct members.
/// Safe on arbitrary specs; everything else requires it to pass first.
void check_endpoints(const sys::SocSpec& spec, LintReport& report);

/// rule `channel-ring`: each channel's ring actually joins the channel's two
/// SBs (or, on a multi-ring, both endpoints are members).
void check_channel_ring(const sys::SocSpec& spec, LintReport& report);

/// rule `initial-holder`: every ring and multi-ring has exactly one initial
/// token holder.
void check_initial_holder(const sys::SocSpec& spec, LintReport& report);

/// rule `isolated-sb` (warning): an SB that joins no ring and no channel can
/// never exchange data deterministically — dead weight or a wiring mistake.
void check_isolated_sb(const sys::SocSpec& spec, LintReport& report);

/// rule `param-sanity`: hold >= 1, FIFO depth >= 1, data bits in [1, 64],
/// clock period/divider nonzero, nonzero token wire delays.
void check_param_sanity(const sys::SocSpec& spec, LintReport& report);

/// rule `counter-width`: hold / recycle / initial-recycle register values fit
/// the 8-bit parallel-loadable counters of the node netlist (Table 1).
void check_counter_width(const sys::SocSpec& spec, LintReport& report);

/// rule `recycle-feasibility`: per ring node (and multi-ring member), the
/// provisioned recycle wait R*T_local against the nominal token absence
/// (wire round trip + peer hold phases + alignment). A deficit beyond one
/// local cycle is an error (the schedule cannot work); a sub-cycle deficit is
/// a note (tuned schedules legitimately shave the alignment cycle via
/// initial_recycle).
void check_recycle_feasibility(const sys::SocSpec& spec, LintReport& report);

/// rules `fifo-depth` (error) and `fifo-head-visibility` (warning):
/// worst-case burst occupancy during one hold phase vs. configured depth, and
/// the static head-visibility margin (full ripple + handshake vs. token
/// flight time).
void check_fifo_provisioning(const sys::SocSpec& spec, LintReport& report);

/// rules `clock-ratio` and `restart-delay` (warnings): extreme clock-period
/// ratios across a ring starve the slow side; an async restart latency close
/// to the local period erodes the stall-recovery margin.
void check_clock_hazards(const sys::SocSpec& spec, LintReport& report);

/// rules `deadlock-fixpoint` (error) / `deadlock-advisory` (note): the
/// existing dl::check_rules transitive-stall fixpoint, absorbed behind the
/// Diagnostic API.
void check_deadlock_rules(const sys::SocSpec& spec, LintReport& report);

}  // namespace st::lint
