#pragma once

#include <cstdint>

#include "lint/diagnostic.hpp"
#include "sim/scheduler.hpp"
#include "system/spec.hpp"

namespace st::lint {

/// Convert the scheduler's recorded same-slot races into `sched-race`
/// diagnostics (error severity: insertion-sequence tie-breaking is ordering
/// observable model state).
void collect_race_diagnostics(const sim::Scheduler& sched,
                              LintReport& report);

/// Dynamic companion to the static passes: elaborate `spec`, enable the
/// scheduler race audit, run `cycles` local cycles (bounded by `deadline`
/// simulated time), and report every same-slot collision. A deadlocking spec
/// is *not* an audit failure — deadlock is the static passes' business — so
/// only races are reported.
LintReport run_race_audit(const sys::SocSpec& spec, std::uint64_t cycles,
                          sim::Time deadline);

}  // namespace st::lint
