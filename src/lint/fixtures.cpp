// Broken-spec fixtures: each mutates a known-good testbench spec so that
// exactly one lint rule fires at error severity. tests/test_lint.cpp asserts
// the "exactly one rule" property; tools/st_lint exposes them via --fixture.

#include "lint/fixtures.hpp"

#include <memory>
#include <stdexcept>

#include "system/testbenches.hpp"
#include "workload/traffic.hpp"

namespace st::lint {

namespace {

/// Channel 'alpha_to_beta' rebundled to the beta<->gamma ring: the master
/// handshake never enables the channel's interfaces.
sys::SocSpec wrong_ring_membership() {
    auto spec = sys::make_triangle_spec();
    for (auto& ch : spec.channels) {
        if (ch.name == "alpha_to_beta") {
            ch.ring = 1;  // joins beta and gamma, not alpha and beta
            return spec;
        }
    }
    throw std::logic_error("fixture: triangle channel layout changed");
}

/// Both pair nodes claim the initial token: two tokens on a one-token ring.
sys::SocSpec two_initial_holders() {
    auto spec = sys::make_pair_spec();
    spec.rings.at(0).node_b.initial_holder = true;
    return spec;
}

/// FIFO shallower than the producer's hold burst.
sys::SocSpec undersized_fifo() {
    auto spec = sys::make_pair_spec();
    spec.channels.at(0).fifo.depth = 2;  // hold is 4
    return spec;
}

/// Recycle registers far below the token round trip: guaranteed stalls on
/// every rotation (several local cycles short, beyond tuned alignment).
sys::SocSpec starved_recycle() {
    sys::PairOptions opt;
    opt.recycle_override = 2;  // min feasible is 7 for the default geometry
    return sys::make_pair_spec(opt);
}

/// Recycle value exceeding the 8-bit tester-loadable counter.
sys::SocSpec counter_overflow() {
    sys::PairOptions opt;
    opt.recycle_override = 300;
    return sys::make_pair_spec(opt);
}

/// Three rings in a directed cycle, each under-provisioned by *less* than
/// one local cycle: individually only a tuned-alignment note, but the
/// transitive stall fixpoint diverges — the lint analogue of the runtime
/// deadlock in tests/test_deadlock.cpp.
sys::SocSpec deadlock_cycle() {
    sys::SocSpec spec;
    for (int i = 0; i < 3; ++i) {
        sys::SbSpec sb;
        sb.name = "sb" + std::to_string(i);
        sb.clock.base_period = 1000;
        sb.clock.restart_delay = 200;
        sb.make_kernel = [i] {
            return std::make_unique<wl::TrafficKernel>(
                0x2000u + static_cast<unsigned>(i));
        };
        spec.sbs.push_back(sb);
    }
    for (std::size_t i = 0; i < 3; ++i) {
        sys::RingSpec ring;
        ring.name = "ring" + std::to_string(i);
        ring.sb_a = i;
        ring.sb_b = (i + 1) % 3;
        ring.node_a.hold = 4;
        // Token absence is 2*900 + 5*1000 = 6.8 ns; 6 cycles provision only
        // 6 ns. The 0.8 ns deficit is sub-cycle, yet it compounds around the
        // ring cycle without bound.
        ring.node_a.recycle = 6;
        ring.node_a.initial_holder = true;
        ring.node_b.hold = 4;
        ring.node_b.recycle = 6;
        ring.node_b.initial_holder = false;
        ring.delay_ab = 900;
        ring.delay_ba = 900;
        spec.rings.push_back(ring);
    }
    return spec;
}

}  // namespace

const std::vector<Fixture>& fixture_catalog() {
    static const std::vector<Fixture> catalog = {
        {"bad-channel-ring", "channel-ring",
         "channel bundled to a ring that does not join its SBs"},
        {"two-initial-holders", "initial-holder",
         "both nodes of one ring start holding a token"},
        {"undersized-fifo", "fifo-depth",
         "FIFO depth below the producer's hold burst"},
        {"starved-recycle", "recycle-feasibility",
         "recycle registers several cycles below the token round trip"},
        {"counter-overflow", "counter-width",
         "recycle value exceeding the 8-bit counter"},
        {"deadlock-cycle", "deadlock-fixpoint",
         "cyclic sub-cycle under-provisioning; stall fixpoint diverges"},
    };
    return catalog;
}

sys::SocSpec make_fixture(const std::string& name) {
    if (name == "bad-channel-ring") return wrong_ring_membership();
    if (name == "two-initial-holders") return two_initial_holders();
    if (name == "undersized-fifo") return undersized_fifo();
    if (name == "starved-recycle") return starved_recycle();
    if (name == "counter-overflow") return counter_overflow();
    if (name == "deadlock-cycle") return deadlock_cycle();
    throw std::invalid_argument("unknown lint fixture '" + name + "'");
}

}  // namespace st::lint
