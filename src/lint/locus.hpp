#pragma once

// Internal helpers shared by the lint passes: human-readable locus strings
// matching the spec vocabulary ("ring 'x' node in SB 'y'", "channel 'z'").

#include <string>

#include "system/spec.hpp"

namespace st::lint::detail {

inline std::string sb_locus(const sys::SocSpec& spec, std::size_t i) {
    if (i < spec.sbs.size()) return "SB '" + spec.sbs[i].name + "'";
    return "SB #" + std::to_string(i) + " (out of range)";
}

inline std::string ring_locus(const sys::RingSpec& r) {
    return "ring '" + r.name + "'";
}

inline std::string multi_ring_locus(const sys::MultiRingSpec& r) {
    return "multi-ring '" + r.name + "'";
}

inline std::string channel_locus(const sys::ChannelSpec& c) {
    return "channel '" + c.name + "'";
}

inline std::string node_locus(const sys::SocSpec& spec,
                              const sys::RingSpec& r, std::size_t sb) {
    return ring_locus(r) + " node in " + sb_locus(spec, sb);
}

/// Effective local clock period of SB `i` (base period times divider).
inline sim::Time sb_period(const sys::SocSpec& spec, std::size_t i) {
    const auto& c = spec.sbs[i].clock;
    return c.base_period * c.divider;
}

}  // namespace st::lint::detail
