#pragma once

#include <string>
#include <vector>

#include "system/spec.hpp"

namespace st::lint {

/// A deliberately broken SocSpec used to exercise one lint rule — the
/// negative test set behind the `st_lint --fixture` CTest cases.
struct Fixture {
    const char* name;           ///< CLI / CTest identifier
    const char* expected_rule;  ///< rule id whose errors the spec must trip
    const char* summary;        ///< what is broken, in one line
};

/// All registered broken fixtures.
const std::vector<Fixture>& fixture_catalog();

/// Materialize fixture `name`. Throws std::invalid_argument on unknown names.
sys::SocSpec make_fixture(const std::string& name);

}  // namespace st::lint
