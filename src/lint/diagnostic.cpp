#include "lint/diagnostic.hpp"

#include <sstream>

namespace st::lint {

const char* severity_name(Severity s) {
    switch (s) {
        case Severity::kError:
            return "error";
        case Severity::kWarning:
            return "warning";
        case Severity::kNote:
            return "note";
    }
    return "?";
}

std::string Diagnostic::to_string() const {
    std::ostringstream os;
    os << locus << ": " << severity_name(severity) << ": " << message << " ["
       << rule << "]";
    if (!fix_hint.empty()) os << "\n" << locus << ": note: fix: " << fix_hint;
    return os.str();
}

void LintReport::add(Severity sev, std::string rule, std::string locus,
                     std::string message, std::string fix_hint) {
    Diagnostic d;
    d.severity = sev;
    d.rule = std::move(rule);
    d.locus = std::move(locus);
    d.message = std::move(message);
    d.fix_hint = std::move(fix_hint);
    diags_.push_back(std::move(d));
}

std::size_t LintReport::count(Severity s) const {
    std::size_t n = 0;
    for (const auto& d : diags_) n += d.severity == s ? 1 : 0;
    return n;
}

std::vector<Diagnostic> LintReport::for_rule(const std::string& rule) const {
    std::vector<Diagnostic> out;
    for (const auto& d : diags_) {
        if (d.rule == rule) out.push_back(d);
    }
    return out;
}

bool LintReport::has_error(const std::string& rule) const {
    for (const auto& d : diags_) {
        if (d.severity == Severity::kError && d.rule == rule) return true;
    }
    return false;
}

std::string LintReport::to_string() const {
    std::ostringstream os;
    for (const auto& d : diags_) os << d.to_string() << "\n";
    os << errors() << " error(s), " << warnings() << " warning(s), "
       << notes() << " note(s)";
    return os.str();
}

void LintReport::merge(const LintReport& other) {
    diags_.insert(diags_.end(), other.diags_.begin(), other.diags_.end());
}

}  // namespace st::lint
