#include "lint/diagnostic.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <tuple>

namespace st::lint {

const char* severity_name(Severity s) {
    switch (s) {
        case Severity::kError:
            return "error";
        case Severity::kWarning:
            return "warning";
        case Severity::kNote:
            return "note";
    }
    return "?";
}

std::string Diagnostic::to_string() const {
    std::ostringstream os;
    os << locus << ": " << severity_name(severity) << ": " << message << " ["
       << rule << "]";
    if (!fix_hint.empty()) os << "\n" << locus << ": note: fix: " << fix_hint;
    return os.str();
}

std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size() + 8);
    for (const char c : s) {
        switch (c) {
            case '"':
                out += "\\\"";
                break;
            case '\\':
                out += "\\\\";
                break;
            case '\n':
                out += "\\n";
                break;
            case '\t':
                out += "\\t";
                break;
            case '\r':
                out += "\\r";
                break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x",
                                  static_cast<unsigned>(c) & 0xff);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

std::string Diagnostic::to_json() const {
    std::ostringstream os;
    os << "{\"rule\":\"" << json_escape(rule) << "\",\"severity\":\""
       << severity_name(severity) << "\",\"locus\":\"" << json_escape(locus)
       << "\",\"message\":\"" << json_escape(message) << "\"";
    if (!fix_hint.empty()) {
        os << ",\"fix_hint\":\"" << json_escape(fix_hint) << "\"";
    }
    if (!witness.empty()) {
        os << ",\"witness\":\"" << json_escape(witness) << "\"";
    }
    os << "}";
    return os.str();
}

void LintReport::add(Severity sev, std::string rule, std::string locus,
                     std::string message, std::string fix_hint) {
    Diagnostic d;
    d.severity = sev;
    d.rule = std::move(rule);
    d.locus = std::move(locus);
    d.message = std::move(message);
    d.fix_hint = std::move(fix_hint);
    diags_.push_back(std::move(d));
}

std::size_t LintReport::count(Severity s) const {
    std::size_t n = 0;
    for (const auto& d : diags_) n += d.severity == s ? 1 : 0;
    return n;
}

std::vector<Diagnostic> LintReport::for_rule(const std::string& rule) const {
    std::vector<Diagnostic> out;
    for (const auto& d : diags_) {
        if (d.rule == rule) out.push_back(d);
    }
    return out;
}

bool LintReport::has_error(const std::string& rule) const {
    for (const auto& d : diags_) {
        if (d.severity == Severity::kError && d.rule == rule) return true;
    }
    return false;
}

std::string LintReport::to_string() const {
    std::ostringstream os;
    for (const auto& d : diags_) os << d.to_string() << "\n";
    os << errors() << " error(s), " << warnings() << " warning(s), "
       << notes() << " note(s)";
    return os.str();
}

void LintReport::merge(const LintReport& other) {
    diags_.insert(diags_.end(), other.diags_.begin(), other.diags_.end());
}

void LintReport::canonicalize(const std::vector<std::string>& rule_order) {
    const auto rank = [&](const std::string& rule) {
        for (std::size_t i = 0; i < rule_order.size(); ++i) {
            if (rule_order[i] == rule) return i;
        }
        return rule_order.size();
    };
    std::stable_sort(
        diags_.begin(), diags_.end(),
        [&](const Diagnostic& a, const Diagnostic& b) {
            const std::size_t ra = rank(a.rule), rb = rank(b.rule);
            return std::tie(ra, a.rule, a.locus, a.severity, a.message) <
                   std::tie(rb, b.rule, b.locus, b.severity, b.message);
        });
}

std::string LintReport::to_json() const {
    std::ostringstream os;
    os << "[";
    for (std::size_t i = 0; i < diags_.size(); ++i) {
        os << (i ? "," : "") << diags_[i].to_json();
    }
    os << "]";
    return os.str();
}

}  // namespace st::lint
