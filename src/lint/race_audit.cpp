#include "lint/race_audit.hpp"

#include <sstream>

#include "system/soc.hpp"

namespace st::lint {

void collect_race_diagnostics(const sim::Scheduler& sched,
                              LintReport& report) {
    for (const auto& r : sched.races()) {
        std::ostringstream locus;
        locus << "scheduler @ " << sim::format_time(r.t) << " prio "
              << r.priority;
        std::ostringstream msg;
        msg << "events '" << r.first << "' and '" << r.second
            << "' hit the same actor in one (time, priority) slot; their "
               "relative order is fixed only by insertion sequence";
        report.add(Severity::kError, "sched-race", locus.str(), msg.str(),
                   "separate the events by delay or priority phase so the "
                   "order is a design property, not a kernel accident");
    }
}

LintReport run_race_audit(const sys::SocSpec& spec, std::uint64_t cycles,
                          sim::Time deadline) {
    LintReport report;
    sys::Soc soc(spec);
    soc.scheduler().set_race_audit(true);
    soc.run_cycles(cycles, deadline);
    collect_race_diagnostics(soc.scheduler(), report);
    return report;
}

}  // namespace st::lint
