// Timing lint passes: recycle schedule feasibility, FIFO burst occupancy and
// head visibility, clock-period hazards, and the absorbed deadlock fixpoint.

#include <algorithm>
#include <sstream>
#include <string>

#include "analytic/models.hpp"
#include "deadlock/rules.hpp"
#include "lint/lint.hpp"
#include "lint/locus.hpp"
#include "sim/time.hpp"

namespace st::lint {

namespace {

using detail::channel_locus;
using detail::multi_ring_locus;
using detail::ring_locus;
using detail::sb_period;

/// Shared slack verdict: the token is away for `away` ps while the node
/// provisions `provisioned` ps of recycle wait on a `t_local` clock.
void judge_recycle_slack(LintReport& report, const std::string& locus,
                         sim::Time provisioned, sim::Time away,
                         sim::Time t_local, std::uint32_t min_feasible) {
    if (provisioned >= away) return;
    const sim::Time deficit = away - provisioned;
    if (deficit <= t_local) {
        // Within one alignment cycle: a tuned schedule (initial_recycle
        // phase alignment) legitimately runs here — the pair testbench does.
        report.add(Severity::kNote, "recycle-feasibility", locus,
                   "provisioned wait " + sim::format_time(provisioned) +
                       " trails the nominal token absence " +
                       sim::format_time(away) +
                       " by less than one local cycle; requires tuned "
                       "initial_recycle phase alignment to avoid stalls");
        return;
    }
    report.add(Severity::kError, "recycle-feasibility", locus,
               "provisioned wait " + sim::format_time(provisioned) +
                   " cannot cover the nominal token absence " +
                   sim::format_time(away) +
                   "; the local clock stalls on every rotation",
               "raise the recycle register to >= " +
                   std::to_string(min_feasible));
}

/// Producer-side hold value of the channel's master-handshake node, i.e. the
/// maximum words that can enter the FIFO tail during one token visit.
std::uint32_t producer_hold(const sys::SocSpec& spec,
                            const sys::ChannelSpec& ch) {
    if (ch.on_multi_ring) {
        for (const auto& m : spec.multi_rings[ch.ring].members) {
            if (m.sb == ch.from_sb) return m.node.hold;
        }
        return 0;  // membership errors are channel-ring's business
    }
    const auto& ring = spec.rings[ch.ring];
    if (ring.sb_a == ch.from_sb) return ring.node_a.hold;
    if (ring.sb_b == ch.from_sb) return ring.node_b.hold;
    return 0;
}

/// Token flight time from the producer's node to the consumer's node — the
/// minimum quiet window the FIFO has to ripple freshly written words to the
/// head before the consumer's interfaces enable.
sim::Time token_flight(const sys::SocSpec& spec, const sys::ChannelSpec& ch) {
    if (ch.on_multi_ring) {
        const auto& members = spec.multi_rings[ch.ring].members;
        for (const auto& m : members) {
            if (m.sb == ch.from_sb) return m.hop_delay;  // one hop minimum
        }
        return 0;
    }
    const auto& ring = spec.rings[ch.ring];
    return ring.sb_a == ch.from_sb ? ring.delay_ab : ring.delay_ba;
}

}  // namespace

void check_recycle_feasibility(const sys::SocSpec& spec, LintReport& report) {
    for (const auto& ring : spec.rings) {
        const sim::Time t_a = sb_period(spec, ring.sb_a);
        const sim::Time t_b = sb_period(spec, ring.sb_b);
        const sim::Time round_trip = ring.delay_ab + ring.delay_ba;

        const sim::Time away_a =
            round_trip + static_cast<sim::Time>(ring.node_b.hold + 1) * t_b;
        judge_recycle_slack(
            report, detail::node_locus(spec, ring, ring.sb_a),
            static_cast<sim::Time>(ring.node_a.recycle) * t_a, away_a, t_a,
            model::min_recycle(t_a, t_b, ring.node_b.hold, ring.delay_ab,
                               ring.delay_ba));

        const sim::Time away_b =
            round_trip + static_cast<sim::Time>(ring.node_a.hold + 1) * t_a;
        judge_recycle_slack(
            report, detail::node_locus(spec, ring, ring.sb_b),
            static_cast<sim::Time>(ring.node_b.recycle) * t_b, away_b, t_b,
            model::min_recycle(t_b, t_a, ring.node_a.hold, ring.delay_ab,
                               ring.delay_ba));
    }
    for (const auto& mr : spec.multi_rings) {
        sim::Time hops_total = 0;
        for (const auto& m : mr.members) hops_total += m.hop_delay;
        for (std::size_t i = 0; i < mr.members.size(); ++i) {
            const auto& me = mr.members[i];
            const sim::Time t_local = sb_period(spec, me.sb);
            sim::Time others = 0;
            for (std::size_t j = 0; j < mr.members.size(); ++j) {
                if (j == i) continue;
                others += static_cast<sim::Time>(mr.members[j].node.hold + 1) *
                          sb_period(spec, mr.members[j].sb);
            }
            const sim::Time away = hops_total + others;
            judge_recycle_slack(
                report,
                multi_ring_locus(mr) + " node in " +
                    detail::sb_locus(spec, me.sb),
                static_cast<sim::Time>(me.node.recycle) * t_local, away,
                t_local,
                static_cast<std::uint32_t>((away + t_local - 1) / t_local));
        }
    }
}

void check_fifo_provisioning(const sys::SocSpec& spec, LintReport& report) {
    for (const auto& ch : spec.channels) {
        const std::uint32_t burst = producer_hold(spec, ch);
        if (burst != 0 && ch.fifo.depth < burst) {
            std::ostringstream os;
            os << "FIFO depth " << ch.fifo.depth
               << " cannot absorb the worst-case burst of " << burst
               << " words written during one hold phase; tail backpressure "
                  "breaks the handshake-within-one-cycle contract";
            report.add(Severity::kError, "fifo-depth", channel_locus(ch),
                       os.str(),
                       "set depth >= the producer node's hold value (" +
                           std::to_string(burst) + ")");
        }

        // Head visibility (paper §4.1): a word written on the producer's
        // last hold cycle must ripple through every stage and complete the
        // head handshake before the token reaches the consumer and enables
        // the head interface. Static worst case: full ripple plus the head
        // link's unloaded handshake vs. the token flight time.
        const sim::Time ripple =
            static_cast<sim::Time>(ch.fifo.depth) * ch.fifo.stage_delay +
            2 * (ch.fifo.head_req_delay + ch.fifo.head_ack_delay);
        const sim::Time flight = token_flight(spec, ch);
        if (flight != 0 && ripple > flight) {
            std::ostringstream os;
            os << "worst-case head arrival " << sim::format_time(ripple)
               << " (full ripple + head handshake) exceeds the token flight "
                  "time "
               << sim::format_time(flight)
               << "; the consumer may enable its head interface before the "
                  "last word is visible";
            report.add(Severity::kWarning, "fifo-head-visibility",
                       channel_locus(ch), os.str(),
                       "shorten the FIFO, reduce stage delay, or lengthen "
                       "the token wire relative to the data path");
        }
    }
}

void check_clock_hazards(const sys::SocSpec& spec, LintReport& report) {
    constexpr double kRatioLimit = 4.0;
    const auto ratio_check = [&](const std::string& locus, sim::Time t_a,
                                 sim::Time t_b) {
        const double hi = static_cast<double>(std::max(t_a, t_b));
        const double lo = static_cast<double>(std::min(t_a, t_b));
        if (lo > 0 && hi / lo > kRatioLimit) {
            std::ostringstream os;
            os << "clock-period ratio " << hi / lo << " exceeds " << kRatioLimit
               << "; the fast side idles most of each rotation and recycle "
                  "counts grow toward the 8-bit ceiling";
            report.add(Severity::kWarning, "clock-ratio", locus, os.str(),
                       "re-tune dividers or split the ring so paired clocks "
                       "are within ~4x");
        }
    };
    for (const auto& ring : spec.rings) {
        ratio_check(ring_locus(ring), sb_period(spec, ring.sb_a),
                    sb_period(spec, ring.sb_b));
    }
    for (const auto& mr : spec.multi_rings) {
        sim::Time hi = 0;
        sim::Time lo = ~sim::Time{0};
        for (const auto& m : mr.members) {
            hi = std::max(hi, sb_period(spec, m.sb));
            lo = std::min(lo, sb_period(spec, m.sb));
        }
        ratio_check(multi_ring_locus(mr), hi, lo);
    }
    for (std::size_t i = 0; i < spec.sbs.size(); ++i) {
        const sim::Time period = sb_period(spec, i);
        const sim::Time restart = spec.sbs[i].clock.restart_delay;
        if (period > 0 && restart * 2 >= period) {
            report.add(Severity::kWarning, "restart-delay",
                       detail::sb_locus(spec, i),
                       "async restart latency " + sim::format_time(restart) +
                           " is >= half the local period " +
                           sim::format_time(period) +
                           "; every stall costs an extra effective cycle",
                       "lower restart_delay or provision recycle slack for "
                       "the added recovery time");
        }
    }
}

void check_deadlock_rules(const sys::SocSpec& spec, LintReport& report) {
    const dl::RuleReport rules = dl::check_rules(spec);
    if (!rules.ok) {
        report.add(Severity::kError, "deadlock-fixpoint", "spec",
                   "transitive stall bounds diverge: a cyclic chain of "
                   "under-provisioned recycle registers can deadlock the "
                   "stopped clocks",
                   "add recycle slack on at least one ring of every "
                   "potential cycle (DESIGN.md section 6)");
    }
    for (const auto& v : rules.violations) {
        report.add(Severity::kNote, "deadlock-advisory", "spec", v);
    }
}

}  // namespace st::lint
