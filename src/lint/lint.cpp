#include "lint/lint.hpp"

namespace st::lint {

const std::vector<PassInfo>& pass_catalog() {
    static const std::vector<PassInfo> catalog = {
        {"ring-endpoints",
         "SB indices in range, no self-loop rings, multi-rings >= 2 members"},
        {"channel-ring",
         "every channel's master-handshake ring joins the channel's SBs"},
        {"initial-holder",
         "exactly one initial token holder per ring and multi-ring"},
        {"isolated-sb", "no SB outside every ring and channel"},
        {"param-sanity",
         "hold/depth/data-bits/clock parameters within model bounds"},
        {"counter-width",
         "hold/recycle values fit the 8-bit tester-loadable counters"},
        {"recycle-feasibility",
         "R*T_local covers the nominal token absence per ring node"},
        {"fifo-provisioning",
         "burst occupancy vs. FIFO depth; static head-visibility margin"},
        {"clock-hazards",
         "clock-period ratio and async-restart-latency warnings"},
        {"deadlock-rules",
         "dl::check_rules transitive-stall fixpoint (absorbed pass)"},
    };
    return catalog;
}

LintReport lint(const sys::SocSpec& spec, const LintOptions& opt) {
    LintReport report;
    check_endpoints(spec, report);
    if (!report.ok()) {
        report.add(Severity::kNote, "ring-endpoints", "spec",
                   "structural errors above: schedule/occupancy passes "
                   "skipped (their arithmetic needs valid indices)");
        return report;
    }
    check_channel_ring(spec, report);
    check_initial_holder(spec, report);
    check_isolated_sb(spec, report);
    check_param_sanity(spec, report);
    check_counter_width(spec, report);
    check_recycle_feasibility(spec, report);
    check_fifo_provisioning(spec, report);
    check_clock_hazards(spec, report);
    if (opt.deadlock_pass) check_deadlock_rules(spec, report);
    return report;
}

}  // namespace st::lint
