#include "topo/topo.hpp"

#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "sim/random.hpp"
#include "workload/noc.hpp"

namespace st::topo {

namespace {

std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
    return (a + b - 1) / b;
}

/// Inclusive draw from [lo, hi] snapped to multiples of `quantum` above lo.
std::uint64_t draw_quantized(sim::Rng& rng, std::uint64_t lo, std::uint64_t hi,
                             std::uint64_t quantum) {
    if (hi <= lo) return lo;
    if (quantum == 0) quantum = 1;
    const std::uint64_t steps = (hi - lo) / quantum;
    return lo + rng.next_below(steps + 1) * quantum;
}

/// The recycle-feasibility / deadlock-fixpoint provisioning bound: worst
/// token absence seen from one node of a two-node ring is the wire round
/// trip plus the peer's full hold phase (H+1 peer cycles). Provisioning
/// recycle >= ceil(absence / T_local) + slack discharges both passes at
/// every node, which is what makes generated specs clean by construction.
std::uint32_t provision_recycle(std::uint64_t delay_ab, std::uint64_t delay_ba,
                                std::uint32_t hold_peer,
                                std::uint64_t period_peer,
                                std::uint64_t period_self,
                                std::uint32_t slack) {
    const std::uint64_t absence =
        delay_ab + delay_ba + (hold_peer + 1ull) * period_peer;
    return static_cast<std::uint32_t>(ceil_div(absence, period_self) + slack);
}

void check_common(const Options& opt) {
    if (opt.seed == 0) {
        throw std::invalid_argument("topo: zero seed");
    }
    if (opt.sbs < 2) {
        throw std::invalid_argument("topo: want >= 2 SBs");
    }
    if (opt.period_lo == 0 || opt.period_hi < opt.period_lo ||
        opt.token_delay_lo == 0 || opt.token_delay_hi < opt.token_delay_lo) {
        throw std::invalid_argument("topo: malformed distribution range");
    }
    if (opt.hold_lo < 1 || opt.hold_hi < opt.hold_lo) {
        throw std::invalid_argument("topo: malformed hold range");
    }
}

/// Per-SB draws, identical across shapes: clock period first, kernel seed
/// second. `| 1` keeps the kernel seed non-zero without biasing the stream.
struct SbDraw {
    std::uint64_t period;
    std::uint64_t seed;
};
SbDraw draw_sb(sim::Rng& rng, const Options& opt) {
    SbDraw d;
    d.period = draw_quantized(rng, opt.period_lo, opt.period_hi,
                              opt.period_quantum);
    d.seed = rng.next_u64() | 1;
    return d;
}

/// Per-ring draws, identical across shapes: hold (shared by both nodes),
/// delay_ab, delay_ba, in that order. Hold is symmetric per ring so the
/// two channel directions riding it see matched service rates — an
/// asymmetric pair would let the faster producer outrun the slower
/// consumer's windows and back the channel FIFO up until the tail
/// handshake stalls, which re-couples the producer's trace to wall-clock
/// delays (docs/TOPOLOGY.md "Provisioning envelope").
struct RingDraw {
    std::uint32_t hold_a;
    std::uint32_t hold_b;
    std::uint64_t delay_ab;
    std::uint64_t delay_ba;
};
RingDraw draw_ring(sim::Rng& rng, const Options& opt) {
    RingDraw d;
    d.hold_a = static_cast<std::uint32_t>(
        rng.next_in(opt.hold_lo, opt.hold_hi));
    d.hold_b = d.hold_a;
    d.delay_ab = draw_quantized(rng, opt.token_delay_lo, opt.token_delay_hi,
                                opt.token_delay_quantum);
    d.delay_ba = draw_quantized(rng, opt.token_delay_lo, opt.token_delay_hi,
                                opt.token_delay_quantum);
    return d;
}

sva::SpecDoc generate_grid(const Options& opt, bool torus) {
    const Geometry g = plan_geometry(opt.sbs);
    const std::size_t kW = g.width;
    const std::size_t kH = g.height;
    if (kW > 256 || kH > 256) {
        throw std::invalid_argument(
            "topo: grid does not fit 8-bit tile coordinates");
    }
    sim::Rng rng(opt.seed);
    sva::SpecDoc doc;
    const std::size_t n = opt.sbs;
    const auto at = [&](std::size_t x, std::size_t y) { return y * kW + x; };

    std::vector<std::uint64_t> period(n);
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t x = i % kW;
        const std::size_t y = i / kW;
        const SbDraw d = draw_sb(rng, opt);
        sva::SbDoc sb;
        sb.name = "t" + std::to_string(x) + "y" + std::to_string(y);
        sb.period = d.period;
        sb.restart = opt.restart;
        sb.seed = d.seed;
        sb.has_noc = true;
        sb.noc.mode = torus ? 1 : 0;
        sb.noc.x = static_cast<unsigned>(x);
        sb.noc.y = static_cast<unsigned>(y);
        sb.noc.width = static_cast<unsigned>(kW);
        sb.noc.height = static_cast<unsigned>(kH);
        sb.noc.nodes = static_cast<unsigned>(n);
        sb.noc.inject_period = opt.inject_period;
        period[i] = d.period;
        doc.sbs.push_back(std::move(sb));
    }

    // Undirected edges in scan order (east edge then south edge per tile).
    // A torus wraps each axis; extent-2 wrap would duplicate the mesh edge
    // and extent-1 has no neighbour, so wrap edges need extent > 2.
    struct EdgeInfo {
        std::size_t ring;  ///< index into doc.rings
        std::uint32_t hold_a;
        std::uint32_t hold_b;
    };
    std::unordered_map<std::uint64_t, EdgeInfo> edges;
    const auto add_edge = [&](std::size_t a, std::size_t b) {
        const RingDraw d = draw_ring(rng, opt);
        sva::RingDoc r;
        r.name = "r" + std::to_string(a) + "u" + std::to_string(b);
        r.sb_a = a;
        r.sb_b = b;
        r.delay_ab = d.delay_ab;
        r.delay_ba = d.delay_ba;
        r.node_a.hold = d.hold_a;
        r.node_a.recycle = provision_recycle(d.delay_ab, d.delay_ba, d.hold_b,
                                             period[b], period[a],
                                             opt.recycle_slack);
        r.node_a.holder = true;
        r.node_b.hold = d.hold_b;
        r.node_b.recycle = provision_recycle(d.delay_ab, d.delay_ba, d.hold_a,
                                             period[a], period[b],
                                             opt.recycle_slack);
        r.node_b.holder = false;
        edges.emplace(static_cast<std::uint64_t>(a) * n + b,
                      EdgeInfo{doc.rings.size(), d.hold_a, d.hold_b});
        doc.rings.push_back(std::move(r));
    };
    for (std::size_t y = 0; y < kH; ++y) {
        for (std::size_t x = 0; x < kW; ++x) {
            if (x + 1 < kW) {
                add_edge(at(x, y), at(x + 1, y));
            } else if (torus && kW > 2) {
                add_edge(at(0, y), at(x, y));
            }
            if (y + 1 < kH) {
                add_edge(at(x, y), at(x, y + 1));
            } else if (torus && kH > 2) {
                add_edge(at(x, 0), at(x, y));
            }
        }
    }

    // Channels per SB in east, west, north, south order — the port-order
    // contract NocKernel's greedy router relies on for XY equivalence
    // (spec_text.cpp derives out port k of SB i from the k-th channel with
    // from_sb == i). Duplicate directions on tiny wrapped axes collapse to
    // the first direction.
    // Unsigned wrap: v + extent + (size_t)(±1) mod extent.
    const auto wrap_step = [](std::size_t v, int d, std::size_t extent) {
        return (v + extent + static_cast<std::size_t>(d)) % extent;
    };
    const auto neighbour = [&](std::size_t x, std::size_t y,
                               int dx, int dy) -> std::size_t {
        const std::size_t none = static_cast<std::size_t>(-1);
        if (dx != 0) {
            if (torus) {
                if (kW < 2) return none;
                if (kW == 2 && dx < 0) return none;  // same as east
                return at(wrap_step(x, dx, kW), y);
            }
            const std::int64_t nx = static_cast<std::int64_t>(x) + dx;
            if (nx < 0 || nx >= static_cast<std::int64_t>(kW)) return none;
            return at(static_cast<std::size_t>(nx), y);
        }
        if (torus) {
            if (kH < 2) return none;
            if (kH == 2 && dy > 0) return none;  // same as north
            return at(x, wrap_step(y, dy, kH));
        }
        const std::int64_t ny = static_cast<std::int64_t>(y) + dy;
        if (ny < 0 || ny >= static_cast<std::int64_t>(kH)) return none;
        return at(x, static_cast<std::size_t>(ny));
    };
    constexpr int kDirs[4][2] = {{1, 0}, {-1, 0}, {0, -1}, {0, 1}};
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t x = i % kW;
        const std::size_t y = i / kW;
        for (const auto& d : kDirs) {
            const std::size_t j = neighbour(x, y, d[0], d[1]);
            if (j == static_cast<std::size_t>(-1)) continue;
            const std::size_t lo = i < j ? i : j;
            const std::size_t hi = i < j ? j : i;
            const auto& e =
                edges.at(static_cast<std::uint64_t>(lo) * n + hi);
            sva::ChannelDoc ch;
            ch.name = "c" + std::to_string(i) + "t" + std::to_string(j);
            ch.from_sb = i;
            ch.to_sb = j;
            ch.ring = e.ring;
            ch.depth = (i == lo ? e.hold_a : e.hold_b) + opt.depth_slack;
            ch.stage_delay = opt.stage_delay;
            doc.channels.push_back(std::move(ch));
        }
    }
    return doc;
}

sva::SpecDoc generate_star(const Options& opt) {
    const std::size_t n = opt.sbs;
    const std::size_t leaves = n - 1;
    const std::size_t rows =
        1 + (leaves + wl::NocKernel::kStarRow - 1) / wl::NocKernel::kStarRow;
    if (rows > 255) {
        throw std::invalid_argument(
            "topo: star does not fit 8-bit leaf coordinates");
    }
    sim::Rng rng(opt.seed);
    sva::SpecDoc doc;

    std::vector<std::uint64_t> period(n);
    for (std::size_t i = 0; i < n; ++i) {
        const SbDraw d = draw_sb(rng, opt);
        const auto c = wl::NocKernel::node_coords(
            wl::NocKernel::Config::Mode::kStar, wl::NocKernel::kStarRow, i);
        sva::SbDoc sb;
        sb.name = i == 0 ? "hub" : "leaf" + std::to_string(i);
        sb.period = d.period;
        sb.restart = opt.restart;
        sb.seed = d.seed;
        sb.has_noc = true;
        sb.noc.mode = 2;
        sb.noc.x = c.x;
        sb.noc.y = c.y;
        sb.noc.width = wl::NocKernel::kStarRow;
        sb.noc.height = static_cast<unsigned>(rows);
        sb.noc.nodes = static_cast<unsigned>(n);
        sb.noc.inject_period = opt.inject_period;
        period[i] = d.period;
        doc.sbs.push_back(std::move(sb));
    }

    // One spoke ring per leaf, hub side is node_a. Ring i-1 pairs the hub
    // with leaf i.
    std::vector<RingDraw> spoke(n);
    for (std::size_t i = 1; i < n; ++i) {
        const RingDraw d = draw_ring(rng, opt);
        sva::RingDoc r;
        r.name = "r" + std::to_string(i);
        r.sb_a = 0;
        r.sb_b = i;
        r.delay_ab = d.delay_ab;
        r.delay_ba = d.delay_ba;
        r.node_a.hold = d.hold_a;
        r.node_a.recycle = provision_recycle(d.delay_ab, d.delay_ba, d.hold_b,
                                             period[i], period[0],
                                             opt.recycle_slack);
        r.node_a.holder = true;
        r.node_b.hold = d.hold_b;
        r.node_b.recycle = provision_recycle(d.delay_ab, d.delay_ba, d.hold_a,
                                             period[0], period[i],
                                             opt.recycle_slack);
        r.node_b.holder = false;
        spoke[i] = d;
        doc.rings.push_back(std::move(r));
    }

    // Hub downlinks first (hub out port i-1 targets leaf i — the exact-match
    // scan in NocKernel::route finds it by coordinates), then one uplink per
    // leaf (its only out port, index 0).
    for (std::size_t i = 1; i < n; ++i) {
        sva::ChannelDoc ch;
        ch.name = "h2l" + std::to_string(i);
        ch.from_sb = 0;
        ch.to_sb = i;
        ch.ring = i - 1;
        ch.depth = spoke[i].hold_a + opt.depth_slack;
        ch.stage_delay = opt.stage_delay;
        doc.channels.push_back(std::move(ch));
    }
    for (std::size_t i = 1; i < n; ++i) {
        sva::ChannelDoc ch;
        ch.name = "l2h" + std::to_string(i);
        ch.from_sb = i;
        ch.to_sb = 0;
        ch.ring = i - 1;
        ch.depth = spoke[i].hold_b + opt.depth_slack;
        ch.stage_delay = opt.stage_delay;
        doc.channels.push_back(std::move(ch));
    }
    return doc;
}

}  // namespace

const char* shape_name(Shape s) {
    switch (s) {
        case Shape::kMesh: return "mesh";
        case Shape::kTorus: return "torus";
        case Shape::kStar: return "star";
        case Shape::kHierRing: return "hring";
    }
    return "?";
}

std::optional<Shape> parse_shape(const std::string& name) {
    if (name == "mesh") return Shape::kMesh;
    if (name == "torus") return Shape::kTorus;
    if (name == "star") return Shape::kStar;
    if (name == "hring") return Shape::kHierRing;
    return std::nullopt;
}

Geometry plan_geometry(std::size_t sbs) {
    Geometry g;
    if (sbs < 2) {
        g.width = 1;
        g.height = sbs;
        return g;
    }
    std::size_t r = 1;
    while ((r + 1) * (r + 1) <= sbs) ++r;
    while (r > 1 && sbs % r != 0) --r;
    g.width = r;
    g.height = sbs / r;
    return g;
}

sva::SpecDoc generate(const Options& opt) {
    check_common(opt);
    switch (opt.shape) {
        case Shape::kMesh: return generate_grid(opt, false);
        case Shape::kTorus: return generate_grid(opt, true);
        case Shape::kStar: return generate_star(opt);
        case Shape::kHierRing: {
            const Geometry g = plan_geometry(opt.sbs);
            // Formula-provisioned shape: the distribution knobs do not
            // apply, only the seed and the near-square cluster split do.
            RingOfRingsOptions r;
            r.clusters = g.width;
            r.members = g.height;
            r.seed = opt.seed;
            if (r.members < 2) {
                throw std::invalid_argument(
                    "topo: hring wants a composite SB count");
            }
            return make_ring_of_rings(r);
        }
    }
    throw std::invalid_argument("topo: unknown shape");
}

}  // namespace st::topo
