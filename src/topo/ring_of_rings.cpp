#include "topo/topo.hpp"

#include <stdexcept>
#include <string>

namespace st::topo {

namespace {

std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
    return (a + b - 1) / b;
}

}  // namespace

sva::SpecDoc make_ring_of_rings(const RingOfRingsOptions& opt) {
    if (opt.clusters < 1 || opt.members < 2) {
        throw std::invalid_argument(
            "ring-of-rings wants >= 1 cluster of >= 2 members");
    }
    sva::SpecDoc doc;
    const auto period_of = [&](std::size_t global) {
        return opt.base_period + (global % 5) * opt.period_step;
    };

    for (std::size_t c = 0; c < opt.clusters; ++c) {
        for (std::size_t i = 0; i < opt.members; ++i) {
            const std::size_t g = c * opt.members + i;
            sva::SbDoc sb;
            sb.name = "c" + std::to_string(c) + "m" + std::to_string(i);
            sb.period = period_of(g);
            sb.restart = 50;
            sb.seed = opt.seed + 0x9E3779B97F4A7C15ull * (g + 1);
            doc.sbs.push_back(std::move(sb));
        }
    }

    // One multi-ring bus per cluster. Member i's worst-case token absence is
    // the full lap: every hop wire plus every other member's hold phases
    // (H+1 local periods each) — the same bound the deadlock pass provisions
    // against. Recycle = ceil(absence / T_local) + slack.
    for (std::size_t c = 0; c < opt.clusters; ++c) {
        sva::MultiRingDoc m;
        m.name = "bus" + std::to_string(c);
        const std::uint64_t hops_total = opt.members * opt.hop_delay;
        for (std::size_t i = 0; i < opt.members; ++i) {
            const std::size_t g = c * opt.members + i;
            std::uint64_t absence = hops_total;
            for (std::size_t j = 0; j < opt.members; ++j) {
                if (j == i) continue;
                absence += (opt.hold + 1ull) *
                           period_of(c * opt.members + j);
            }
            sva::MemberDoc mem;
            mem.sb = g;
            mem.hop_delay = opt.hop_delay;
            mem.node.hold = opt.hold;
            mem.node.recycle = static_cast<std::uint32_t>(
                ceil_div(absence, period_of(g)) + opt.recycle_slack);
            mem.node.holder = i == 0;
            m.members.push_back(std::move(mem));
        }
        doc.multi_rings.push_back(std::move(m));
    }

    // Two-node outer rings chain the cluster gateways (member 0 of each
    // bus) into a top-level ring. Skipped for a single cluster.
    if (opt.clusters > 1) {
        for (std::size_t c = 0; c < opt.clusters; ++c) {
            const std::size_t a = c * opt.members;
            const std::size_t b = ((c + 1) % opt.clusters) * opt.members;
            sva::RingDoc r;
            r.name = "outer" + std::to_string(c);
            r.sb_a = a;
            r.sb_b = b;
            r.delay_ab = opt.outer_delay;
            r.delay_ba = opt.outer_delay;
            const auto provision = [&](std::size_t self, std::size_t peer) {
                const std::uint64_t absence =
                    2 * opt.outer_delay +
                    (opt.hold + 1ull) * period_of(peer);
                return static_cast<std::uint32_t>(
                    ceil_div(absence, period_of(self)) + opt.recycle_slack);
            };
            r.node_a.hold = opt.hold;
            r.node_a.recycle = provision(a, b);
            r.node_a.holder = true;
            r.node_b.hold = opt.hold;
            r.node_b.recycle = provision(b, a);
            r.node_b.holder = false;
            doc.rings.push_back(std::move(r));
        }
    }

    // Data channels: a neighbour pipeline on every bus, one forward channel
    // per outer ring. FIFO depth equals the hold burst, stage delay keeps
    // the service-rate envelope corner-stable.
    for (std::size_t c = 0; c < opt.clusters; ++c) {
        for (std::size_t i = 0; i < opt.members; ++i) {
            sva::ChannelDoc ch;
            ch.name = "c" + std::to_string(c) + "ch" + std::to_string(i);
            ch.from_sb = c * opt.members + i;
            ch.to_sb = c * opt.members + (i + 1) % opt.members;
            ch.ring = c;
            ch.on_multi_ring = true;
            ch.depth = opt.hold;
            doc.channels.push_back(std::move(ch));
        }
    }
    if (opt.clusters > 1) {
        for (std::size_t c = 0; c < opt.clusters; ++c) {
            sva::ChannelDoc ch;
            ch.name = "och" + std::to_string(c);
            ch.from_sb = c * opt.members;
            ch.to_sb = ((c + 1) % opt.clusters) * opt.members;
            ch.ring = c;  // outer ring index
            ch.on_multi_ring = false;
            ch.depth = opt.hold;
            doc.channels.push_back(std::move(ch));
        }
    }
    return doc;
}

}  // namespace st::topo
