#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

#include "sva/spec_text.hpp"

namespace st::topo {

/// Procedural topology generator: seeded, byte-reproducible SocSpec
/// construction at NoC scale (64-1024 SBs). Every shape emits a
/// `sva::SpecDoc`, so the `.stspec` v1 writer, `st_lint`, `st_lint
/// --verify`, `st_fuzz` and `st_debug` consume generated systems unchanged.
/// All rings are provisioned from the same closed-form recycle bound the
/// lint/verify passes check, so generated specs are clean by construction at
/// any size — the negative space stays covered by the fixture set.

enum class Shape {
    kMesh,      ///< 2-D mesh, XY-routed traffic
    kTorus,     ///< 2-D torus (wraparound-shortest routing)
    kStar,      ///< hub-and-spoke
    kHierRing,  ///< hierarchical token rings (ring-of-rings buses)
};

const char* shape_name(Shape s);

/// "mesh" / "torus" / "star" / "hring" -> Shape; nullopt otherwise.
std::optional<Shape> parse_shape(const std::string& name);

/// Near-square factorization of `sbs` (width <= height, width * height ==
/// sbs). 64 -> 8x8, 256 -> 16x16, 1024 -> 32x32; primes degenerate to
/// 1 x sbs.
struct Geometry {
    std::size_t width = 1;
    std::size_t height = 1;
};
Geometry plan_geometry(std::size_t sbs);

/// Distribution knobs. Every stochastic parameter is drawn from one
/// `sim::Rng(seed)` stream in a documented fixed order (docs/TOPOLOGY.md),
/// so equal options yield equal docs and — via `sva::to_text` —
/// byte-identical `.stspec` files.
///
/// The default envelope is chosen so every lint pass and all five `st_lint
/// --verify` obligations discharge statically at any supported size, AND so
/// the dynamic determinism contract holds under the paper's +-50..100%
/// delay perturbations (docs/TOPOLOGY.md "Provisioning envelope"):
/// periods in [800, 1600] keep clock ratios <= 2 and the service-rate
/// envelope corner-stable; token delays in [3000, 3600] dominate the
/// worst-case FIFO ripple even at 200% stretch, so pushed data is always
/// kernel-visible before the token that licenses its consumption; restart
/// at 200 ps covers wedged tail-handshake resolution after a window-start
/// poke; a single symmetric hold per ring balances producer/consumer
/// service rates so channel FIFOs never back-pressure.
struct Options {
    Shape shape = Shape::kMesh;
    std::size_t sbs = 64;
    std::uint64_t seed = 1;  ///< non-zero; the whole-draw-stream seed

    std::uint64_t period_lo = 800;  ///< ps, inclusive
    std::uint64_t period_hi = 1600;
    std::uint64_t period_quantum = 50;
    std::uint32_t hold_lo = 2;  ///< per ring (both nodes), inclusive
    std::uint32_t hold_hi = 4;
    std::uint64_t token_delay_lo = 3000;  ///< ps, per token wire, inclusive
    std::uint64_t token_delay_hi = 3600;
    std::uint64_t token_delay_quantum = 50;
    std::uint32_t depth_slack = 2;  ///< FIFO depth = producer hold + slack
    /// Extra recycle cycles on top of the computed token-absence bound.
    std::uint32_t recycle_slack = 8;
    std::uint64_t restart = 200;      ///< ps, async restart latency
    std::uint64_t stage_delay = 100;  ///< ps, FIFO stage ripple
    /// Local cycles between packet injections at every node (0 = idle NoC).
    std::uint32_t inject_period = 4;
};

/// Generate a spec document. Throws std::invalid_argument on unusable
/// options (zero seed, too few SBs for the shape, a grid that does not fit
/// 8-bit tile coordinates).
sva::SpecDoc generate(const Options& opt);

/// Geometry of a generated ring-of-rings stress spec: `clusters` multi-ring
/// buses of `members` SBs each, cluster gateways chained by two-node outer
/// rings. Parameters are formula-derived (not drawn), matching the
/// checked-in `tests/data/ring_of_rings_*.stspec` fixtures byte-for-byte.
/// `generate({.shape = Shape::kHierRing, ...})` routes here with a
/// near-square clusters x members split.
struct RingOfRingsOptions {
    std::size_t clusters = 8;
    std::size_t members = 8;
    std::uint64_t base_period = 1000;  ///< ps
    /// Per-SB period spread: period = base + (global_index % 5) * step.
    std::uint64_t period_step = 120;
    std::uint64_t hop_delay = 600;    ///< bus member-to-member token wire, ps
    std::uint64_t outer_delay = 900;  ///< gateway-to-gateway token wire, ps
    std::uint32_t hold = 3;
    /// Extra recycle cycles on top of the computed token-absence bound.
    std::uint32_t recycle_slack = 4;
    std::uint64_t seed = 0xC0FFEE;  ///< traffic-kernel seed base
};

/// Deterministic: equal options yield equal docs (and, via `to_text`,
/// byte-identical .stspec files — the checked-in stress specs are asserted
/// against this).
sva::SpecDoc make_ring_of_rings(const RingOfRingsOptions& opt = {});

}  // namespace st::topo
