#include "baselines/pausible.hpp"

#include <stdexcept>

namespace st::baseline {

PausibleClock::PausibleClock(sim::Scheduler& sched, std::string name,
                             Params p)
    : sched_(sched), name_(std::move(name)), params_(p) {
    if (params_.period == 0) {
        throw std::invalid_argument("PausibleClock: zero period");
    }
}

void PausibleClock::start() {
    if (started_) return;
    started_ = true;
    schedule_edge(params_.phase);
}

void PausibleClock::schedule_edge(sim::Time t) {
    next_edge_ = t;
    const std::uint64_t gen = ++generation_;
    sched_.schedule_at(t, sim::Priority::kClockEdge,
                       [this, gen] { edge(gen); });
}

void PausibleClock::edge(std::uint64_t generation) {
    if (generation != generation_) return;  // postponed: stale edge
    const std::uint64_t cycle = cycles_++;
    const sim::Time t = sched_.now();
    for (auto* s : sinks_) s->sample(cycle);
    sched_.schedule_at(t, sim::Priority::kCommit, [this, cycle] {
        for (auto* s : sinks_) s->commit(cycle);
    });
    schedule_edge(t + params_.period);
}

void PausibleClock::request() {
    if (!started_) return;
    const sim::Time now = sched_.now();
    if (next_edge_ > now && next_edge_ - now <= params_.guard_window) {
        // The request wins the arbitration: stretch the ring oscillator.
        ++pauses_;
        schedule_edge(next_edge_ + params_.pause_delay);
    }
}

PausibleInputInterface::PausibleInputInterface(std::string name,
                                               PausibleClock& clock,
                                               achan::SelfTimedFifo& fifo)
    : name_(std::move(name)), clock_(clock), fifo_(fifo) {
    fifo_.head_link().bind_sink(this);
}

void PausibleInputInterface::accept(Word w) {
    if (latch_valid_) {
        throw std::logic_error("PausibleInputInterface[" + name_ + "]: overrun");
    }
    latch_ = w;
    latch_valid_ = true;
    clock_.request();  // arbitrate against the oscillator
}

void PausibleInputInterface::sample(std::uint64_t cycle) {
    cycle_ = cycle;
    cycle_valid_ = latch_valid_;
    cycle_word_ = latch_;
    taken_ = false;
}

Word PausibleInputInterface::take() {
    if (!cycle_valid_) {
        throw std::logic_error("PausibleInputInterface[" + name_ +
                               "]: take without data");
    }
    cycle_valid_ = false;
    taken_ = true;
    ++delivered_;
    if (deliver_probe_) deliver_probe_(cycle_, cycle_word_);
    return cycle_word_;
}

void PausibleInputInterface::commit(std::uint64_t) {
    if (taken_) latch_valid_ = false;
    fifo_.head_link().poke();
}

PausibleWrapper::PausibleWrapper(sim::Scheduler& sched, std::string name,
                                 PausibleClock::Params clock_params,
                                 std::unique_ptr<sb::Kernel> kernel)
    : sched_(sched),
      name_(std::move(name)),
      clock_(sched, name_ + ".clk", clock_params),
      block_(name_ + ".sb", std::move(kernel)) {}

PausibleInputInterface& PausibleWrapper::attach_input(
    achan::SelfTimedFifo& fifo) {
    if (finalized_) {
        throw std::logic_error("PausibleWrapper[" + name_ + "]: attach after finalize");
    }
    auto iface = std::make_unique<PausibleInputInterface>(
        name_ + ".in" + std::to_string(inputs_.size()), clock_, fifo);
    block_.add_in_port(iface.get());
    inputs_.push_back(std::move(iface));
    return *inputs_.back();
}

FreeOutputInterface& PausibleWrapper::attach_output(
    achan::SelfTimedFifo& fifo, achan::FourPhaseLink::Params p) {
    if (finalized_) {
        throw std::logic_error("PausibleWrapper[" + name_ + "]: attach after finalize");
    }
    auto iface = std::make_unique<FreeOutputInterface>(
        sched_, name_ + ".out" + std::to_string(outputs_.size()), fifo, p);
    block_.add_out_port(iface.get());
    outputs_.push_back(std::move(iface));
    return *outputs_.back();
}

void PausibleWrapper::finalize() {
    if (finalized_) return;
    for (auto& i : inputs_) clock_.add_sink(i.get());
    for (auto& o : outputs_) clock_.add_sink(o.get());
    clock_.add_sink(&block_);
    finalized_ = true;
}

void PausibleWrapper::start() {
    finalize();
    clock_.start();
}

}  // namespace st::baseline
