#include "baselines/two_flop.hpp"

#include <stdexcept>

namespace st::baseline {

TwoFlopInputInterface::TwoFlopInputInterface(std::string name,
                                             achan::SelfTimedFifo& fifo)
    : name_(std::move(name)), fifo_(fifo) {
    fifo_.head_link().bind_sink(this);
}

void TwoFlopInputInterface::accept(Word w) {
    if (latch_valid_) {
        throw std::logic_error("TwoFlopInputInterface[" + name_ + "]: overrun");
    }
    latch_ = w;
    latch_valid_ = true;
}

void TwoFlopInputInterface::sample(std::uint64_t cycle) {
    cycle_ = cycle;
    // The SB sees the word only after valid made it through both
    // synchronizer flops.
    cycle_valid_ = sync2_;
    cycle_word_ = latch_;
    taken_ = false;
}

Word TwoFlopInputInterface::take() {
    if (!cycle_valid_) {
        throw std::logic_error("TwoFlopInputInterface[" + name_ +
                               "]: take without data");
    }
    cycle_valid_ = false;
    taken_ = true;
    ++delivered_;
    if (deliver_probe_) deliver_probe_(cycle_, cycle_word_);
    return cycle_word_;
}

void TwoFlopInputInterface::commit(std::uint64_t) {
    if (taken_) {
        latch_valid_ = false;
        sync1_ = false;
        sync2_ = false;
    } else {
        sync2_ = sync1_;
        sync1_ = latch_valid_;
    }
    fifo_.head_link().poke();
}

FreeOutputInterface::FreeOutputInterface(sim::Scheduler& sched,
                                         std::string name,
                                         achan::SelfTimedFifo& fifo,
                                         achan::FourPhaseLink::Params p)
    : name_(std::move(name)), fifo_(fifo), link_(sched, name_ + ".link", p) {
    link_.bind_sink(&fifo.tail_sink());
    fifo_.attach_tail_link(&link_);
}

void FreeOutputInterface::push(Word w) {
    if (!can_push()) {
        throw std::logic_error("FreeOutputInterface[" + name_ +
                               "]: push while full");
    }
    staged_word_ = w;
    staged_ = true;
    if (send_probe_) send_probe_(cycle_, w);
}

void FreeOutputInterface::commit(std::uint64_t) {
    if (staged_) {
        link_.send(staged_word_);
        staged_ = false;
        ++sent_;
    }
}

TwoFlopWrapper::TwoFlopWrapper(sim::Scheduler& sched, std::string name,
                               clk::StoppableClock::Params clock_params,
                               std::unique_ptr<sb::Kernel> kernel)
    : sched_(sched),
      name_(std::move(name)),
      clock_(sched, name_ + ".clk", clock_params),
      block_(name_ + ".sb", std::move(kernel)) {}

TwoFlopInputInterface& TwoFlopWrapper::attach_input(
    achan::SelfTimedFifo& fifo) {
    if (finalized_) {
        throw std::logic_error("TwoFlopWrapper[" + name_ + "]: attach after finalize");
    }
    auto iface = std::make_unique<TwoFlopInputInterface>(
        name_ + ".in" + std::to_string(inputs_.size()), fifo);
    block_.add_in_port(iface.get());
    inputs_.push_back(std::move(iface));
    return *inputs_.back();
}

FreeOutputInterface& TwoFlopWrapper::attach_output(
    achan::SelfTimedFifo& fifo, achan::FourPhaseLink::Params p) {
    if (finalized_) {
        throw std::logic_error("TwoFlopWrapper[" + name_ + "]: attach after finalize");
    }
    auto iface = std::make_unique<FreeOutputInterface>(
        sched_, name_ + ".out" + std::to_string(outputs_.size()), fifo, p);
    block_.add_out_port(iface.get());
    outputs_.push_back(std::move(iface));
    return *outputs_.back();
}

void TwoFlopWrapper::finalize() {
    if (finalized_) return;
    for (auto& i : inputs_) clock_.add_sink(i.get());
    for (auto& o : outputs_) clock_.add_sink(o.get());
    clock_.add_sink(&block_);
    finalized_ = true;
}

void TwoFlopWrapper::start() {
    finalize();
    clock_.start();
}

}  // namespace st::baseline
