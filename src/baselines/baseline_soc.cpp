#include "baselines/baseline_soc.hpp"

#include <stdexcept>

namespace st::baseline {

BaselineSoc::BaselineSoc(const sys::SocSpec& spec, Kind kind,
                         verify::RunCapture* capture)
    : spec_(spec), kind_(kind) {
    if (capture != nullptr) {
        capture_ = capture;
    } else {
        own_capture_ = std::make_unique<verify::RunCapture>();
        capture_ = own_capture_.get();
    }
    capture_->begin_run();
    capture_->bind_scheduler(&sched_);

    // One capture stream per SB, in spec order (slot == SB index).
    for (const auto& s : spec_.sbs) {
        if (kind_ == Kind::kTwoFlop) {
            two_flop_.push_back(std::make_unique<TwoFlopWrapper>(
                sched_, s.name, s.clock, s.make_kernel()));
        } else {
            PausibleClock::Params pc;
            pc.period = s.clock.base_period * s.clock.divider;
            pc.phase = s.clock.phase;
            pausible_.push_back(std::make_unique<PausibleWrapper>(
                sched_, s.name, pc, s.make_kernel()));
        }
        capture_->add_stream(s.name);
    }

    for (const auto& c : spec_.channels) {
        auto fifo = std::make_unique<achan::SelfTimedFifo>(sched_, c.name, c.fifo);
        verify::RunCapture* cap = capture_;
        const auto record = [cap](std::size_t slot, verify::IoEvent ev) {
            cap->record(slot, ev);
        };
        if (kind_ == Kind::kTwoFlop) {
            auto& out = two_flop_[c.from_sb]->attach_output(*fifo, c.tail_link);
            auto& in = two_flop_[c.to_sb]->attach_input(*fifo);
            const auto out_port = static_cast<std::uint32_t>(
                two_flop_[c.from_sb]->num_outputs() - 1);
            const auto in_port = static_cast<std::uint32_t>(
                two_flop_[c.to_sb]->num_inputs() - 1);
            out.on_send([record, slot = c.from_sb, out_port](
                            std::uint64_t cycle, Word w) {
                record(slot, {cycle, verify::IoEvent::Dir::kOut, out_port, w});
            });
            in.on_deliver([record, slot = c.to_sb, in_port](
                              std::uint64_t cycle, Word w) {
                record(slot, {cycle, verify::IoEvent::Dir::kIn, in_port, w});
            });
        } else {
            auto& out = pausible_[c.from_sb]->attach_output(*fifo, c.tail_link);
            auto& in = pausible_[c.to_sb]->attach_input(*fifo);
            const auto out_port = static_cast<std::uint32_t>(
                pausible_[c.from_sb]->num_outputs() - 1);
            const auto in_port = static_cast<std::uint32_t>(
                pausible_[c.to_sb]->num_inputs() - 1);
            out.on_send([record, slot = c.from_sb, out_port](
                            std::uint64_t cycle, Word w) {
                record(slot, {cycle, verify::IoEvent::Dir::kOut, out_port, w});
            });
            in.on_deliver([record, slot = c.to_sb, in_port](
                              std::uint64_t cycle, Word w) {
                record(slot, {cycle, verify::IoEvent::Dir::kIn, in_port, w});
            });
        }
        fifos_.push_back(std::move(fifo));
    }
}

void BaselineSoc::start() {
    if (started_) return;
    started_ = true;
    for (auto& w : two_flop_) w->start();
    for (auto& w : pausible_) w->start();
}

std::uint64_t BaselineSoc::cycles(std::size_t i) const {
    return kind_ == Kind::kTwoFlop ? two_flop_.at(i)->clock().cycles()
                                   : pausible_.at(i)->clock().cycles();
}

sb::SyncBlock& BaselineSoc::block(std::size_t i) {
    return kind_ == Kind::kTwoFlop ? two_flop_.at(i)->block()
                                   : pausible_.at(i)->block();
}

bool BaselineSoc::run_cycles(std::uint64_t n_cycles, sim::Time deadline) {
    start();
    const auto goal_met = [&] {
        for (std::size_t i = 0; i < num_sbs(); ++i) {
            if (cycles(i) < n_cycles) return false;
        }
        return true;
    };
    while (!goal_met()) {
        if (sched_.stop_requested()) return false;  // cooperative early exit
        if (sched_.quiescent() || sched_.next_event_time() > deadline) {
            return false;
        }
        sched_.step();
    }
    return true;
}

}  // namespace st::baseline
