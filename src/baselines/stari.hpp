#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>

#include "async/self_timed_fifo.hpp"
#include "clock/stoppable_clock.hpp"
#include "sim/scheduler.hpp"

namespace st::baseline {

/// STARI (Self-Timed At Receiver's Input) link, Greenstreet [13]: the
/// paper's deterministic comparator for the performance analysis of §5.
///
/// Transmitter and receiver run from a common-source clock (equal periods,
/// arbitrary skew). The self-timed FIFO between them is initialized roughly
/// half full; the transmitter inserts and the receiver removes exactly one
/// word *every* cycle, so the FIFO absorbs the skew, neither end ever
/// synchronizes, and throughput is one word per cycle — at the price of
/// rigid rate matching (the dataflow-profile constraint synchro-tokens
/// relaxes).
class StariLink {
  public:
    struct Params {
        std::size_t depth = 8;        ///< FIFO depth H (init fill = H/2)
        sim::Time stage_delay = 100;  ///< F
        sim::Time period = 1000;      ///< T (both clocks)
        sim::Time rx_skew = 300;      ///< receiver clock phase offset
        unsigned data_bits = 32;
        /// Cycles before the receiver starts popping (lets the preload plus
        /// skew settle; Greenstreet's chip enforces this with init logic).
        std::uint64_t rx_warmup = 1;
    };

    StariLink(sim::Scheduler& sched, std::string name, Params p);

    StariLink(const StariLink&) = delete;
    StariLink& operator=(const StariLink&) = delete;

    /// Word supplied per transmitter cycle index.
    void set_source(std::function<Word(std::uint64_t)> fn) {
        source_ = std::move(fn);
    }
    /// Consumer of (receiver cycle index, word).
    void set_sink(std::function<void(std::uint64_t, Word)> fn) {
        sink_ = std::move(fn);
    }

    void start();

    // --- measurements ---
    std::uint64_t words_sent() const { return sent_; }
    std::uint64_t words_received() const { return received_; }
    /// Transfer latency (push time -> pop time) averaged over measured words.
    double mean_latency_ps() const {
        return received_measured_ == 0
                   ? 0.0
                   : static_cast<double>(latency_sum_) /
                         static_cast<double>(received_measured_);
    }
    /// Throughput in words per receiver cycle (should be 1.0 steady-state).
    double throughput() const {
        return rx_cycles_ == 0 ? 0.0
                               : static_cast<double>(received_) /
                                     static_cast<double>(rx_cycles_);
    }
    std::uint64_t underflows() const { return underflows_; }
    std::uint64_t overflows() const { return overflows_; }
    const achan::SelfTimedFifo& fifo() const { return fifo_; }

  private:
    class TxSink;
    class RxSink;

    sim::Scheduler& sched_;
    std::string name_;
    Params params_;
    achan::SelfTimedFifo fifo_;
    clk::StoppableClock tx_clk_;
    clk::StoppableClock rx_clk_;
    std::unique_ptr<clk::ClockSink> tx_sink_;
    std::unique_ptr<clk::ClockSink> rx_sink_;

    std::function<Word(std::uint64_t)> source_;
    std::function<void(std::uint64_t, Word)> sink_;
    std::deque<sim::Time> push_times_;  // parallel to in-flight words
    std::uint64_t next_word_index_ = 0;
    std::uint64_t sent_ = 0;
    std::uint64_t received_ = 0;
    std::uint64_t received_measured_ = 0;
    std::uint64_t rx_cycles_ = 0;
    std::uint64_t latency_sum_ = 0;
    std::uint64_t underflows_ = 0;
    std::uint64_t overflows_ = 0;
    bool started_ = false;

    friend class TxSink;
    friend class RxSink;
};

}  // namespace st::baseline
