#include "baselines/stari.hpp"

#include <stdexcept>
#include <vector>

namespace st::baseline {

namespace {
clk::StoppableClock::Params clock_params(sim::Time period, sim::Time phase) {
    clk::StoppableClock::Params p;
    p.base_period = period;
    p.divider = 1;
    p.phase = phase;
    p.restart_delay = 0;  // never stops
    return p;
}
}  // namespace

/// Pushes one word into the FIFO tail every transmitter cycle.
class StariLink::TxSink final : public clk::ClockSink {
  public:
    explicit TxSink(StariLink& link) : link_(link) {}
    void sample(std::uint64_t) override {}
    void commit(std::uint64_t cycle) override {
        auto& l = link_;
        if (!l.fifo_.can_accept()) {
            // STARI guarantees this never happens when rates match; count it
            // so tests can assert the invariant.
            ++l.overflows_;
            return;
        }
        const Word w = l.source_ ? l.source_(l.next_word_index_)
                                 : static_cast<Word>(l.next_word_index_);
        ++l.next_word_index_;
        l.push_times_.push_back(l.sched_.now());
        l.fifo_.accept(w);
        ++l.sent_;
        (void)cycle;
    }

  private:
    StariLink& link_;
};

/// Pops one word from the FIFO head every receiver cycle (after warmup).
class StariLink::RxSink final : public clk::ClockSink {
  public:
    explicit RxSink(StariLink& link) : link_(link) {}
    void sample(std::uint64_t) override {}
    void commit(std::uint64_t cycle) override {
        auto& l = link_;
        ++l.rx_cycles_;
        if (cycle < l.params_.rx_warmup) return;
        if (!l.fifo_.head_valid()) {
            ++l.underflows_;
            return;
        }
        const Word w = l.fifo_.pop_head();
        ++l.received_;
        if (!l.push_times_.empty()) {
            // Preloaded words carry no timestamp: push_times_ only tracks
            // words inserted by the transmitter, and preloaded words drain
            // first, so skip measurement until the queue aligns.
            if (l.received_ > l.params_.depth / 2) {
                l.latency_sum_ += l.sched_.now() - l.push_times_.front();
                l.push_times_.pop_front();
                ++l.received_measured_;
            }
        }
        if (l.sink_) l.sink_(cycle, w);
    }

  private:
    StariLink& link_;
};

StariLink::StariLink(sim::Scheduler& sched, std::string name, Params p)
    : sched_(sched),
      name_(std::move(name)),
      params_(p),
      fifo_(sched, name_ + ".fifo",
            achan::SelfTimedFifo::Params{p.depth, p.stage_delay, p.data_bits,
                                         20, 20}),
      tx_clk_(sched, name_ + ".txclk", clock_params(p.period, 0)),
      rx_clk_(sched, name_ + ".rxclk", clock_params(p.period, p.rx_skew)) {
    if (params_.depth < 2) {
        throw std::invalid_argument("StariLink: depth must be >= 2");
    }
    tx_sink_ = std::make_unique<TxSink>(*this);
    rx_sink_ = std::make_unique<RxSink>(*this);
    tx_clk_.add_sink(tx_sink_.get());
    rx_clk_.add_sink(rx_sink_.get());
}

void StariLink::start() {
    if (started_) return;
    started_ = true;
    // Initialize the FIFO roughly half full (with the first source words, so
    // the received stream is seamless).
    std::vector<Word> init;
    const std::size_t fill = params_.depth / 2;
    for (std::size_t i = 0; i < fill; ++i) {
        init.push_back(source_ ? source_(next_word_index_)
                               : static_cast<Word>(next_word_index_));
        ++next_word_index_;
    }
    fifo_.preload(init);
    tx_clk_.start();
    rx_clk_.start();
}

}  // namespace st::baseline
