#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "async/four_phase.hpp"
#include "async/self_timed_fifo.hpp"
#include "clock/stoppable_clock.hpp"
#include "sb/kernel.hpp"
#include "sb/sync_block.hpp"
#include "sim/scheduler.hpp"

namespace st::baseline {

/// Input interface of the classic nondeterministic GALS wrapper: the FIFO
/// head word is latched whenever the latch is free (no token gating) and its
/// *valid* flag crosses into the clock domain through a two-flip-flop
/// synchronizer. Which local cycle first sees the word therefore depends on
/// the analog arrival time relative to the clock edge — the canonical
/// nondeterminism the paper eliminates. (Metastability itself is not
/// simulated; as §1 notes, lack of metastability does not imply determinism,
/// and the cycle-assignment sensitivity alone breaks trace uniqueness.)
class TwoFlopInputInterface final : public clk::ClockSink,
                                    public achan::LinkSink,
                                    public sb::InPortIf {
  public:
    TwoFlopInputInterface(std::string name, achan::SelfTimedFifo& fifo);

    // --- LinkSink (async side) ---
    bool can_accept() const override { return !latch_valid_; }
    void accept(Word w) override;

    // --- InPortIf (SB side) ---
    bool has_data() const override { return cycle_valid_; }
    Word peek() const override { return cycle_word_; }
    Word take() override;

    // --- ClockSink ---
    void sample(std::uint64_t cycle) override;
    void commit(std::uint64_t cycle) override;

    void on_deliver(std::function<void(std::uint64_t, Word)> fn) {
        deliver_probe_ = std::move(fn);
    }
    std::uint64_t words_delivered() const { return delivered_; }
    const std::string& name() const { return name_; }

  private:
    std::string name_;
    achan::SelfTimedFifo& fifo_;

    Word latch_ = 0;
    bool latch_valid_ = false;  // asynchronous domain
    bool sync1_ = false;        // synchronizer flop 1
    bool sync2_ = false;        // synchronizer flop 2

    Word cycle_word_ = 0;
    bool cycle_valid_ = false;
    bool taken_ = false;
    std::uint64_t cycle_ = 0;
    std::uint64_t delivered_ = 0;
    std::function<void(std::uint64_t, Word)> deliver_probe_;
};

/// Output interface of the baseline wrapper: ungated, pushes whenever the
/// link is idle.
class FreeOutputInterface final : public clk::ClockSink, public sb::OutPortIf {
  public:
    FreeOutputInterface(sim::Scheduler& sched, std::string name,
                        achan::SelfTimedFifo& fifo,
                        achan::FourPhaseLink::Params link_params);

    bool can_push() const override { return link_.idle() && !staged_; }
    void push(Word w) override;

    void sample(std::uint64_t cycle) override { cycle_ = cycle; }
    void commit(std::uint64_t cycle) override;

    void on_send(std::function<void(std::uint64_t, Word)> fn) {
        send_probe_ = std::move(fn);
    }
    std::uint64_t words_sent() const { return sent_; }
    const std::string& name() const { return name_; }

  private:
    std::string name_;
    achan::SelfTimedFifo& fifo_;
    achan::FourPhaseLink link_;
    Word staged_word_ = 0;
    bool staged_ = false;
    std::uint64_t cycle_ = 0;
    std::uint64_t sent_ = 0;
    std::function<void(std::uint64_t, Word)> send_probe_;
};

/// A GALS wrapper with no synchro-tokens control: free-running local clock,
/// always-enabled interfaces, two-flop input synchronizers. This is the
/// paper's §5 control experiment ("when the synchro-tokens control logic was
/// bypassed by forcing the interfaces and local clocks always to be enabled,
/// the data sequences were observed to be nondeterministic").
class TwoFlopWrapper {
  public:
    TwoFlopWrapper(sim::Scheduler& sched, std::string name,
                   clk::StoppableClock::Params clock_params,
                   std::unique_ptr<sb::Kernel> kernel);

    TwoFlopWrapper(const TwoFlopWrapper&) = delete;
    TwoFlopWrapper& operator=(const TwoFlopWrapper&) = delete;

    TwoFlopInputInterface& attach_input(achan::SelfTimedFifo& fifo);
    FreeOutputInterface& attach_output(achan::SelfTimedFifo& fifo,
                                       achan::FourPhaseLink::Params p);

    void finalize();
    void start();

    sb::SyncBlock& block() { return block_; }
    clk::StoppableClock& clock() { return clock_; }
    const std::string& name() const { return name_; }
    std::size_t num_inputs() const { return inputs_.size(); }
    TwoFlopInputInterface& input(std::size_t i) { return *inputs_.at(i); }
    std::size_t num_outputs() const { return outputs_.size(); }
    FreeOutputInterface& output(std::size_t i) { return *outputs_.at(i); }

  private:
    sim::Scheduler& sched_;
    std::string name_;
    clk::StoppableClock clock_;
    sb::SyncBlock block_;
    std::vector<std::unique_ptr<TwoFlopInputInterface>> inputs_;
    std::vector<std::unique_ptr<FreeOutputInterface>> outputs_;
    bool finalized_ = false;
};

}  // namespace st::baseline
