#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "async/four_phase.hpp"
#include "async/self_timed_fifo.hpp"
#include "baselines/two_flop.hpp"
#include "clock/clock_sink.hpp"
#include "sb/kernel.hpp"
#include "sb/sync_block.hpp"
#include "sim/scheduler.hpp"

namespace st::baseline {

/// Pausible (stretchable) local clock: an arbiter between asynchronous
/// requests and the ring oscillator (Yun & Dooply [9], Muttersbach [10]).
///
/// A request that lands inside the `guard_window` before the next scheduled
/// edge wins the arbitration and *postpones* that edge by `pause_delay` —
/// metastability-safe, but the number of cycles elapsed by a given absolute
/// time (and hence which cycle first samples a given word) depends on the
/// analog request arrival times: nondeterministic across delay perturbations.
class PausibleClock {
  public:
    struct Params {
        sim::Time period = 1000;
        sim::Time phase = 0;
        sim::Time guard_window = 150;  ///< arbitration window before an edge
        sim::Time pause_delay = 200;   ///< stretch applied when a req wins
    };

    PausibleClock(sim::Scheduler& sched, std::string name, Params p);

    PausibleClock(const PausibleClock&) = delete;
    PausibleClock& operator=(const PausibleClock&) = delete;

    void add_sink(clk::ClockSink* sink) { sinks_.push_back(sink); }
    void start();

    /// Asynchronous request arbitration: possibly stretches the next edge.
    void request();

    std::uint64_t cycles() const { return cycles_; }
    std::uint64_t pauses() const { return pauses_; }
    const std::string& name() const { return name_; }

  private:
    void schedule_edge(sim::Time t);
    void edge(std::uint64_t generation);

    sim::Scheduler& sched_;
    std::string name_;
    Params params_;
    std::vector<clk::ClockSink*> sinks_;
    std::uint64_t cycles_ = 0;
    std::uint64_t pauses_ = 0;
    std::uint64_t generation_ = 0;  ///< stale-edge cancellation
    sim::Time next_edge_ = 0;
    bool started_ = false;
};

/// Input interface of the pausible-clock wrapper: accepting a word pauses
/// the clock if the handshake lands near an edge; the word is visible at the
/// next edge (no synchronizer flops needed — that is the scheme's selling
/// point; determinism is what it gives up).
class PausibleInputInterface final : public clk::ClockSink,
                                     public achan::LinkSink,
                                     public sb::InPortIf {
  public:
    PausibleInputInterface(std::string name, PausibleClock& clock,
                           achan::SelfTimedFifo& fifo);

    bool can_accept() const override { return !latch_valid_; }
    void accept(Word w) override;

    bool has_data() const override { return cycle_valid_; }
    Word peek() const override { return cycle_word_; }
    Word take() override;

    void sample(std::uint64_t cycle) override;
    void commit(std::uint64_t cycle) override;

    void on_deliver(std::function<void(std::uint64_t, Word)> fn) {
        deliver_probe_ = std::move(fn);
    }
    std::uint64_t words_delivered() const { return delivered_; }

  private:
    std::string name_;
    PausibleClock& clock_;
    achan::SelfTimedFifo& fifo_;
    Word latch_ = 0;
    bool latch_valid_ = false;
    Word cycle_word_ = 0;
    bool cycle_valid_ = false;
    bool taken_ = false;
    std::uint64_t cycle_ = 0;
    std::uint64_t delivered_ = 0;
    std::function<void(std::uint64_t, Word)> deliver_probe_;
};

/// GALS wrapper built on a pausible clock (second nondeterministic baseline).
class PausibleWrapper {
  public:
    PausibleWrapper(sim::Scheduler& sched, std::string name,
                    PausibleClock::Params clock_params,
                    std::unique_ptr<sb::Kernel> kernel);

    PausibleWrapper(const PausibleWrapper&) = delete;
    PausibleWrapper& operator=(const PausibleWrapper&) = delete;

    PausibleInputInterface& attach_input(achan::SelfTimedFifo& fifo);
    /// Output side reuses the ungated FreeOutputInterface since production
    /// needs no arbitration.
    FreeOutputInterface& attach_output(achan::SelfTimedFifo& fifo,
                                       achan::FourPhaseLink::Params p);

    void finalize();
    void start();

    sb::SyncBlock& block() { return block_; }
    PausibleClock& clock() { return clock_; }
    const std::string& name() const { return name_; }
    std::size_t num_inputs() const { return inputs_.size(); }
    PausibleInputInterface& input(std::size_t i) { return *inputs_.at(i); }
    std::size_t num_outputs() const { return outputs_.size(); }
    FreeOutputInterface& output(std::size_t i) { return *outputs_.at(i); }

  private:
    sim::Scheduler& sched_;
    std::string name_;
    PausibleClock clock_;
    sb::SyncBlock block_;
    std::vector<std::unique_ptr<PausibleInputInterface>> inputs_;
    std::vector<std::unique_ptr<FreeOutputInterface>> outputs_;
    bool finalized_ = false;
};

}  // namespace st::baseline
