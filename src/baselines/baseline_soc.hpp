#pragma once

#include <memory>
#include <vector>

#include "baselines/pausible.hpp"
#include "baselines/two_flop.hpp"
#include "system/spec.hpp"
#include "verify/io_trace.hpp"
#include "verify/trace_arena.hpp"

namespace st::baseline {

/// Elaborates the *same* SocSpec as sys::Soc but with the synchro-tokens
/// control logic bypassed: no token rings, free-running (or pausible) local
/// clocks, always-enabled interfaces. This is the control arm of the paper's
/// determinism experiment — identical kernels, identical channels, identical
/// perturbations, nondeterministic traces.
class BaselineSoc {
  public:
    enum class Kind {
        kTwoFlop,   ///< two-flip-flop synchronizers on channel inputs
        kPausible,  ///< pausible-clock arbitration on channel inputs
    };

    /// As with sys::Soc, a caller may lend a verify::RunCapture so sweep
    /// workers reuse arena storage (and stream to an attached checker — the
    /// baselines are the divergent-heavy arm of the determinism experiment,
    /// where the checker's early exit pays the most).
    BaselineSoc(const sys::SocSpec& spec, Kind kind,
                verify::RunCapture* capture = nullptr);

    BaselineSoc(const BaselineSoc&) = delete;
    BaselineSoc& operator=(const BaselineSoc&) = delete;

    void start();

    /// Run until every SB has executed `n_cycles` local cycles (baseline
    /// clocks never stop, so only the deadline can prevent completion).
    bool run_cycles(std::uint64_t n_cycles, sim::Time deadline);

    sim::Scheduler& scheduler() { return sched_; }
    std::size_t num_sbs() const { return spec_.sbs.size(); }
    sb::SyncBlock& block(std::size_t i);
    std::uint64_t cycles(std::size_t i) const;

    verify::TraceSet traces() const { return capture_->traces(); }

    verify::RunCapture& capture() { return *capture_; }

  private:
    sys::SocSpec spec_;
    Kind kind_;
    sim::Scheduler sched_;
    std::vector<std::unique_ptr<TwoFlopWrapper>> two_flop_;
    std::vector<std::unique_ptr<PausibleWrapper>> pausible_;
    std::vector<std::unique_ptr<achan::SelfTimedFifo>> fifos_;
    std::unique_ptr<verify::RunCapture> own_capture_;
    verify::RunCapture* capture_ = nullptr;
    bool started_ = false;
};

}  // namespace st::baseline
