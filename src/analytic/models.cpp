#include "analytic/models.hpp"

namespace st::model {

double stari_latency(double t_period, double f_stage, double h_depth) {
    return f_stage * h_depth / 2.0 + t_period * h_depth / 2.0;
}

double synchro_latency(double t_period, double f_stage, double h_hold,
                       double r_recycle) {
    return t_period * (r_recycle + h_hold + 1.0) / 2.0 + f_stage * h_hold +
           t_period * (h_hold + 1.0) / 2.0;
}

double synchro_throughput(double h_hold, double r_recycle) {
    return h_hold / (h_hold + r_recycle);
}

double widening_factor(double h_hold, double r_recycle) {
    return (h_hold + r_recycle) / h_hold;
}

std::uint32_t min_recycle(sim::Time t_local, sim::Time t_peer,
                          std::uint32_t hold_peer, sim::Time d_ab,
                          sim::Time d_ba) {
    const sim::Time away =
        d_ab + d_ba + static_cast<sim::Time>(hold_peer + 1) * t_peer;
    // Smallest R with R * t_local >= away.
    return static_cast<std::uint32_t>((away + t_local - 1) / t_local);
}

}  // namespace st::model
