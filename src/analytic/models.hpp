#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace st::model {

/// Closed-form performance models from the paper's §5, with T = clock period,
/// F = FIFO stage propagation delay, H = hold register value = FIFO depth,
/// R = recycle register value. All times in picoseconds, returned as double
/// picoseconds (the equations divide by 2).

/// Eq. (1): latency of a STARI FIFO kept roughly half full —
/// L_STARI = F*H/2 + T*H/2.
double stari_latency(double t_period, double f_stage, double h_depth);

/// Eq. (2): latency of the synchro-tokens FIFO, repeatedly filled by the
/// transmitter and emptied by the receiver —
/// L_SYNCHRO = T*(R+H+1)/2 + F*H + T*(H+1)/2.
double synchro_latency(double t_period, double f_stage, double h_hold,
                       double r_recycle);

/// Throughput upper bound of the synchro-tokens channel, in words per local
/// clock cycle: H/(H+R). (STARI's is 1 word per cycle.)
double synchro_throughput(double h_hold, double r_recycle);

/// Channel-widening factor (H+R)/H needed for synchro-tokens to match the
/// STARI throughput (the paper's area/performance trade-off).
double widening_factor(double h_hold, double r_recycle);

/// Smallest recycle register value that keeps the local clock from stopping
/// due to a late token on a two-node ring, given the peer's hold time and
/// the two token wire delays. Derived from the schedule analysis in
/// DESIGN.md §5/§6: the token is away for D_ab + (H_peer+1)*T_peer + D_ba in
/// the worst alignment.
std::uint32_t min_recycle(sim::Time t_local, sim::Time t_peer,
                          std::uint32_t hold_peer, sim::Time d_ab,
                          sim::Time d_ba);

}  // namespace st::model
