#include "deadlock/rules.hpp"

#include <algorithm>
#include <sstream>

namespace st::dl {

namespace {

sim::Time effective_period(const sys::SbSpec& sb) {
    return sb.clock.base_period * sb.clock.divider;
}

struct NodeView {
    std::size_t ring = 0;
    std::size_t sb = 0;        // SB hosting this node
    std::size_t peer_sb = 0;   // SB hosting the ring's other node
    sim::Time provisioned = 0;  // R * T_local
    sim::Time away_nominal = 0; // round trip + peer hold + alignment
};

}  // namespace

RuleReport check_rules(const sys::SocSpec& spec) {
    RuleReport report;
    report.stall_bound.assign(spec.sbs.size(), 0);

    std::vector<NodeView> nodes;
    for (std::size_t r = 0; r < spec.rings.size(); ++r) {
        const auto& ring = spec.rings[r];
        const sim::Time t_a = effective_period(spec.sbs[ring.sb_a]);
        const sim::Time t_b = effective_period(spec.sbs[ring.sb_b]);
        const sim::Time round_trip = ring.delay_ab + ring.delay_ba;

        NodeView a;
        a.ring = r;
        a.sb = ring.sb_a;
        a.peer_sb = ring.sb_b;
        a.provisioned = static_cast<sim::Time>(ring.node_a.recycle) * t_a;
        a.away_nominal =
            round_trip + static_cast<sim::Time>(ring.node_b.hold + 1) * t_b;
        nodes.push_back(a);

        NodeView b;
        b.ring = r;
        b.sb = ring.sb_b;
        b.peer_sb = ring.sb_a;
        b.provisioned = static_cast<sim::Time>(ring.node_b.recycle) * t_b;
        b.away_nominal =
            round_trip + static_cast<sim::Time>(ring.node_a.hold + 1) * t_a;
        nodes.push_back(b);
    }

    // Multi-rings (token buses): from each member's view the token is away
    // for the full hop circumference plus every other member's hold (and one
    // alignment cycle each). The transitive peer is modelled as the
    // worst-stalled other member.
    for (std::size_t r = 0; r < spec.multi_rings.size(); ++r) {
        const auto& mr = spec.multi_rings[r];
        sim::Time hops_total = 0;
        for (const auto& m : mr.members) hops_total += m.hop_delay;
        for (std::size_t i = 0; i < mr.members.size(); ++i) {
            const auto& me = mr.members[i];
            const sim::Time t_local = effective_period(spec.sbs[me.sb]);
            sim::Time others = 0;
            for (std::size_t j = 0; j < mr.members.size(); ++j) {
                if (j == i) continue;
                const auto& other = mr.members[j];
                others += static_cast<sim::Time>(other.node.hold + 1) *
                          effective_period(spec.sbs[other.sb]);
            }
            // One NodeView per (member, other-member) pair so the fixpoint
            // can propagate stalls from any co-member's SB.
            for (std::size_t j = 0; j < mr.members.size(); ++j) {
                if (j == i) continue;
                NodeView v;
                v.ring = spec.rings.size() + r;  // distinct ring id space
                v.sb = me.sb;
                v.peer_sb = mr.members[j].sb;
                v.provisioned =
                    static_cast<sim::Time>(me.node.recycle) * t_local;
                v.away_nominal = hops_total + others;
                nodes.push_back(v);
            }
        }
    }

    // Per-node fixpoint:
    //   stall(n) = max(0, away(n) + cross(n) - provisioned(n))
    //   cross(n) = max stall(m) over nodes m in n's *peer* SB on rings
    //              OTHER than n's own ring.
    // Excluding n's own ring is essential: a node waiting on ring r cannot
    // delay ring r's token (it just passed it), so a single-ring pair can
    // never deadlock. Divergence of the fixpoint means a genuine cyclic
    // chain of under-provisioned rings (deadlock risk).
    const std::size_t max_iters = (spec.sbs.size() + 2) * (nodes.size() + 2);
    std::vector<sim::Time> stall(nodes.size(), 0);
    bool diverged = false;
    for (std::size_t iter = 0;; ++iter) {
        bool changed = false;
        for (std::size_t i = 0; i < nodes.size(); ++i) {
            const auto& n = nodes[i];
            sim::Time cross = 0;
            for (std::size_t j = 0; j < nodes.size(); ++j) {
                if (nodes[j].sb == n.peer_sb && nodes[j].ring != n.ring) {
                    cross = std::max(cross, stall[j]);
                }
            }
            const sim::Time pressure = n.away_nominal + cross;
            const sim::Time s =
                pressure > n.provisioned ? pressure - n.provisioned : 0;
            if (s > stall[i]) {
                stall[i] = s;
                changed = true;
            }
        }
        if (!changed) break;
        if (iter >= max_iters) {
            diverged = true;
            break;
        }
    }

    if (diverged) {
        report.ok = false;
        report.violations.push_back(
            "cyclic chain of under-provisioned recycle registers: stall "
            "bounds diverge (deadlock possible)");
    }
    report.stall_bound.assign(spec.sbs.size(), 0);
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        report.stall_bound[nodes[i].sb] =
            std::max(report.stall_bound[nodes[i].sb], stall[i]);
    }

    // Per-node report: rings whose recycle provisioning cannot even cover
    // the nominal token round trip are flagged individually (they stall the
    // clock routinely; combined with a cycle they deadlock).
    for (const auto& n : nodes) {
        if (n.provisioned < n.away_nominal) {
            std::ostringstream os;
            os << "ring '" << spec.rings[n.ring].name << "' node in SB '"
               << spec.sbs[n.sb].name << "': provisioned wait "
               << sim::format_time(n.provisioned)
               << " < nominal token absence "
               << sim::format_time(n.away_nominal)
               << " (late tokens guaranteed; verify transitive slack)";
            report.violations.push_back(os.str());
        }
    }
    return report;
}

std::string RuleReport::summary() const {
    std::ostringstream os;
    os << (ok ? "OK" : "DEADLOCK RISK") << "; " << violations.size()
       << " advisories";
    for (const auto& v : violations) os << "\n  - " << v;
    return os.str();
}

}  // namespace st::dl
