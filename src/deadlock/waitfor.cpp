#include "deadlock/waitfor.hpp"

#include <map>
#include <sstream>

namespace st::dl {

namespace {

/// Which SB currently hosts the token of ring r (the holder side, or the
/// side that will next hold it)? With the system quiescent no token is in
/// flight, so it is parked in exactly one node.
std::size_t token_home(sys::Soc& soc, std::size_t r) {
    const auto& ring_spec = soc.spec().rings[r];
    const auto& node_a = soc.ring_node(r, ring_spec.sb_a);
    if (node_a.token_here() ||
        node_a.phase() == core::TokenNode::Phase::kHolding) {
        return ring_spec.sb_a;
    }
    return ring_spec.sb_b;
}

}  // namespace

Diagnosis diagnose(sys::Soc& soc) {
    Diagnosis d;
    if (!soc.scheduler().quiescent()) return d;

    // wait edge: SB s -> SB that holds the token s's waiting node needs.
    std::map<std::size_t, std::size_t> waits_on;
    std::map<std::size_t, std::size_t> via_ring;
    for (std::size_t r = 0; r < soc.num_rings(); ++r) {
        const auto& ring_spec = soc.spec().rings[r];
        for (const std::size_t s : {ring_spec.sb_a, ring_spec.sb_b}) {
            const auto& node = soc.ring_node(r, s);
            if (node.waiting()) {
                waits_on[s] = token_home(soc, r);
                via_ring[s] = r;
            }
        }
    }
    if (waits_on.empty()) return d;

    // Find a cycle by walking the wait edges from any waiting SB.
    std::size_t cur = waits_on.begin()->first;
    std::map<std::size_t, int> visit_order;
    int step = 0;
    while (true) {
        const auto it = waits_on.find(cur);
        if (it == waits_on.end()) {
            // The chain bottoms out at an SB that is not itself waiting —
            // but quiescence means nothing will ever unblock it: this is
            // still a terminal stall. Report it as a (degenerate) deadlock
            // with the chain as evidence.
            break;
        }
        if (visit_order.count(cur)) break;  // found a cycle
        visit_order[cur] = step++;
        cur = it->second;
    }

    d.deadlocked = true;
    // Reconstruct the walked chain in order.
    std::vector<std::size_t> chain(visit_order.size());
    for (const auto& [sb, ord] : visit_order) {
        chain[static_cast<std::size_t>(ord)] = sb;
    }
    for (const std::size_t sb : chain) {
        d.cycle.push_back(soc.wrapper(sb).name());
        const auto it = waits_on.find(sb);
        if (it != waits_on.end()) {
            std::ostringstream os;
            os << soc.wrapper(sb).name() << " waits on ring '"
               << soc.spec().rings[via_ring[sb]].name << "' whose token is in "
               << soc.wrapper(it->second).name();
            d.edges.push_back(os.str());
        }
    }
    return d;
}

std::string Diagnosis::summary() const {
    if (!deadlocked) return "no deadlock";
    std::ostringstream os;
    os << "DEADLOCK over " << cycle.size() << " SBs:";
    for (const auto& e : edges) os << "\n  " << e;
    return os.str();
}

}  // namespace st::dl
