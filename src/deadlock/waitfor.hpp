#pragma once

#include <string>
#include <vector>

#include "system/soc.hpp"

namespace st::dl {

/// Runtime deadlock diagnosis over a quiescent Soc.
///
/// A synchro-tokens system deadlocks when SBs form a cycle: each has stopped
/// its clock waiting for a token currently held (and never passable) inside
/// another stopped SB. The simulator makes detection exact: when the event
/// queue drains while clocks are stopped, the system can never progress.
struct Diagnosis {
    bool deadlocked = false;
    /// Wrapper names on the cyclic wait (empty when not deadlocked).
    std::vector<std::string> cycle;
    /// Human-readable per-edge description ("alpha waits on ring_x held by beta").
    std::vector<std::string> edges;

    std::string summary() const;
};

/// Analyze a Soc. Call when soc.scheduler().quiescent(); a non-quiescent
/// system is reported as not deadlocked.
Diagnosis diagnose(sys::Soc& soc);

}  // namespace st::dl
