#pragma once

#include <string>
#include <vector>

#include "system/spec.hpp"

namespace st::dl {

/// Result of the static deadlock-rule check.
struct RuleReport {
    bool ok = true;
    std::vector<std::string> violations;
    /// Worst-case transitive stall bound per SB (ps); meaningful when ok.
    std::vector<sim::Time> stall_bound;

    std::string summary() const;
};

/// Static deadlock-preventing design rules for hold/recycle register values
/// (the paper formally derives such rules but leaves them out of scope;
/// DESIGN.md §6 documents this derivation).
///
/// Model: node n on ring r in SB s provisions `R_n * T_s` of wait after
/// passing the token. The token is away for the wire round trip plus the
/// peer's hold phase plus up to one peer cycle of recycle alignment — and,
/// transitively, plus any stall the *peer SB* suffers from its other rings.
/// We compute a fixpoint of per-SB stall bounds; if it diverges there is a
/// cyclic chain of under-provisioned rings that can deadlock.
RuleReport check_rules(const sys::SocSpec& spec);

}  // namespace st::dl
