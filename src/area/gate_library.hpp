#pragma once

#include <map>
#include <string>

namespace st::area {

/// Standard-cell library characterized in *average-2-input-gate
/// equivalents*, the unit the paper's Table 1 uses ("using the average area
/// of the library's 2-input gates as the unit of measurement").
///
/// The paper measured a 0.25 µm MOSIS/TSMC library [15]; that layout data is
/// not available, so the equivalents below are re-derived from typical
/// relative cell sizes of 4-metal 0.25 µm standard-cell libraries. The
/// *structure* of the resulting models (a constant control term plus a
/// per-data-bit term, and a fixed node cost) is what the reproduction
/// targets; DESIGN.md §2 records this substitution.
class GateLibrary {
  public:
    GateLibrary();

    /// Area of one cell instance, in 2-input-gate equivalents.
    double gate_eq(const std::string& cell) const;

    bool has_cell(const std::string& cell) const {
        return cells_.count(cell) != 0;
    }

    const std::map<std::string, double>& cells() const { return cells_; }

  private:
    std::map<std::string, double> cells_;
};

/// A flat gate-level netlist: cell name -> instance count.
class Netlist {
  public:
    void add(const std::string& cell, int count = 1) { counts_[cell] += count; }
    void add(const Netlist& other);

    double total_gate_eq(const GateLibrary& lib) const;
    int instances() const;
    const std::map<std::string, int>& counts() const { return counts_; }

  private:
    std::map<std::string, int> counts_;
};

}  // namespace st::area
