#include "area/area_model.hpp"

#include <cstdio>

namespace st::area {

Netlist input_interface_netlist(unsigned data_bits) {
    Netlist n;
    // Per-bit holding latch with enable (the word register the SB reads).
    n.add("DFFE", static_cast<int>(data_bits));
    // Handshake control: req/ack FSM (2 state flops), sb_en gating, valid /
    // empty generation, latch-full flag.
    n.add("DFF", 3);
    n.add("CEL2", 1);
    n.add("NAND2", 4);
    n.add("INV", 3);
    n.add("AND2", 2);
    return n;
}

Netlist output_interface_netlist(unsigned data_bits) {
    Netlist n;
    // Per-bit staging register driving the bundled-data wires.
    n.add("DFF", static_cast<int>(data_bits));
    // Request generation, full/valid logic, completion detection.
    n.add("DFF", 3);
    n.add("CEL2", 1);
    n.add("NAND2", 4);
    n.add("INV", 3);
    n.add("AND2", 2);
    return n;
}

Netlist fifo_stage_netlist(unsigned data_bits) {
    Netlist n;
    // Per-bit transparent latch.
    n.add("DLATCH", static_cast<int>(data_bits));
    // Muller-pipeline latch controller.
    n.add("CEL2", 1);
    n.add("INV", 2);
    n.add("NAND2", 1);
    return n;
}

Netlist node_netlist() {
    Netlist n;
    // Two 8-bit decrementing counters (hold, recycle): enable flops with
    // parallel preset, decrement logic, ripple borrow chain, zero detection.
    for (int counter = 0; counter < 2; ++counter) {
        n.add("DFFE", 8);  // counter bits (enable doubles as preset path)
        n.add("XOR2", 8);  // decrement
        n.add("AND2", 7);  // borrow chain
        n.add("NOR2", 2);  // zero-detect tree
    }
    // Token latch, phase and clken registers, arrival edge detector,
    // pass-pulse generation and glue (sb_en decodes combinationally).
    n.add("DLATCH", 1);
    n.add("DFF", 2);
    n.add("XOR2", 1);
    n.add("NAND2", 2);
    n.add("INV", 2);
    return n;
}

namespace {
LinearModel fit_linear(double a8, double a16) {
    LinearModel m;
    m.per_bit = (a16 - a8) / 8.0;
    m.base = a8 - m.per_bit * 8.0;
    return m;
}
}  // namespace

LinearModel fit_interface_model(const GateLibrary& lib) {
    const auto at = [&](unsigned bits) {
        return (input_interface_netlist(bits).total_gate_eq(lib) +
                output_interface_netlist(bits).total_gate_eq(lib)) /
               2.0;
    };
    return fit_linear(at(8), at(16));
}

LinearModel fit_stage_model(const GateLibrary& lib) {
    const auto at = [&](unsigned bits) {
        return fifo_stage_netlist(bits).total_gate_eq(lib);
    };
    return fit_linear(at(8), at(16));
}

double node_area(const GateLibrary& lib) {
    return node_netlist().total_gate_eq(lib);
}

Table1 make_table1(const GateLibrary& lib) {
    Table1 t;
    t.fifo_interface = fit_interface_model(lib);
    t.fifo_stage = fit_stage_model(lib);
    t.node = node_area(lib);
    return t;
}

std::string Table1::to_string() const {
    char buf[512];
    std::snprintf(
        buf, sizeof buf,
        "Component        | Area (2-input gates)\n"
        "-----------------+---------------------------\n"
        "FIFO interface   | %.1f + %.2f * (number of data bits)\n"
        "FIFO stage       | %.1f + %.2f * (number of data bits)\n"
        "Node             | %.0f\n",
        fifo_interface.base, fifo_interface.per_bit, fifo_stage.base,
        fifo_stage.per_bit, node);
    return buf;
}

SystemOverhead system_overhead(const sys::SocSpec& spec,
                               const GateLibrary& lib) {
    SystemOverhead o;
    o.nodes = 2.0 * static_cast<double>(spec.rings.size()) * node_area(lib);
    for (const auto& c : spec.channels) {
        o.interfaces += input_interface_netlist(c.fifo.data_bits)
                            .total_gate_eq(lib);
        o.interfaces += output_interface_netlist(c.fifo.data_bits)
                            .total_gate_eq(lib);
        o.fifo_stages += static_cast<double>(c.fifo.depth) *
                         fifo_stage_netlist(c.fifo.data_bits)
                             .total_gate_eq(lib);
    }
    return o;
}

}  // namespace st::area
