#include "area/gate_library.hpp"

#include <stdexcept>

namespace st::area {

GateLibrary::GateLibrary() {
    // Relative sizes in units of the average 2-input gate (NAND2/NOR2 ~ 1.0).
    cells_ = {
        {"INV", 0.6},     //
        {"NAND2", 1.0},   //
        {"NOR2", 1.0},    //
        {"AND2", 1.2},    //
        {"OR2", 1.2},     //
        {"XOR2", 1.6},    //
        {"AOI22", 1.4},   //
        {"MUX2", 1.8},    //
        {"DFF", 4.5},     // D flip-flop with reset
        {"DFFE", 5.2},    // D flip-flop with enable
        {"DLATCH", 2.5},  // transparent latch
        {"CEL2", 2.9},    // 2-input Muller C-element (async control)
        {"MUTEX", 3.4},   // mutual-exclusion element (baselines only)
    };
}

double GateLibrary::gate_eq(const std::string& cell) const {
    const auto it = cells_.find(cell);
    if (it == cells_.end()) {
        throw std::invalid_argument("GateLibrary: unknown cell '" + cell + "'");
    }
    return it->second;
}

void Netlist::add(const Netlist& other) {
    for (const auto& [cell, n] : other.counts()) counts_[cell] += n;
}

double Netlist::total_gate_eq(const GateLibrary& lib) const {
    double total = 0.0;
    for (const auto& [cell, n] : counts_) total += lib.gate_eq(cell) * n;
    return total;
}

int Netlist::instances() const {
    int total = 0;
    for (const auto& [cell, n] : counts_) total += n;
    return total;
}

}  // namespace st::area
