#pragma once

#include <string>

#include "area/gate_library.hpp"
#include "system/spec.hpp"

namespace st::area {

/// Gate-level netlist of one synchro-tokens input FIFO interface
/// (latch + handshake control) for `data_bits`-wide channels.
Netlist input_interface_netlist(unsigned data_bits);

/// Gate-level netlist of one output FIFO interface (staging register,
/// request generation, full/valid logic).
Netlist output_interface_netlist(unsigned data_bits);

/// Gate-level netlist of one self-timed FIFO stage (per-bit latch plus
/// C-element latch controller).
Netlist fifo_stage_netlist(unsigned data_bits);

/// Gate-level netlist of one token-ring node: hold and recycle counters
/// (8-bit, parallel-loadable), token latch, phase/sb_en/clken registers and
/// glue. The paper reports this as a data-width-independent 145 2-input-gate
/// equivalents.
Netlist node_netlist();

/// Linear area model A(bits) = base + per_bit * bits, the shape of the
/// paper's Table 1 rows.
struct LinearModel {
    double base = 0.0;
    double per_bit = 0.0;

    double at(unsigned bits) const { return base + per_bit * bits; }
};

/// Fit the (exactly linear) component models by evaluating the netlist
/// builders at two widths.
LinearModel fit_interface_model(const GateLibrary& lib);
LinearModel fit_stage_model(const GateLibrary& lib);
double node_area(const GateLibrary& lib);

/// Paper Table 1, regenerated from our netlists.
struct Table1 {
    LinearModel fifo_interface;  ///< averaged over input/output interfaces
    LinearModel fifo_stage;
    double node = 0.0;

    std::string to_string() const;
};

Table1 make_table1(const GateLibrary& lib);

/// System-wide overhead breakdown for a SocSpec (paper §5: "Since there is
/// just one pair of nodes for each pair of communicating SBs, the
/// system-wide area overhead is reasonably low"; the comparison with other
/// GALS schemes excludes FIFO interfaces and stages, which any scheme needs).
struct SystemOverhead {
    double nodes = 0.0;
    double interfaces = 0.0;
    double fifo_stages = 0.0;

    double synchro_tokens_specific() const { return nodes; }
    double total() const { return nodes + interfaces + fifo_stages; }
};

SystemOverhead system_overhead(const sys::SocSpec& spec,
                               const GateLibrary& lib);

}  // namespace st::area
