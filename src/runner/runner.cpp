#include "runner/runner.hpp"

#include <cstdlib>

namespace st::runner {

std::size_t hardware_jobs() {
    if (const char* env = std::getenv("ST_JOBS");
        env != nullptr && env[0] != '\0') {
        char* end = nullptr;
        const unsigned long v = std::strtoul(env, &end, 10);
        if (end != env && *end == '\0' && v >= 1) {
            return static_cast<std::size_t>(v);
        }
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::size_t resolve_jobs(std::size_t requested) {
    return requested == 0 ? hardware_jobs() : requested;
}

std::optional<Shard> parse_shard(const std::string& text) {
    const auto slash = text.find('/');
    if (slash == std::string::npos || slash == 0 ||
        slash + 1 >= text.size()) {
        return std::nullopt;
    }
    const auto parse_u64 = [](const std::string& s,
                              std::uint64_t& out) -> bool {
        char* end = nullptr;
        out = std::strtoull(s.c_str(), &end, 10);
        return end != s.c_str() && *end == '\0';
    };
    Shard shard;
    if (!parse_u64(text.substr(0, slash), shard.index) ||
        !parse_u64(text.substr(slash + 1), shard.count)) {
        return std::nullopt;
    }
    if (shard.count == 0 || shard.index >= shard.count) return std::nullopt;
    return shard;
}

}  // namespace st::runner
