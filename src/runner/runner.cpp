#include "runner/runner.hpp"

#include <cstdlib>

namespace st::runner {

std::size_t hardware_jobs() {
    if (const char* env = std::getenv("ST_JOBS");
        env != nullptr && env[0] != '\0') {
        char* end = nullptr;
        const unsigned long v = std::strtoul(env, &end, 10);
        if (end != env && *end == '\0' && v >= 1) {
            return static_cast<std::size_t>(v);
        }
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::size_t resolve_jobs(std::size_t requested) {
    return requested == 0 ? hardware_jobs() : requested;
}

}  // namespace st::runner
