#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <mutex>
#include <optional>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace st::runner {

/// Number of worker threads to use when the caller asks for "all of them":
/// `std::thread::hardware_concurrency()` clamped to >= 1, overridable with
/// the `ST_JOBS` environment variable (useful to pin CI and benchmarks).
std::size_t hardware_jobs();

/// Resolve a user-facing jobs request: 0 means hardware_jobs(), anything
/// else is taken literally (clamped to >= 1).
std::size_t resolve_jobs(std::size_t requested);

/// Run `n` independent work items on a fixed-size pool of `jobs` threads and
/// reduce the results **in case-index order** on the calling thread.
///
/// This is the repo's run-execution engine: every sweep-shaped workload —
/// fuzz campaigns, §5 determinism sweeps, bench grids — is a set of
/// independent `sys::Soc` runs, and this primitive is how they all execute.
///
/// Contract:
///  * `work(i)` is called exactly once for every `i` in `[0, n)`, from an
///    unspecified pool thread, in an unspecified order. It must not touch
///    mutable state shared with other work items: each item elaborates and
///    runs its own private simulation (a `Soc` owns its `Scheduler`), and
///    anything shared (a spec, a golden TraceSet) is read-only.
///  * `reduce(i, result)` is called on the *calling* thread in strictly
///    increasing `i` — regardless of which worker finished first — so any
///    order-sensitive aggregation (counters, bounded failure lists, output
///    text) is bit-identical between `jobs == 1` and `jobs == N`. This is
///    the engine-level mirror of the paper's determinism discipline:
///    parallelism must never become observable.
///  * With `jobs <= 1` (or `n <= 1`) no thread is spawned: work and reduce
///    interleave serially on the calling thread, byte-for-byte the code path
///    a `--jobs 1` caller always had.
///  * Exceptions from `work` are captured and rethrown from the calling
///    thread at that item's reduce position (earlier items still reduce);
///    remaining undistributed items are abandoned and workers are joined
///    before the rethrow escapes.
///
/// Work distribution is a single atomic ticket counter: deterministic total
/// work regardless of scheduling, no per-item queue allocation. Seed-stable
/// by construction — callers derive each item's randomness from (seed, i),
/// never from thread identity.
template <typename Work, typename Reduce>
void sweep(std::size_t n, std::size_t jobs, Work&& work, Reduce&& reduce) {
    using R = std::decay_t<std::invoke_result_t<Work&, std::size_t>>;
    static_assert(!std::is_void_v<R>,
                  "runner::sweep: work must return a result value");

    jobs = resolve_jobs(jobs);
    if (jobs <= 1 || n <= 1) {
        for (std::size_t i = 0; i < n; ++i) {
            reduce(i, work(i));
        }
        return;
    }

    struct Slot {
        std::optional<R> result;
        std::exception_ptr error;
        bool done = false;
    };
    std::vector<Slot> slots(n);
    std::mutex mu;
    std::condition_variable cv;
    std::atomic<std::size_t> ticket{0};

    auto worker = [&]() noexcept {
        for (;;) {
            const std::size_t i = ticket.fetch_add(1);
            if (i >= n) return;
            Slot slot;
            try {
                slot.result.emplace(work(i));
            } catch (...) {
                slot.error = std::current_exception();
            }
            slot.done = true;
            {
                const std::lock_guard<std::mutex> lock(mu);
                slots[i] = std::move(slot);
            }
            cv.notify_one();
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(std::min(jobs, n));
    for (std::size_t j = 0; j < std::min(jobs, n); ++j) {
        pool.emplace_back(worker);
    }
    const auto shut_down = [&]() noexcept {
        // Park the ticket past the end so idle workers exit, then join.
        ticket.store(n);
        for (auto& t : pool) t.join();
    };

    for (std::size_t i = 0; i < n; ++i) {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return slots[i].done; });
        Slot slot = std::move(slots[i]);
        lock.unlock();
        if (slot.error) {
            shut_down();
            std::rethrow_exception(slot.error);
        }
        try {
            reduce(i, std::move(*slot.result));
        } catch (...) {
            shut_down();
            throw;
        }
    }
    shut_down();
}

/// `sweep` without a result: run `n` independent items, no reduction.
template <typename Work>
void for_each(std::size_t n, std::size_t jobs, Work&& work) {
    sweep(
        n, jobs,
        [&work](std::size_t i) {
            work(i);
            return true;
        },
        [](std::size_t, bool) {});
}

}  // namespace st::runner
