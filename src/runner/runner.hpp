#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <mutex>
#include <new>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace st::runner {

/// Number of worker threads to use when the caller asks for "all of them":
/// `std::thread::hardware_concurrency()` clamped to >= 1, overridable with
/// the `ST_JOBS` environment variable (useful to pin CI and benchmarks).
std::size_t hardware_jobs();

/// Resolve a user-facing jobs request: 0 means hardware_jobs(), anything
/// else is taken literally (clamped to >= 1).
std::size_t resolve_jobs(std::size_t requested);

/// Deterministic 1-of-N split of a case-index space. Shard `i/N` owns every
/// case whose global index `g` satisfies `g % N == i`, so N shard runs —
/// on one machine or N — partition a campaign exactly, and each shard sees
/// the same cases at every `--jobs` value (cases are drawn from the seed by
/// global index, never by shard-local position).
struct Shard {
    std::uint64_t index = 0;
    std::uint64_t count = 1;

    bool selects(std::uint64_t global_index) const {
        return global_index % count == index;
    }
    bool is_full() const { return count == 1; }
    /// Number of indices in `[0, n)` this shard owns.
    std::uint64_t size_of(std::uint64_t n) const {
        return index >= n ? 0 : (n - index + count - 1) / count;
    }
    void validate() const {
        if (count == 0 || index >= count) {
            throw std::invalid_argument(
                "runner::Shard: require index < count, count >= 1");
        }
    }
    bool operator==(const Shard&) const = default;
};

/// Parse the CLI form "I/N" (e.g. "0/4"). Returns nullopt on malformed
/// input or an invalid split (count == 0 or index >= count).
std::optional<Shard> parse_shard(const std::string& text);

/// Engine knobs, primarily for tests and benchmarks; `{}` means "auto".
///  * `chunk`: work items claimed per ticket fetch. Auto picks a value that
///    amortises the atomic while still load-balancing the tail.
///  * `window`: in-flight result slots (rounded up to a chunk multiple,
///    floor `chunk * (jobs + 1)`). Bounds result memory for 10^6-run
///    campaigns: workers stall until the reducer frees slots.
struct Tuning {
    std::size_t chunk = 0;
    std::size_t window = 0;
};

/// Auto chunk size: amortise ticket traffic without starving the tail.
inline std::size_t default_chunk(std::size_t n, std::size_t jobs) {
    // ~8 claims per worker keeps the tail balanced; cap so one chunk never
    // holds the reduction window hostage on long sweeps.
    const std::size_t target = n / (jobs * 8);
    return std::clamp<std::size_t>(target, 1, 64);
}

/// Run `n` independent work items on a fixed-size pool of `jobs` threads and
/// reduce the results **in case-index order** on the calling thread, giving
/// each worker thread a private reusable context.
///
/// This is the repo's run-execution engine: every sweep-shaped workload —
/// fuzz campaigns, §5 determinism sweeps, bench grids — is a set of
/// independent `sys::Soc` runs, and this primitive is how they all execute.
///
/// Contract:
///  * `make_ctx()` is invoked exactly once per worker thread, *on* that
///    thread (and once on the calling thread in the serial path), before any
///    work runs there. The context is how callers hoist per-run setup out of
///    the hot loop: a reusable `verify::RunCapture`, a warm `StreamingChecker`,
///    pooled scheduler slabs. It may be non-movable — the factory's prvalue
///    is materialised in place.
///  * `work(ctx, i)` is called exactly once for every `i` in `[0, n)`, from
///    an unspecified pool thread, in an unspecified order, always with that
///    thread's own `ctx`. It must not touch mutable state shared with other
///    work items; anything shared (a spec, a golden TraceSet) is read-only.
///  * `reduce(i, result)` is called on the *calling* thread in strictly
///    increasing `i` — regardless of which worker finished first — so any
///    order-sensitive aggregation (counters, bounded failure lists, output
///    text) is bit-identical between `jobs == 1` and `jobs == N`. This is
///    the engine-level mirror of the paper's determinism discipline:
///    parallelism must never become observable.
///  * With `jobs <= 1` (or `n <= 1`) no thread is spawned: work and reduce
///    interleave serially on the calling thread, byte-for-byte the code path
///    a `--jobs 1` caller always had.
///  * Exceptions from `work` (or a worker's `make_ctx`) are captured and
///    rethrown from the calling thread at that item's reduce position
///    (earlier items still reduce); remaining undistributed items are
///    abandoned and workers are joined before the rethrow escapes.
///
/// Engine shape (why the parallel path scales):
///  * Workers claim *chunks* of `Tuning::chunk` contiguous indices with one
///    `fetch_add`, not one per run — ticket-line traffic drops by the chunk
///    factor and adjacent runs stay cache-warm on one worker.
///  * Results land in a fixed ring of `Tuning::window` slots guarded by
///    per-slot ready flags; workers publish with a release store and only
///    take the wake-up mutex once per chunk. The old engine locked a global
///    mutex and signalled the reducer once per run — at NoC-scale run costs
///    that serialised the whole pool onto one lock (the measured 0.95x).
///  * All cross-thread hot state (`ticket`, `reduced`) is cache-line padded
///    so the claim counter and the reduction cursor never false-share.
///  * The ring gives O(window) result memory instead of O(n): a 10^6-run
///    campaign holds a few hundred reports in flight, not a million.
///
/// Work distribution stays deterministic *in aggregate*: chunking changes
/// which thread computes an item, never the item set or the reduce order.
/// Seed-stable by construction — callers derive each item's randomness from
/// (seed, i), never from thread identity.
template <typename MakeCtx, typename Work, typename Reduce>
void sweep_ctx(std::size_t n, std::size_t jobs, MakeCtx&& make_ctx,
               Work&& work, Reduce&& reduce, Tuning tuning = {}) {
    using Ctx = std::invoke_result_t<MakeCtx&>;
    static_assert(!std::is_void_v<Ctx>,
                  "runner::sweep_ctx: make_ctx must return a context value");
    using R = std::decay_t<
        std::invoke_result_t<Work&, std::remove_reference_t<Ctx>&,
                             std::size_t>>;
    static_assert(!std::is_void_v<R>,
                  "runner::sweep_ctx: work must return a result value");

    jobs = resolve_jobs(jobs);
    if (jobs <= 1 || n <= 1) {
        if (n == 0) return;
        Ctx ctx = make_ctx();
        for (std::size_t i = 0; i < n; ++i) {
            reduce(i, work(ctx, i));
        }
        return;
    }
    jobs = std::min(jobs, n);

    const std::size_t chunk =
        tuning.chunk != 0 ? tuning.chunk : default_chunk(n, jobs);
    // Window floor: one chunk per worker plus one keeps every worker able to
    // hold a claimed chunk while the reducer drains the oldest.
    std::size_t window = std::max(tuning.window, chunk * (jobs + 1));
    window = ((window + chunk - 1) / chunk) * chunk;  // chunk multiple
    window = std::min(window, ((n + chunk - 1) / chunk) * chunk);

    struct Slot {
        std::optional<R> result;
        std::exception_ptr error;
    };
    std::vector<Slot> slots(window);
    std::vector<std::atomic<std::uint8_t>> ready(window);
    for (auto& f : ready) f.store(0, std::memory_order_relaxed);

    // A fixed 64 (not std::hardware_destructive_interference_size, whose
    // value is -mtune-dependent and warns under GCC) covers every target we
    // build on; the point is only that the two counters never share a line.
    constexpr std::size_t kLine = 64;
    struct alignas(kLine) PaddedCounter {
        std::atomic<std::size_t> v{0};
        char pad[kLine - sizeof(std::atomic<std::size_t>)];
    };
    PaddedCounter ticket;   // next unclaimed index (workers, contended)
    PaddedCounter reduced;  // count of slots consumed (reducer writes)
    std::atomic<bool> abort{false};
    std::atomic<std::size_t> space_waiters{0};
    std::exception_ptr ctx_error;  // worker make_ctx failure, guarded by mu
    std::mutex mu;
    std::condition_variable cv_ready;  // reducer waits for slot publication
    std::condition_variable cv_space;  // workers wait for ring space

    auto run_chunks = [&](auto& ctx) {
        for (;;) {
            const std::size_t base =
                ticket.v.fetch_add(chunk, std::memory_order_relaxed);
            if (base >= n || abort.load(std::memory_order_acquire)) return;
            const std::size_t end = std::min(base + chunk, n);
            // Wait until the whole chunk's slots are free. Chunks are claimed
            // in increasing base order and each worker finishes its previous
            // chunk before claiming another, so every chunk below `base` is
            // already published and the reducer can always advance: the wait
            // condition is monotone in `base`, no circular wait.
            if (end > reduced.v.load(std::memory_order_acquire) + window) {
                std::unique_lock<std::mutex> lock(mu);
                space_waiters.fetch_add(1, std::memory_order_relaxed);
                cv_space.wait(lock, [&] {
                    return abort.load(std::memory_order_acquire) ||
                           end <= reduced.v.load(std::memory_order_acquire) +
                                      window;
                });
                space_waiters.fetch_sub(1, std::memory_order_relaxed);
                if (abort.load(std::memory_order_acquire)) return;
            }
            for (std::size_t i = base; i < end; ++i) {
                Slot& slot = slots[i % window];
                try {
                    slot.result.emplace(work(ctx, i));
                } catch (...) {
                    slot.error = std::current_exception();
                }
                ready[i % window].store(1, std::memory_order_release);
            }
            // One wake-up per chunk, not per run: take the mutex (empty
            // critical section pairs with the reducer's locked wait) and
            // signal that new slots are published.
            {
                const std::lock_guard<std::mutex> lock(mu);
            }
            cv_ready.notify_one();
        }
    };
    auto worker = [&]() noexcept {
        try {
            // Materialise the context in place (guaranteed copy elision):
            // contexts may be non-movable (a RunCapture pins its thread's
            // trace arena). All `work` exceptions are captured per-slot
            // inside run_chunks, so this catch only sees setup failures.
            Ctx ctx = make_ctx();
            run_chunks(ctx);
        } catch (...) {
            {
                const std::lock_guard<std::mutex> lock(mu);
                if (!ctx_error) ctx_error = std::current_exception();
                abort.store(true, std::memory_order_release);
            }
            cv_ready.notify_all();
            cv_space.notify_all();
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (std::size_t j = 0; j < jobs; ++j) {
        pool.emplace_back(worker);
    }
    const auto shut_down = [&]() noexcept {
        // Park the ticket past the end so idle workers exit, release any
        // worker stalled on ring space, then join.
        {
            const std::lock_guard<std::mutex> lock(mu);
            abort.store(true, std::memory_order_release);
            ticket.v.store(n, std::memory_order_relaxed);
        }
        cv_space.notify_all();
        for (auto& t : pool) t.join();
    };

    for (std::size_t i = 0; i < n; ++i) {
        std::atomic<std::uint8_t>& flag = ready[i % window];
        if (flag.load(std::memory_order_acquire) == 0) {
            std::unique_lock<std::mutex> lock(mu);
            // A worker may have registered as a space waiter after our last
            // waiter check; re-signal under the mutex before sleeping so the
            // reducer never blocks while a worker waits on freed slots.
            if (space_waiters.load(std::memory_order_relaxed) != 0) {
                cv_space.notify_all();
            }
            cv_ready.wait(lock, [&] {
                return flag.load(std::memory_order_acquire) != 0 ||
                       (ctx_error != nullptr);
            });
            if (flag.load(std::memory_order_acquire) == 0 && ctx_error) {
                // Workers may still be alive; only surface the context
                // failure once no published result is pending at `i`.
                std::exception_ptr err = ctx_error;
                lock.unlock();
                shut_down();
                std::rethrow_exception(err);
            }
        }
        Slot& slot = slots[i % window];
        if (slot.error) {
            const std::exception_ptr error = slot.error;
            shut_down();
            std::rethrow_exception(error);
        }
        R result = std::move(*slot.result);
        slot.result.reset();
        flag.store(0, std::memory_order_release);
        // Publish the freed slot; wake stalled workers only when one is
        // actually registered (cheap check first: no waiters, no syscall).
        reduced.v.store(i + 1, std::memory_order_release);
        if (space_waiters.load(std::memory_order_relaxed) != 0) {
            {
                const std::lock_guard<std::mutex> lock(mu);
            }
            cv_space.notify_all();
        }
        try {
            reduce(i, std::move(result));
        } catch (...) {
            shut_down();
            throw;
        }
    }
    shut_down();
}

/// Context-free `sweep`: the historical engine entry point. `work(i)` runs
/// on a pool thread, `reduce(i, result)` in index order on the caller.
/// Identical contract to `sweep_ctx` with a stateless context.
template <typename Work, typename Reduce>
void sweep(std::size_t n, std::size_t jobs, Work&& work, Reduce&& reduce,
           Tuning tuning = {}) {
    struct NoCtx {};
    sweep_ctx(
        n, jobs, [] { return NoCtx{}; },
        [&work](NoCtx&, std::size_t i) { return work(i); },
        std::forward<Reduce>(reduce), tuning);
}

/// `sweep` without a result: run `n` independent items, no reduction.
template <typename Work>
void for_each(std::size_t n, std::size_t jobs, Work&& work) {
    sweep(
        n, jobs,
        [&work](std::size_t i) {
            work(i);
            return true;
        },
        [](std::size_t, bool) {});
}

}  // namespace st::runner
