#pragma once

#include <string>
#include <vector>

#include "sim/time.hpp"

namespace st::verify {

/// One audited timing constraint: `actual` must not exceed `budget`.
struct TimingConstraint {
    std::string name;
    sim::Time actual = 0;
    sim::Time budget = 0;

    bool passes() const { return actual <= budget; }
    /// Positive slack = margin; negative values are reported as 0-capped
    /// via `violation()` instead (Time is unsigned).
    sim::Time slack() const { return passes() ? budget - actual : 0; }
    sim::Time violation() const { return passes() ? 0 : actual - budget; }
};

/// Collected report.
struct TimingReport {
    std::vector<TimingConstraint> constraints;

    bool all_pass() const;
    std::size_t failures() const;
    /// Smallest slack across passing constraints (kNever when empty).
    sim::Time worst_slack() const;
    std::string summary() const;
};

/// Audits the bundling constraints the paper's determinism argument rests on
/// (§3, §4.1): handshakes complete within one local clock cycle, and data
/// reaches the FIFO head before the token enables the head interface.
/// Model code registers measured values; callers assert `all_pass()`.
class TimingChecker {
  public:
    void require(std::string name, sim::Time actual, sim::Time budget) {
        report_.constraints.push_back(
            TimingConstraint{std::move(name), actual, budget});
    }

    const TimingReport& report() const { return report_; }

  private:
    TimingReport report_;
};

}  // namespace st::verify
