#include "verify/trace_probe.hpp"

namespace st::verify {

TraceProbe::TraceProbe(core::SbWrapper& wrapper) {
    trace_.sb_name = wrapper.name();
    for (std::size_t i = 0; i < wrapper.num_inputs(); ++i) {
        wrapper.input(i).on_deliver(
            [this, i](std::uint64_t cycle, Word w) {
                trace_.events.push_back(IoEvent{
                    cycle, IoEvent::Dir::kIn, static_cast<std::uint32_t>(i), w});
            });
    }
    for (std::size_t i = 0; i < wrapper.num_outputs(); ++i) {
        wrapper.output(i).on_send(
            [this, i](std::uint64_t cycle, Word w) {
                trace_.events.push_back(IoEvent{
                    cycle, IoEvent::Dir::kOut, static_cast<std::uint32_t>(i), w});
            });
    }
}

void TraceProbe::save_state(snap::StateWriter& w) const {
    w.begin("probe");
    w.str(trace_.sb_name);
    w.u64(trace_.events.size());
    for (const auto& e : trace_.events) {
        w.u64(e.cycle);
        w.u8(static_cast<std::uint8_t>(e.dir));
        w.u32(e.port);
        w.u64(e.word);
    }
    w.end();
}

void TraceProbe::restore_state(snap::StateReader& r) {
    r.enter("probe");
    const std::string name = r.str();
    if (name != trace_.sb_name) {
        throw snap::SnapshotError("trace probe name mismatch: image '" + name +
                                  "', probe '" + trace_.sb_name + "'");
    }
    const std::uint64_t n = r.u64();
    trace_.events.clear();
    trace_.events.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) {
        IoEvent e;
        e.cycle = r.u64();
        e.dir = static_cast<IoEvent::Dir>(r.u8());
        e.port = r.u32();
        e.word = r.u64();
        trace_.events.push_back(e);
    }
    r.leave();
}

}  // namespace st::verify
