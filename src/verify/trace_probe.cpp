#include "verify/trace_probe.hpp"

namespace st::verify {

TraceProbe::TraceProbe(core::SbWrapper& wrapper, RunCapture& capture)
    : capture_(&capture), name_(wrapper.name()) {
    slot_ = capture_->add_stream(name_);
    RunCapture* cap = capture_;
    const std::size_t slot = slot_;
    for (std::size_t i = 0; i < wrapper.num_inputs(); ++i) {
        wrapper.input(i).on_deliver(
            [cap, slot, i](std::uint64_t cycle, Word w) {
                cap->record(slot, IoEvent{cycle, IoEvent::Dir::kIn,
                                          static_cast<std::uint32_t>(i), w});
            });
    }
    for (std::size_t i = 0; i < wrapper.num_outputs(); ++i) {
        wrapper.output(i).on_send(
            [cap, slot, i](std::uint64_t cycle, Word w) {
                cap->record(slot, IoEvent{cycle, IoEvent::Dir::kOut,
                                          static_cast<std::uint32_t>(i), w});
            });
    }
}

void TraceProbe::save_state(snap::StateWriter& w) const {
    const TraceStream& s = capture_->stream(slot_);
    w.begin("probe");
    w.str(name_);
    w.u64(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
        const IoEvent& e = s.event(i);
        w.u64(e.cycle);
        w.u8(static_cast<std::uint8_t>(e.dir));
        w.u32(e.port);
        w.u64(e.word);
    }
    w.end();
}

void TraceProbe::restore_state(snap::StateReader& r) {
    r.enter("probe");
    const std::string name = r.str();
    if (name != name_) {
        throw snap::SnapshotError("trace probe name mismatch: image '" + name +
                                  "', probe '" + name_ + "'");
    }
    const std::uint64_t n = r.u64();
    // Replay the saved prefix through record(): the events land back in the
    // arena stream AND reach any attached StreamingChecker, which catches up
    // on the prefix exactly as if it had watched it live. (The prefix is
    // replayed probe-by-probe, so arrival seqs differ from the original
    // interleave — harmless, because every consumer of arrival order only
    // uses it to order *mismatches*, and a snapshot prefix that mismatched
    // the golden would already have been classified before the save.)
    for (std::uint64_t i = 0; i < n; ++i) {
        IoEvent e;
        e.cycle = r.u64();
        e.dir = static_cast<IoEvent::Dir>(r.u8());
        e.port = r.u32();
        e.word = r.u64();
        capture_->record(slot_, e);
    }
    r.leave();
}

}  // namespace st::verify
