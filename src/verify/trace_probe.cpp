#include "verify/trace_probe.hpp"

namespace st::verify {

TraceProbe::TraceProbe(core::SbWrapper& wrapper) {
    trace_.sb_name = wrapper.name();
    for (std::size_t i = 0; i < wrapper.num_inputs(); ++i) {
        wrapper.input(i).on_deliver(
            [this, i](std::uint64_t cycle, Word w) {
                trace_.events.push_back(IoEvent{
                    cycle, IoEvent::Dir::kIn, static_cast<std::uint32_t>(i), w});
            });
    }
    for (std::size_t i = 0; i < wrapper.num_outputs(); ++i) {
        wrapper.output(i).on_send(
            [this, i](std::uint64_t cycle, Word w) {
                trace_.events.push_back(IoEvent{
                    cycle, IoEvent::Dir::kOut, static_cast<std::uint32_t>(i), w});
            });
    }
}

}  // namespace st::verify
