#include "verify/streaming.hpp"

#include <algorithm>
#include <stdexcept>

namespace st::verify {

GoldenIndex::GoldenIndex(const TraceSet& golden, std::uint64_t n_cycles)
    : n_cycles_(n_cycles) {
    entries_.reserve(golden.size());
    for (const auto& [name, trace] : golden) {  // map: name order
        PerSb e;
        e.name = name;
        // Golden events are cycle-sorted (IoTrace::truncated precondition);
        // keep only the comparison window.
        const auto cut = std::partition_point(
            trace.events.begin(), trace.events.end(),
            [n_cycles](const IoEvent& ev) { return ev.cycle < n_cycles; });
        e.events.assign(trace.events.begin(), cut);
        for (const auto& ev : e.events) e.digest = fnv1a_event(e.digest, ev);
        entries_.push_back(std::move(e));
    }
}

std::size_t GoldenIndex::find(const std::string& name) const {
    const auto it = std::lower_bound(
        entries_.begin(), entries_.end(), name,
        [](const PerSb& e, const std::string& n) { return e.name < n; });
    if (it == entries_.end() || it->name != name) return npos;
    return static_cast<std::size_t>(it - entries_.begin());
}

StreamingChecker::StreamingChecker(const GoldenIndex& golden,
                                   StreamingOptions opt)
    : golden_(&golden), opt_(opt) {}

StreamingChecker::~StreamingChecker() {
    if (cap_ != nullptr && cap_->checker() == this) cap_->set_checker(nullptr);
}

void StreamingChecker::attach(RunCapture& cap) {
    cap_ = &cap;
    reader_ = &cap;
    cap.set_checker(this);
    // Catch up on anything already captured (e.g. a warm-up prefix restored
    // into the capture before the checker subscribed), in arrival order.
    if (cap.events_captured() > 0) {
        std::vector<std::size_t> pos(cap.num_streams(), 0);
        for (;;) {
            std::size_t best = RunCapture::npos_slot();
            std::uint64_t best_seq = 0;
            for (std::size_t s = 0; s < cap.num_streams(); ++s) {
                const auto& stream = cap.stream(s);
                if (pos[s] >= stream.size()) continue;
                const std::uint64_t seq = stream.entry(pos[s]).seq;
                if (best == RunCapture::npos_slot() || seq < best_seq) {
                    best = s;
                    best_seq = seq;
                }
            }
            if (best == RunCapture::npos_slot()) break;
            observe(best, cap.stream(best).event(pos[best]));
            ++pos[best];
        }
    }
}

StreamingChecker::Slot& StreamingChecker::slot_at(std::size_t slot) {
    if (slot >= slots_.size()) slots_.resize(slot + 1);
    Slot& s = slots_[slot];
    if (s.sb.empty()) {
        if (reader_ == nullptr) {
            throw std::logic_error(
                "StreamingChecker: observe() before attach()");
        }
        s.sb = reader_->stream(slot).sb_name();
        const std::size_t g = golden_->find(s.sb);
        s.golden = g == GoldenIndex::npos ? nullptr : &golden_->entries()[g];
    }
    return s;
}

void StreamingChecker::record_mismatch(MismatchLocus locus,
                                       std::string message) {
    diverged_ = true;
    locus_ = std::move(locus);
    message_ = std::move(message);
    if (opt_.early_exit && cap_ != nullptr) cap_->request_stop();
}

void StreamingChecker::observe(std::size_t slot, const IoEvent& e) {
    if (e.cycle >= golden_->n_cycles()) return;  // outside the window
    Slot& s = slot_at(slot);
    const std::uint64_t index = s.seen;
    s.digest = fnv1a_event(s.digest, e);
    ++s.seen;
    ++checked_;
    if (diverged_) return;  // verdict already fixed at the first mismatch
    if (s.golden == nullptr) return;  // SB unknown to golden: batch ignores it
    if (index >= s.golden->events.size()) {
        MismatchLocus l;
        l.kind = MismatchLocus::Kind::kExtra;
        l.sb = s.sb;
        l.index = index;
        l.actual = e;
        l.cycle = e.cycle;
        l.port = e.port;
        record_mismatch(std::move(l), format_extra_event(s.sb, index, e));
        return;
    }
    const IoEvent& g = s.golden->events[static_cast<std::size_t>(index)];
    if (e != g) {
        MismatchLocus l;
        l.kind = MismatchLocus::Kind::kValue;
        l.sb = s.sb;
        l.index = index;
        l.cycle = e.cycle;
        l.port = e.port;
        l.expected = g;
        l.actual = e;
        record_mismatch(std::move(l),
                        format_value_mismatch(s.sb, index, g, e));
    }
}

TraceDiff StreamingChecker::finish() const {
    TraceDiff d;
    if (diverged_) {
        d.identical = false;
        d.first_mismatch = message_;
        d.locus = locus_;
        return d;
    }
    // No event-level mismatch: the run is deterministic iff every golden SB
    // produced its full event count. O(#SBs), name order (matching
    // diff_traces' report order for the shortfall/missing cases, which have
    // no arrival position to order by).
    for (const auto& g : golden_->entries()) {
        const Slot* s = nullptr;
        for (const auto& cand : slots_) {
            if (cand.golden == &g) {
                s = &cand;
                break;
            }
        }
        const std::uint64_t seen = s == nullptr ? 0 : s->seen;
        if (s == nullptr && !g.events.empty()) {
            // No slot means no in-window event ever arrived for this SB.
            // Distinguish "the run has no such SB at all" (missing) from
            // "the SB's stream exists but stayed empty" (shortfall) — the
            // same split diff_traces makes on materialized traces.
            bool stream_exists = false;
            if (reader_ != nullptr) {
                for (std::size_t i = 0; i < reader_->num_streams(); ++i) {
                    if (reader_->stream(i).sb_name() == g.name) {
                        stream_exists = true;
                        break;
                    }
                }
            }
            if (!stream_exists) {
                d.identical = false;
                d.first_mismatch = format_missing_sb(g.name);
                d.locus.kind = MismatchLocus::Kind::kMissingSb;
                d.locus.sb = g.name;
                return d;
            }
        }
        if (seen < g.events.size()) {
            d.identical = false;
            d.first_mismatch =
                format_count_mismatch(g.name, g.events.size(), seen);
            d.locus.kind = MismatchLocus::Kind::kShortfall;
            d.locus.sb = g.name;
            d.locus.index = seen;
            d.locus.expected = g.events[static_cast<std::size_t>(seen)];
            d.locus.cycle = d.locus.expected->cycle;
            d.locus.port = d.locus.expected->port;
            return d;
        }
        // Defence in depth for the O(1) claim: counts match and no
        // positional compare failed, so the rolling digest must equal the
        // precomputed golden digest — anything else is a checker bug.
        if (s != nullptr && s->digest != g.digest) {
            throw std::logic_error(
                "StreamingChecker: digest mismatch with per-event match on "
                "SB '" + g.name + "' — checker bug");
        }
    }
    return d;
}

void StreamingChecker::begin_run() {
    slots_.clear();
    diverged_ = false;
    checked_ = 0;
    locus_ = MismatchLocus{};
    message_.clear();
}

TraceDiff diff_capture(const GoldenIndex& golden, const RunCapture& cap) {
    StreamingChecker checker(golden, StreamingOptions{.early_exit = false});
    checker.set_reader(cap);
    // K-way merge of the per-SB streams by arrival seq: the exact event
    // order the online checker saw.
    std::vector<std::size_t> pos(cap.num_streams(), 0);
    for (;;) {
        std::size_t best = RunCapture::npos_slot();
        std::uint64_t best_seq = 0;
        for (std::size_t s = 0; s < cap.num_streams(); ++s) {
            const auto& stream = cap.stream(s);
            if (pos[s] >= stream.size()) continue;
            const std::uint64_t seq = stream.entry(pos[s]).seq;
            if (best == RunCapture::npos_slot() || seq < best_seq) {
                best = s;
                best_seq = seq;
            }
        }
        if (best == RunCapture::npos_slot()) break;
        checker.observe(best, cap.stream(best).event(pos[best]));
        ++pos[best];
    }
    return checker.finish();
}

}  // namespace st::verify
