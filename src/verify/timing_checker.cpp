#include "verify/timing_checker.hpp"

#include <algorithm>
#include <sstream>

namespace st::verify {

bool TimingReport::all_pass() const {
    return std::all_of(constraints.begin(), constraints.end(),
                       [](const TimingConstraint& c) { return c.passes(); });
}

std::size_t TimingReport::failures() const {
    return static_cast<std::size_t>(
        std::count_if(constraints.begin(), constraints.end(),
                      [](const TimingConstraint& c) { return !c.passes(); }));
}

sim::Time TimingReport::worst_slack() const {
    sim::Time worst = sim::kNever;
    for (const auto& c : constraints) {
        if (c.passes()) worst = std::min(worst, c.slack());
    }
    return worst;
}

std::string TimingReport::summary() const {
    std::ostringstream os;
    os << constraints.size() << " constraints, " << failures() << " failures";
    for (const auto& c : constraints) {
        if (!c.passes()) {
            os << "\n  FAIL " << c.name << ": actual " << sim::format_time(c.actual)
               << " > budget " << sim::format_time(c.budget);
        }
    }
    return os.str();
}

}  // namespace st::verify
