#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "runner/runner.hpp"
#include "verify/io_trace.hpp"
#include "verify/streaming.hpp"
#include "verify/trace_arena.hpp"

namespace st::verify {

/// Aggregate outcome of a determinism sweep.
struct SweepResult {
    /// One retained mismatch locus, tagged with the *global* perturbation
    /// index of the first run that produced it. Global indices make shard
    /// results mergeable: re-sorting by index and re-deduplicating replays
    /// the single-process retention decision exactly.
    struct Example {
        std::uint64_t index = 0;
        std::string locus;

        bool operator==(const Example&) const = default;
    };

    std::uint64_t runs = 0;
    std::uint64_t matches = 0;
    std::uint64_t mismatches = 0;
    /// Up to `kMaxExamples` *distinct* human-readable mismatch loci for
    /// diagnosis (a sweep often trips over the same locus thousands of
    /// times; repeating it tells the reader nothing new).
    std::vector<Example> examples;
    static constexpr std::size_t kMaxExamples = 8;

    /// Record a mismatch locus: deduplicated, bounded by kMaxExamples.
    void add_example(std::uint64_t index, const std::string& locus) {
        if (examples.size() >= kMaxExamples) return;
        for (const auto& e : examples) {
            if (e.locus == locus) return;
        }
        examples.push_back(Example{index, locus});
    }

    bool all_match() const { return mismatches == 0 && runs > 0; }

    bool operator==(const SweepResult&) const = default;
};

/// Merge N shard sweep results into the byte-identical single-process
/// result. Counters add; examples concatenate, sort by first-seen global
/// index, and re-deduplicate/re-cap — sound because a locus's globally
/// first occurrence lives in exactly one shard, which retained it unless
/// its own 8 distinct earlier loci are also globally earlier.
inline SweepResult merge_sweep_shards(const std::vector<SweepResult>& shards) {
    SweepResult out;
    std::vector<SweepResult::Example> all;
    for (const SweepResult& s : shards) {
        out.runs += s.runs;
        out.matches += s.matches;
        out.mismatches += s.mismatches;
        all.insert(all.end(), s.examples.begin(), s.examples.end());
    }
    std::sort(all.begin(), all.end(),
              [](const SweepResult::Example& a,
                 const SweepResult::Example& b) { return a.index < b.index; });
    for (const auto& e : all) out.add_example(e.index, e.locus);
    return out;
}

/// The paper's §5 experiment shape: simulate a system under its nominal
/// delay settings, then re-simulate under thousands of perturbed settings and
/// require every SB's cycle-indexed I/O sequence (first `n_cycles` local
/// cycles) to match the nominal sequence exactly.
///
/// The harness is generic in the perturbation type so it drives both the
/// synchro-tokens SoC (expected: all match) and the bypassed/synchronizer
/// baselines (expected: mismatches) with the same code.
///
/// Two runner shapes are supported:
///  - the legacy batch `Runner` returns a finished TraceSet; every check is
///    a full-run diff_traces (name-order first mismatch);
///  - a `LiveRunner` drives a simulation *through a RunCapture* the harness
///    provides (elaborate `sys::Soc(spec, &cap)` and run). This is the
///    streaming pipeline: by default an attached StreamingChecker classifies
///    each run online, requests a cooperative scheduler stop at the first
///    mismatching event, and delivers an O(#SBs) verdict for deterministic
///    runs. `set_streaming(false)` keeps the capture but compares offline
///    via diff_capture — bit-identical verdicts and loci, batch timing — for
///    differential testing and for debugging a suspected checker bug
///    (docs/TESTING.md).
template <typename Perturbation>
class DeterminismHarness {
  public:
    using Runner = std::function<TraceSet(const Perturbation&)>;
    using LiveRunner =
        std::function<void(const Perturbation&, RunCapture&)>;

    DeterminismHarness(Runner runner, Perturbation nominal,
                       std::uint64_t n_cycles)
        : runner_(std::move(runner)),
          nominal_cfg_(std::move(nominal)),
          n_cycles_(n_cycles) {}

    DeterminismHarness(LiveRunner runner, Perturbation nominal,
                       std::uint64_t n_cycles)
        : live_(std::move(runner)),
          nominal_cfg_(std::move(nominal)),
          n_cycles_(n_cycles) {}

    /// Streaming (online check + early exit) vs batch (offline
    /// diff_capture). Live-runner harnesses only; defaults to streaming.
    void set_streaming(bool on) { streaming_ = on; }
    bool streaming() const { return streaming_; }

    /// Disable the cooperative stop while keeping the online check (used by
    /// benches to separate the two effects). No result changes either way.
    void set_early_exit(bool on) { early_exit_ = on; }

    /// One worker's gang block runner: takes a contiguous batch of up to
    /// `width` perturbations and returns one TraceDiff per input,
    /// bit-identical to run_one on the same perturbation. The factory is
    /// invoked once per worker thread (the make_ctx slot of
    /// runner::sweep_ctx), so the runner may own thread-pinned state —
    /// gang::make_delay_block_runner builds the standard one over W
    /// persistent `gang::Lane`s for DelayConfig sweeps.
    using GangRunner =
        std::function<std::vector<TraceDiff>(const Perturbation*,
                                             std::size_t)>;
    using GangFactory = std::function<GangRunner()>;

    /// Route sweep() through gang execution: shard-local perturbations are
    /// cut into blocks of `width` and each block runs in lockstep on one
    /// worker's lanes. Results still reduce per perturbation in global
    /// order, so the SweepResult is bit-identical to the scalar engine's
    /// at every (jobs, shard, width) combination. `width <= 1` (or an
    /// empty factory) restores the scalar path.
    void set_gang(GangFactory make, std::size_t width) {
        make_gang_ = std::move(make);
        gang_width_ = width;
    }

    /// Run the nominal configuration and capture the golden traces.
    void capture_nominal() {
        if (live_) {
            RunCapture cap;
            live_(nominal_cfg_, cap);
            golden_ = truncated(cap.traces(), n_cycles_);
        } else {
            golden_ = truncated(runner_(nominal_cfg_), n_cycles_);
        }
        golden_index_ = GoldenIndex(golden_, n_cycles_);
        golden_captured_ = true;
    }

    const TraceSet& golden() const { return golden_; }
    const GoldenIndex& golden_index() const { return golden_index_; }

    /// Run one perturbation and compare against the golden traces.
    /// capture_nominal() is called lazily on first use.
    TraceDiff check(const Perturbation& p) {
        if (!golden_captured_) capture_nominal();
        return run_one(p);
    }

    /// Run a full sweep, executing up to `jobs` perturbations concurrently
    /// on the st::runner engine (`jobs == 1`, the default, is the plain
    /// serial path; `jobs == 0` means all hardware threads). A non-default
    /// `shard` runs only that 1-of-N slice of the perturbation indices;
    /// shard results merge back with merge_sweep_shards.
    ///
    /// The golden traces are captured once, up front, on the calling thread
    /// and then shared read-only; each perturbation runs its own private
    /// simulation, which must therefore be safe to invoke concurrently
    /// (true of the standard "elaborate a fresh Soc from a shared spec"
    /// runners). Each engine worker thread gets one reusable context — a
    /// RunCapture over its own thread-local arena plus, in streaming mode,
    /// an attached StreamingChecker — recycled across every perturbation it
    /// runs. Results reduce in perturbation order, so the SweepResult —
    /// counts and retained examples — is bit-identical for every `jobs`
    /// value, every shard split, and between streaming and batch modes.
    SweepResult sweep(const std::vector<Perturbation>& perturbations,
                      std::size_t jobs = 1,
                      st::runner::Shard shard = {}) {
        shard.validate();
        if (!golden_captured_) capture_nominal();
        std::vector<std::uint64_t> index;  // shard-local -> global
        index.reserve(shard.size_of(perturbations.size()));
        for (std::uint64_t i = 0; i < perturbations.size(); ++i) {
            if (shard.selects(i)) index.push_back(i);
        }
        SweepResult r;
        const auto reduce_one = [&](std::size_t k, TraceDiff&& d) {
            ++r.runs;
            if (d.identical) {
                ++r.matches;
            } else {
                ++r.mismatches;
                r.add_example(index[k], d.first_mismatch);
            }
        };
        if (make_gang_ && gang_width_ > 1) {
            // Shard filtering makes the selected perturbations
            // non-contiguous in the input vector, so copy them into a dense
            // shard-local array the block runner can take by pointer+count.
            std::vector<Perturbation> local;
            local.reserve(index.size());
            for (std::uint64_t g : index) local.push_back(perturbations[g]);
            const std::size_t w = gang_width_;
            const std::size_t blocks = (local.size() + w - 1) / w;
            st::runner::sweep_ctx(
                blocks, jobs, [this] { return make_gang_(); },
                [&](GangRunner& gang, std::size_t b) {
                    const std::size_t lo = b * w;
                    const std::size_t hi =
                        std::min(lo + w, local.size());
                    return gang(local.data() + lo, hi - lo);
                },
                [&](std::size_t b, std::vector<TraceDiff>&& diffs) {
                    for (std::size_t j = 0; j < diffs.size(); ++j) {
                        reduce_one(b * w + j, std::move(diffs[j]));
                    }
                });
            return r;
        }
        st::runner::sweep_ctx(
            index.size(), jobs, [this] { return SweepContext(*this); },
            [&](SweepContext& ctx, std::size_t k) {
                return run_one(perturbations[index[k]], ctx);
            },
            reduce_one);
        return r;
    }

  private:
    /// Per-worker reusable state: the capture (pinning the worker's trace
    /// arena) and, for streaming live runners, a checker attached once and
    /// reset per run by RunCapture::begin_run.
    struct SweepContext {
        explicit SweepContext(const DeterminismHarness& h) {
            if (h.live_ && h.streaming_) {
                checker = std::make_unique<StreamingChecker>(
                    h.golden_index_,
                    StreamingOptions{.early_exit = h.early_exit_});
                checker->attach(cap);
            }
        }
        SweepContext(const SweepContext&) = delete;
        SweepContext& operator=(const SweepContext&) = delete;

        RunCapture cap;
        std::unique_ptr<StreamingChecker> checker;
    };

    TraceDiff run_one(const Perturbation& p, SweepContext& ctx) const {
        if (!live_) {
            return diff_traces(golden_, truncated(runner_(p), n_cycles_));
        }
        ctx.cap.begin_run();
        live_(p, ctx.cap);
        if (ctx.checker) return ctx.checker->finish();
        return diff_capture(golden_index_, ctx.cap);
    }

    TraceDiff run_one(const Perturbation& p) const {
        SweepContext ctx(*this);
        return run_one(p, ctx);
    }

    Runner runner_;
    LiveRunner live_;
    Perturbation nominal_cfg_;
    std::uint64_t n_cycles_;
    bool streaming_ = true;
    bool early_exit_ = true;
    GangFactory make_gang_;
    std::size_t gang_width_ = 1;
    TraceSet golden_;
    GoldenIndex golden_index_;
    bool golden_captured_ = false;
};

}  // namespace st::verify
