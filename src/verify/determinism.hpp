#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "runner/runner.hpp"
#include "verify/io_trace.hpp"

namespace st::verify {

/// Aggregate outcome of a determinism sweep.
struct SweepResult {
    std::uint64_t runs = 0;
    std::uint64_t matches = 0;
    std::uint64_t mismatches = 0;
    /// Up to `kMaxExamples` *distinct* human-readable mismatch loci for
    /// diagnosis (a sweep often trips over the same locus thousands of
    /// times; repeating it tells the reader nothing new).
    std::vector<std::string> examples;
    static constexpr std::size_t kMaxExamples = 8;

    /// Record a mismatch locus: deduplicated, bounded by kMaxExamples.
    void add_example(const std::string& locus) {
        if (examples.size() >= kMaxExamples) return;
        for (const auto& e : examples) {
            if (e == locus) return;
        }
        examples.push_back(locus);
    }

    bool all_match() const { return mismatches == 0 && runs > 0; }
};

/// The paper's §5 experiment shape: simulate a system under its nominal
/// delay settings, then re-simulate under thousands of perturbed settings and
/// require every SB's cycle-indexed I/O sequence (first `n_cycles` local
/// cycles) to match the nominal sequence exactly.
///
/// The harness is generic in the perturbation type so it drives both the
/// synchro-tokens SoC (expected: all match) and the bypassed/synchronizer
/// baselines (expected: mismatches) with the same code.
template <typename Perturbation>
class DeterminismHarness {
  public:
    using Runner = std::function<TraceSet(const Perturbation&)>;

    DeterminismHarness(Runner runner, Perturbation nominal,
                       std::uint64_t n_cycles)
        : runner_(std::move(runner)),
          nominal_cfg_(std::move(nominal)),
          n_cycles_(n_cycles) {}

    /// Run the nominal configuration and capture the golden traces.
    void capture_nominal() {
        golden_ = truncated(runner_(nominal_cfg_), n_cycles_);
        golden_captured_ = true;
    }

    const TraceSet& golden() const { return golden_; }

    /// Run one perturbation and compare against the golden traces.
    /// capture_nominal() is called lazily on first use.
    TraceDiff check(const Perturbation& p) {
        if (!golden_captured_) capture_nominal();
        return diff_traces(golden_, truncated(runner_(p), n_cycles_));
    }

    /// Run a full sweep, executing up to `jobs` perturbations concurrently
    /// on the st::runner engine (`jobs == 1`, the default, is the plain
    /// serial path; `jobs == 0` means all hardware threads).
    ///
    /// The golden traces are captured once, up front, on the calling thread
    /// and then shared read-only; each perturbation runs its own private
    /// simulation via `runner_`, which must therefore be safe to invoke
    /// concurrently (true of the standard "elaborate a fresh Soc from a
    /// shared spec" runners). Results reduce in perturbation order, so the
    /// SweepResult — counts and retained examples — is bit-identical for
    /// every `jobs` value.
    SweepResult sweep(const std::vector<Perturbation>& perturbations,
                      std::size_t jobs = 1) {
        if (!golden_captured_) capture_nominal();
        SweepResult r;
        st::runner::sweep(
            perturbations.size(), jobs,
            [&](std::size_t i) {
                return diff_traces(
                    golden_, truncated(runner_(perturbations[i]), n_cycles_));
            },
            [&](std::size_t, TraceDiff&& d) {
                ++r.runs;
                if (d.identical) {
                    ++r.matches;
                } else {
                    ++r.mismatches;
                    r.add_example(d.first_mismatch);
                }
            });
        return r;
    }

  private:
    Runner runner_;
    Perturbation nominal_cfg_;
    std::uint64_t n_cycles_;
    TraceSet golden_;
    bool golden_captured_ = false;
};

}  // namespace st::verify
