#pragma once

#include <memory>

#include "snap/state_io.hpp"
#include "synchro/wrapper.hpp"
#include "verify/io_trace.hpp"

namespace st::verify {

/// Attaches deliver/send probes to every interface of a wrapper and records
/// the SB's cycle-indexed I/O sequence.
class TraceProbe {
  public:
    explicit TraceProbe(core::SbWrapper& wrapper);

    TraceProbe(const TraceProbe&) = delete;
    TraceProbe& operator=(const TraceProbe&) = delete;

    const IoTrace& trace() const { return trace_; }

    /// The captured trace is replayable state: a restored Soc must report
    /// byte-identical traces() for the pre-snapshot prefix.
    void save_state(snap::StateWriter& w) const;
    void restore_state(snap::StateReader& r);

  private:
    IoTrace trace_;
};

}  // namespace st::verify
