#pragma once

#include <memory>

#include "synchro/wrapper.hpp"
#include "verify/io_trace.hpp"

namespace st::verify {

/// Attaches deliver/send probes to every interface of a wrapper and records
/// the SB's cycle-indexed I/O sequence.
class TraceProbe {
  public:
    explicit TraceProbe(core::SbWrapper& wrapper);

    TraceProbe(const TraceProbe&) = delete;
    TraceProbe& operator=(const TraceProbe&) = delete;

    const IoTrace& trace() const { return trace_; }

  private:
    IoTrace trace_;
};

}  // namespace st::verify
