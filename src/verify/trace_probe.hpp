#pragma once

#include <string>

#include "snap/state_io.hpp"
#include "synchro/wrapper.hpp"
#include "verify/trace_arena.hpp"

namespace st::verify {

/// Attaches deliver/send probes to every interface of a wrapper and records
/// the SB's cycle-indexed I/O sequence into a RunCapture stream (arena
/// backed; checked online when a StreamingChecker is attached to the
/// capture).
class TraceProbe {
  public:
    TraceProbe(core::SbWrapper& wrapper, RunCapture& capture);

    TraceProbe(const TraceProbe&) = delete;
    TraceProbe& operator=(const TraceProbe&) = delete;

    const std::string& sb_name() const { return name_; }
    std::size_t slot() const { return slot_; }

    /// Materialize the captured trace (copies out of the arena).
    IoTrace trace() const { return capture_->stream(slot_).materialize(); }

    /// The captured trace is replayable state: a restored Soc must report
    /// byte-identical traces() for the pre-snapshot prefix. The chunk
    /// format predates the arena and is unchanged — arrival seqs are
    /// assigned afresh on restore, never serialized.
    void save_state(snap::StateWriter& w) const;
    void restore_state(snap::StateReader& r);

  private:
    RunCapture* capture_;
    std::size_t slot_;
    std::string name_;
};

}  // namespace st::verify
