#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "verify/io_trace.hpp"

namespace st::sim {
class Scheduler;
}  // namespace st::sim

namespace st::verify {

class StreamingChecker;

/// Run-lifetime chunked storage for captured I/O events.
///
/// A sweep worker runs thousands of cases back to back; with std::vector
/// storage every case re-grows one events vector per SB and throws the
/// buffers away at teardown. The arena instead hands out fixed-size chunks
/// from a thread-local pool: a finished run releases its chunks to the free
/// list and the next case reuses them, so steady-state capture performs no
/// allocation at all (the pool grows only to the high-water mark of one
/// case's event volume, mirroring the scheduler's slab pool).
///
/// Entries carry the event plus its *global arrival sequence* within the
/// run. Arrival order is how the streaming checker and the ordered batch
/// differ agree on which mismatch is "first"; it is deliberately kept out of
/// IoEvent itself because the interleave across SBs is delay-dependent —
/// folding it into fingerprints or trace equality would make every
/// deterministic run compare unequal under perturbation.
class TraceArena {
  public:
    static constexpr std::size_t kChunkEvents = 256;

    struct Entry {
        IoEvent ev;
        std::uint64_t seq = 0;  ///< global arrival index within the run
    };

    struct Chunk {
        Entry entries[kChunkEvents];
    };

    TraceArena() = default;
    TraceArena(const TraceArena&) = delete;
    TraceArena& operator=(const TraceArena&) = delete;

    Chunk* acquire() {
        if (!free_.empty()) {
            Chunk* c = free_.back();
            free_.pop_back();
            return c;
        }
        owned_.push_back(std::make_unique<Chunk>());
        return owned_.back().get();
    }

    void release(Chunk* c) { free_.push_back(c); }

    /// Instrumentation: chunks ever allocated by this arena. Flat across
    /// repeated same-shaped runs once the pool reaches its high-water mark.
    std::size_t chunks_allocated() const { return owned_.size(); }
    std::size_t chunks_free() const { return free_.size(); }
    std::size_t bytes_retained() const {
        return owned_.size() * sizeof(Chunk);
    }

    /// Shrink the pool: free idle chunks until at most `max_free` remain on
    /// the free list. The high-water-mark design is what makes steady-state
    /// capture allocation-free, so long campaigns should NOT call this per
    /// run — it exists for one-off giant cases (a 1024-SB topology probed
    /// once) whose chunks would otherwise pin memory for the rest of the
    /// worker thread's life. Returns the number of chunks freed.
    std::size_t trim(std::size_t max_free) {
        std::size_t freed = 0;
        while (free_.size() > max_free) {
            Chunk* victim = free_.back();
            free_.pop_back();
            for (auto it = owned_.begin(); it != owned_.end(); ++it) {
                if (it->get() == victim) {
                    owned_.erase(it);
                    ++freed;
                    break;
                }
            }
        }
        return freed;
    }

    /// The calling thread's arena (each sweep worker gets its own — streams
    /// never cross threads, so no locking).
    static TraceArena& local();

  private:
    std::vector<std::unique_ptr<Chunk>> owned_;
    std::vector<Chunk*> free_;
};

/// One SB's append-only event sequence, backed by arena chunks.
class TraceStream {
  public:
    TraceStream(std::string sb_name, TraceArena& arena)
        : sb_name_(std::move(sb_name)), arena_(&arena) {}

    TraceStream(const TraceStream&) = delete;
    TraceStream& operator=(const TraceStream&) = delete;
    TraceStream(TraceStream&& other) noexcept
        : sb_name_(std::move(other.sb_name_)),
          arena_(other.arena_),
          chunks_(std::move(other.chunks_)),
          size_(other.size_) {
        other.chunks_.clear();
        other.size_ = 0;
    }
    TraceStream& operator=(TraceStream&&) = delete;

    ~TraceStream() { clear(); }

    const std::string& sb_name() const { return sb_name_; }
    std::size_t size() const { return size_; }

    void push(const IoEvent& e, std::uint64_t seq) {
        const std::size_t slot = size_ % TraceArena::kChunkEvents;
        if (slot == 0) chunks_.push_back(arena_->acquire());
        chunks_.back()->entries[slot] = TraceArena::Entry{e, seq};
        ++size_;
    }

    const TraceArena::Entry& entry(std::size_t i) const {
        return chunks_[i / TraceArena::kChunkEvents]
            ->entries[i % TraceArena::kChunkEvents];
    }
    const IoEvent& event(std::size_t i) const { return entry(i).ev; }

    /// Release every chunk back to the arena.
    void clear() {
        for (Chunk* c : chunks_) arena_->release(c);
        chunks_.clear();
        size_ = 0;
    }

    /// Copy out a contiguous IoTrace (the batch-world materialization).
    IoTrace materialize() const {
        IoTrace t;
        t.sb_name = sb_name_;
        t.events.reserve(size_);
        for (std::size_t i = 0; i < size_; ++i) t.events.push_back(event(i));
        return t;
    }

  private:
    using Chunk = TraceArena::Chunk;

    std::string sb_name_;
    TraceArena* arena_;
    std::vector<Chunk*> chunks_;
    std::size_t size_ = 0;
};

/// Per-run capture hub: every TraceProbe records through here, events are
/// stamped with their global arrival sequence, stored in arena-backed
/// streams, and — when a StreamingChecker is attached — checked online
/// against the golden as a side effect of the same call.
///
/// A RunCapture outlives the Soc that fills it (the harness reuses one
/// across every case of a sweep); `begin_run()` resets it for the next run
/// while keeping the attached checker and the arena chunks warm.
class RunCapture {
  public:
    RunCapture();  ///< backed by the calling thread's TraceArena::local()
    explicit RunCapture(TraceArena& arena) : arena_(&arena) {}

    RunCapture(const RunCapture&) = delete;
    RunCapture& operator=(const RunCapture&) = delete;

    ~RunCapture();

    /// Register one SB's stream; returns its slot index (probe creation
    /// order — identical across same-spec runs, so slots are stable).
    std::size_t add_stream(std::string sb_name) {
        streams_.emplace_back(std::move(sb_name), *arena_);
        return streams_.size() - 1;
    }

    /// Record one event. Hot path: stamp the arrival seq, append to the
    /// slot's stream, forward to the attached checker (if any).
    void record(std::size_t slot, const IoEvent& e);

    std::size_t num_streams() const { return streams_.size(); }
    const TraceStream& stream(std::size_t slot) const {
        return streams_[slot];
    }

    /// "No slot" sentinel for merge loops over the streams.
    static constexpr std::size_t npos_slot() {
        return static_cast<std::size_t>(-1);
    }

    /// Total events recorded this run (also the next arrival seq).
    std::uint64_t events_captured() const { return next_seq_; }

    /// Materialize every stream as a plain TraceSet.
    TraceSet traces() const;

    /// Reset for the next run: drop all streams (chunks go back to the
    /// arena), restart the arrival counter, forget the scheduler binding.
    /// The attached checker is KEPT — attach once, run many.
    void begin_run();

    /// Reset for the next run of the SAME Soc (gang lane reuse): clear
    /// every registered stream in place — slots stay valid, so the probes
    /// already wired into the wrappers keep recording — restart the arrival
    /// counter and rewind the attached checker. The scheduler binding is
    /// kept: the lane's scheduler persists across runs.
    void rewind_run();

    /// Bind the scheduler driving the run so an attached checker can
    /// request a cooperative stop on divergence.
    void bind_scheduler(sim::Scheduler* sched) { sched_ = sched; }
    void request_stop();

    void set_checker(StreamingChecker* c) { checker_ = c; }
    StreamingChecker* checker() const { return checker_; }

  private:
    TraceArena* arena_;
    std::vector<TraceStream> streams_;
    std::uint64_t next_seq_ = 0;
    sim::Scheduler* sched_ = nullptr;
    StreamingChecker* checker_ = nullptr;
};

}  // namespace st::verify
