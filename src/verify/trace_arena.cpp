#include "verify/trace_arena.hpp"

#include "sim/scheduler.hpp"
#include "verify/streaming.hpp"

namespace st::verify {

TraceArena& TraceArena::local() {
    thread_local TraceArena arena;
    return arena;
}

RunCapture::RunCapture() : arena_(&TraceArena::local()) {}

RunCapture::~RunCapture() {
    if (checker_ != nullptr) checker_->on_capture_destroyed();
}

void RunCapture::record(std::size_t slot, const IoEvent& e) {
    streams_[slot].push(e, next_seq_++);
    if (checker_ != nullptr) checker_->observe(slot, e);
}

TraceSet RunCapture::traces() const {
    TraceSet out;
    for (const auto& s : streams_) out.emplace(s.sb_name(), s.materialize());
    return out;
}

void RunCapture::begin_run() {
    streams_.clear();  // dtors release chunks to the arena
    next_seq_ = 0;
    sched_ = nullptr;
    if (checker_ != nullptr) checker_->begin_run();
}

void RunCapture::rewind_run() {
    for (auto& s : streams_) s.clear();
    next_seq_ = 0;
    if (checker_ != nullptr) checker_->begin_run();
}

void RunCapture::request_stop() {
    if (sched_ != nullptr) sched_->request_stop();
}

}  // namespace st::verify
