#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "async/types.hpp"

namespace st::verify {

/// One data-exchange event at an SB boundary, indexed by *local clock cycle*.
///
/// This is exactly the quantity whose sequence the paper declares unique in a
/// deterministic system: "it is the unique sequence of states, not the
/// instantaneous values of the states, which is the hallmark of deterministic
/// behavior". Absolute picosecond times are deliberately absent — they DO
/// vary across delay perturbations even in a deterministic system.
struct IoEvent {
    enum class Dir : std::uint8_t { kIn, kOut };

    std::uint64_t cycle = 0;  ///< local clock cycle index of the SB
    Dir dir = Dir::kIn;
    std::uint32_t port = 0;  ///< interface index within the SB
    Word word = 0;

    bool operator==(const IoEvent&) const = default;
    auto operator<=>(const IoEvent&) const = default;
};

/// Per-SB cycle-indexed I/O sequence.
struct IoTrace {
    std::string sb_name;
    std::vector<IoEvent> events;

    bool operator==(const IoTrace&) const = default;

    /// 64-bit FNV-1a fingerprint over the event stream.
    std::uint64_t fingerprint() const;

    /// Events restricted to the first `n_cycles` local cycles (the paper
    /// monitors the first 100 local clock cycles of each SB).
    IoTrace truncated(std::uint64_t n_cycles) const;
};

/// Traces for a whole SoC, keyed by SB name.
using TraceSet = std::map<std::string, IoTrace>;

/// Result of comparing a perturbed run against the nominal run.
struct TraceDiff {
    bool identical = true;
    std::string first_mismatch;  ///< human-readable locus, empty when identical
};

/// Compare two trace sets event-by-event.
TraceDiff diff_traces(const TraceSet& nominal, const TraceSet& other);

/// Fingerprint an entire trace set (order-independent over SBs).
std::uint64_t fingerprint(const TraceSet& traces);

/// Restrict every trace in the set to its first `n_cycles` local cycles.
TraceSet truncated(const TraceSet& traces, std::uint64_t n_cycles);

}  // namespace st::verify
